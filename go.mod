module cloudrepl

go 1.22
