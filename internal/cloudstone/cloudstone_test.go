package cloudstone

import (
	"math"
	"testing"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/core"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

func newBench(t *testing.T, seed int64, nSlaves, scale int) (*sim.Env, *core.DB) {
	t.Helper()
	env := sim.NewEnv(seed)
	c := cloud.New(env, cloud.Config{})
	place := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	specs := make([]cluster.NodeSpec, nSlaves)
	for i := range specs {
		specs[i] = cluster.NodeSpec{Place: place}
	}
	clu, err := cluster.New(env, c, cluster.Config{
		Mode:   repl.Async,
		Cost:   server.DefaultCostModel(),
		Master: cluster.NodeSpec{Place: place},
		Slaves: specs,
		Preload: func(srv *server.DBServer) error {
			return Preload(scale)(srv)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return env, core.Open(clu, core.WithDatabase(DatabaseName), core.WithClientPlace(place))
}

func TestPreloadPopulatesAllTables(t *testing.T) {
	env, db := newBench(t, 1, 0, 50)
	srv := db.Cluster().Master().Srv
	sess := srv.Session(DatabaseName)
	cases := map[string]int64{
		"users":      50,
		"events":     50,
		"attendance": 100,
		"tags":       NumTags,
		"event_tags": 100,
		"comments":   50,
	}
	for table, want := range cases {
		set, err := sess.Query("SELECT COUNT(*) FROM " + table)
		if err != nil {
			t.Fatalf("%s: %v", table, err)
		}
		if got := set.Rows[0][0].Int(); got != want {
			t.Errorf("%s: %d rows, want %d", table, got, want)
		}
	}
	_ = env
}

func TestPreloadDeterministicAcrossServers(t *testing.T) {
	// Master and slaves preload independently; byte-identical content is a
	// precondition for statement-based replication to stay consistent.
	env, db := newBench(t, 2, 1, 30)
	m := db.Cluster().Master().Srv.Session(DatabaseName)
	s := db.Cluster().Slaves()[0].Srv.Session(DatabaseName)
	for _, q := range []string{
		"SELECT COUNT(*) FROM events",
		"SELECT title FROM events WHERE id = 17",
		"SELECT username FROM users WHERE id = 3",
	} {
		a, err := m.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Rows[0][0].String() != b.Rows[0][0].String() {
			t.Fatalf("%s differs: %v vs %v", q, a.Rows[0][0], b.Rows[0][0])
		}
	}
	_ = env
}

func TestAllOperationsExecuteCleanly(t *testing.T) {
	env, db := newBench(t, 3, 1, 40)
	d := NewDriver(db, Config{Scale: 40, ReadRatio: 0.5, Users: 1,
		RampUp: time.Millisecond, Steady: time.Hour, RampDown: time.Millisecond, ThinkTime: time.Millisecond})
	// Execute each op shape many times directly.
	env.Go("ops", func(p *sim.Proc) {
		rng := p.Rand()
		for i := 0; i < 200; i++ {
			var o op
			if i%2 == 0 {
				o = d.readOp(rng)
			} else {
				o = d.writeOp(rng)
			}
			if _, err := db.Exec(p, o.sql, o.args...); err != nil {
				t.Errorf("op %s: %v", o.name, err)
				return
			}
		}
	})
	env.RunUntil(2 * time.Hour)
	env.Stop()
	env.Shutdown()
}

func TestDriverMaintainsReadWriteRatio(t *testing.T) {
	env, db := newBench(t, 4, 2, 60)
	d := NewDriver(db, Config{
		Scale: 60, ReadRatio: 0.8, Users: 20,
		RampUp: time.Minute, Steady: 10 * time.Minute, RampDown: 30 * time.Second,
		ThinkTime: 2 * time.Second,
	})
	d.Start(env)
	env.RunUntil(12 * time.Minute)
	res := d.Result()
	total := res.Reads + res.Writes
	if total < 100 {
		t.Fatalf("too few steady ops: %d", total)
	}
	ratio := float64(res.Reads) / float64(total)
	if math.Abs(ratio-0.8) > 0.05 {
		t.Fatalf("read ratio = %.3f, want ≈0.80", ratio)
	}
	if res.Errors != 0 {
		t.Fatalf("errors: %d", res.Errors)
	}
	env.Stop()
	env.Shutdown()
}

func TestThroughputCountsOnlySteadyWindow(t *testing.T) {
	env, db := newBench(t, 5, 1, 30)
	d := NewDriver(db, Config{
		Scale: 30, ReadRatio: 0.5, Users: 5,
		RampUp: 2 * time.Minute, Steady: 4 * time.Minute, RampDown: time.Minute,
		ThinkTime: time.Second,
	})
	d.Start(env)
	env.RunUntil(7*time.Minute + 30*time.Second)
	res := d.Result()
	// 5 users at ~1.2s cycle ≈ 4 ops/s for 240s ≈ 960 ops. If ramp phases
	// leaked into the count, it would exceed this bound substantially.
	if res.Reads+res.Writes > 1200 {
		t.Fatalf("steady count %d includes ramp phases", res.Reads+res.Writes)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput measured")
	}
	env.Stop()
	env.Shutdown()
}

func TestUsersStaggerAcrossRampUp(t *testing.T) {
	env, db := newBench(t, 6, 0, 30)
	d := NewDriver(db, Config{
		Scale: 30, ReadRatio: 0.5, Users: 10,
		RampUp: 10 * time.Minute, Steady: time.Minute, RampDown: time.Minute,
		ThinkTime: time.Second,
	})
	d.Start(env)
	// After a tenth of ramp-up, only ~1-2 users have started: master ops
	// stay low.
	env.RunUntil(time.Minute)
	early := db.Cluster().Master().Srv.Stats()
	if early.Reads+early.Writes > 130 {
		t.Fatalf("too many ops during early ramp: %+v", early)
	}
	env.RunUntil(12 * time.Minute)
	late := db.Cluster().Master().Srv.Stats()
	if late.Reads+late.Writes <= early.Reads+early.Writes {
		t.Fatal("no additional load after ramp-up completed")
	}
	env.Stop()
	env.Shutdown()
}

func TestWritesReplicateDuringBenchmark(t *testing.T) {
	env, db := newBench(t, 7, 2, 40)
	d := NewDriver(db, Config{
		Scale: 40, ReadRatio: 0.2, Users: 5, // write-heavy for signal
		RampUp: 30 * time.Second, Steady: 3 * time.Minute, RampDown: 30 * time.Second,
		ThinkTime: time.Second,
	})
	d.Start(env)
	env.RunUntil(10 * time.Minute)
	m := db.Cluster().Master().Srv.Session(DatabaseName)
	mc, _ := m.Query("SELECT COUNT(*) FROM attendance")
	for _, sl := range db.Cluster().Slaves() {
		sc, err := sl.Srv.Session(DatabaseName).Query("SELECT COUNT(*) FROM attendance")
		if err != nil {
			t.Fatal(err)
		}
		if sc.Rows[0][0].Int() != mc.Rows[0][0].Int() {
			t.Fatalf("slave attendance %v != master %v after quiesce",
				sc.Rows[0][0], mc.Rows[0][0])
		}
		if sl.ApplyErrors() != 0 {
			t.Fatalf("apply errors: %d", sl.ApplyErrors())
		}
	}
	env.Stop()
	env.Shutdown()
}

func TestStopEarly(t *testing.T) {
	env, db := newBench(t, 8, 0, 30)
	d := NewDriver(db, Config{
		Scale: 30, ReadRatio: 0.5, Users: 3,
		RampUp: time.Second, Steady: time.Hour, RampDown: time.Second,
		ThinkTime: time.Second,
	})
	done := d.Start(env)
	env.RunUntil(time.Minute)
	d.StopEarly()
	env.RunUntil(2 * time.Minute)
	if !done() {
		t.Fatal("users still running after StopEarly")
	}
	env.Stop()
	env.Shutdown()
}

func TestLiveInsertIDsDoNotCollideWithSeed(t *testing.T) {
	env, db := newBench(t, 9, 0, 30)
	d := NewDriver(db, Config{Scale: 30, ReadRatio: 0, Users: 2,
		RampUp: time.Second, Steady: 5 * time.Minute, RampDown: time.Second, ThinkTime: 500 * time.Millisecond})
	d.Start(env)
	env.RunUntil(5*time.Minute + 2*time.Second)
	res := d.Result()
	if res.Errors != 0 {
		t.Fatalf("write errors (likely id collisions): %d", res.Errors)
	}
	if res.Writes == 0 {
		t.Fatal("no writes executed")
	}
	env.Stop()
	env.Shutdown()
}

func TestResultPerOpBreakdown(t *testing.T) {
	env, db := newBench(t, 10, 0, 30)
	d := NewDriver(db, Config{Scale: 30, ReadRatio: 0.5, Users: 5,
		RampUp: time.Second, Steady: 10 * time.Minute, RampDown: time.Second, ThinkTime: time.Second})
	d.Start(env)
	env.RunUntil(10*time.Minute + 2*time.Second)
	res := d.Result()
	var sum int
	for _, n := range res.PerOp {
		sum += n
	}
	if sum != res.Reads+res.Writes {
		t.Fatalf("per-op sum %d != total %d", sum, res.Reads+res.Writes)
	}
	if len(res.PerOp) < 8 {
		t.Fatalf("only %d distinct op types observed: %v", len(res.PerOp), res.PerOp)
	}
	env.Stop()
	env.Shutdown()
}

func TestOpsUseParameters(t *testing.T) {
	// Guard against accidental string concatenation of values: every op
	// must carry args matching its placeholder count.
	env, db := newBench(t, 11, 0, 30)
	_ = env
	d := NewDriver(db, Config{Scale: 30})
	rng := sim.NewEnv(1).Rand()
	for i := 0; i < 100; i++ {
		for _, o := range []op{d.readOp(rng), d.writeOp(rng)} {
			stmt, err := sqlengine.Parse(o.sql)
			if err != nil {
				t.Fatalf("%s: %v", o.name, err)
			}
			if _, err := sqlengine.Bind(stmt, o.args); err != nil {
				t.Fatalf("%s: %v", o.name, err)
			}
		}
	}
}
