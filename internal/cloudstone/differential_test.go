package cloudstone

import (
	"sort"
	"strings"
	"testing"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// pageQueries is every read page in the Cloudstone mix (driver.go readOp,
// plus both friend-feed statements), each with representative bindings.
// The planner-vs-naive differential runs all of them under both planner
// modes: a plan is only an execution strategy, so the result sets must be
// byte-identical — order-sensitive where the page has an ORDER BY.
func pageQueries() []struct {
	name string
	sql  string
	args []sqlengine.Value
} {
	ids := []int64{1, 7, 23, 37}
	var out []struct {
		name string
		sql  string
		args []sqlengine.Value
	}
	add := func(name, sql string, args ...sqlengine.Value) {
		out = append(out, struct {
			name string
			sql  string
			args []sqlengine.Value
		}{name, sql, args})
	}
	add("home", "SELECT id, title, event_date FROM events ORDER BY created DESC LIMIT 10")
	for _, id := range ids {
		add("event-feed", EventFeedSQL, sqlengine.NewInt(id))
		add("event-detail", "SELECT * FROM events WHERE id = ?", sqlengine.NewInt(id))
		add("attendees", "SELECT user_id FROM attendance WHERE event_id = ?", sqlengine.NewInt(id))
		add("search-tag",
			"SELECT e.id, e.title FROM event_tags et JOIN events e ON e.id = et.event_id WHERE et.tag_id = ? LIMIT 20",
			sqlengine.NewInt(id%NumTags+1))
		add("profile", "SELECT * FROM users WHERE id = ?", sqlengine.NewInt(id))
		add("user-events", "SELECT id, title FROM events WHERE creator_id = ?", sqlengine.NewInt(id))
		add("friend-list", "SELECT friend_id FROM friends WHERE user_id = ?", sqlengine.NewInt(id))
	}
	add("search-text", "SELECT id, title FROM events WHERE title LIKE ? LIMIT 10",
		sqlengine.NewString("%7 m%"))
	add("friend-feed", "SELECT id, title FROM events WHERE creator_id IN (?, ?, ?) ORDER BY created DESC LIMIT 10",
		sqlengine.NewInt(2), sqlengine.NewInt(15), sqlengine.NewInt(29))
	add("tag-cloud", "SELECT tag_id, COUNT(*) AS cnt FROM event_tags GROUP BY tag_id ORDER BY cnt DESC LIMIT 10")
	return out
}

// canonPage flattens a result set for comparison; unordered pages compare
// as multisets.
func canonPage(set *sqlengine.ResultSet, ordered bool) []string {
	rows := make([]string, 0, len(set.Rows))
	for _, r := range set.Rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.SQL())
			b.WriteByte('|')
		}
		rows = append(rows, b.String())
	}
	if !ordered {
		sort.Strings(rows)
	}
	return rows
}

// TestPagesPlannerNaiveDifferential preloads the Cloudstone data set on a
// standalone node and runs every read page under the cost-based and the
// forced-naive planner, requiring identical result sets. Scale 37 is
// deliberately coprime with the tag vocabulary so tag-cloud counts are not
// all tied (a tie under LIMIT would make row identity ambiguous rather than
// testing plan equivalence).
func TestPagesPlannerNaiveDifferential(t *testing.T) {
	env := sim.NewEnv(11)
	defer env.Shutdown()
	c := cloud.New(env, cloud.Config{})
	place := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	inst := c.Launch("m", cloud.Small, place)
	srv := server.New(env, "m", inst, server.DefaultCostModel())
	if err := Preload(37)(srv); err != nil {
		t.Fatal(err)
	}
	eng := srv.Eng
	for _, pq := range pageQueries() {
		ordered := strings.Contains(pq.sql, "ORDER BY")
		run := func(naive bool) []string {
			eng.NaivePlan = naive
			sess := eng.NewSession(DatabaseName)
			set, err := sess.Query(pq.sql, pq.args...)
			if err != nil {
				t.Fatalf("%s (naive=%v): %v", pq.name, naive, err)
			}
			return canonPage(set, ordered)
		}
		cost, naive := run(false), run(true)
		eng.NaivePlan = false
		if len(cost) != len(naive) {
			t.Errorf("%s: cost %d rows, naive %d rows", pq.name, len(cost), len(naive))
			continue
		}
		for i := range cost {
			if cost[i] != naive[i] {
				t.Errorf("%s: row %d differs\ncost:  %s\nnaive: %s", pq.name, i, cost[i], naive[i])
				break
			}
		}
	}
}
