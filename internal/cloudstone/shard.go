package cloudstone

import "cloudrepl/internal/shard"

// ShardKeyspace maps the Cloudstone schema onto the shard key space.
// Events anchor the partitioning: attendance, tags-on-events and comments
// shard on event_id, so an event and all of its children live in one cell
// and every event-detail join is cell-local. Users and their friend edges
// shard on the user id. The tag vocabulary is a 20-row lookup table —
// global, replicated into every cell.
func ShardKeyspace() shard.Keyspace {
	return shard.Keyspace{
		Key: map[string]string{
			"users":      "id",
			"events":     "id",
			"attendance": "event_id",
			"event_tags": "event_id",
			"comments":   "event_id",
			"friends":    "user_id",
		},
		Global: map[string]bool{
			"tags": true,
		},
	}
}
