package cloudstone

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cloudrepl/internal/core"
	"cloudrepl/internal/metrics"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// Config parameterizes a load run.
type Config struct {
	// Scale is the initial data size the database was preloaded with.
	Scale int
	// ReadRatio is the fraction of operations that are reads (0.5 or 0.8
	// in the paper).
	ReadRatio float64
	// Users is the number of concurrent emulated users ("workload").
	Users int
	// ThinkTime is the mean of the exponential pause between a user's
	// operations. The default (7 s) is calibrated so that ≈100 users
	// saturate one small slave at 50/50 as in the paper's Fig. 2.
	ThinkTime time.Duration
	// RampUp, Steady, RampDown are the run phases. The paper uses
	// 10/20/5 minutes.
	RampUp   time.Duration
	Steady   time.Duration
	RampDown time.Duration
	// Stages, when non-empty, replaces the three-phase structure with a
	// stepped load ramp: stage s runs Stage.Users concurrent users for
	// Stage.Dur, then the next stage begins. Users is ignored (the maximum
	// stage population is used) and the measurement window spans the whole
	// ramp — the shape elasticity experiments need, where the interesting
	// behaviour is the response to load change, not one steady plateau.
	Stages []Stage
	// CrossShard adds a friend-feed page to the read mix (25% of reads):
	// look up the user's friend list, then fetch those friends' newest
	// events in one IN-list query. Under sharding the second statement
	// scatter-gathers across cells, because the preloaded friend graph
	// deliberately spans the user id space. Off by default so unsharded
	// runs keep their published figures.
	CrossShard bool
}

// Stage is one step of a load ramp.
type Stage struct {
	Users int
	Dur   time.Duration
}

// stageTotal is the summed duration of all stages.
func (c *Config) stageTotal() time.Duration {
	var t time.Duration
	for _, s := range c.Stages {
		t += s.Dur
	}
	return t
}

// maxStageUsers is the largest stage population.
func (c *Config) maxStageUsers() int {
	n := 0
	for _, s := range c.Stages {
		if s.Users > n {
			n = s.Users
		}
	}
	return n
}

// stageActive reports whether user i is active at offset t into the ramp;
// when inactive it also returns the offset at which i next becomes active
// (-1 = never again).
func (c *Config) stageActive(i int, t time.Duration) (bool, time.Duration) {
	var off time.Duration
	for j, s := range c.Stages {
		end := off + s.Dur
		if t < end {
			if i < s.Users {
				return true, 0
			}
			next := end
			for _, s2 := range c.Stages[j+1:] {
				if i < s2.Users {
					return false, next
				}
				next += s2.Dur
			}
			return false, -1
		}
		off = end
	}
	return false, -1
}

// DefaultPhases applies the paper's 35-minute run structure.
func (c *Config) applyDefaults() {
	if c.ThinkTime == 0 {
		c.ThinkTime = 7 * time.Second
	}
	if len(c.Stages) > 0 {
		// A staged ramp measures the whole run: the population ceiling is
		// the largest stage and the "steady" divisor is the ramp length.
		c.Users = c.maxStageUsers()
		c.RampUp, c.Steady, c.RampDown = 0, c.stageTotal(), 0
	}
	if c.RampUp == 0 {
		c.RampUp = 10 * time.Minute
	}
	if c.Steady == 0 {
		c.Steady = 20 * time.Minute
	}
	if c.RampDown == 0 {
		c.RampDown = 5 * time.Minute
	}
	if c.ReadRatio == 0 {
		c.ReadRatio = 0.5
	}
	if c.Scale == 0 {
		c.Scale = 300
	}
}

// Result summarizes a completed run.
type Result struct {
	// Throughput is completed operations per second during steady state —
	// the paper's "end-to-end throughput".
	Throughput      float64
	ReadThroughput  float64
	WriteThroughput float64
	Reads           int
	Writes          int
	Errors          int
	// Latency is the client-observed per-operation latency during steady
	// state, in milliseconds; ReadLatency and WriteLatency split it by
	// statement class (write latency includes the synchronization-model
	// commit wait, the cost of sync replication).
	Latency      metrics.Summary
	ReadLatency  metrics.Summary
	WriteLatency metrics.Summary
	// PerOp counts completed operations by name.
	PerOp map[string]int
}

// Driver runs the benchmark against a replicated database handle.
type Driver struct {
	DB  *core.DB
	Cfg Config

	steadyFrom sim.Time
	steadyTo   sim.Time
	stop       bool

	reads, writes, errors int
	allOps, allErrs       int // every phase, not just steady state
	perOp                 map[string]int
	latency               metrics.Histogram
	latencyR, latencyW    metrics.Histogram

	nextEventID   int64
	nextAttID     int64
	nextTagRefID  int64
	nextCommentID int64
	nextUserID    int64
}

// NewDriver builds a driver; the database must already be preloaded at
// cfg.Scale.
func NewDriver(db *core.DB, cfg Config) *Driver {
	cfg.applyDefaults()
	return &Driver{
		DB:  db,
		Cfg: cfg,
		// Live inserts use an id space far above the preload's.
		nextEventID:   1_000_000,
		nextAttID:     1_000_000,
		nextTagRefID:  1_000_000,
		nextCommentID: 1_000_000,
		nextUserID:    1_000_000,
		perOp:         make(map[string]int),
	}
}

// Start launches the emulated users. Users begin staggered across the
// ramp-up phase, operate through steady state and exit during ramp-down.
// Only operations completed inside the steady window are counted. The
// returned function reports whether the run is finished.
func (d *Driver) Start(env *sim.Env) (done func() bool) {
	// Long runs overflow the latency histograms' sample cap; reservoir
	// replacement then draws from the env RNG so the run stays seeded.
	d.latency.SetRand(env.Rand())
	d.latencyR.SetRand(env.Rand())
	d.latencyW.SetRand(env.Rand())
	start := env.Now()
	d.steadyFrom = start + d.Cfg.RampUp
	d.steadyTo = d.steadyFrom + d.Cfg.Steady
	end := d.steadyTo + d.Cfg.RampDown
	remaining := d.Cfg.Users

	for i := 0; i < d.Cfg.Users; i++ {
		i := i
		env.Go(fmt.Sprintf("user%d", i), func(p *sim.Proc) {
			defer func() { remaining-- }()
			if len(d.Cfg.Stages) > 0 {
				d.runStaged(p, i, start, end)
				return
			}
			// Stagger arrival uniformly across ramp-up.
			if d.Cfg.Users > 1 {
				p.SleepUntil(start + time.Duration(int64(d.Cfg.RampUp)*int64(i)/int64(d.Cfg.Users)))
			}
			for !d.stop && p.Now() < end {
				d.oneOperation(p)
				p.Sleep(sim.Exp(p.Rand(), d.Cfg.ThinkTime))
			}
		})
	}
	return func() bool { return remaining == 0 }
}

// runStaged is the user loop under a stepped load ramp: the user operates
// only while the current stage's population includes it, parks until the
// next stage that does, and exits when no later stage will. A think-time
// jitter on each activation de-synchronizes the cohort a stage boundary
// wakes at once.
func (d *Driver) runStaged(p *sim.Proc, i int, start, end sim.Time) {
	active := false
	for !d.stop && p.Now() < end {
		on, next := d.Cfg.stageActive(i, time.Duration(p.Now()-start))
		if !on {
			active = false
			if next < 0 {
				return
			}
			p.SleepUntil(start + sim.Time(next))
			continue
		}
		if !active {
			active = true
			p.Sleep(time.Duration(p.Rand().Float64() * float64(d.Cfg.ThinkTime)))
			continue
		}
		d.oneOperation(p)
		p.Sleep(sim.Exp(p.Rand(), d.Cfg.ThinkTime))
	}
}

// StopEarly aborts the run at the next operation boundary of each user.
func (d *Driver) StopEarly() { d.stop = true }

// SteadyWindow returns the measurement window on the virtual timeline.
func (d *Driver) SteadyWindow() (from, to sim.Time) { return d.steadyFrom, d.steadyTo }

// CompletedOps returns operations completed successfully in any phase —
// the cumulative counter chaos experiments sample to see throughput dip
// and recovery around a fault, wherever it lands on the timeline.
func (d *Driver) CompletedOps() int { return d.allOps }

// TotalErrors returns failed operations in any phase.
func (d *Driver) TotalErrors() int { return d.allErrs }

// Result computes the run summary; call after the simulation has run past
// the steady window.
func (d *Driver) Result() Result {
	sec := d.Cfg.Steady.Seconds()
	return Result{
		Throughput:      float64(d.reads+d.writes) / sec,
		ReadThroughput:  float64(d.reads) / sec,
		WriteThroughput: float64(d.writes) / sec,
		Reads:           d.reads,
		Writes:          d.writes,
		Errors:          d.errors,
		Latency:         d.latency.Summary(),
		ReadLatency:     d.latencyR.Summary(),
		WriteLatency:    d.latencyW.Summary(),
		PerOp:           d.perOp,
	}
}

// op is one user operation: a single SQL statement, as in the paper's
// customized Cloudstone where business logic executes directly on the
// database tier. The friend-feed page is the one exception — it is a
// two-statement sequence and supplies multi instead of sql.
type op struct {
	name  string
	sql   string
	args  []sqlengine.Value
	multi func(p *sim.Proc) error
}

func (d *Driver) oneOperation(p *sim.Proc) {
	rng := p.Rand()
	var o op
	isRead := rng.Float64() < d.Cfg.ReadRatio
	if isRead {
		o = d.readOp(rng)
	} else {
		o = d.writeOp(rng)
	}
	t0 := p.Now()
	var err error
	if o.multi != nil {
		err = o.multi(p)
	} else {
		_, err = d.DB.Exec(p, o.sql, o.args...)
	}
	inSteady := p.Now() >= d.steadyFrom && p.Now() < d.steadyTo
	if err != nil {
		d.allErrs++
		if inSteady {
			d.errors++
		}
		return
	}
	d.allOps++
	if inSteady {
		d.latency.Record(p.Now() - t0)
		d.perOp[o.name]++
		if isRead {
			d.reads++
			d.latencyR.Record(p.Now() - t0)
		} else {
			d.writes++
			d.latencyW.Record(p.Now() - t0)
		}
	}
}

// friendFeed renders the friend-feed page: the friend list is a single-key
// read served by the user's own cell, then the friends' newest events are
// fetched in one IN-list query. Under sharding that second statement
// scatter-gathers — the friends' events live on other cells — and its
// ORDER BY column is unprojected, exercising the merger's helper-column
// path. An empty friend list (live-registered user) renders an empty feed.
func (d *Driver) friendFeed(p *sim.Proc, uid int64) error {
	res, err := d.DB.Exec(p, "SELECT friend_id FROM friends WHERE user_id = ?", sqlengine.NewInt(uid))
	if err != nil {
		return err
	}
	rows := res.Result.Set.Rows
	if len(rows) == 0 {
		return nil
	}
	ph := make([]string, len(rows))
	args := make([]sqlengine.Value, len(rows))
	for i, r := range rows {
		ph[i] = "?"
		args[i] = r[0]
	}
	feed := "SELECT id, title FROM events WHERE creator_id IN (" + strings.Join(ph, ", ") +
		") ORDER BY created DESC LIMIT 10"
	_, err = d.DB.Exec(p, feed, args...)
	return err
}

// EventFeedSQL is the event-feed page: a creator's events with their
// attendees and attendee names, a three-way join. It is written in
// deliberately bad syntax order — attendance first, with the only selective
// predicate on events — so the cost-based planner's reordering (drive
// events via idx_creator, index-nested-loop the children) is what keeps the
// page cheap; the naive planner walks every attendance row per page view.
// The A-PLAN ablation measures exactly this difference in end-to-end ops/s,
// and its decision log explains this statement under both planner modes.
// Under sharding the users side of the join resolves cell-locally
// (attendance and events co-locate by event id; the feed tolerates a thin
// attendee list).
const EventFeedSQL = "SELECT e.id, e.title, u.username, a.created FROM attendance a " +
	"JOIN events e ON e.id = a.event_id JOIN users u ON u.id = a.user_id " +
	"WHERE e.creator_id = ? ORDER BY e.created DESC, a.id DESC LIMIT 10"

// seedID picks a random id from the preloaded range.
func (d *Driver) seedID(rng *rand.Rand) int64 { return int64(rng.Intn(d.Cfg.Scale)) + 1 }

func (d *Driver) readOp(rng *rand.Rand) op {
	if d.Cfg.CrossShard && rng.Float64() < 0.25 {
		uid := d.seedID(rng)
		return op{name: "friend-feed", multi: func(p *sim.Proc) error { return d.friendFeed(p, uid) }}
	}
	switch w := rng.Float64(); {
	case w < 0.20: // home page: newest events
		return op{"home", "SELECT id, title, event_date FROM events ORDER BY created DESC LIMIT 10", nil, nil}
	case w < 0.25: // event feed (EventFeedSQL): 3-way join the planner reorders
		return op{"event-feed", EventFeedSQL,
			[]sqlengine.Value{sqlengine.NewInt(d.seedID(rng))}, nil}
	case w < 0.40: // event detail
		return op{"event-detail", "SELECT * FROM events WHERE id = ?",
			[]sqlengine.Value{sqlengine.NewInt(d.seedID(rng))}, nil}
	case w < 0.50: // attendee list
		return op{"attendees", "SELECT user_id FROM attendance WHERE event_id = ?",
			[]sqlengine.Value{sqlengine.NewInt(d.seedID(rng))}, nil}
	case w < 0.60: // text search (full scan, data-size dependent)
		return op{"search-text", "SELECT id, title FROM events WHERE title LIKE ? LIMIT 10",
			[]sqlengine.Value{sqlengine.NewString(fmt.Sprintf("%%%d m%%", rng.Intn(d.Cfg.Scale)))}, nil}
	case w < 0.75: // tag search (indexed + join)
		return op{"search-tag",
			"SELECT e.id, e.title FROM event_tags et JOIN events e ON e.id = et.event_id WHERE et.tag_id = ? LIMIT 20",
			[]sqlengine.Value{sqlengine.NewInt(int64(rng.Intn(NumTags)) + 1)}, nil}
	case w < 0.85: // user profile
		return op{"profile", "SELECT * FROM users WHERE id = ?",
			[]sqlengine.Value{sqlengine.NewInt(d.seedID(rng))}, nil}
	case w < 0.95: // a user's events (indexed)
		return op{"user-events", "SELECT id, title FROM events WHERE creator_id = ?",
			[]sqlengine.Value{sqlengine.NewInt(d.seedID(rng))}, nil}
	default: // tag cloud (aggregate scan)
		return op{"tag-cloud",
			"SELECT tag_id, COUNT(*) AS cnt FROM event_tags GROUP BY tag_id ORDER BY cnt DESC LIMIT 10", nil, nil}
	}
}

func (d *Driver) writeOp(rng *rand.Rand) op {
	switch w := rng.Float64(); {
	case w < 0.25: // create event
		d.nextEventID++
		id := d.nextEventID
		return op{"create-event",
			"INSERT INTO events (id, creator_id, title, description, event_date, created) VALUES (?, ?, ?, ?, UTC_MICROS(), UTC_MICROS())",
			[]sqlengine.Value{
				sqlengine.NewInt(id),
				sqlengine.NewInt(d.seedID(rng)),
				sqlengine.NewString(fmt.Sprintf("Event %d meetup", id)),
				sqlengine.NewString("created during the benchmark run"),
			}, nil}
	case w < 0.55: // join (attend) an event
		d.nextAttID++
		return op{"join-event",
			"INSERT INTO attendance (id, event_id, user_id, created) VALUES (?, ?, ?, UTC_MICROS())",
			[]sqlengine.Value{
				sqlengine.NewInt(d.nextAttID),
				sqlengine.NewInt(d.seedID(rng)),
				sqlengine.NewInt(d.seedID(rng)),
			}, nil}
	case w < 0.75: // tag an event
		d.nextTagRefID++
		return op{"tag-event",
			"INSERT INTO event_tags (id, event_id, tag_id) VALUES (?, ?, ?)",
			[]sqlengine.Value{
				sqlengine.NewInt(d.nextTagRefID),
				sqlengine.NewInt(d.seedID(rng)),
				sqlengine.NewInt(int64(rng.Intn(NumTags)) + 1),
			}, nil}
	case w < 0.95: // comment on an event
		d.nextCommentID++
		return op{"add-comment",
			"INSERT INTO comments (id, event_id, user_id, body, created) VALUES (?, ?, ?, ?, UTC_MICROS())",
			[]sqlengine.Value{
				sqlengine.NewInt(d.nextCommentID),
				sqlengine.NewInt(d.seedID(rng)),
				sqlengine.NewInt(d.seedID(rng)),
				sqlengine.NewString("sounds great, count me in"),
			}, nil}
	default: // edit event description
		return op{"update-event",
			"UPDATE events SET description = ? WHERE id = ?",
			[]sqlengine.Value{
				sqlengine.NewString("updated during the benchmark run"),
				sqlengine.NewInt(d.seedID(rng)),
			}, nil}
	}
}
