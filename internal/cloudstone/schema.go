// Package cloudstone implements the paper's customized Cloudstone
// benchmark (§III-A): the Web 2.0 social-events-calendar workload with the
// web tier removed, so every user operation is issued directly against the
// database tier as a single SQL statement through the connection pool and
// the read/write-splitting proxy.
package cloudstone

import (
	"fmt"

	"cloudrepl/internal/server"
	"cloudrepl/internal/sqlengine"
)

// DatabaseName is the application database.
const DatabaseName = "cloudstone"

// DDL is the social-events-calendar schema (an Olio-style calendar:
// users create, join, tag and comment on events).
var DDL = []string{
	"CREATE DATABASE IF NOT EXISTS " + DatabaseName,
	`CREATE TABLE IF NOT EXISTS ` + DatabaseName + `.users (
		id BIGINT PRIMARY KEY,
		username VARCHAR(32) NOT NULL,
		created TIMESTAMP,
		UNIQUE uq_username (username)
	)`,
	`CREATE TABLE IF NOT EXISTS ` + DatabaseName + `.events (
		id BIGINT PRIMARY KEY,
		creator_id BIGINT NOT NULL,
		title VARCHAR(100) NOT NULL,
		description VARCHAR(255),
		event_date TIMESTAMP,
		created TIMESTAMP,
		INDEX idx_creator (creator_id)
	)`,
	`CREATE TABLE IF NOT EXISTS ` + DatabaseName + `.attendance (
		id BIGINT PRIMARY KEY,
		event_id BIGINT NOT NULL,
		user_id BIGINT NOT NULL,
		created TIMESTAMP,
		INDEX idx_att_event (event_id),
		INDEX idx_att_user (user_id)
	)`,
	`CREATE TABLE IF NOT EXISTS ` + DatabaseName + `.tags (
		id BIGINT PRIMARY KEY,
		name VARCHAR(32) NOT NULL
	)`,
	`CREATE TABLE IF NOT EXISTS ` + DatabaseName + `.event_tags (
		id BIGINT PRIMARY KEY,
		event_id BIGINT NOT NULL,
		tag_id BIGINT NOT NULL,
		INDEX idx_et_event (event_id),
		INDEX idx_et_tag (tag_id)
	)`,
	`CREATE TABLE IF NOT EXISTS ` + DatabaseName + `.comments (
		id BIGINT PRIMARY KEY,
		event_id BIGINT NOT NULL,
		user_id BIGINT NOT NULL,
		body VARCHAR(255),
		created TIMESTAMP,
		INDEX idx_cm_event (event_id)
	)`,
	`CREATE TABLE IF NOT EXISTS ` + DatabaseName + `.friends (
		id BIGINT PRIMARY KEY,
		user_id BIGINT NOT NULL,
		friend_id BIGINT NOT NULL,
		INDEX idx_fr_user (user_id)
	)`,
}

// NumTags is the fixed tag vocabulary size.
const NumTags = 20

// FriendsPerUser is the fixed out-degree of the preloaded social graph.
// Friend edges deliberately span the user id space (offsets of about a
// third of the scale), so under sharding a user's friends mostly live on
// other cells and the friend-feed page generates real cross-shard reads.
const FriendsPerUser = 3

// Preload returns a cluster preload function that installs the schema and
// the initial data set at the given scale ("initial data size" in the
// paper's figures: 300 for the 50/50 runs, 600 for the 80/20 runs). It
// must produce identical bytes on every node, so it is deterministic.
func Preload(scale int) func(*server.DBServer) error {
	return PreloadOwned(scale, nil)
}

// PreloadOwned is Preload restricted to an ownership predicate: a row is
// inserted only when owns(table, key) grants it, where key is the table's
// shard key (users/events by id, attendance/event_tags/comments by
// event_id, friends by user_id). Row ids are assigned before the predicate
// runs, so a row keeps the same id whichever cell it lands on and the
// union of all cells' data equals the unsharded preload exactly. A nil
// predicate loads everything (single-cluster mode).
func PreloadOwned(scale int, owns func(table string, key int64) bool) func(*server.DBServer) error {
	if owns == nil {
		owns = func(string, int64) bool { return true }
	}
	return func(srv *server.DBServer) error {
		sess := srv.Session("")
		for _, sql := range DDL {
			if _, err := srv.ExecFree(sess, sql); err != nil {
				return fmt.Errorf("cloudstone: schema: %w", err)
			}
		}
		if _, err := srv.ExecFree(sess, "USE "+DatabaseName); err != nil {
			return err
		}
		exec := func(table string, key int64, sql string, args ...sqlengine.Value) error {
			if !owns(table, key) {
				return nil
			}
			_, err := srv.ExecFree(sess, sql, args...)
			return err
		}
		for i := 1; i <= NumTags; i++ {
			if err := exec("tags", int64(i), "INSERT INTO tags (id, name) VALUES (?, ?)",
				sqlengine.NewInt(int64(i)), sqlengine.NewString(fmt.Sprintf("tag%02d", i))); err != nil {
				return err
			}
		}
		for i := 1; i <= scale; i++ {
			if err := exec("users", int64(i), "INSERT INTO users (id, username, created) VALUES (?, ?, ?)",
				sqlengine.NewInt(int64(i)),
				sqlengine.NewString(fmt.Sprintf("user%06d", i)),
				sqlengine.NewInt(0)); err != nil {
				return err
			}
		}
		for i := 1; i <= scale; i++ {
			creator := int64(i%scale) + 1
			if err := exec("events", int64(i),
				"INSERT INTO events (id, creator_id, title, description, event_date, created) VALUES (?, ?, ?, ?, ?, ?)",
				sqlengine.NewInt(int64(i)),
				sqlengine.NewInt(creator),
				sqlengine.NewString(fmt.Sprintf("Event %d meetup", i)),
				sqlengine.NewString("A social events calendar entry used as seed data."),
				sqlengine.NewInt(int64(i)*1000000),
				sqlengine.NewInt(int64(i))); err != nil {
				return err
			}
		}
		// Two attendees, two tags and one comment per event. Ids advance
		// whether or not the row is owned, keeping them globally stable.
		attID, etID, cmID := int64(1), int64(1), int64(1)
		for i := 1; i <= scale; i++ {
			for k := 0; k < 2; k++ {
				if err := exec("attendance", int64(i),
					"INSERT INTO attendance (id, event_id, user_id, created) VALUES (?, ?, ?, ?)",
					sqlengine.NewInt(attID), sqlengine.NewInt(int64(i)),
					sqlengine.NewInt(int64((i+k)%scale)+1), sqlengine.NewInt(0)); err != nil {
					return err
				}
				attID++
				if err := exec("event_tags", int64(i),
					"INSERT INTO event_tags (id, event_id, tag_id) VALUES (?, ?, ?)",
					sqlengine.NewInt(etID), sqlengine.NewInt(int64(i)),
					sqlengine.NewInt(int64((i+7*k)%NumTags)+1)); err != nil {
					return err
				}
				etID++
			}
			if err := exec("comments", int64(i),
				"INSERT INTO comments (id, event_id, user_id, body, created) VALUES (?, ?, ?, ?, ?)",
				sqlengine.NewInt(cmID), sqlengine.NewInt(int64(i)),
				sqlengine.NewInt(int64(i%scale)+1),
				sqlengine.NewString("Looking forward to this one."),
				sqlengine.NewInt(0)); err != nil {
				return err
			}
			cmID++
		}
		frID := int64(1)
		for i := 1; i <= scale; i++ {
			for j := 1; j <= FriendsPerUser; j++ {
				friend := int64((i-1+j*(scale/FriendsPerUser)+j)%scale) + 1
				if err := exec("friends", int64(i),
					"INSERT INTO friends (id, user_id, friend_id) VALUES (?, ?, ?)",
					sqlengine.NewInt(frID), sqlengine.NewInt(int64(i)),
					sqlengine.NewInt(friend)); err != nil {
					return err
				}
				frID++
			}
		}
		return nil
	}
}
