// Package metrics provides the statistics used by the experiment harness:
// summaries with two-sided trimming (the paper cuts the top and bottom 5%
// of delay samples as network-fluctuation outliers), duration histograms
// and simple time series.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Summary describes a sample set.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	StdDev float64
	Min    float64
	Max    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of xs (xs is not modified).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumsq float64
	for _, v := range sorted {
		sum += v
		sumsq += v * v
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Median: quantileSorted(sorted, 0.5),
		StdDev: math.Sqrt(variance),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P95:    quantileSorted(sorted, 0.95),
		P99:    quantileSorted(sorted, 0.99),
	}
}

// quantileSorted returns the q-quantile of a sorted slice (nearest-rank).
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Trim returns xs with the lowest and highest frac of samples removed
// (frac per side, e.g. 0.05 cuts 5% at each end). The result is sorted.
func Trim(xs []float64, frac float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	cut := int(float64(len(sorted)) * frac)
	if cut < 0 {
		// A negative frac would otherwise produce negative slice bounds;
		// treat it as "no trimming".
		cut = 0
	}
	if 2*cut >= len(sorted) {
		// Degenerate: keep the median.
		return sorted[len(sorted)/2 : len(sorted)/2+1]
	}
	return sorted[cut : len(sorted)-cut]
}

// TrimmedMean is the mean after two-sided trimming — the paper's estimator
// for average replication delay.
func TrimmedMean(xs []float64, frac float64) float64 {
	t := Trim(xs, frac)
	if len(t) == 0 {
		return 0
	}
	var sum float64
	for _, v := range t {
		sum += v
	}
	return sum / float64(len(t))
}

// Quantile returns the nearest-rank q-quantile of xs (0 for an empty
// slice); xs is not modified. q is clamped to [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	return quantileSorted(sorted, q)
}

// DefaultHistogramCap bounds how many samples a Histogram retains. It is
// large enough that the quick-protocol experiments keep every sample, while
// a long run — which used to grow the slice without bound — degrades to a
// uniform reservoir of this size.
const DefaultHistogramCap = 32768

// Histogram collects durations. Up to its cap (SetCap, default
// DefaultHistogramCap) every sample is retained; past it, reservoir
// sampling (Algorithm R) keeps a uniform subsample of everything recorded,
// so memory stays bounded on arbitrarily long runs and quantiles remain
// unbiased estimates. Replacement draws come from the RNG injected with
// SetRand — thread the simulation env's generator through so eviction
// choices live on the run's seeded random stream — or, for a zero-value
// Histogram, from an internal fixed-seed splitmix64 sequence; either way
// the same inputs reproduce the same reservoir.
type Histogram struct {
	samples []time.Duration
	total   uint64 // samples recorded, including those evicted
	cap     int    // 0 = DefaultHistogramCap
	rng     *rand.Rand
	fb      uint64 // fallback splitmix64 state when rng is nil
}

// SetCap sets the reservoir size (0 restores the default). Set it before
// recording; shrinking an over-full reservoir is not supported.
func (h *Histogram) SetCap(n int) { h.cap = n }

// SetRand injects the reservoir's RNG (nil keeps the deterministic
// fixed-seed fallback).
func (h *Histogram) SetRand(rng *rand.Rand) { h.rng = rng }

// Record adds one sample, evicting a uniformly-chosen earlier sample once
// the reservoir is full. A nil *Histogram (a disabled metrics registry's
// instrument) discards the sample.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	h.total++
	c := h.cap
	if c <= 0 {
		c = DefaultHistogramCap
	}
	if len(h.samples) < c {
		h.samples = append(h.samples, d)
		return
	}
	// Algorithm R: the i-th sample replaces a random reservoir slot with
	// probability cap/i, implemented as a uniform index into [0, i).
	if j := h.randInt64(int64(h.total)); j < int64(len(h.samples)) {
		h.samples[j] = d
	}
}

// randInt64 returns a uniform draw in [0, n): the injected RNG when set,
// else a fixed-seed splitmix64 step (the modulo bias at n ≪ 2⁶⁴ is
// far below sampling noise).
func (h *Histogram) randInt64(n int64) int64 {
	if h.rng != nil {
		return h.rng.Int63n(n)
	}
	h.fb += 0x9e3779b97f4a7c15
	z := h.fb
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z % uint64(n))
}

// N returns the retained sample count (≤ the cap).
func (h *Histogram) N() int {
	if h == nil {
		return 0
	}
	return len(h.samples)
}

// Total returns how many samples were ever recorded, including those the
// reservoir evicted.
func (h *Histogram) Total() uint64 {
	if h == nil {
		return 0
	}
	return h.total
}

// Samples returns the raw samples.
func (h *Histogram) Samples() []time.Duration {
	if h == nil {
		return nil
	}
	return h.samples
}

// Float64s converts samples to milliseconds.
func (h *Histogram) Float64s() []float64 {
	if h == nil {
		return nil
	}
	out := make([]float64, len(h.samples))
	for i, d := range h.samples {
		out[i] = float64(d) / float64(time.Millisecond)
	}
	return out
}

// Summary summarizes the histogram in milliseconds.
func (h *Histogram) Summary() Summary { return Summarize(h.Float64s()) }

// Percentile returns the q-quantile sample.
func (h *Histogram) Percentile(q float64) time.Duration {
	if h == nil || len(h.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Reset discards all samples and the recorded total.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.total = 0
}

// Point is one time-series observation.
type Point struct {
	T time.Duration
	V float64
}

// TimeSeries is an append-only series of observations on the virtual
// timeline.
type TimeSeries struct {
	Name   string
	points []Point
}

// NewTimeSeries creates a named series.
func NewTimeSeries(name string) *TimeSeries { return &TimeSeries{Name: name} }

// Append records (t, v).
func (ts *TimeSeries) Append(t time.Duration, v float64) {
	ts.points = append(ts.points, Point{t, v})
}

// Points returns all observations.
func (ts *TimeSeries) Points() []Point { return ts.points }

// Values extracts the observation values.
func (ts *TimeSeries) Values() []float64 {
	out := make([]float64, len(ts.points))
	for i, p := range ts.points {
		out[i] = p.V
	}
	return out
}

// Between returns values observed in [from, to).
func (ts *TimeSeries) Between(from, to time.Duration) []float64 {
	var out []float64
	for _, p := range ts.points {
		if p.T >= from && p.T < to {
			out = append(out, p.V)
		}
	}
	return out
}

// String renders a compact summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f median=%.2f σ=%.2f min=%.2f max=%.2f p95=%.2f",
		s.N, s.Mean, s.Median, s.StdDev, s.Min, s.Max, s.P95)
}
