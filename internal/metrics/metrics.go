// Package metrics provides the statistics used by the experiment harness:
// summaries with two-sided trimming (the paper cuts the top and bottom 5%
// of delay samples as network-fluctuation outliers), duration histograms
// and simple time series.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary describes a sample set.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	StdDev float64
	Min    float64
	Max    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of xs (xs is not modified).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumsq float64
	for _, v := range sorted {
		sum += v
		sumsq += v * v
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Median: quantileSorted(sorted, 0.5),
		StdDev: math.Sqrt(variance),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P95:    quantileSorted(sorted, 0.95),
		P99:    quantileSorted(sorted, 0.99),
	}
}

// quantileSorted returns the q-quantile of a sorted slice (nearest-rank).
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Trim returns xs with the lowest and highest frac of samples removed
// (frac per side, e.g. 0.05 cuts 5% at each end). The result is sorted.
func Trim(xs []float64, frac float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	cut := int(float64(len(sorted)) * frac)
	if cut < 0 {
		// A negative frac would otherwise produce negative slice bounds;
		// treat it as "no trimming".
		cut = 0
	}
	if 2*cut >= len(sorted) {
		// Degenerate: keep the median.
		return sorted[len(sorted)/2 : len(sorted)/2+1]
	}
	return sorted[cut : len(sorted)-cut]
}

// TrimmedMean is the mean after two-sided trimming — the paper's estimator
// for average replication delay.
func TrimmedMean(xs []float64, frac float64) float64 {
	t := Trim(xs, frac)
	if len(t) == 0 {
		return 0
	}
	var sum float64
	for _, v := range t {
		sum += v
	}
	return sum / float64(len(t))
}

// Quantile returns the nearest-rank q-quantile of xs (0 for an empty
// slice); xs is not modified. q is clamped to [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	return quantileSorted(sorted, q)
}

// Histogram collects durations.
type Histogram struct {
	samples []time.Duration
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) { h.samples = append(h.samples, d) }

// N returns the sample count.
func (h *Histogram) N() int { return len(h.samples) }

// Samples returns the raw samples.
func (h *Histogram) Samples() []time.Duration { return h.samples }

// Float64s converts samples to milliseconds.
func (h *Histogram) Float64s() []float64 {
	out := make([]float64, len(h.samples))
	for i, d := range h.samples {
		out[i] = float64(d) / float64(time.Millisecond)
	}
	return out
}

// Summary summarizes the histogram in milliseconds.
func (h *Histogram) Summary() Summary { return Summarize(h.Float64s()) }

// Percentile returns the q-quantile sample.
func (h *Histogram) Percentile(q float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Reset discards all samples.
func (h *Histogram) Reset() { h.samples = h.samples[:0] }

// Point is one time-series observation.
type Point struct {
	T time.Duration
	V float64
}

// TimeSeries is an append-only series of observations on the virtual
// timeline.
type TimeSeries struct {
	Name   string
	points []Point
}

// NewTimeSeries creates a named series.
func NewTimeSeries(name string) *TimeSeries { return &TimeSeries{Name: name} }

// Append records (t, v).
func (ts *TimeSeries) Append(t time.Duration, v float64) {
	ts.points = append(ts.points, Point{t, v})
}

// Points returns all observations.
func (ts *TimeSeries) Points() []Point { return ts.points }

// Values extracts the observation values.
func (ts *TimeSeries) Values() []float64 {
	out := make([]float64, len(ts.points))
	for i, p := range ts.points {
		out[i] = p.V
	}
	return out
}

// Between returns values observed in [from, to).
func (ts *TimeSeries) Between(from, to time.Duration) []float64 {
	var out []float64
	for _, p := range ts.points {
		if p.T >= from && p.T < to {
			out = append(out, p.V)
		}
	}
	return out
}

// String renders a compact summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f median=%.2f σ=%.2f min=%.2f max=%.2f p95=%.2f",
		s.N, s.Mean, s.Median, s.StdDev, s.Min, s.Max, s.P95)
}
