package metrics

import (
	"math/rand"
	"testing"
	"time"

	"cloudrepl/internal/sim"
)

// TestHistogramReservoirBoundsMemory is the unbounded-growth regression
// test: a long run used to append every sample, so 200k records grew the
// slice to 200k entries; now retention is capped while the recorded total
// and the quantile estimates stay sound.
func TestHistogramReservoirBoundsMemory(t *testing.T) {
	var h Histogram
	const n = 200_000
	for i := 0; i < n; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.N() > DefaultHistogramCap {
		t.Fatalf("retained %d samples, cap %d", h.N(), DefaultHistogramCap)
	}
	if h.Total() != n {
		t.Fatalf("total = %d, want %d", h.Total(), n)
	}
	// A uniform reservoir over a uniform ramp keeps the quantiles roughly in
	// place; a wide tolerance still catches head-only or tail-only retention.
	med := float64(h.Percentile(0.5)) / float64(time.Microsecond)
	if med < n/4 || med > 3*n/4 {
		t.Fatalf("median %v wildly off for a uniform ramp of %d", med, n)
	}
}

// TestHistogramReservoirDeterministic: with the same injected RNG seed the
// reservoir evicts identically, and the zero-value fallback generator is
// deterministic on its own.
func TestHistogramReservoirDeterministic(t *testing.T) {
	run := func(rng *rand.Rand) []time.Duration {
		var h Histogram
		h.SetCap(64)
		h.SetRand(rng)
		for i := 0; i < 10_000; i++ {
			h.Record(time.Duration(i))
		}
		return append([]time.Duration(nil), h.Samples()...)
	}
	a := run(sim.NewEnv(7).Rand())
	b := run(sim.NewEnv(7).Rand())
	if len(a) != 64 || len(b) != 64 {
		t.Fatalf("reservoir sizes %d/%d, want 64", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed reservoirs differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(nil) // fallback splitmix64
	d := run(nil)
	for i := range c {
		if c[i] != d[i] {
			t.Fatalf("fallback reservoirs differ at %d: %v vs %v", i, c[i], d[i])
		}
	}
}

// TestHistogramBelowCapKeepsEverySample: short runs are unchanged by the
// reservoir — every sample retained in arrival order, no RNG consulted.
func TestHistogramBelowCapKeepsEverySample(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(time.Duration(i))
	}
	if h.N() != 100 || h.Total() != 100 {
		t.Fatalf("N=%d Total=%d, want 100/100", h.N(), h.Total())
	}
	for i, d := range h.Samples() {
		if d != time.Duration(i) {
			t.Fatalf("sample %d = %v, reordered below cap", i, d)
		}
	}
}

func TestHistogramSetCapAndReset(t *testing.T) {
	var h Histogram
	h.SetCap(8)
	for i := 0; i < 100; i++ {
		h.Record(time.Duration(i))
	}
	if h.N() != 8 {
		t.Fatalf("N = %d, want cap 8", h.N())
	}
	if h.Total() != 100 {
		t.Fatalf("Total = %d, want 100", h.Total())
	}
	h.Reset()
	if h.N() != 0 || h.Total() != 0 {
		t.Fatalf("Reset left N=%d Total=%d", h.N(), h.Total())
	}
}
