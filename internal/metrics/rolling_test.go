package metrics

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestWindowedRateLinearCounter(t *testing.T) {
	w := NewWindowedRate(time.Minute)
	// Counter grows at exactly 5/s, sampled every 10 s.
	for i := 0; i <= 30; i++ {
		tm := time.Duration(i) * 10 * time.Second
		w.Observe(tm, 50*float64(i))
	}
	if got := w.Rate(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("linear counter rate = %v, want 5", got)
	}
}

func TestWindowedRateSeesRecentChangeOnly(t *testing.T) {
	w := NewWindowedRate(time.Minute)
	// 10 minutes at 1/s, then the counter stalls for 2 minutes: the rate
	// over the trailing minute must drop to 0 even though the run-wide
	// average is well above it.
	var count float64
	tm := time.Duration(0)
	for i := 0; i < 60; i++ {
		tm += 10 * time.Second
		count += 10
		w.Observe(tm, count)
	}
	for i := 0; i < 12; i++ {
		tm += 10 * time.Second
		w.Observe(tm, count)
	}
	if got := w.Rate(); got != 0 {
		t.Fatalf("stalled counter rate = %v, want 0", got)
	}
}

func TestWindowedRateFewSamples(t *testing.T) {
	w := NewWindowedRate(time.Minute)
	if w.Rate() != 0 {
		t.Fatal("empty estimator should report 0")
	}
	w.Observe(time.Second, 10)
	if w.Rate() != 0 {
		t.Fatal("single sample should report 0")
	}
}

func TestWindowedRateCounterReset(t *testing.T) {
	w := NewWindowedRate(time.Minute)
	w.Observe(0, 100)
	w.Observe(10*time.Second, 200)
	w.Observe(20*time.Second, 0) // reset (e.g. component restarted)
	w.Observe(30*time.Second, 30)
	if got := w.Rate(); got < 0 {
		t.Fatalf("rate after reset = %v, must never be negative", got)
	}
}

// Property: for a counter sampled at arbitrary (random) cadences, the rate
// reported over a fully covered window equals the true slope.
func TestWindowedRateSubdivisionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		slope := 1 + rng.Float64()*20
		w := NewWindowedRate(time.Minute)
		tm := time.Duration(0)
		for tm < 5*time.Minute {
			tm += time.Duration(1+rng.Intn(5000)) * time.Millisecond
			w.Observe(tm, slope*tm.Seconds())
		}
		if got := w.Rate(); math.Abs(got-slope) > 1e-6*slope {
			t.Fatalf("trial %d: rate = %v, want %v", trial, got, slope)
		}
	}
}

func TestEWMAConstantSeries(t *testing.T) {
	e := NewEWMA(30 * time.Second)
	for i := 0; i < 100; i++ {
		e.Observe(time.Duration(i)*time.Second, 42)
	}
	if got := e.Value(); math.Abs(got-42) > 1e-9 {
		t.Fatalf("EWMA of constant 42 = %v", got)
	}
}

func TestEWMAConvergesToNewLevel(t *testing.T) {
	e := NewEWMA(10 * time.Second)
	for i := 0; i < 60; i++ {
		e.Observe(time.Duration(i)*time.Second, 0)
	}
	for i := 60; i < 180; i++ {
		e.Observe(time.Duration(i)*time.Second, 100)
	}
	// 120 s = 12 half-lives after the step: the old level's weight is
	// ~2^-12, so the average must be within a fraction of a percent of 100.
	if got := e.Value(); got < 99 || got > 100 {
		t.Fatalf("EWMA after step = %v, want ≈100", got)
	}
}

func TestEWMARecentSamplesDominate(t *testing.T) {
	slow := NewEWMA(10 * time.Minute)
	fast := NewEWMA(5 * time.Second)
	for i := 0; i < 100; i++ {
		slow.Observe(time.Duration(i)*time.Second, 10)
		fast.Observe(time.Duration(i)*time.Second, 10)
	}
	slow.Observe(101*time.Second, 1000)
	fast.Observe(101*time.Second, 1000)
	if fast.Value() <= slow.Value() {
		t.Fatalf("short half-life (%v) should track the spike harder than long (%v)",
			fast.Value(), slow.Value())
	}
}

// Property: an EWMA is a convex combination of its inputs, so it is bounded
// by their min and max for any observation times.
func TestEWMABoundedByInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		e := NewEWMA(time.Duration(1+rng.Intn(60)) * time.Second)
		min, max := math.Inf(1), math.Inf(-1)
		tm := time.Duration(0)
		for i := 0; i < 200; i++ {
			tm += time.Duration(rng.Intn(10000)) * time.Millisecond
			v := rng.NormFloat64() * 50
			min = math.Min(min, v)
			max = math.Max(max, v)
			e.Observe(tm, v)
			if got := e.Value(); got < min-1e-9 || got > max+1e-9 {
				t.Fatalf("trial %d: EWMA %v outside [%v, %v]", trial, got, min, max)
			}
		}
	}
}

func TestRollingWindowEvictsOldSamples(t *testing.T) {
	r := NewRollingWindow(time.Minute)
	for i := 0; i < 120; i++ {
		r.Observe(time.Duration(i)*time.Second, float64(i))
	}
	// Only the last ~60 seconds remain; the max equals the newest sample
	// and early values are gone.
	if r.Max() != 119 {
		t.Fatalf("max = %v, want 119", r.Max())
	}
	for _, v := range r.Values() {
		if v < 59 {
			t.Fatalf("sample %v older than the window survived", v)
		}
	}
}

func TestRollingWindowQuantile(t *testing.T) {
	r := NewRollingWindow(time.Hour)
	for i := 1; i <= 100; i++ {
		r.Observe(time.Duration(i)*time.Second, float64(i))
	}
	if q := r.Quantile(0.95); q < 94 || q > 96 {
		t.Fatalf("p95 of 1..100 = %v", q)
	}
	if m := r.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("mean of 1..100 = %v", m)
	}
}

func TestRollingWindowEmpty(t *testing.T) {
	r := NewRollingWindow(time.Minute)
	if r.Quantile(0.95) != 0 || r.Max() != 0 || r.Mean() != 0 || r.N() != 0 {
		t.Fatal("empty window should report zeros")
	}
}
