package metrics

import (
	"math"
	"sort"
	"time"
)

// WindowedRate converts samples of a monotonically non-decreasing cumulative
// counter (completed operations, pool waits, binlog events, ...) into the
// counter's rate over a trailing window of the virtual timeline. It is the
// primitive the elastic controller uses to see "throughput right now"
// instead of a run-wide average.
type WindowedRate struct {
	window  time.Duration
	samples []Point // Point.T is the observation time, Point.V the counter
}

// NewWindowedRate creates a rate estimator with the given trailing window.
// A non-positive window defaults to one minute.
func NewWindowedRate(window time.Duration) *WindowedRate {
	if window <= 0 {
		window = time.Minute
	}
	return &WindowedRate{window: window}
}

// Window returns the trailing window width.
func (w *WindowedRate) Window() time.Duration { return w.window }

// Observe records the counter's value at virtual time t. Observations must
// arrive in non-decreasing time order; the counter itself may stall but must
// never decrease (a decrease is treated as a counter reset and the history
// is discarded so the rate never goes negative).
func (w *WindowedRate) Observe(t time.Duration, count float64) {
	if n := len(w.samples); n > 0 && count < w.samples[n-1].V {
		w.samples = w.samples[:0]
	}
	w.samples = append(w.samples, Point{T: t, V: count})
	w.trim(t)
}

// trim drops samples older than the window, always keeping one sample at or
// before the window edge so the rate covers the full window width.
func (w *WindowedRate) trim(now time.Duration) {
	edge := now - w.window
	cut := 0
	for cut+1 < len(w.samples) && w.samples[cut+1].T <= edge {
		cut++
	}
	if cut > 0 {
		w.samples = append(w.samples[:0], w.samples[cut:]...)
	}
}

// Rate returns the counter's per-second rate over (at most) the trailing
// window, as of the newest observation. With fewer than two observations the
// rate is zero.
func (w *WindowedRate) Rate() float64 {
	n := len(w.samples)
	if n < 2 {
		return 0
	}
	first, last := w.samples[0], w.samples[n-1]
	span := (last.T - first.T).Seconds()
	if span <= 0 {
		return 0
	}
	return (last.V - first.V) / span
}

// EWMA is an exponentially weighted moving average over irregularly spaced
// observations: each update decays the previous average by
// 2^(-Δt/halfLife), so a sample a full half-life old contributes half as
// much as a fresh one regardless of the sampling cadence.
type EWMA struct {
	halfLife time.Duration
	value    float64
	weight   float64 // total decayed weight; 0 = no samples yet
	lastT    time.Duration
}

// NewEWMA creates an average with the given half-life. A non-positive
// half-life defaults to 30 s.
func NewEWMA(halfLife time.Duration) *EWMA {
	if halfLife <= 0 {
		halfLife = 30 * time.Second
	}
	return &EWMA{halfLife: halfLife}
}

// Observe folds the sample v at virtual time t into the average.
// Observations must arrive in non-decreasing time order.
func (e *EWMA) Observe(t time.Duration, v float64) {
	if e.weight > 0 {
		dt := t - e.lastT
		if dt < 0 {
			dt = 0
		}
		decay := math.Exp2(-float64(dt) / float64(e.halfLife))
		e.value *= decay
		e.weight *= decay
	}
	e.value += v
	e.weight++
	e.lastT = t
}

// Value returns the current weighted average (0 before any observation).
func (e *EWMA) Value() float64 {
	if e.weight == 0 {
		return 0
	}
	return e.value / e.weight
}

// N reports whether the average has seen at least one sample.
func (e *EWMA) N() float64 { return e.weight }

// RollingWindow keeps the samples observed during a trailing window of the
// virtual timeline and answers order statistics over them — the elastic
// controller's view of "p95 staleness over the last two minutes".
type RollingWindow struct {
	window  time.Duration
	samples []Point
}

// NewRollingWindow creates a window of the given width (non-positive
// defaults to one minute).
func NewRollingWindow(window time.Duration) *RollingWindow {
	if window <= 0 {
		window = time.Minute
	}
	return &RollingWindow{window: window}
}

// Observe records v at virtual time t (non-decreasing t).
func (r *RollingWindow) Observe(t time.Duration, v float64) {
	r.samples = append(r.samples, Point{T: t, V: v})
	edge := t - r.window
	cut := 0
	for cut < len(r.samples) && r.samples[cut].T < edge {
		cut++
	}
	if cut > 0 {
		r.samples = append(r.samples[:0], r.samples[cut:]...)
	}
}

// N returns the number of retained samples.
func (r *RollingWindow) N() int { return len(r.samples) }

// Values returns the retained sample values in observation order.
func (r *RollingWindow) Values() []float64 {
	out := make([]float64, len(r.samples))
	for i, p := range r.samples {
		out[i] = p.V
	}
	return out
}

// Quantile returns the q-quantile (nearest-rank) of the retained samples.
func (r *RollingWindow) Quantile(q float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	sorted := r.Values()
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// Max returns the largest retained sample (0 when empty).
func (r *RollingWindow) Max() float64 {
	var max float64
	for i, p := range r.samples {
		if i == 0 || p.V > max {
			max = p.V
		}
	}
	return max
}

// Mean returns the mean of the retained samples (0 when empty).
func (r *RollingWindow) Mean() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	var sum float64
	for _, p := range r.samples {
		sum += p.V
	}
	return sum / float64(len(r.samples))
}
