package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary: %+v", s)
	}
	want := math.Sqrt(2)
	if math.Abs(s.StdDev-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", s.StdDev, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestTrimCutsBothTails(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	trimmed := Trim(xs, 0.05)
	if len(trimmed) != 90 {
		t.Fatalf("trimmed length = %d, want 90", len(trimmed))
	}
	if trimmed[0] != 5 || trimmed[len(trimmed)-1] != 94 {
		t.Fatalf("trim bounds: %v..%v", trimmed[0], trimmed[len(trimmed)-1])
	}
}

func TestTrimmedMeanRobustToOutliers(t *testing.T) {
	xs := []float64{10, 10, 10, 10, 10, 10, 10, 10, 10, 10,
		10, 10, 10, 10, 10, 10, 10, 10, 1e9, -1e9}
	got := TrimmedMean(xs, 0.05)
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("trimmed mean = %v, want 10 (outliers cut)", got)
	}
}

func TestTrimDegenerate(t *testing.T) {
	if got := Trim([]float64{5}, 0.5); len(got) != 1 || got[0] != 5 {
		t.Fatalf("degenerate trim: %v", got)
	}
	if TrimmedMean(nil, 0.05) != 0 {
		t.Fatal("empty trimmed mean should be 0")
	}
}

// Property: the trimmed mean always lies within [min, max] of the input,
// and trimming is monotone in length.
func TestTrimProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0:0]
		for _, v := range raw {
			// Keep magnitudes physical so summation cannot overflow.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		tm := TrimmedMean(xs, 0.05)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return tm >= sorted[0]-1e-9 && tm <= sorted[len(sorted)-1]+1e-9 &&
			len(Trim(xs, 0.05)) <= len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if p := h.Percentile(0.5); p < 49*time.Millisecond || p > 52*time.Millisecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := h.Percentile(0.99); p < 98*time.Millisecond {
		t.Fatalf("p99 = %v", p)
	}
	s := h.Summary()
	if math.Abs(s.Mean-50.5) > 0.01 {
		t.Fatalf("mean ms = %v", s.Mean)
	}
	h.Reset()
	if h.N() != 0 {
		t.Fatal("reset failed")
	}
}

func TestTimeSeriesWindows(t *testing.T) {
	ts := NewTimeSeries("x")
	for i := 0; i < 10; i++ {
		ts.Append(time.Duration(i)*time.Second, float64(i))
	}
	got := ts.Between(3*time.Second, 6*time.Second)
	if len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("window: %v", got)
	}
	if len(ts.Values()) != 10 || len(ts.Points()) != 10 {
		t.Fatal("series accessors broken")
	}
}

// The paper's 5%-trimmed mean must behave at the sample-count boundaries:
// below 20 samples the per-side cut rounds to zero (plain mean), at 20+ it
// removes exactly one sample per side, and a degenerate all-equal set stays
// unchanged in value.
func TestTrimmedMeanSampleCountBoundaries(t *testing.T) {
	ascending := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i + 1)
		}
		return xs
	}
	mean := func(xs []float64) float64 {
		var sum float64
		for _, v := range xs {
			sum += v
		}
		if len(xs) == 0 {
			return 0
		}
		return sum / float64(len(xs))
	}
	cases := []struct {
		name     string
		xs       []float64
		wantLen  int     // surviving samples after the 5% trim
		wantMean float64 // expected TrimmedMean(xs, 0.05)
	}{
		{"n=0", ascending(0), 0, 0},
		{"n=1", ascending(1), 1, 1},
		{"n=19 no cut", ascending(19), 19, mean(ascending(19))},
		{"n=20 cuts one per side", ascending(20), 18, mean(ascending(20)[1:19])},
		{"n=21 cuts one per side", ascending(21), 19, mean(ascending(21)[1:20])},
		{"all equal", []float64{7, 7, 7, 7, 7}, 5, 7},
		{"all equal n=40", func() []float64 {
			xs := make([]float64, 40)
			for i := range xs {
				xs[i] = 3.5
			}
			return xs
		}(), 36, 3.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := len(Trim(tc.xs, 0.05)); got != tc.wantLen {
				t.Fatalf("Trim kept %d samples, want %d", got, tc.wantLen)
			}
			if got := TrimmedMean(tc.xs, 0.05); math.Abs(got-tc.wantMean) > 1e-9 {
				t.Fatalf("TrimmedMean = %v, want %v", got, tc.wantMean)
			}
		})
	}
}

// A negative fraction used to produce negative slice bounds and panic; it
// must now mean "no trimming".
func TestTrimNegativeFrac(t *testing.T) {
	xs := []float64{3, 1, 2}
	got := Trim(xs, -0.05)
	if len(got) != 3 {
		t.Fatalf("Trim(-0.05) kept %d samples, want 3", len(got))
	}
	if TrimmedMean(xs, -1) != 2 {
		t.Fatalf("TrimmedMean(-1) = %v, want 2", TrimmedMean(xs, -1))
	}
}

func TestQuantile(t *testing.T) {
	if got := Quantile(nil, 0.95); got != 0 {
		t.Fatalf("Quantile(nil) = %v", got)
	}
	xs := []float64{50, 10, 40, 30, 20} // unsorted on purpose
	cases := []struct {
		q    float64
		want float64
	}{{0, 10}, {0.5, 30}, {0.95, 40}, {1, 50}, {-1, 10}, {2, 50}}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); got != tc.want {
			t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if xs[0] != 50 {
		t.Fatal("Quantile mutated its input")
	}
}
