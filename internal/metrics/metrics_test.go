package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary: %+v", s)
	}
	want := math.Sqrt(2)
	if math.Abs(s.StdDev-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", s.StdDev, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestTrimCutsBothTails(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	trimmed := Trim(xs, 0.05)
	if len(trimmed) != 90 {
		t.Fatalf("trimmed length = %d, want 90", len(trimmed))
	}
	if trimmed[0] != 5 || trimmed[len(trimmed)-1] != 94 {
		t.Fatalf("trim bounds: %v..%v", trimmed[0], trimmed[len(trimmed)-1])
	}
}

func TestTrimmedMeanRobustToOutliers(t *testing.T) {
	xs := []float64{10, 10, 10, 10, 10, 10, 10, 10, 10, 10,
		10, 10, 10, 10, 10, 10, 10, 10, 1e9, -1e9}
	got := TrimmedMean(xs, 0.05)
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("trimmed mean = %v, want 10 (outliers cut)", got)
	}
}

func TestTrimDegenerate(t *testing.T) {
	if got := Trim([]float64{5}, 0.5); len(got) != 1 || got[0] != 5 {
		t.Fatalf("degenerate trim: %v", got)
	}
	if TrimmedMean(nil, 0.05) != 0 {
		t.Fatal("empty trimmed mean should be 0")
	}
}

// Property: the trimmed mean always lies within [min, max] of the input,
// and trimming is monotone in length.
func TestTrimProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0:0]
		for _, v := range raw {
			// Keep magnitudes physical so summation cannot overflow.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		tm := TrimmedMean(xs, 0.05)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return tm >= sorted[0]-1e-9 && tm <= sorted[len(sorted)-1]+1e-9 &&
			len(Trim(xs, 0.05)) <= len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if p := h.Percentile(0.5); p < 49*time.Millisecond || p > 52*time.Millisecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := h.Percentile(0.99); p < 98*time.Millisecond {
		t.Fatalf("p99 = %v", p)
	}
	s := h.Summary()
	if math.Abs(s.Mean-50.5) > 0.01 {
		t.Fatalf("mean ms = %v", s.Mean)
	}
	h.Reset()
	if h.N() != 0 {
		t.Fatal("reset failed")
	}
}

func TestTimeSeriesWindows(t *testing.T) {
	ts := NewTimeSeries("x")
	for i := 0; i < 10; i++ {
		ts.Append(time.Duration(i)*time.Second, float64(i))
	}
	got := ts.Between(3*time.Second, 6*time.Second)
	if len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("window: %v", got)
	}
	if len(ts.Values()) != 10 || len(ts.Points()) != 10 {
		t.Fatal("series accessors broken")
	}
}
