// Package pool implements a DBCP-style connection pool on the simulation
// timeline: a bounded set of reusable connections with borrow/return
// semantics, an optional wait timeout, and idle-capacity trimming. The
// paper's customized Cloudstone uses exactly this component (Apache DBCP)
// so that emulated users reuse connections instead of paying per-operation
// connection setup.
package pool

import (
	"errors"
	"fmt"
	"time"

	"cloudrepl/internal/obs"
	"cloudrepl/internal/sim"
)

// ErrExhausted is returned when MaxWait elapses without a free connection.
var ErrExhausted = errors.New("pool: exhausted (wait timeout)")

// ErrClosed is returned by Borrow after Close.
var ErrClosed = errors.New("pool: closed")

// Config sizes the pool.
type Config struct {
	// MaxActive caps connections in existence (borrowed + idle). Borrow
	// blocks when the cap is reached and nothing is idle.
	MaxActive int
	// MaxIdle caps connections kept after Return; surplus is closed.
	MaxIdle int
	// MaxWait bounds how long Borrow blocks (0 = wait forever).
	MaxWait time.Duration
	// BorrowCost is the CPU-free virtual latency of a pool checkout
	// (lock handoff); usually 0.
	BorrowCost time.Duration
	// MaxIdleTime, when positive, closes idle connections that have not
	// been borrowed for this long (DBCP's timed eviction). Requires
	// StartEvictor.
	MaxIdleTime time.Duration
}

// Stats counts pool activity.
type Stats struct {
	Created  uint64
	Closed   uint64
	Borrows  uint64
	Returns  uint64
	Waits    uint64 // borrows that had to block
	Timeouts uint64
}

// Pool is a generic connection pool for any connection type.
type Pool[T any] struct {
	// Tracer, when set, records a "pool" span around every Borrow (with a
	// waited attribute when the borrow had to block). Nil disables tracing.
	Tracer *obs.Tracer

	env     *sim.Env
	cfg     Config
	factory func() T
	closer  func(T)

	idle     []T
	idleAt   []sim.Time // per-idle-entry return time, parallel to idle
	active   int        // total connections out or idle
	waiters  *sim.Signal
	closeSig *sim.Signal // broadcast once on Close (evictor shutdown)
	closed   bool
	stats    Stats
}

// New creates a pool. factory creates a connection; closer (optional)
// disposes one.
func New[T any](env *sim.Env, cfg Config, factory func() T, closer func(T)) *Pool[T] {
	if cfg.MaxActive <= 0 {
		panic(fmt.Sprintf("pool: MaxActive must be positive, got %d", cfg.MaxActive))
	}
	if cfg.MaxIdle < 0 || cfg.MaxIdle > cfg.MaxActive {
		cfg.MaxIdle = cfg.MaxActive
	}
	if closer == nil {
		closer = func(T) {}
	}
	return &Pool[T]{env: env, cfg: cfg, factory: factory, closer: closer,
		waiters: sim.NewSignal(env).Named("pool-waiters"), closeSig: sim.NewSignal(env).Named("pool-close")}
}

// Stats returns a snapshot of the counters.
func (pl *Pool[T]) Stats() Stats { return pl.stats }

// Active returns connections currently in existence.
func (pl *Pool[T]) Active() int { return pl.active }

// Idle returns connections currently idle in the pool.
func (pl *Pool[T]) Idle() int { return len(pl.idle) }

// Borrow checks out a connection, creating one if under MaxActive, else
// blocking until a Return or until MaxWait elapses.
func (pl *Pool[T]) Borrow(p *sim.Proc) (T, error) {
	var zero T
	sp := pl.Tracer.StartSpan(p, "pool", "borrow")
	done := func(errAttr string, waited bool) {
		if waited {
			sp.SetAttr("waited", "1")
		}
		if errAttr != "" {
			sp.SetAttr("error", errAttr)
		}
		sp.End(p)
	}
	if pl.cfg.BorrowCost > 0 {
		p.Sleep(pl.cfg.BorrowCost)
	}
	deadline := sim.Time(-1)
	if pl.cfg.MaxWait > 0 {
		deadline = p.Now() + pl.cfg.MaxWait
	}
	waited := false
	for {
		if pl.closed {
			done("closed", waited)
			return zero, ErrClosed
		}
		if n := len(pl.idle); n > 0 {
			c := pl.idle[n-1]
			pl.idle = pl.idle[:n-1]
			pl.idleAt = pl.idleAt[:n-1]
			pl.stats.Borrows++
			done("", waited)
			return c, nil
		}
		if pl.active < pl.cfg.MaxActive {
			pl.active++
			pl.stats.Created++
			pl.stats.Borrows++
			c := pl.factory()
			done("", waited)
			return c, nil
		}
		// One blocked borrow is one wait, no matter how many wake-loop
		// races it loses before winning a connection.
		if !waited {
			waited = true
			pl.stats.Waits++
		}
		if deadline >= 0 {
			remain := deadline - p.Now()
			if remain <= 0 || !pl.waiters.WaitTimeout(p, remain) {
				pl.stats.Timeouts++
				done("exhausted", waited)
				return zero, ErrExhausted
			}
		} else {
			pl.waiters.Wait(p)
		}
	}
}

// PublishMetrics snapshots the pool's counters and occupancy into reg under
// the "pool." prefix.
func (pl *Pool[T]) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s := pl.stats
	reg.Counter("pool.created").Set(float64(s.Created))
	reg.Counter("pool.closed").Set(float64(s.Closed))
	reg.Counter("pool.borrows").Set(float64(s.Borrows))
	reg.Counter("pool.returns").Set(float64(s.Returns))
	reg.Counter("pool.waits").Set(float64(s.Waits))
	reg.Counter("pool.timeouts").Set(float64(s.Timeouts))
	reg.Gauge("pool.active").Set(float64(pl.active))
	reg.Gauge("pool.idle").Set(float64(len(pl.idle)))
}

// Return checks a connection back in. Surplus beyond MaxIdle is closed.
func (pl *Pool[T]) Return(c T) {
	pl.stats.Returns++
	if pl.closed || len(pl.idle) >= pl.cfg.MaxIdle {
		pl.active--
		pl.stats.Closed++
		pl.closer(c)
		pl.waiters.Broadcast() // capacity freed
		return
	}
	pl.idle = append(pl.idle, c)
	pl.idleAt = append(pl.idleAt, pl.env.Now())
	pl.waiters.Broadcast()
}

// Discard drops a borrowed connection without reuse (e.g. after an error).
func (pl *Pool[T]) Discard(c T) {
	pl.active--
	pl.stats.Closed++
	pl.closer(c)
	pl.waiters.Broadcast()
}

// Close closes idle connections and fails future Borrows. Outstanding
// connections are closed as they are returned.
func (pl *Pool[T]) Close() {
	if pl.closed {
		return
	}
	pl.closed = true
	for _, c := range pl.idle {
		pl.active--
		pl.stats.Closed++
		pl.closer(c)
	}
	pl.idle = nil
	pl.idleAt = nil
	pl.waiters.Broadcast()
	pl.closeSig.Broadcast() // stop the evictor mid-sleep
}

// EvictIdle closes idle connections unused for at least cfg.MaxIdleTime.
// It returns the number evicted.
func (pl *Pool[T]) EvictIdle() int {
	if pl.cfg.MaxIdleTime <= 0 {
		return 0
	}
	cutoff := pl.env.Now() - pl.cfg.MaxIdleTime
	kept := pl.idle[:0]
	keptAt := pl.idleAt[:0]
	evicted := 0
	for i, c := range pl.idle {
		if pl.idleAt[i] <= cutoff {
			pl.active--
			pl.stats.Closed++
			pl.closer(c)
			evicted++
			continue
		}
		kept = append(kept, c)
		keptAt = append(keptAt, pl.idleAt[i])
	}
	pl.idle = kept
	pl.idleAt = keptAt
	if evicted > 0 {
		pl.waiters.Broadcast()
	}
	return evicted
}

// StartEvictor launches a background process that runs EvictIdle every
// interval — DBCP's evictor thread. It stops promptly when the pool
// closes, even mid-sleep, instead of lingering for up to one interval.
func (pl *Pool[T]) StartEvictor(env *sim.Env, interval time.Duration) {
	env.Go("pool-evictor", func(p *sim.Proc) {
		for !pl.closed {
			if pl.closeSig.WaitTimeout(p, interval) {
				return // woken by Close
			}
			pl.EvictIdle()
		}
	})
}
