package pool

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"cloudrepl/internal/sim"
)

type fakeConn struct {
	id     int
	closed bool
}

func newTestPool(env *sim.Env, cfg Config) (*Pool[*fakeConn], *int) {
	created := 0
	p := New(env, cfg,
		func() *fakeConn { created++; return &fakeConn{id: created} },
		func(c *fakeConn) { c.closed = true })
	return p, &created
}

func TestBorrowCreatesUpToMaxActive(t *testing.T) {
	env := sim.NewEnv(1)
	pl, created := newTestPool(env, Config{MaxActive: 3, MaxIdle: 3})
	env.Go("user", func(p *sim.Proc) {
		var conns []*fakeConn
		for i := 0; i < 3; i++ {
			c, err := pl.Borrow(p)
			if err != nil {
				t.Errorf("borrow %d: %v", i, err)
			}
			conns = append(conns, c)
		}
		if *created != 3 {
			t.Errorf("created %d, want 3", *created)
		}
		for _, c := range conns {
			pl.Return(c)
		}
	})
	env.Run()
	if pl.Idle() != 3 || pl.Active() != 3 {
		t.Fatalf("idle=%d active=%d", pl.Idle(), pl.Active())
	}
}

func TestBorrowReusesIdle(t *testing.T) {
	env := sim.NewEnv(1)
	pl, created := newTestPool(env, Config{MaxActive: 2, MaxIdle: 2})
	env.Go("user", func(p *sim.Proc) {
		c1, _ := pl.Borrow(p)
		pl.Return(c1)
		c2, _ := pl.Borrow(p)
		if c1 != c2 {
			t.Error("idle connection not reused")
		}
		pl.Return(c2)
	})
	env.Run()
	if *created != 1 {
		t.Fatalf("created %d, want 1", *created)
	}
}

func TestBorrowBlocksUntilReturn(t *testing.T) {
	env := sim.NewEnv(1)
	pl, _ := newTestPool(env, Config{MaxActive: 1, MaxIdle: 1})
	var got sim.Time
	env.Go("holder", func(p *sim.Proc) {
		c, _ := pl.Borrow(p)
		p.Sleep(5 * time.Second)
		pl.Return(c)
	})
	env.Go("waiter", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // ensure holder goes first
		c, err := pl.Borrow(p)
		if err != nil {
			t.Errorf("borrow: %v", err)
		}
		got = p.Now()
		pl.Return(c)
	})
	env.Run()
	if got != 5*time.Second {
		t.Fatalf("waiter unblocked at %v, want 5s", got)
	}
	if pl.Stats().Waits != 1 {
		t.Fatalf("stats: %+v", pl.Stats())
	}
}

func TestBorrowTimeout(t *testing.T) {
	env := sim.NewEnv(1)
	pl, _ := newTestPool(env, Config{MaxActive: 1, MaxIdle: 1, MaxWait: time.Second})
	env.Go("holder", func(p *sim.Proc) {
		c, _ := pl.Borrow(p)
		p.Sleep(time.Hour)
		pl.Return(c)
	})
	var err error
	var at sim.Time
	env.Go("waiter", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		_, err = pl.Borrow(p)
		at = p.Now()
	})
	env.RunUntil(2 * time.Second)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if at != time.Second+time.Millisecond {
		t.Fatalf("timed out at %v", at)
	}
	if pl.Stats().Timeouts != 1 {
		t.Fatalf("stats: %+v", pl.Stats())
	}
	env.Stop()
	env.Shutdown()
}

func TestMaxIdleTrimsOnReturn(t *testing.T) {
	env := sim.NewEnv(1)
	pl, _ := newTestPool(env, Config{MaxActive: 4, MaxIdle: 1})
	env.Go("user", func(p *sim.Proc) {
		var conns []*fakeConn
		for i := 0; i < 4; i++ {
			c, _ := pl.Borrow(p)
			conns = append(conns, c)
		}
		for _, c := range conns {
			pl.Return(c)
		}
		if pl.Idle() != 1 {
			t.Errorf("idle = %d, want 1", pl.Idle())
		}
		closed := 0
		for _, c := range conns {
			if c.closed {
				closed++
			}
		}
		if closed != 3 {
			t.Errorf("closed = %d, want 3", closed)
		}
	})
	env.Run()
	if pl.Active() != 1 {
		t.Fatalf("active = %d, want 1", pl.Active())
	}
}

func TestDiscardFreesCapacity(t *testing.T) {
	env := sim.NewEnv(1)
	pl, _ := newTestPool(env, Config{MaxActive: 1, MaxIdle: 1})
	var second *fakeConn
	env.Go("user", func(p *sim.Proc) {
		c, _ := pl.Borrow(p)
		pl.Discard(c)
		if !c.closed {
			t.Error("discarded connection not closed")
		}
		second, _ = pl.Borrow(p)
		pl.Return(second)
	})
	env.Run()
	if second == nil {
		t.Fatal("borrow after discard failed")
	}
}

func TestCloseFailsFutureBorrows(t *testing.T) {
	env := sim.NewEnv(1)
	pl, _ := newTestPool(env, Config{MaxActive: 2, MaxIdle: 2})
	env.Go("user", func(p *sim.Proc) {
		c, _ := pl.Borrow(p)
		pl.Return(c)
		pl.Close()
		if !c.closed {
			t.Error("idle connection not closed by Close")
		}
		if _, err := pl.Borrow(p); !errors.Is(err, ErrClosed) {
			t.Errorf("borrow after close: %v", err)
		}
	})
	env.Run()
}

func TestWaitersFIFOish(t *testing.T) {
	// All waiters eventually get a connection; none starve.
	env := sim.NewEnv(1)
	pl, _ := newTestPool(env, Config{MaxActive: 2, MaxIdle: 2})
	served := 0
	for i := 0; i < 20; i++ {
		env.Go("user", func(p *sim.Proc) {
			c, err := pl.Borrow(p)
			if err != nil {
				t.Errorf("borrow: %v", err)
				return
			}
			p.Sleep(100 * time.Millisecond)
			pl.Return(c)
			served++
		})
	}
	env.Run()
	if served != 20 {
		t.Fatalf("served = %d, want 20", served)
	}
}

// Property: under any workload of borrow/hold/return cycles, the pool never
// exceeds MaxActive simultaneously-borrowed connections and conserves them
// (borrows = returns at quiesce).
func TestPoolCapacityInvariantProperty(t *testing.T) {
	f := func(seed int64, users, maxActive uint8) bool {
		nu := int(users%20) + 1
		ma := int(maxActive%5) + 1
		env := sim.NewEnv(seed)
		pl, _ := newTestPool(env, Config{MaxActive: ma, MaxIdle: ma})
		out := 0
		violated := false
		for i := 0; i < nu; i++ {
			env.Go("user", func(p *sim.Proc) {
				for k := 0; k < 3; k++ {
					c, err := pl.Borrow(p)
					if err != nil {
						violated = true
						return
					}
					out++
					if out > ma {
						violated = true
					}
					p.Sleep(sim.Exp(p.Rand(), 10*time.Millisecond))
					out--
					pl.Return(c)
				}
			})
		}
		env.Run()
		return !violated && pl.Stats().Borrows == pl.Stats().Returns
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEvictIdleClosesStaleConnections(t *testing.T) {
	env := sim.NewEnv(1)
	pl, _ := newTestPool(env, Config{MaxActive: 4, MaxIdle: 4, MaxIdleTime: 10 * time.Second})
	env.Go("user", func(p *sim.Proc) {
		var conns []*fakeConn
		for i := 0; i < 3; i++ {
			c, _ := pl.Borrow(p)
			conns = append(conns, c)
		}
		for _, c := range conns {
			pl.Return(c)
		}
		p.Sleep(5 * time.Second)
		// Borrow one back so its idle clock resets on return.
		c, _ := pl.Borrow(p)
		pl.Return(c)
		p.Sleep(6 * time.Second) // two conns now idle 11s, one idle 6s
		if n := pl.EvictIdle(); n != 2 {
			t.Errorf("evicted %d, want 2", n)
		}
		if pl.Idle() != 1 {
			t.Errorf("idle = %d, want 1", pl.Idle())
		}
	})
	env.Run()
}

func TestEvictorProcess(t *testing.T) {
	env := sim.NewEnv(1)
	pl, _ := newTestPool(env, Config{MaxActive: 2, MaxIdle: 2, MaxIdleTime: 5 * time.Second})
	pl.StartEvictor(env, time.Second)
	env.Go("user", func(p *sim.Proc) {
		c, _ := pl.Borrow(p)
		pl.Return(c)
	})
	env.RunUntil(10 * time.Second)
	if pl.Idle() != 0 || pl.Active() != 0 {
		t.Fatalf("idle=%d active=%d after evictor ran", pl.Idle(), pl.Active())
	}
	pl.Close()
	env.RunUntil(20 * time.Second)
	env.Stop()
	env.Shutdown()
}

func TestEvictIdleNoopWithoutMaxIdleTime(t *testing.T) {
	env := sim.NewEnv(1)
	pl, _ := newTestPool(env, Config{MaxActive: 2, MaxIdle: 2})
	env.Go("user", func(p *sim.Proc) {
		c, _ := pl.Borrow(p)
		pl.Return(c)
		p.Sleep(time.Hour)
		if n := pl.EvictIdle(); n != 0 {
			t.Errorf("evicted %d without MaxIdleTime", n)
		}
	})
	env.Run()
}
