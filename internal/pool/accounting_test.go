package pool

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cloudrepl/internal/sim"
)

// TestWaitsCountedOncePerBlockedBorrow: a borrow that loses several
// wake-loop races before winning a connection is still one wait, not one
// per loop iteration.
func TestWaitsCountedOncePerBlockedBorrow(t *testing.T) {
	env := sim.NewEnv(1)
	pl, _ := newTestPool(env, Config{MaxActive: 1, MaxIdle: 1})
	env.Go("holder", func(p *sim.Proc) {
		c, _ := pl.Borrow(p)
		for i := 0; i < 5; i++ {
			p.Sleep(time.Second)
			pl.Return(c)
			// Re-borrow without yielding: the blocked waiter wakes to an
			// empty pool each round and must sleep again.
			c, _ = pl.Borrow(p)
		}
		p.Sleep(time.Second)
		pl.Return(c)
	})
	var got sim.Time
	env.Go("waiter", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		c, err := pl.Borrow(p)
		if err != nil {
			t.Errorf("borrow: %v", err)
			return
		}
		got = p.Now()
		pl.Return(c)
	})
	env.Run()
	env.Shutdown()
	if got != 6*time.Second {
		t.Fatalf("waiter unblocked at %v, want 6s", got)
	}
	if w := pl.Stats().Waits; w != 1 {
		t.Fatalf("Waits = %d for one blocked borrow, want 1", w)
	}
}

// TestTimeoutStatsUnderContention: several waiters against one held
// connection each record exactly one wait and one timeout.
func TestTimeoutStatsUnderContention(t *testing.T) {
	env := sim.NewEnv(2)
	pl, _ := newTestPool(env, Config{MaxActive: 1, MaxIdle: 1, MaxWait: time.Second})
	env.Go("holder", func(p *sim.Proc) {
		c, _ := pl.Borrow(p)
		p.Sleep(time.Hour)
		pl.Return(c)
	})
	timedOut := 0
	for i := 0; i < 3; i++ {
		env.Go(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			p.Sleep(time.Millisecond)
			if _, err := pl.Borrow(p); errors.Is(err, ErrExhausted) {
				timedOut++
			}
		})
	}
	env.RunUntil(2 * time.Second)
	env.Stop()
	env.Shutdown()
	if timedOut != 3 {
		t.Fatalf("%d of 3 waiters timed out", timedOut)
	}
	st := pl.Stats()
	if st.Waits != 3 || st.Timeouts != 3 {
		t.Fatalf("stats: %+v, want 3 waits and 3 timeouts", st)
	}
	if st.Borrows != 1 {
		t.Fatalf("Borrows = %d, want only the holder's", st.Borrows)
	}
}

// TestEvictorStopsPromptlyOnClose: Close wakes the evictor mid-sleep; the
// simulation drains without the evictor sitting out its full interval.
func TestEvictorStopsPromptlyOnClose(t *testing.T) {
	env := sim.NewEnv(3)
	pl, _ := newTestPool(env, Config{MaxActive: 2, MaxIdle: 2, MaxIdleTime: time.Second})
	pl.StartEvictor(env, time.Hour)
	env.Go("user", func(p *sim.Proc) {
		c, _ := pl.Borrow(p)
		pl.Return(c)
		p.Sleep(time.Second)
		pl.Close()
	})
	env.Run()
	env.Shutdown()
	if env.Now() >= time.Hour {
		t.Fatalf("simulation ran to %v — the evictor slept out its interval past Close", env.Now())
	}
}
