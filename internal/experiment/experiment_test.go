package experiment

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"cloudrepl/internal/repl"
)

// shortSpec returns a quick-protocol spec.
func shortSpec(users, slaves int, loc Location, ratio float64, scale int) RunSpec {
	return RunSpec{
		Seed: int64(users*1000 + slaves*10 + int(loc)), Users: users, Slaves: slaves,
		Scale: scale, ReadRatio: ratio, Loc: loc,
		RampUp: 90 * time.Second, Steady: 4 * time.Minute, RampDown: 30 * time.Second,
	}
}

func TestRunProducesThroughputAndDelay(t *testing.T) {
	res, err := Run(shortSpec(50, 2, SameZone, 0.5, 300))
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput < 4 || res.Throughput > 10 {
		t.Fatalf("throughput = %v, want ≈7 ops/s for 50 users", res.Throughput)
	}
	if res.AvgDelayMs <= 0 {
		t.Fatalf("delay = %v", res.AvgDelayMs)
	}
	if len(res.PerSlaveDelayMs) != 2 || len(res.SlaveUtil) != 2 {
		t.Fatalf("per-slave metrics: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("errors: %d", res.Errors)
	}
}

func TestUnloadedBaselineRun(t *testing.T) {
	res, err := Run(shortSpec(0, 1, DiffRegion, 0.5, 300))
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput != 0 {
		t.Fatalf("baseline throughput = %v", res.Throughput)
	}
	// Cross-region baseline delay ≈ one-way 173ms + apply; well under 1s.
	if res.AvgDelayMs < 150 || res.AvgDelayMs > 1000 {
		t.Fatalf("cross-region baseline delay = %v ms", res.AvgDelayMs)
	}
}

// TestSlaveSaturationMovesToMaster reproduces the §IV-A saturation
// narrative at 50/50: with 1 slave the slave pins at 100% CPU while the
// master stays moderate; with 4 slaves at high workload the master pins
// and the slaves are over-provisioned.
func TestSlaveSaturationMovesToMaster(t *testing.T) {
	oneSlave, err := Run(shortSpec(100, 1, SameZone, 0.5, 300))
	if err != nil {
		t.Fatal(err)
	}
	if oneSlave.SlaveUtil[0] < 0.9 {
		t.Fatalf("1 slave at 100 users: slave util %.2f, want saturated", oneSlave.SlaveUtil[0])
	}
	if oneSlave.MasterUtil > 0.85 {
		t.Fatalf("1 slave at 100 users: master util %.2f, should not be the bottleneck yet", oneSlave.MasterUtil)
	}

	fourSlaves, err := Run(shortSpec(200, 4, SameZone, 0.5, 300))
	if err != nil {
		t.Fatal(err)
	}
	if fourSlaves.MasterUtil < 0.9 {
		t.Fatalf("4 slaves at 200 users: master util %.2f, want saturated", fourSlaves.MasterUtil)
	}
	for _, u := range fourSlaves.SlaveUtil {
		if u > 0.7 {
			t.Fatalf("4 slaves at 200 users: slave util %.2f, want over-provisioned", u)
		}
	}
}

// TestThroughputCapIsMasterBound: adding the 4th slave at 50/50 buys no
// throughput once the master saturates (the paper's central scalability
// limit).
func TestThroughputCapIsMasterBound(t *testing.T) {
	three, err := Run(shortSpec(200, 3, SameZone, 0.5, 300))
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(shortSpec(200, 4, SameZone, 0.5, 300))
	if err != nil {
		t.Fatal(err)
	}
	if diff := four.Throughput - three.Throughput; diff > 2.0 {
		t.Fatalf("4th slave bought %.2f ops/s; master-bound cap expected", diff)
	}
}

// TestDelayGrowsWithWorkloadAndShrinksWithSlaves reproduces the two delay
// trends of §IV-B.2.
func TestDelayGrowsWithWorkloadAndShrinksWithSlaves(t *testing.T) {
	low, err := Run(shortSpec(50, 2, SameZone, 0.5, 300))
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(shortSpec(150, 2, SameZone, 0.5, 300))
	if err != nil {
		t.Fatal(err)
	}
	if high.AvgDelayMs < 5*low.AvgDelayMs {
		t.Fatalf("delay at 150 users (%.1f ms) not ≫ delay at 50 users (%.1f ms)",
			high.AvgDelayMs, low.AvgDelayMs)
	}
	moreSlaves, err := Run(shortSpec(150, 4, SameZone, 0.5, 300))
	if err != nil {
		t.Fatal(err)
	}
	if moreSlaves.AvgDelayMs >= high.AvgDelayMs {
		t.Fatalf("delay with 4 slaves (%.1f ms) not below 2 slaves (%.1f ms) at same load",
			moreSlaves.AvgDelayMs, high.AvgDelayMs)
	}
}

// TestGeographyMattersLessThanWorkload reproduces the §IV-B.2 conclusion:
// cross-region adds ≈157ms to the unloaded baseline, but workload moves
// delay by orders of magnitude.
func TestGeographyMattersLessThanWorkload(t *testing.T) {
	baseSame, err := Run(shortSpec(0, 2, SameZone, 0.5, 300))
	if err != nil {
		t.Fatal(err)
	}
	baseRegion, err := Run(shortSpec(0, 2, DiffRegion, 0.5, 300))
	if err != nil {
		t.Fatal(err)
	}
	geoGap := baseRegion.AvgDelayMs - baseSame.AvgDelayMs
	if geoGap < 100 || geoGap > 300 {
		t.Fatalf("geographic baseline gap = %.1f ms, want ≈157", geoGap)
	}
	loaded, err := Run(shortSpec(175, 2, SameZone, 0.5, 300))
	if err != nil {
		t.Fatal(err)
	}
	workloadEffect := loaded.AvgDelayMs - baseSame.AvgDelayMs
	if workloadEffect < 5*geoGap {
		t.Fatalf("workload effect (%.1f ms) should dwarf geography (%.1f ms)",
			workloadEffect, geoGap)
	}
}

// TestGeoThroughputOrdering: same zone ≥ different zone ≥ different region
// throughput at a fixed sub-saturation workload, since all users sit next
// to the master.
func TestGeoThroughputOrdering(t *testing.T) {
	var tps [3]float64
	for i, loc := range []Location{SameZone, DiffZone, DiffRegion} {
		res, err := Run(shortSpec(125, 2, loc, 0.8, 600))
		if err != nil {
			t.Fatal(err)
		}
		tps[i] = res.Throughput
	}
	if tps[0] < tps[2] {
		t.Fatalf("same-zone throughput %.2f below different-region %.2f", tps[0], tps[2])
	}
	// The read-heavy 80/20 ratio makes the cross-region degradation
	// noticeable (paper: degradation grows with read percentage).
	if tps[2] >= tps[0]*0.98 {
		t.Fatalf("no visible cross-region degradation: %.2f vs %.2f", tps[2], tps[0])
	}
}

func TestSweepFillsAllCells(t *testing.T) {
	sw := &Sweep{
		ReadRatio: 0.5,
		Scale:     300,
		Locs:      []Location{SameZone},
		SlaveNums: []int{1, 2},
		UserNums:  []int{50, 100},
		Opts:      SweepOpts{Short: true, Seed: 900},
	}
	if err := sw.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sw.Results) != 4 {
		t.Fatalf("results: %d, want 4", len(sw.Results))
	}
	if len(sw.Baselines) != 2 {
		t.Fatalf("baselines: %d, want 2", len(sw.Baselines))
	}
	for k, r := range sw.Results {
		if r.Throughput <= 0 {
			t.Fatalf("cell %+v has no throughput", k)
		}
	}
	if d := sw.RelativeDelay(SameZone, 1, 100); d <= 0 {
		t.Fatalf("relative delay = %v", d)
	}
	out := sw.RenderThroughput("FIG test")
	if !strings.Contains(out, "users") || !strings.Contains(out, "1 slv") {
		t.Fatalf("render output malformed:\n%s", out)
	}
	if csv := sw.CSV(); !strings.Contains(csv, "same zone") {
		t.Fatalf("csv malformed:\n%s", csv)
	}
	if sat := sw.RenderSaturation("FIG test"); !strings.Contains(sat, "slaves") {
		t.Fatalf("saturation table malformed:\n%s", sat)
	}
}

func TestSaturationPointDefinition(t *testing.T) {
	sw := &Sweep{
		UserNums: []int{50, 100, 150},
		Results: map[Key]RunResult{
			{SameZone, 1, 50}:  {Throughput: 7},
			{SameZone, 1, 100}: {Throughput: 13},
			{SameZone, 1, 150}: {Throughput: 12},
		},
	}
	users, maxTp, ok := sw.SaturationPoint(SameZone, 1)
	if !ok || users != 150 || maxTp != 13 {
		t.Fatalf("saturation = %d/%.1f/%v, want 150/13/true (point after max)", users, maxTp, ok)
	}
	// Still rising: not reached.
	sw.Results[Key{SameZone, 1, 150}] = RunResult{Throughput: 20}
	if _, _, ok := sw.SaturationPoint(SameZone, 1); ok {
		t.Fatal("saturation reported while throughput still rising")
	}
}

func TestFig4ReproducesPaperStats(t *testing.T) {
	once, every := Fig4(99)
	if once.Stats.Median < 20 || once.Stats.Median > 40 {
		t.Fatalf("sync-once median %.2f ms, paper ≈28.23", once.Stats.Median)
	}
	if once.Stats.StdDev < 8 || once.Stats.StdDev > 17 {
		t.Fatalf("sync-once σ %.2f ms, paper ≈12.31", once.Stats.StdDev)
	}
	if every.Stats.Median < 2 || every.Stats.Median > 5 {
		t.Fatalf("every-second median %.2f ms, paper ≈3.30", every.Stats.Median)
	}
	if every.Stats.StdDev < 0.4 || every.Stats.StdDev > 2.5 {
		t.Fatalf("every-second σ %.2f ms, paper ≈1.19", every.Stats.StdDev)
	}
	out := RenderFig4(once, every)
	if !strings.Contains(out, "median") {
		t.Fatalf("render: %s", out)
	}
}

func TestTableRTTMatchesPaper(t *testing.T) {
	rows := TableRTT(7)
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	want := map[Location]float64{SameZone: 16, DiffZone: 21, DiffRegion: 173}
	for _, r := range rows {
		w := want[r.Loc]
		if r.HalfRTTMs < w*0.9 || r.HalfRTTMs > w*1.1 {
			t.Fatalf("%s half-RTT %.1f ms, want ≈%.0f", r.Loc, r.HalfRTTMs, w)
		}
	}
	if out := RenderRTT(rows); !strings.Contains(out, "same zone") {
		t.Fatalf("render: %s", out)
	}
}

func TestSyncModeAblationSpec(t *testing.T) {
	// A sync-mode run completes and reports sane throughput (lower than
	// async at the same point because writers block on cross-slave acks).
	asyncRes, err := Run(shortSpec(75, 2, DiffRegion, 0.5, 300))
	if err != nil {
		t.Fatal(err)
	}
	spec := shortSpec(75, 2, DiffRegion, 0.5, 300)
	spec.Mode = repl.Sync
	syncRes, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if syncRes.Throughput >= asyncRes.Throughput {
		t.Fatalf("sync throughput %.2f not below async %.2f over a 173ms link",
			syncRes.Throughput, asyncRes.Throughput)
	}
	if syncRes.AvgDelayMs > asyncRes.AvgDelayMs {
		t.Fatalf("sync staleness %.1f ms should not exceed async %.1f ms",
			syncRes.AvgDelayMs, asyncRes.AvgDelayMs)
	}
}

func TestLocationStringsAndPlacements(t *testing.T) {
	if SameZone.SlavePlacement() != MasterPlacement {
		t.Fatal("same zone placement mismatch")
	}
	if DiffZone.SlavePlacement().Region != MasterPlacement.Region {
		t.Fatal("different zone must stay in region")
	}
	if DiffRegion.SlavePlacement().Region == MasterPlacement.Region {
		t.Fatal("different region must leave the region")
	}
	for _, loc := range []Location{SameZone, DiffZone, DiffRegion} {
		if loc.String() == "" {
			t.Fatal("empty location name")
		}
	}
}

// TestApplierPriorityCollapsesDelay verifies the A-PRIO ablation: with the
// SQL thread scheduled at high priority the staleness blow-up disappears.
func TestApplierPriorityCollapsesDelay(t *testing.T) {
	normal, err := Run(shortSpec(150, 2, SameZone, 0.5, 300))
	if err != nil {
		t.Fatal(err)
	}
	spec := shortSpec(150, 2, SameZone, 0.5, 300)
	spec.PriorityApply = true
	prio, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if prio.AvgDelayMs >= normal.AvgDelayMs/3 {
		t.Fatalf("prioritized applier delay %.1f ms not ≪ FIFO delay %.1f ms",
			prio.AvgDelayMs, normal.AvgDelayMs)
	}
	if prio.Throughput < normal.Throughput*0.7 {
		t.Fatalf("prioritized applier cost too much throughput: %.2f vs %.2f",
			prio.Throughput, normal.Throughput)
	}
}

// TestArchitectureAblation verifies the §II architectural trade-off: the
// multi-master group accepts writes at any node but pays ordering latency,
// so its write latency exceeds master-slave's async commit on the same
// hardware, while both serve the moderate workload.
func TestArchitectureAblation(t *testing.T) {
	rows, err := AblationArchitectures(SweepOpts{Short: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	ms, mm := rows[0], rows[1]
	if ms.Throughput <= 0 || mm.Throughput <= 0 {
		t.Fatalf("throughputs: %+v", rows)
	}
	if mm.WriteLatencyMs <= ms.WriteLatencyMs {
		t.Fatalf("multi-master write latency %.1f ms should exceed master-slave %.1f ms (ordering round trip)",
			mm.WriteLatencyMs, ms.WriteLatencyMs)
	}
	if out := RenderArchitectures(rows); !strings.Contains(out, "multi-master") {
		t.Fatalf("render: %s", out)
	}
}

func TestLagSeriesSampled(t *testing.T) {
	res, err := Run(shortSpec(100, 1, SameZone, 0.5, 300))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LagSeries) != 1 {
		t.Fatalf("lag series: %d", len(res.LagSeries))
	}
	pts := res.LagSeries[0].Points()
	if len(pts) < 10 {
		t.Fatalf("lag samples: %d", len(pts))
	}
	// Near saturation the backlog at the end of steady state exceeds the
	// early-ramp backlog.
	early, late := pts[2].V, pts[len(pts)/2].V
	if late <= early {
		t.Fatalf("backlog did not grow under saturation: early %v late %v", early, late)
	}
}

func TestAblationRenderers(t *testing.T) {
	sync := []SyncModeResult{
		{Mode: repl.Async, Loc: SameZone, Res: RunResult{Throughput: 14, WriteLatencyMsMean: 120, LatencyMsMean: 130, AvgDelayMs: 90}},
		{Mode: repl.Sync, Loc: DiffRegion, Res: RunResult{Throughput: 9, WriteLatencyMsMean: 520, LatencyMsMean: 300, AvgDelayMs: 20}},
	}
	if out := RenderSyncModes(sync); !strings.Contains(out, "semi-sync waits") || !strings.Contains(out, "async") {
		t.Fatalf("sync render:\n%s", out)
	}
	bal := []BalancerResult{{Name: "round-robin", Res: RunResult{Throughput: 20, AvgDelayMs: 5000}}}
	if out := RenderBalancers(bal); !strings.Contains(out, "round-robin") {
		t.Fatalf("balancer render:\n%s", out)
	}
	v := VariationResult{HomogeneousTp: 13.5, SampleTps: []float64{12, 14}, MeanTp: 13, CoV: 0.08, MinTp: 12, MaxTp: 14}
	if out := RenderVariation(v); !strings.Contains(out, "homogeneous control") {
		t.Fatalf("variation render:\n%s", out)
	}
	pr := PriorityResult{
		Normal:      RunResult{Throughput: 20, AvgDelayMs: 60000, LatencyMsMean: 250},
		Prioritized: RunResult{Throughput: 19, AvgDelayMs: 200, LatencyMsMean: 280},
	}
	if out := RenderApplierPriority(pr); !strings.Contains(out, "FIFO (MySQL-like)") {
		t.Fatalf("priority render:\n%s", out)
	}
}

func TestPipelineResultAccessorsAndRender(t *testing.T) {
	r := PipelineResult{
		Loc:      SameZone,
		UserNums: []int{50, 100, 150},
		Curves: []PipelineCurve{
			{
				Variant: "baseline", Slaves: 4,
				Unloaded: RunResult{AvgDelayMs: 40},
				Points: []PipelinePoint{
					{Users: 50, Res: RunResult{Throughput: 10, P95DelayMs: 90}},
					{Users: 100, Res: RunResult{Throughput: 21, P95DelayMs: 300}},
					{Users: 150, Res: RunResult{Throughput: 19, P95DelayMs: 9000}},
				},
				KneeUsers: 150, MaxTp: 21, KneeFound: true,
			},
			{
				Variant: "full-pipeline", Slaves: 4,
				Unloaded: RunResult{AvgDelayMs: 41},
				Points: []PipelinePoint{
					{Users: 50, Res: RunResult{Throughput: 10, P95DelayMs: 85}},
					{Users: 100, Res: RunResult{Throughput: 22, P95DelayMs: 250}},
					{Users: 150, Res: RunResult{Throughput: 27, P95DelayMs: 400}},
				},
				KneeUsers: 150, MaxTp: 27, KneeFound: false,
			},
		},
	}
	c := r.Curve("baseline", 4)
	if c == nil || c.MaxTp != 21 {
		t.Fatalf("Curve lookup failed: %+v", c)
	}
	if r.Curve("baseline", 2) != nil || r.Curve("nope", 4) != nil {
		t.Fatal("Curve matched a missing variant/slave combination")
	}
	// p95 at or below the knee: the 150-user point is AT the knee so it
	// counts; for the unbounded curve every point counts.
	if got := c.loadedP95(); got != 9000 {
		t.Fatalf("baseline loadedP95 = %v, want 9000", got)
	}
	if got := r.Curve("full-pipeline", 4).loadedP95(); got != 400 {
		t.Fatalf("full-pipeline loadedP95 = %v, want 400", got)
	}
	out := RenderPipeline(r)
	for _, want := range []string{"A-PIPELINE", "baseline", "full-pipeline", ">150"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if _, err := json.Marshal(PipelineJSON(r)); err != nil {
		t.Fatalf("PipelineJSON not marshalable: %v", err)
	}
}
