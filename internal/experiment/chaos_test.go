package experiment

import (
	"strings"
	"testing"
	"time"

	"cloudrepl/internal/chaos"
	"cloudrepl/internal/proxy"
)

// chaosSpec is a quick mid-load point for fault-injection tests.
func chaosSpec(seed int64) RunSpec {
	return RunSpec{
		Seed: seed, Users: 60, Slaves: 2, Scale: 300, ReadRatio: 0.5, Loc: SameZone,
		RampUp: time.Minute, Steady: 2 * time.Minute, RampDown: 30 * time.Second,
	}
}

// TestRetryLayerFreeWhenNoFaults: arming the retry policy without any fault
// schedule must not change the run at all — same seed, same throughput.
func TestRetryLayerFreeWhenNoFaults(t *testing.T) {
	plain, err := Run(chaosSpec(71))
	if err != nil {
		t.Fatal(err)
	}
	retry := proxy.DefaultRetryPolicy()
	spec := chaosSpec(71)
	spec.Retry = &retry
	armed, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Throughput != armed.Throughput {
		t.Fatalf("retry policy perturbed a fault-free run: %v vs %v ops/s",
			plain.Throughput, armed.Throughput)
	}
	if armed.ProxyStats.Retries != 0 || armed.ProxyStats.Failovers != 0 {
		t.Fatalf("robustness counters moved without faults: %+v", armed.ProxyStats)
	}
}

// TestRunDeterministicUnderChaos: the same seed and fault schedule
// reproduce the same run bit-for-bit.
func TestRunDeterministicUnderChaos(t *testing.T) {
	mk := func() RunSpec {
		retry := proxy.DefaultRetryPolicy()
		spec := chaosSpec(72)
		spec.Retry = &retry
		spec.Chaos = new(chaos.Schedule).CrashFor(90*time.Second, 30*time.Second, "slave1")
		return spec
	}
	a, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.Errors != b.Errors || a.ProxyStats != b.ProxyStats {
		t.Fatalf("chaos run not deterministic:\n%v %d %+v\n%v %d %+v",
			a.Throughput, a.Errors, a.ProxyStats, b.Throughput, b.Errors, b.ProxyStats)
	}
}

// TestSlaveCrashRunSurvives: killing and restarting a replica mid-run
// completes the protocol with the injector's counters reconciling and the
// ops series sampled throughout.
func TestSlaveCrashRunSurvives(t *testing.T) {
	retry := proxy.DefaultRetryPolicy()
	spec := chaosSpec(73)
	spec.Retry = &retry
	spec.Chaos = new(chaos.Schedule).CrashFor(90*time.Second, 30*time.Second, "slave1")
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ChaosCounters; got.Crashes != 1 || got.Restarts != 1 || got.Skipped != 0 {
		t.Fatalf("chaos counters %+v do not reconcile with the schedule", got)
	}
	if len(res.ChaosLog) != 2 {
		t.Fatalf("chaos log: %v", res.ChaosLog)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v", res.Throughput)
	}
	if res.OpsSeries == nil || len(res.OpsSeries.Points()) == 0 {
		t.Fatal("ops series not sampled")
	}
	sc := analyzeChaos("slave-crash", res, 90*time.Second)
	if sc.PreRate <= 0 {
		t.Fatalf("pre-fault rate = %v", sc.PreRate)
	}
	if res.FinalMaster != "master" {
		t.Fatalf("slave crash must not change the master, got %q", res.FinalMaster)
	}
}

// TestMasterCrashRunFailsOver: killing the master mid-run ends with a
// promoted slave serving writes and the failover visible in the counters.
func TestMasterCrashRunFailsOver(t *testing.T) {
	retry := proxy.DefaultRetryPolicy()
	spec := chaosSpec(74)
	spec.Retry = &retry
	spec.Chaos = new(chaos.Schedule).Crash(90*time.Second, "master")
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChaosCounters.Crashes != 1 {
		t.Fatalf("chaos counters: %+v", res.ChaosCounters)
	}
	if !strings.HasPrefix(res.FinalMaster, "slave") {
		t.Fatalf("final master %q, want a promoted slave", res.FinalMaster)
	}
	if res.ProxyStats.Failovers != 1 {
		t.Fatalf("failovers = %d, want exactly 1: %+v", res.ProxyStats.Failovers, res.ProxyStats)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v after failover", res.Throughput)
	}
	// The retry layer should absorb nearly every statement that catches the
	// crash window.
	sc := analyzeChaos("master-crash", res, 90*time.Second)
	if sc.ErrorRate > 0.05 {
		t.Fatalf("error rate %.3f, want < 5%%", sc.ErrorRate)
	}
}

// TestRenderChaosFormatting: the renderer mentions every scenario and the
// robustness counters without needing a full ablation run.
func TestRenderChaosFormatting(t *testing.T) {
	r := ChaosResult{
		CrashAt: 3 * time.Minute, SlaveDownFor: time.Minute,
		Baseline:    ChaosScenario{Name: "none"},
		SlaveCrash:  ChaosScenario{Name: "slave-crash", DipPct: 12.5, RecoverySec: 30},
		MasterCrash: ChaosScenario{Name: "master-crash", RecoverySec: -1},
	}
	r.MasterCrash.Res.FinalMaster = "slave2"
	out := RenderChaos(r)
	for _, want := range []string{"A-CHAOS", "slave-crash", "master-crash", "failovers", "slave2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
