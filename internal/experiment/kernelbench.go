package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"cloudrepl/internal/sim"
)

// KernelMeasure is one kernel-speed measurement: how many simulation
// events were dispatched, how long it took on the wall clock, and the
// derived rates the regression gate watches.
type KernelMeasure struct {
	Events         uint64  `json:"events"`
	WallMs         float64 `json:"wall_ms"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// KernelBenchResult is the BENCH_kernel.json payload: the raw speed of the
// simulation kernel, tracked PR-over-PR so scheduler and allocation
// regressions surface immediately (`make bench-kernel` gates on
// micro.ns_per_event against the checked-in bench/kernel_baseline.json).
type KernelBenchResult struct {
	// Micro is a pure-kernel workload — timers, signal waits with
	// timeouts, cross-proc message delivery — with no SQL or middleware on
	// top, so it isolates the scheduler + event-pool cost per event.
	Micro KernelMeasure `json:"micro"`
	// Cell is one Fig. 2-style experiment cell on the quick protocol: the
	// kernel cost with the full model stack (proxy→pool→server→binlog)
	// running on top of it.
	Cell KernelMeasure `json:"cell"`
	// FiguresWallMs is the wall-clock of the surrounding figure/ablation
	// sweep when the bench rode along with -all; 0 for standalone runs.
	FiguresWallMs float64 `json:"figures_wall_ms"`
}

// measureKernel wall-clocks run (which reports how many kernel events it
// dispatched) and derives the per-event rates. Allocations are measured
// process-wide via MemStats: the harness is quiesced around the run, so
// the delta is dominated by the workload itself.
func measureKernel(run func() uint64) KernelMeasure {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	//cloudrepl:allow-simtime the kernel bench measures real elapsed wall time per simulated event
	start := time.Now()
	events := run()
	//cloudrepl:allow-simtime the kernel bench measures real elapsed wall time per simulated event
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	m := KernelMeasure{Events: events, WallMs: float64(wall.Nanoseconds()) / 1e6}
	if events > 0 {
		m.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
		m.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
	}
	if wall > 0 {
		m.EventsPerSec = float64(events) / wall.Seconds()
	}
	return m
}

// kernelPing is the micro-workload's Deliverable: a message that re-sends
// itself with a fixed per-hop latency until the run ends, modelling the
// kernel cost of network delivery without any network model on top.
type kernelPing struct {
	env  *sim.Env
	hop  time.Duration
	hops int
}

func (k *kernelPing) Deliver() {
	k.hops++
	k.env.ScheduleDeliver(k.hop, k)
}

// kernelMicroWorkload exercises every hot kernel path — timer events
// (Sleep), signal waits with timeouts that usually cancel (the proxied
// query pattern), broadcasts, and self-rescheduling message delivery — for
// a fixed stretch of virtual time, and reports the events dispatched. All
// scheduling derives from the seed, so the event count is deterministic.
func kernelMicroWorkload(seed int64) uint64 {
	env := sim.NewEnv(seed)
	const (
		procs   = 64
		pings   = 16
		horizon = 30 * time.Second // virtual
	)
	sig := sim.NewSignal(env).Named("kernel-bench")
	for i := 0; i < procs; i++ {
		id := i
		env.Go("bench-proc", func(p *sim.Proc) {
			for j := 0; ; j++ {
				p.Sleep(time.Duration(1+(id+j)%7) * time.Millisecond)
				switch (id + j) % 4 {
				case 0:
					sig.Broadcast()
				default:
					// Mostly signaled before the deadline: the
					// cancelled-timer tombstone path.
					sig.WaitTimeout(p, 50*time.Millisecond)
				}
			}
		})
	}
	for i := 0; i < pings; i++ {
		ping := &kernelPing{env: env, hop: time.Duration(1+i) * 500 * time.Microsecond}
		env.ScheduleDeliver(ping.hop, ping)
	}
	env.RunUntil(sim.Time(horizon))
	env.Stop()
	events := env.Events()
	env.Shutdown()
	return events
}

// KernelBench measures the simulation kernel's raw speed: a pure-kernel
// micro-workload and one full experiment cell. figuresWall, when nonzero,
// records the wall-clock of the sweep the bench rode along with.
func KernelBench(opts SweepOpts, figuresWall time.Duration) (KernelBenchResult, error) {
	res := KernelBenchResult{
		FiguresWallMs: float64(figuresWall.Nanoseconds()) / 1e6,
	}
	res.Micro = measureKernel(func() uint64 { return kernelMicroWorkload(opts.Seed) })

	ramp, steady, down := opts.phases()
	spec := RunSpec{
		Seed: opts.Seed, Users: 100, Slaves: 2, Scale: 300, ReadRatio: 0.5,
		Loc: SameZone, RampUp: ramp, Steady: steady, RampDown: down,
	}
	var err error
	res.Cell = measureKernel(func() uint64 {
		r, rerr := Run(spec)
		if rerr != nil {
			err = rerr
			return 0
		}
		return r.KernelEvents
	})
	if err != nil {
		return res, err
	}
	return res, nil
}

// RenderKernelBench formats BENCH_kernel for the console.
func RenderKernelBench(r KernelBenchResult) string {
	var b strings.Builder
	b.WriteString("BENCH-KERNEL — simulation kernel speed\n\n")
	fmt.Fprintf(&b, "%-28s %14s %12s %12s %14s\n",
		"workload", "events", "events/sec", "ns/event", "allocs/event")
	row := func(name string, m KernelMeasure) {
		fmt.Fprintf(&b, "%-28s %14d %12.0f %12.1f %14.3f\n",
			name, m.Events, m.EventsPerSec, m.NsPerEvent, m.AllocsPerEvent)
	}
	row("micro (pure kernel)", r.Micro)
	row("cell (full model stack)", r.Cell)
	if r.FiguresWallMs > 0 {
		fmt.Fprintf(&b, "\nsurrounding figure sweep wall-clock: %.1fs\n", r.FiguresWallMs/1e3)
	}
	return b.String()
}

// CheckKernelBaseline compares a fresh kernel bench against the checked-in
// baseline and fails when the micro workload's ns/event has regressed more
// than 20%. The micro number gates (it is the least noisy on shared CI
// hardware); the cell number is informational.
func CheckKernelBaseline(path string, cur KernelBenchResult) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("kernel baseline: %w", err)
	}
	var base KernelBenchResult
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("kernel baseline %s: %w", path, err)
	}
	if base.Micro.NsPerEvent <= 0 {
		return fmt.Errorf("kernel baseline %s: micro.ns_per_event missing or zero", path)
	}
	limit := base.Micro.NsPerEvent * 1.20
	if cur.Micro.NsPerEvent > limit {
		return fmt.Errorf("kernel regression: micro ns/event %.1f exceeds baseline %.1f by more than 20%% (limit %.1f); if intentional, refresh %s",
			cur.Micro.NsPerEvent, base.Micro.NsPerEvent, limit, path)
	}
	return nil
}

// KernelDeterminism is the sharded-runner arm of the determinism
// sanitizer: the same small spec grid through RunShards twice — once
// serial, once at full parallelism — byte-comparing the merged JSON. Any
// cross-worker state leak or completion-order dependence shows up as a
// byte difference.
func KernelDeterminism(opts SweepOpts) error {
	ramp, steady, down := opts.phases()
	var specs []RunSpec
	for i := 0; i < 4; i++ {
		specs = append(specs, RunSpec{
			Seed: opts.Seed + int64(i), Users: 50 + 25*i, Slaves: 1 + i%2,
			Scale: 300, ReadRatio: 0.5, Loc: SameZone,
			RampUp: ramp, Steady: steady, RampDown: down,
		})
	}
	parallelism := []int{1, 0} // serial first, then GOMAXPROCS
	call := 0
	return CheckDeterminism("KERNEL-SHARDS", func() (any, error) {
		par := parallelism[call%len(parallelism)]
		call++
		results, err := RunShards(specs, par, nil)
		if err != nil {
			return nil, err
		}
		rows := make([]runRow, len(results))
		for i, r := range results {
			rows[i] = newRunRow(r)
		}
		return rows, nil
	})
}
