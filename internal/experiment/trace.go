package experiment

import (
	"time"

	"cloudrepl/internal/repl"
)

// TraceRun executes one fully-traced experiment point: the full replication
// pipeline (group commit + batched shipping + parallel apply) under a small
// mixed workload, with every statement's causal chain recorded as spans and
// exported in RunResult.TraceJSON. The protocol is always the quick
// 2/5/1-minute one — a trace of the paper's 35-minute protocol would be
// hundreds of megabytes without telling a different story — so the output
// is bounded and byte-deterministic for a given seed regardless of -short.
func TraceRun(opts SweepOpts) (RunResult, error) {
	pc := PipelineVariants()[len(PipelineVariants())-1].PC
	return Run(RunSpec{
		Seed:      opts.Seed,
		Users:     16,
		Slaves:    2,
		Scale:     300,
		ReadRatio: 0.5,
		Loc:       SameZone,
		Mode:      repl.Async,
		RampUp:    2 * time.Minute,
		Steady:    5 * time.Minute,
		RampDown:  time.Minute,
		Pipeline:  pc,
		Trace:     true,
	})
}
