package experiment

import (
	"testing"
	"time"

	"cloudrepl/internal/cloudstone"
	"cloudrepl/internal/elastic"
)

// tinyStages is a compressed ramp for unit tests: the same 50→250 shape on
// a shorter clock.
func tinyStages(stageDur time.Duration) []cloudstone.Stage {
	var stages []cloudstone.Stage
	for _, users := range []int{50, 100, 150, 200, 250} {
		stages = append(stages, cloudstone.Stage{Users: users, Dur: stageDur})
	}
	return stages
}

// TestAblationElastic runs the full short-protocol ablation and checks the
// acceptance shape: the SLO controller converges to about 3 slaves and
// declares the tier master-bound rather than scaling past it, beats the
// fixed single slave on SLO-violation time, and bills fewer slave
// VM-minutes than the fixed 4-slave fleet.
func TestAblationElastic(t *testing.T) {
	r, err := AblationElastic(SweepOpts{Short: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fleets) != 4 {
		t.Fatalf("want 4 fleets, got %d", len(r.Fleets))
	}
	byName := map[string]ElasticFleetResult{}
	for _, f := range r.Fleets {
		byName[f.Name] = f
	}
	fixed1, fixed4, slo := byName["fixed-1"], byName["fixed-4"], byName["staleness-slo"]

	if slo.FinalSlaves < 2 || slo.FinalSlaves > 4 {
		t.Errorf("staleness-slo: want ≈3 final slaves, got %d", slo.FinalSlaves)
	}
	if !slo.MasterBound {
		t.Errorf("staleness-slo: expected a master-bound verdict, got %q", slo.Verdict)
	}
	if slo.PeakSlaves >= 8 {
		t.Errorf("staleness-slo: fleet scaled to the cap (%d peak) instead of stopping at the master", slo.PeakSlaves)
	}
	if slo.SLOViolation >= fixed1.SLOViolation {
		t.Errorf("staleness-slo violation %v not better than fixed-1 %v", slo.SLOViolation, fixed1.SLOViolation)
	}
	if slo.SlaveVMMinutes >= fixed4.SlaveVMMinutes {
		t.Errorf("staleness-slo VM-minutes %.1f not below fixed-4 %.1f", slo.SlaveVMMinutes, fixed4.SlaveVMMinutes)
	}
	if slo.Throughput <= fixed1.Throughput {
		t.Errorf("staleness-slo throughput %.2f not above fixed-1 %.2f", slo.Throughput, fixed1.Throughput)
	}
	t.Logf("\n%s", RenderElastic(r))
}

// TestElasticArmDeterministic: the same seed must reproduce the same
// decision log and the same measurements exactly.
func TestElasticArmDeterministic(t *testing.T) {
	arm := elasticArm{name: "slo", initialSlaves: 1, policy: elastic.StalenessSLO{TargetP95Ms: 500}}
	stages := tinyStages(2 * time.Minute)
	a, err := runElasticArm(7, arm, stages, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runElasticArm(7, arm, stages, 500)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.SLOViolation != b.SLOViolation ||
		a.FinalSlaves != b.FinalSlaves || a.SlaveVMMinutes != b.SlaveVMMinutes {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
	if len(a.Decisions) != len(b.Decisions) {
		t.Fatalf("decision logs differ in length: %d vs %d", len(a.Decisions), len(b.Decisions))
	}
	for i := range a.Decisions {
		if a.Decisions[i] != b.Decisions[i] {
			t.Errorf("decision %d differs: %v vs %v", i, a.Decisions[i], b.Decisions[i])
		}
	}
}
