// Package experiment reproduces the paper's evaluation: it builds the full
// stack (simulated EC2, replicated MySQL-style cluster, pool + proxy,
// Cloudstone workload, heartbeat measurement) for one parameter point, runs
// the 35-minute protocol (10 min ramp-up, 20 min steady state, 5 min
// ramp-down), and extracts the two reported metrics — end-to-end throughput
// and average (relative) replication delay — plus diagnostics.
package experiment

import (
	"fmt"
	"time"

	"cloudrepl/internal/chaos"
	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cloudstone"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/core"
	"cloudrepl/internal/heartbeat"
	"cloudrepl/internal/metrics"
	"cloudrepl/internal/obs"
	"cloudrepl/internal/pool"
	"cloudrepl/internal/proxy"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/vclock"
)

// Location is the paper's slave-placement configuration relative to the
// master in us-west-1a.
type Location int

// The three configurations of Figs. 2–6.
const (
	SameZone   Location = iota // us-west-1a
	DiffZone                   // us-west-1b
	DiffRegion                 // eu-west-1a
)

func (l Location) String() string {
	switch l {
	case SameZone:
		return "same zone (us-west-1a)"
	case DiffZone:
		return "different zone (us-west-1b)"
	default:
		return "different region (eu-west-1a)"
	}
}

// MasterPlacement is where the paper's master and benchmark driver live.
var MasterPlacement = cloud.Placement{Region: cloud.USWest1, Zone: "a"}

// SlavePlacement returns the placement for this location configuration.
func (l Location) SlavePlacement() cloud.Placement {
	switch l {
	case SameZone:
		return cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	case DiffZone:
		return cloud.Placement{Region: cloud.USWest1, Zone: "b"}
	default:
		return cloud.Placement{Region: cloud.EUWest1, Zone: "a"}
	}
}

// RunSpec is one experiment point.
type RunSpec struct {
	Seed      int64
	Users     int // 0 = unloaded baseline (heartbeat only)
	Slaves    int
	Scale     int     // initial data size (300 or 600)
	ReadRatio float64 // 0.5 or 0.8
	Loc       Location
	Mode      repl.Mode
	// Balancer constructs the read balancer (nil = round-robin, the
	// Connector/J default used by the paper).
	Balancer func() proxy.Balancer
	// Consistency selects the proxy read tier (A-CONSIST sweeps this);
	// the zero value is Eventual, the paper's configuration.
	Consistency proxy.Consistency
	// MaxStaleEvents bounds the Bounded tier
	// (0 = proxy.DefaultMaxEventsBehind).
	MaxStaleEvents uint64
	// Phases overrides the 10/20/5-minute protocol when non-zero.
	RampUp, Steady, RampDown time.Duration
	// HeartbeatInterval defaults to 1 s.
	HeartbeatInterval time.Duration
	// Heterogeneous enables the CoV-21% instance speed variation; the
	// figure sweeps keep it off so curves reflect topology, not luck.
	Heterogeneous bool
	// PriorityApply runs slave SQL threads at high CPU priority (A-PRIO).
	PriorityApply bool
	// NaivePlan forces every node's SQL engine to the naive (syntax-order,
	// no-pushdown) query planner; A-PLAN compares it against the default
	// cost-based planner on the join-heavy event-feed reads.
	NaivePlan bool
	// Cost overrides the calibrated cost model when non-nil.
	Cost *server.CostModel
	// Chaos, when non-nil, arms a fault schedule on the run's timeline
	// (times are absolute virtual time; the run starts at 0).
	Chaos *chaos.Schedule
	// Retry, when non-nil, enables the proxy's retry/eviction/failover
	// policy — chaos runs pair a schedule with proxy.DefaultRetryPolicy().
	Retry *proxy.RetryPolicy
	// Pipeline configures the replication data path (group commit, batched
	// shipping, parallel apply); the zero value is the classic path the
	// paper measured (A-PIPELINE sweeps this).
	Pipeline repl.PipelineConfig
	// Trace enables end-to-end tracing: every statement's causal chain —
	// client, pool, proxy, server, binlog, slave apply — is recorded as
	// spans on the virtual timeline and exported as Chrome trace-event JSON
	// in RunResult.TraceJSON.
	Trace bool
}

func (s *RunSpec) applyDefaults() {
	if s.Scale == 0 {
		s.Scale = 300
	}
	if s.ReadRatio == 0 {
		s.ReadRatio = 0.5
	}
	if s.RampUp == 0 {
		s.RampUp = 10 * time.Minute
	}
	if s.Steady == 0 {
		s.Steady = 20 * time.Minute
	}
	if s.RampDown == 0 {
		s.RampDown = 5 * time.Minute
	}
	if s.HeartbeatInterval == 0 {
		s.HeartbeatInterval = time.Second
	}
}

// RunResult is one experiment point's measurements.
type RunResult struct {
	Spec RunSpec

	// Throughput is steady-state completed operations per second.
	Throughput      float64
	ReadThroughput  float64
	WriteThroughput float64
	Errors          int

	// AvgDelayMs is the 5%-trimmed mean heartbeat delay across all slaves
	// (raw, including clock offset — subtract a baseline for the paper's
	// relative delay).
	AvgDelayMs      float64
	PerSlaveDelayMs []float64
	// P95DelayMs is the 95th-percentile heartbeat delay over the pooled
	// per-slave samples (unapplied heartbeats substituted with the worst
	// observed delay) — the tail metric the pipeline ablation guards.
	P95DelayMs float64

	// Utilizations over the steady window.
	MasterUtil float64
	SlaveUtil  []float64

	// LatencyMsMean is the mean client-observed operation latency;
	// WriteLatencyMsMean isolates writes (including the synchronization
	// model's commit wait).
	LatencyMsMean      float64
	WriteLatencyMsMean float64

	// MasterFallbacks counts reads served by the master (staleness-bounded
	// balancer only).
	MasterFallbacks uint64

	// LagSeries samples each slave's events-behind-master every 15 virtual
	// seconds across the whole run — the backlog growth curve behind
	// Figs. 5/6.
	LagSeries []*metrics.TimeSeries

	// OpsSeries samples the driver's cumulative completed operations (all
	// phases) every 15 virtual seconds; chaos analysis differentiates it to
	// get throughput dip and recovery time around an injected fault.
	OpsSeries *metrics.TimeSeries

	// ProxyStats and PoolStats snapshot the middleware counters at the end
	// of the run (retries, timeouts, evictions, failovers, waits, ...);
	// ReplStats snapshots the master's replication pipeline counters
	// (group commits, batches shipped, semi-sync degradations).
	ProxyStats proxy.Stats
	PoolStats  pool.Stats
	ReplStats  repl.Stats

	// FinalMaster names the server acting as master when the run ended —
	// after a master-crash scenario this is the promoted slave.
	FinalMaster string

	// ChaosLog and ChaosCounters record what the injector actually did.
	ChaosLog      []chaos.Applied
	ChaosCounters chaos.Counters

	// Metrics is the end-of-run registry snapshot: every middleware
	// component's counters flattened to "<component>.<metric>".
	Metrics map[string]float64

	// TraceJSON is the Chrome trace-event export (Trace runs only).
	TraceJSON []byte

	// KernelEvents counts the simulation-kernel events the run dispatched —
	// the denominator for the kernel-speed benchmark (BENCH_kernel.json).
	KernelEvents uint64
}

// Run executes one experiment point on its own simulation environment.
func Run(spec RunSpec) (RunResult, error) {
	spec.applyDefaults()
	env := sim.NewEnv(spec.Seed)

	cloudCfg := cloud.DefaultConfig()
	if !spec.Heterogeneous {
		cloudCfg.CPUCoV = 0
	}
	c := cloud.New(env, cloudCfg)

	cost := server.DefaultCostModel()
	if spec.Cost != nil {
		cost = *spec.Cost
	}

	preload := func(srv *server.DBServer) error {
		if err := cloudstone.Preload(spec.Scale)(srv); err != nil {
			return err
		}
		return heartbeat.Preload(srv)
	}

	slaveSpecs := make([]cluster.NodeSpec, spec.Slaves)
	for i := range slaveSpecs {
		slaveSpecs[i] = cluster.NodeSpec{Place: spec.Loc.SlavePlacement()}
	}
	clu, err := cluster.New(env, c, cluster.Config{
		Mode:          spec.Mode,
		Cost:          cost,
		Master:        cluster.NodeSpec{Place: MasterPlacement},
		Slaves:        slaveSpecs,
		Preload:       preload,
		PriorityApply: spec.PriorityApply,
		NaivePlan:     spec.NaivePlan,
		Pipeline:      spec.Pipeline,
	})
	if err != nil {
		return RunResult{}, fmt.Errorf("experiment: %w", err)
	}

	// Every instance disciplines its clock with NTP against multiple time
	// servers every second, the paper's recommended configuration.
	for _, inst := range c.Instances() {
		bias := time.Duration(env.Rand().NormFloat64() * float64(1650*time.Microsecond))
		vclock.StartDaemon(env, inst.Name+"/ntp", inst.Clock, vclock.NTPConfig{
			Interval:    time.Second,
			Bias:        bias,
			JitterSigma: 600 * time.Microsecond,
			Servers:     4,
		})
	}

	var balancer proxy.Balancer
	if spec.Balancer != nil {
		balancer = spec.Balancer()
	}
	var tracer *obs.Tracer
	if spec.Trace {
		tracer = obs.NewTracer(env)
	}
	coreOpts := []core.Option{
		core.WithDatabase(cloudstone.DatabaseName),
		core.WithClientPlace(MasterPlacement),
		core.WithBalancer(balancer),
		core.WithConsistency(spec.Consistency),
		core.WithPool(pool.Config{MaxActive: spec.Users + 8, MaxIdle: spec.Users + 8}),
	}
	if spec.MaxStaleEvents > 0 {
		coreOpts = append(coreOpts, core.WithMaxStaleEvents(spec.MaxStaleEvents))
	}
	if spec.Retry != nil {
		coreOpts = append(coreOpts, core.WithRetryPolicy(*spec.Retry))
	}
	if tracer != nil {
		coreOpts = append(coreOpts, core.WithTracer(tracer))
	}
	db := core.Open(clu, coreOpts...)

	inj := chaos.Start(env, c, spec.Chaos)

	hb := heartbeat.Start(env, clu.Master(), spec.HeartbeatInterval)

	// Lag sampler: one series per slave.
	var lagSeries []*metrics.TimeSeries
	for _, sl := range clu.Slaves() {
		lagSeries = append(lagSeries, metrics.NewTimeSeries(sl.Srv.Name))
	}
	env.Go("lag-sampler", func(p *sim.Proc) {
		for {
			for i, sl := range clu.Slaves() {
				if i < len(lagSeries) {
					lagSeries[i].Append(p.Now(), float64(sl.EventsBehindMaster()))
				}
			}
			p.Sleep(15 * time.Second)
		}
	})

	driver := cloudstone.NewDriver(db, cloudstone.Config{
		Scale:     spec.Scale,
		ReadRatio: spec.ReadRatio,
		Users:     spec.Users,
		RampUp:    spec.RampUp,
		Steady:    spec.Steady,
		RampDown:  spec.RampDown,
	})
	driver.Start(env)

	// Cumulative completed-ops sampler, same cadence as the lag sampler.
	opsSeries := metrics.NewTimeSeries("ops")
	env.Go("ops-sampler", func(p *sim.Proc) {
		for {
			opsSeries.Append(p.Now(), float64(driver.CompletedOps()))
			p.Sleep(15 * time.Second)
		}
	})

	steadyFrom, steadyTo := driver.SteadyWindow()
	// Reset CPU accounting at the start of steady state and capture
	// utilizations at its end.
	env.Schedule(steadyFrom-env.Now(), func() {
		for _, inst := range c.Instances() {
			inst.CPU.ResetStats()
		}
	})
	var masterUtil float64
	var slaveUtil []float64
	env.Schedule(steadyTo-env.Now(), func() {
		masterUtil = clu.Master().Srv.Inst.Utilization()
		for _, sl := range clu.Slaves() {
			slaveUtil = append(slaveUtil, sl.Srv.Inst.Utilization())
		}
	})

	total := spec.RampUp + spec.Steady + spec.RampDown
	env.RunUntil(env.Now() + total)
	hb.Stop()

	// Let in-flight replication land so delay samples for steady-window
	// heartbeats are complete (bounded grace, not unbounded catch-up).
	env.RunUntil(env.Now() + 2*time.Minute)

	res := RunResult{
		Spec: spec, MasterUtil: masterUtil, SlaveUtil: slaveUtil,
		LagSeries: lagSeries, OpsSeries: opsSeries,
		ProxyStats: db.Proxy().Stats(), PoolStats: db.Pool().Stats(),
		FinalMaster:   clu.Master().Srv.Name,
		ChaosLog:      inj.Log(),
		ChaosCounters: inj.Counters(),
		ReplStats:     clu.Master().Stats(),
	}
	dres := driver.Result()
	res.Throughput = dres.Throughput
	res.ReadThroughput = dres.ReadThroughput
	res.WriteThroughput = dres.WriteThroughput
	res.Errors = dres.Errors
	res.LatencyMsMean = dres.Latency.Mean
	res.WriteLatencyMsMean = dres.WriteLatency.Mean
	res.MasterFallbacks = db.Proxy().Stats().MasterFallbacks

	ids := hb.IDsInWindow(steadyFrom, steadyTo)
	if len(ids) > 0 {
		var sum float64
		var pooled []float64
		for _, sl := range clu.Slaves() {
			delays, err := heartbeat.PaddedDelays(clu.Master(), sl, ids)
			var ms float64
			if err != nil {
				// The slave applied none of the window's heartbeats: its
				// delay is unbounded; report the elapsed time since the
				// window midpoint as a lower bound.
				ms = float64((env.Now() - (steadyFrom+steadyTo)/2).Milliseconds())
				pooled = append(pooled, ms)
			} else {
				ms = metrics.TrimmedMean(delays, 0.05)
				pooled = append(pooled, delays...)
			}
			res.PerSlaveDelayMs = append(res.PerSlaveDelayMs, ms)
			sum += ms
		}
		if len(res.PerSlaveDelayMs) > 0 {
			res.AvgDelayMs = sum / float64(len(res.PerSlaveDelayMs))
		}
		res.P95DelayMs = metrics.Quantile(pooled, 0.95)
	}

	inj.PublishMetrics(db.Registry())
	res.Metrics = db.Metrics()
	if tracer != nil {
		tj, err := tracer.ExportJSON()
		if err != nil {
			return res, fmt.Errorf("experiment: trace export: %w", err)
		}
		res.TraceJSON = tj
	}

	env.Stop()
	env.Shutdown()
	res.KernelEvents = env.Events()
	return res, nil
}
