package experiment

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestAblationPlanCostBeatsNaive verifies the A-PLAN acceptance criterion:
// on the join-heavy grid the cost-based planner beats the forced-naive
// planner in end-to-end ops/s, and the decision log shows why — the cost
// arm drives the creator index while the naive arm scans attendance.
func TestAblationPlanCostBeatsNaive(t *testing.T) {
	r, err := AblationPlan(SweepOpts{Short: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Arms) != 2 || r.Arms[0].Planner != "cost-based" || r.Arms[1].Planner != "naive" {
		t.Fatalf("arms: %+v", r.Arms)
	}
	cost, naive := r.Arms[0], r.Arms[1]
	if cost.Errors != 0 || naive.Errors != 0 {
		t.Fatalf("errors: cost=%d naive=%d", cost.Errors, naive.Errors)
	}
	if cost.Throughput <= naive.Throughput*1.05 {
		t.Fatalf("cost-based throughput %.2f not above naive %.2f by >5%%",
			cost.Throughput, naive.Throughput)
	}
	if cost.FeedCost*100 >= naive.FeedCost {
		t.Fatalf("feed cost estimate %.0f rows not ≪ naive %.0f", cost.FeedCost, naive.FeedCost)
	}
	if !strings.Contains(cost.FeedPlan, "index_scan e via idx_creator") {
		t.Fatalf("cost plan does not drive the creator index:\n%s", cost.FeedPlan)
	}
	if !strings.Contains(naive.FeedPlan, "scan a") {
		t.Fatalf("naive plan does not scan attendance:\n%s", naive.FeedPlan)
	}
	out := RenderPlan(r)
	for _, want := range []string{"A-PLAN", "cost-based", "naive", "inl_join"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if _, err := json.Marshal(PlanJSON(r)); err != nil {
		t.Fatalf("PlanJSON not marshalable: %v", err)
	}
}
