package experiment

import (
	"fmt"
	"strings"
	"time"

	"cloudrepl/internal/chaos"
	"cloudrepl/internal/metrics"
	"cloudrepl/internal/proxy"
)

// ChaosScenario is one row of the A-CHAOS ablation: a run under one fault
// plan plus the recovery analysis derived from its ops and lag series.
type ChaosScenario struct {
	Name string
	Res  RunResult

	// PreRate is throughput (ops/s, all users) in the window just before
	// the fault fires.
	PreRate float64
	// DipPct is the throughput reduction relative to PreRate during the
	// 90 s after the fault (0 = no visible dip).
	DipPct float64
	// RecoverySec is how long after the fault throughput first regained
	// 90% of PreRate over a rolling 60 s window (−1 = never within the
	// run).
	RecoverySec float64
	// ErrorRate is steady-state failed operations over attempted ones.
	ErrorRate float64
	// MaxLagEvents is the worst slave events-behind-master sample between
	// the fault and the end of the run (the staleness spike).
	MaxLagEvents float64
}

// ChaosResult is the A-CHAOS ablation output: the Fig. 2 mid-load point
// (100 users, 2 slaves, 50/50, same zone) rerun under three fault plans.
type ChaosResult struct {
	// Baseline has the injector disabled (schedule empty) but the same
	// retry policy armed — its throughput should match the plain Fig. 2
	// point, showing the robustness layer is free when nothing fails.
	Baseline ChaosScenario
	// SlaveCrash kills slave1 mid-steady-state and restarts it later.
	SlaveCrash ChaosScenario
	// MasterCrash kills the master mid-steady-state for good; the proxy's
	// failover hook must promote a slave and keep writes flowing.
	MasterCrash ChaosScenario

	// CrashAt and SlaveDownFor locate the faults on the virtual timeline.
	CrashAt      time.Duration
	SlaveDownFor time.Duration
}

// opsAt reads the cumulative completed-ops series at time at (the newest
// sample not after it).
func opsAt(ts *metrics.TimeSeries, at time.Duration) float64 {
	var v float64
	for _, p := range ts.Points() {
		if p.T > at {
			break
		}
		v = p.V
	}
	return v
}

// opsRate differentiates the cumulative series over [from, to).
func opsRate(ts *metrics.TimeSeries, from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	return (opsAt(ts, to) - opsAt(ts, from)) / (to - from).Seconds()
}

// analyzeChaos derives dip / recovery / staleness numbers from a finished
// run. crashAt ≤ 0 means no fault: only PreRate and ErrorRate are filled.
func analyzeChaos(name string, res RunResult, crashAt time.Duration) ChaosScenario {
	sc := ChaosScenario{Name: name, Res: res, RecoverySec: -1}

	steadyFrom := res.Spec.RampUp
	steadyTo := steadyFrom + res.Spec.Steady
	end := steadyTo + res.Spec.RampDown

	ops := float64(res.Throughput) * res.Spec.Steady.Seconds()
	if attempted := ops + float64(res.Errors); attempted > 0 {
		sc.ErrorRate = float64(res.Errors) / attempted
	}

	if crashAt <= 0 {
		sc.PreRate = opsRate(res.OpsSeries, steadyFrom, steadyTo)
		return sc
	}

	preFrom := crashAt - 5*time.Minute
	if preFrom < steadyFrom {
		preFrom = steadyFrom
	}
	sc.PreRate = opsRate(res.OpsSeries, preFrom, crashAt)

	during := opsRate(res.OpsSeries, crashAt, crashAt+90*time.Second)
	if sc.PreRate > 0 {
		sc.DipPct = (1 - during/sc.PreRate) * 100
		if sc.DipPct < 0 {
			sc.DipPct = 0
		}
	}

	// First rolling 60 s window at or after the fault that regains 90% of
	// the pre-fault rate, stepping at the 15 s sample cadence.
	const window = 60 * time.Second
	for t := crashAt; t+window <= end; t += 15 * time.Second {
		if opsRate(res.OpsSeries, t, t+window) >= 0.9*sc.PreRate {
			sc.RecoverySec = (t - crashAt).Seconds()
			break
		}
	}

	for _, ls := range res.LagSeries {
		for _, v := range ls.Between(crashAt, end) {
			if v > sc.MaxLagEvents {
				sc.MaxLagEvents = v
			}
		}
	}
	return sc
}

// AblationChaos reruns the Fig. 2 mid-load point (100 users, 2 slaves,
// 50/50, same zone) under fault injection with the chaos-hardened retry
// policy: once with the injector disabled (control), once crashing and
// later restarting one slave, and once crashing the master for good so the
// proxy's failover hook must promote a slave. Faults land a quarter into
// steady state; the crashed slave returns a quarter later.
func AblationChaos(opts SweepOpts) (ChaosResult, error) {
	ramp, steady, down := opts.phases()
	crashAt := ramp + steady/4
	downFor := steady / 4
	retry := proxy.DefaultRetryPolicy()

	mk := func(seed int64, sched *chaos.Schedule) RunSpec {
		return RunSpec{
			Seed: seed, Users: 100, Slaves: 2, Scale: 300, ReadRatio: 0.5,
			Loc: SameZone, RampUp: ramp, Steady: steady, RampDown: down,
			Chaos: sched, Retry: &retry,
		}
	}

	out := ChaosResult{CrashAt: crashAt, SlaveDownFor: downFor}
	report := func(sc ChaosScenario) {
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf(
				"chaos %-12s tp=%6.2f dip=%5.1f%% recovery=%6.1fs errs=%.3f%% failovers=%d master=%s",
				sc.Name, sc.Res.Throughput, sc.DipPct, sc.RecoverySec,
				sc.ErrorRate*100, sc.Res.ProxyStats.Failovers, sc.Res.FinalMaster))
		}
	}

	specs := []RunSpec{
		mk(opts.Seed, nil),
		mk(opts.Seed+1, new(chaos.Schedule).CrashFor(crashAt, downFor, "slave1")),
		mk(opts.Seed+2, new(chaos.Schedule).Crash(crashAt, "master")),
	}
	results, err := RunShards(specs, opts.Parallelism, nil)
	if err != nil {
		return out, err
	}
	out.Baseline = analyzeChaos("none", results[0], 0)
	report(out.Baseline)
	out.SlaveCrash = analyzeChaos("slave-crash", results[1], crashAt)
	report(out.SlaveCrash)
	out.MasterCrash = analyzeChaos("master-crash", results[2], crashAt)
	report(out.MasterCrash)

	return out, nil
}

// RenderChaos formats A-CHAOS.
func RenderChaos(r ChaosResult) string {
	var b strings.Builder
	b.WriteString("A-CHAOS — fault injection at the Fig. 2 mid-load point (100 users, 2 slaves, 50/50, same zone)\n")
	fmt.Fprintf(&b, "fault fires at %v; crashed slave returns after %v; master crash is permanent\n\n",
		r.CrashAt, r.SlaveDownFor)
	fmt.Fprintf(&b, "%-14s %12s %8s %12s %10s %12s\n",
		"scenario", "tp (ops/s)", "dip", "recovery", "err rate", "max lag (ev)")
	for _, sc := range []ChaosScenario{r.Baseline, r.SlaveCrash, r.MasterCrash} {
		rec := "—"
		if sc.RecoverySec == 0 {
			rec = "<60 s"
		} else if sc.RecoverySec > 0 {
			rec = fmt.Sprintf("%.0f s", sc.RecoverySec)
		}
		dip := "—"
		if sc.Name != "none" {
			dip = fmt.Sprintf("%.1f%%", sc.DipPct)
		}
		fmt.Fprintf(&b, "%-14s %12.2f %8s %12s %9.3f%% %12.0f\n",
			sc.Name, sc.Res.Throughput, dip, rec, sc.ErrorRate*100, sc.MaxLagEvents)
	}
	b.WriteString("\nrobustness counters (retries / timeouts / evictions / readmissions / failovers / degraded commits):\n")
	for _, sc := range []ChaosScenario{r.Baseline, r.SlaveCrash, r.MasterCrash} {
		ps := sc.Res.ProxyStats
		fmt.Fprintf(&b, "%-14s %d / %d / %d / %d / %d / %d   final master: %s\n",
			sc.Name, ps.Retries, ps.Timeouts, ps.SlaveEvictions, ps.SlaveReadmissions,
			ps.Failovers, ps.DegradedCommits, sc.Res.FinalMaster)
	}
	if len(r.SlaveCrash.Res.ChaosLog) > 0 || len(r.MasterCrash.Res.ChaosLog) > 0 {
		b.WriteString("\ninjected faults:\n")
		for _, sc := range []ChaosScenario{r.SlaveCrash, r.MasterCrash} {
			for _, a := range sc.Res.ChaosLog {
				fmt.Fprintf(&b, "  %-14s %s\n", sc.Name, a)
			}
		}
	}
	b.WriteString("\nthe control shows the retry layer is free when nothing fails; a crashed\n")
	b.WriteString("slave costs a brief dip while reads shift to the survivor, and a crashed\n")
	b.WriteString("master is absorbed by promotion — the application-managed failover the\n")
	b.WriteString("paper argues the cloud makes necessary.\n")
	return b.String()
}
