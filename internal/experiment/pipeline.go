package experiment

import (
	"fmt"
	"strings"
	"time"

	"cloudrepl/internal/repl"
)

// PipelineVariant is one configuration of the A-PIPELINE ablation.
type PipelineVariant struct {
	Name string
	PC   repl.PipelineConfig
}

// PipelineVariants returns the four configurations A-PIPELINE compares:
// the classic one-statement-at-a-time path the paper measured, each
// pipeline stage alone, and the full pipeline. The group-commit window
// must exceed the master's ~54 ms inter-commit spacing on an m1.small or
// no group ever forms (see server.DBServer.GroupCommitWindow).
func PipelineVariants() []PipelineVariant {
	return []PipelineVariant{
		{Name: "baseline", PC: repl.PipelineConfig{}},
		{Name: "batch", PC: repl.PipelineConfig{BatchMaxEntries: 32, BatchMaxBytes: 64 << 10}},
		{Name: "parallel-apply", PC: repl.PipelineConfig{ApplyWorkers: 4}},
		{Name: "full-pipeline", PC: repl.PipelineConfig{
			GroupCommitWindow: 60 * time.Millisecond,
			BatchMaxEntries:   32,
			BatchMaxBytes:     64 << 10,
			ApplyWorkers:      4,
		}},
	}
}

// PipelinePoint is one loaded measurement on a variant's curve.
type PipelinePoint struct {
	Users int
	Res   RunResult
}

// PipelineCurve is one variant × slave-count throughput curve with its
// unloaded staleness baseline and saturation knee.
type PipelineCurve struct {
	Variant string
	Slaves  int
	// Unloaded is the Users=0 run: its AvgDelayMs is the flush-on-idle
	// regression guard (batching must not delay an idle master's writes).
	Unloaded RunResult
	Points   []PipelinePoint
	// KneeUsers is the workload right after maximum throughput — the
	// paper's saturation-point definition. KneeFound is false when
	// throughput was still rising at the largest measured workload
	// (the knee is beyond the grid, i.e. at least its edge).
	KneeUsers int
	MaxTp     float64
	KneeFound bool
}

// PipelineResult is the complete A-PIPELINE ablation.
type PipelineResult struct {
	Loc      Location
	UserNums []int
	Curves   []PipelineCurve
}

// AblationPipeline re-runs the Fig. 2 workload (same zone, 50/50,
// scale 300) at 1/2/4 slaves for each pipeline variant and locates each
// curve's master-saturation knee. The acceptance story: the full pipeline's
// knee sits right of the baseline's at 4 slaves, while unloaded delay and
// loaded p95 staleness do not regress.
func AblationPipeline(opts SweepOpts) (PipelineResult, error) {
	return ablationPipelineGrid(opts, PipelineVariants(), []int{1, 2, 4},
		[]int{50, 100, 150, 200, 250, 300})
}

// ablationPipelineGrid is AblationPipeline over an explicit grid; the
// determinism sanitizer uses a trimmed corner grid through it.
func ablationPipelineGrid(opts SweepOpts, variants []PipelineVariant, slaveNums, userNums []int) (PipelineResult, error) {
	ramp, steady, down := opts.phases()
	out := PipelineResult{
		Loc:      SameZone,
		UserNums: userNums,
	}

	type job struct {
		curve, point int // point == -1 is the unloaded baseline
		spec         RunSpec
	}
	var jobs []job
	seed := opts.Seed
	for _, v := range variants {
		for _, ns := range slaveNums {
			curve := len(out.Curves)
			out.Curves = append(out.Curves, PipelineCurve{
				Variant: v.Name,
				Slaves:  ns,
				Points:  make([]PipelinePoint, len(out.UserNums)),
			})
			for pt := -1; pt < len(out.UserNums); pt++ {
				users := 0
				if pt >= 0 {
					users = out.UserNums[pt]
				}
				seed++
				jobs = append(jobs, job{curve, pt, RunSpec{
					Seed: seed, Users: users, Slaves: ns,
					Scale: 300, ReadRatio: 0.5, Loc: SameZone,
					RampUp: ramp, Steady: steady, RampDown: down,
					Pipeline: v.PC,
				}})
			}
		}
	}

	specs := make([]RunSpec, len(jobs))
	for i, j := range jobs {
		specs[i] = j.spec
	}
	results, err := RunShards(specs, opts.Parallelism, func(i int, res RunResult) {
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("pipeline %-14s slaves=%d users=%-3d tp=%6.2f ops/s delay=%8.1f ms p95=%8.1f ms",
				out.Curves[jobs[i].curve].Variant, jobs[i].spec.Slaves, jobs[i].spec.Users,
				res.Throughput, res.AvgDelayMs, res.P95DelayMs))
		}
	})
	if err != nil {
		return out, err
	}
	for i, j := range jobs {
		c := &out.Curves[j.curve]
		if j.point < 0 {
			c.Unloaded = results[i]
		} else {
			c.Points[j.point] = PipelinePoint{Users: j.spec.Users, Res: results[i]}
		}
	}

	for i := range out.Curves {
		c := &out.Curves[i]
		bestIdx := -1
		for idx, pt := range c.Points {
			if pt.Res.Throughput > c.MaxTp {
				c.MaxTp = pt.Res.Throughput
				bestIdx = idx
			}
		}
		if bestIdx >= 0 && bestIdx < len(c.Points)-1 {
			c.KneeUsers = c.Points[bestIdx+1].Users
			c.KneeFound = true
		} else if len(c.Points) > 0 {
			// Still rising at the grid edge: the knee is at least here.
			c.KneeUsers = c.Points[len(c.Points)-1].Users
		}
	}
	return out, nil
}

// Curve returns the curve for one variant × slave count (nil if absent).
func (r *PipelineResult) Curve(variant string, slaves int) *PipelineCurve {
	for i := range r.Curves {
		if r.Curves[i].Variant == variant && r.Curves[i].Slaves == slaves {
			return &r.Curves[i]
		}
	}
	return nil
}

// loadedP95 is the curve's worst p95 delay at or below its knee — the tail
// staleness a user sees before the system saturates.
func (c *PipelineCurve) loadedP95() float64 {
	var worst float64
	for _, pt := range c.Points {
		if c.KneeFound && pt.Users > c.KneeUsers {
			break
		}
		if pt.Res.P95DelayMs > worst {
			worst = pt.Res.P95DelayMs
		}
	}
	return worst
}

// RenderPipeline formats A-PIPELINE.
func RenderPipeline(r PipelineResult) string {
	var b strings.Builder
	b.WriteString("A-PIPELINE — replication data path (same zone, 50/50, scale 300)\n")
	b.WriteString("variants: baseline | batch (32 entries/64 KiB) | parallel-apply (4 workers) | full-pipeline (+60 ms group commit)\n\n")
	fmt.Fprintf(&b, "%-8s %-15s %12s %12s %16s %16s\n",
		"slaves", "variant", "knee (users)", "max tp", "unloaded (ms)", "p95≤knee (ms)")
	for _, ns := range []int{1, 2, 4} {
		for _, v := range PipelineVariants() {
			c := r.Curve(v.Name, ns)
			if c == nil {
				continue
			}
			knee := fmt.Sprintf("%d", c.KneeUsers)
			if !c.KneeFound {
				knee = fmt.Sprintf(">%d", c.KneeUsers)
			}
			fmt.Fprintf(&b, "%-8d %-15s %12s %12.2f %16.1f %16.1f\n",
				ns, c.Variant, knee, c.MaxTp, c.Unloaded.AvgDelayMs, c.loadedP95())
		}
	}
	b.WriteString("\nthe knee is the workload right after peak throughput (the paper's saturation\n")
	b.WriteString("point); '>' marks curves still rising at the grid edge. group commit lifts the\n")
	b.WriteString("master's write ceiling, batching amortizes shipping CPU, parallel apply keeps\n")
	b.WriteString("slaves fresh under read load — together the master-bound knee moves right\n")
	b.WriteString("while unloaded delay and tail staleness hold.\n")
	return b.String()
}
