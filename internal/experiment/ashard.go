package experiment

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cloudstone"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/core"
	"cloudrepl/internal/metrics"
	"cloudrepl/internal/pool"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/shard"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/vclock"
)

// ShardArmResult is one arm of the A-SHARD ablation: the Cloudstone mix at
// a fixed user population against an N-cell sharded tier.
type ShardArmResult struct {
	Cells     int
	Users     int
	Slaves    int     // replicas per cell
	ReadRatio float64 // fraction of operations that are reads

	Throughput      float64
	ReadThroughput  float64
	WriteThroughput float64
	Errors          int
	LatencyMsMean   float64

	// Tail latency by route class: single-key statements stay flat as
	// cells are added; scatter reads pay the slowest-leg price.
	SingleP95Ms  float64
	ScatterP95Ms float64
	ScatterP99Ms float64

	// PerCellOps is the statements served by each cell's proxy — the
	// balance check for the hash map's slot distribution.
	PerCellOps []uint64
	Stats      shard.Stats
	Metrics    map[string]float64
}

// ShardSplitResult is the live-split arm: a 2-cell tier under steady load
// grows to 3 cells online; the interesting numbers are the write-freeze
// window and that no operation and no row is lost.
type ShardSplitResult struct {
	Users      int
	Report     *shard.SplitReport
	Throughput float64
	Errors     int
	// RowsBefore/RowsAfter count one sharded table across all cells right
	// before and after the split (exactly-once placement check).
	RowsBefore, RowsAfter int
}

// ShardingResult is the A-SHARD ablation output.
type ShardingResult struct {
	Users      int
	Arms       []ShardArmResult
	Split      ShardSplitResult
	SpeedupAt4 float64 // 4-cell throughput over 1-cell, fixed users
}

type shardArmSpec struct {
	seed                 int64
	users, cells, slaves int
	scale                int
	readRatio            float64
	ramp, steady, down   time.Duration
	split                bool // grow by one cell at mid-steady
}

// AblationSharding runs the scale-out ablation the single-master paper
// stops short of (§V: "once the master is write-bound, add masters"): the
// same Cloudstone mix, fixed user population, against 1/2/4(/8) shard
// cells. Cross-shard reads are on (25% of reads are a friend-feed page
// spanning cells), so the speedup prices in real scatter traffic, not an
// embarrassingly-parallel best case. A separate arm splits 2 cells into 3
// under load and reports the cutover window.
func AblationSharding(opts SweepOpts) (ShardingResult, error) {
	ramp, steady, down := opts.phases()
	users := 1200
	cellGrid := []int{1, 2, 4}
	if !opts.Short {
		cellGrid = []int{1, 2, 4, 8}
	}

	out := ShardingResult{Users: users}
	for i, cells := range cellGrid {
		arm, err := runShardArm(shardArmSpec{
			seed: opts.Seed + int64(i), users: users, cells: cells, slaves: 1,
			scale: 300, readRatio: 0.2, ramp: ramp, steady: steady, down: down,
		})
		if err != nil {
			return out, err
		}
		out.Arms = append(out.Arms, arm.arm)
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf(
				"shard %d-cell %4d users  tp=%7.2f ops/s  err=%d  single-p95=%6.1fms scatter-p95=%6.1fms",
				cells, users, arm.arm.Throughput, arm.arm.Errors, arm.arm.SingleP95Ms, arm.arm.ScatterP95Ms))
		}
	}
	for _, a := range out.Arms {
		if a.Cells == 4 && out.Arms[0].Cells == 1 && out.Arms[0].Throughput > 0 {
			out.SpeedupAt4 = a.Throughput / out.Arms[0].Throughput
		}
	}

	// Live split at moderate load: the source cell's slaves must keep
	// apply headroom under the copy-era backlog (writes during the copy
	// land in the binlog and must be chased down to a bounded lag before
	// the barrier) or the cutover correctly aborts rather than extending
	// the write freeze behind replicas that cannot catch up.
	sp, err := runShardArm(shardArmSpec{
		seed: opts.Seed + 100, users: 150, cells: 2, slaves: 2,
		scale: 300, readRatio: 0.5, ramp: ramp, steady: steady, down: down, split: true,
	})
	if err != nil {
		return out, err
	}
	out.Split = sp.split
	if opts.Progress != nil {
		rep := sp.split.Report
		status := ""
		if rep.Aborted {
			status = "  ABORTED: " + rep.Err
		}
		opts.Progress(fmt.Sprintf(
			"shard split 2→3 %4d users  tp=%7.2f ops/s  moved=%d rows  copy=%v  downtime=%v  err=%d%s",
			sp.split.Users, sp.split.Throughput, rep.MovedRows,
			rep.CopyDuration.Truncate(time.Millisecond), rep.Downtime.Truncate(time.Millisecond),
			sp.split.Errors, status))
	}
	return out, nil
}

type shardArmOut struct {
	arm   ShardArmResult
	split ShardSplitResult
}

// runShardArm executes one sharded point on its own virtual timeline.
func runShardArm(s shardArmSpec) (shardArmOut, error) {
	env := sim.NewEnv(s.seed)
	cloudCfg := cloud.DefaultConfig()
	cloudCfg.CPUCoV = 0 // homogeneous cells: curves reflect sharding, not luck
	c := cloud.New(env, cloudCfg)

	slaveSpecs := make([]cluster.NodeSpec, s.slaves)
	for i := range slaveSpecs {
		slaveSpecs[i] = cluster.NodeSpec{Place: SameZone.SlavePlacement()}
	}
	db, err := core.OpenSharded(env, c, cluster.Config{
		Mode:   repl.Async,
		Cost:   server.DefaultCostModel(),
		Master: cluster.NodeSpec{Place: MasterPlacement},
		Slaves: slaveSpecs,
	},
		core.WithShards(s.cells),
		core.WithDatabase(cloudstone.DatabaseName),
		core.WithClientPlace(MasterPlacement),
		core.WithKeyspace(cloudstone.ShardKeyspace()),
		core.WithPartitionedPreload(func(owns func(table string, key int64) bool) func(*server.DBServer) error {
			return cloudstone.PreloadOwned(s.scale, owns)
		}),
		core.WithPool(pool.Config{MaxActive: s.users + 8, MaxIdle: s.users + 8}),
	)
	if err != nil {
		return shardArmOut{}, fmt.Errorf("shard arm (%d cells): %w", s.cells, err)
	}

	for _, inst := range c.Instances() {
		bias := time.Duration(env.Rand().NormFloat64() * float64(1650*time.Microsecond))
		vclock.StartDaemon(env, inst.Name+"/ntp", inst.Clock, vclock.NTPConfig{
			Interval: time.Second, Bias: bias,
			JitterSigma: 600 * time.Microsecond, Servers: 4,
		})
	}

	driver := cloudstone.NewDriver(db, cloudstone.Config{
		Scale: s.scale, ReadRatio: s.readRatio, Users: s.users,
		RampUp: s.ramp, Steady: s.steady, RampDown: s.down,
		CrossShard: true,
	})
	driver.Start(env)

	var rowsBefore int
	var rep *shard.SplitReport
	if s.split {
		// Fire shortly after steady state opens: the copy takes minutes,
		// so starting early keeps the cutover barrier inside the
		// measurement window — the throughput and error numbers price in
		// the write freeze.
		env.Go("shard/splitter", func(p *sim.Proc) {
			from, _ := driver.SteadyWindow()
			p.SleepUntil(from + 30*time.Second)
			rowsBefore, _ = db.Shards().RowCount("events")
			rep, err = db.SplitShard(p)
		})
	}

	total := s.ramp + s.steady + s.down
	env.RunUntil(env.Now() + total)
	env.RunUntil(env.Now() + 2*time.Minute) // let in-flight replication land

	dres := driver.Result()
	sc := db.Shards()
	arm := ShardArmResult{
		Cells: s.cells, Users: s.users, Slaves: s.slaves, ReadRatio: s.readRatio,
		Throughput: dres.Throughput, ReadThroughput: dres.ReadThroughput,
		WriteThroughput: dres.WriteThroughput, Errors: dres.Errors,
		LatencyMsMean: dres.Latency.Mean,
		SingleP95Ms:   metrics.Quantile(sc.SingleLatency().Float64s(), 0.95),
		ScatterP95Ms:  metrics.Quantile(sc.ScatterLatency().Float64s(), 0.95),
		ScatterP99Ms:  metrics.Quantile(sc.ScatterLatency().Float64s(), 0.99),
		PerCellOps:    sc.CellThroughput(),
		Stats:         sc.Stats(),
		Metrics:       db.Metrics(),
	}

	var split ShardSplitResult
	if s.split {
		if err != nil {
			return shardArmOut{}, fmt.Errorf("shard split arm: %w", err)
		}
		if rep == nil {
			return shardArmOut{}, fmt.Errorf("shard split arm: splitter never ran")
		}
		rowsAfter, cntErr := sc.RowCount("events")
		if cntErr != nil {
			return shardArmOut{}, fmt.Errorf("shard split arm: %w", cntErr)
		}
		split = ShardSplitResult{
			Users: s.users, Report: rep,
			// Any-phase errors: a cutover barrier that outlives the client
			// retry budget bounces statements wherever it lands on the
			// timeline, and hiding out-of-window bounces would overstate
			// the split's transparency.
			Throughput: dres.Throughput, Errors: driver.TotalErrors(),
			RowsBefore: rowsBefore, RowsAfter: rowsAfter,
		}
	}

	env.Stop()
	env.Shutdown()
	return shardArmOut{arm: arm, split: split}, nil
}

// ShardDeterminism runs the 2-cell arm (with a mid-steady split, the most
// event-interleaved configuration the subsystem has) twice from one seed
// and fails on any byte difference in the marshalled results.
func ShardDeterminism(opts SweepOpts) error {
	ramp, steady, down := opts.phases()
	if opts.Short {
		ramp, steady, down = time.Minute, 3*time.Minute, 30*time.Second
	}
	spec := shardArmSpec{
		seed: opts.Seed, users: 150, cells: 2, slaves: 2,
		scale: 300, readRatio: 0.5, ramp: ramp, steady: steady, down: down, split: true,
	}
	marshal := func() ([]byte, error) {
		r, err := runShardArm(spec)
		if err != nil {
			return nil, err
		}
		return json.Marshal(r)
	}
	a, err := marshal()
	if err != nil {
		return err
	}
	b, err := marshal()
	if err != nil {
		return err
	}
	if string(a) != string(b) {
		return fmt.Errorf("shard determinism: two runs of seed %d differ (%d vs %d bytes)", spec.seed, len(a), len(b))
	}
	return nil
}

// RenderSharding formats the A-SHARD ablation for the terminal.
func RenderSharding(r ShardingResult) string {
	var b strings.Builder
	b.WriteString("A-SHARD — cell-sharded scale-out at fixed load (Cloudstone 20/80 read/write, 25% cross-shard reads)\n")
	b.WriteString("the write-heavy regime is the paper's hard ceiling: once the master is\n")
	b.WriteString("write-bound, read replicas buy nothing — only more masters do.\n")
	fmt.Fprintf(&b, "%d users against 1..N independent master+replica cells\n\n", r.Users)
	fmt.Fprintf(&b, "%5s %11s %8s %12s %13s %13s %s\n",
		"cells", "tp (ops/s)", "speedup", "single p95", "scatter p95", "scatter p99", "per-cell ops")
	base := 0.0
	for _, a := range r.Arms {
		if a.Cells == 1 {
			base = a.Throughput
		}
		speedup := "-"
		if base > 0 {
			speedup = fmt.Sprintf("%.2fx", a.Throughput/base)
		}
		cells := make([]string, len(a.PerCellOps))
		for i, n := range a.PerCellOps {
			cells[i] = fmt.Sprintf("%d", n)
		}
		fmt.Fprintf(&b, "%5d %11.2f %8s %10.1fms %11.1fms %11.1fms [%s]\n",
			a.Cells, a.Throughput, speedup, a.SingleP95Ms, a.ScatterP95Ms, a.ScatterP99Ms,
			strings.Join(cells, " "))
	}
	if rep := r.Split.Report; rep != nil {
		fmt.Fprintf(&b, "\nlive split 2→3 cells under %d users:\n", r.Split.Users)
		if rep.Aborted {
			fmt.Fprintf(&b, "  ABORTED after %v copy (%d rows staged): %s\n",
				rep.CopyDuration.Truncate(time.Millisecond), rep.MovedRows, rep.Err)
			fmt.Fprintf(&b, "  the tier rolled back cleanly: %d client errors, rows intact (%d → %d)\n",
				r.Split.Errors, r.Split.RowsBefore, r.Split.RowsAfter)
		} else {
			fmt.Fprintf(&b, "  moved %d rows in %v copy; write freeze %v; %d catch-up entries, %d dual writes\n",
				rep.MovedRows, rep.CopyDuration.Truncate(time.Millisecond),
				rep.Downtime.Truncate(time.Millisecond), rep.CatchupEntries, rep.DualWrites)
			fmt.Fprintf(&b, "  events rows %d → %d across cells (exactly-once placement), %d bounced statements\n",
				r.Split.RowsBefore, r.Split.RowsAfter, r.Split.Errors)
		}
	}
	b.WriteString("\nsingle-key writes scale with cells because each cell is an independent\n")
	b.WriteString("master — the ceiling the elastic controller reports as master-bound is\n")
	b.WriteString("lifted by adding cells, not replicas. scatter reads pay the slowest-leg\n")
	b.WriteString("price and every cell serves every scatter, so the speedup is sublinear\n")
	b.WriteString("and bends as the fan-out grows. the online split's write freeze is the\n")
	b.WriteString("drain + final-replay + cleanup barrier: statements that arrive during\n")
	b.WriteString("it bounce and retry with backoff, so a freeze inside the retry budget\n")
	b.WriteString("(~2.3s) is invisible and a longer one surfaces as honest errors on the\n")
	b.WriteString("moving slots — never as lost or duplicated rows.\n")
	return b.String()
}

// ShardingJSON shapes the ablation for BENCH_shard.json.
func ShardingJSON(r ShardingResult) any {
	type arm struct {
		Cells             int      `json:"cells"`
		Users             int      `json:"users"`
		ReadRatio         float64  `json:"read_ratio"`
		Throughput        float64  `json:"throughput_ops_s"`
		ReadThroughput    float64  `json:"read_throughput_ops_s"`
		WriteThroughput   float64  `json:"write_throughput_ops_s"`
		Errors            int      `json:"errors"`
		LatencyMsMean     float64  `json:"latency_ms_mean"`
		SingleP95Ms       float64  `json:"single_p95_ms"`
		ScatterP95Ms      float64  `json:"scatter_p95_ms"`
		ScatterP99Ms      float64  `json:"scatter_p99_ms"`
		PerCellOps        []uint64 `json:"per_cell_ops"`
		ScatterOps        uint64   `json:"scatter_ops"`
		WrongShardRetries uint64   `json:"wrong_shard_retries"`
	}
	arms := []arm{}
	for _, a := range r.Arms {
		arms = append(arms, arm{
			Cells: a.Cells, Users: a.Users, ReadRatio: a.ReadRatio,
			Throughput: a.Throughput, ReadThroughput: a.ReadThroughput,
			WriteThroughput: a.WriteThroughput, Errors: a.Errors,
			LatencyMsMean: a.LatencyMsMean, SingleP95Ms: a.SingleP95Ms,
			ScatterP95Ms: a.ScatterP95Ms, ScatterP99Ms: a.ScatterP99Ms,
			PerCellOps: a.PerCellOps, ScatterOps: a.Stats.ScatterOps,
			WrongShardRetries: a.Stats.WrongShardRetries,
		})
	}
	split := map[string]any{}
	if rep := r.Split.Report; rep != nil {
		split = map[string]any{
			"users":            r.Split.Users,
			"moved_rows":       rep.MovedRows,
			"copy_duration_ms": float64(rep.CopyDuration) / float64(time.Millisecond),
			"downtime_ms":      float64(rep.Downtime) / float64(time.Millisecond),
			"catchup_entries":  rep.CatchupEntries,
			"dual_writes":      rep.DualWrites,
			"aborted":          rep.Aborted,
			"rows_before":      r.Split.RowsBefore,
			"rows_after":       r.Split.RowsAfter,
			"errors":           r.Split.Errors,
		}
	}
	return map[string]any{
		"users":        r.Users,
		"speedup_at_4": r.SpeedupAt4,
		"arms":         arms,
		"split":        split,
	}
}
