package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"cloudrepl/internal/sqlengine"
)

// PlanBenchMeasure is one query-shape measurement: fixed iteration count,
// wall-clocked, with the engine's rows-examined counter and process-wide
// allocation delta turned into the rates the regression gate watches.
type PlanBenchMeasure struct {
	Ops          uint64  `json:"ops"`
	RowsExamined uint64  `json:"rows_examined"`
	WallMs       float64 `json:"wall_ms"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	RowsPerSec   float64 `json:"rows_per_sec"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
}

// PlanBenchResult is the BENCH_planner.json payload: the executor's speed on
// the four query shapes the planner work rebuilt — tracked PR-over-PR so
// operator-tree regressions surface immediately (`make bench-plan` gates
// rows/sec against the checked-in bench/planner_baseline.json).
type PlanBenchResult struct {
	// PointRead is a unique-key lookup: plan-cache hit + one index probe,
	// the executor's minimum per-statement overhead.
	PointRead PlanBenchMeasure `json:"point_read"`
	// IndexScan is a non-unique eq bucket scan with a residual filter.
	IndexScan PlanBenchMeasure `json:"index_scan"`
	// HashJoin is a full two-table equi-join with no usable inner index, so
	// the planner must pick the hash algorithm (asserted at setup).
	HashJoin PlanBenchMeasure `json:"hash_join"`
	// GroupAgg is a grouped COUNT over the full table.
	GroupAgg PlanBenchMeasure `json:"group_agg"`
}

// planBenchRows is the benchmark table size, small enough that the whole
// suite runs in a few seconds, large enough that per-row costs dominate.
const planBenchRows = 4000

// planBenchDB loads the synthetic benchmark schema: items (unique PK,
// indexed non-unique group column) and lines (one child per item, with the
// join column deliberately unindexed so an items⋈lines equi-join can only
// choose between hash and nested-loop).
func planBenchDB() (*sqlengine.Engine, *sqlengine.Session, error) {
	eng := sqlengine.NewEngine()
	sess := eng.NewSession("")
	ddl := []string{
		"CREATE DATABASE bench",
		"USE bench",
		"CREATE TABLE items (id BIGINT PRIMARY KEY, grp BIGINT, val VARCHAR(32), INDEX idx_grp (grp))",
		"CREATE TABLE lines (id BIGINT PRIMARY KEY, ref BIGINT, qty BIGINT)",
	}
	for _, q := range ddl {
		if _, err := sess.Exec(q); err != nil {
			return nil, nil, fmt.Errorf("planbench: %s: %w", q, err)
		}
	}
	ins, err := eng.Prepare("INSERT INTO items (id, grp, val) VALUES (?, ?, ?)")
	if err != nil {
		return nil, nil, err
	}
	insLine, err := eng.Prepare("INSERT INTO lines (id, ref, qty) VALUES (?, ?, ?)")
	if err != nil {
		return nil, nil, err
	}
	for i := 1; i <= planBenchRows; i++ {
		if _, err := ins.Run(sess,
			sqlengine.NewInt(int64(i)),
			sqlengine.NewInt(int64(i%50)),
			sqlengine.NewString(fmt.Sprintf("item%05d", i))); err != nil {
			return nil, nil, err
		}
		if _, err := insLine.Run(sess,
			sqlengine.NewInt(int64(i)),
			sqlengine.NewInt(int64(i)),
			sqlengine.NewInt(int64(i%7))); err != nil {
			return nil, nil, err
		}
	}
	return eng, sess, nil
}

// measurePlanBench runs one prepared query shape for iters iterations and
// derives the rates. One untimed warm-up execution populates the plan cache
// and refreshes statistics, so the loop measures steady-state execution.
// The timed loop repeats three times and the fastest repetition is reported:
// wall-clock noise (GC pauses, scheduler preemption) is one-sided, so
// best-of-N is what makes a 20% regression gate hold on shared hardware.
// Allocations are averaged over every repetition — they are deterministic.
func measurePlanBench(sess *sqlengine.Session, st *sqlengine.Statement, iters int,
	args func(i int) []sqlengine.Value) (PlanBenchMeasure, error) {
	if _, err := st.Run(sess, args(0)...); err != nil {
		return PlanBenchMeasure{}, err
	}
	const reps = 3
	var rows uint64
	var best time.Duration
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for r := 0; r < reps; r++ {
		rows = 0
		//cloudrepl:allow-simtime the planner bench measures real elapsed wall time per statement
		start := time.Now()
		for i := 0; i < iters; i++ {
			res, err := st.Run(sess, args(i)...)
			if err != nil {
				return PlanBenchMeasure{}, err
			}
			rows += uint64(res.Stats.RowsExamined)
		}
		//cloudrepl:allow-simtime the planner bench measures real elapsed wall time per statement
		wall := time.Since(start)
		if r == 0 || wall < best {
			best = wall
		}
	}
	runtime.ReadMemStats(&after)

	m := PlanBenchMeasure{
		Ops:          uint64(iters),
		RowsExamined: rows,
		WallMs:       float64(best.Nanoseconds()) / 1e6,
	}
	if iters > 0 {
		m.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(reps*iters)
	}
	if best > 0 {
		m.OpsPerSec = float64(iters) / best.Seconds()
		m.RowsPerSec = float64(rows) / best.Seconds()
	}
	return m, nil
}

// PlanBench measures executor speed on the four query shapes. The hash-join
// plan choice is asserted, not assumed: if the planner stops picking the
// hash algorithm for the unindexed join, the bench fails rather than
// silently measuring a different operator.
func PlanBench() (PlanBenchResult, error) {
	var res PlanBenchResult
	eng, sess, err := planBenchDB()
	if err != nil {
		return res, err
	}

	point, err := eng.Prepare("SELECT * FROM items WHERE id = ?")
	if err != nil {
		return res, err
	}
	res.PointRead, err = measurePlanBench(sess, point, 20000, func(i int) []sqlengine.Value {
		return []sqlengine.Value{sqlengine.NewInt(int64(i%planBenchRows) + 1)}
	})
	if err != nil {
		return res, fmt.Errorf("planbench point read: %w", err)
	}

	scan, err := eng.Prepare("SELECT id, val FROM items WHERE grp = ?")
	if err != nil {
		return res, err
	}
	res.IndexScan, err = measurePlanBench(sess, scan, 4000, func(i int) []sqlengine.Value {
		return []sqlengine.Value{sqlengine.NewInt(int64(i % 50))}
	})
	if err != nil {
		return res, fmt.Errorf("planbench index scan: %w", err)
	}

	join, err := eng.Prepare("SELECT COUNT(*) AS n FROM items i JOIN lines l ON l.ref = i.id WHERE l.qty = ?")
	if err != nil {
		return res, err
	}
	jp, err := join.Plan(sess)
	if err != nil {
		return res, err
	}
	if !strings.Contains(jp.Explain(), "hash_join") {
		return res, fmt.Errorf("planbench: join plan is not a hash join:\n%s", jp.Explain())
	}
	res.HashJoin, err = measurePlanBench(sess, join, 100, func(i int) []sqlengine.Value {
		return []sqlengine.Value{sqlengine.NewInt(int64(i % 7))}
	})
	if err != nil {
		return res, fmt.Errorf("planbench hash join: %w", err)
	}

	agg, err := eng.Prepare("SELECT grp, COUNT(*) AS n FROM items GROUP BY grp ORDER BY n DESC")
	if err != nil {
		return res, err
	}
	res.GroupAgg, err = measurePlanBench(sess, agg, 200, func(int) []sqlengine.Value { return nil })
	if err != nil {
		return res, fmt.Errorf("planbench group agg: %w", err)
	}
	return res, nil
}

// RenderPlanBench formats BENCH_planner for the console.
func RenderPlanBench(r PlanBenchResult) string {
	var b strings.Builder
	b.WriteString("BENCH-PLANNER — executor speed by query shape\n\n")
	fmt.Fprintf(&b, "%-16s %9s %14s %12s %12s %14s\n",
		"shape", "ops", "rows examined", "ops/sec", "rows/sec", "allocs/op")
	row := func(name string, m PlanBenchMeasure) {
		fmt.Fprintf(&b, "%-16s %9d %14d %12.0f %12.0f %14.1f\n",
			name, m.Ops, m.RowsExamined, m.OpsPerSec, m.RowsPerSec, m.AllocsPerOp)
	}
	row("point read", r.PointRead)
	row("index scan", r.IndexScan)
	row("hash join", r.HashJoin)
	row("group aggregate", r.GroupAgg)
	return b.String()
}

// CheckPlanBaseline compares a fresh planner bench against the checked-in
// baseline and fails when any shape's rows/sec has regressed more than 20%
// (point read gates ops/sec instead — it examines one row per statement, so
// per-statement overhead is what it exists to catch). Refresh deliberately
// with: cp <jsondir>/BENCH_planner.json bench/planner_baseline.json
func CheckPlanBaseline(path string, cur PlanBenchResult) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("planner baseline: %w", err)
	}
	var base PlanBenchResult
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("planner baseline %s: %w", path, err)
	}
	check := func(shape string, curRate, baseRate float64) error {
		if baseRate <= 0 {
			return fmt.Errorf("planner baseline %s: %s rate missing or zero", path, shape)
		}
		limit := baseRate / 1.20
		if curRate < limit {
			return fmt.Errorf("planner regression: %s %.0f/sec is more than 20%% below baseline %.0f/sec (limit %.0f); if intentional, refresh %s",
				shape, curRate, baseRate, limit, path)
		}
		return nil
	}
	if err := check("point_read ops", cur.PointRead.OpsPerSec, base.PointRead.OpsPerSec); err != nil {
		return err
	}
	if err := check("index_scan rows", cur.IndexScan.RowsPerSec, base.IndexScan.RowsPerSec); err != nil {
		return err
	}
	if err := check("hash_join rows", cur.HashJoin.RowsPerSec, base.HashJoin.RowsPerSec); err != nil {
		return err
	}
	if err := check("group_agg rows", cur.GroupAgg.RowsPerSec, base.GroupAgg.RowsPerSec); err != nil {
		return err
	}
	return nil
}
