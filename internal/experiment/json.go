package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cloudrepl/internal/metrics"
)

// This file flattens every figure/ablation result into plain data-only
// structures and writes them as BENCH_<name>.json. RunResult itself is not
// marshalable (its spec carries balancer constructors), and raw structs
// would couple the JSON schema to internal field names — these rows are the
// stable machine-readable surface tracked across PRs.

// locTag is a short stable location key for JSON ("same-zone", not the
// human string with the zone id in parentheses).
func locTag(l Location) string {
	switch l {
	case SameZone:
		return "same-zone"
	case DiffZone:
		return "diff-zone"
	default:
		return "diff-region"
	}
}

// runRow is one experiment run's scalar measurements.
type runRow struct {
	Loc            string  `json:"loc"`
	Slaves         int     `json:"slaves"`
	Users          int     `json:"users"`
	ThroughputOps  float64 `json:"throughput_ops"`
	DelayMs        float64 `json:"delay_ms"`
	MasterUtil     float64 `json:"master_util"`
	LatencyMs      float64 `json:"latency_ms"`
	WriteLatencyMs float64 `json:"write_latency_ms"`
	Errors         int     `json:"errors"`
	// Metrics is the end-of-run registry snapshot (component counters keyed
	// "<component>.<metric>"); map marshaling is deterministic because
	// encoding/json sorts keys.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func newRunRow(res RunResult) runRow {
	return runRow{
		Loc:            locTag(res.Spec.Loc),
		Slaves:         res.Spec.Slaves,
		Users:          res.Spec.Users,
		ThroughputOps:  res.Throughput,
		DelayMs:        res.AvgDelayMs,
		MasterUtil:     res.MasterUtil,
		LatencyMs:      res.LatencyMsMean,
		WriteLatencyMs: res.WriteLatencyMsMean,
		Errors:         res.Errors,
		Metrics:        res.Metrics,
	}
}

// SweepJSON flattens a figure sweep (loaded points plus unloaded
// baselines, with the relative delay already computed per point).
func SweepJSON(sw *Sweep) any {
	type point struct {
		runRow
		RelativeDelayMs float64 `json:"relative_delay_ms"`
	}
	var points []point
	for _, loc := range sw.Locs {
		for _, ns := range sw.SlaveNums {
			for _, us := range sw.UserNums {
				res, ok := sw.Results[Key{loc, ns, us}]
				if !ok {
					continue
				}
				points = append(points, point{newRunRow(res), sw.RelativeDelay(loc, ns, us)})
			}
		}
	}
	return map[string]any{
		"read_ratio": sw.ReadRatio,
		"scale":      sw.Scale,
		"points":     points,
	}
}

// SyncModesJSON flattens A-SYNC.
func SyncModesJSON(rows []SyncModeResult) any {
	type row struct {
		runRow
		Mode string `json:"mode"`
	}
	var out []row
	for _, r := range rows {
		out = append(out, row{newRunRow(r.Res), r.Mode.String()})
	}
	return out
}

// BalancersJSON flattens A-LB.
func BalancersJSON(rows []BalancerResult) any {
	type row struct {
		runRow
		Balancer        string `json:"balancer"`
		MasterFallbacks uint64 `json:"master_fallbacks"`
	}
	var out []row
	for _, r := range rows {
		out = append(out, row{newRunRow(r.Res), r.Name, r.Res.MasterFallbacks})
	}
	return out
}

// VariationJSON flattens A-VAR.
func VariationJSON(v VariationResult) any {
	return map[string]any{
		"homogeneous_tp": v.HomogeneousTp,
		"sample_tps":     v.SampleTps,
		"mean_tp":        v.MeanTp,
		"cov":            v.CoV,
		"min_tp":         v.MinTp,
		"max_tp":         v.MaxTp,
	}
}

// PriorityJSON flattens A-PRIO.
func PriorityJSON(r PriorityResult) any {
	return map[string]any{
		"fifo":          newRunRow(r.Normal),
		"high_priority": newRunRow(r.Prioritized),
	}
}

// ArchitecturesJSON flattens A-ARCH.
func ArchitecturesJSON(rows []ArchResult) any {
	type row struct {
		Arch           string  `json:"arch"`
		ThroughputOps  float64 `json:"throughput_ops"`
		WriteLatencyMs float64 `json:"write_latency_ms"`
		ReadLatencyMs  float64 `json:"read_latency_ms"`
	}
	var out []row
	for _, r := range rows {
		out = append(out, row{r.Arch, r.Throughput, r.WriteLatencyMs, r.ReadLatencyMs})
	}
	return out
}

// ChaosJSON flattens A-CHAOS.
func ChaosJSON(r ChaosResult) any {
	row := func(sc ChaosScenario) map[string]any {
		return map[string]any{
			"scenario":       sc.Name,
			"throughput_ops": sc.Res.Throughput,
			"pre_rate":       sc.PreRate,
			"dip_pct":        sc.DipPct,
			"recovery_sec":   sc.RecoverySec,
			"error_rate":     sc.ErrorRate,
			"max_lag_events": sc.MaxLagEvents,
			"failovers":      sc.Res.ProxyStats.Failovers,
			"final_master":   sc.Res.FinalMaster,
		}
	}
	return map[string]any{
		"crash_at_sec":       r.CrashAt.Seconds(),
		"slave_down_for_sec": r.SlaveDownFor.Seconds(),
		"scenarios":          []any{row(r.Baseline), row(r.SlaveCrash), row(r.MasterCrash)},
	}
}

// Fig4JSON flattens the clock-synchronization traces.
func Fig4JSON(once, everySecond ClockResult) any {
	row := func(c ClockResult) map[string]any {
		return map[string]any{
			"label":      c.Label,
			"samples_ms": c.SamplesM,
			"mean_ms":    c.Stats.Mean,
			"max_ms":     c.Stats.Max,
		}
	}
	return []any{row(once), row(everySecond)}
}

// RTTJSON flattens the half-RTT table.
func RTTJSON(rows []RTTResult) any {
	type row struct {
		Loc       string  `json:"loc"`
		HalfRTTMs float64 `json:"half_rtt_ms"`
		MedianMs  float64 `json:"median_ms"`
		MinMs     float64 `json:"min_ms"`
		MaxMs     float64 `json:"max_ms"`
		Samples   int     `json:"samples"`
	}
	var out []row
	for _, r := range rows {
		out = append(out, row{locTag(r.Loc), r.HalfRTTMs, r.MedianMs, r.MinMs, r.MaxMs, r.NumSamples})
	}
	return out
}

// seriesJSON flattens a sampled time series to (t_sec, v) pairs.
func seriesJSON(ts *metrics.TimeSeries) any {
	type pt struct {
		TSec float64 `json:"t_sec"`
		V    float64 `json:"v"`
	}
	out := []pt{} // marshal as [], not null, when empty
	if ts == nil {
		return out
	}
	for _, p := range ts.Points() {
		out = append(out, pt{time.Duration(p.T).Seconds(), p.V})
	}
	return out
}

// ElasticJSON flattens A-ELASTIC, decision logs and fleet series included.
func ElasticJSON(r ElasticResult) any {
	type stage struct {
		Users  int     `json:"users"`
		DurSec float64 `json:"dur_sec"`
	}
	type decision struct {
		TSec   float64 `json:"t_sec"`
		Action string  `json:"action"`
		Slave  string  `json:"slave,omitempty"`
		Slaves int     `json:"slaves"`
		Reason string  `json:"reason"`
	}
	var stages []stage
	for _, s := range r.Stages {
		stages = append(stages, stage{s.Users, s.Dur.Seconds()})
	}
	var fleets []map[string]any
	for _, f := range r.Fleets {
		ds := []decision{} // marshal as [], not null, for fixed fleets
		for _, d := range f.Decisions {
			ds = append(ds, decision{time.Duration(d.T).Seconds(), d.Action, d.Slave, d.Slaves, d.Reason})
		}
		fleets = append(fleets, map[string]any{
			"name":                f.Name,
			"policy":              f.Policy,
			"throughput_ops":      f.Throughput,
			"errors":              f.Errors,
			"slo_violation_sec":   f.SLOViolation.Seconds(),
			"slave_vm_minutes":    f.SlaveVMMinutes,
			"final_slaves":        f.FinalSlaves,
			"peak_slaves":         f.PeakSlaves,
			"master_bound":        f.MasterBound,
			"master_bound_at_sec": f.MasterBoundAt.Seconds(),
			"master_bound_slaves": f.MasterBoundSlaves,
			"verdict":             f.Verdict,
			"decisions":           ds,
			"slaves_series":       seriesJSON(f.SlavesSeries),
			"ops_series":          seriesJSON(f.ThroughputSeries),
		})
	}
	return map[string]any{
		"slo_target_ms": r.SLOTargetMs,
		"stages":        stages,
		"fleets":        fleets,
	}
}

// PipelineJSON flattens A-PIPELINE: one object per variant × slave-count
// curve with its knee, unloaded baseline, and per-point p95 tail delays.
func PipelineJSON(r PipelineResult) any {
	type point struct {
		runRow
		P95DelayMs float64 `json:"p95_delay_ms"`
	}
	var curves []map[string]any
	for _, c := range r.Curves {
		points := []point{}
		var last RunResult
		for _, pt := range c.Points {
			points = append(points, point{newRunRow(pt.Res), pt.Res.P95DelayMs})
			last = pt.Res
		}
		curves = append(curves, map[string]any{
			"variant":           c.Variant,
			"slaves":            c.Slaves,
			"knee_users":        c.KneeUsers,
			"knee_found":        c.KneeFound,
			"max_throughput":    c.MaxTp,
			"unloaded_delay_ms": c.Unloaded.AvgDelayMs,
			"p95_at_knee_ms":    c.loadedP95(),
			"group_commits":     last.ReplStats.GroupCommits,
			"batches_shipped":   last.ReplStats.BatchesShipped,
			"entries_shipped":   last.ReplStats.EntriesShipped,
			"points":            points,
		})
	}
	return map[string]any{
		"loc":    locTag(r.Loc),
		"users":  r.UserNums,
		"curves": curves,
	}
}

// WriteJSON marshals v (indented, trailing newline) into
// <dir>/BENCH_<name>.json, creating dir as needed.
func WriteJSON(dir, name string, v any) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("experiment: marshal %s: %w", name, err)
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
