package experiment

import (
	"bytes"
	"sort"
	"testing"

	"cloudrepl/internal/obs"
)

// TestTraceDeterminism runs the traced pipeline point twice with one seed
// and byte-compares the exported trace files — the -trace acceptance
// criterion: span IDs, timestamps and ordering must be identical run to
// run. The metrics snapshots must agree too.
func TestTraceDeterminism(t *testing.T) {
	opts := SweepOpts{Seed: 5}
	r1, err := TraceRun(opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := TraceRun(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.TraceJSON) == 0 {
		t.Fatal("traced run produced no trace")
	}
	if !bytes.Equal(r1.TraceJSON, r2.TraceJSON) {
		t.Fatalf("same-seed trace files differ\n%s", firstDivergence(r1.TraceJSON, r2.TraceJSON))
	}

	var keys []string
	for k := range r1.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if r1.Metrics[k] != r2.Metrics[k] {
			t.Errorf("metric %s differs across same-seed runs: %v vs %v", k, r1.Metrics[k], r2.Metrics[k])
		}
	}
	if len(r2.Metrics) != len(r1.Metrics) {
		t.Errorf("metric sets differ in size: %d vs %d", len(r1.Metrics), len(r2.Metrics))
	}
}

// TestTraceCoversWholePipeline parses a traced run and checks the tentpole
// invariant: every pipeline stage produced spans, and at least one write's
// causal chain — client call, pool checkout, proxy routing, server commit,
// binlog, slave apply — is linked into a single trace.
func TestTraceCoversWholePipeline(t *testing.T) {
	r, err := TraceRun(SweepOpts{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	spans, err := obs.ParseTrace(r.TraceJSON)
	if err != nil {
		t.Fatal(err)
	}
	byStage := map[string]int{}
	for _, sp := range spans {
		byStage[sp.Stage]++
	}
	for _, st := range obs.Stages {
		if byStage[st] == 0 {
			t.Errorf("no spans for stage %q", st)
		}
	}
	trace, ok := obs.FullTrace(spans)
	if !ok {
		t.Fatal("no single trace covers the whole pipeline")
	}
	inTrace := map[string]int{}
	roots := 0
	for _, sp := range spans {
		if sp.Trace != trace {
			continue
		}
		inTrace[sp.Stage]++
		if sp.Parent == 0 {
			roots++
		}
	}
	for _, st := range obs.Stages {
		if inTrace[st] == 0 {
			t.Errorf("full trace lacks stage %q: %v", st, inTrace)
		}
	}
	if roots != 1 {
		t.Errorf("full trace has %d roots, want exactly the client span", roots)
	}
	if len(obs.CriticalPath(spans, trace)) < 3 {
		t.Error("critical path shorter than client→proxy→server")
	}

	// The registry snapshot rode along: client latency and replication
	// counters must be populated for a loaded run.
	for _, key := range []string{"client.exec.count", "proxy.writes", "pool.borrows", "repl.entries_shipped"} {
		if r.Metrics[key] == 0 {
			t.Errorf("metric %s = 0 after a loaded traced run", key)
		}
	}
}
