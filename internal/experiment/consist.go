package experiment

import (
	"encoding/json"
	"fmt"
	"strings"

	"cloudrepl/internal/proxy"
	"cloudrepl/internal/repl"
)

// ConsistArmResult is one consistency tier measured on the shared A-CONSIST
// grid: the Cloudstone mix at a fixed user population, with the proxy
// enforcing that tier for every read.
type ConsistArmResult struct {
	Tier      string
	Users     int
	Slaves    int
	ReadRatio float64

	Throughput      float64
	ReadThroughput  float64
	WriteThroughput float64
	Errors          int
	LatencyMsMean   float64
	AvgDelayMs      float64

	// MasterReadSharePct is the fraction of reads the master served — the
	// capacity price of the tier (Strong pushes it to 100%, Session and
	// Bounded pay it only when no slave qualifies).
	MasterReadSharePct float64
	// AvgStaleEvents is the mean binlog events the serving backend was
	// behind the master at read time — observed staleness, not the bound.
	AvgStaleEvents float64
	// RYWCompliancePct is the share of token-carrying reads whose backend
	// had applied the connection's newest write. Measured identically in
	// every tier, so Eventual's drift and Session's guarantee land on the
	// same scale.
	RYWCompliancePct float64
	EpochFallbacks   uint64

	Stats   proxy.Stats
	Metrics map[string]float64
}

// ConsistencyResult is the A-CONSIST ablation output.
type ConsistencyResult struct {
	Users     int
	Slaves    int
	ReadRatio float64
	Arms      []ConsistArmResult
}

// consistGrid is the shared parameter point every tier runs on: read-heavy
// enough that pinning all reads to the master (Strong) costs real
// throughput, loaded enough that the slaves visibly lag (so Eventual's
// compliance drifts below Session's).
type consistGrid struct {
	users, slaves, scale int
	readRatio            float64
}

func defaultConsistGrid() consistGrid {
	return consistGrid{users: 300, slaves: 2, scale: 300, readRatio: 0.8}
}

// consistTiers is the sweep order, weakest to strongest.
var consistTiers = []proxy.Consistency{proxy.Eventual, proxy.Bounded, proxy.Session, proxy.Strong}

// AblationConsistency measures the consistency spectrum the paper's
// eventual-only proxy collapses to one point: the same Cloudstone grid under
// each of the four read tiers. The interesting trade is throughput against
// observed staleness and read-your-writes compliance — Strong buys zero
// staleness at master-capacity cost, Session buys exactly its own writes
// back for a master fallback only when the slaves lag, Bounded caps
// staleness without per-session bookkeeping, Eventual is the paper's
// configuration.
func AblationConsistency(opts SweepOpts) (ConsistencyResult, error) {
	g := defaultConsistGrid()
	out := ConsistencyResult{Users: g.users, Slaves: g.slaves, ReadRatio: g.readRatio}
	for _, tier := range consistTiers {
		arm, err := runConsistArm(opts, g, tier)
		if err != nil {
			return out, err
		}
		out.Arms = append(out.Arms, arm)
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf(
				"consist %-8s %4d users  tp=%7.2f ops/s  master-reads=%5.1f%%  stale=%6.2f ev  ryw=%6.2f%%  err=%d",
				arm.Tier, arm.Users, arm.Throughput, arm.MasterReadSharePct,
				arm.AvgStaleEvents, arm.RYWCompliancePct, arm.Errors))
		}
	}
	return out, nil
}

// runConsistArm executes one tier on its own virtual timeline. Every arm
// shares one seed so the workload arrival pattern is identical across tiers
// and the comparison is paired.
func runConsistArm(opts SweepOpts, g consistGrid, tier proxy.Consistency) (ConsistArmResult, error) {
	ramp, steady, down := opts.phases()
	res, err := Run(RunSpec{
		Seed: opts.Seed, Users: g.users, Slaves: g.slaves, Scale: g.scale,
		ReadRatio: g.readRatio, Loc: SameZone, Mode: repl.Async,
		Consistency: tier,
		RampUp:      ramp, Steady: steady, RampDown: down,
	})
	if err != nil {
		return ConsistArmResult{}, fmt.Errorf("consist arm %s: %w", tier, err)
	}
	st := res.ProxyStats
	arm := ConsistArmResult{
		Tier: tier.String(), Users: g.users, Slaves: g.slaves, ReadRatio: g.readRatio,
		Throughput: res.Throughput, ReadThroughput: res.ReadThroughput,
		WriteThroughput: res.WriteThroughput, Errors: res.Errors,
		LatencyMsMean: res.LatencyMsMean, AvgDelayMs: res.AvgDelayMs,
		EpochFallbacks: st.EpochFallbacks,
		Stats:          st, Metrics: res.Metrics,
	}
	if st.Reads > 0 {
		arm.MasterReadSharePct = 100 * float64(st.MasterFallbacks) / float64(st.Reads)
		arm.AvgStaleEvents = float64(st.StaleEventsObserved) / float64(st.Reads)
	}
	if st.RYWChecked > 0 {
		arm.RYWCompliancePct = 100 * float64(st.RYWCompliant) / float64(st.RYWChecked)
	}
	return arm, nil
}

// ConsistDeterminism runs the Session arm (the most stateful tier: token
// minting, epoch checks, per-slave watermark filtering, and the MVCC
// version stamps underneath) twice from one seed and fails on any byte
// difference in the marshalled result — commit-version streams included,
// since AvgDelayMs and the staleness counters are derived from them.
func ConsistDeterminism(opts SweepOpts) error {
	g := defaultConsistGrid()
	if opts.Short {
		g.users = 150
	}
	marshal := func() ([]byte, error) {
		arm, err := runConsistArm(opts, g, proxy.Session)
		if err != nil {
			return nil, err
		}
		return json.Marshal(arm)
	}
	a, err := marshal()
	if err != nil {
		return err
	}
	b, err := marshal()
	if err != nil {
		return err
	}
	if string(a) != string(b) {
		return fmt.Errorf("consist determinism: two runs of seed %d differ (%d vs %d bytes)", opts.Seed, len(a), len(b))
	}
	return nil
}

// RenderConsistency formats the A-CONSIST ablation for the terminal.
func RenderConsistency(r ConsistencyResult) string {
	var b strings.Builder
	b.WriteString("A-CONSIST — read-consistency tiers on one Cloudstone grid\n")
	fmt.Fprintf(&b, "%d users, %d slaves, %.0f/%.0f read/write mix, same-zone async replication\n\n",
		r.Users, r.Slaves, 100*r.ReadRatio, 100*(1-r.ReadRatio))
	fmt.Fprintf(&b, "%-9s %11s %9s %13s %12s %10s %6s\n",
		"tier", "tp (ops/s)", "lat (ms)", "master reads", "stale (ev)", "ryw", "errs")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "%-9s %11.2f %9.2f %12.1f%% %12.2f %9.2f%% %6d\n",
			a.Tier, a.Throughput, a.LatencyMsMean, a.MasterReadSharePct,
			a.AvgStaleEvents, a.RYWCompliancePct, a.Errors)
	}
	b.WriteString("\neventual reads any slave and inherits its lag; bounded caps the lag a\n")
	b.WriteString("serving slave may carry; session filters to slaves that have applied\n")
	b.WriteString("the connection's own newest write (token epoch guards failover); strong\n")
	b.WriteString("pins every read to the master. throughput falls as the tier tightens\n")
	b.WriteString("because qualifying backends get scarcer — strong degenerates to the\n")
	b.WriteString("single-master ceiling the read-scaling paper set out to escape, which\n")
	b.WriteString("is exactly the price of linearizable reads in this architecture.\n")
	return b.String()
}

// ConsistencyJSON shapes the ablation for BENCH_consist.json.
func ConsistencyJSON(r ConsistencyResult) any {
	type arm struct {
		Tier               string  `json:"tier"`
		Throughput         float64 `json:"throughput_ops_s"`
		ReadThroughput     float64 `json:"read_throughput_ops_s"`
		WriteThroughput    float64 `json:"write_throughput_ops_s"`
		Errors             int     `json:"errors"`
		LatencyMsMean      float64 `json:"latency_ms_mean"`
		AvgDelayMs         float64 `json:"delay_ms"`
		MasterReadSharePct float64 `json:"master_read_share_pct"`
		AvgStaleEvents     float64 `json:"avg_stale_events"`
		RYWCompliancePct   float64 `json:"ryw_compliance_pct"`
		EpochFallbacks     uint64  `json:"epoch_fallbacks"`
		TierReads          uint64  `json:"tier_reads"`
	}
	arms := []arm{}
	for _, a := range r.Arms {
		tierReads := a.Stats.EventualReads + a.Stats.BoundedReads + a.Stats.SessionReads + a.Stats.StrongReads
		arms = append(arms, arm{
			Tier: a.Tier, Throughput: a.Throughput,
			ReadThroughput: a.ReadThroughput, WriteThroughput: a.WriteThroughput,
			Errors: a.Errors, LatencyMsMean: a.LatencyMsMean, AvgDelayMs: a.AvgDelayMs,
			MasterReadSharePct: a.MasterReadSharePct, AvgStaleEvents: a.AvgStaleEvents,
			RYWCompliancePct: a.RYWCompliancePct, EpochFallbacks: a.EpochFallbacks,
			TierReads: tierReads,
		})
	}
	return map[string]any{
		"users":      r.Users,
		"slaves":     r.Slaves,
		"read_ratio": r.ReadRatio,
		"arms":       arms,
	}
}
