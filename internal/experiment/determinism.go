package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
)

// InjectNondeterminism, when set, salts every determinism-check encoding
// with a draw from the global math/rand stream — exactly the class of bug
// the checker exists to catch (state outside the run's seeded Env leaking
// into results). The bench CLI's -determinism-inject flag sets it to prove,
// end to end, that the checker fails when it should; nothing else may
// enable it.
var InjectNondeterminism bool

// CheckDeterminism executes run twice and byte-compares the canonical
// indented-JSON encodings of the two results. Any difference — a reordered
// map, a wall-clock timestamp, global rand state, host-scheduling leakage —
// fails with the first divergent line. The run function must construct
// everything it randomizes from its own fixed seed.
func CheckDeterminism(name string, run func() (any, error)) error {
	first, err := runEncoded(run)
	if err != nil {
		return fmt.Errorf("%s: first run: %w", name, err)
	}
	second, err := runEncoded(run)
	if err != nil {
		return fmt.Errorf("%s: second run: %w", name, err)
	}
	if bytes.Equal(first, second) {
		return nil
	}
	return fmt.Errorf("%s: two runs with one seed produced different results\n%s",
		name, firstDivergence(first, second))
}

func runEncoded(run func() (any, error)) ([]byte, error) {
	v, err := run()
	if err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	if InjectNondeterminism {
		//cloudrepl:allow-simrand deliberate self-test entropy: -determinism-inject must make the check fail
		b = append(b, fmt.Sprintf("\ninjected-entropy: %d", rand.Int63())...)
	}
	return b, nil
}

// firstDivergence locates the first line where the two encodings disagree,
// so a failure points at the drifting field instead of dumping two blobs.
func firstDivergence(a, b []byte) string {
	al := strings.Split(string(a), "\n")
	bl := strings.Split(string(b), "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("first divergence at JSON line %d:\n  run 1: %s\n  run 2: %s",
				i+1, strings.TrimSpace(al[i]), strings.TrimSpace(bl[i]))
		}
	}
	return fmt.Sprintf("encodings agree on the first %d lines but differ in length: %d vs %d lines",
		n, len(al), len(bl))
}

// PipelineDeterminism runs the A-PIPELINE ablation twice with the same
// SweepOpts (hence the same seed schedule) and byte-compares the JSON the
// bench would write. quick trims the grid to the corner points — two
// variants, 1 and 4 slaves, two workloads — which exercises every pipeline
// stage (group commit, batching, parallel apply) in a fraction of the time;
// the full grid is the real A-PIPELINE sweep.
func PipelineDeterminism(opts SweepOpts, quick bool) error {
	variants := PipelineVariants()
	slaveNums := []int{1, 2, 4}
	userNums := []int{50, 100, 150, 200, 250, 300}
	if quick {
		variants = []PipelineVariant{variants[0], variants[len(variants)-1]}
		slaveNums = []int{1, 4}
		userNums = []int{50, 150}
	}
	return CheckDeterminism("A-PIPELINE", func() (any, error) {
		r, err := ablationPipelineGrid(opts, variants, slaveNums, userNums)
		if err != nil {
			return nil, err
		}
		return PipelineJSON(r), nil
	})
}

// TraceDeterminism runs the traced pipeline point twice with one seed and
// byte-compares the Chrome trace export together with the metrics snapshot:
// span IDs, virtual timestamps and registry values must all be identical
// run to run, or tracing has leaked nondeterminism into the simulation.
func TraceDeterminism(opts SweepOpts) error {
	return CheckDeterminism("A-TRACE", func() (any, error) {
		r, err := TraceRun(opts)
		if err != nil {
			return nil, err
		}
		return struct {
			Trace   json.RawMessage    `json:"trace"`
			Metrics map[string]float64 `json:"metrics"`
		}{json.RawMessage(r.TraceJSON), r.Metrics}, nil
	})
}
