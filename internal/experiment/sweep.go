package experiment

import (
	"fmt"
	"time"
)

// SweepOpts controls a figure sweep.
type SweepOpts struct {
	// Short shrinks the run protocol to 2/5/1 minutes for quick passes
	// (unit tests, testing.B benchmarks). The full protocol is 10/20/5.
	Short bool
	// Parallelism bounds concurrent runs (each has its own simulation
	// environment); 0 = GOMAXPROCS.
	Parallelism int
	// Seed offsets every run's seed for reproducibility.
	Seed int64
	// Progress, when non-nil, receives a line per completed run.
	Progress func(string)
}

func (o SweepOpts) phases() (ramp, steady, down time.Duration) {
	if o.Short {
		return 2 * time.Minute, 5 * time.Minute, 1 * time.Minute
	}
	return 10 * time.Minute, 20 * time.Minute, 5 * time.Minute
}

// Key identifies a sweep point.
type Key struct {
	Loc    Location
	Slaves int
	Users  int
}

// Sweep runs the full cross product of locations × slave counts × user
// counts for one read ratio and data scale, including the unloaded
// (Users=0) baselines needed for relative replication delay. Runs execute
// in parallel, each on its own virtual timeline.
type Sweep struct {
	ReadRatio float64
	Scale     int
	Locs      []Location
	SlaveNums []int
	UserNums  []int
	Opts      SweepOpts

	Results   map[Key]RunResult
	Baselines map[Key]RunResult // Users == 0
}

// Fig2Sweep parameterizes the 50/50 experiment (Figs. 2 and 5): users
// 50–200 in steps of 25, 1–4 slaves, data scale 300.
func Fig2Sweep(opts SweepOpts) *Sweep {
	return &Sweep{
		ReadRatio: 0.50,
		Scale:     300,
		Locs:      []Location{SameZone, DiffZone, DiffRegion},
		SlaveNums: []int{1, 2, 3, 4},
		UserNums:  []int{50, 75, 100, 125, 150, 175, 200},
		Opts:      opts,
	}
}

// Fig3Sweep parameterizes the 80/20 experiment (Figs. 3 and 6): users
// 50–450 in steps of 50, 1–11 slaves, data scale 600.
func Fig3Sweep(opts SweepOpts) *Sweep {
	return &Sweep{
		ReadRatio: 0.80,
		Scale:     600,
		Locs:      []Location{SameZone, DiffZone, DiffRegion},
		SlaveNums: []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
		UserNums:  []int{50, 100, 150, 200, 250, 300, 350, 400, 450},
		Opts:      opts,
	}
}

// Run executes the sweep. It is safe to call once per Sweep.
func (sw *Sweep) Run() error {
	ramp, steady, down := sw.Opts.phases()
	var specs []RunSpec
	seed := sw.Opts.Seed
	for _, loc := range sw.Locs {
		for _, ns := range sw.SlaveNums {
			for _, us := range append([]int{0}, sw.UserNums...) {
				seed++
				specs = append(specs, RunSpec{
					Seed:      seed,
					Users:     us,
					Slaves:    ns,
					Scale:     sw.Scale,
					ReadRatio: sw.ReadRatio,
					Loc:       loc,
					RampUp:    ramp,
					Steady:    steady,
					RampDown:  down,
				})
			}
		}
	}

	results, err := RunShards(specs, sw.Opts.Parallelism, func(i int, res RunResult) {
		if sw.Opts.Progress != nil {
			sw.Opts.Progress(fmt.Sprintf("%-28s slaves=%-2d users=%-3d tp=%6.2f ops/s delay=%9.1f ms",
				specs[i].Loc, specs[i].Slaves, specs[i].Users, res.Throughput, res.AvgDelayMs))
		}
	})
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}

	sw.Results = make(map[Key]RunResult)
	sw.Baselines = make(map[Key]RunResult)
	for _, res := range results {
		k := Key{res.Spec.Loc, res.Spec.Slaves, res.Spec.Users}
		if k.Users == 0 {
			sw.Baselines[Key{k.Loc, k.Slaves, 0}] = res
		} else {
			sw.Results[k] = res
		}
	}
	return nil
}

// Throughput returns the end-to-end throughput at a sweep point.
func (sw *Sweep) Throughput(loc Location, slaves, users int) float64 {
	return sw.Results[Key{loc, slaves, users}].Throughput
}

// RelativeDelay returns the loaded-minus-baseline average replication
// delay in milliseconds at a sweep point (floored at a tenth of a
// millisecond for log-scale presentation, as delays below the baseline's
// own noise are indistinguishable from zero).
func (sw *Sweep) RelativeDelay(loc Location, slaves, users int) float64 {
	loaded := sw.Results[Key{loc, slaves, users}].AvgDelayMs
	base := sw.Baselines[Key{loc, slaves, 0}].AvgDelayMs
	d := loaded - base
	if d < 0.1 {
		d = 0.1
	}
	return d
}

// SaturationPoint reports, for one location and slave count, the workload
// right after the observed maximum throughput — the paper's definition of
// the saturation point — along with that maximum. ok is false when
// throughput was still rising at the largest measured workload.
func (sw *Sweep) SaturationPoint(loc Location, slaves int) (users int, maxTp float64, ok bool) {
	bestIdx := -1
	for i, us := range sw.UserNums {
		tp := sw.Throughput(loc, slaves, us)
		if tp > maxTp {
			maxTp = tp
			bestIdx = i
		}
	}
	if bestIdx < 0 || bestIdx == len(sw.UserNums)-1 {
		return 0, maxTp, false
	}
	return sw.UserNums[bestIdx+1], maxTp, true
}
