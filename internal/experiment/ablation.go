package experiment

import (
	"fmt"
	"math"
	"strings"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/core"
	"cloudrepl/internal/proxy"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// SyncModeResult is one row of the A-SYNC ablation.
type SyncModeResult struct {
	Mode repl.Mode
	Loc  Location
	Res  RunResult
}

// AblationSyncModes quantifies the Background-section trade-off (§II):
// async vs semi-sync vs sync replication at a moderate workload, in the
// same zone and across regions. Sync buys freshness at the price of write
// latency (two cross-region hops per commit) and throughput.
func AblationSyncModes(opts SweepOpts) ([]SyncModeResult, error) {
	ramp, steady, down := opts.phases()
	type cell struct {
		loc  Location
		mode repl.Mode
	}
	var cells []cell
	var specs []RunSpec
	for _, loc := range []Location{SameZone, DiffRegion} {
		for _, mode := range []repl.Mode{repl.Async, repl.SemiSync, repl.Sync} {
			cells = append(cells, cell{loc, mode})
			specs = append(specs, RunSpec{
				Seed: opts.Seed + int64(mode) + 10*int64(loc), Users: 100, Slaves: 3,
				Scale: 300, ReadRatio: 0.5, Loc: loc, Mode: mode,
				RampUp: ramp, Steady: steady, RampDown: down,
			})
		}
	}
	results, err := RunShards(specs, opts.Parallelism, func(i int, res RunResult) {
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("sync-mode %-9s %-28s tp=%6.2f wlat=%7.1fms", cells[i].mode, cells[i].loc, res.Throughput, res.WriteLatencyMsMean))
		}
	})
	if err != nil {
		return nil, err
	}
	out := make([]SyncModeResult, len(cells))
	for i, c := range cells {
		out[i] = SyncModeResult{c.mode, c.loc, results[i]}
	}
	return out, nil
}

// RenderSyncModes formats A-SYNC.
func RenderSyncModes(rows []SyncModeResult) string {
	var b strings.Builder
	b.WriteString("A-SYNC — synchronization models (100 users, 3 slaves, 50/50)\n\n")
	fmt.Fprintf(&b, "%-30s %-10s %12s %16s %16s %14s\n",
		"slave location", "mode", "tp (ops/s)", "write lat (ms)", "op lat (ms)", "delay (ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %-10s %12.2f %16.1f %16.1f %14.1f\n",
			r.Loc, r.Mode, r.Res.Throughput, r.Res.WriteLatencyMsMean, r.Res.LatencyMsMean, r.Res.AvgDelayMs)
	}
	b.WriteString("\nasync returns at master commit; semi-sync waits for one relay receipt;\n")
	b.WriteString("sync waits for every slave to apply — freshness bought with write latency.\n")
	return b.String()
}

// BalancerResult is one row of the A-LB ablation.
type BalancerResult struct {
	Name string
	Res  RunResult
}

// AblationBalancers compares read balancers at a workload past slave
// saturation — including the staleness-bounded strategy the paper's §IV-B
// proposes ("a smart load balancer ... balancing the operations"). The
// staleness-bounded balancer trades master load (fallback reads) for a
// bounded client-visible staleness window.
func AblationBalancers(opts SweepOpts) ([]BalancerResult, error) {
	ramp, steady, down := opts.phases()
	cases := []struct {
		name string
		mk   func() proxy.Balancer
	}{
		{"round-robin", func() proxy.Balancer { return &proxy.RoundRobin{} }},
		{"random", func() proxy.Balancer { return proxy.Random{} }},
		{"least-conn", func() proxy.Balancer { return proxy.LeastConn{} }},
		{"least-lag", func() proxy.Balancer { return proxy.LeastLag{} }},
		{"staleness-bounded(30)", func() proxy.Balancer { return &proxy.StalenessBounded{MaxEventsBehind: 30} }},
	}
	specs := make([]RunSpec, len(cases))
	for i, c := range cases {
		specs[i] = RunSpec{
			Seed: opts.Seed + int64(i), Users: 150, Slaves: 2,
			Scale: 300, ReadRatio: 0.5, Loc: SameZone,
			Balancer: c.mk,
			RampUp:   ramp, Steady: steady, RampDown: down,
		}
	}
	results, err := RunShards(specs, opts.Parallelism, func(i int, res RunResult) {
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("balancer %-22s tp=%6.2f delay=%10.1fms fallbacks=%d",
				cases[i].name, res.Throughput, res.AvgDelayMs, res.MasterFallbacks))
		}
	})
	if err != nil {
		return nil, err
	}
	out := make([]BalancerResult, len(cases))
	for i, c := range cases {
		out[i] = BalancerResult{c.name, results[i]}
	}
	return out, nil
}

// RenderBalancers formats A-LB.
func RenderBalancers(rows []BalancerResult) string {
	var b strings.Builder
	b.WriteString("A-LB — read balancers past slave saturation (150 users, 2 slaves, 50/50, same zone)\n\n")
	fmt.Fprintf(&b, "%-24s %12s %14s %18s %12s\n",
		"balancer", "tp (ops/s)", "delay (ms)", "master fallbacks", "master util")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %12.2f %14.1f %18d %11.0f%%\n",
			r.Name, r.Res.Throughput, r.Res.AvgDelayMs, r.Res.MasterFallbacks, r.Res.MasterUtil*100)
	}
	return b.String()
}

// VariationResult is the A-VAR ablation output.
type VariationResult struct {
	HomogeneousTp float64
	SampleTps     []float64
	MeanTp        float64
	CoV           float64
	MinTp         float64
	MaxTp         float64
}

// AblationInstanceVariation launches the same 1-slave experiment many
// times with the CoV-21% instance lottery (Schad et al.; §IV-A's
// "performance variation of instances is an inevitable issue") and reports
// the throughput spread against a homogeneous control.
func AblationInstanceVariation(opts SweepOpts, samples int) (VariationResult, error) {
	ramp, steady, down := opts.phases()
	mk := func(seed int64, hetero bool) RunSpec {
		return RunSpec{
			// 150 users on one slave: firmly slave-CPU-bound, so throughput
			// tracks the instance's drawn speed instead of the think-time
			// ceiling.
			Seed: seed, Users: 150, Slaves: 1, Scale: 300, ReadRatio: 0.5,
			Loc: SameZone, Heterogeneous: hetero,
			RampUp: ramp, Steady: steady, RampDown: down,
		}
	}
	// Control run rides in shard 0 of the same fan-out as the samples.
	specs := make([]RunSpec, samples+1)
	specs[0] = mk(opts.Seed, false)
	for i := 0; i < samples; i++ {
		specs[i+1] = mk(opts.Seed+100+int64(i), true)
	}
	results, err := RunShards(specs, opts.Parallelism, nil)
	if err != nil {
		return VariationResult{}, err
	}
	out := VariationResult{HomogeneousTp: results[0].Throughput, MinTp: math.Inf(1)}
	var sum, sumsq float64
	for i, res := range results[1:] {
		tp := res.Throughput
		out.SampleTps = append(out.SampleTps, tp)
		sum += tp
		sumsq += tp * tp
		if tp < out.MinTp {
			out.MinTp = tp
		}
		if tp > out.MaxTp {
			out.MaxTp = tp
		}
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("variation sample %2d: tp=%6.2f", i+1, tp))
		}
	}
	n := float64(samples)
	out.MeanTp = sum / n
	variance := sumsq/n - out.MeanTp*out.MeanTp
	if variance < 0 {
		variance = 0
	}
	out.CoV = math.Sqrt(variance) / out.MeanTp
	return out, nil
}

// RenderVariation formats A-VAR.
func RenderVariation(v VariationResult) string {
	var b strings.Builder
	b.WriteString("A-VAR — instance performance lottery (150 users, 1 slave, 50/50, CoV 21% CPUs)\n\n")
	fmt.Fprintf(&b, "homogeneous control: %6.2f ops/s\n", v.HomogeneousTp)
	fmt.Fprintf(&b, "heterogeneous draws: mean %.2f  min %.2f  max %.2f  CoV %.1f%%  (n=%d)\n",
		v.MeanTp, v.MinTp, v.MaxTp, v.CoV*100, len(v.SampleTps))
	b.WriteString("\nthe paper's advice follows: validate instance performance before deploying,\n")
	b.WriteString("since a slow physical host visibly caps end-to-end throughput (§IV-A).\n")
	return b.String()
}

// PriorityResult is the A-PRIO ablation output: the same saturated run
// with and without a prioritized SQL applier.
type PriorityResult struct {
	Normal      RunResult
	Prioritized RunResult
}

// AblationApplierPriority quantifies the design choice DESIGN.md §6 calls
// out: the staleness blow-up near saturation is caused by the single SQL
// applier starving behind client reads in the slave's FIFO CPU queue.
// Scheduling apply work at high priority collapses replication delay by
// orders of magnitude, with the cost surfacing as higher client latency on
// the saturated replicas.
func AblationApplierPriority(opts SweepOpts) (PriorityResult, error) {
	ramp, steady, down := opts.phases()
	mk := func(prio bool) RunSpec {
		return RunSpec{
			Seed: opts.Seed, Users: 150, Slaves: 2, Scale: 300, ReadRatio: 0.5,
			Loc: SameZone, PriorityApply: prio,
			RampUp: ramp, Steady: steady, RampDown: down,
		}
	}
	results, err := RunShards([]RunSpec{mk(false), mk(true)}, opts.Parallelism, nil)
	if err != nil {
		return PriorityResult{}, err
	}
	normal, prio := results[0], results[1]
	if opts.Progress != nil {
		opts.Progress(fmt.Sprintf("applier priority: delay %0.1fms → %0.1fms", normal.AvgDelayMs, prio.AvgDelayMs))
	}
	return PriorityResult{Normal: normal, Prioritized: prio}, nil
}

// RenderApplierPriority formats A-PRIO.
func RenderApplierPriority(r PriorityResult) string {
	var b strings.Builder
	b.WriteString("A-PRIO — prioritized SQL applier at saturation (150 users, 2 slaves, 50/50)\n\n")
	fmt.Fprintf(&b, "%-22s %12s %16s %14s\n", "applier scheduling", "tp (ops/s)", "delay (ms)", "op lat (ms)")
	fmt.Fprintf(&b, "%-22s %12.2f %16.1f %14.1f\n", "FIFO (MySQL-like)",
		r.Normal.Throughput, r.Normal.AvgDelayMs, r.Normal.LatencyMsMean)
	fmt.Fprintf(&b, "%-22s %12.2f %16.1f %14.1f\n", "high priority",
		r.Prioritized.Throughput, r.Prioritized.AvgDelayMs, r.Prioritized.LatencyMsMean)
	b.WriteString("\nthe single applier starving behind reads causes the paper's delay blow-up;\n")
	b.WriteString("prioritizing the replication pipeline collapses staleness by orders of\n")
	b.WriteString("magnitude, paid for with higher client latency on the saturated replicas.\n")
	return b.String()
}

// ArchResult compares the two replication architectures of the paper's §II
// on identical hardware and workload.
type ArchResult struct {
	Arch           string
	Throughput     float64
	WriteLatencyMs float64
	ReadLatencyMs  float64
}

// AblationArchitectures runs the same closed-loop workload against (a) the
// paper's master-slave deployment (1 master + 2 slaves) and (b) a 3-node
// multi-master group with a total-order sequencer, on identical instances.
// Master-slave commits writes locally (async) but funnels them through one
// node; multi-master spreads write acceptance but pays the ordering round
// trip and applies every write everywhere.
func AblationArchitectures(opts SweepOpts) ([]ArchResult, error) {
	ramp, steady, down := opts.phases()
	_ = ramp
	users := 120
	ratio := 0.5
	think := 7 * time.Second
	measure := steady
	warm := down // reuse the short phase as warmup

	place := MasterPlacement
	preload := func(srv *server.DBServer) error {
		sess := srv.Session("")
		for _, sql := range []string{
			"CREATE DATABASE bench",
			"USE bench",
			"CREATE TABLE kv (k BIGINT PRIMARY KEY, v VARCHAR(32))",
		} {
			if _, err := srv.ExecFree(sess, sql); err != nil {
				return err
			}
		}
		for i := 0; i < 500; i++ {
			if _, err := srv.ExecFree(sess, "INSERT INTO kv (k, v) VALUES (?, 'seed')",
				sqlengine.NewInt(int64(i))); err != nil {
				return err
			}
		}
		return nil
	}

	var out []ArchResult

	// (a) master-slave through the standard stack.
	{
		env := sim.NewEnv(opts.Seed)
		c := cloud.New(env, cloud.Config{})
		clu, err := cluster.New(env, c, cluster.Config{
			Cost:    server.DefaultCostModel(),
			Master:  cluster.NodeSpec{Place: place},
			Slaves:  []cluster.NodeSpec{{Place: place}, {Place: place}},
			Preload: preload,
		})
		if err != nil {
			return nil, err
		}
		db := core.Open(clu, core.WithDatabase("bench"), core.WithClientPlace(place))
		res := runArchLoad(env, users, ratio, think, warm, measure,
			func(p *sim.Proc, i int) (time.Duration, error) {
				t0 := p.Now()
				_, err := db.Exec(p, "SELECT v FROM kv WHERE k = ?", sqlengine.NewInt(int64(p.Rand().Intn(500))))
				return p.Now() - t0, err
			},
			func(p *sim.Proc, i, n int) (time.Duration, error) {
				t0 := p.Now()
				_, err := db.Exec(p, "INSERT INTO kv (k, v) VALUES (?, 'w')", sqlengine.NewInt(int64(1_000_000+i*1_000_000+n)))
				return p.Now() - t0, err
			})
		res.Arch = "master-slave (1M+2S)"
		out = append(out, res)
		env.Stop()
		env.Shutdown()
	}

	// (b) multi-master over the same three instances.
	{
		env := sim.NewEnv(opts.Seed)
		c := cloud.New(env, cloud.Config{})
		var servers []*server.DBServer
		for i := 0; i < 3; i++ {
			srv := server.New(env, fmt.Sprintf("node%d", i),
				c.Launch(fmt.Sprintf("node%d", i), cloud.Small, place), server.DefaultCostModel())
			if err := preload(srv); err != nil {
				return nil, err
			}
			servers = append(servers, srv)
		}
		mm := repl.NewMultiMaster(env, c.Network(), servers, place)
		res := runArchLoad(env, users, ratio, think, warm, measure,
			func(p *sim.Proc, i int) (time.Duration, error) {
				t0 := p.Now()
				_, err := mm.Node(i%3).ExecRead(p, "bench", "SELECT v FROM kv WHERE k = ?",
					sqlengine.NewInt(int64(p.Rand().Intn(500))))
				return p.Now() - t0, err
			},
			func(p *sim.Proc, i, n int) (time.Duration, error) {
				t0 := p.Now()
				err := mm.Node(i%3).ExecWrite(p, "bench", "INSERT INTO kv (k, v) VALUES (?, 'w')",
					sqlengine.NewInt(int64(1_000_000+i*1_000_000+n)))
				return p.Now() - t0, err
			})
		res.Arch = "multi-master (3 nodes)"
		out = append(out, res)
		env.Stop()
		env.Shutdown()
	}

	if opts.Progress != nil {
		for _, r := range out {
			opts.Progress(fmt.Sprintf("arch %-24s tp=%6.2f wlat=%7.1fms", r.Arch, r.Throughput, r.WriteLatencyMs))
		}
	}
	return out, nil
}

// runArchLoad drives a closed-loop 50/50-style workload and measures
// steady-state throughput and latencies.
func runArchLoad(env *sim.Env, users int, ratio float64, think, warm, measure time.Duration,
	read func(*sim.Proc, int) (time.Duration, error),
	write func(*sim.Proc, int, int) (time.Duration, error)) ArchResult {
	var ops int
	var rLatSum, wLatSum time.Duration
	var rN, wN int
	from, to := warm, warm+measure
	for i := 0; i < users; i++ {
		i := i
		env.Go(fmt.Sprintf("u%d", i), func(p *sim.Proc) {
			for n := 0; p.Now() < to; n++ {
				var lat time.Duration
				var err error
				isRead := p.Rand().Float64() < ratio
				if isRead {
					lat, err = read(p, i)
				} else {
					lat, err = write(p, i, n)
				}
				if err == nil && p.Now() >= from && p.Now() < to {
					ops++
					if isRead {
						rLatSum += lat
						rN++
					} else {
						wLatSum += lat
						wN++
					}
				}
				p.Sleep(sim.Exp(p.Rand(), think))
			}
		})
	}
	env.RunUntil(to)
	res := ArchResult{Throughput: float64(ops) / measure.Seconds()}
	if rN > 0 {
		res.ReadLatencyMs = float64(rLatSum.Milliseconds()) / float64(rN)
	}
	if wN > 0 {
		res.WriteLatencyMs = float64(wLatSum.Milliseconds()) / float64(wN)
	}
	return res
}

// RenderArchitectures formats A-ARCH.
func RenderArchitectures(rows []ArchResult) string {
	var b strings.Builder
	b.WriteString("A-ARCH — master-slave vs multi-master on identical hardware (120 users, 50/50)\n\n")
	fmt.Fprintf(&b, "%-26s %12s %16s %16s\n", "architecture", "tp (ops/s)", "write lat (ms)", "read lat (ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %12.2f %16.1f %16.1f\n", r.Arch, r.Throughput, r.WriteLatencyMs, r.ReadLatencyMs)
	}
	b.WriteString("\nmaster-slave commits writes at one node (async to slaves); multi-master\n")
	b.WriteString("accepts writes anywhere but pays total-ordering latency and applies every\n")
	b.WriteString("write on every node — the §II trade-off made concrete.\n")
	return b.String()
}
