package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// RunShards is the experiment harness's single fan-out point: it executes
// specs across a fixed pool of worker goroutines and returns results
// indexed exactly like specs.
//
// Determinism argument (DESIGN.md §10): each spec is simulated in its own
// fully-isolated sim.Env seeded only from the spec, so a run's bytes are a
// pure function of its RunSpec no matter which worker executes it or when;
// and the merge is by spec index, never completion order, so the combined
// result is identical at any parallelism — including 1, which is how the
// determinism sanitizer cross-checks it.
//
// progress, when non-nil, is called as runs complete — concurrently and in
// completion order. It is wall-clock feedback for humans; nothing
// deterministic may be derived from it.
func RunShards(specs []RunSpec, parallelism int, progress func(i int, res RunResult)) ([]RunResult, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(specs) {
		parallelism = len(specs)
	}
	results := make([]RunResult, len(specs))
	errs := make([]error, len(specs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				res, err := Run(specs[i])
				results[i], errs[i] = res, err
				if err == nil && progress != nil {
					progress(i, res)
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d of %d (%+v): %w", i, len(specs), specs[i], err)
		}
	}
	return results, nil
}
