package experiment

import (
	"fmt"
	"strings"
)

// RenderThroughput renders a sweep as the paper's Fig. 2/Fig. 3 panels:
// one table per location, rows = workload (concurrent users), columns =
// number of slaves, cells = end-to-end throughput in operations/second.
func (sw *Sweep) RenderThroughput(title string) string {
	return sw.render(title, "throughput (ops/s)", func(loc Location, slaves, users int) float64 {
		return sw.Throughput(loc, slaves, users)
	}, "%8.2f")
}

// RenderDelay renders a sweep as the paper's Fig. 5/Fig. 6 panels: average
// relative replication delay in milliseconds.
func (sw *Sweep) RenderDelay(title string) string {
	return sw.render(title, "avg relative replication delay (ms)", func(loc Location, slaves, users int) float64 {
		return sw.RelativeDelay(loc, slaves, users)
	}, "%10.1f")
}

func (sw *Sweep) render(title, metric string, cell func(Location, int, int) float64, cellFmt string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", title, metric)
	fmt.Fprintf(&b, "read/write ratio %.0f/%.0f, initial data size %d, master us-west-1a\n\n",
		sw.ReadRatio*100, (1-sw.ReadRatio)*100, sw.Scale)
	for _, loc := range sw.Locs {
		fmt.Fprintf(&b, "(%s)\n", loc)
		fmt.Fprintf(&b, "%-7s", "users")
		for _, ns := range sw.SlaveNums {
			fmt.Fprintf(&b, " %8s", fmt.Sprintf("%d slv", ns))
		}
		b.WriteString("\n")
		for _, us := range sw.UserNums {
			fmt.Fprintf(&b, "%-7d", us)
			for _, ns := range sw.SlaveNums {
				fmt.Fprintf(&b, " "+cellFmt, cell(loc, ns, us))
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderSaturation prints the saturation analysis of §IV-A: for every
// (location, slaves) pair, the observed maximum throughput and the
// workload right after it.
func (sw *Sweep) RenderSaturation(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — saturation points (workload right after the observed max throughput)\n\n", title)
	for _, loc := range sw.Locs {
		fmt.Fprintf(&b, "(%s)\n", loc)
		fmt.Fprintf(&b, "%-8s %14s %18s %12s %12s\n", "slaves", "max tp (ops/s)", "saturation users", "master util", "slave util")
		for _, ns := range sw.SlaveNums {
			users, maxTp, ok := sw.SaturationPoint(loc, ns)
			satCell := "not reached"
			if ok {
				satCell = fmt.Sprintf("%d", users)
			}
			// Utilizations at the point of max throughput.
			bestUsers := sw.UserNums[0]
			for _, us := range sw.UserNums {
				if sw.Throughput(loc, ns, us) >= sw.Throughput(loc, ns, bestUsers) {
					bestUsers = us
				}
			}
			r := sw.Results[Key{loc, ns, bestUsers}]
			var slaveU float64
			for _, u := range r.SlaveUtil {
				slaveU += u
			}
			if len(r.SlaveUtil) > 0 {
				slaveU /= float64(len(r.SlaveUtil))
			}
			fmt.Fprintf(&b, "%-8d %14.2f %18s %11.0f%% %11.0f%%\n", ns, maxTp, satCell, r.MasterUtil*100, slaveU*100)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSVThroughput emits the sweep as CSV (figure, location, slaves, users,
// throughput, relative delay) for external plotting.
func (sw *Sweep) CSV() string {
	var b strings.Builder
	b.WriteString("location,slaves,users,throughput_ops,read_tp,write_tp,rel_delay_ms,raw_delay_ms,master_util,errors\n")
	for _, loc := range sw.Locs {
		for _, ns := range sw.SlaveNums {
			for _, us := range sw.UserNums {
				r := sw.Results[Key{loc, ns, us}]
				fmt.Fprintf(&b, "%q,%d,%d,%.3f,%.3f,%.3f,%.2f,%.2f,%.3f,%d\n",
					loc.String(), ns, us, r.Throughput, r.ReadThroughput, r.WriteThroughput,
					sw.RelativeDelay(loc, ns, us), r.AvgDelayMs, r.MasterUtil, r.Errors)
			}
		}
	}
	return b.String()
}

// RenderFig4 prints the clock experiment the way the paper reports it.
func RenderFig4(once, everySecond ClockResult) string {
	var b strings.Builder
	b.WriteString("Fig. 4 — measured time differences between two instances (20 min, 1 sample/s)\n\n")
	for _, r := range []ClockResult{once, everySecond} {
		fmt.Fprintf(&b, "%-28s median=%6.2f ms  σ=%6.2f ms  min=%6.2f  max=%6.2f\n",
			r.Label+":", r.Stats.Median, r.Stats.StdDev, r.Stats.Min, r.Stats.Max)
	}
	b.WriteString("\npaper reports: sync once — median 28.23 ms, σ 12.31 (7 ms rising to 50 ms);\n")
	b.WriteString("               sync every second — median 3.30 ms, σ 1.19 (stable 1–8 ms band)\n")
	// A coarse timeline, one point per minute, to show the ramp vs the band.
	b.WriteString("\ntimeline (ms at minute marks):\n")
	for _, r := range []ClockResult{once, everySecond} {
		fmt.Fprintf(&b, "%-28s", r.Label+":")
		for m := 0; m < 20; m++ {
			fmt.Fprintf(&b, " %5.1f", r.SamplesM[m*60])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderRTT prints the in-text half-RTT measurements (§IV-B.2).
func RenderRTT(rows []RTTResult) string {
	var b strings.Builder
	b.WriteString("T-RTT — 1/2 round-trip time from master (us-west-1a), ping 1/s for 20 min\n\n")
	fmt.Fprintf(&b, "%-32s %10s %10s %10s %10s\n", "slave location", "mean (ms)", "median", "min", "max")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-32s %10.1f %10.1f %10.1f %10.1f\n", r.Loc, r.HalfRTTMs, r.MedianMs, r.MinMs, r.MaxMs)
	}
	b.WriteString("\npaper reports: 16 ms same zone, 21 ms different zone, 173 ms different region\n")
	return b.String()
}
