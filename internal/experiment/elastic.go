package experiment

import (
	"fmt"
	"strings"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cloudstone"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/core"
	"cloudrepl/internal/elastic"
	"cloudrepl/internal/heartbeat"
	"cloudrepl/internal/metrics"
	"cloudrepl/internal/pool"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
)

// ElasticFleetResult is one arm of the A-ELASTIC ablation: a load ramp run
// against one fleet strategy.
type ElasticFleetResult struct {
	Name   string
	Policy string // "fixed", "reactive-util", "staleness-slo"

	// Throughput is completed operations per second over the whole ramp.
	Throughput float64
	Errors     int
	// SLOViolation is how long clients were exposed to admitted replicas
	// staler than the objective.
	SLOViolation time.Duration
	// SlaveVMMinutes is the summed billing clock of every slave instance —
	// the cost side the controller trades against the SLO.
	SlaveVMMinutes float64
	// FinalSlaves / PeakSlaves are the admitted fleet size at the end of
	// the ramp and its maximum over the run.
	FinalSlaves int
	PeakSlaves  int

	// MasterBound reports the controller's saturation verdict.
	MasterBound       bool
	MasterBoundAt     time.Duration
	MasterBoundSlaves int
	Verdict           string

	// Decisions is the controller's decision log (empty for fixed fleets).
	Decisions []elastic.Decision
	// SlavesSeries samples the admitted fleet size every 15 virtual
	// seconds; ThroughputSeries samples cumulative completed operations.
	SlavesSeries     *metrics.TimeSeries
	ThroughputSeries *metrics.TimeSeries
	// Metrics is the arm's obs.Registry snapshot (client latency, proxy
	// and pool counters, the controller's scaling activity).
	Metrics map[string]float64
}

// ElasticResult is the A-ELASTIC ablation output: the same 50/50 load ramp
// run against two fixed fleets and two controller policies.
type ElasticResult struct {
	// SLOTargetMs is the staleness objective all arms are scored against.
	SLOTargetMs float64
	// Stages is the user ramp every arm runs.
	Stages []cloudstone.Stage
	Fleets []ElasticFleetResult
}

// elasticArm parameterizes one run of the ablation.
type elasticArm struct {
	name          string
	initialSlaves int
	policy        elastic.Policy // nil = fixed fleet (observe-only)
}

// AblationElastic runs the elasticity ablation: a stepped 50→250-user ramp
// at 50/50 read/write against (a) a fixed 1-slave fleet, (b) a fixed
// 4-slave fleet, (c) the reactive CPU-utilization controller and (d) the
// staleness-SLO controller. Every arm is scored on throughput, time in SLO
// violation and slave VM-minutes; the controllers additionally report their
// decision logs and the master-bound point they detect.
func AblationElastic(opts SweepOpts) (ElasticResult, error) {
	stageDur := 6 * time.Minute
	if opts.Short {
		stageDur = 3 * time.Minute
	}
	var stages []cloudstone.Stage
	for _, users := range []int{50, 100, 150, 200, 250} {
		stages = append(stages, cloudstone.Stage{Users: users, Dur: stageDur})
	}
	const sloMs = 500

	arms := []elasticArm{
		{name: "fixed-1", initialSlaves: 1},
		{name: "fixed-4", initialSlaves: 4},
		{name: "reactive-util", initialSlaves: 1, policy: elastic.ReactiveUtilization{}},
		{name: "staleness-slo", initialSlaves: 1, policy: elastic.StalenessSLO{TargetP95Ms: sloMs}},
	}

	out := ElasticResult{SLOTargetMs: sloMs, Stages: stages}
	for i, arm := range arms {
		fr, err := runElasticArm(opts.Seed+int64(i), arm, stages, sloMs)
		if err != nil {
			return out, err
		}
		out.Fleets = append(out.Fleets, fr)
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf(
				"elastic %-14s tp=%6.2f ops/s  slo-viol=%8s  vm=%6.1f min  slaves end=%d peak=%d  %s",
				fr.Name, fr.Throughput, fr.SLOViolation.Truncate(time.Second),
				fr.SlaveVMMinutes, fr.FinalSlaves, fr.PeakSlaves, fr.Verdict))
		}
	}
	return out, nil
}

// runElasticArm executes one arm on its own virtual timeline.
func runElasticArm(seed int64, arm elasticArm, stages []cloudstone.Stage, sloMs float64) (ElasticFleetResult, error) {
	env := sim.NewEnv(seed)
	cloudCfg := cloud.DefaultConfig()
	cloudCfg.CPUCoV = 0 // homogeneous fleet: curves reflect control, not luck
	c := cloud.New(env, cloudCfg)

	preload := func(srv *server.DBServer) error {
		if err := cloudstone.Preload(300)(srv); err != nil {
			return err
		}
		return heartbeat.Preload(srv)
	}
	slaveSpecs := make([]cluster.NodeSpec, arm.initialSlaves)
	for i := range slaveSpecs {
		slaveSpecs[i] = cluster.NodeSpec{Place: SameZone.SlavePlacement()}
	}
	clu, err := cluster.New(env, c, cluster.Config{
		Cost:    server.DefaultCostModel(),
		Master:  cluster.NodeSpec{Place: MasterPlacement},
		Slaves:  slaveSpecs,
		Preload: preload,
	})
	if err != nil {
		return ElasticFleetResult{}, fmt.Errorf("elastic arm %s: %w", arm.name, err)
	}

	maxUsers := 0
	for _, s := range stages {
		if s.Users > maxUsers {
			maxUsers = s.Users
		}
	}
	db := core.Open(clu,
		core.WithDatabase(cloudstone.DatabaseName),
		core.WithClientPlace(MasterPlacement),
		core.WithPool(pool.Config{MaxActive: maxUsers + 8, MaxIdle: maxUsers + 8}))
	hb := heartbeat.Start(env, clu.Master(), time.Second)

	driver := cloudstone.NewDriver(db, cloudstone.Config{
		Scale:     300,
		ReadRatio: 0.5,
		Stages:    stages,
	})

	ctrl := elastic.Start(env, elastic.Config{
		Policy:      arm.policy,
		Spec:        cluster.NodeSpec{Place: SameZone.SlavePlacement()},
		SLOTargetMs: sloMs,
	}, elastic.Sources{
		Cluster:   clu,
		Proxy:     db.Proxy(),
		Ops:       func() float64 { return float64(driver.CompletedOps()) },
		PoolWaits: func() float64 { return float64(db.Pool().Stats().Waits) },
	})

	admitted := func() int {
		n := 0
		for _, sl := range clu.Slaves() {
			if sl.Srv.Up() && !db.Proxy().Quarantined(sl) {
				n++
			}
		}
		return n
	}
	slavesSeries := metrics.NewTimeSeries("admitted-slaves")
	opsSeries := metrics.NewTimeSeries("ops")
	env.Go("fleet-sampler", func(p *sim.Proc) {
		for {
			slavesSeries.Append(p.Now(), float64(admitted()))
			opsSeries.Append(p.Now(), float64(driver.CompletedOps()))
			p.Sleep(15 * time.Second)
		}
	})

	driver.Start(env)
	var total time.Duration
	for _, s := range stages {
		total += s.Dur
	}
	env.RunUntil(env.Now() + total)

	fr := ElasticFleetResult{
		Name:             arm.name,
		Policy:           "fixed",
		SLOViolation:     ctrl.SLOViolation(sloMs),
		FinalSlaves:      admitted(),
		Decisions:        ctrl.Decisions(),
		SlavesSeries:     slavesSeries,
		ThroughputSeries: opsSeries,
		Verdict:          ctrl.Verdict(),
	}
	if arm.policy != nil {
		fr.Policy = arm.policy.Name()
	} else {
		fr.Verdict = "fixed fleet"
	}
	fr.MasterBound, _, fr.MasterBoundSlaves = ctrl.MasterBound()
	if _, at, _ := ctrl.MasterBound(); fr.MasterBound {
		fr.MasterBoundAt = time.Duration(at)
	}
	for _, pt := range slavesSeries.Points() {
		if int(pt.V) > fr.PeakSlaves {
			fr.PeakSlaves = int(pt.V)
		}
	}
	for _, inst := range c.Instances() {
		if inst.Name != "master" {
			fr.SlaveVMMinutes += inst.UpTime().Minutes()
		}
	}
	dres := driver.Result()
	fr.Throughput = dres.Throughput
	fr.Errors = dres.Errors
	ctrl.PublishMetrics(db.Registry())
	fr.Metrics = db.Metrics()

	ctrl.Stop()
	hb.Stop()
	env.Stop()
	env.Shutdown()
	return fr, nil
}

// RenderElastic formats A-ELASTIC.
func RenderElastic(r ElasticResult) string {
	var b strings.Builder
	b.WriteString("A-ELASTIC — SLO-driven autoscaling on a stepped load ramp (50/50 read/write, same zone)\n")
	b.WriteString("ramp: ")
	for i, s := range r.Stages {
		if i > 0 {
			b.WriteString(" → ")
		}
		fmt.Fprintf(&b, "%d users/%v", s.Users, s.Dur)
	}
	fmt.Fprintf(&b, "\nstaleness SLO: p95 ≤ %.0f ms on every admitted replica\n\n", r.SLOTargetMs)

	fmt.Fprintf(&b, "%-15s %-14s %11s %12s %10s %11s %s\n",
		"fleet", "policy", "tp (ops/s)", "slo viol", "vm-min", "slaves", "verdict")
	for _, f := range r.Fleets {
		fmt.Fprintf(&b, "%-15s %-14s %11.2f %12s %10.1f %5d (pk %d) %s\n",
			f.Name, f.Policy, f.Throughput, f.SLOViolation.Truncate(time.Second),
			f.SlaveVMMinutes, f.FinalSlaves, f.PeakSlaves, f.Verdict)
	}

	for _, f := range r.Fleets {
		if len(f.Decisions) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%s decision log:\n", f.Name)
		for _, d := range f.Decisions {
			fmt.Fprintf(&b, "  %s\n", d)
		}
	}

	b.WriteString("\nthe fixed single slave drowns once the ramp passes its saturation point;\n")
	b.WriteString("four fixed slaves hold the SLO but bill for capacity the early ramp never\n")
	b.WriteString("uses. the controllers grow the fleet as load arrives, warm each new replica\n")
	b.WriteString("behind the proxy before it serves a read, and stop at the paper's §V wall:\n")
	b.WriteString("once the write master's CPU is saturated, another read replica buys no\n")
	b.WriteString("throughput — the controller detects it, rolls the useless replica back and\n")
	b.WriteString("reports the tier master-bound instead of scaling to the fleet cap.\n")
	return b.String()
}
