package experiment

import (
	"fmt"
	"strings"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cloudstone"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
)

// PlanArmResult is one planner mode measured on the shared A-PLAN grid: the
// Cloudstone mix (including the join-heavy event-feed page) at a fixed user
// population, with every node's SQL engine forced to that planner.
type PlanArmResult struct {
	Planner   string // "cost-based" or "naive"
	Users     int
	Slaves    int
	ReadRatio float64

	Throughput      float64
	ReadThroughput  float64
	WriteThroughput float64
	Errors          int
	LatencyMsMean   float64
	AvgDelayMs      float64
	SlaveUtil       []float64

	// FeedPlan is the EXPLAIN rendering of the event-feed statement under
	// this arm's planner — the decision log that shows *why* the arms differ
	// (access order, join algorithms, index choices).
	FeedPlan string
	// FeedCost is the planner's estimated rows examined for one event-feed
	// page view, the engine's cost unit and the server's virtual-CPU charge.
	FeedCost float64
}

// PlanResult is the A-PLAN ablation output.
type PlanResult struct {
	Users     int
	Slaves    int
	Scale     int
	ReadRatio float64
	Arms      []PlanArmResult // cost-based first, then naive
}

// planGrid is the shared parameter point both arms run on: the 80/20
// read-heavy mix at the larger data size, loaded enough that the slaves
// saturate — so per-read CPU (rows examined) converts directly into
// end-to-end ops/s, which is where a better plan must show up.
type planGrid struct {
	users, slaves, scale int
	readRatio            float64
}

func defaultPlanGrid() planGrid {
	return planGrid{users: 150, slaves: 2, scale: 600, readRatio: 0.8}
}

// AblationPlan measures what the cost-based planner buys end to end: the
// same Cloudstone grid once with the default planner and once with every
// engine forced to the naive (syntax-order, no-pushdown) planner. The mix's
// event-feed page is written in deliberately bad syntax order, so the naive
// arm walks every attendance row per page view while the cost arm drives
// the selective index and index-nested-loops the children — the throughput
// gap is that difference times the feed's share of the mix.
func AblationPlan(opts SweepOpts) (PlanResult, error) {
	g := defaultPlanGrid()
	out := PlanResult{Users: g.users, Slaves: g.slaves, Scale: g.scale, ReadRatio: g.readRatio}
	for _, naive := range []bool{false, true} {
		arm, err := runPlanArm(opts, g, naive)
		if err != nil {
			return out, err
		}
		out.Arms = append(out.Arms, arm)
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf(
				"plan %-10s %4d users  tp=%7.2f ops/s  lat=%7.1f ms  feed-cost=%8.0f rows  err=%d",
				arm.Planner, arm.Users, arm.Throughput, arm.LatencyMsMean, arm.FeedCost, arm.Errors))
		}
	}
	return out, nil
}

// runPlanArm executes one planner mode on its own virtual timeline. Both
// arms share one seed so the workload arrival pattern is identical and the
// comparison is paired.
func runPlanArm(opts SweepOpts, g planGrid, naive bool) (PlanArmResult, error) {
	ramp, steady, down := opts.phases()
	res, err := Run(RunSpec{
		Seed: opts.Seed, Users: g.users, Slaves: g.slaves, Scale: g.scale,
		ReadRatio: g.readRatio, Loc: SameZone, Mode: repl.Async,
		NaivePlan: naive,
		RampUp:    ramp, Steady: steady, RampDown: down,
	})
	name := "cost-based"
	if naive {
		name = "naive"
	}
	if err != nil {
		return PlanArmResult{}, fmt.Errorf("plan arm %s: %w", name, err)
	}
	arm := PlanArmResult{
		Planner: name, Users: g.users, Slaves: g.slaves, ReadRatio: g.readRatio,
		Throughput: res.Throughput, ReadThroughput: res.ReadThroughput,
		WriteThroughput: res.WriteThroughput, Errors: res.Errors,
		LatencyMsMean: res.LatencyMsMean, AvgDelayMs: res.AvgDelayMs,
		SlaveUtil: res.SlaveUtil,
	}
	arm.FeedPlan, arm.FeedCost, err = planDecisionLog(opts.Seed, g.scale, naive)
	if err != nil {
		return arm, fmt.Errorf("plan arm %s: decision log: %w", name, err)
	}
	return arm, nil
}

// planDecisionLog preloads a standalone master at the grid's data size and
// explains the event-feed statement under the given planner mode, returning
// the stable EXPLAIN rendering and the plan's estimated rows examined.
func planDecisionLog(seed int64, scale int, naive bool) (string, float64, error) {
	env := sim.NewEnv(seed)
	defer env.Shutdown()
	c := cloud.New(env, cloud.Config{})
	place := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	clu, err := cluster.New(env, c, cluster.Config{
		Mode: repl.Async, Cost: server.DefaultCostModel(),
		Master:    cluster.NodeSpec{Place: place},
		Preload:   func(srv *server.DBServer) error { return cloudstone.Preload(scale)(srv) },
		NaivePlan: naive,
	})
	if err != nil {
		return "", 0, err
	}
	eng := clu.Master().Srv.Eng
	sess := eng.NewSession(cloudstone.DatabaseName)
	stmt, err := eng.Prepare(cloudstone.EventFeedSQL)
	if err != nil {
		return "", 0, err
	}
	p, err := stmt.Plan(sess)
	if err != nil {
		return "", 0, err
	}
	return p.Explain(), p.Cost(), nil
}

// PlanDeterminism runs the cost-based arm (the stateful planner: statistics
// refresh, plan cache, epoch invalidation) twice from one seed and fails on
// any byte difference in the marshalled result — the EXPLAIN decision log
// included, since a drifting plan choice must surface as a byte diff.
func PlanDeterminism(opts SweepOpts) error {
	g := defaultPlanGrid()
	if opts.Short {
		g.users = 75
	}
	return CheckDeterminism("A-PLAN", func() (any, error) {
		arm, err := runPlanArm(opts, g, false)
		if err != nil {
			return nil, err
		}
		return arm, nil
	})
}

// RenderPlan formats the A-PLAN ablation for the terminal.
func RenderPlan(r PlanResult) string {
	var b strings.Builder
	b.WriteString("A-PLAN — cost-based planner vs naive (syntax-order) planning\n")
	fmt.Fprintf(&b, "%d users, %d slaves, data size %d, %.0f/%.0f read/write mix, same-zone async replication\n\n",
		r.Users, r.Slaves, r.Scale, 100*r.ReadRatio, 100*(1-r.ReadRatio))
	fmt.Fprintf(&b, "%-11s %11s %9s %10s %16s %6s\n",
		"planner", "tp (ops/s)", "lat (ms)", "delay (ms)", "feed cost (rows)", "errs")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "%-11s %11.2f %9.2f %10.1f %16.0f %6d\n",
			a.Planner, a.Throughput, a.LatencyMsMean, a.AvgDelayMs, a.FeedCost, a.Errors)
	}
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "\nevent-feed plan under the %s planner:\n", a.Planner)
		for _, line := range strings.Split(a.FeedPlan, "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	b.WriteString("\nthe event-feed page names attendance first and keys its only selective\n")
	b.WriteString("predicate on events; the cost-based planner reorders to drive the\n")
	b.WriteString("creator index and index-nested-loops the children, while the naive\n")
	b.WriteString("planner scans every attendance row per page view. with the slaves\n")
	b.WriteString("saturated, those examined rows are the read capacity — the throughput\n")
	b.WriteString("gap is the planner's contribution to end-to-end ops/s.\n")
	return b.String()
}

// PlanJSON shapes the ablation for BENCH_plan.json.
func PlanJSON(r PlanResult) any {
	type arm struct {
		Planner         string  `json:"planner"`
		Throughput      float64 `json:"throughput_ops_s"`
		ReadThroughput  float64 `json:"read_throughput_ops_s"`
		WriteThroughput float64 `json:"write_throughput_ops_s"`
		Errors          int     `json:"errors"`
		LatencyMsMean   float64 `json:"latency_ms_mean"`
		AvgDelayMs      float64 `json:"delay_ms"`
		FeedCost        float64 `json:"feed_cost_rows"`
		FeedPlan        string  `json:"feed_plan"`
	}
	arms := []arm{}
	for _, a := range r.Arms {
		arms = append(arms, arm{
			Planner: a.Planner, Throughput: a.Throughput,
			ReadThroughput: a.ReadThroughput, WriteThroughput: a.WriteThroughput,
			Errors: a.Errors, LatencyMsMean: a.LatencyMsMean, AvgDelayMs: a.AvgDelayMs,
			FeedCost: a.FeedCost, FeedPlan: a.FeedPlan,
		})
	}
	return map[string]any{
		"users":      r.Users,
		"slaves":     r.Slaves,
		"scale":      r.Scale,
		"read_ratio": r.ReadRatio,
		"arms":       arms,
	}
}
