package experiment

import (
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/metrics"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/vclock"
)

// ClockResult is the Fig. 4 experiment output: the measured time
// difference between two instances over 20 minutes, sampled once per
// second, for a given NTP regime, plus the summary statistics the paper
// reports in §IV-B.1.
type ClockResult struct {
	Label    string
	SamplesM []float64 // milliseconds, one per second
	Stats    metrics.Summary
}

// Fig4 runs the clock-synchronization experiment: two instances whose
// clocks drift apart, once with NTP applied only at startup and once with
// NTP applied every second against four time servers.
func Fig4(seed int64) (once, everySecond ClockResult) {
	run := func(interval time.Duration, label string) ClockResult {
		env := sim.NewEnv(seed)
		// Drift rates chosen so the pair diverges at ≈36 µs/s, the slope
		// observed in the paper's trace (7 ms → 50 ms over 20 minutes).
		a := vclock.New(env, vclock.Config{DriftPPM: 17.9})
		b := vclock.New(env, vclock.Config{DriftPPM: -17.9})
		cfgA := vclock.NTPConfig{Interval: interval, JitterSigma: 1700 * time.Microsecond, Servers: 4}
		cfgB := cfgA
		if interval > 0 {
			// Per-path NTP bias: the residual asymmetric-delay offset.
			cfgA.Bias = 1650 * time.Microsecond
			cfgB.Bias = -1650 * time.Microsecond
			vclock.StartDaemon(env, "ntpA", a, cfgA)
			vclock.StartDaemon(env, "ntpB", b, cfgB)
		} else {
			cfgA.Bias = 5 * time.Millisecond
			cfgB.Bias = -2 * time.Millisecond
			vclock.SyncOnce(env, a, cfgA)
			vclock.SyncOnce(env, b, cfgB)
		}
		var samples []float64
		for i := 0; i < 1200; i++ {
			env.RunUntil(time.Duration(i+1) * time.Second)
			samples = append(samples, float64(vclock.Diff(a, b).Microseconds())/1000)
		}
		env.Stop()
		env.Shutdown()
		return ClockResult{Label: label, SamplesM: samples, Stats: metrics.Summarize(samples)}
	}
	once = run(0, "sync once at beginning")
	everySecond = run(time.Second, "sync every second")
	return once, everySecond
}

// RTTResult is one row of the in-text half-RTT table (§IV-B.2).
type RTTResult struct {
	Loc        Location
	HalfRTTMs  float64
	MedianMs   float64
	MinMs      float64
	MaxMs      float64
	NumSamples int
}

// TableRTT measures 1/2 round-trip time between the master placement and
// each slave-location configuration by pinging once per second for 20
// minutes, as the paper did.
func TableRTT(seed int64) []RTTResult {
	env := sim.NewEnv(seed)
	c := cloud.New(env, cloud.DefaultConfig())
	var out []RTTResult
	for _, loc := range []Location{SameZone, DiffZone, DiffRegion} {
		loc := loc
		env.Go("ping-"+loc.String(), func(p *sim.Proc) {
			st := cloud.Ping(p, c.Network(), MasterPlacement, loc.SlavePlacement(), 1200, time.Second)
			out = append(out, RTTResult{
				Loc:        loc,
				HalfRTTMs:  float64(st.Mean) / float64(2*time.Millisecond),
				MedianMs:   float64(st.Median) / float64(2*time.Millisecond),
				MinMs:      float64(st.Min) / float64(2*time.Millisecond),
				MaxMs:      float64(st.Max) / float64(2*time.Millisecond),
				NumSamples: len(st.Samples),
			})
		})
	}
	env.Run()
	return out
}
