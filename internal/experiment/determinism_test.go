package experiment

import (
	"strings"
	"testing"
)

// TestCheckDeterminismPassesOnPureRun: a run function with no hidden state
// byte-compares equal.
func TestCheckDeterminismPassesOnPureRun(t *testing.T) {
	err := CheckDeterminism("pure", func() (any, error) {
		return map[string]any{"x": 1, "y": []int{2, 3}}, nil
	})
	if err != nil {
		t.Fatalf("pure run flagged nondeterministic: %v", err)
	}
}

// TestCheckDeterminismCatchesCounter: state carried across runs (the bug
// class: a package-level counter, cache, or rand stream) must fail with a
// pointer at the drifting line.
func TestCheckDeterminismCatchesCounter(t *testing.T) {
	n := 0
	err := CheckDeterminism("counter", func() (any, error) {
		n++
		return map[string]int{"stable": 7, "drift": n}, nil
	})
	if err == nil {
		t.Fatal("carried-over counter not detected")
	}
	if !strings.Contains(err.Error(), "first divergence") || !strings.Contains(err.Error(), "drift") {
		t.Fatalf("error does not point at the drifting field: %v", err)
	}
}

// TestInjectNondeterminismFailsTheCheck: the -determinism-inject escape
// valve salts the encoding from the global rand stream, so the check must
// fail even on a pure run — this is the sanitizer's own self-test.
func TestInjectNondeterminismFailsTheCheck(t *testing.T) {
	InjectNondeterminism = true
	defer func() { InjectNondeterminism = false }()
	err := CheckDeterminism("inject", func() (any, error) {
		return map[string]int{"x": 1}, nil
	})
	if err == nil {
		t.Fatal("injected global-rand entropy not detected")
	}
}

// TestPipelineDeterminism is the regression guard for the repo's core
// contract: the A-PIPELINE ablation (short protocol, corner grid) run twice
// with one seed emits byte-identical JSON. Any global rand, wall-clock read
// or unordered map range on the hot path breaks this test before it breaks
// a figure.
func TestPipelineDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the corner-grid ablation twice; skipped in -short")
	}
	if err := PipelineDeterminism(SweepOpts{Short: true, Seed: 42}, true); err != nil {
		t.Fatal(err)
	}
}
