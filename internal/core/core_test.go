package core

import (
	"testing"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/pool"
	"cloudrepl/internal/proxy"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

func preload(srv *server.DBServer) error {
	sess := srv.Session("")
	for _, sql := range []string{
		"CREATE DATABASE app",
		"CREATE TABLE app.t (id BIGINT PRIMARY KEY, v VARCHAR(20))",
	} {
		if _, err := srv.ExecFree(sess, sql); err != nil {
			return err
		}
	}
	return nil
}

func newDB(t *testing.T, seed int64, nSlaves int, opts ...Option) (*sim.Env, *DB) {
	t.Helper()
	env := sim.NewEnv(seed)
	c := cloud.New(env, cloud.Config{})
	place := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	specs := make([]cluster.NodeSpec, nSlaves)
	for i := range specs {
		specs[i] = cluster.NodeSpec{Place: place}
	}
	clu, err := cluster.New(env, c, cluster.Config{
		Mode:    repl.Async,
		Cost:    server.DefaultCostModel(),
		Master:  cluster.NodeSpec{Place: place},
		Slaves:  specs,
		Preload: preload,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := append([]Option{WithDatabase("app"), WithClientPlace(place)}, opts...)
	return env, Open(clu, all...)
}

func TestExecAndQueryEndToEnd(t *testing.T) {
	env, db := newDB(t, 1, 2)
	env.Go("app", func(p *sim.Proc) {
		if _, err := db.Exec(p, "INSERT INTO t (id, v) VALUES (1, 'hello')"); err != nil {
			t.Errorf("exec: %v", err)
			return
		}
		if !db.WaitCaughtUp(p, time.Minute) {
			t.Error("slaves never caught up")
			return
		}
		set, err := db.Query(p, "SELECT v FROM t WHERE id = 1")
		if err != nil {
			t.Errorf("query: %v", err)
			return
		}
		if len(set.Rows) != 1 || set.Rows[0][0].Str() != "hello" {
			t.Errorf("rows: %v", set.Rows)
		}
	})
	env.RunUntil(5 * time.Minute)
	env.Stop()
	env.Shutdown()
}

func TestPoolBoundsConcurrency(t *testing.T) {
	env, db := newDB(t, 2, 1, WithPool(pool.Config{MaxActive: 2, MaxIdle: 2}))
	done := 0
	for i := 0; i < 6; i++ {
		i := i
		env.Go("app", func(p *sim.Proc) {
			if _, err := db.Exec(p, "INSERT INTO t (id, v) VALUES (?, 'x')", sqlengine.NewInt(int64(i))); err != nil {
				t.Errorf("exec: %v", err)
				return
			}
			done++
		})
	}
	env.RunUntil(10 * time.Minute)
	if done != 6 {
		t.Fatalf("done = %d", done)
	}
	st := db.Pool().Stats()
	if st.Created > 2 {
		t.Fatalf("pool created %d conns, cap 2", st.Created)
	}
	if st.Waits == 0 {
		t.Fatal("expected borrowers to wait on the small pool")
	}
	env.Stop()
	env.Shutdown()
}

func TestStalenessReporting(t *testing.T) {
	env, db := newDB(t, 3, 2)
	// Freeze one slave's applier so staleness accumulates.
	db.Cluster().Slaves()[0].Stop()
	env.Go("app", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			db.Exec(p, "INSERT INTO t (id, v) VALUES (?, 'x')", sqlengine.NewInt(int64(i)))
		}
		p.Sleep(10 * time.Second)
		st := db.Staleness()
		if len(st.Slaves) != 2 {
			t.Errorf("staleness slaves: %d", len(st.Slaves))
		}
		if st.MaxEvents != 5 {
			t.Errorf("max staleness = %d, want 5", st.MaxEvents)
		}
	})
	env.RunUntil(5 * time.Minute)
	env.Stop()
	env.Shutdown()
}

func TestScaleOutAndIn(t *testing.T) {
	env, db := newDB(t, 4, 1)
	env.Go("app", func(p *sim.Proc) {
		if err := db.ScaleOut(cluster.NodeSpec{Place: cloud.Placement{Region: cloud.USWest1, Zone: "b"}}); err != nil {
			t.Errorf("scale out: %v", err)
			return
		}
		if got := len(db.Cluster().Slaves()); got != 2 {
			t.Errorf("slaves after scale-out: %d", got)
		}
		db.ScaleIn()
		if got := len(db.Cluster().Slaves()); got != 1 {
			t.Errorf("slaves after scale-in: %d", got)
		}
	})
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()
}

func TestFailoverRepointsProxy(t *testing.T) {
	env, db := newDB(t, 5, 2)
	env.Go("app", func(p *sim.Proc) {
		db.Exec(p, "INSERT INTO t (id, v) VALUES (1, 'pre')")
		db.WaitCaughtUp(p, time.Minute)
		db.Cluster().Master().Srv.Inst.Terminate()
		if err := db.Failover(); err != nil {
			t.Errorf("failover: %v", err)
			return
		}
		if _, err := db.Exec(p, "INSERT INTO t (id, v) VALUES (2, 'post')"); err != nil {
			t.Errorf("write after failover: %v", err)
			return
		}
		set, err := db.Query(p, "SELECT COUNT(*) FROM t")
		if err != nil {
			t.Errorf("read after failover: %v", err)
			return
		}
		if set.Rows[0][0].Int() != 2 {
			t.Errorf("count after failover: %v", set.Rows[0][0])
		}
	})
	env.RunUntil(10 * time.Minute)
	env.Stop()
	env.Shutdown()
}

func TestStalenessBoundedOptionIntegration(t *testing.T) {
	// Strict: a literally-zero bound. WithStalenessBound(0) now means "the
	// default bound", under which a freshly-frozen slave still qualifies.
	env, db := newDB(t, 6, 1, WithBalancer(&proxy.StalenessBounded{Strict: true}))
	db.Cluster().Slaves()[0].Stop()
	env.Go("app", func(p *sim.Proc) {
		db.Exec(p, "INSERT INTO t (id, v) VALUES (1, 'x')")
		set, err := db.Query(p, "SELECT COUNT(*) FROM t")
		if err != nil {
			t.Errorf("query: %v", err)
			return
		}
		if set.Rows[0][0].Int() != 1 {
			t.Error("staleness-bounded handle served stale read")
		}
	})
	env.RunUntil(time.Minute)
	if db.Proxy().Stats().MasterFallbacks == 0 {
		t.Fatal("expected master fallback with frozen slave")
	}
	env.Stop()
	env.Shutdown()
}

func TestValidateInstances(t *testing.T) {
	env, db := newDB(t, 7, 2)
	var reports []InstanceReport
	env.Go("validate", func(p *sim.Proc) {
		reports = db.ValidateInstances(p, 5)
	})
	env.Run()
	if len(reports) != 3 {
		t.Fatalf("reports: %d, want master + 2 slaves", len(reports))
	}
	for _, r := range reports {
		if r.Speed < 0.99 || r.Speed > 1.01 { // homogeneous test cloud
			t.Fatalf("%s speed %v, want ≈1", r.Name, r.Speed)
		}
	}
}

func TestStatsAndClose(t *testing.T) {
	env, db := newDB(t, 8, 1)
	env.Go("app", func(p *sim.Proc) {
		db.Exec(p, "INSERT INTO t (id, v) VALUES (1, 'x')")
		db.Query(p, "SELECT COUNT(*) FROM t")
		st := db.Stats()
		if st.Proxy.Writes != 1 || st.Proxy.Reads != 1 {
			t.Errorf("proxy stats: %+v", st.Proxy)
		}
		if st.Pool.Borrows != 2 || st.Pool.Returns != 2 {
			t.Errorf("pool stats: %+v", st.Pool)
		}
		db.Close()
		if _, err := db.Exec(p, "SELECT 1"); err == nil {
			t.Error("Exec after Close succeeded")
		}
	})
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()
}

func TestReadYourWritesOption(t *testing.T) {
	env, db := newDB(t, 9, 1, WithReadYourWrites())
	db.Cluster().Slaves()[0].Stop() // slave lags forever
	env.Go("app", func(p *sim.Proc) {
		db.Exec(p, "INSERT INTO t (id, v) VALUES (1, 'x')")
		// Pooled handle: the same connection serves the next call, so the
		// watermark applies and the read must not miss the write.
		set, err := db.Query(p, "SELECT COUNT(*) FROM t")
		if err != nil {
			t.Errorf("query: %v", err)
			return
		}
		if set.Rows[0][0].Int() != 1 {
			t.Error("read-your-writes option did not take effect")
		}
	})
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()
}

// TestScaleBackDrainsInflightReads is the scale-in-ordering regression
// test: removing a replica under live read load must quarantine it in the
// proxy and drain its in-flight reads before the instance terminates, so
// clients never observe a read failing against a dying node.
func TestScaleBackDrainsInflightReads(t *testing.T) {
	env, db := newDB(t, 21, 2)
	const end = 2 * time.Minute

	env.Go("seed", func(p *sim.Proc) {
		if _, err := db.Exec(p, "INSERT INTO t (id, v) VALUES (1, 'x')"); err != nil {
			t.Errorf("seed: %v", err)
		}
	})
	// Heavy read load: reads take ~95 ms, so several are always in flight
	// on each slave when the scale-in fires.
	readErrs := 0
	for r := 0; r < 8; r++ {
		env.Go("reader", func(p *sim.Proc) {
			p.Sleep(time.Second)
			for p.Now() < end {
				if _, err := db.Query(p, "SELECT v FROM t WHERE id = 1"); err != nil {
					readErrs++
				}
				p.Sleep(20 * time.Millisecond)
			}
		})
	}

	var scaleErr error
	env.Go("operator", func(p *sim.Proc) {
		p.Sleep(30 * time.Second)
		scaleErr = db.ScaleBack(p, 0)
	})

	env.RunUntil(sim.Time(end))
	if scaleErr != nil {
		t.Fatalf("ScaleBack: %v", scaleErr)
	}
	if readErrs != 0 {
		t.Fatalf("%d client read(s) failed across a graceful scale-in", readErrs)
	}
	if n := len(db.Cluster().Slaves()); n != 1 {
		t.Fatalf("want 1 slave after scale-in, got %d", n)
	}
	// The survivor keeps serving: reads continued after the removal.
	if db.Proxy().Stats().Reads == 0 {
		t.Fatal("no reads recorded")
	}
	env.Stop()
	env.Shutdown()
}

// TestRemoveSlaveGracefulTimesOut: with a tiny drain budget and reads in
// flight, the removal must still complete but report the abandonment.
func TestRemoveSlaveGracefulTimesOut(t *testing.T) {
	env, db := newDB(t, 22, 1)
	sl := db.Cluster().Slaves()[0]

	env.Go("seed", func(p *sim.Proc) {
		db.Exec(p, "INSERT INTO t (id, v) VALUES (1, 'x')")
	})
	for r := 0; r < 4; r++ {
		env.Go("reader", func(p *sim.Proc) {
			p.Sleep(time.Second)
			for p.Now() < 40*time.Second {
				db.Query(p, "SELECT v FROM t WHERE id = 1")
				p.Sleep(5 * time.Millisecond)
			}
		})
	}
	var gotErr error
	env.Go("operator", func(p *sim.Proc) {
		p.Sleep(10 * time.Second)
		gotErr = db.RemoveSlaveGraceful(p, sl, 10*time.Millisecond)
	})
	env.RunUntil(sim.Time(time.Minute))
	if gotErr == nil {
		t.Fatal("expected an abandonment error from a 10ms drain budget under load")
	}
	if n := len(db.Cluster().Slaves()); n != 0 {
		t.Fatalf("slave not removed: %d attached", n)
	}
	env.Stop()
	env.Shutdown()
}
