// Package core is the public face of cloudrepl: an application-managed
// replicated database handle. It composes the cluster (master + slaves on
// cloud VMs), a DBCP-style connection pool and a read/write-splitting proxy
// into the single object an application codes against — the architecture
// the paper ports from a conventional data center onto cloud VMs.
//
//	db, _ := core.Open(clu, core.Options{Database: "app", ClientPlace: place})
//	db.Exec(p, "INSERT INTO t ...")   // routed to the master
//	db.Query(p, "SELECT ...")         // balanced over the slaves
package core

import (
	"errors"
	"fmt"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/pool"
	"cloudrepl/internal/proxy"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// Options configures a replicated database handle.
type Options struct {
	// Database is the default database for every connection.
	Database string
	// ClientPlace is where the application tier runs; every statement pays
	// the network round trip from here to its backend.
	ClientPlace cloud.Placement
	// Balancer distributes reads over slaves (default round-robin).
	Balancer proxy.Balancer
	// ReadYourWrites enables per-connection session consistency: after a
	// write, that connection's reads go only to slaves that have applied
	// it (master fallback otherwise).
	ReadYourWrites bool
	// Retry configures client-side robustness (retry with backoff, slave
	// eviction, statement timeouts, automatic master failover). The zero
	// value keeps the legacy single-attempt behaviour; use
	// proxy.DefaultRetryPolicy() for the chaos-hardened defaults. When
	// Retry.FailoverOnMasterDown is set, the handle wires the proxy's
	// master-failure hook to cluster promotion automatically.
	Retry proxy.RetryPolicy
	// Pool sizes the connection pool (default 64/64, wait forever).
	Pool pool.Config
}

// DB is a replicated database handle.
type DB struct {
	clu  *cluster.Cluster
	px   *proxy.Proxy
	pool *pool.Pool[*proxy.Conn]
	opts Options
}

// Open wires a handle onto a running cluster.
func Open(clu *cluster.Cluster, opts Options) *DB {
	if opts.Pool.MaxActive == 0 {
		opts.Pool = pool.Config{MaxActive: 64, MaxIdle: 64}
	}
	px := proxy.New(clu.Env(), clu.Cloud().Network(), clu.Master(), opts.ClientPlace, opts.Balancer)
	px.ReadYourWrites = opts.ReadYourWrites
	px.Retry = opts.Retry
	if opts.Retry.FailoverOnMasterDown {
		px.OnMasterFailure = func(p *sim.Proc) (*repl.Master, error) {
			return clu.Failover()
		}
	}
	db := &DB{clu: clu, px: px, opts: opts}
	db.pool = pool.New(clu.Env(), opts.Pool,
		func() *proxy.Conn { return px.Connect(opts.Database) },
		nil)
	return db
}

// Cluster returns the underlying cluster.
func (db *DB) Cluster() *cluster.Cluster { return db.clu }

// Proxy returns the routing proxy.
func (db *DB) Proxy() *proxy.Proxy { return db.px }

// Pool returns the connection pool.
func (db *DB) Pool() *pool.Pool[*proxy.Conn] { return db.pool }

// Exec borrows a connection, routes and executes one statement, and returns
// the connection to the pool. It must be called from a simulation process.
func (db *DB) Exec(p *sim.Proc, sql string, args ...sqlengine.Value) (*proxy.ExecResult, error) {
	conn, err := db.pool.Borrow(p)
	if err != nil {
		return nil, err
	}
	res, err := conn.Exec(p, sql, args...)
	db.pool.Return(conn)
	return res, err
}

// Query is Exec returning the result set.
func (db *DB) Query(p *sim.Proc, sql string, args ...sqlengine.Value) (*sqlengine.ResultSet, error) {
	res, err := db.Exec(p, sql, args...)
	if err != nil {
		return nil, err
	}
	return res.Result.Set, nil
}

// Staleness summarizes the cluster's current replication state as seen by
// the application: per-slave events behind the master.
type Staleness struct {
	Slaves []SlaveLag
	// MaxEvents is the worst lag across slaves.
	MaxEvents uint64
}

// SlaveLag is one replica's lag.
type SlaveLag struct {
	Name         string
	EventsBehind uint64
	RelayBacklog int
}

// Staleness samples the replication lag of every attached slave.
func (db *DB) Staleness() Staleness {
	var st Staleness
	for _, sl := range db.clu.Master().Slaves() {
		lag := sl.EventsBehindMaster()
		st.Slaves = append(st.Slaves, SlaveLag{
			Name:         sl.Srv.Name,
			EventsBehind: lag,
			RelayBacklog: sl.RelayBacklog(),
		})
		if lag > st.MaxEvents {
			st.MaxEvents = lag
		}
	}
	return st
}

// ScaleOut adds a replica at the given placement (the elasticity the
// application-managed approach exists for).
func (db *DB) ScaleOut(spec cluster.NodeSpec) error {
	_, err := db.clu.AddSlave(spec)
	return err
}

// ErrNoSlaves is returned by ScaleBack when the cluster has no replica to
// remove.
var ErrNoSlaves = errors.New("core: no slave to remove")

// ScaleIn removes the most-lagged replica immediately. The node is evicted
// from the proxy's rotation before its instance terminates, so no *new*
// read is ever routed to it — but reads already in flight when ScaleIn runs
// will fail against the dead instance. Use ScaleBack from a simulation
// process to also drain those.
func (db *DB) ScaleIn() {
	if worst := db.mostLagged(); worst != nil {
		db.px.Quarantine(worst)
		db.clu.RemoveSlave(worst)
		db.px.Forget(worst)
	}
}

// ScaleBack gracefully removes the most-lagged replica: the proxy stops
// routing new reads to it, in-flight reads drain (bounded by drainTimeout;
// ≤0 means 30 s), and only then is the node detached and its instance
// terminated — so a scale-in under load is invisible to clients. It must be
// called from a simulation process.
func (db *DB) ScaleBack(p *sim.Proc, drainTimeout time.Duration) error {
	worst := db.mostLagged()
	if worst == nil {
		return ErrNoSlaves
	}
	return db.RemoveSlaveGraceful(p, worst, drainTimeout)
}

// RemoveSlaveGraceful is ScaleBack for a caller-chosen replica. On drain
// timeout the node is terminated anyway (in-flight reads on it will error
// and take the retry path) and an error reports the abandonment.
func (db *DB) RemoveSlaveGraceful(p *sim.Proc, sl *repl.Slave, drainTimeout time.Duration) error {
	if drainTimeout <= 0 {
		drainTimeout = 30 * time.Second
	}
	db.px.Quarantine(sl)
	deadline := p.Now() + drainTimeout
	for db.px.InflightReads(sl) > 0 && p.Now() < deadline {
		p.Sleep(10 * time.Millisecond)
	}
	abandoned := db.px.InflightReads(sl)
	db.clu.RemoveSlave(sl)
	db.px.Forget(sl)
	if abandoned > 0 {
		return fmt.Errorf("core: scale-in of %s abandoned %d in-flight read(s) after %v",
			sl.Srv.Name, abandoned, drainTimeout)
	}
	return nil
}

// mostLagged returns the attached replica furthest behind the master (nil
// when none is attached).
func (db *DB) mostLagged() *repl.Slave {
	slaves := db.clu.Master().Slaves()
	if len(slaves) == 0 {
		return nil
	}
	worst := slaves[0]
	for _, sl := range slaves[1:] {
		if sl.EventsBehindMaster() > worst.EventsBehindMaster() {
			worst = sl
		}
	}
	return worst
}

// Failover promotes a slave after a master failure and re-points the proxy.
func (db *DB) Failover() error {
	m, err := db.clu.Failover()
	if err != nil {
		return err
	}
	db.px.SetMaster(m)
	return nil
}

// WaitCaughtUp blocks until every slave has applied the master's current
// binlog position or the timeout elapses; it reports success.
func (db *DB) WaitCaughtUp(p *sim.Proc, timeout time.Duration) bool {
	deadline := p.Now() + timeout
	target := db.clu.Master().Srv.Log.LastSeq()
	for {
		ok := true
		for _, sl := range db.clu.Master().Slaves() {
			if sl.AppliedSeq() < target {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
		if p.Now() >= deadline {
			return false
		}
		p.Sleep(50 * time.Millisecond)
	}
}

// InstanceReport is one node's validation result.
type InstanceReport struct {
	Name     string
	Place    cloud.Placement
	CPUModel string
	Speed    float64
}

// ValidateInstances measures the effective CPU speed of every node in the
// cluster — the paper's §IV-A advice to validate instance performance
// before accepting a deployment, since a slow physical host visibly caps
// end-to-end throughput. Run it before opening the tier to traffic: the
// probe competes with client load otherwise.
func (db *DB) ValidateInstances(p *sim.Proc, probes int) []InstanceReport {
	var out []InstanceReport
	report := func(name string, inst *cloud.Instance) {
		out = append(out, InstanceReport{
			Name:     name,
			Place:    inst.Place,
			CPUModel: inst.CPUModel.Name,
			Speed:    cloud.MeasureSpeed(p, inst, probes),
		})
	}
	report(db.clu.Master().Srv.Name, db.clu.Master().Srv.Inst)
	for _, sl := range db.clu.Master().Slaves() {
		report(sl.Srv.Name, sl.Srv.Inst)
	}
	return out
}

// Stats aggregates the handle's middleware counters.
type Stats struct {
	Proxy proxy.Stats
	Pool  pool.Stats
	Repl  repl.Stats
}

// Stats returns a snapshot of proxy routing, pool activity and replication
// pipeline counters.
func (db *DB) Stats() Stats {
	return Stats{Proxy: db.px.Stats(), Pool: db.pool.Stats(), Repl: db.clu.Master().Stats()}
}

// Close shuts the connection pool; the cluster keeps running (databases
// outlive application handles).
func (db *DB) Close() { db.pool.Close() }
