// Package core is the public face of cloudrepl: an application-managed
// replicated database handle. It composes the cluster (master + slaves on
// cloud VMs), a DBCP-style connection pool and a read/write-splitting proxy
// into the single object an application codes against — the architecture
// the paper ports from a conventional data center onto cloud VMs.
//
//	db := core.Open(clu,
//		core.WithDatabase("app"),
//		core.WithClientPlace(place),
//		core.WithRetryPolicy(proxy.DefaultRetryPolicy()))
//	db.Exec(p, "INSERT INTO t ...")   // routed to the master
//	db.Query(p, "SELECT ...")         // balanced over the slaves
//
// The handle is configured with functional options (see options.go); the
// deprecated Options struct in legacy.go remains as a shim.
package core

import (
	"errors"
	"fmt"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/metrics"
	"cloudrepl/internal/obs"
	"cloudrepl/internal/pool"
	"cloudrepl/internal/proxy"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/shard"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// Conn is what the handle's pool lends out per statement: a single-cluster
// proxy connection or a sharded routed connection — the application never
// sees the difference.
type Conn interface {
	Exec(p *sim.Proc, sql string, args ...sqlengine.Value) (*proxy.ExecResult, error)
}

// DB is a replicated database handle. In single-cluster mode (Open) it
// fronts one cluster behind one proxy; in sharded mode (OpenSharded) it
// fronts N cells behind the shard router, through the same Exec/Query/
// Scale surface.
type DB struct {
	clu    *cluster.Cluster // nil in sharded mode
	px     *proxy.Proxy     // nil in sharded mode
	sc     *shard.Cluster   // nil in single-cluster mode
	pool   *pool.Pool[Conn]
	cfg    config
	tracer *obs.Tracer
	reg    *obs.Registry

	// Per-statement instruments, resolved on first use so the Exec hot path
	// does one registry map lookup per handle, not per statement. They stay
	// nil (and no-op) when metrics are disabled, and are not materialized
	// before first use so a snapshot only shows metrics that were touched.
	mClientErrors *obs.Counter
	mClientExec   *metrics.Histogram
}

// clientErrors lazily resolves the client.errors counter (nil with metrics
// disabled). Only error paths reach it, so the lookup-on-miss never sits
// on the statement fast path.
func (db *DB) clientErrors() *obs.Counter {
	if db.mClientErrors == nil && db.reg != nil {
		db.mClientErrors = db.reg.Counter("client.errors")
	}
	return db.mClientErrors
}

// clientExec lazily resolves the client.exec latency histogram.
func (db *DB) clientExec() *metrics.Histogram {
	if db.mClientExec == nil && db.reg != nil {
		db.mClientExec = db.reg.Histogram("client.exec")
	}
	return db.mClientExec
}

// Open wires a handle onto a running cluster.
func Open(clu *cluster.Cluster, opts ...Option) *DB {
	var cfg config
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return openConfig(clu, cfg)
}

// openConfig is the single construction path shared by Open and the
// deprecated OpenOptions shim.
func openConfig(clu *cluster.Cluster, cfg config) *DB {
	if cfg.pool.MaxActive == 0 {
		cfg.pool = pool.Config{MaxActive: 64, MaxIdle: 64}
	}
	px := proxy.New(clu.Env(), clu.Cloud().Network(), clu.Master(), cfg.clientPlace, cfg.balancer)
	px.ReadYourWrites = cfg.readYourWrites
	px.Consistency = cfg.consistency
	px.MaxStaleEvents = cfg.maxStaleEvents
	px.Retry = cfg.retry
	if cfg.retry.FailoverOnMasterDown {
		px.OnMasterFailure = func(p *sim.Proc) (*repl.Master, error) {
			return clu.Failover()
		}
	}
	db := &DB{clu: clu, px: px, cfg: cfg, tracer: cfg.tracer, reg: cfg.registry}
	if db.reg == nil && !cfg.noMetrics {
		db.reg = obs.NewRegistry()
	}
	// Reservoir sampling in registry histograms uses the env RNG (only once
	// a histogram exceeds its cap, so short runs draw nothing extra).
	db.reg.SetRand(clu.Env().Rand())
	if cfg.tracer != nil {
		px.Tracer = cfg.tracer
		clu.SetTracer(cfg.tracer)
	}
	db.pool = pool.New(clu.Env(), cfg.pool,
		func() Conn { return px.Connect(cfg.database) },
		nil)
	db.pool.Tracer = cfg.tracer
	return db
}

// OpenSharded builds a cell-sharded deployment and wires a handle onto it:
// WithShards(n) cells, each a full cluster from the cellCfg template
// (instances named "cell<i>/..."), fronted by the shard router. The
// application surface is unchanged — Exec routes single-key statements to
// the owning cell and scatters multi-key reads; Scale spreads replica
// deltas across cells; SplitShard grows the tier by a cell online.
func OpenSharded(env *sim.Env, cl *cloud.Cloud, cellCfg cluster.Config, opts ...Option) (*DB, error) {
	var cfg config
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	if cfg.shards < 1 {
		cfg.shards = 1
	}
	if cfg.pool.MaxActive == 0 {
		cfg.pool = pool.Config{MaxActive: 64, MaxIdle: 64}
	}
	sc, err := shard.New(env, cl, shard.Config{
		Cells:              cfg.shards,
		Slots:              cfg.shardSlots,
		Keyspace:           cfg.keyspace,
		Database:           cfg.database,
		Cell:               cellCfg,
		PartitionedPreload: cfg.partitionedPreload,
		ClientPlace:        cfg.clientPlace,
		Balancer:           cfg.balancerFactory,
		ReadYourWrites:     cfg.readYourWrites,
		Consistency:        cfg.consistency,
		MaxStaleEvents:     cfg.maxStaleEvents,
		Retry:              cfg.retry,
	})
	if err != nil {
		return nil, err
	}
	db := &DB{sc: sc, cfg: cfg, tracer: cfg.tracer, reg: cfg.registry}
	if db.reg == nil && !cfg.noMetrics {
		db.reg = obs.NewRegistry()
	}
	db.reg.SetRand(env.Rand())
	if cfg.tracer != nil {
		sc.SetTracer(cfg.tracer)
	}
	db.pool = pool.New(env, cfg.pool,
		func() Conn { return sc.Connect(cfg.database) },
		nil)
	db.pool.Tracer = cfg.tracer
	return db, nil
}

// Cluster returns the underlying cluster (nil in sharded mode — use
// Shards().Cells() for the per-cell clusters).
func (db *DB) Cluster() *cluster.Cluster { return db.clu }

// Proxy returns the routing proxy (nil in sharded mode — each cell has its
// own, at Shards().Cell(i).Px).
func (db *DB) Proxy() *proxy.Proxy { return db.px }

// Shards returns the sharded cluster (nil in single-cluster mode).
func (db *DB) Shards() *shard.Cluster { return db.sc }

// Pool returns the connection pool.
func (db *DB) Pool() *pool.Pool[Conn] { return db.pool }

// Registry returns the handle's metrics registry: the one passed via
// WithMetrics, or the handle's own — nil only under WithoutMetrics, and a
// nil registry is safe to instrument against (every lookup no-ops).
func (db *DB) Registry() *obs.Registry { return db.reg }

// Exec borrows a connection, routes and executes one statement, and returns
// the connection to the pool. It must be called from a simulation process.
// With tracing on it opens the root "client" span of the statement's trace;
// end-to-end latency is always recorded into the registry's client.exec
// histogram.
func (db *DB) Exec(p *sim.Proc, sql string, args ...sqlengine.Value) (*proxy.ExecResult, error) {
	sp := db.tracer.StartSpan(p, "client", "exec")
	start := p.Now()
	conn, err := db.pool.Borrow(p)
	if err != nil {
		db.clientErrors().Inc()
		sp.SetAttr("error", "pool")
		sp.End(p)
		return nil, err
	}
	res, err := conn.Exec(p, sql, args...)
	db.pool.Return(conn)
	db.clientExec().Record(time.Duration(p.Now() - start))
	if err != nil {
		db.clientErrors().Inc()
		sp.SetAttr("error", "exec")
	}
	sp.End(p)
	return res, err
}

// Query is Exec returning the result set.
func (db *DB) Query(p *sim.Proc, sql string, args ...sqlengine.Value) (*sqlengine.ResultSet, error) {
	res, err := db.Exec(p, sql, args...)
	if err != nil {
		return nil, err
	}
	return res.Result.Set, nil
}

// Staleness summarizes the cluster's current replication state as seen by
// the application: per-slave events behind the master.
type Staleness struct {
	Slaves []SlaveLag
	// MaxEvents is the worst lag across slaves.
	MaxEvents uint64
}

// SlaveLag is one replica's lag.
type SlaveLag struct {
	Name         string
	EventsBehind uint64
	RelayBacklog int
}

// Staleness samples the replication lag of every attached slave — across
// every cell in sharded mode (slave names carry their cell prefix).
func (db *DB) Staleness() Staleness {
	var st Staleness
	for _, sl := range db.allSlaves() {
		lag := sl.EventsBehindMaster()
		st.Slaves = append(st.Slaves, SlaveLag{
			Name:         sl.Srv.Name,
			EventsBehind: lag,
			RelayBacklog: sl.RelayBacklog(),
		})
		if lag > st.MaxEvents {
			st.MaxEvents = lag
		}
	}
	return st
}

// allSlaves enumerates every attached replica: the cluster's in
// single-cluster mode, every cell's (in cell order) in sharded mode.
func (db *DB) allSlaves() []*repl.Slave {
	if db.sc == nil {
		return db.clu.Master().Slaves()
	}
	var out []*repl.Slave
	for _, cell := range db.sc.Cells() {
		out = append(out, cell.Clu.Master().Slaves()...)
	}
	return out
}

// ErrNoSlaves is returned by scale-in when the cluster has no replica to
// remove.
var ErrNoSlaves = errors.New("core: no slave to remove")

// ErrSharded is returned by single-cluster-only operations on a sharded
// handle.
var ErrSharded = errors.New("core: operation requires single-cluster mode")

// ScaleOpts tunes DB.Scale.
type ScaleOpts struct {
	// Spec places replicas added on scale-out (zero value: a Small instance
	// in the provider's default zone, like cluster.AddSlave).
	Spec cluster.NodeSpec
	// Drain bounds how long a graceful scale-in waits for in-flight reads on
	// the departing replica (≤0 means 30 s). Ignored on immediate scale-in.
	Drain time.Duration
	// Victim pins the first replica removed on scale-in; nil removes the
	// most-lagged one.
	Victim *repl.Slave
}

// Scale is the unified elasticity surface: a positive delta adds replicas, a
// negative delta removes them. With a non-nil process the removal is
// graceful — the proxy stops routing new reads to the victim, in-flight
// reads drain (bounded by opts.Drain), and only then is the node detached —
// so a scale-in under load is invisible to clients. With p == nil removal is
// immediate: no new read is routed to the victim, but reads already in
// flight will fail against the dead instance and take the retry path.
func (db *DB) Scale(p *sim.Proc, delta int, opts ScaleOpts) error {
	if db.sc != nil {
		return db.scaleSharded(p, delta, opts)
	}
	for ; delta > 0; delta-- {
		if _, err := db.clu.AddSlave(opts.Spec); err != nil {
			return err
		}
	}
	var firstErr error
	for ; delta < 0; delta++ {
		victim := opts.Victim
		opts.Victim = nil // only the first removal is pinned
		if victim == nil {
			victim = db.mostLagged()
		}
		if victim == nil {
			return ErrNoSlaves
		}
		if p == nil {
			db.px.Quarantine(victim)
			db.clu.RemoveSlave(victim)
			db.px.Forget(victim)
			continue
		}
		if err := db.removeGraceful(p, victim, opts.Drain); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// scaleSharded spreads replica deltas across cells: scale-out lands each
// new replica on the cell with the fewest slaves (ties to the lowest id),
// scale-in removes the most-lagged replica from the cell with the most.
// The Victim pin is single-cluster only and ignored here.
func (db *DB) scaleSharded(p *sim.Proc, delta int, opts ScaleOpts) error {
	cells := db.sc.Cells()
	for ; delta > 0; delta-- {
		target := cells[0]
		for _, c := range cells[1:] {
			if len(c.Clu.Master().Slaves()) < len(target.Clu.Master().Slaves()) {
				target = c
			}
		}
		if _, err := target.Clu.AddSlave(opts.Spec); err != nil {
			return err
		}
	}
	var firstErr error
	for ; delta < 0; delta++ {
		var target *shard.Cell
		for _, c := range cells {
			if len(c.Clu.Master().Slaves()) == 0 {
				continue
			}
			if target == nil || len(c.Clu.Master().Slaves()) > len(target.Clu.Master().Slaves()) {
				target = c
			}
		}
		if target == nil {
			return ErrNoSlaves
		}
		victim := mostLaggedOf(target.Clu.Master().Slaves())
		if p == nil {
			target.Px.Quarantine(victim)
			target.Clu.RemoveSlave(victim)
			target.Px.Forget(victim)
			continue
		}
		if err := removeGracefulFrom(p, target.Px, target.Clu, victim, opts.Drain); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SplitShard grows a sharded deployment by one cell online (copy, dual
// write, cutover); see shard.Cluster.Split. It fails on a single-cluster
// handle.
func (db *DB) SplitShard(p *sim.Proc) (*shard.SplitReport, error) {
	if db.sc == nil {
		return nil, errors.New("core: SplitShard requires a sharded handle (OpenSharded)")
	}
	return db.sc.Split(p)
}

// ScaleOut adds a replica at the given placement.
//
// Deprecated: use Scale(nil, 1, ScaleOpts{Spec: spec}).
func (db *DB) ScaleOut(spec cluster.NodeSpec) error {
	return db.Scale(nil, 1, ScaleOpts{Spec: spec})
}

// ScaleIn removes the most-lagged replica immediately.
//
// Deprecated: use Scale(nil, -1, ScaleOpts{}); from a simulation process
// prefer a graceful Scale(p, -1, ...) which also drains in-flight reads.
func (db *DB) ScaleIn() {
	_ = db.Scale(nil, -1, ScaleOpts{})
}

// ScaleBack gracefully removes the most-lagged replica.
//
// Deprecated: use Scale(p, -1, ScaleOpts{Drain: drainTimeout}).
func (db *DB) ScaleBack(p *sim.Proc, drainTimeout time.Duration) error {
	return db.Scale(p, -1, ScaleOpts{Drain: drainTimeout})
}

// RemoveSlaveGraceful is a graceful scale-in of a caller-chosen replica.
//
// Deprecated: use Scale(p, -1, ScaleOpts{Victim: sl, Drain: drainTimeout}).
func (db *DB) RemoveSlaveGraceful(p *sim.Proc, sl *repl.Slave, drainTimeout time.Duration) error {
	return db.Scale(p, -1, ScaleOpts{Victim: sl, Drain: drainTimeout})
}

// removeGraceful quarantines sl, waits for its in-flight reads to drain
// (bounded by drainTimeout; ≤0 means 30 s) and detaches it. On drain timeout
// the node is terminated anyway (in-flight reads on it will error and take
// the retry path) and an error reports the abandonment.
func (db *DB) removeGraceful(p *sim.Proc, sl *repl.Slave, drainTimeout time.Duration) error {
	return removeGracefulFrom(p, db.px, db.clu, sl, drainTimeout)
}

// removeGracefulFrom is removeGraceful against an explicit proxy/cluster
// pair, shared by the single-cluster and per-cell scale-in paths.
func removeGracefulFrom(p *sim.Proc, px *proxy.Proxy, clu *cluster.Cluster, sl *repl.Slave, drainTimeout time.Duration) error {
	if drainTimeout <= 0 {
		drainTimeout = 30 * time.Second
	}
	px.Quarantine(sl)
	deadline := p.Now() + drainTimeout
	for px.InflightReads(sl) > 0 && p.Now() < deadline {
		p.Sleep(10 * time.Millisecond)
	}
	abandoned := px.InflightReads(sl)
	clu.RemoveSlave(sl)
	px.Forget(sl)
	if abandoned > 0 {
		return fmt.Errorf("core: scale-in of %s abandoned %d in-flight read(s) after %v",
			sl.Srv.Name, abandoned, drainTimeout)
	}
	return nil
}

// mostLagged returns the attached replica furthest behind the master (nil
// when none is attached).
func (db *DB) mostLagged() *repl.Slave {
	return mostLaggedOf(db.clu.Master().Slaves())
}

func mostLaggedOf(slaves []*repl.Slave) *repl.Slave {
	if len(slaves) == 0 {
		return nil
	}
	worst := slaves[0]
	for _, sl := range slaves[1:] {
		if sl.EventsBehindMaster() > worst.EventsBehindMaster() {
			worst = sl
		}
	}
	return worst
}

// Failover promotes a slave after a master failure and re-points the proxy.
// On a sharded handle it returns ErrSharded: each cell fails over on its
// own through the per-cell retry policy (Retry.FailoverOnMasterDown).
func (db *DB) Failover() error {
	if db.sc != nil {
		return fmt.Errorf("%w: per-cell failover is driven by the retry policy", ErrSharded)
	}
	m, err := db.clu.Failover()
	if err != nil {
		return err
	}
	db.px.SetMaster(m)
	return nil
}

// WaitCaughtUp blocks until every slave (of every cell, in sharded mode)
// has applied its master's current binlog position or the timeout elapses;
// it reports success.
func (db *DB) WaitCaughtUp(p *sim.Proc, timeout time.Duration) bool {
	deadline := p.Now() + timeout
	var masters []*repl.Master
	if db.sc == nil {
		masters = []*repl.Master{db.clu.Master()}
	} else {
		for _, cell := range db.sc.Cells() {
			masters = append(masters, cell.Clu.Master())
		}
	}
	targets := make([]uint64, len(masters))
	for i, m := range masters {
		targets[i] = m.Srv.Log.LastSeq()
	}
	for {
		ok := true
		for i, m := range masters {
			for _, sl := range m.Slaves() {
				if sl.AppliedSeq() < targets[i] {
					ok = false
					break
				}
			}
		}
		if ok {
			return true
		}
		if p.Now() >= deadline {
			return false
		}
		p.Sleep(50 * time.Millisecond)
	}
}

// InstanceReport is one node's validation result.
type InstanceReport struct {
	Name     string
	Place    cloud.Placement
	CPUModel string
	Speed    float64
}

// ValidateInstances measures the effective CPU speed of every node in the
// cluster — the paper's §IV-A advice to validate instance performance
// before accepting a deployment, since a slow physical host visibly caps
// end-to-end throughput. Run it before opening the tier to traffic: the
// probe competes with client load otherwise.
func (db *DB) ValidateInstances(p *sim.Proc, probes int) []InstanceReport {
	var out []InstanceReport
	report := func(name string, inst *cloud.Instance) {
		out = append(out, InstanceReport{
			Name:     name,
			Place:    inst.Place,
			CPUModel: inst.CPUModel.Name,
			Speed:    cloud.MeasureSpeed(p, inst, probes),
		})
	}
	if db.sc == nil {
		report(db.clu.Master().Srv.Name, db.clu.Master().Srv.Inst)
	} else {
		for _, cell := range db.sc.Cells() {
			report(cell.Clu.Master().Srv.Name, cell.Clu.Master().Srv.Inst)
		}
	}
	for _, sl := range db.allSlaves() {
		report(sl.Srv.Name, sl.Srv.Inst)
	}
	return out
}

// Stats aggregates the handle's middleware counters. In sharded mode Proxy
// sums every cell's proxy, Repl stays zero (per-cell replication counters
// live in the metrics registry under "shard.cell<i>.repl.*") and Shard
// carries the router counters.
type Stats struct {
	Proxy proxy.Stats
	Pool  pool.Stats
	Repl  repl.Stats
	Shard shard.Stats
}

// Stats returns a snapshot of proxy routing, pool activity and replication
// pipeline counters.
func (db *DB) Stats() Stats {
	if db.sc != nil {
		var px proxy.Stats
		for _, cell := range db.sc.Cells() {
			px = sumProxyStats(px, cell.Px.Stats())
		}
		return Stats{Proxy: px, Pool: db.pool.Stats(), Shard: db.sc.Stats()}
	}
	return Stats{Proxy: db.px.Stats(), Pool: db.pool.Stats(), Repl: db.clu.Master().Stats()}
}

// sumProxyStats adds two proxy counter snapshots field by field.
func sumProxyStats(a, b proxy.Stats) proxy.Stats {
	a.Reads += b.Reads
	a.Writes += b.Writes
	a.MasterFallbacks += b.MasterFallbacks
	a.Errors += b.Errors
	a.Retries += b.Retries
	a.Timeouts += b.Timeouts
	a.SlaveEvictions += b.SlaveEvictions
	a.SlaveReadmissions += b.SlaveReadmissions
	a.Failovers += b.Failovers
	a.DegradedCommits += b.DegradedCommits
	a.WrongShard += b.WrongShard
	a.EventualReads += b.EventualReads
	a.BoundedReads += b.BoundedReads
	a.SessionReads += b.SessionReads
	a.StrongReads += b.StrongReads
	a.EpochFallbacks += b.EpochFallbacks
	a.StaleEventsObserved += b.StaleEventsObserved
	a.RYWChecked += b.RYWChecked
	a.RYWCompliant += b.RYWCompliant
	return a
}

// Metrics publishes every attached component's counters into the registry
// and returns the flattened snapshot (name → value) that the bench JSON
// output embeds. Proxy, pool and replication metrics are published here
// (per cell, namespaced "shard.cell<i>.", in sharded mode); external
// publishers (chaos, elastic) share the same registry via Registry().
func (db *DB) Metrics() map[string]float64 {
	if db.sc != nil {
		db.sc.PublishMetrics(db.reg)
		db.pool.PublishMetrics(db.reg)
		db.reg.Gauge("repl.max_events_behind").Set(float64(db.Staleness().MaxEvents))
		db.publishEngineGC()
		return db.reg.Snapshot()
	}
	db.px.PublishMetrics(db.reg)
	db.pool.PublishMetrics(db.reg)
	db.clu.Master().PublishMetrics(db.reg)
	db.reg.Gauge("repl.max_events_behind").Set(float64(db.Staleness().MaxEvents))
	db.publishEngineGC()
	return db.reg.Snapshot()
}

// publishEngineGC sums MVCC version-chain GC counters over every engine in
// the deployment (masters and slaves, all cells) into "sqlengine.gc.*" —
// the evidence that chain memory is being reclaimed, not accreted.
func (db *DB) publishEngineGC() {
	if db.reg == nil {
		return
	}
	var runs, versions, rows uint64
	add := func(m *repl.Master) {
		r, v, w := m.Srv.Eng.GCStats()
		runs, versions, rows = runs+r, versions+v, rows+w
		for _, sl := range m.Slaves() {
			r, v, w := sl.Srv.Eng.GCStats()
			runs, versions, rows = runs+r, versions+v, rows+w
		}
	}
	if db.sc == nil {
		add(db.clu.Master())
	} else {
		for _, cell := range db.sc.Cells() {
			add(cell.Clu.Master())
		}
	}
	db.reg.Counter("sqlengine.gc.runs").Set(float64(runs))
	db.reg.Counter("sqlengine.gc.versions_pruned").Set(float64(versions))
	db.reg.Counter("sqlengine.gc.rows_pruned").Set(float64(rows))
}

// Close shuts the connection pool; the cluster keeps running (databases
// outlive application handles).
func (db *DB) Close() { db.pool.Close() }
