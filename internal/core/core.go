// Package core is the public face of cloudrepl: an application-managed
// replicated database handle. It composes the cluster (master + slaves on
// cloud VMs), a DBCP-style connection pool and a read/write-splitting proxy
// into the single object an application codes against — the architecture
// the paper ports from a conventional data center onto cloud VMs.
//
//	db := core.Open(clu,
//		core.WithDatabase("app"),
//		core.WithClientPlace(place),
//		core.WithRetryPolicy(proxy.DefaultRetryPolicy()))
//	db.Exec(p, "INSERT INTO t ...")   // routed to the master
//	db.Query(p, "SELECT ...")         // balanced over the slaves
//
// The handle is configured with functional options (see options.go); the
// deprecated Options struct in legacy.go remains as a shim.
package core

import (
	"errors"
	"fmt"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/metrics"
	"cloudrepl/internal/obs"
	"cloudrepl/internal/pool"
	"cloudrepl/internal/proxy"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// DB is a replicated database handle.
type DB struct {
	clu    *cluster.Cluster
	px     *proxy.Proxy
	pool   *pool.Pool[*proxy.Conn]
	cfg    config
	tracer *obs.Tracer
	reg    *obs.Registry

	// Per-statement instruments, resolved on first use so the Exec hot path
	// does one registry map lookup per handle, not per statement. They stay
	// nil (and no-op) when metrics are disabled, and are not materialized
	// before first use so a snapshot only shows metrics that were touched.
	mClientErrors *obs.Counter
	mClientExec   *metrics.Histogram
}

// clientErrors lazily resolves the client.errors counter (nil with metrics
// disabled). Only error paths reach it, so the lookup-on-miss never sits
// on the statement fast path.
func (db *DB) clientErrors() *obs.Counter {
	if db.mClientErrors == nil && db.reg != nil {
		db.mClientErrors = db.reg.Counter("client.errors")
	}
	return db.mClientErrors
}

// clientExec lazily resolves the client.exec latency histogram.
func (db *DB) clientExec() *metrics.Histogram {
	if db.mClientExec == nil && db.reg != nil {
		db.mClientExec = db.reg.Histogram("client.exec")
	}
	return db.mClientExec
}

// Open wires a handle onto a running cluster.
func Open(clu *cluster.Cluster, opts ...Option) *DB {
	var cfg config
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return openConfig(clu, cfg)
}

// openConfig is the single construction path shared by Open and the
// deprecated OpenOptions shim.
func openConfig(clu *cluster.Cluster, cfg config) *DB {
	if cfg.pool.MaxActive == 0 {
		cfg.pool = pool.Config{MaxActive: 64, MaxIdle: 64}
	}
	px := proxy.New(clu.Env(), clu.Cloud().Network(), clu.Master(), cfg.clientPlace, cfg.balancer)
	px.ReadYourWrites = cfg.readYourWrites
	px.Retry = cfg.retry
	if cfg.retry.FailoverOnMasterDown {
		px.OnMasterFailure = func(p *sim.Proc) (*repl.Master, error) {
			return clu.Failover()
		}
	}
	db := &DB{clu: clu, px: px, cfg: cfg, tracer: cfg.tracer, reg: cfg.registry}
	if db.reg == nil && !cfg.noMetrics {
		db.reg = obs.NewRegistry()
	}
	// Reservoir sampling in registry histograms uses the env RNG (only once
	// a histogram exceeds its cap, so short runs draw nothing extra).
	db.reg.SetRand(clu.Env().Rand())
	if cfg.tracer != nil {
		px.Tracer = cfg.tracer
		clu.SetTracer(cfg.tracer)
	}
	db.pool = pool.New(clu.Env(), cfg.pool,
		func() *proxy.Conn { return px.Connect(cfg.database) },
		nil)
	db.pool.Tracer = cfg.tracer
	return db
}

// Cluster returns the underlying cluster.
func (db *DB) Cluster() *cluster.Cluster { return db.clu }

// Proxy returns the routing proxy.
func (db *DB) Proxy() *proxy.Proxy { return db.px }

// Pool returns the connection pool.
func (db *DB) Pool() *pool.Pool[*proxy.Conn] { return db.pool }

// Registry returns the handle's metrics registry: the one passed via
// WithMetrics, or the handle's own — nil only under WithoutMetrics, and a
// nil registry is safe to instrument against (every lookup no-ops).
func (db *DB) Registry() *obs.Registry { return db.reg }

// Exec borrows a connection, routes and executes one statement, and returns
// the connection to the pool. It must be called from a simulation process.
// With tracing on it opens the root "client" span of the statement's trace;
// end-to-end latency is always recorded into the registry's client.exec
// histogram.
func (db *DB) Exec(p *sim.Proc, sql string, args ...sqlengine.Value) (*proxy.ExecResult, error) {
	sp := db.tracer.StartSpan(p, "client", "exec")
	start := p.Now()
	conn, err := db.pool.Borrow(p)
	if err != nil {
		db.clientErrors().Inc()
		sp.SetAttr("error", "pool")
		sp.End(p)
		return nil, err
	}
	res, err := conn.Exec(p, sql, args...)
	db.pool.Return(conn)
	db.clientExec().Record(time.Duration(p.Now() - start))
	if err != nil {
		db.clientErrors().Inc()
		sp.SetAttr("error", "exec")
	}
	sp.End(p)
	return res, err
}

// Query is Exec returning the result set.
func (db *DB) Query(p *sim.Proc, sql string, args ...sqlengine.Value) (*sqlengine.ResultSet, error) {
	res, err := db.Exec(p, sql, args...)
	if err != nil {
		return nil, err
	}
	return res.Result.Set, nil
}

// Staleness summarizes the cluster's current replication state as seen by
// the application: per-slave events behind the master.
type Staleness struct {
	Slaves []SlaveLag
	// MaxEvents is the worst lag across slaves.
	MaxEvents uint64
}

// SlaveLag is one replica's lag.
type SlaveLag struct {
	Name         string
	EventsBehind uint64
	RelayBacklog int
}

// Staleness samples the replication lag of every attached slave.
func (db *DB) Staleness() Staleness {
	var st Staleness
	for _, sl := range db.clu.Master().Slaves() {
		lag := sl.EventsBehindMaster()
		st.Slaves = append(st.Slaves, SlaveLag{
			Name:         sl.Srv.Name,
			EventsBehind: lag,
			RelayBacklog: sl.RelayBacklog(),
		})
		if lag > st.MaxEvents {
			st.MaxEvents = lag
		}
	}
	return st
}

// ErrNoSlaves is returned by scale-in when the cluster has no replica to
// remove.
var ErrNoSlaves = errors.New("core: no slave to remove")

// ScaleOpts tunes DB.Scale.
type ScaleOpts struct {
	// Spec places replicas added on scale-out (zero value: a Small instance
	// in the provider's default zone, like cluster.AddSlave).
	Spec cluster.NodeSpec
	// Drain bounds how long a graceful scale-in waits for in-flight reads on
	// the departing replica (≤0 means 30 s). Ignored on immediate scale-in.
	Drain time.Duration
	// Victim pins the first replica removed on scale-in; nil removes the
	// most-lagged one.
	Victim *repl.Slave
}

// Scale is the unified elasticity surface: a positive delta adds replicas, a
// negative delta removes them. With a non-nil process the removal is
// graceful — the proxy stops routing new reads to the victim, in-flight
// reads drain (bounded by opts.Drain), and only then is the node detached —
// so a scale-in under load is invisible to clients. With p == nil removal is
// immediate: no new read is routed to the victim, but reads already in
// flight will fail against the dead instance and take the retry path.
func (db *DB) Scale(p *sim.Proc, delta int, opts ScaleOpts) error {
	for ; delta > 0; delta-- {
		if _, err := db.clu.AddSlave(opts.Spec); err != nil {
			return err
		}
	}
	var firstErr error
	for ; delta < 0; delta++ {
		victim := opts.Victim
		opts.Victim = nil // only the first removal is pinned
		if victim == nil {
			victim = db.mostLagged()
		}
		if victim == nil {
			return ErrNoSlaves
		}
		if p == nil {
			db.px.Quarantine(victim)
			db.clu.RemoveSlave(victim)
			db.px.Forget(victim)
			continue
		}
		if err := db.removeGraceful(p, victim, opts.Drain); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ScaleOut adds a replica at the given placement.
//
// Deprecated: use Scale(nil, 1, ScaleOpts{Spec: spec}).
func (db *DB) ScaleOut(spec cluster.NodeSpec) error {
	return db.Scale(nil, 1, ScaleOpts{Spec: spec})
}

// ScaleIn removes the most-lagged replica immediately.
//
// Deprecated: use Scale(nil, -1, ScaleOpts{}); from a simulation process
// prefer a graceful Scale(p, -1, ...) which also drains in-flight reads.
func (db *DB) ScaleIn() {
	_ = db.Scale(nil, -1, ScaleOpts{})
}

// ScaleBack gracefully removes the most-lagged replica.
//
// Deprecated: use Scale(p, -1, ScaleOpts{Drain: drainTimeout}).
func (db *DB) ScaleBack(p *sim.Proc, drainTimeout time.Duration) error {
	return db.Scale(p, -1, ScaleOpts{Drain: drainTimeout})
}

// RemoveSlaveGraceful is a graceful scale-in of a caller-chosen replica.
//
// Deprecated: use Scale(p, -1, ScaleOpts{Victim: sl, Drain: drainTimeout}).
func (db *DB) RemoveSlaveGraceful(p *sim.Proc, sl *repl.Slave, drainTimeout time.Duration) error {
	return db.Scale(p, -1, ScaleOpts{Victim: sl, Drain: drainTimeout})
}

// removeGraceful quarantines sl, waits for its in-flight reads to drain
// (bounded by drainTimeout; ≤0 means 30 s) and detaches it. On drain timeout
// the node is terminated anyway (in-flight reads on it will error and take
// the retry path) and an error reports the abandonment.
func (db *DB) removeGraceful(p *sim.Proc, sl *repl.Slave, drainTimeout time.Duration) error {
	if drainTimeout <= 0 {
		drainTimeout = 30 * time.Second
	}
	db.px.Quarantine(sl)
	deadline := p.Now() + drainTimeout
	for db.px.InflightReads(sl) > 0 && p.Now() < deadline {
		p.Sleep(10 * time.Millisecond)
	}
	abandoned := db.px.InflightReads(sl)
	db.clu.RemoveSlave(sl)
	db.px.Forget(sl)
	if abandoned > 0 {
		return fmt.Errorf("core: scale-in of %s abandoned %d in-flight read(s) after %v",
			sl.Srv.Name, abandoned, drainTimeout)
	}
	return nil
}

// mostLagged returns the attached replica furthest behind the master (nil
// when none is attached).
func (db *DB) mostLagged() *repl.Slave {
	slaves := db.clu.Master().Slaves()
	if len(slaves) == 0 {
		return nil
	}
	worst := slaves[0]
	for _, sl := range slaves[1:] {
		if sl.EventsBehindMaster() > worst.EventsBehindMaster() {
			worst = sl
		}
	}
	return worst
}

// Failover promotes a slave after a master failure and re-points the proxy.
func (db *DB) Failover() error {
	m, err := db.clu.Failover()
	if err != nil {
		return err
	}
	db.px.SetMaster(m)
	return nil
}

// WaitCaughtUp blocks until every slave has applied the master's current
// binlog position or the timeout elapses; it reports success.
func (db *DB) WaitCaughtUp(p *sim.Proc, timeout time.Duration) bool {
	deadline := p.Now() + timeout
	target := db.clu.Master().Srv.Log.LastSeq()
	for {
		ok := true
		for _, sl := range db.clu.Master().Slaves() {
			if sl.AppliedSeq() < target {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
		if p.Now() >= deadline {
			return false
		}
		p.Sleep(50 * time.Millisecond)
	}
}

// InstanceReport is one node's validation result.
type InstanceReport struct {
	Name     string
	Place    cloud.Placement
	CPUModel string
	Speed    float64
}

// ValidateInstances measures the effective CPU speed of every node in the
// cluster — the paper's §IV-A advice to validate instance performance
// before accepting a deployment, since a slow physical host visibly caps
// end-to-end throughput. Run it before opening the tier to traffic: the
// probe competes with client load otherwise.
func (db *DB) ValidateInstances(p *sim.Proc, probes int) []InstanceReport {
	var out []InstanceReport
	report := func(name string, inst *cloud.Instance) {
		out = append(out, InstanceReport{
			Name:     name,
			Place:    inst.Place,
			CPUModel: inst.CPUModel.Name,
			Speed:    cloud.MeasureSpeed(p, inst, probes),
		})
	}
	report(db.clu.Master().Srv.Name, db.clu.Master().Srv.Inst)
	for _, sl := range db.clu.Master().Slaves() {
		report(sl.Srv.Name, sl.Srv.Inst)
	}
	return out
}

// Stats aggregates the handle's middleware counters.
type Stats struct {
	Proxy proxy.Stats
	Pool  pool.Stats
	Repl  repl.Stats
}

// Stats returns a snapshot of proxy routing, pool activity and replication
// pipeline counters.
func (db *DB) Stats() Stats {
	return Stats{Proxy: db.px.Stats(), Pool: db.pool.Stats(), Repl: db.clu.Master().Stats()}
}

// Metrics publishes every attached component's counters into the registry
// and returns the flattened snapshot (name → value) that the bench JSON
// output embeds. Proxy, pool and replication metrics are published here;
// external publishers (chaos, elastic) share the same registry via
// Registry().
func (db *DB) Metrics() map[string]float64 {
	db.px.PublishMetrics(db.reg)
	db.pool.PublishMetrics(db.reg)
	db.clu.Master().PublishMetrics(db.reg)
	db.reg.Gauge("repl.max_events_behind").Set(float64(db.Staleness().MaxEvents))
	return db.reg.Snapshot()
}

// Close shuts the connection pool; the cluster keeps running (databases
// outlive application handles).
func (db *DB) Close() { db.pool.Close() }
