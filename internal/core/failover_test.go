package core

import (
	"testing"
	"time"

	"cloudrepl/internal/proxy"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// TestAutomaticFailoverOnMasterCrash: with the retry policy armed, killing
// the master mid-traffic promotes a slave through the proxy's failover
// hook; client writes keep succeeding with no surfaced errors.
func TestAutomaticFailoverOnMasterCrash(t *testing.T) {
	env, db := newDB(t, 31, 2, WithRetryPolicy(proxy.DefaultRetryPolicy()))
	var failed int
	written := 0
	env.Go("app", func(p *sim.Proc) {
		for i := 0; p.Now() < 30*time.Second; i++ {
			_, err := db.Exec(p, "INSERT INTO t (id, v) VALUES (?, 'x')", sqlengine.NewInt(int64(i)))
			if err != nil {
				failed++
			} else {
				written++
			}
			p.Sleep(500 * time.Millisecond)
		}
	})
	env.Schedule(10*time.Second, func() { db.Cluster().Master().Srv.Inst.Terminate() })
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()

	if failed != 0 {
		t.Fatalf("%d writes failed across the master crash", failed)
	}
	if written == 0 {
		t.Fatal("no writes completed")
	}
	if name := db.Cluster().Master().Srv.Name; name == "master" {
		t.Fatal("cluster still headed by the dead master")
	}
	if !db.Cluster().Master().Srv.Up() {
		t.Fatal("promoted master is not up")
	}
	st := db.Stats().Proxy
	if st.Failovers != 1 {
		t.Fatalf("failovers = %d, want exactly 1: %+v", st.Failovers, st)
	}
	if st.Errors != 0 {
		t.Fatalf("proxy surfaced %d errors", st.Errors)
	}
}

// TestZeroRetryOptionPreservesLegacyFailure: without a retry policy a dead
// master still surfaces ErrNoBackend (no hidden failover).
func TestZeroRetryOptionPreservesLegacyFailure(t *testing.T) {
	env, db := newDB(t, 32, 1)
	db.Cluster().Master().Srv.Inst.Terminate()
	var err error
	env.Go("app", func(p *sim.Proc) {
		_, err = db.Exec(p, "INSERT INTO t (id, v) VALUES (1, 'x')")
	})
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()
	if err == nil {
		t.Fatal("write to a headless cluster succeeded without a failover policy")
	}
	if db.Stats().Proxy.Failovers != 0 {
		t.Fatal("failover happened without the policy")
	}
}
