package core

import (
	"cloudrepl/internal/cloud"
	"cloudrepl/internal/obs"
	"cloudrepl/internal/pool"
	"cloudrepl/internal/proxy"
)

// Option configures a replicated database handle at Open. Options compose
// left to right; a later option overrides an earlier one for the same knob.
type Option func(*config)

// config is the accumulated Open configuration. It stays private so the
// option set can grow without breaking callers.
type config struct {
	database       string
	clientPlace    cloud.Placement
	balancer       proxy.Balancer
	readYourWrites bool
	retry          proxy.RetryPolicy
	pool           pool.Config
	tracer         *obs.Tracer
	registry       *obs.Registry
	noMetrics      bool
}

// WithDatabase sets the default database for every connection.
func WithDatabase(name string) Option {
	return func(c *config) { c.database = name }
}

// WithClientPlace sets where the application tier runs; every statement pays
// the network round trip from there to its backend.
func WithClientPlace(p cloud.Placement) Option {
	return func(c *config) { c.clientPlace = p }
}

// WithBalancer sets the read balancer (default round-robin).
func WithBalancer(b proxy.Balancer) Option {
	return func(c *config) { c.balancer = b }
}

// WithReadYourWrites enables per-connection session consistency: after a
// write, that connection's reads go only to slaves that have applied it
// (master fallback otherwise).
func WithReadYourWrites() Option {
	return func(c *config) { c.readYourWrites = true }
}

// WithStalenessBound routes reads only to slaves within maxEvents binlog
// events of the master, falling back to the master otherwise. It is shorthand
// for WithBalancer(&proxy.StalenessBounded{MaxEventsBehind: maxEvents}).
func WithStalenessBound(maxEvents uint64) Option {
	return func(c *config) { c.balancer = &proxy.StalenessBounded{MaxEventsBehind: maxEvents} }
}

// WithRetryPolicy configures client-side robustness (retry with backoff,
// slave eviction, statement timeouts, automatic master failover). Without it
// the handle keeps the legacy single-attempt behaviour; use
// proxy.DefaultRetryPolicy() for the chaos-hardened defaults. When the
// policy's FailoverOnMasterDown is set, the handle wires the proxy's
// master-failure hook to cluster promotion automatically.
func WithRetryPolicy(rp proxy.RetryPolicy) Option {
	return func(c *config) { c.retry = rp }
}

// WithPool sizes the connection pool (default 64/64, wait forever).
func WithPool(cfg pool.Config) Option {
	return func(c *config) { c.pool = cfg }
}

// WithTracer wires tr through the whole data path — client handle, pool,
// proxy, cluster servers and replication threads — so every statement's
// causal chain is recorded as one trace. Tracing is off (and free) without
// this option.
func WithTracer(tr *obs.Tracer) Option {
	return func(c *config) { c.tracer = tr }
}

// WithMetrics attaches a metrics registry: the handle records client-side
// latency and errors into it live, and DB.Metrics snapshots every
// component's counters through it. Without this option DB.Metrics allocates
// a registry on first use.
func WithMetrics(reg *obs.Registry) Option {
	return func(c *config) { c.registry = reg }
}

// WithoutMetrics disables the metrics registry entirely: Registry()
// returns nil and every instrument the data path touches is a nil no-op,
// so per-statement accounting costs no allocations and no map lookups.
// For benchmarking the kernel itself, or fleets of throwaway envs.
func WithoutMetrics() Option {
	return func(c *config) { c.noMetrics = true }
}
