package core

import (
	"cloudrepl/internal/cloud"
	"cloudrepl/internal/obs"
	"cloudrepl/internal/pool"
	"cloudrepl/internal/proxy"
	"cloudrepl/internal/server"
	"cloudrepl/internal/shard"
)

// Option configures a replicated database handle at Open. Options compose
// left to right; a later option overrides an earlier one for the same knob.
type Option func(*config)

// config is the accumulated Open configuration. It stays private so the
// option set can grow without breaking callers.
type config struct {
	database       string
	clientPlace    cloud.Placement
	balancer       proxy.Balancer
	readYourWrites bool
	consistency    proxy.Consistency
	maxStaleEvents uint64
	retry          proxy.RetryPolicy
	pool           pool.Config
	tracer         *obs.Tracer
	registry       *obs.Registry
	noMetrics      bool

	// Sharded-mode knobs, consumed only by OpenSharded.
	shards             int
	shardSlots         int
	keyspace           shard.Keyspace
	partitionedPreload func(owns func(table string, key int64) bool) func(srv *server.DBServer) error
	balancerFactory    func() proxy.Balancer
}

// WithDatabase sets the default database for every connection.
func WithDatabase(name string) Option {
	return func(c *config) { c.database = name }
}

// WithClientPlace sets where the application tier runs; every statement pays
// the network round trip from there to its backend.
func WithClientPlace(p cloud.Placement) Option {
	return func(c *config) { c.clientPlace = p }
}

// WithBalancer sets the read balancer (default round-robin).
func WithBalancer(b proxy.Balancer) Option {
	return func(c *config) { c.balancer = b }
}

// WithReadYourWrites enables per-connection session consistency: after a
// write, that connection's reads go only to slaves that have applied it
// (master fallback otherwise).
func WithReadYourWrites() Option {
	return func(c *config) { c.readYourWrites = true }
}

// WithStalenessBound routes reads only to slaves within maxEvents binlog
// events of the master, falling back to the master otherwise. It is shorthand
// for WithBalancer(&proxy.StalenessBounded{MaxEventsBehind: maxEvents}).
// Passing 0 applies proxy.DefaultMaxEventsBehind; for literally-zero
// staleness use WithConsistency(proxy.Strong) or a Strict balancer.
func WithStalenessBound(maxEvents uint64) Option {
	return func(c *config) { c.balancer = &proxy.StalenessBounded{MaxEventsBehind: maxEvents} }
}

// WithConsistency selects the read-consistency tier every connection gets:
// proxy.Eventual (any slave, the default), proxy.Bounded (slaves within a
// staleness bound, see WithMaxStaleEvents), proxy.Session (read-your-writes
// via epoch-aware tokens), or proxy.Strong (master-only reads). The tier
// composes with the balancer: it filters which backends qualify, the
// balancer picks among them. In sharded mode the tier applies per cell, with
// session tokens tracked per cell.
func WithConsistency(tier proxy.Consistency) Option {
	return func(c *config) {
		c.consistency = tier
		c.readYourWrites = tier == proxy.Session
	}
}

// WithMaxStaleEvents sets the Bounded tier's staleness bound in binlog
// events (0 = proxy.DefaultMaxEventsBehind). Only meaningful with
// WithConsistency(proxy.Bounded).
func WithMaxStaleEvents(n uint64) Option {
	return func(c *config) { c.maxStaleEvents = n }
}

// WithRetryPolicy configures client-side robustness (retry with backoff,
// slave eviction, statement timeouts, automatic master failover). Without it
// the handle keeps the legacy single-attempt behaviour; use
// proxy.DefaultRetryPolicy() for the chaos-hardened defaults. When the
// policy's FailoverOnMasterDown is set, the handle wires the proxy's
// master-failure hook to cluster promotion automatically.
func WithRetryPolicy(rp proxy.RetryPolicy) Option {
	return func(c *config) { c.retry = rp }
}

// WithPool sizes the connection pool (default 64/64, wait forever).
func WithPool(cfg pool.Config) Option {
	return func(c *config) { c.pool = cfg }
}

// WithTracer wires tr through the whole data path — client handle, pool,
// proxy, cluster servers and replication threads — so every statement's
// causal chain is recorded as one trace. Tracing is off (and free) without
// this option.
func WithTracer(tr *obs.Tracer) Option {
	return func(c *config) { c.tracer = tr }
}

// WithMetrics attaches a metrics registry: the handle records client-side
// latency and errors into it live, and DB.Metrics snapshots every
// component's counters through it. Without this option DB.Metrics allocates
// a registry on first use.
func WithMetrics(reg *obs.Registry) Option {
	return func(c *config) { c.registry = reg }
}

// WithoutMetrics disables the metrics registry entirely: Registry()
// returns nil and every instrument the data path touches is a nil no-op,
// so per-statement accounting costs no allocations and no map lookups.
// For benchmarking the kernel itself, or fleets of throwaway envs.
func WithoutMetrics() Option {
	return func(c *config) { c.noMetrics = true }
}

// WithShards sets the initial cell count for OpenSharded. Ignored by Open.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithShardSlots sets the hash-slot count of the shard map (default 64);
// it bounds how many cells the deployment can grow to.
func WithShardSlots(n int) Option {
	return func(c *config) { c.shardSlots = n }
}

// WithKeyspace declares which tables are sharded on which integer key
// column (and which are replicated globally); see shard.Keyspace.
func WithKeyspace(ks shard.Keyspace) Option {
	return func(c *config) { c.keyspace = ks }
}

// WithPartitionedPreload installs a preload builder for sharded cells:
// each cell preloads exactly the rows the ownership predicate grants it.
// cloudstone.PreloadOwned composes directly with this.
func WithPartitionedPreload(f func(owns func(table string, key int64) bool) func(srv *server.DBServer) error) Option {
	return func(c *config) { c.partitionedPreload = f }
}

// WithBalancerFactory sets the per-cell read balancer constructor for
// OpenSharded (balancers keep per-slave state, so cells cannot share one
// instance). Default: a round-robin per cell.
func WithBalancerFactory(f func() proxy.Balancer) Option {
	return func(c *config) { c.balancerFactory = f }
}
