package core

import (
	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/pool"
	"cloudrepl/internal/proxy"
)

// Options is the legacy struct-based Open configuration.
//
// Deprecated: use Open with functional options (WithDatabase, WithBalancer,
// WithRetryPolicy, ...). This shim remains so existing callers keep
// compiling; it cannot express the observability knobs (WithTracer,
// WithMetrics).
type Options struct {
	// Database is the default database for every connection.
	Database string
	// ClientPlace is where the application tier runs.
	ClientPlace cloud.Placement
	// Balancer distributes reads over slaves (default round-robin).
	Balancer proxy.Balancer
	// ReadYourWrites enables per-connection session consistency.
	ReadYourWrites bool
	// Retry configures client-side robustness.
	Retry proxy.RetryPolicy
	// Pool sizes the connection pool (default 64/64, wait forever).
	Pool pool.Config
}

// OpenOptions wires a handle onto a running cluster from the legacy Options
// struct.
//
// Deprecated: use Open(clu, core.WithDatabase(...), ...).
func OpenOptions(clu *cluster.Cluster, opts Options) *DB {
	return openConfig(clu, config{
		database:       opts.Database,
		clientPlace:    opts.ClientPlace,
		balancer:       opts.Balancer,
		readYourWrites: opts.ReadYourWrites,
		retry:          opts.Retry,
		pool:           opts.Pool,
	})
}
