package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/shard"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// shardedPreload is a partitioned preload over a tiny kv schema: each cell
// creates the full schema but inserts only the rows it owns.
func shardedPreload(rows int) func(owns func(table string, key int64) bool) func(*server.DBServer) error {
	return func(owns func(table string, key int64) bool) func(*server.DBServer) error {
		return func(srv *server.DBServer) error {
			sess := srv.Session("")
			for _, sql := range []string{
				"CREATE DATABASE app",
				"USE app",
				"CREATE TABLE kv (id BIGINT PRIMARY KEY, v VARCHAR(20))",
			} {
				if _, err := srv.ExecFree(sess, sql); err != nil {
					return err
				}
			}
			for i := 1; i <= rows; i++ {
				if !owns("kv", int64(i)) {
					continue
				}
				if _, err := srv.ExecFree(sess, "INSERT INTO kv (id, v) VALUES (?, 'seed')",
					sqlengine.NewInt(int64(i))); err != nil {
					return err
				}
			}
			return nil
		}
	}
}

func openSharded(t *testing.T, seed int64, cells, rows int) (*sim.Env, *DB) {
	t.Helper()
	env := sim.NewEnv(seed)
	cl := cloud.New(env, cloud.Config{})
	place := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	db, err := OpenSharded(env, cl, cluster.Config{
		Mode:   repl.Async,
		Cost:   server.DefaultCostModel(),
		Master: cluster.NodeSpec{Place: place},
		Slaves: []cluster.NodeSpec{{Place: place}},
	},
		WithShards(cells),
		WithDatabase("app"),
		WithClientPlace(place),
		WithKeyspace(shard.Keyspace{Key: map[string]string{"kv": "id"}}),
		WithPartitionedPreload(shardedPreload(rows)),
	)
	if err != nil {
		t.Fatal(err)
	}
	return env, db
}

// TestShardedHandleSurface: the core handle works unchanged against a
// sharded tier — Exec/Query route, Scale spreads replicas across cells,
// SplitShard grows the tier, and single-cluster-only calls refuse cleanly.
func TestShardedHandleSurface(t *testing.T) {
	const rows = 40
	env, db := openSharded(t, 21, 2, rows)

	env.Go("client", func(p *sim.Proc) {
		// Single-key write and read-back through the routed path.
		if _, err := db.Exec(p, "INSERT INTO kv (id, v) VALUES (?, 'new')",
			sqlengine.NewInt(int64(rows+1))); err != nil {
			t.Errorf("routed insert: %v", err)
			return
		}
		rs, err := db.Query(p, "SELECT v FROM kv WHERE id = ?", sqlengine.NewInt(int64(rows+1)))
		if err != nil || len(rs.Rows) != 1 || rs.Rows[0][0].Str() != "new" {
			t.Errorf("routed read-back: rows=%v err=%v", rs, err)
			return
		}
		// Scatter-gather sees the union of all cells.
		rs, err = db.Query(p, "SELECT COUNT(*) FROM kv")
		if err != nil || len(rs.Rows) != 1 {
			t.Errorf("scatter count: %v err=%v", rs, err)
			return
		}
		if got := rs.Rows[0][0].Int(); got != rows+1 {
			t.Errorf("COUNT(*) = %d, want %d", got, rows+1)
		}

		// Scale(+2) must spread replicas, not stack them on one cell.
		place := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
		if err := db.Scale(p, 2, ScaleOpts{Spec: cluster.NodeSpec{Place: place}}); err != nil {
			t.Errorf("scale out: %v", err)
			return
		}
		for _, c := range db.Shards().Cells() {
			if n := len(c.Clu.Master().Slaves()); n != 2 {
				t.Errorf("cell %d has %d slaves after spread scale-out, want 2", c.ID, n)
			}
		}
		if err := db.Scale(p, -1, ScaleOpts{Drain: time.Second}); err != nil {
			t.Errorf("scale in: %v", err)
		}

		// Online split: one more cell, no lost rows.
		rep, err := db.SplitShard(p)
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		if rep.Aborted || db.Shards().NumCells() != 3 {
			t.Errorf("split report %+v, cells = %d", rep, db.Shards().NumCells())
		}
		// Scatter legs read from slaves (async replication), so the new
		// cell's replica converges on the copied rows shortly after cutover.
		deadline := p.Now() + sim.Time(30*time.Second)
		for {
			rs, err = db.Query(p, "SELECT COUNT(*) FROM kv")
			if err == nil && rs.Rows[0][0].Int() == rows+1 {
				break
			}
			if p.Now() >= deadline {
				t.Errorf("post-split COUNT = %v err=%v, want %d", rs, err, rows+1)
				break
			}
			p.Sleep(500 * time.Millisecond)
		}

		// Single-cluster-only surface refuses with a typed error.
		if err := db.Failover(); !errors.Is(err, ErrSharded) {
			t.Errorf("Failover on sharded handle: %v, want ErrSharded", err)
		}
	})
	env.RunUntil(10 * time.Minute)
	env.Stop()
	env.Shutdown()

	st := db.Stats()
	if st.Shard.SingleKey == 0 || st.Shard.ScatterOps == 0 {
		t.Errorf("Stats().Shard not populated: %+v", st.Shard)
	}
	if st.Shard.Splits != 1 {
		t.Errorf("Stats().Shard.Splits = %d, want 1", st.Shard.Splits)
	}
	if st.Proxy.Errors != 0 {
		t.Errorf("aggregated proxy errors = %d, want 0", st.Proxy.Errors)
	}

	// Per-cell metric namespacing: every cell's components publish under
	// shard.cell<i>.* in the handle's registry.
	snap := db.Metrics()
	for i := 0; i < db.Shards().NumCells(); i++ {
		name := fmt.Sprintf("shard.cell%d.proxy.reads", i)
		if _, ok := snap[name]; !ok {
			t.Errorf("metric %q not published", name)
		}
	}
}
