package core

import (
	"testing"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/pool"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
)

// TestOpenOptionsShim keeps the deprecated struct-based entry point working:
// a handle opened through OpenOptions must behave exactly like one opened
// through the functional-options Open it delegates to.
func TestOpenOptionsShim(t *testing.T) {
	env := sim.NewEnv(1)
	c := cloud.New(env, cloud.Config{})
	place := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	clu, err := cluster.New(env, c, cluster.Config{
		Mode:    repl.Async,
		Cost:    server.DefaultCostModel(),
		Master:  cluster.NodeSpec{Place: place},
		Slaves:  []cluster.NodeSpec{{Place: place}},
		Preload: preload,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := OpenOptions(clu, Options{
		Database:       "app",
		ClientPlace:    place,
		ReadYourWrites: true,
		Pool:           pool.Config{MaxActive: 4, MaxIdle: 4},
	})
	env.Go("app", func(p *sim.Proc) {
		if _, err := db.Exec(p, "INSERT INTO t (id, v) VALUES (1, 'legacy')"); err != nil {
			t.Errorf("exec: %v", err)
			return
		}
		set, err := db.Query(p, "SELECT v FROM t WHERE id = 1")
		if err != nil {
			t.Errorf("query: %v", err)
			return
		}
		if len(set.Rows) != 1 || set.Rows[0][0].Str() != "legacy" {
			t.Errorf("read-your-writes through the shim returned %v", set.Rows)
		}
	})
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()

	// The shim cannot set a tracer, but the registry must still exist so
	// Metrics() works on legacy handles.
	if db.Registry() == nil {
		t.Fatal("legacy handle has no registry")
	}
	if db.Metrics()["proxy.writes"] != 1 {
		t.Fatalf("metrics through the shim: %v", db.Metrics()["proxy.writes"])
	}
}
