package heartbeat

import (
	"fmt"
	"testing"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
)

// hbRig builds master + N slaves with the heartbeat schema, optionally
// with skewed slave clocks.
func hbRig(t *testing.T, seed int64, nSlaves int, slaveOffset time.Duration) (*sim.Env, *repl.Master) {
	t.Helper()
	env := sim.NewEnv(seed)
	lat := cloud.DefaultLatencies()
	lat.JitterSigma = 0
	c := cloud.New(env, cloud.Config{Network: cloud.NewNetwork(env, lat)})
	place := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	mSrv := server.New(env, "master", c.Launch("m", cloud.Small, place), server.DefaultCostModel())
	if err := Preload(mSrv); err != nil {
		t.Fatal(err)
	}
	m := repl.NewMaster(env, mSrv, c.Network(), repl.Async)
	for i := 0; i < nSlaves; i++ {
		inst := c.Launch(fmt.Sprintf("s%d", i), cloud.Small, place)
		inst.Clock.SetOffset(slaveOffset)
		sSrv := server.New(env, fmt.Sprintf("s%d", i), inst, server.DefaultCostModel())
		if err := Preload(sSrv); err != nil {
			t.Fatal(err)
		}
		m.Attach(repl.NewSlave(env, sSrv), mSrv.Log.LastSeq())
	}
	return env, m
}

func TestPluginInsertsEverySecond(t *testing.T) {
	env, m := hbRig(t, 1, 1, 0)
	pl := Start(env, m, time.Second)
	env.RunUntil(10500 * time.Millisecond)
	if pl.Count() < 10 || pl.Count() > 11 {
		t.Fatalf("heartbeats in 10.5s: %d", pl.Count())
	}
	pl.Stop()
	env.RunUntil(20 * time.Second)
	env.Stop()
	env.Shutdown()
}

func TestSlaveDelaysArePositiveAndIncludeNetwork(t *testing.T) {
	env, m := hbRig(t, 2, 1, 0)
	pl := Start(env, m, time.Second)
	env.RunUntil(30 * time.Second)
	pl.Stop()
	env.RunUntil(40 * time.Second)
	sl := m.Slaves()[0]
	ids := pl.IDsInWindow(0, 30*time.Second)
	delays, missing, err := SlaveDelays(m, sl, ids)
	if err != nil {
		t.Fatal(err)
	}
	if missing != 0 {
		t.Fatalf("missing = %d on an idle slave", missing)
	}
	if len(delays) != len(ids) {
		t.Fatalf("delays = %d, ids = %d", len(delays), len(ids))
	}
	// Idle path: delay ≈ one-way 16ms + relay + apply (≈41ms apply cost).
	for _, d := range delays {
		if d < 16 || d > 200 {
			t.Fatalf("idle delay %v ms outside plausible range", d)
		}
	}
	env.Stop()
	env.Shutdown()
}

func TestClockSkewPollutesRawDelay(t *testing.T) {
	// A slave whose clock is 10s ahead reports ~10s of spurious delay —
	// the phenomenon that forces the paper's relative measurement.
	env, m := hbRig(t, 3, 1, 10*time.Second)
	pl := Start(env, m, time.Second)
	env.RunUntil(30 * time.Second)
	pl.Stop()
	env.RunUntil(40 * time.Second)
	ids := pl.IDsInWindow(0, 30*time.Second)
	avg, err := AvgDelay(m, m.Slaves()[0], ids)
	if err != nil {
		t.Fatal(err)
	}
	if avg < 9000 || avg > 11000 {
		t.Fatalf("skewed raw delay = %v ms, want ≈10000", avg)
	}
	// The relative computation cancels the offset: measure a baseline with
	// the same skew and subtract.
	if rel := RelativeDelay(avg, avg); rel != 0 {
		t.Fatalf("relative delay of identical runs = %v", rel)
	}
	env.Stop()
	env.Shutdown()
}

func TestAvgDelayAccountsForUnappliedHeartbeats(t *testing.T) {
	env, m := hbRig(t, 4, 1, 0)
	pl := Start(env, m, time.Second)
	env.RunUntil(5 * time.Second)
	sl := m.Slaves()[0]
	sl.Stop() // freeze replication: later heartbeats never apply
	env.RunUntil(30 * time.Second)
	pl.Stop()
	env.RunUntil(31 * time.Second)
	ids := pl.IDsInWindow(0, 30*time.Second)
	delays, missing, err := SlaveDelays(m, sl, ids)
	if err != nil {
		t.Fatal(err)
	}
	if missing == 0 {
		t.Fatal("expected missing heartbeats on a frozen slave")
	}
	if len(delays) == 0 {
		t.Fatal("early heartbeats should have applied")
	}
	env.Stop()
	env.Shutdown()
}

func TestIDsInWindow(t *testing.T) {
	env, m := hbRig(t, 5, 0, 0)
	pl := Start(env, m, time.Second)
	env.RunUntil(20 * time.Second)
	pl.Stop()
	env.Run()
	all := pl.IDsInWindow(0, sim.MaxTime)
	mid := pl.IDsInWindow(5*time.Second, 10*time.Second)
	if len(mid) >= len(all) || len(mid) == 0 {
		t.Fatalf("window filtering broken: %d of %d", len(mid), len(all))
	}
	env.Stop()
	env.Shutdown()
}

func TestPreloadIdempotent(t *testing.T) {
	env := sim.NewEnv(6)
	c := cloud.New(env, cloud.Config{})
	srv := server.New(env, "m", c.Launch("m", cloud.Small, cloud.Placement{Region: cloud.USWest1, Zone: "a"}), server.DefaultCostModel())
	if err := Preload(srv); err != nil {
		t.Fatal(err)
	}
	if err := Preload(srv); err != nil {
		t.Fatalf("second preload: %v", err)
	}
}
