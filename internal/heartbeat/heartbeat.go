// Package heartbeat implements the paper's replication-delay measurement
// methodology (§III-A): a dedicated Heartbeats database whose heartbeat
// table receives a row with a global id and a *local* microsecond timestamp
// every second on the master. Statement-based replication re-executes the
// INSERT on each slave, committing the slave's own local timestamp for the
// same id; the per-row difference is that slave's replication delay for
// that heartbeat (polluted by clock offset, which the relative-delay
// computation cancels out).
package heartbeat

import (
	"fmt"
	"time"

	"cloudrepl/internal/metrics"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// DatabaseName is the dedicated heartbeat database.
const DatabaseName = "heartbeats"

// Preload installs the heartbeat schema on a server; the cluster preload
// must run it on the master and every slave.
func Preload(srv *server.DBServer) error {
	sess := srv.Session("")
	for _, sql := range []string{
		"CREATE DATABASE IF NOT EXISTS " + DatabaseName,
		"CREATE TABLE IF NOT EXISTS " + DatabaseName + ".heartbeat (id BIGINT PRIMARY KEY, ts TIMESTAMP(6) NOT NULL)",
	} {
		if _, err := srv.ExecFree(sess, sql); err != nil {
			return fmt.Errorf("heartbeat: preload: %w", err)
		}
	}
	return nil
}

// Plugin periodically inserts heartbeat rows on the master.
type Plugin struct {
	master   *repl.Master
	interval time.Duration

	nextID   int64
	firstID  int64
	lastID   int64
	inserted map[int64]sim.Time // id → virtual insert time
	stopped  bool
}

// Start launches the heartbeat process, inserting one row per interval.
func Start(env *sim.Env, master *repl.Master, interval time.Duration) *Plugin {
	pl := &Plugin{master: master, interval: interval, nextID: 1, firstID: 1, inserted: make(map[int64]sim.Time)}
	sess := master.Srv.Session(DatabaseName)
	env.Go("heartbeat", func(p *sim.Proc) {
		for !pl.stopped && master.Srv.Up() {
			id := pl.nextID
			pl.nextID++
			// The UTC_MICROS() builtin is evaluated per executing server:
			// master time here, slave time on re-execution.
			_, err := master.Srv.Exec(p, sess, "INSERT INTO heartbeat (id, ts) VALUES (?, UTC_MICROS())",
				sqlengine.NewInt(id))
			if err == nil {
				pl.inserted[id] = p.Now()
				pl.lastID = id
			}
			p.Sleep(pl.interval)
		}
	})
	return pl
}

// Stop halts the plugin after its current beat.
func (pl *Plugin) Stop() { pl.stopped = true }

// Count returns the number of successfully inserted heartbeats.
func (pl *Plugin) Count() int { return len(pl.inserted) }

// IDsInWindow returns heartbeat ids whose insert time fell in [from, to).
func (pl *Plugin) IDsInWindow(from, to sim.Time) []int64 {
	var out []int64
	for id := pl.firstID; id < pl.nextID; id++ {
		at, ok := pl.inserted[id]
		if ok && at >= from && at < to {
			out = append(out, id)
		}
	}
	return out
}

// SlaveDelays reads the master and slave heartbeat tables directly (a
// measurement-plane read, no CPU charged) and returns the per-id delay
// slaveTs − masterTs, in milliseconds, for the given ids. Heartbeats not
// yet applied on the slave are skipped — their delay is still unbounded —
// and the skipped count is reported so callers can account for them.
func SlaveDelays(master *repl.Master, sl *repl.Slave, ids []int64) (delaysMs []float64, missing int, err error) {
	mTs, err := tableTimestamps(master.Srv, ids)
	if err != nil {
		return nil, 0, err
	}
	sTs, err := tableTimestamps(sl.Srv, ids)
	if err != nil {
		return nil, 0, err
	}
	for _, id := range ids {
		m, okM := mTs[id]
		s, okS := sTs[id]
		if !okM {
			continue
		}
		if !okS {
			missing++
			continue
		}
		delaysMs = append(delaysMs, float64(s-m)/1000.0)
	}
	return delaysMs, missing, nil
}

func tableTimestamps(srv *server.DBServer, ids []int64) (map[int64]int64, error) {
	sess := srv.Session(DatabaseName)
	out := make(map[int64]int64, len(ids))
	for _, id := range ids {
		set, err := sess.Query("SELECT ts FROM heartbeat WHERE id = ?", sqlengine.NewInt(id))
		if err != nil {
			return nil, fmt.Errorf("heartbeat: read ts: %w", err)
		}
		if len(set.Rows) == 1 {
			out[id] = set.Rows[0][0].Micros()
		}
	}
	return out, nil
}

// PaddedDelays returns the per-id delays with every unapplied heartbeat
// substituted by the worst observed delay, so a badly backlogged slave is
// not reported as fast merely because samples are missing. This is the raw
// sample set behind both the paper's trimmed-mean estimator and the
// pipeline ablation's p95.
func PaddedDelays(master *repl.Master, sl *repl.Slave, ids []int64) ([]float64, error) {
	delays, missing, err := SlaveDelays(master, sl, ids)
	if err != nil {
		return nil, err
	}
	if len(delays) == 0 {
		if missing > 0 {
			return nil, fmt.Errorf("heartbeat: no heartbeat applied on %s (%d outstanding)", sl.Srv.Name, missing)
		}
		return nil, fmt.Errorf("heartbeat: no samples")
	}
	if missing > 0 {
		worst := delays[0]
		for _, d := range delays {
			if d > worst {
				worst = d
			}
		}
		for i := 0; i < missing; i++ {
			delays = append(delays, worst)
		}
	}
	return delays, nil
}

// AvgDelay is the paper's estimator: the mean of per-id delays after
// trimming the top and bottom 5%. Unapplied heartbeats are assigned the
// worst observed delay (see PaddedDelays).
func AvgDelay(master *repl.Master, sl *repl.Slave, ids []int64) (ms float64, err error) {
	delays, err := PaddedDelays(master, sl, ids)
	if err != nil {
		return 0, err
	}
	return metrics.TrimmedMean(delays, 0.05), nil
}

// Staleness is the pt-heartbeat-style probe: how long ago was the oldest
// heartbeat the slave has *not* yet applied inserted on the master (0 when
// fully caught up). Unlike SlaveDelays it needs no clock subtraction — it
// compares the slave's table contents against the plugin's own insert log
// on the virtual timeline. internal/elastic steers on the binlog-timestamp
// variant of this same signal; this probe is the operator-visible
// cross-check.
func (pl *Plugin) Staleness(sl *repl.Slave, now sim.Time) (time.Duration, error) {
	if pl.lastID == 0 {
		return 0, nil
	}
	sess := sl.Srv.Session(DatabaseName)
	newestApplied := int64(0)
	for id := pl.lastID; id >= pl.firstID; id-- {
		set, err := sess.Query("SELECT ts FROM heartbeat WHERE id = ?", sqlengine.NewInt(id))
		if err != nil {
			return 0, fmt.Errorf("heartbeat: staleness probe: %w", err)
		}
		if len(set.Rows) == 1 {
			newestApplied = id
			break
		}
	}
	if newestApplied == pl.lastID {
		return 0, nil
	}
	at, ok := pl.inserted[newestApplied+1]
	if !ok {
		return 0, fmt.Errorf("heartbeat: no insert record for id %d", newestApplied+1)
	}
	d := time.Duration(now - at)
	if d < 0 {
		d = 0
	}
	return d, nil
}

// RelativeDelay subtracts the unloaded baseline from the loaded average —
// the paper's trick to cancel inter-instance clock offsets (§IV-B.1).
func RelativeDelay(loadedMs, unloadedMs float64) float64 { return loadedMs - unloadedMs }
