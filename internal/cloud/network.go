package cloud

import (
	"sort"
	"time"

	"cloudrepl/internal/sim"
)

// Latencies is the base one-way (half-RTT) latency model between
// placements. Lookups fall through: exact zone pair, region pair (either
// order), then class defaults.
type Latencies struct {
	// SameInstance is the loopback latency (client co-located with server).
	SameInstance time.Duration
	// SameZone is the one-way latency between two instances in one
	// availability zone.
	SameZone time.Duration
	// SameRegion is the one-way latency between zones of one region.
	SameRegion time.Duration
	// CrossRegion is the default one-way latency between regions without an
	// explicit pair entry.
	CrossRegion time.Duration
	// RegionPairs overrides CrossRegion for specific region pairs
	// (unordered).
	RegionPairs map[[2]Region]time.Duration
	// JitterSigma is the σ of the log-normal multiplicative jitter applied
	// to each sampled latency (0 disables jitter).
	JitterSigma float64
}

// DefaultLatencies reproduces the paper's measured one-way latencies
// (§IV-B.2): 16 ms within an availability zone, 21 ms across zones of one
// region, and 173 ms between us-west-1 and eu-west-1 (their different-region
// configuration), with plausible values for the remaining pairs so that the
// four different-region choices average near the reported 173 ms.
func DefaultLatencies() Latencies {
	return Latencies{
		SameInstance: 200 * time.Microsecond,
		SameZone:     16 * time.Millisecond,
		SameRegion:   21 * time.Millisecond,
		CrossRegion:  173 * time.Millisecond,
		RegionPairs: map[[2]Region]time.Duration{
			{USWest1, EUWest1}:      173 * time.Millisecond,
			{USWest1, USEast1}:      80 * time.Millisecond,
			{USWest1, APSoutheast1}: 205 * time.Millisecond,
			{USWest1, APNortheast1}: 145 * time.Millisecond,
			{USEast1, EUWest1}:      92 * time.Millisecond,
		},
		JitterSigma: 0.08,
	}
}

// Base returns the deterministic one-way latency between two placements.
func (l Latencies) Base(a, b Placement) time.Duration {
	switch {
	case a == b:
		return l.SameZone
	case a.Region == b.Region:
		return l.SameRegion
	default:
		if d, ok := l.RegionPairs[[2]Region{a.Region, b.Region}]; ok {
			return d
		}
		if d, ok := l.RegionPairs[[2]Region{b.Region, a.Region}]; ok {
			return d
		}
		return l.CrossRegion
	}
}

// PathFault is transient fault state injected on one unordered placement
// pair: a full partition (no packet crosses until healed) and/or a latency
// spike (extra one-way latency plus extra log-normal jitter).
type PathFault struct {
	Partitioned bool
	// ExtraLatency is added to every sampled one-way latency on the path.
	ExtraLatency time.Duration
	// ExtraJitterSigma is added to the model's JitterSigma on the path.
	ExtraJitterSigma float64
}

func (f PathFault) clear() bool {
	return !f.Partitioned && f.ExtraLatency == 0 && f.ExtraJitterSigma == 0
}

// pathKey is an unordered placement pair.
func pathKey(a, b Placement) [2]Placement {
	if b.Region < a.Region || (b.Region == a.Region && b.Zone < a.Zone) {
		a, b = b, a
	}
	return [2]Placement{a, b}
}

// Network samples message latencies on the virtual timeline and carries
// injectable per-path fault state (partitions, latency spikes).
type Network struct {
	env    *sim.Env
	lat    Latencies
	faults map[[2]Placement]PathFault
}

// NewNetwork creates a network bound to env with the given latency model.
func NewNetwork(env *sim.Env, lat Latencies) *Network {
	return &Network{env: env, lat: lat, faults: make(map[[2]Placement]PathFault)}
}

// Latencies returns the base latency model.
func (n *Network) Latencies() Latencies { return n.lat }

// Fault returns the current fault state on the a↔b path.
func (n *Network) Fault(a, b Placement) PathFault { return n.faults[pathKey(a, b)] }

func (n *Network) setFault(a, b Placement, mutate func(*PathFault)) {
	k := pathKey(a, b)
	f := n.faults[k]
	mutate(&f)
	if f.clear() {
		delete(n.faults, k)
		return
	}
	n.faults[k] = f
}

// Partition cuts the a↔b path in both directions until Heal.
func (n *Network) Partition(a, b Placement) {
	n.setFault(a, b, func(f *PathFault) { f.Partitioned = true })
}

// Heal restores connectivity on the a↔b path (latency spikes persist).
func (n *Network) Heal(a, b Placement) {
	n.setFault(a, b, func(f *PathFault) { f.Partitioned = false })
}

// Reachable reports whether packets currently cross the a↔b path.
func (n *Network) Reachable(a, b Placement) bool { return !n.Fault(a, b).Partitioned }

// SpikeLatency injects extra one-way latency and extra jitter on the a↔b
// path until ClearSpike — a congested or flapping link.
func (n *Network) SpikeLatency(a, b Placement, extra time.Duration, extraJitterSigma float64) {
	n.setFault(a, b, func(f *PathFault) {
		f.ExtraLatency = extra
		f.ExtraJitterSigma = extraJitterSigma
	})
}

// ClearSpike removes an injected latency spike from the a↔b path.
func (n *Network) ClearSpike(a, b Placement) {
	n.setFault(a, b, func(f *PathFault) {
		f.ExtraLatency = 0
		f.ExtraJitterSigma = 0
	})
}

// OneWay samples a one-way latency between two placements, including any
// injected latency spike on the path.
func (n *Network) OneWay(a, b Placement) time.Duration {
	base := n.lat.Base(a, b)
	sigma := n.lat.JitterSigma
	if f, ok := n.faults[pathKey(a, b)]; ok {
		base += f.ExtraLatency
		sigma += f.ExtraJitterSigma
	}
	if sigma <= 0 {
		return base
	}
	return sim.LogNormal(n.env.Rand(), base, sigma)
}

// Transit suspends the calling process for one sampled one-way latency —
// the client side of a synchronous request or response leg. It ignores
// partitions; callers that need partition awareness use TransitTimeout.
func (n *Network) Transit(p *sim.Proc, a, b Placement) {
	p.Sleep(n.OneWay(a, b))
}

// DefaultTransitTimeout bounds a synchronous leg over a partitioned path
// when the caller supplies no explicit timeout.
const DefaultTransitTimeout = 10 * time.Second

// TransitTimeout is Transit for callers that must not hang on a partitioned
// path: when a→b is reachable it sleeps one sampled latency and reports
// true; when partitioned it sleeps the timeout (DefaultTransitTimeout when
// zero) and reports false — the client waiting out a dead TCP connection.
func (n *Network) TransitTimeout(p *sim.Proc, a, b Placement, timeout time.Duration) bool {
	if n.Reachable(a, b) {
		p.Sleep(n.OneWay(a, b))
		return true
	}
	if timeout <= 0 {
		timeout = DefaultTransitTimeout
	}
	p.Sleep(timeout)
	return false
}

// queuedPut is Send's in-flight message: the payload and the arrival-side
// partition check in one allocation, handed to the kernel as a Deliverable
// so no delivery closure is built per message.
type queuedPut[T any] struct {
	n    *Network
	a, b Placement
	q    *sim.Queue[T]
	v    T
}

func (m *queuedPut[T]) Deliver() {
	if m.n.Reachable(m.a, m.b) {
		m.q.Put(m.v)
	}
}

// Send delivers v into q after a sampled one-way latency without blocking
// the caller — the asynchronous replication stream. Delivery order between
// two sends on the same pair may invert only if jitter reorders them;
// ordered protocols (like the binlog stream) serialize on the receiving
// queue position instead, so callers needing FIFO should use SendOrdered.
// Sends on a partitioned path are dropped (at dispatch or at arrival).
func Send[T any](n *Network, a, b Placement, q *sim.Queue[T], v T) {
	if !n.Reachable(a, b) {
		return
	}
	n.env.ScheduleDeliver(n.OneWay(a, b), &queuedPut[T]{n: n, a: a, b: b, q: q, v: v})
}

// unicastMsg is Unicast's in-flight message; see queuedPut.
type unicastMsg struct {
	n       *Network
	a, b    Placement
	deliver func()
}

func (m *unicastMsg) Deliver() {
	if m.n.Reachable(m.a, m.b) {
		m.deliver()
	}
}

// Unicast runs deliver after a sampled one-way latency, dropping the
// message if the a→b path is partitioned when it is sent or when it would
// arrive — datagram semantics for acknowledgements and probes.
func Unicast(n *Network, a, b Placement, deliver func()) {
	if !n.Reachable(a, b) {
		return
	}
	n.env.ScheduleDeliver(n.OneWay(a, b), &unicastMsg{n: n, a: a, b: b, deliver: deliver})
}

// PipeRetryInterval is how often a Pipe re-probes a partitioned path for
// its blocked head-of-line message (TCP retransmission cadence).
const PipeRetryInterval = 500 * time.Millisecond

// Pipe is a FIFO network channel between two placements: messages arrive
// exactly in send order, each delayed by at least the sampled latency
// (TCP-like ordering). When the path is partitioned the stream blocks —
// messages queue inside the pipe and drain in order once the partition
// heals, like TCP retransmitting an unacknowledged segment.
type Pipe[T any] struct {
	net      *Network
	from, to Placement
	q        *sim.Queue[T]
	lastAt   sim.Time

	pending []pipeMsg[T] // in-flight messages, FIFO
	pumping bool
	pumpFn  func() // pump as a func value, built once — not per reschedule
}

type pipeMsg[T any] struct {
	v  T
	at sim.Time // earliest arrival (send time + sampled latency)
}

// NewPipe creates an ordered channel delivering into q.
func NewPipe[T any](n *Network, from, to Placement, q *sim.Queue[T]) *Pipe[T] {
	pp := &Pipe[T]{net: n, from: from, to: to, q: q}
	pp.pumpFn = pp.pump
	return pp
}

// Send enqueues v for ordered delivery.
func (pp *Pipe[T]) Send(v T) {
	at := pp.net.env.Now() + pp.net.OneWay(pp.from, pp.to)
	if at < pp.lastAt {
		at = pp.lastAt // preserve FIFO despite jitter
	}
	pp.lastAt = at
	pp.pending = append(pp.pending, pipeMsg[T]{v: v, at: at})
	if !pp.pumping {
		pp.pumping = true
		pp.net.env.After(at-pp.net.env.Now(), pp.pumpFn)
	}
}

// pump delivers the head-of-line message once its arrival time has passed
// and the path is reachable, then reschedules itself for the next one.
func (pp *Pipe[T]) pump() {
	now := pp.net.env.Now()
	if len(pp.pending) == 0 {
		pp.pumping = false
		return
	}
	head := pp.pending[0]
	if now < head.at {
		pp.net.env.After(head.at-now, pp.pumpFn)
		return
	}
	if !pp.net.Reachable(pp.from, pp.to) {
		pp.net.env.After(PipeRetryInterval, pp.pumpFn)
		return
	}
	pp.q.Put(head.v)
	pp.pending = pp.pending[1:]
	if len(pp.pending) == 0 {
		pp.pumping = false
		return
	}
	next := pp.pending[0].at
	if next < now {
		next = now
	}
	pp.net.env.After(next-now, pp.pumpFn)
}

// InFlight returns the number of sent-but-undelivered messages.
func (pp *Pipe[T]) InFlight() int { return len(pp.pending) }

// Queue returns the delivery queue.
func (pp *Pipe[T]) Queue() *sim.Queue[T] { return pp.q }

// PingStats summarizes a ping run.
type PingStats struct {
	Samples []time.Duration
	Mean    time.Duration
	Median  time.Duration
	Min     time.Duration
	Max     time.Duration
}

// Ping measures full round-trip times between two placements, one probe per
// interval, for the given count, like running `ping` for 20 minutes as the
// paper did. It must be called from a simulation process.
func Ping(p *sim.Proc, n *Network, a, b Placement, count int, interval time.Duration) PingStats {
	st := PingStats{Min: time.Duration(1<<63 - 1)}
	for i := 0; i < count; i++ {
		rtt := n.OneWay(a, b) + n.OneWay(b, a)
		st.Samples = append(st.Samples, rtt)
		if rtt < st.Min {
			st.Min = rtt
		}
		if rtt > st.Max {
			st.Max = rtt
		}
		p.Sleep(interval)
	}
	var sum time.Duration
	sorted := append([]time.Duration(nil), st.Samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, d := range sorted {
		sum += d
	}
	if len(sorted) > 0 {
		st.Mean = sum / time.Duration(len(sorted))
		st.Median = sorted[len(sorted)/2]
	}
	return st
}
