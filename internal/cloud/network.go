package cloud

import (
	"sort"
	"time"

	"cloudrepl/internal/sim"
)

// Latencies is the base one-way (half-RTT) latency model between
// placements. Lookups fall through: exact zone pair, region pair (either
// order), then class defaults.
type Latencies struct {
	// SameInstance is the loopback latency (client co-located with server).
	SameInstance time.Duration
	// SameZone is the one-way latency between two instances in one
	// availability zone.
	SameZone time.Duration
	// SameRegion is the one-way latency between zones of one region.
	SameRegion time.Duration
	// CrossRegion is the default one-way latency between regions without an
	// explicit pair entry.
	CrossRegion time.Duration
	// RegionPairs overrides CrossRegion for specific region pairs
	// (unordered).
	RegionPairs map[[2]Region]time.Duration
	// JitterSigma is the σ of the log-normal multiplicative jitter applied
	// to each sampled latency (0 disables jitter).
	JitterSigma float64
}

// DefaultLatencies reproduces the paper's measured one-way latencies
// (§IV-B.2): 16 ms within an availability zone, 21 ms across zones of one
// region, and 173 ms between us-west-1 and eu-west-1 (their different-region
// configuration), with plausible values for the remaining pairs so that the
// four different-region choices average near the reported 173 ms.
func DefaultLatencies() Latencies {
	return Latencies{
		SameInstance: 200 * time.Microsecond,
		SameZone:     16 * time.Millisecond,
		SameRegion:   21 * time.Millisecond,
		CrossRegion:  173 * time.Millisecond,
		RegionPairs: map[[2]Region]time.Duration{
			{USWest1, EUWest1}:      173 * time.Millisecond,
			{USWest1, USEast1}:      80 * time.Millisecond,
			{USWest1, APSoutheast1}: 205 * time.Millisecond,
			{USWest1, APNortheast1}: 145 * time.Millisecond,
			{USEast1, EUWest1}:      92 * time.Millisecond,
		},
		JitterSigma: 0.08,
	}
}

// Base returns the deterministic one-way latency between two placements.
func (l Latencies) Base(a, b Placement) time.Duration {
	switch {
	case a == b:
		return l.SameZone
	case a.Region == b.Region:
		return l.SameRegion
	default:
		if d, ok := l.RegionPairs[[2]Region{a.Region, b.Region}]; ok {
			return d
		}
		if d, ok := l.RegionPairs[[2]Region{b.Region, a.Region}]; ok {
			return d
		}
		return l.CrossRegion
	}
}

// Network samples message latencies on the virtual timeline.
type Network struct {
	env *sim.Env
	lat Latencies
}

// NewNetwork creates a network bound to env with the given latency model.
func NewNetwork(env *sim.Env, lat Latencies) *Network {
	return &Network{env: env, lat: lat}
}

// Latencies returns the base latency model.
func (n *Network) Latencies() Latencies { return n.lat }

// OneWay samples a one-way latency between two placements.
func (n *Network) OneWay(a, b Placement) time.Duration {
	base := n.lat.Base(a, b)
	if n.lat.JitterSigma <= 0 {
		return base
	}
	return sim.LogNormal(n.env.Rand(), base, n.lat.JitterSigma)
}

// Transit suspends the calling process for one sampled one-way latency —
// the client side of a synchronous request or response leg.
func (n *Network) Transit(p *sim.Proc, a, b Placement) {
	p.Sleep(n.OneWay(a, b))
}

// Send delivers v into q after a sampled one-way latency without blocking
// the caller — the asynchronous replication stream. Delivery order between
// two sends on the same pair may invert only if jitter reorders them;
// ordered protocols (like the binlog stream) serialize on the receiving
// queue position instead, so callers needing FIFO should use SendOrdered.
func Send[T any](n *Network, a, b Placement, q *sim.Queue[T], v T) {
	n.env.Schedule(n.OneWay(a, b), func() { q.Put(v) })
}

// Pipe is a FIFO network channel between two placements: messages arrive
// exactly in send order, each delayed by at least the sampled latency
// (TCP-like ordering).
type Pipe[T any] struct {
	net      *Network
	from, to Placement
	q        *sim.Queue[T]
	lastAt   sim.Time
}

// NewPipe creates an ordered channel delivering into q.
func NewPipe[T any](n *Network, from, to Placement, q *sim.Queue[T]) *Pipe[T] {
	return &Pipe[T]{net: n, from: from, to: to, q: q}
}

// Send enqueues v for ordered delivery.
func (pp *Pipe[T]) Send(v T) {
	at := pp.net.env.Now() + pp.net.OneWay(pp.from, pp.to)
	if at < pp.lastAt {
		at = pp.lastAt // preserve FIFO despite jitter
	}
	pp.lastAt = at
	pp.net.env.Schedule(at-pp.net.env.Now(), func() { pp.q.Put(v) })
}

// Queue returns the delivery queue.
func (pp *Pipe[T]) Queue() *sim.Queue[T] { return pp.q }

// PingStats summarizes a ping run.
type PingStats struct {
	Samples []time.Duration
	Mean    time.Duration
	Median  time.Duration
	Min     time.Duration
	Max     time.Duration
}

// Ping measures full round-trip times between two placements, one probe per
// interval, for the given count, like running `ping` for 20 minutes as the
// paper did. It must be called from a simulation process.
func Ping(p *sim.Proc, n *Network, a, b Placement, count int, interval time.Duration) PingStats {
	st := PingStats{Min: time.Duration(1<<63 - 1)}
	for i := 0; i < count; i++ {
		rtt := n.OneWay(a, b) + n.OneWay(b, a)
		st.Samples = append(st.Samples, rtt)
		if rtt < st.Min {
			st.Min = rtt
		}
		if rtt > st.Max {
			st.Max = rtt
		}
		p.Sleep(interval)
	}
	var sum time.Duration
	sorted := append([]time.Duration(nil), st.Samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, d := range sorted {
		sum += d
	}
	if len(sorted) > 0 {
		st.Mean = sum / time.Duration(len(sorted))
		st.Median = sorted[len(sorted)/2]
	}
	return st
}
