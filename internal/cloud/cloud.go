// Package cloud models a public IaaS provider in the style of Amazon EC2
// circa 2011: regions containing availability zones, instance types with
// nominal compute ratings, launched instances whose actual CPU speed varies
// (Schad et al. measured a coefficient of variation around 21% for small
// instances), a wide-area network with per-placement-pair latencies, and
// per-instance clocks that drift unless disciplined by NTP.
//
// Everything runs on the virtual timeline of an internal/sim environment,
// so experiments that take 35 wall-clock minutes on EC2 complete in seconds.
package cloud

import (
	"fmt"
	"time"

	"cloudrepl/internal/sim"
	"cloudrepl/internal/vclock"
)

// Region identifies a geographic region, e.g. "us-west-1".
type Region string

// Canonical regions used throughout the paper's experiments.
const (
	USWest1      Region = "us-west-1"
	USEast1      Region = "us-east-1"
	EUWest1      Region = "eu-west-1"
	APSoutheast1 Region = "ap-southeast-1"
	APNortheast1 Region = "ap-northeast-1"
)

// Placement locates an instance: a region plus an availability-zone letter.
type Placement struct {
	Region Region
	Zone   string // "a", "b", ...
}

// String renders the placement like "us-west-1a".
func (p Placement) String() string { return string(p.Region) + p.Zone }

// ZoneID returns the full availability-zone identifier.
func (p Placement) ZoneID() string { return p.String() }

// SameZone reports whether two placements are in the same availability zone.
func (p Placement) SameZone(o Placement) bool { return p == o }

// SameRegion reports whether two placements share a region.
func (p Placement) SameRegion(o Placement) bool { return p.Region == o.Region }

// InstanceType is a nominal hardware class.
type InstanceType struct {
	Name  string
	VCPUs int
	// ECUPerCore is the nominal compute rating of each virtual core
	// relative to the reference small-instance core.
	ECUPerCore float64
	MemMB      int
}

// The two instance types the paper deploys: databases on m1.small (so
// saturation appears early) and the benchmark driver on m1.large.
var (
	Small = InstanceType{Name: "m1.small", VCPUs: 1, ECUPerCore: 1.0, MemMB: 1700}
	Large = InstanceType{Name: "m1.large", VCPUs: 2, ECUPerCore: 2.0, MemMB: 7680}
)

// CPUModel is a physical processor that may back an instance. The paper
// observed identical instance types backed by different CPUs (an Intel Xeon
// E5430 2.66GHz vs an E5507 2.27GHz) with visibly different throughput.
type CPUModel struct {
	Name   string
	Factor float64 // speed relative to the reference core
}

// Known physical CPU models with speeds relative to the E5430.
var (
	XeonE5430 = CPUModel{Name: "Intel Xeon E5430 2.66GHz", Factor: 1.0}
	XeonE5507 = CPUModel{Name: "Intel Xeon E5507 2.27GHz", Factor: 0.853}
	XeonE5645 = CPUModel{Name: "Intel Xeon E5645 2.40GHz", Factor: 0.94}
)

// Config tunes the provider model.
type Config struct {
	// CPUCoV is the coefficient of variation applied to each launched
	// instance's CPU speed (0 disables heterogeneity). Ignored when
	// CPUModels is non-empty.
	CPUCoV float64
	// CPUModels, when non-empty, is sampled uniformly per launch and the
	// chosen model's Factor becomes the instance's speed factor. This
	// reproduces the paper's E5430-vs-E5507 anecdote exactly.
	CPUModels []CPUModel
	// ClockDriftPPMSigma is the σ of each instance's clock drift rate.
	ClockDriftPPMSigma float64
	// ClockOffsetSigma is the σ of each instance's initial clock offset.
	ClockOffsetSigma time.Duration
	// Network overrides the default latency model when non-nil.
	Network *Network
}

// DefaultConfig mirrors the measured EC2 environment of the paper.
func DefaultConfig() Config {
	return Config{
		CPUCoV:             0.21,
		ClockDriftPPMSigma: 18,
		ClockOffsetSigma:   5 * time.Millisecond,
	}
}

// Cloud is a provider account: it launches instances and owns the network.
type Cloud struct {
	env       *sim.Env
	cfg       Config
	net       *Network
	instances []*Instance
	nextID    int
}

// New creates a provider bound to env.
func New(env *sim.Env, cfg Config) *Cloud {
	net := cfg.Network
	if net == nil {
		net = NewNetwork(env, DefaultLatencies())
	}
	return &Cloud{env: env, cfg: cfg, net: net}
}

// Env returns the simulation environment.
func (c *Cloud) Env() *sim.Env { return c.env }

// Network returns the provider network.
func (c *Cloud) Network() *Network { return c.net }

// Instances returns all launched instances, including terminated ones.
func (c *Cloud) Instances() []*Instance { return c.instances }

// Instance is a launched virtual machine.
type Instance struct {
	ID    string
	Name  string
	Type  InstanceType
	Place Placement
	// CPU is the FIFO compute resource; capacity equals the vCPU count.
	CPU *sim.Resource
	// SpeedFactor scales nominal CPU time: service = nominal/(ECUPerCore ×
	// SpeedFactor). It captures which physical machine backs the VM.
	SpeedFactor float64
	// CPUModel is the backing processor when Config.CPUModels is used.
	CPUModel CPUModel
	// Clock is the instance's local wall clock.
	Clock *vclock.Clock

	cloud *Cloud
	up    bool
	upSig *sim.Signal // broadcast on Restart

	// Billing clock: the provider charges for wall time the instance is
	// up, the cost side of every elasticity decision.
	upSince sim.Time
	upAccum time.Duration
}

// Launch starts an instance of type t at placement pl. CPU speed, clock
// offset and drift are sampled from the provider config.
func (c *Cloud) Launch(name string, t InstanceType, pl Placement) *Instance {
	c.nextID++
	rng := c.env.Rand()
	inst := &Instance{
		ID:          fmt.Sprintf("i-%07x", c.nextID),
		Name:        name,
		Type:        t,
		Place:       pl,
		CPU:         sim.NewResource(c.env, name+"/cpu", t.VCPUs),
		SpeedFactor: 1,
		cloud:       c,
		up:          true,
		upSig:       sim.NewSignal(c.env).Named(name + "/up"),
		upSince:     c.env.Now(),
	}
	if len(c.cfg.CPUModels) > 0 {
		inst.CPUModel = c.cfg.CPUModels[rng.Intn(len(c.cfg.CPUModels))]
		inst.SpeedFactor = inst.CPUModel.Factor
	} else if c.cfg.CPUCoV > 0 {
		inst.SpeedFactor = sim.TruncNormFactor(rng, c.cfg.CPUCoV)
	}
	inst.Clock = vclock.New(c.env, vclock.Config{
		InitialOffset: time.Duration(rng.NormFloat64() * float64(c.cfg.ClockOffsetSigma)),
		DriftPPM:      rng.NormFloat64() * c.cfg.ClockDriftPPMSigma,
	})
	c.instances = append(c.instances, inst)
	return inst
}

// Up reports whether the instance is running.
func (i *Instance) Up() bool { return i.up }

// Terminate stops the instance. Work on a terminated instance panics, so
// components must consult Up before charging CPU; in-flight messages to it
// are dropped by their owners' queues.
func (i *Instance) Terminate() {
	if i.up {
		i.upAccum += i.cloud.env.Now() - i.upSince
	}
	i.up = false
}

// Restart brings a terminated instance back up (state is retained; the
// database layer decides what survives) and wakes AwaitUp waiters.
func (i *Instance) Restart() {
	if !i.up {
		i.upSince = i.cloud.env.Now()
	}
	i.up = true
	if i.upSig != nil {
		i.upSig.Broadcast()
	}
}

// UpTime returns the total virtual time this instance has been running —
// the provider's billing clock. Elasticity experiments report fleet cost as
// the sum of UpTime over every launched instance (VM-minutes).
func (i *Instance) UpTime() time.Duration {
	d := i.upAccum
	if i.up {
		d += i.cloud.env.Now() - i.upSince
	}
	return d
}

// AwaitUp blocks the calling process until the instance is running —
// how crash-tolerant components (replication threads) park across an
// instance crash instead of panicking or dropping work.
func (i *Instance) AwaitUp(p *sim.Proc) {
	for !i.up {
		i.upSig.Wait(p)
	}
}

// EffectiveSpeed returns the instance's per-core speed relative to the
// reference small core: ECUPerCore × SpeedFactor.
func (i *Instance) EffectiveSpeed() float64 { return i.Type.ECUPerCore * i.SpeedFactor }

// Work charges nominal CPU time to the instance, queueing FIFO behind other
// work on its cores. Nominal time is defined on the reference core and is
// scaled by the instance's effective speed.
func (i *Instance) Work(p *sim.Proc, nominal time.Duration) {
	i.work(p, nominal, false)
}

// WorkHigh is Work at high scheduling priority (jumps the CPU queue) —
// used for threads the operator has niced up, like a prioritized
// replication applier.
func (i *Instance) WorkHigh(p *sim.Proc, nominal time.Duration) {
	i.work(p, nominal, true)
}

func (i *Instance) work(p *sim.Proc, nominal time.Duration, high bool) {
	if !i.up {
		panic(fmt.Sprintf("cloud: Work on terminated instance %s", i.Name))
	}
	if nominal <= 0 {
		return
	}
	scaled := time.Duration(float64(nominal) / i.EffectiveSpeed())
	if high {
		i.CPU.UseHigh(p, scaled)
	} else {
		i.CPU.Use(p, scaled)
	}
}

// Utilization returns the instance's time-averaged CPU utilization since the
// last stats reset.
func (i *Instance) Utilization() float64 { return i.CPU.Utilization() }

// MeasureSpeed benchmarks an instance the way the paper's §IV-A advice
// suggests ("validate instance performance before deploying applications
// into the cloud"): it runs probes of known nominal CPU work on the
// instance and reports the measured effective speed (nominal/elapsed).
// Results are only meaningful on an otherwise idle instance.
func MeasureSpeed(p *sim.Proc, inst *Instance, probes int) float64 {
	if probes < 1 {
		probes = 1
	}
	const nominal = 50 * time.Millisecond
	start := p.Now()
	for i := 0; i < probes; i++ {
		inst.Work(p, nominal)
	}
	elapsed := p.Now() - start
	if elapsed <= 0 {
		return 0
	}
	return float64(probes) * float64(nominal) / float64(elapsed)
}
