package cloud

import (
	"testing"
	"time"

	"cloudrepl/internal/sim"
)

func quietNet(seed int64) (*sim.Env, *Network) {
	env := sim.NewEnv(seed)
	lat := DefaultLatencies()
	lat.JitterSigma = 0
	return env, NewNetwork(env, lat)
}

func TestPartitionBlocksPipeUntilHeal(t *testing.T) {
	env, net := quietNet(1)
	a := Placement{USWest1, "a"}
	b := Placement{USWest1, "b"}
	net.Partition(a, b)
	if net.Reachable(a, b) {
		t.Fatal("partitioned path reported reachable")
	}

	q := sim.NewQueue[int](env, "relay")
	pipe := NewPipe(net, a, b, q)
	for i := 0; i < 3; i++ {
		pipe.Send(i)
	}

	var got []int
	var times []sim.Time
	env.Go("receiver", func(p *sim.Proc) {
		for len(got) < 3 {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
			times = append(times, p.Now())
		}
	})
	env.Schedule(10*time.Second, func() { net.Heal(a, b) })
	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()

	if len(got) != 3 {
		t.Fatalf("delivered %d of 3 messages across the heal", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated after heal: %v", got)
		}
	}
	for _, at := range times {
		if at < 10*time.Second {
			t.Fatalf("message delivered at %v, before the heal", at)
		}
	}
}

func TestUnicastDroppedDuringPartition(t *testing.T) {
	env, net := quietNet(2)
	a := Placement{USWest1, "a"}
	b := Placement{USWest1, "b"}
	net.Partition(a, b)

	delivered := 0
	Unicast(net, a, b, func() { delivered++ })
	env.RunUntil(time.Minute)
	if delivered != 0 {
		t.Fatal("datagram crossed a partitioned path")
	}

	net.Heal(a, b)
	Unicast(net, a, b, func() { delivered++ })
	env.RunUntil(2 * time.Minute)
	if delivered != 1 {
		t.Fatalf("delivered = %d after heal, want 1", delivered)
	}
	env.Stop()
	env.Shutdown()
}

func TestSpikeLatencyAddsDelay(t *testing.T) {
	env, net := quietNet(3)
	a := Placement{USWest1, "a"}
	b := Placement{USWest1, "b"}
	// Base one-way a→b is 21 ms with jitter off (TestSendDelaysDelivery).
	net.SpikeLatency(a, b, 100*time.Millisecond, 0)

	q := sim.NewQueue[string](env, "q")
	var at sim.Time
	env.Go("receiver", func(p *sim.Proc) {
		q.Get(p)
		at = p.Now()
	})
	Send(net, a, b, q, "hello")
	env.Run()
	if at != 121*time.Millisecond {
		t.Fatalf("spiked delivery at %v, want 121ms", at)
	}

	net.ClearSpike(a, b)
	if f := net.Fault(a, b); f.ExtraLatency != 0 || f.ExtraJitterSigma != 0 {
		t.Fatalf("fault survives ClearSpike: %+v", f)
	}
	env.Shutdown()
}

func TestTransitTimeoutOnPartition(t *testing.T) {
	env, net := quietNet(4)
	a := Placement{USWest1, "a"}
	b := Placement{USWest1, "b"}
	net.Partition(a, b)

	var ok bool
	var took sim.Time
	env.Go("client", func(p *sim.Proc) {
		t0 := p.Now()
		ok = net.TransitTimeout(p, a, b, 2*time.Second)
		took = p.Now() - t0
	})
	env.Run()
	if ok {
		t.Fatal("transit over a partition reported success")
	}
	if took != 2*time.Second {
		t.Fatalf("timed out after %v, want the 2s timeout", took)
	}

	net.Heal(a, b)
	env.Go("client2", func(p *sim.Proc) {
		t0 := p.Now()
		ok = net.TransitTimeout(p, a, b, 2*time.Second)
		took = p.Now() - t0
	})
	env.Run()
	if !ok || took != 21*time.Millisecond {
		t.Fatalf("healed transit: ok=%v took=%v, want 21ms success", ok, took)
	}
	env.Shutdown()
}

func TestAwaitUpParksAcrossRestart(t *testing.T) {
	env, c := testCloud(5)
	inst := c.Launch("node", Small, Placement{USWest1, "a"})
	inst.Terminate()

	var resumed sim.Time
	env.Go("waiter", func(p *sim.Proc) {
		inst.AwaitUp(p)
		resumed = p.Now()
	})
	env.Schedule(5*time.Second, func() { inst.Restart() })
	env.Run()
	if resumed != 5*time.Second {
		t.Fatalf("AwaitUp resumed at %v, want at the restart (5s)", resumed)
	}
	env.Shutdown()
}

func TestAwaitUpReturnsImmediatelyWhenUp(t *testing.T) {
	env, c := testCloud(6)
	inst := c.Launch("node", Small, Placement{USWest1, "a"})
	var resumed sim.Time
	env.Go("waiter", func(p *sim.Proc) {
		inst.AwaitUp(p)
		resumed = p.Now()
	})
	env.Run()
	if resumed != 0 {
		t.Fatalf("AwaitUp on a live instance blocked until %v", resumed)
	}
	env.Shutdown()
}
