package cloud

import (
	"math"
	"testing"
	"time"

	"cloudrepl/internal/sim"
)

func testCloud(seed int64) (*sim.Env, *Cloud) {
	env := sim.NewEnv(seed)
	return env, New(env, DefaultConfig())
}

func TestLaunchAssignsIdentity(t *testing.T) {
	_, c := testCloud(1)
	a := c.Launch("master", Small, Placement{USWest1, "a"})
	b := c.Launch("slave1", Small, Placement{USWest1, "a"})
	if a.ID == b.ID {
		t.Fatal("instances share an ID")
	}
	if a.Place.String() != "us-west-1a" {
		t.Fatalf("placement = %s, want us-west-1a", a.Place)
	}
	if len(c.Instances()) != 2 {
		t.Fatalf("instances = %d, want 2", len(c.Instances()))
	}
}

func TestSpeedFactorHeterogeneity(t *testing.T) {
	_, c := testCloud(7)
	var sum, sumsq float64
	const n = 4000
	for i := 0; i < n; i++ {
		inst := c.Launch("x", Small, Placement{USWest1, "a"})
		sum += inst.SpeedFactor
		sumsq += inst.SpeedFactor * inst.SpeedFactor
	}
	mean := sum / n
	cov := math.Sqrt(sumsq/n-mean*mean) / mean
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("mean speed factor %v, want ≈1", mean)
	}
	if math.Abs(cov-0.21) > 0.05 {
		t.Fatalf("speed CoV %v, want ≈0.21 (Schad et al.)", cov)
	}
}

func TestCPUModelSampling(t *testing.T) {
	env := sim.NewEnv(3)
	c := New(env, Config{CPUModels: []CPUModel{XeonE5430, XeonE5507}})
	seen := map[string]int{}
	for i := 0; i < 200; i++ {
		inst := c.Launch("x", Small, Placement{USWest1, "a"})
		seen[inst.CPUModel.Name]++
		if inst.SpeedFactor != inst.CPUModel.Factor {
			t.Fatalf("speed factor %v != model factor %v", inst.SpeedFactor, inst.CPUModel.Factor)
		}
	}
	if len(seen) != 2 {
		t.Fatalf("sampled models %v, want both", seen)
	}
}

func TestHomogeneousWhenCoVZero(t *testing.T) {
	env := sim.NewEnv(3)
	c := New(env, Config{})
	for i := 0; i < 10; i++ {
		if f := c.Launch("x", Small, Placement{USWest1, "a"}).SpeedFactor; f != 1 {
			t.Fatalf("speed factor = %v with CoV 0, want 1", f)
		}
	}
}

func TestWorkScalesWithInstanceSpeed(t *testing.T) {
	env := sim.NewEnv(3)
	c := New(env, Config{})
	small := c.Launch("small", Small, Placement{USWest1, "a"})
	large := c.Launch("large", Large, Placement{USWest1, "a"})
	var smallDone, largeDone sim.Time
	env.Go("onSmall", func(p *sim.Proc) {
		small.Work(p, 100*time.Millisecond)
		smallDone = p.Now()
	})
	env.Go("onLarge", func(p *sim.Proc) {
		large.Work(p, 100*time.Millisecond)
		largeDone = p.Now()
	})
	env.Run()
	if smallDone != 100*time.Millisecond {
		t.Fatalf("small finished at %v, want 100ms", smallDone)
	}
	if largeDone != 50*time.Millisecond { // 2 ECU per core
		t.Fatalf("large finished at %v, want 50ms", largeDone)
	}
}

func TestWorkQueuesOnVCPUs(t *testing.T) {
	env := sim.NewEnv(3)
	c := New(env, Config{})
	inst := c.Launch("small", Small, Placement{USWest1, "a"}) // 1 vCPU
	var finish []sim.Time
	for i := 0; i < 3; i++ {
		env.Go("job", func(p *sim.Proc) {
			inst.Work(p, 10*time.Millisecond)
			finish = append(finish, p.Now())
		})
	}
	env.Run()
	if finish[2] != 30*time.Millisecond {
		t.Fatalf("3rd job finished at %v, want serialized 30ms", finish[2])
	}
}

func TestTerminatedInstanceRejectsWork(t *testing.T) {
	env := sim.NewEnv(3)
	c := New(env, Config{})
	inst := c.Launch("x", Small, Placement{USWest1, "a"})
	inst.Terminate()
	if inst.Up() {
		t.Fatal("instance still up after Terminate")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic working on terminated instance")
		}
		env.Shutdown()
	}()
	env.Go("job", func(p *sim.Proc) { inst.Work(p, time.Millisecond) })
	env.Run()
}

func TestRestart(t *testing.T) {
	env := sim.NewEnv(3)
	c := New(env, Config{})
	inst := c.Launch("x", Small, Placement{USWest1, "a"})
	inst.Terminate()
	inst.Restart()
	if !inst.Up() {
		t.Fatal("instance down after Restart")
	}
}

func TestLatencyClasses(t *testing.T) {
	lat := DefaultLatencies()
	a := Placement{USWest1, "a"}
	b := Placement{USWest1, "b"}
	eu := Placement{EUWest1, "a"}
	other := Placement{APNortheast1, "b"}
	if d := lat.Base(a, a); d != 16*time.Millisecond {
		t.Fatalf("same zone = %v, want 16ms", d)
	}
	if d := lat.Base(a, b); d != 21*time.Millisecond {
		t.Fatalf("cross zone = %v, want 21ms", d)
	}
	if d := lat.Base(a, eu); d != 173*time.Millisecond {
		t.Fatalf("us-west↔eu-west = %v, want 173ms", d)
	}
	if d := lat.Base(eu, a); d != 173*time.Millisecond {
		t.Fatalf("reverse pair lookup = %v, want 173ms", d)
	}
	if d := lat.Base(eu, other); d != lat.CrossRegion {
		t.Fatalf("unlisted pair = %v, want CrossRegion default", d)
	}
}

func TestPingMatchesPaperRTTs(t *testing.T) {
	env := sim.NewEnv(11)
	c := New(env, DefaultConfig())
	master := Placement{USWest1, "a"}
	cases := []struct {
		name    string
		peer    Placement
		halfRTT time.Duration
	}{
		{"same zone", Placement{USWest1, "a"}, 16 * time.Millisecond},
		{"different zone", Placement{USWest1, "b"}, 21 * time.Millisecond},
		{"different region", Placement{EUWest1, "a"}, 173 * time.Millisecond},
	}
	for _, tc := range cases {
		tc := tc
		env.Go("ping", func(p *sim.Proc) {
			st := Ping(p, c.Network(), master, tc.peer, 1200, time.Second)
			got := st.Mean / 2
			if math.Abs(float64(got-tc.halfRTT)) > 0.05*float64(tc.halfRTT) {
				t.Errorf("%s: mean half-RTT %v, want ≈%v", tc.name, got, tc.halfRTT)
			}
		})
	}
	env.Run()
}

func TestPipePreservesOrderDespiteJitter(t *testing.T) {
	env := sim.NewEnv(5)
	lat := DefaultLatencies()
	lat.JitterSigma = 0.8 // violent jitter
	net := NewNetwork(env, lat)
	q := sim.NewQueue[int](env, "relay")
	pipe := NewPipe(net, Placement{USWest1, "a"}, Placement{EUWest1, "a"}, q)
	env.Go("sender", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			pipe.Send(i)
			p.Sleep(time.Millisecond)
		}
	})
	var got []int
	env.Go("receiver", func(p *sim.Proc) {
		for len(got) < 200 {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	env.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery out of order at %d: %v", i, v)
		}
	}
}

func TestSendDelaysDelivery(t *testing.T) {
	env := sim.NewEnv(5)
	lat := DefaultLatencies()
	lat.JitterSigma = 0
	net := NewNetwork(env, lat)
	q := sim.NewQueue[string](env, "q")
	var at sim.Time
	env.Go("receiver", func(p *sim.Proc) {
		q.Get(p)
		at = p.Now()
	})
	Send(net, Placement{USWest1, "a"}, Placement{USWest1, "b"}, q, "hello")
	env.Run()
	if at != 21*time.Millisecond {
		t.Fatalf("delivered at %v, want 21ms", at)
	}
}

func TestTransitBlocksCaller(t *testing.T) {
	env := sim.NewEnv(5)
	lat := DefaultLatencies()
	lat.JitterSigma = 0
	net := NewNetwork(env, lat)
	var at sim.Time
	env.Go("client", func(p *sim.Proc) {
		net.Transit(p, Placement{USWest1, "a"}, Placement{EUWest1, "a"})
		at = p.Now()
	})
	env.Run()
	if at != 173*time.Millisecond {
		t.Fatalf("transit took %v, want 173ms", at)
	}
}

func TestClocksDifferAcrossInstances(t *testing.T) {
	env, c := testCloud(9)
	a := c.Launch("a", Small, Placement{USWest1, "a"})
	b := c.Launch("b", Small, Placement{USWest1, "a"})
	env.RunFor(time.Minute)
	if a.Clock.Now() == b.Clock.Now() {
		t.Fatal("two instances report identical clocks; offsets/drift not applied")
	}
}

func TestMeasureSpeedDetectsSlowInstance(t *testing.T) {
	env := sim.NewEnv(13)
	c := New(env, Config{CPUModels: []CPUModel{XeonE5507}})
	slow := c.Launch("slow", Small, Placement{USWest1, "a"})
	cFast := New(env, Config{})
	fast := cFast.Launch("fast", Small, Placement{USWest1, "a"})
	var slowSpeed, fastSpeed float64
	env.Go("probe", func(p *sim.Proc) {
		slowSpeed = MeasureSpeed(p, slow, 10)
		fastSpeed = MeasureSpeed(p, fast, 10)
	})
	env.Run()
	if math.Abs(slowSpeed-XeonE5507.Factor) > 0.01 {
		t.Fatalf("slow speed = %v, want %v", slowSpeed, XeonE5507.Factor)
	}
	if math.Abs(fastSpeed-1) > 0.01 {
		t.Fatalf("fast speed = %v, want 1", fastSpeed)
	}
}
