package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MVCCAlias flags mutations of live MVCC storage reached through an aliasing
// accessor. (*sqlengine.Table).Rows and (*sqlengine.Row).Values hand out the
// engine's own backing slices for speed — the documented contract is
// read-only. A caller that writes through such a reference (element
// assignment, copy-into, in-place sort, append into spare capacity) mutates
// committed row versions behind the back of the commit-stamped write path
// (Insert/Update/Delete), silently corrupting every snapshot and MVCC read
// that shares the chain.
//
// Taint is tracked per function: a variable assigned from an aliasing
// accessor — or from an element, subslice or copy of a tainted value — is
// tainted. Functions that return tainted values export AliasFact, so
// accessor wrappers in other packages are treated as sources by their
// callers too. The sqlengine package itself is exempt: it IS the write path.
var MVCCAlias = &Analyzer{
	Name: "mvccalias",
	Doc: "flag writes through live sqlengine storage aliases (Table.Rows / " +
		"Row.Values results) outside the commit-stamped write path",
	Run: runMVCCAlias,
}

// AliasFact marks a function whose result aliases live sqlengine storage;
// downstream packages treat its calls as taint sources.
type AliasFact struct{}

// AFact marks AliasFact as a Fact.
func (*AliasFact) AFact() {}

// aliasAccessors are the sqlengine methods that return live backing storage.
var aliasAccessors = map[string]string{
	"Rows":   "Table",
	"Values": "Row",
}

func runMVCCAlias(pass *Pass) error {
	if strings.HasSuffix(pass.Path, "internal/sqlengine") {
		return nil // the engine is the write path; its own mutations are stamped
	}
	ma := &mvccAliasPass{pass: pass, returnsAlias: map[*types.Func]bool{}}
	// Two rounds: the first discovers local wrapper functions that return
	// tainted values (exporting AliasFact), the second re-runs with those
	// wrappers as sources and reports. Cross-package wrappers come in
	// through facts either round.
	for round := 0; round < 2; round++ {
		ma.report = round == 1
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					ma.checkFunc(fd)
				}
			}
		}
	}
	return nil
}

type mvccAliasPass struct {
	pass         *Pass
	returnsAlias map[*types.Func]bool
	report       bool
}

func (ma *mvccAliasPass) checkFunc(fd *ast.FuncDecl) {
	tainted := map[types.Object]bool{}
	// Flow-insensitive fixpoint: repeat until the taint set stops growing,
	// so `rows := tbl.Rows(); alias := rows` converges regardless of order.
	for {
		n := len(tainted)
		ast.Inspect(fd.Body, func(node ast.Node) bool {
			switch st := node.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					if i >= len(st.Rhs) {
						break // tuple assignment from a call: no alias sources return tuples
					}
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
						if obj := ma.pass.ObjectOf(id); obj != nil && ma.exprTainted(tainted, st.Rhs[i]) {
							tainted[obj] = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range st.Names {
					if i < len(st.Values) && name.Name != "_" {
						if obj := ma.pass.ObjectOf(name); obj != nil && ma.exprTainted(tainted, st.Values[i]) {
							tainted[obj] = true
						}
					}
				}
			case *ast.RangeStmt:
				// for _, r := range rows { ... }: the element var aliases
				// storage when the ranged value does.
				if ma.exprTainted(tainted, st.X) && st.Value != nil {
					if id, ok := st.Value.(*ast.Ident); ok && id.Name != "_" {
						if obj := ma.pass.ObjectOf(id); obj != nil {
							tainted[obj] = true
						}
					}
				}
			}
			return true
		})
		if len(tainted) == n {
			break
		}
	}

	if fn, ok := ma.pass.Info.Defs[fd.Name].(*types.Func); ok && !ma.report {
		// Round one: does this function hand a live alias to its callers?
		ast.Inspect(fd.Body, func(node ast.Node) bool {
			ret, ok := node.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				if ma.exprTainted(tainted, res) {
					ma.returnsAlias[fn] = true
					ma.pass.ExportObjectFact(fn, &AliasFact{})
				}
			}
			return true
		})
	}

	if !ma.report {
		return
	}
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch st := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				ma.checkWrite(tainted, lhs)
			}
		case *ast.IncDecStmt:
			ma.checkWrite(tainted, st.X)
		case *ast.CallExpr:
			ma.checkMutatingCall(tainted, st)
		}
		return true
	})
}

// checkWrite reports an assignment target that reaches into tainted storage:
// an element write (vals[i] = x, rows[j] = r) or a field write through a
// tainted base (rows[i].f = x — only reachable in-package, but cheap to
// cover).
func (ma *mvccAliasPass) checkWrite(tainted map[types.Object]bool, lhs ast.Expr) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		if ma.exprTainted(tainted, x.X) {
			ma.pass.Reportf(lhs.Pos(), "write through live MVCC storage alias %s: this slice is the engine's backing array (Table.Rows/Row.Values); mutate via the engine write path or copy first", renderExpr(x.X))
		}
	case *ast.SelectorExpr:
		if ma.exprTainted(tainted, x.X) {
			ma.pass.Reportf(lhs.Pos(), "field write through live MVCC storage alias %s: committed row versions must only change via the commit-stamped write path", renderExpr(x.X))
		}
	case *ast.StarExpr:
		if ma.exprTainted(tainted, x.X) {
			ma.pass.Reportf(lhs.Pos(), "write through dereferenced MVCC storage alias %s", renderExpr(x.X))
		}
	}
}

// checkMutatingCall reports builtins and sort helpers that mutate a tainted
// slice in place: copy(t, ...), append(t, ...) (spare capacity writes into
// the backing array), sort.Slice/sort.SliceStable/sort.Sort(t, ...).
func (ma *mvccAliasPass) checkMutatingCall(tainted map[types.Object]bool, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if ma.pass.Info.Uses[fun] == types.Universe.Lookup(fun.Name) {
			switch fun.Name {
			case "copy":
				if ma.exprTainted(tainted, call.Args[0]) {
					ma.pass.Reportf(call.Pos(), "copy into live MVCC storage alias %s overwrites committed row versions in place", renderExpr(call.Args[0]))
				}
			case "append":
				if ma.exprTainted(tainted, call.Args[0]) {
					ma.pass.Reportf(call.Pos(), "append to live MVCC storage alias %s may write into the engine's backing array via spare capacity; copy first", renderExpr(call.Args[0]))
				}
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok && isNamedPkg(ma.pass.Info, id, "sort") {
			switch fun.Sel.Name {
			case "Slice", "SliceStable", "Sort", "Stable":
				if ma.exprTainted(tainted, call.Args[0]) {
					ma.pass.Reportf(call.Pos(), "in-place sort of live MVCC storage alias %s reorders the engine's backing array; sort a copy", renderExpr(call.Args[0]))
				}
			}
		}
	}
}

// exprTainted reports whether e denotes (or derives from) live storage: an
// aliasing accessor call, a call to a function carrying AliasFact, a tainted
// variable, or an element/subslice of a tainted value.
func (ma *mvccAliasPass) exprTainted(tainted map[types.Object]bool, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := ma.pass.ObjectOf(x)
		return obj != nil && tainted[obj]
	case *ast.IndexExpr:
		return ma.exprTainted(tainted, x.X)
	case *ast.SliceExpr:
		return ma.exprTainted(tainted, x.X)
	case *ast.CallExpr:
		fn := staticCallee(ma.pass, x)
		if fn == nil {
			return false
		}
		if typ, ok := aliasAccessors[fn.Name()]; ok && isMethodOf(fn, "internal/sqlengine", typ) {
			return true
		}
		if ma.returnsAlias[fn.Origin()] {
			return true
		}
		var fact AliasFact
		return ma.pass.ImportObjectFact(fn.Origin(), &fact)
	}
	return false
}

// isNamedPkg reports whether id resolves to an import of the given path.
func isNamedPkg(info *types.Info, id *ast.Ident, path string) bool {
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// renderExpr prints a compact source-like form of e for diagnostics.
func renderExpr(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return renderExpr(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return renderExpr(x.X) + "[...]"
	case *ast.SliceExpr:
		return renderExpr(x.X) + "[...]"
	case *ast.CallExpr:
		return calleeName(x) + "(...)"
	case *ast.StarExpr:
		return "*" + renderExpr(x.X)
	}
	return "expression"
}
