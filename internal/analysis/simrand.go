package analysis

import (
	"go/ast"
	"strings"
)

// globalRandFuncs are the math/rand package-level functions backed by the
// process-global source. Even when Seeded they are shared across every
// concurrently running experiment worker, so call interleaving — not the
// seed — decides the stream each run sees.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 additions, should the import ever flip.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
}

// simRandEnvPkg is the one package allowed to construct rand sources: the
// simulator kernel, where NewEnv seeds the env-threaded *rand.Rand that all
// model code must draw from.
const simRandEnvPkg = "cloudrepl/internal/sim"

// SimRand forbids the global math/rand source and stray rand.New/NewSource
// construction outside the sim kernel. All randomness must be threaded from
// sim.NewEnv(seed) via Env.Rand()/Proc.Rand() so that one seed determines
// one run.
var SimRand = &Analyzer{
	Name: "simrand",
	Doc: "forbid global math/rand functions and rand.New/NewSource outside sim.NewEnv; " +
		"randomness must be the env-threaded *rand.Rand",
	Run: runSimRand,
}

func runSimRand(pass *Pass) error {
	inSimKernel := pass.Path == simRandEnvPkg
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !isPkgQualifier(pass.Info, sel.X) {
			return true
		}
		obj := pass.ObjectOf(sel.Sel)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		path := obj.Pkg().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return true
		}
		name := obj.Name()
		switch {
		case globalRandFuncs[name]:
			pass.Reportf(sel.Pos(), "global math/rand.%s: draw from the env-threaded source (sim.Env.Rand / Proc.Rand) so the seed determines the run, or annotate //cloudrepl:allow-simrand <reason>", name)
		case (name == "New" || name == "NewSource" || strings.HasPrefix(name, "NewPCG") || name == "NewChaCha8") && !inSimKernel:
			pass.Reportf(sel.Pos(), "rand.%s outside the sim kernel: construct randomness once in sim.NewEnv(seed) and thread *rand.Rand through, or annotate //cloudrepl:allow-simrand <reason>", name)
		}
		return true
	})
	return nil
}
