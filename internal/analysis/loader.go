package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under analysis.
type Package struct {
	Path  string // import path, e.g. "cloudrepl/internal/repl"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single Go module from source.
// Standard-library imports are resolved through the GOROOT source importer,
// so no compiled export data or module cache is needed — the loader works in
// a hermetic container with nothing but a GOROOT.
//
// Test files (*_test.go) are not loaded: the determinism contract governs
// model code, while tests are drivers that may legitimately use wall-clock
// watchdogs (and the race detector covers them separately).
type Loader struct {
	ModuleDir  string // module root (directory containing go.mod)
	ModulePath string // module path from go.mod

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle detection
	// loadOrder records packages in load-completion order. A package's
	// module-internal imports finish loading before its own type check
	// returns, so this is a topological order (dependencies first) — the
	// order NewProgram hands to fact-propagating analyzers.
	loadOrder []*Package
}

// NewLoader creates a loader rooted at moduleDir. The module path is read
// from go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("source importer does not implement ImporterFrom")
	}
	return &Loader{
		ModuleDir:  abs,
		ModulePath: modPath,
		fset:       fset,
		std:        std,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Load resolves patterns ("./...", "./internal/repl", or full import paths)
// to module packages, loading each one plus its module-internal dependencies.
// The returned slice contains only the matched packages, sorted by path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			all, err := l.walkPackageDirs(l.ModuleDir)
			if err != nil {
				return nil, err
			}
			for _, d := range all {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.ModuleDir, strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/..."))
			all, err := l.walkPackageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range all {
				add(d)
			}
		case strings.HasPrefix(pat, l.ModulePath):
			add(filepath.Join(l.ModuleDir, strings.TrimPrefix(pat, l.ModulePath)))
		default:
			add(filepath.Join(l.ModuleDir, strings.TrimPrefix(pat, "./")))
		}
	}
	sort.Strings(dirs)

	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// walkPackageDirs returns every directory under root that contains at least
// one non-test .go file, skipping hidden directories and testdata trees.
func (l *Loader) walkPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "results") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func (l *Loader) pathForDir(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir (cached by import path).
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.pathForDir(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Honor build constraints (//go:build lines and GOOS/GOARCH file
		// suffixes) the same way the go tool does, so a tag-excluded file —
		// a //go:build ignore generator, a windows-only stub — neither
		// parses into the package nor breaks its type check.
		if match, err := build.Default.MatchFile(dir, name); err != nil {
			return nil, fmt.Errorf("match %s: %w", filepath.Join(dir, name), err)
		} else if !match {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: &moduleImporter{l: l, fromDir: dir}}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	l.loadOrder = append(l.loadOrder, pkg)
	return pkg, nil
}

// moduleImporter resolves module-local imports from source and defers
// everything else to the GOROOT source importer.
type moduleImporter struct {
	l       *Loader
	fromDir string
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, m.fromDir, 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	l := m.l
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadDir(filepath.Join(l.ModuleDir, strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
