package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudrepl/internal/analysis"
	"cloudrepl/internal/analysis/analysistest"
)

func TestSimTime(t *testing.T) {
	analysistest.Run(t, analysistest.FixturePath("simtime"), analysis.SimTime)
}

func TestSimRand(t *testing.T) {
	analysistest.Run(t, analysistest.FixturePath("simrand"), analysis.SimRand)
}

func TestRawGo(t *testing.T) {
	analysistest.Run(t, analysistest.FixturePath("rawgo"), analysis.RawGo)
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysistest.FixturePath("maporder"), analysis.MapOrder)
}

func TestCloseCheck(t *testing.T) {
	analysistest.Run(t, analysistest.FixturePath("closecheck"), analysis.CloseCheck)
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, analysistest.FixturePath("errdrop"), analysis.ErrDrop)
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.FixturePath("lockorder"), analysis.LockOrder)
}

func TestMVCCAlias(t *testing.T) {
	analysistest.Run(t, analysistest.FixturePath("mvccalias"), analysis.MVCCAlias)
}

func TestSharedState(t *testing.T) {
	analysistest.Run(t, analysistest.FixturePath("sharedstate"), analysis.SharedState)
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}

// TestDirectives checks the full directive life cycle on a fixture holding
// one used, one stale, one unknown-analyzer and one reason-less directive.
func TestDirectives(t *testing.T) {
	root := moduleRoot(t)
	l, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("internal/analysis/testdata/src/directives")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]

	diags, err := analysis.Run(pkg, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	dirs, bad := analysis.ParseDirectives(pkg, analysis.KnownNames())

	if len(bad) != 2 {
		t.Fatalf("malformed directives = %v, want 2 (unknown analyzer + missing reason)", bad)
	}
	var sawUnknown, sawNoReason bool
	for _, d := range bad {
		if strings.Contains(d.Message, "unknown allow directive") {
			sawUnknown = true
		}
		if strings.Contains(d.Message, "needs a justification") {
			sawNoReason = true
		}
	}
	if !sawUnknown || !sawNoReason {
		t.Errorf("malformed diagnostics missing a case: %v", bad)
	}

	// Only the well-formed directives parse: allow-simtime on covered and
	// allow-rawgo on stale.
	if len(dirs) != 2 {
		t.Fatalf("parsed directives = %d, want 2", len(dirs))
	}

	kept := analysis.Suppress(diags, dirs)
	// Both wall-clock calls under the doc-comment directive are suppressed;
	// the one under the reason-less directive survives.
	if len(kept) != 1 || kept[0].Analyzer != "simtime" {
		t.Fatalf("kept = %v, want exactly the simtime finding under the reason-less directive", kept)
	}

	stale := analysis.StaleDirectives(dirs)
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "stale allow-rawgo") {
		t.Fatalf("stale = %v, want exactly the unused allow-rawgo directive", stale)
	}
}

// TestRepoIsLintClean runs the whole cloudrepl-lint pipeline over the
// module, pinning the "zero unannotated violations" invariant that `make
// lint` enforces in CI.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root := moduleRoot(t)
	diags, err := analysis.Lint(root, analysis.All(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("lint finding: %s", d)
	}
}
