package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// EdgeKind classifies how control may flow from a caller to a callee.
type EdgeKind uint8

const (
	// EdgeCall is an ordinary synchronous call (including defer, and
	// including a function value passed to a callee that may invoke it).
	EdgeCall EdgeKind = iota
	// EdgeSpawnProc marks a function handed to the sim scheduler: the
	// callback of sim.Env.Go / Schedule / After. It runs serialized against
	// the virtual clock, but in a different logical process than the caller.
	EdgeSpawnProc
	// EdgeSpawnParallel marks a function that starts on a real goroutine —
	// a raw `go` statement or a worker/progress function handed to
	// experiment.RunShards. This is the genuinely parallel path.
	EdgeSpawnParallel
	// EdgeRef marks a function value that escapes (stored, returned or
	// passed) without a known invocation discipline; a sound analysis must
	// assume the holder may call it.
	EdgeRef
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeSpawnProc:
		return "spawn-proc"
	case EdgeSpawnParallel:
		return "spawn-parallel"
	case EdgeRef:
		return "ref"
	}
	return "unknown"
}

// CGNode is one function in the interprocedural call graph: either a
// declared function/method (Fn set) or a function literal (Lit set, Encl
// pointing at the lexically enclosing node).
type CGNode struct {
	Fn   *types.Func  // nil for literals
	Lit  *ast.FuncLit // nil for declared functions
	Pkg  *Package
	Encl *CGNode // enclosing function, literals only
	Body *ast.BlockStmt
	Out  []CGEdge
	In   []CGEdge
}

// Name renders a diagnostic-friendly identifier ("(*sim.Env).Go",
// "experiment.RunShards", "repl.StartApplier$1" for literals).
func (n *CGNode) Name() string {
	if n.Fn != nil {
		return shortFuncName(n.Fn)
	}
	if n.Encl != nil {
		return n.Encl.Name() + "$lit"
	}
	return "$lit"
}

// Pos returns the node's declaration position.
func (n *CGNode) Pos() token.Pos {
	if n.Fn != nil {
		return n.Fn.Pos()
	}
	return n.Lit.Pos()
}

// CGEdge is one may-call relation.
type CGEdge struct {
	Caller  *CGNode
	Callee  *CGNode
	Kind    EdgeKind
	Pos     token.Pos // call site
	Dynamic bool      // resolved by widening an interface method call
}

// CallGraph is the whole-program call graph over every package of a
// Program. Interface method calls are widened to every module type that
// implements the interface, so the graph over-approximates: an edge means
// "may call", absence means the analysis could not see a path (function
// values that escape into non-module code are the known blind spot).
type CallGraph struct {
	Nodes []*CGNode // deterministic: declaration order within load order

	funcs map[*types.Func]*CGNode
	lits  map[*ast.FuncLit]*CGNode
}

// NodeOf returns the node for a declared function or method (resolving
// generic instantiations to their origin), or nil if fn is not part of the
// program.
func (g *CallGraph) NodeOf(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	return g.funcs[fn.Origin()]
}

// LitNodeOf returns the node for a function literal, or nil.
func (g *CallGraph) LitNodeOf(lit *ast.FuncLit) *CGNode { return g.lits[lit] }

// Reachable returns every node reachable from roots over edges whose kind
// passes the filter (nil filter follows every edge). Roots are included.
func (g *CallGraph) Reachable(roots []*CGNode, follow func(EdgeKind) bool) map[*CGNode]bool {
	seen := map[*CGNode]bool{}
	var stack []*CGNode
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if follow != nil && !follow(e.Kind) {
				continue
			}
			if !seen[e.Callee] {
				seen[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return seen
}

// SpawnRoots returns the entry nodes of every context of the given kind:
// for EdgeSpawnParallel, each function that may start on a real goroutine;
// for EdgeSpawnProc, each sim-process/callback body.
func (g *CallGraph) SpawnRoots(kind EdgeKind) []*CGNode {
	var roots []*CGNode
	for _, n := range g.Nodes {
		for _, e := range n.In {
			if e.Kind == kind {
				roots = append(roots, n)
				break
			}
		}
	}
	return roots
}

type cgBuilder struct {
	prog  *Program
	g     *CallGraph
	named []*types.Named // every named type in the program, for widening
	// implCache memoizes interface method -> concrete implementing methods.
	implCache map[*types.Func][]*types.Func
}

func buildCallGraph(prog *Program) *CallGraph {
	b := &cgBuilder{
		prog:      prog,
		g:         &CallGraph{funcs: map[*types.Func]*CGNode{}, lits: map[*ast.FuncLit]*CGNode{}},
		implCache: map[*types.Func][]*types.Func{},
	}
	b.collectNamed()
	// Pass 1: a node per declared function, in deterministic order.
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &CGNode{Fn: fn, Pkg: pkg, Body: fd.Body}
				b.g.funcs[fn] = n
				b.g.Nodes = append(b.g.Nodes, n)
			}
		}
	}
	// Pass 2: walk bodies, adding edges and literal nodes.
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn := pkg.Info.Defs[fd.Name].(*types.Func)
				b.walkBody(b.g.funcs[fn], pkg, fd.Body)
			}
		}
	}
	return b.g
}

func (b *cgBuilder) collectNamed() {
	for _, pkg := range b.prog.Pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok {
					b.named = append(b.named, named)
				}
			}
		}
	}
}

// walkBody adds edges out of cur for every call in body, creating child
// nodes for function literals (whose own bodies are walked under the child,
// not attributed to cur).
func (b *cgBuilder) walkBody(cur *CGNode, pkg *Package, body ast.Node) {
	// litRole is assigned when a literal (or named function value) appears
	// in a recognized position: direct callee, spawn argument, defer, etc.
	litRole := map[*ast.FuncLit]EdgeKind{}
	spawnCall := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			kind, ok := litRole[n]
			if !ok {
				kind = EdgeRef
			}
			child := &CGNode{Lit: n, Pkg: pkg, Encl: cur, Body: n.Body}
			b.g.lits[n] = child
			b.g.Nodes = append(b.g.Nodes, child)
			b.addEdge(cur, child, kind, n.Pos(), false)
			b.walkBody(child, pkg, n.Body)
			return false // children attributed to child, not cur
		case *ast.GoStmt:
			spawnCall[n.Call] = true
			return true
		case *ast.CallExpr:
			b.visitCall(cur, pkg, n, litRole, spawnCall[n])
			return true
		}
		return true
	})
}

func (b *cgBuilder) visitCall(cur *CGNode, pkg *Package, call *ast.CallExpr, litRole map[*ast.FuncLit]EdgeKind, goStmt bool) {
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation, f[T](...). If the index was a
	// real map/slice lookup instead, the unwrapped expression resolves to a
	// variable, not a function, and falls out below — same result.
	switch f := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(f.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(f.X)
	}
	kind := EdgeCall
	if goStmt {
		kind = EdgeSpawnParallel
	}
	// Direct call of a literal: func(){...}().
	if lit, ok := fun.(*ast.FuncLit); ok {
		litRole[lit] = kind
		return
	}
	callees, dynamic := b.resolveCallees(pkg, fun)
	for _, fn := range callees {
		if node := b.g.NodeOf(fn); node != nil {
			b.addEdge(cur, node, kind, call.Pos(), dynamic)
		}
	}
	// Classify function-valued arguments: spawned by the sim scheduler,
	// fanned out by RunShards, or conservatively callable by the callee.
	argKind := EdgeCall
	if len(callees) == 1 {
		switch {
		case isSimSchedulerEntry(callees[0]):
			argKind = EdgeSpawnProc
		case isParallelFanout(callees[0]):
			argKind = EdgeSpawnParallel
		}
	} else if len(callees) == 0 {
		argKind = EdgeRef // unknown holder
	}
	for _, arg := range call.Args {
		switch a := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			litRole[a] = argKind
		default:
			if fn := funcValueOf(pkg, a); fn != nil {
				if node := b.g.NodeOf(fn); node != nil {
					b.addEdge(cur, node, argKind, a.Pos(), false)
				}
			}
		}
	}
}

// resolveCallees maps a call's Fun expression to the set of declared
// functions it may invoke. dynamic reports interface widening.
func (b *cgBuilder) resolveCallees(pkg *Package, fun ast.Expr) ([]*types.Func, bool) {
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[f].(*types.Func); ok {
			return []*types.Func{fn}, false
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[f]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, false
			}
			if types.IsInterface(sel.Recv()) {
				return b.implementers(fn), true
			}
			return []*types.Func{fn}, false
		}
		// Package-qualified function: pkg.F.
		if fn, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok {
			return []*types.Func{fn}, false
		}
	}
	return nil, false
}

// implementers returns every concrete module method that may satisfy a call
// of interface method m, in deterministic order.
func (b *cgBuilder) implementers(m *types.Func) []*types.Func {
	m = m.Origin()
	if impls, ok := b.implCache[m]; ok {
		return impls
	}
	sig := m.Type().(*types.Signature)
	var iface *types.Interface
	if recv := sig.Recv(); recv != nil {
		iface, _ = recv.Type().Underlying().(*types.Interface)
	}
	var impls []*types.Func
	if iface != nil {
		for _, named := range b.named {
			if types.IsInterface(named) {
				continue
			}
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
			if fn, ok := obj.(*types.Func); ok {
				impls = append(impls, fn.Origin())
			}
		}
	}
	sort.Slice(impls, func(i, j int) bool { return impls[i].Pos() < impls[j].Pos() })
	b.implCache[m] = impls
	return impls
}

func (b *cgBuilder) addEdge(caller, callee *CGNode, kind EdgeKind, pos token.Pos, dynamic bool) {
	e := CGEdge{Caller: caller, Callee: callee, Kind: kind, Pos: pos, Dynamic: dynamic}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// funcValueOf resolves an expression used as a function value (not called)
// to the declared function it denotes, or nil: a bare function name or a
// method value x.M.
func funcValueOf(pkg *Package, e ast.Expr) *types.Func {
	switch x := e.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[x].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := pkg.Info.Uses[x.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isSimSchedulerEntry reports whether fn is a sim.Env method whose function
// argument becomes a scheduler-managed context: a process body (Go) or a
// callback (Schedule, After).
func isSimSchedulerEntry(fn *types.Func) bool {
	return isMethodOf(fn, "internal/sim", "Env") &&
		(fn.Name() == "Go" || fn.Name() == "Schedule" || fn.Name() == "After")
}

// isParallelFanout reports whether fn hands its function arguments to real
// goroutines: experiment.RunShards calls progress concurrently from every
// worker.
func isParallelFanout(fn *types.Func) bool {
	return fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/experiment") &&
		fn.Name() == "RunShards"
}

// isMethodOf reports whether fn is a method on *T or T where T is named
// typeName in a package whose import path ends with pkgSuffix.
func isMethodOf(fn *types.Func, pkgSuffix, typeName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// shortFuncName renders "pkg.Func" or "(*pkg.Type).Method" with the last
// path element as the package qualifier.
func shortFuncName(fn *types.Func) string {
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			star = "*"
		}
		if named, ok := t.(*types.Named); ok {
			q := named.Obj().Name()
			if p := named.Obj().Pkg(); p != nil {
				q = lastPathElem(p.Path()) + "." + q
			}
			if star != "" {
				return "(*" + q + ")." + name
			}
			return q + "." + name
		}
	}
	if p := fn.Pkg(); p != nil {
		return lastPathElem(p.Path()) + "." + name
	}
	return name
}

func lastPathElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
