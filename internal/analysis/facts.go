package analysis

import (
	"fmt"
	"go/types"
	"reflect"
)

// Fact is a typed datum an analyzer attaches to a function, variable or
// package so that analysis of downstream packages can reuse it without
// re-inspecting the dependency's source — the x/tools fact model, scoped to
// one in-memory Program (facts never serialize; the whole module is analyzed
// in a single process).
//
// Each analyzer owns its own fact namespace: two analyzers may export
// different facts on the same object without colliding. Within one analyzer,
// at most one fact of each concrete type may be attached per object; a
// second ExportObjectFact of the same type overwrites the first.
//
// Fact types must be pointers to structs and implement AFact, which exists
// only to make accidental exports of non-fact values a compile error.
type Fact interface{ AFact() }

// factStore holds every fact exported during a Program run, keyed by
// (analyzer, object, concrete fact type) for object facts and by
// (analyzer, package, concrete fact type) for package facts.
type factStore struct {
	obj map[objFactKey]Fact
	pkg map[pkgFactKey]Fact
}

type objFactKey struct {
	analyzer string
	obj      types.Object
	t        reflect.Type
}

type pkgFactKey struct {
	analyzer string
	pkg      *types.Package
	t        reflect.Type
}

func newFactStore() *factStore {
	return &factStore{obj: map[objFactKey]Fact{}, pkg: map[pkgFactKey]Fact{}}
}

func factType(f Fact) reflect.Type {
	t := reflect.TypeOf(f)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("analysis: fact %T must be a pointer", f))
	}
	return t
}

// ExportObjectFact attaches fact to obj under the pass's analyzer. obj is
// usually a *types.Func (a summary of the function's behavior) or a
// *types.Var; it must belong to some package of the Program, though this is
// not enforced — facts on foreign objects are simply never imported.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		panic("analysis: ExportObjectFact on nil object")
	}
	p.facts.obj[objFactKey{p.Analyzer.Name, obj, factType(fact)}] = fact
}

// ImportObjectFact copies the fact of ptr's concrete type previously
// exported on obj by this pass's analyzer into *ptr, reporting whether one
// was found. Packages are analyzed in dependency order, so facts exported by
// a dependency are always visible here.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if obj == nil {
		return false
	}
	f, ok := p.facts.obj[objFactKey{p.Analyzer.Name, obj, factType(ptr)}]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.pkg[pkgFactKey{p.Analyzer.Name, p.Pkg, factType(fact)}] = fact
}

// ImportPackageFact copies the fact of ptr's concrete type exported on pkg
// by this pass's analyzer into *ptr, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	f, ok := p.facts.pkg[pkgFactKey{p.Analyzer.Name, pkg, factType(ptr)}]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}
