package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"cloudrepl/internal/analysis"
	"cloudrepl/internal/analysis/analysistest"
)

// loadCallGraphFixture builds the whole-program call graph over the callgraph
// fixture package (plus its sim/experiment dependencies).
func loadCallGraphFixture(t *testing.T) *analysis.CallGraph {
	t.Helper()
	root := moduleRoot(t)
	l, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(analysistest.FixturePath("callgraph"))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(filepath.ToSlash(rel)); err != nil {
		t.Fatal(err)
	}
	return analysis.NewProgram(l).CallGraph()
}

func nodeByName(t *testing.T, cg *analysis.CallGraph, name string) *analysis.CGNode {
	t.Helper()
	var found *analysis.CGNode
	for _, n := range cg.Nodes {
		if n.Name() == name {
			if found != nil {
				t.Fatalf("two nodes named %s", name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node named %s", name)
	}
	return found
}

func edgesTo(n *analysis.CGNode, callee string) []analysis.CGEdge {
	var out []analysis.CGEdge
	for _, e := range n.Out {
		if e.Callee.Name() == callee {
			out = append(out, e)
		}
	}
	return out
}

func TestCallGraphDirectCall(t *testing.T) {
	cg := loadCallGraphFixture(t)
	es := edgesTo(nodeByName(t, cg, "callgraph.direct"), "callgraph.helper")
	if len(es) != 1 || es[0].Kind != analysis.EdgeCall || es[0].Dynamic {
		t.Fatalf("direct -> helper edges = %v, want one static EdgeCall", es)
	}
}

func TestCallGraphInterfaceWidening(t *testing.T) {
	cg := loadCallGraphFixture(t)
	n := nodeByName(t, cg, "callgraph.viaInterface")
	var callees []string
	for _, e := range n.Out {
		if e.Kind == analysis.EdgeCall && strings.HasSuffix(e.Callee.Name(), ".Tick") {
			if !e.Dynamic {
				t.Errorf("widened edge to %s not marked Dynamic", e.Callee.Name())
			}
			callees = append(callees, e.Callee.Name())
		}
	}
	if len(callees) != 2 {
		t.Fatalf("interface call widened to %v, want both fast.Tick and slow.Tick", callees)
	}
}

func TestCallGraphSpawnKinds(t *testing.T) {
	cg := loadCallGraphFixture(t)

	if es := edgesTo(nodeByName(t, cg, "callgraph.spawnProc"), "callgraph.spawnProc$lit"); len(es) != 1 || es[0].Kind != analysis.EdgeSpawnProc {
		t.Errorf("env.Go literal edges = %v, want one EdgeSpawnProc", es)
	}
	if es := edgesTo(nodeByName(t, cg, "callgraph.spawnGoroutine"), "callgraph.helper"); len(es) != 1 || es[0].Kind != analysis.EdgeSpawnParallel {
		t.Errorf("go-statement edges = %v, want one EdgeSpawnParallel", es)
	}
	if es := edgesTo(nodeByName(t, cg, "callgraph.spawnWorkers"), "callgraph.spawnWorkers$lit"); len(es) != 1 || es[0].Kind != analysis.EdgeSpawnParallel {
		t.Errorf("RunShards callback edges = %v, want one EdgeSpawnParallel", es)
	}
	if es := edgesTo(nodeByName(t, cg, "callgraph.escape"), "callgraph.helper"); len(es) != 1 || es[0].Kind != analysis.EdgeRef {
		t.Errorf("escaped func value edges = %v, want one EdgeRef", es)
	}
}

func TestCallGraphSpawnRootsAndReachability(t *testing.T) {
	cg := loadCallGraphFixture(t)

	roots := cg.SpawnRoots(analysis.EdgeSpawnParallel)
	names := map[string]bool{}
	for _, r := range roots {
		names[r.Name()] = true
	}
	// helper is spawned directly by the go statement; the RunShards callback
	// literal is the other parallel entry in this fixture's package.
	if !names["callgraph.helper"] || !names["callgraph.spawnWorkers$lit"] {
		t.Fatalf("parallel roots = %v, want callgraph.helper and callgraph.spawnWorkers$lit", names)
	}

	// From the sim-proc literal, plain-call reachability includes helper.
	procRoots := []*analysis.CGNode{nodeByName(t, cg, "callgraph.spawnProc$lit")}
	reach := cg.Reachable(procRoots, func(k analysis.EdgeKind) bool { return k == analysis.EdgeCall })
	if !reach[nodeByName(t, cg, "callgraph.helper")] {
		t.Error("helper not reachable from the sim-proc body over call edges")
	}
	if reach[nodeByName(t, cg, "callgraph.direct")] {
		t.Error("reachability leaked backwards to a caller")
	}
}
