package analysis

import (
	"fmt"
	"go/token"
	"go/types"
)

// Program is one whole-module analysis universe: every package the loader
// type-checked (targets plus their module-internal dependencies) in
// dependency order, a shared fact store, and a lazily-built interprocedural
// call graph. All cross-package analysis — fact import/export, call-graph
// reachability, the lockorder cycle check — happens within one Program so
// that types.Object identities line up across packages.
type Program struct {
	// Pkgs lists every loaded module package in topological order:
	// dependencies strictly before dependents. This is the order passes run
	// in, which is what makes ImportObjectFact on a dependency's object
	// always see the dependency's exports.
	Pkgs   []*Package
	ByPath map[string]*Package
	Fset   *token.FileSet

	facts *factStore
	cg    *CallGraph
}

// NewProgram assembles a Program from everything l has loaded so far.
// Callers load their target patterns first; the loader's completion order
// (a dependency finishes loading before any dependent) provides the
// topological order directly.
func NewProgram(l *Loader) *Program {
	prog := &Program{
		Pkgs:   append([]*Package(nil), l.loadOrder...),
		ByPath: map[string]*Package{},
		Fset:   l.fset,
		facts:  newFactStore(),
	}
	for _, pkg := range prog.Pkgs {
		prog.ByPath[pkg.Path] = pkg
	}
	return prog
}

// CallGraph returns the program's interprocedural call graph, building it on
// first use.
func (prog *Program) CallGraph() *CallGraph {
	if prog.cg == nil {
		prog.cg = buildCallGraph(prog)
	}
	return prog.cg
}

// FinishPass is handed to an Analyzer's Finish hook after every per-package
// pass has run: the whole Program (with all exported facts) plus a reporter.
type FinishPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags *[]Diagnostic
	facts *factStore
}

// Reportf records a whole-program diagnostic at pos.
func (f *FinishPass) Reportf(pos token.Pos, format string, args ...any) {
	*f.diags = append(*f.diags, Diagnostic{
		Analyzer: f.Analyzer.Name,
		Pos:      f.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ImportObjectFact imports an object fact exported by this analyzer during
// the per-package phase (same semantics as Pass.ImportObjectFact).
func (f *FinishPass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	p := &Pass{Analyzer: f.Analyzer, facts: f.facts}
	return p.ImportObjectFact(obj, ptr)
}

// RunProgram applies analyzers to the program's target packages in
// dependency order, then runs each analyzer's Finish hook once. targets nil
// means every package in the program. Diagnostics come back sorted by
// position; directive suppression is layered on top by the caller.
func RunProgram(prog *Program, analyzers []*Analyzer, targets []*Package) ([]Diagnostic, error) {
	if targets == nil {
		targets = prog.Pkgs
	}
	want := map[*Package]bool{}
	for _, pkg := range targets {
		want[pkg] = true
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range prog.Pkgs { // dependency order
			if !want[pkg] || a.Run == nil {
				continue // Finish-only analyzers have no per-package phase
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Path:     pkg.Path,
				Info:     pkg.Info,
				Prog:     prog,
				facts:    prog.facts,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
		if a.Finish != nil {
			fp := &FinishPass{Analyzer: a, Prog: prog, diags: &diags, facts: prog.facts}
			if err := a.Finish(fp); err != nil {
				return nil, fmt.Errorf("%s (finish): %w", a.Name, err)
			}
		}
	}
	// Whole-program analyzers may report into dependency packages that are
	// not targets (e.g. a lock cycle whose edges span both); keep only
	// diagnostics landing in target files so narrow patterns stay narrow.
	targetFiles := map[string]bool{}
	for _, pkg := range targets {
		for _, f := range pkg.Files {
			targetFiles[prog.Fset.Position(f.Pos()).Filename] = true
		}
	}
	var kept []Diagnostic
	for _, d := range diags {
		if targetFiles[d.Pos.Filename] {
			kept = append(kept, d)
		}
	}
	sortDiagnostics(kept)
	return kept, nil
}
