// Fixture for the closecheck analyzer: error results dropped in statement
// position and discarded resource accessors are flagged; explicit discards,
// defers and the fmt printers are not.
package closecheck

import (
	"errors"
	"fmt"
	"strings"
)

type conn struct{}

type queue struct{}

func (queue) Get() (int, bool)    { return 0, false }
func (queue) TryGet() (int, bool) { return 0, false }
func (queue) Peek() (int, bool)   { return 0, false }
func (queue) Close()              {}

type pool struct{}

func (pool) Borrow() (conn, error) { return conn{}, nil }

type span struct{}

func (*span) End() {}

type snapshotHandle struct{}

func (*snapshotHandle) Close() {}

type engine struct{}

func (*engine) Pin() *snapshotHandle { return nil }

type tracer struct{}

func (*tracer) StartSpan(stage, name string) *span            { return nil }
func (*tracer) StartLinked(stage, name string, ref int) *span { return nil }

func exec() error { return errors.New("boom") }

func bad(q queue, pl pool, tr *tracer, e *engine) {
	exec()                          // want `result of exec dropped: the error is silently ignored`
	q.Get()                         // want `result of q\.Get dropped: the returned resource/message is lost`
	q.TryGet()                      // want `result of q\.TryGet dropped`
	q.Peek()                        // want `result of q\.Peek dropped`
	pl.Borrow()                     // want `result of pl\.Borrow dropped: the error is silently ignored`
	tr.StartSpan("client", "exec")  // want `result of tr\.StartSpan dropped`
	tr.StartLinked("apply", "a", 1) // want `result of tr\.StartLinked dropped`
	e.Pin()                         // want `result of e\.Pin dropped`
}

func ok(q queue, pl pool, tr *tracer, e *engine) {
	_, _ = q.Get() // explicit discard is visible and greppable
	_ = exec()
	if err := exec(); err != nil {
		_ = err
	}
	c, err := pl.Borrow()
	_ = c
	_ = err
	q.Close() // no results to drop
	sp := tr.StartSpan("client", "exec")
	sp.End()
	_ = tr.StartLinked("apply", "a", 1) // explicit discard allowed
	h := e.Pin()
	h.Close()
	defer func() { _ = exec() }()
	fmt.Println("printer errors are exempt")
	var b strings.Builder
	b.WriteString("infallible")
	_ = b.String()
}

//cloudrepl:allow-closecheck fixture exercising the annotation escape hatch
func allowed() {
	exec()
}
