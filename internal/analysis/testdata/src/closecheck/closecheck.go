// Fixture for the closecheck analyzer: discarded resource accessors (queue
// reads, pool borrows, span starts, snapshot pins) are flagged; explicit
// discards and consumed handles are not. Dropped plain errors are errdrop's
// job and do not appear here.
package closecheck

import (
	"errors"
	"fmt"
	"strings"
)

type conn struct{}

type queue struct{}

func (queue) Get() (int, bool)    { return 0, false }
func (queue) TryGet() (int, bool) { return 0, false }
func (queue) Peek() (int, bool)   { return 0, false }
func (queue) Close()              {}

type pool struct{}

func (pool) Borrow() (conn, error) { return conn{}, nil }

type span struct{}

func (*span) End() {}

type snapshotHandle struct{}

func (*snapshotHandle) Close() {}

type engine struct{}

func (*engine) Pin() *snapshotHandle { return nil }

type statement struct{}

func (*statement) Run() error { return nil }

func (*engine) Prepare(sql string) (*statement, error) { return nil, nil }

type tracer struct{}

func (*tracer) StartSpan(stage, name string) *span            { return nil }
func (*tracer) StartLinked(stage, name string, ref int) *span { return nil }

func exec() error { return errors.New("boom") }

func bad(q queue, pl pool, tr *tracer, e *engine) {
	q.Get()                         // want `result of q\.Get dropped: the returned resource/message is lost`
	q.TryGet()                      // want `result of q\.TryGet dropped`
	q.Peek()                        // want `result of q\.Peek dropped`
	pl.Borrow()                     // want `result of pl\.Borrow dropped: the returned resource/message is lost`
	tr.StartSpan("client", "exec")  // want `result of tr\.StartSpan dropped`
	tr.StartLinked("apply", "a", 1) // want `result of tr\.StartLinked dropped`
	e.Pin()                         // want `result of e\.Pin dropped`
	e.Prepare("SELECT 1")           // want `result of e\.Prepare dropped`
}

func ok(q queue, pl pool, tr *tracer, e *engine) {
	_, _ = q.Get() // explicit discard is visible and greppable
	_ = exec()     // dropped errors are errdrop's domain, not closecheck's
	exec()         // likewise: statement-position error drop is not a handle drop
	c, err := pl.Borrow()
	_ = c
	_ = err
	q.Close() // no results to drop
	sp := tr.StartSpan("client", "exec")
	sp.End()
	_ = tr.StartLinked("apply", "a", 1) // explicit discard allowed
	h := e.Pin()
	h.Close()
	st, err := e.Prepare("SELECT 1")
	_ = err
	_ = st.Run()
	fmt.Println("non-handle calls are out of scope")
	var b strings.Builder
	b.WriteString("infallible")
	_ = b.String()
}

//cloudrepl:allow-closecheck fixture exercising the annotation escape hatch
func allowed(q queue) {
	q.Get()
}
