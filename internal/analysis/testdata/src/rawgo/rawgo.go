// Fixture for the rawgo analyzer: raw go statements are flagged in
// sim-model code; the annotation escape hatch is honored.
package rawgo

func work() {}

func bad() {
	go work()      // want `raw go statement`
	go func() {}() // want `raw go statement`
	defer work()   // defer is synchronous: not flagged
}

//cloudrepl:allow-rawgo fixture exercising the annotation escape hatch
func allowed() {
	go work()
}
