// Fixture for the lockorder analyzer: acquiring sim resources in opposite
// orders in two code paths (directly or through a callee's summary) forms a
// cycle in the global acquisition graph, as does waiting on a signal while
// holding a resource the broadcaster must acquire first. Consistent global
// order is not flagged, and the allow directive suppresses a known-benign
// inversion.
package lockorder

import (
	"time"

	"cloudrepl/internal/sim"
)

type server struct {
	cpu   *sim.Resource
	disk  *sim.Resource
	net   *sim.Resource
	ready *sim.Signal
	a     *sim.Resource
	b     *sim.Resource
}

// cpuThenDisk holds cpu and acquires disk through a helper: the cpu→disk
// edge comes from useDisk's summary, not a direct primitive call.
func (s *server) cpuThenDisk(p *sim.Proc) {
	s.cpu.Acquire(p)
	s.useDisk(p)
	s.cpu.Release()
}

func (s *server) useDisk(p *sim.Proc) {
	s.disk.Acquire(p)
	s.disk.Release()
}

// diskThenCpu closes the cycle: disk held, cpu acquired.
func (s *server) diskThenCpu(p *sim.Proc) {
	s.disk.Acquire(p)
	s.cpu.Acquire(p) // want `potential lock-order cycle: lockorder\.cpu → lockorder\.disk → lockorder\.cpu`
	s.cpu.Release()
	s.disk.Release()
}

// waitHoldingNet parks on ready while holding net ...
func (s *server) waitHoldingNet(p *sim.Proc) {
	s.net.Acquire(p)
	s.ready.Wait(p)
	s.net.Release()
}

// ... and the only broadcaster must get through net first: a wait-for cycle
// the runtime detector would only see on an unlucky schedule.
func (s *server) wakeAfterNet(p *sim.Proc) {
	s.net.Use(p, time.Millisecond)
	s.ready.Broadcast() // want `potential lock-order cycle: lockorder\.net → lockorder\.ready → lockorder\.net`
}

// consistentOrder takes the same locks in the global order everywhere: no
// cycle, no finding.
func (s *server) consistentOrder(p *sim.Proc) {
	s.cpu.Acquire(p)
	s.disk.Acquire(p)
	s.disk.Release()
	s.cpu.Release()
}

// branchesMerge exercises the union merge: either arm may leave cpu held,
// but both arms order cpu before disk, so no cycle appears.
func (s *server) branchesMerge(p *sim.Proc, fast bool) {
	if fast {
		s.cpu.Acquire(p)
	} else {
		s.cpu.AcquireHigh(p)
	}
	s.disk.Use(p, time.Millisecond)
	s.cpu.Release()
}

//cloudrepl:allow-lockorder drain path runs only at shutdown, after all b-holders exit
func (s *server) allowedInversion(p *sim.Proc) {
	s.b.Acquire(p)
	s.a.Acquire(p)
	s.a.Release()
	s.b.Release()
}

// orderedPair is the other half of the suppressed inversion.
func (s *server) orderedPair(p *sim.Proc) {
	s.a.Acquire(p)
	s.b.Acquire(p)
	s.b.Release()
	s.a.Release()
}
