// Fixture for the sharedstate analyzer: package-level state touched from
// RunShards workers or raw goroutines is flagged (writes always, reads when
// the var is written anywhere), as are locals captured and written by two
// sim procs that never synchronize through a sim primitive. Read-only
// globals, single-writer captures, and primitive-guarded captures are fine.
package sharedstate

import (
	"cloudrepl/internal/experiment"
	"cloudrepl/internal/sim"
)

var hits int
var hits2 int
var hits3 int
var total int
var configName string
var approx int

func runAll(specs []experiment.RunSpec) {
	total = len(specs) // sequential setup write: fine on its own
	_, _ = experiment.RunShards(specs, 2, func(i int, res experiment.RunResult) {
		hits++ // want `package-level var hits written from sharedstate\.runAll\$lit, which runs on a real goroutine`
		bump()
		_ = total      // want `package-level var total read from sharedstate\.runAll\$lit, which runs on a real goroutine, and written at`
		_ = configName // never written anywhere: reads cannot race
	})
}

// bump is worker context by reachability: the call graph carries the
// parallel root through ordinary calls.
func bump() {
	hits2++ // want `package-level var hits2 written from sharedstate\.bump`
}

func rawGoroutine() {
	go func() {
		hits3++ // want `package-level var hits3 written from`
	}()
}

func unsyncProcs(env *sim.Env) {
	counter := 0
	env.Go("a", func(p *sim.Proc) { counter++ })
	env.Go("b", func(p *sim.Proc) { counter++ }) // want `captured variable counter is written by 2 spawned sim procs with no sim-primitive synchronization`
	_ = counter
}

func guardedProcs(env *sim.Env) {
	gate := sim.NewResource(env, "gate", 1)
	counter := 0
	env.Go("a", func(p *sim.Proc) { gate.Acquire(p); counter++; gate.Release() })
	env.Go("b", func(p *sim.Proc) { gate.Acquire(p); counter++; gate.Release() })
	_ = counter
}

func singleWriter(env *sim.Env) {
	done := false
	env.Go("only", func(p *sim.Proc) { done = true })
	_ = done
}

func parallelCapture(specs []experiment.RunSpec) {
	sum := 0
	_, _ = experiment.RunShards(specs, 2, func(i int, res experiment.RunResult) { sum++ })
	go func() { sum++ }() // want `captured variable sum is written by 2 concurrent goroutines \(data race\)`
	_ = sum
}

//cloudrepl:allow-sharedstate fixture exercising the annotation escape hatch
func allowedWrite(specs []experiment.RunSpec) {
	_, _ = experiment.RunShards(specs, 1, func(i int, res experiment.RunResult) { approx++ })
}
