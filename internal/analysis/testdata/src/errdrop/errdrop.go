// Fixture for the errdrop analyzer: error results dropped in statement
// position, deferred, or launched on a goroutine are flagged, as are error
// variables assigned from a call and never read. Wrappers whose error is
// statically always nil are exempt — including wrappers in another package,
// whose NilErrorFact arrives through the fact store rather than re-analysis.
package errdrop

import (
	"errors"
	"fmt"
	"strings"

	"cloudrepl/internal/analysis/testdata/src/errdrop/nilwrap"
)

func fallible() error { return errors.New("boom") }

func localNil() error { return nil }

func localNilChain() error { return localNil() }

func tupleNil() (int, error) { return 42, nil }

func bad() {
	fallible()                           // want `error result of fallible dropped: nobody observes the failure`
	defer fallible()                     // want `deferred error result of fallible dropped`
	go fallible()                        // want `goroutine error result of fallible dropped`
	nilwrap.Fails()                      // want `error result of nilwrap\.Fails dropped`
	func() error { return fallible() }() // want `error result of call dropped`
}

func deadStores() {
	err := fallible() // want `error assigned to err is never read: the failure from fallible is silently dropped`
	err = fallible()
	if err != nil {
		_ = err
	}
	v, err := tupleNil() // want `error assigned to err is never read: the failure from tupleNil`
	_ = v
}

func okDrops() {
	localNil()      // always-nil wrapper, same package: exempt
	localNilChain() // nil-ness propagates through the local chain
	nilwrap.Reset() // always-nil wrapper, other package: exempt via NilErrorFact
	nilwrap.Chain() // fact-backed through one forwarding level
	_ = fallible()  // explicit discard is visible and greppable
	fmt.Println("printer errors are exempt")
	var b strings.Builder
	b.WriteString("infallible")
	_ = b.String()
}

func okReads() error {
	if err := fallible(); err != nil {
		return err
	}
	err := fallible()
	return err
}

func okLoop() {
	var err error
	for i := 0; i < 3; i++ {
		if err != nil {
			break // reads the previous iteration's store
		}
		err = fallible()
	}
}

func branchesNotSequential(cond bool) error {
	var err error
	if cond {
		err = fallible()
	} else {
		err = fallible()
	}
	return err // rescues both branch stores: different lists, no kill window
}

//cloudrepl:allow-errdrop fixture exercising the annotation escape hatch
func allowed() {
	fallible()
}
