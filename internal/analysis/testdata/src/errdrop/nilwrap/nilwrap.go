// Package nilwrap provides always-nil and fallible functions for the errdrop
// fixture's cross-package fact test: errdrop exports NilErrorFact on Reset
// and Chain while analyzing this package, and the importing fixture package
// consumes those facts instead of re-deriving them.
package nilwrap

import "errors"

// Reset never fails; dropping its error is provably harmless.
func Reset() error { return nil }

// Chain forwards Reset: still always nil, through one level of call.
func Chain() error { return Reset() }

// Fails returns a real error; dropping it loses a failure.
func Fails() error { return errors.New("nilwrap: fails") }
