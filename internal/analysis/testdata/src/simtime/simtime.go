// Fixture for the simtime analyzer: every wall-clock read or wait is
// flagged; virtual-time constructions and annotated uses are not.
package simtime

import "time"

func bad() {
	_ = time.Now()              // want `wall-clock call time\.Now`
	time.Sleep(time.Second)     // want `wall-clock call time\.Sleep`
	<-time.After(time.Second)   // want `wall-clock call time\.After`
	_ = time.NewTimer(0)        // want `wall-clock call time\.NewTimer`
	_ = time.NewTicker(1)       // want `wall-clock call time\.NewTicker`
	_ = time.Tick(time.Second)  // want `wall-clock call time\.Tick`
	_ = time.AfterFunc(0, bad)  // want `wall-clock call time\.AfterFunc`
	_ = time.Since(time.Time{}) // want `wall-clock call time\.Since`
	_ = time.Until(time.Time{}) // want `wall-clock call time\.Until`
}

func ok() {
	d := 5 * time.Second // duration arithmetic carries no clock
	_ = d
	t := time.Unix(0, 0) // constructing an absolute instant is fine
	_ = t.Add(d)
}

// okShadow proves resolution is type-based: a local identifier named time
// is not the time package.
func okShadow() {
	time := struct{ f func() int64 }{f: func() int64 { return 0 }}
	_ = time.f()
}

// allowed demonstrates the escape hatch: the directive in this doc comment
// covers the whole function.
//
//cloudrepl:allow-simtime fixture exercising the annotation escape hatch
func allowed() {
	_ = time.Now()
}

func allowedInline() {
	_ = time.Now() //cloudrepl:allow-simtime inline escape hatch
}
