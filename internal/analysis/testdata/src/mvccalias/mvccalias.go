// Fixture for the mvccalias analyzer: Table.Rows and Row.Values return the
// engine's live backing storage, so writing through a retained reference —
// even one laundered through a local, a range element, or a wrapper function
// — mutates committed row versions behind the commit-stamped write path.
// Copies are fine, reads are fine, and the engine's own package is exempt.
package mvccalias

import (
	"sort"

	"cloudrepl/internal/sqlengine"
)

// mutateAfterSnapshot is the seeded bug from the acceptance criteria: take a
// live alias, cut a snapshot, then scribble over the shared backing array —
// the "consistent" snapshot now disagrees with what its readers see.
func mutateAfterSnapshot(e *sqlengine.Engine, t *sqlengine.Table) *sqlengine.Snapshot {
	rows := t.Rows()
	snap := e.Snapshot()
	rows[0] = nil // want `write through live MVCC storage alias rows`
	return snap
}

func mutateValues(t *sqlengine.Table) {
	r := t.Rows()[0]
	vals := r.Values()
	vals[1] = sqlengine.Value{} // want `write through live MVCC storage alias vals`
}

func mutateViaRange(t *sqlengine.Table) {
	for _, r := range t.Rows() {
		vs := r.Values()
		vs[0] = sqlengine.Value{} // want `write through live MVCC storage alias vs`
	}
}

func sortInPlace(t *sqlengine.Table) {
	rows := t.Rows()
	sort.Slice(rows, func(i, j int) bool { return i < j }) // want `in-place sort of live MVCC storage alias rows`
}

func copyInto(t *sqlengine.Table, fresh []*sqlengine.Row) {
	rows := t.Rows()
	copy(rows, fresh) // want `copy into live MVCC storage alias rows`
}

func appendIntoCapacity(t *sqlengine.Table, extra *sqlengine.Row) {
	rows := t.Rows()
	_ = append(rows[:0], extra) // want `append to live MVCC storage alias`
}

// liveRows launders the alias through a wrapper: round one of the analysis
// marks it with AliasFact, round two treats its calls as sources.
func liveRows(t *sqlengine.Table) []*sqlengine.Row {
	return t.Rows()
}

func mutateViaWrapper(t *sqlengine.Table) {
	rs := liveRows(t)
	rs[0] = nil // want `write through live MVCC storage alias rs`
}

func readsAreFine(t *sqlengine.Table) int {
	rows := t.Rows()
	n := 0
	for _, r := range rows {
		n += len(r.Values())
	}
	return n
}

func copyFirstIsFine(t *sqlengine.Table) {
	cp := append([]*sqlengine.Row(nil), t.Rows()...)
	sort.Slice(cp, func(i, j int) bool { return i < j })
	cp[0] = nil
}

//cloudrepl:allow-mvccalias fixture exercising the annotation escape hatch
func allowed(t *sqlengine.Table) {
	rows := t.Rows()
	rows[0] = nil
}
