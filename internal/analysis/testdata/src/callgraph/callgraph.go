// Fixture for call-graph unit tests (callgraph_test.go): one example of each
// edge kind — a direct call, an interface call widened to its module
// implementers, a sim-proc spawn, a parallel spawn through both a go
// statement and a RunShards callback, and a function value passed to an
// unknown consumer (reference edge).
package callgraph

import (
	"cloudrepl/internal/experiment"
	"cloudrepl/internal/sim"
)

type ticker interface{ Tick() }

type fast struct{}

func (fast) Tick() {}

type slow struct{}

func (slow) Tick() {}

func helper() {}

func direct() { helper() }

func viaInterface(t ticker) { t.Tick() }

func spawnProc(env *sim.Env) {
	env.Go("worker", func(p *sim.Proc) {
		helper()
	})
}

func spawnGoroutine() {
	go helper()
}

func spawnWorkers(specs []experiment.RunSpec) {
	_, _ = experiment.RunShards(specs, 2, func(i int, res experiment.RunResult) {
		helper()
	})
}

func escape(sink func(func())) {
	sink(helper) // unknown consumer: reference edge, not a call edge
}
