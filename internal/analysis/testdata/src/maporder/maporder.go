// Fixture for the maporder analyzer: map ranges whose body can observe
// iteration order are flagged; pure order-insensitive collection loops
// (collect-then-sort, set insert, integer counting) are not.
package maporder

import "sort"

func bad(m map[string]int) {
	for k := range m { // want `range over map`
		println(k) // emits in hash order
	}
	var sum float64
	for _, v := range m { // want `range over map`
		sum += float64(v) // float addition is order-dependent
	}
	var first string
	for k := range m { // want `range over map`
		first = k // keeps an arbitrary element
		break
	}
	_ = first
	var out []string
	for k, v := range m { // want `range over map`
		if v > 0 {
			out = append(out, k)
		} else {
			println(k) // one branch escapes the collection pattern
		}
	}
}

func good(m map[string]int, ptr *map[string]int) []string {
	var keys []string
	for k := range m { // pure collection: collect then sort
		keys = append(keys, k)
	}
	sort.Strings(keys)
	n := 0
	for _, v := range m { // integer accumulation commutes
		n += v
	}
	count := 0
	for _, v := range m { // conditional counting still commutes
		if v > 0 {
			count++
			continue
		}
		count += 2
	}
	seen := map[string]bool{}
	for k := range m { // set insert
		seen[k] = true
	}
	for k := range *ptr { // deref'd maps are handled too
		delete(m, k)
	}
	var sl []int
	for range sl { // slices are ordered: never flagged
		n++
	}
	return keys
}
