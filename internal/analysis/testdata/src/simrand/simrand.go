// Fixture for the simrand analyzer: global math/rand functions and source
// construction outside the sim kernel are flagged; drawing from an
// env-threaded *rand.Rand is not.
package simrand

import "math/rand"

func bad() {
	_ = rand.Intn(10)                  // want `global math/rand\.Intn`
	_ = rand.Float64()                 // want `global math/rand\.Float64`
	_ = rand.Perm(4)                   // want `global math/rand\.Perm`
	rand.Shuffle(3, func(int, int) {}) // want `global math/rand\.Shuffle`
	src := rand.NewSource(1)           // want `rand\.NewSource outside the sim kernel`
	_ = rand.New(src)                  // want `rand\.New outside the sim kernel`
}

// ok draws from a threaded source: methods on *rand.Rand share the
// package's objects, so this proves the analyzer separates the package
// qualifier from instance methods.
func ok(rng *rand.Rand) int {
	rng.Shuffle(3, func(int, int) {})
	return rng.Intn(10) + int(rng.Int63n(5))
}

//cloudrepl:allow-simrand fixture exercising the annotation escape hatch
func allowed() int {
	return rand.Intn(10)
}
