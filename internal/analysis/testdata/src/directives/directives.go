// Package directives exercises allow-directive handling: a used directive
// whose doc-comment scope covers a whole declaration, a stale directive, an
// unknown-analyzer typo, and a reason-less directive (which must not
// suppress anything).
package directives

import "time"

// covered's doc comment holds a well-formed directive, so both wall-clock
// calls in the body are suppressed.
//
//cloudrepl:allow-simtime fixture: the directive covers the whole declaration
func covered() {
	_ = time.Now()
	time.Sleep(time.Millisecond)
}

//cloudrepl:allow-rawgo nothing in this file spawns a goroutine, so this directive is stale
func stale() {}

//cloudrepl:allow-nosuchanalyzer the analyzer name is a typo
func unknown() {}

//cloudrepl:allow-simtime
func noReason() {
	_ = time.Now()
}
