package analysis

import "go/ast"

// rawGoExemptPkgs may use raw goroutines: the experiment harness fans
// whole, self-contained simulations out across OS threads (each worker owns
// a private Env, so nothing races the virtual clock), and the lint driver
// itself is ordinary host tooling.
var rawGoExemptPkgs = map[string]bool{
	"cloudrepl/internal/experiment": true,
	"cloudrepl/internal/analysis":   true,
	"cloudrepl/cmd/cloudrepl-lint":  true,
}

// RawGo forbids `go` statements in sim-model code. A goroutine the
// scheduler does not manage runs concurrently with the event loop, races
// the virtual clock and re-introduces host-scheduling nondeterminism; model
// concurrency must be spawned with sim.Env.Go so the kernel serializes it.
// The kernel's own process launcher carries a //cloudrepl:allow-rawgo
// annotation.
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc: "forbid raw `go` statements in sim-model packages; spawn processes with " +
		"sim.Env.Go so the scheduler serializes them against the virtual clock",
	Run: runRawGo,
}

func runRawGo(pass *Pass) error {
	if rawGoExemptPkgs[pass.Path] {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			pass.Reportf(g.Pos(), "raw go statement in sim-model code: unmanaged goroutines race the virtual clock; spawn with sim.Env.Go(name, fn) or annotate //cloudrepl:allow-rawgo <reason>")
		}
		return true
	})
	return nil
}
