package analysis

import (
	"go/ast"
)

// wallClockFuncs are the package time functions that read or wait on the
// wall clock. Any use inside sim-driven code makes a run depend on host
// scheduling instead of the virtual timeline, which silently breaks
// seed-reproducibility of every figure.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// SimTime forbids wall-clock access (time.Now, time.Sleep, timers and
// tickers) in simulation-driven code. Virtual time comes from sim.Env:
// use Env.Now / Proc.Sleep / Env.Schedule instead. The two legitimate
// wall-clock users — sim.RunRealtime's pacing loop and the bench CLI's
// total-wall-time line — carry //cloudrepl:allow-simtime annotations.
var SimTime = &Analyzer{
	Name: "simtime",
	Doc: "forbid wall-clock access (time.Now/Sleep/After/Tick/NewTimer/NewTicker/Since/Until) " +
		"in sim-driven code; virtual time must come from sim.Env",
	Run: runSimTime,
}

func runSimTime(pass *Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !wallClockFuncs[sel.Sel.Name] || !isPkgQualifier(pass.Info, sel.X) {
			return true
		}
		obj := pass.ObjectOf(sel.Sel)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
			return true
		}
		pass.Reportf(sel.Pos(), "wall-clock call time.%s in sim-driven code: use the virtual clock (sim.Env.Now, Proc.Sleep, Env.Schedule) or annotate //cloudrepl:allow-simtime <reason>", sel.Sel.Name)
		return true
	})
	return nil
}
