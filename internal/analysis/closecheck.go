package analysis

import (
	"go/ast"
	"go/types"
)

// mustConsumeMethods name the simulator-resource accessors whose results
// must not be dropped: a Borrow whose connection is discarded leaks a pool
// slot until eviction, a Get/TryGet/Peek whose value is discarded silently
// loses a replication message, a StartSpan/StartLinked whose span handle
// is dropped can never be ended — the span stays on the process's open-span
// stack forever, mis-parenting every later span on that process and counting
// as an orphan in the trace export — and a Pin whose snapshot handle is
// dropped can never be Closed, so the engine's MVCC garbage collector keeps
// every row version newer than the pin alive forever.
var mustConsumeMethods = map[string]bool{
	"Borrow":      true,
	"Get":         true,
	"TryGet":      true,
	"Peek":        true,
	"StartSpan":   true,
	"StartLinked": true,
	"Pin":         true,
}

// droppedErrorExempt lists error-returning calls whose drop is idiomatic
// and harmless: the fmt printers (their error is the terminal's problem)
// and the infallible strings.Builder / bytes.Buffer writers.
func droppedErrorExempt(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil {
		return false
	}
	if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		switch obj.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
				case "strings.Builder", "bytes.Buffer":
					return true
				}
			}
		}
	}
	return false
}

// CloseCheck flags calls whose results are silently dropped in statement
// position: any call returning an error (a failed Exec/Close/Scale that
// nobody observes), resource accessors (Borrow/Get/TryGet/Peek) whose
// dropped return value leaks capacity or loses a message, and span starters
// (StartSpan/StartLinked) whose dropped handle wedges the tracer's open-span
// stack. An explicit `_ = f()` discard is allowed — it is visible and
// greppable — as are deferred calls, the fmt printers and infallible
// Builder/Buffer writes.
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc: "flag dropped error results and discarded sim-resource handles " +
		"(Borrow/Get/TryGet/Peek, StartSpan/StartLinked, Pin) that would silently " +
		"leak capacity, wedge the tracer, or pin MVCC version chains",
	Run: runCloseCheck,
}

func runCloseCheck(pass *Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callReturnsError(pass, call) && !droppedErrorExempt(pass, call) {
			pass.Reportf(call.Pos(), "result of %s dropped: the error is silently ignored; handle it or discard explicitly with _ =", calleeName(call))
			return true
		}
		if name, ok := calleeMethodName(call); ok && mustConsumeMethods[name] && callHasResults(pass, call) {
			pass.Reportf(call.Pos(), "result of %s dropped: the returned resource/message is lost, leaking capacity; consume it or discard explicitly with _ =", calleeName(call))
		}
		return true
	})
	return nil
}

// callReturnsError reports whether any result of the call has type error.
func callReturnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func callHasResults(pass *Pass, call *ast.CallExpr) bool {
	switch t := pass.TypeOf(call).(type) {
	case nil:
		return false
	case *types.Tuple:
		return t.Len() > 0
	default:
		return true
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}

func calleeMethodName(call *ast.CallExpr) (string, bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name, true
	}
	return "", false
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	case *ast.IndexExpr:
		return calleeName(&ast.CallExpr{Fun: f.X})
	}
	return "call"
}
