package analysis

import (
	"go/ast"
	"go/types"
)

// mustConsumeMethods name the simulator-resource accessors whose results
// must not be dropped: a Borrow whose connection is discarded leaks a pool
// slot until eviction, a Get/TryGet/Peek whose value is discarded silently
// loses a replication message, a StartSpan/StartLinked whose span handle
// is dropped can never be ended — the span stays on the process's open-span
// stack forever, mis-parenting every later span on that process and counting
// as an orphan in the trace export — a Pin whose snapshot handle is
// dropped can never be Closed, so the engine's MVCC garbage collector keeps
// every row version newer than the pin alive forever — and a Prepare whose
// statement handle is dropped paid the parse and normalization cost for
// nothing: the handle is the only way to run or plan the statement.
var mustConsumeMethods = map[string]bool{
	"Borrow":      true,
	"Get":         true,
	"TryGet":      true,
	"Peek":        true,
	"StartSpan":   true,
	"StartLinked": true,
	"Pin":         true,
	"Prepare":     true,
}

// CloseCheck flags resource accessors (Borrow/Get/TryGet/Peek), span
// starters (StartSpan/StartLinked), snapshot pins (Pin) and statement
// preparation (Prepare) whose results are silently dropped in statement
// position: the returned handle is the only way to release the capacity,
// end the span, unpin the version chain or execute the statement. An
// explicit `_ = f()` discard is allowed — it is visible and greppable.
// Dropped plain error results are errdrop's job (call-graph-aware, so
// always-nil wrappers are exempt there).
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc: "flag discarded sim-resource handles (Borrow/Get/TryGet/Peek, " +
		"StartSpan/StartLinked, Pin, Prepare) that would silently leak capacity, " +
		"wedge the tracer, pin MVCC version chains, or waste a statement parse",
	Run: runCloseCheck,
}

func runCloseCheck(pass *Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := calleeMethodName(call); ok && mustConsumeMethods[name] && callHasResults(pass, call) {
			pass.Reportf(call.Pos(), "result of %s dropped: the returned resource/message is lost, leaking capacity; consume it or discard explicitly with _ =", calleeName(call))
		}
		return true
	})
	return nil
}

func callHasResults(pass *Pass, call *ast.CallExpr) bool {
	switch t := pass.TypeOf(call).(type) {
	case nil:
		return false
	case *types.Tuple:
		return t.Len() > 0
	default:
		return true
	}
}

func calleeMethodName(call *ast.CallExpr) (string, bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name, true
	}
	return "", false
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	case *ast.IndexExpr:
		return calleeName(&ast.CallExpr{Fun: f.X})
	}
	return "call"
}
