// Package analysistest runs an analyzer over a want-comment fixture
// package, mirroring golang.org/x/tools/go/analysis/analysistest on the
// in-repo framework. A fixture file marks each expected diagnostic with a
// trailing comment:
//
//	time.Sleep(d) // want `wall-clock call time\.Sleep`
//
// The backquoted (or double-quoted) pattern is a regexp that must match a
// diagnostic reported on that line; unexpected diagnostics and unmatched
// wants both fail the test. Allow directives are honored exactly as in the
// cloudrepl-lint driver, so fixtures also prove the escape hatch works.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cloudrepl/internal/analysis"
)

// Run loads the fixture tree rooted at dir (conventionally
// "testdata/src/<name>", relative to the test's working directory) — the
// root package plus any subdirectory packages, so fixtures can exercise
// cross-package fact propagation — applies the analyzer over the whole
// fixture program (per-package passes in dependency order, then the Finish
// hook) with directive suppression, and checks the diagnostics against the
// fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	absDir, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("abs %s: %v", dir, err)
	}
	moduleDir := absDir
	for {
		if _, err := os.Stat(filepath.Join(moduleDir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(moduleDir)
		if parent == moduleDir {
			t.Fatalf("no go.mod above %s", absDir)
		}
		moduleDir = parent
	}
	rel, err := filepath.Rel(moduleDir, absDir)
	if err != nil {
		t.Fatalf("rel: %v", err)
	}
	l, err := analysis.NewLoader(moduleDir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.Load(rel + "/...")
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("load %s: no packages", dir)
	}

	prog := analysis.NewProgram(l)
	diags, err := analysis.RunProgram(prog, []*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}
	var dirs []*analysis.Directive
	for _, pkg := range pkgs {
		ds, bad := analysis.ParseDirectives(pkg, analysis.KnownNames())
		dirs = append(dirs, ds...)
		for _, d := range bad {
			t.Errorf("fixture %s: malformed directive: %s", dir, d)
		}
	}
	diags = analysis.Suppress(diags, dirs)

	var wants []want
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}
	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile("// want (`[^`]*`|\"[^\"]*\")")

func collectWants(t *testing.T, pkg *analysis.Package) []want {
	t.Helper()
	var wants []want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pat := strings.Trim(m[1], "`\"")
					re, err := regexp.Compile(pat)
					if err != nil {
						pos := pkg.Fset.Position(c.Pos())
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// FixturePath builds the conventional fixture path for name.
func FixturePath(name string) string {
	return fmt.Sprintf("testdata/src/%s", name)
}
