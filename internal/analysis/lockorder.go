package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder orders every static acquisition the sim kernel can park a
// process on — Resource.Acquire/Use slots, Pool.Borrow slots, Signal.Wait
// and Queue.Get parks — into one global acquisition graph and reports
// potential wait-for cycles at compile time, complementing the runtime
// deadlock detector (sim.Env.Shutdown's wait-for dump) with coverage of
// schedules a given seed never exercises.
//
// Graph nodes are static lock identities: a struct field, package-level var
// or local variable holding a *sim.Resource, *sim.Signal, *sim.Queue or
// *pool.Pool. Edges mean "may be needed while the other is held":
//
//   - u → v when code acquires or parks on v while holding u;
//   - s → u when code acquires u at any point before broadcasting signal s
//     or putting to queue s (for s to fire, u must have been acquirable).
//
// A cycle is a potential deadlock. Per-function effects propagate through
// calls: same-package callees are analyzed on demand, cross-package callees
// through AcquiresFact (exported in dependency order), and interface calls
// are widened through the program call graph. Known blind spots: locks
// reached through function parameters (their identity is dynamic), function
// values the graph cannot resolve, and implementer packages analyzed after
// their callers.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "order static sim-resource/pool/signal/queue acquisitions into a global " +
		"graph and report potential wait-for cycles (compile-time deadlock check)",
	Run:    runLockOrder,
	Finish: finishLockOrder,
}

// AcquiresFact summarizes a function's kernel-blocking effects for callers
// in downstream packages: Targets are locks the function may acquire or
// park on (a caller holding H gains edges H → t), Ordered are locks it
// actually acquires (they precede any later broadcast in the caller), and
// Wakes are signals/queues it broadcasts or puts to.
type AcquiresFact struct {
	Targets []types.Object
	Ordered []types.Object
	Wakes   []types.Object
}

// AFact marks AcquiresFact as a Fact.
func (*AcquiresFact) AFact() {}

// LockEdge is one acquisition-order edge with its witness site.
type LockEdge struct {
	From, To types.Object
	Pos      token.Pos
	// Why describes the edge for diagnostics ("acquired while holding" or
	// "acquired before waking").
	Why string
}

// lockEdgesFact carries a package's contribution to the global acquisition
// graph from the per-package phase to Finish.
type lockEdgesFact struct{ Edges []LockEdge }

func (*lockEdgesFact) AFact() {}

// lockOp classifies one kernel primitive call.
type lockOp int

const (
	opNone    lockOp = iota
	opAcquire        // Resource.Acquire/AcquireHigh, Pool.Borrow: held until release
	opUse            // Resource.Use/UseHigh: acquire+release inside the call
	opPark           // Signal.Wait/WaitTimeout, Queue.Get: blocks, holds nothing
	opRelease        // Resource.Release, Pool.Return/Discard
	opWake           // Signal.Broadcast, Queue.Put
)

// classifyLockCall recognizes sim/pool primitive methods.
func classifyLockCall(fn *types.Func) lockOp {
	switch {
	case isMethodOf(fn, "internal/sim", "Resource"):
		switch fn.Name() {
		case "Acquire", "AcquireHigh":
			return opAcquire
		case "Use", "UseHigh":
			return opUse
		case "Release":
			return opRelease
		}
	case isMethodOf(fn, "internal/sim", "Signal"):
		switch fn.Name() {
		case "Wait", "WaitTimeout":
			return opPark
		case "Broadcast":
			return opWake
		}
	case isMethodOf(fn, "internal/sim", "Queue"):
		switch fn.Name() {
		case "Get":
			return opPark
		case "Put":
			return opWake
		}
	case isMethodOf(fn, "internal/pool", "Pool"):
		switch fn.Name() {
		case "Borrow":
			return opAcquire
		case "Return", "Discard":
			return opRelease
		}
	}
	return opNone
}

// runLockOrder walks every function of the package once, accumulating
// acquisition edges (exported as a package fact for Finish) and per-function
// summaries (exported as object facts for downstream packages).
func runLockOrder(pass *Pass) error {
	lo := &lockOrderPass{
		pass:      pass,
		summaries: map[*types.Func]*AcquiresFact{},
		visiting:  map[*types.Func]bool{},
		decls:     map[*types.Func]*ast.FuncDecl{},
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					lo.decls[fn] = fd
				}
			}
		}
	}
	// Deterministic order: declaration order within the package.
	var fns []*types.Func
	for fn := range lo.decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	for _, fn := range fns {
		sum := lo.summarize(fn)
		if len(sum.Targets) > 0 || len(sum.Wakes) > 0 {
			pass.ExportObjectFact(fn, sum)
		}
	}
	if len(lo.edges) > 0 {
		pass.ExportPackageFact(&lockEdgesFact{Edges: lo.edges})
	}
	return nil
}

type lockOrderPass struct {
	pass      *Pass
	decls     map[*types.Func]*ast.FuncDecl
	summaries map[*types.Func]*AcquiresFact
	visiting  map[*types.Func]bool
	edges     []LockEdge
}

// summarize computes fn's blocking summary, walking its body (and emitting
// its acquisition edges) on first use. Recursion through a cycle of
// same-package functions is cut with an empty summary.
func (lo *lockOrderPass) summarize(fn *types.Func) *AcquiresFact {
	fn = fn.Origin()
	if s, ok := lo.summaries[fn]; ok {
		return s
	}
	if lo.visiting[fn] {
		return &AcquiresFact{}
	}
	fd, local := lo.decls[fn]
	if !local {
		var fact AcquiresFact
		if lo.pass.ImportObjectFact(fn, &fact) {
			return &fact
		}
		return &AcquiresFact{}
	}
	lo.visiting[fn] = true
	w := &lockWalker{
		lo:     lo,
		params: map[types.Object]bool{},
		held:   map[types.Object]token.Pos{},
		sofar:  map[types.Object]bool{},
		sum:    &AcquiresFact{},
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		w.params[sig.Params().At(i)] = true
	}
	if recv := sig.Recv(); recv != nil {
		w.params[recv] = true
	}
	w.walkStmts(fd.Body.List)
	delete(lo.visiting, fn)
	sort.Slice(w.sum.Targets, func(i, j int) bool { return w.sum.Targets[i].Pos() < w.sum.Targets[j].Pos() })
	sort.Slice(w.sum.Ordered, func(i, j int) bool { return w.sum.Ordered[i].Pos() < w.sum.Ordered[j].Pos() })
	sort.Slice(w.sum.Wakes, func(i, j int) bool { return w.sum.Wakes[i].Pos() < w.sum.Wakes[j].Pos() })
	lo.summaries[fn] = w.sum
	return w.sum
}

// lockWalker tracks the held-lock set through one function body in
// statement order. Branches are explored with a copy of the held set and
// merged by union (an acquisition on either arm is assumed possible after
// the branch); loop bodies are walked once with the same union rule.
type lockWalker struct {
	lo     *lockOrderPass
	params map[types.Object]bool
	held   map[types.Object]token.Pos
	sofar  map[types.Object]bool // acquired at any earlier point
	sum    *AcquiresFact
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		w.walkStmts(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		w.walkExpr(st.Cond)
		before := copyHeld(w.held)
		w.walkStmt(st.Body)
		afterThen := w.held
		w.held = before
		if st.Else != nil {
			w.walkStmt(st.Else)
		}
		w.held = unionHeld(afterThen, w.held)
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		if st.Cond != nil {
			w.walkExpr(st.Cond)
		}
		before := copyHeld(w.held)
		w.walkStmt(st.Body)
		if st.Post != nil {
			w.walkStmt(st.Post)
		}
		w.held = unionHeld(before, w.held)
	case *ast.RangeStmt:
		w.walkExpr(st.X)
		before := copyHeld(w.held)
		w.walkStmt(st.Body)
		w.held = unionHeld(before, w.held)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		if st.Tag != nil {
			w.walkExpr(st.Tag)
		}
		w.walkClauses(st.Body)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		w.walkClauses(st.Body)
	case *ast.SelectStmt:
		w.walkClauses(st.Body)
	case *ast.DeferStmt:
		// A deferred Release/Return runs at exit: the lock stays held for
		// the rest of the function, which is exactly what not processing
		// the release models. Other deferred calls are treated as ordinary
		// calls (conservative: their acquisitions may happen under every
		// lock held at exit, approximated by the set held here).
		if fn := staticCallee(w.lo.pass, st.Call); fn != nil {
			if op := classifyLockCall(fn); op == opRelease {
				return
			}
		}
		w.walkExpr(st.Call)
	default:
		// Every other statement: visit contained expressions in source
		// order, handling the calls they contain.
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// A literal's body runs when it is invoked, possibly on a
				// different proc; its effects are not this function's.
				// (Immediately-invoked literals are a documented blind spot.)
				return false
			case *ast.CallExpr:
				w.handleCall(n)
			}
			return true
		})
	}
}

func (w *lockWalker) walkClauses(body *ast.BlockStmt) {
	before := copyHeld(w.held)
	merged := copyHeld(w.held)
	for _, clause := range body.List {
		w.held = copyHeld(before)
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.walkExpr(e)
			}
			w.walkStmts(c.Body)
		case *ast.CommClause:
			if c.Comm != nil {
				w.walkStmt(c.Comm)
			}
			w.walkStmts(c.Body)
		}
		merged = unionHeld(merged, w.held)
	}
	w.held = merged
}

func (w *lockWalker) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.handleCall(n)
		}
		return true
	})
}

// handleCall is the core transfer function: primitive kernel calls update
// the held set and emit edges; other calls splice in the callee's summary.
func (w *lockWalker) handleCall(call *ast.CallExpr) {
	pass := w.lo.pass
	fn := staticCallee(pass, call)
	if fn != nil {
		if op := classifyLockCall(fn); op != opNone {
			sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if sel == nil {
				return
			}
			obj := w.lockObjectOf(sel.X)
			if obj == nil {
				return // dynamic identity (parameter, expression): blind spot
			}
			w.applyOp(op, obj, call.Pos())
			return
		}
	}
	// Non-primitive call: splice the callee's summary. Interface calls are
	// widened to every module implementer through the call graph.
	for _, callee := range w.calleesOf(call) {
		sum := w.lo.summarize(callee)
		for _, t := range sum.Targets {
			w.edgeFromHeld(t, call.Pos(), "acquired inside "+shortFuncName(callee)+" while holding")
			w.addTarget(t)
		}
		for _, o := range sum.Ordered {
			w.sofar[o] = true
			w.addOrdered(o)
		}
		for _, s := range sum.Wakes {
			w.wakeEdges(s, call.Pos())
			w.addWake(s)
		}
	}
}

// calleesOf resolves a non-primitive call to declared functions: the static
// callee, or every implementer of an interface method.
func (w *lockWalker) calleesOf(call *ast.CallExpr) []*types.Func {
	pass := w.lo.pass
	if fn := staticCallee(pass, call); fn != nil {
		return []*types.Func{fn}
	}
	if pass.Prog == nil {
		return nil
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := pass.Info.Selections[sel]; ok && types.IsInterface(s.Recv()) {
			// The call graph already widened this site to every module
			// implementer; collect the nodes whose incoming dynamic edge
			// originates here.
			cg := pass.Prog.CallGraph()
			var out []*types.Func
			for _, n := range cg.Nodes {
				if n.Fn == nil {
					continue
				}
				for _, e := range n.In {
					if e.Dynamic && e.Pos == call.Pos() {
						out = append(out, n.Fn)
						break
					}
				}
			}
			return out
		}
	}
	return nil
}

func (w *lockWalker) applyOp(op lockOp, obj types.Object, pos token.Pos) {
	switch op {
	case opAcquire:
		w.edgeFromHeld(obj, pos, "acquired while holding")
		w.held[obj] = pos
		w.sofar[obj] = true
		w.addTarget(obj)
		w.addOrdered(obj)
	case opUse:
		w.edgeFromHeld(obj, pos, "used (acquire+release) while holding")
		w.sofar[obj] = true
		w.addTarget(obj)
		w.addOrdered(obj)
	case opPark:
		w.edgeFromHeld(obj, pos, "parked on while holding")
		w.addTarget(obj)
	case opRelease:
		delete(w.held, obj)
	case opWake:
		w.wakeEdges(obj, pos)
		w.addWake(obj)
	}
}

// edgeFromHeld records to-edges from every currently-held lock to target.
func (w *lockWalker) edgeFromHeld(target types.Object, pos token.Pos, why string) {
	// Re-acquiring an already-held slot yields a self-edge, reported as a
	// cycle of length one by Finish. Sorted iteration keeps the edge list —
	// and therefore the witness each cycle reports — deterministic.
	for _, h := range sortedObjs(w.held) {
		w.lo.edges = append(w.lo.edges, LockEdge{From: h, To: target, Pos: pos, Why: why})
	}
}

// wakeEdges records s → u for every lock acquired at some earlier point in
// this function: for the signal/queue to fire, those locks must have been
// acquirable first.
func (w *lockWalker) wakeEdges(s types.Object, pos token.Pos) {
	for _, u := range sortedObjs(w.sofar) {
		if u == s {
			continue
		}
		w.lo.edges = append(w.lo.edges, LockEdge{From: s, To: u, Pos: pos, Why: "woken only after acquiring"})
	}
}

// sortedObjs returns the keys of an object-keyed set ordered by declaration
// position (maps iterate randomly; edge order must not).
func sortedObjs[V any](m map[types.Object]V) []types.Object {
	out := make([]types.Object, 0, len(m))
	for o := range m {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

func (w *lockWalker) addTarget(o types.Object)  { w.sum.Targets = appendUniqueObj(w.sum.Targets, o) }
func (w *lockWalker) addOrdered(o types.Object) { w.sum.Ordered = appendUniqueObj(w.sum.Ordered, o) }
func (w *lockWalker) addWake(o types.Object)    { w.sum.Wakes = appendUniqueObj(w.sum.Wakes, o) }

func appendUniqueObj(s []types.Object, o types.Object) []types.Object {
	for _, x := range s {
		if x == o {
			return s
		}
	}
	return append(s, o)
}

// lockObjectOf resolves a receiver expression to the static identity of the
// lock it denotes: a struct field, a package-level var, or a function-local
// variable (typically assigned from NewResource/NewSignal/NewQueue). It
// returns nil for parameters and receivers — their identity depends on the
// caller — and for expressions it cannot name (map lookups, call results).
func (w *lockWalker) lockObjectOf(e ast.Expr) types.Object {
	pass := w.lo.pass
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.ObjectOf(x)
		if v, ok := obj.(*types.Var); ok && !w.params[v] {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		// Package-qualified var: pkg.V.
		if v, ok := pass.Info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	case *ast.IndexExpr:
		// locks[i]: identify by the collection.
		return w.lockObjectOf(x.X)
	}
	return nil
}

func copyHeld(m map[types.Object]token.Pos) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func unionHeld(a, b map[types.Object]token.Pos) map[types.Object]token.Pos {
	out := copyHeld(a)
	//cloudrepl:allow-maporder set-union into a map is insensitive to visit order
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

// finishLockOrder merges every package's edges and reports each distinct
// potential cycle once, at its witness edge.
func finishLockOrder(fp *FinishPass) error {
	type adj struct {
		to   types.Object
		edge LockEdge
	}
	succ := map[types.Object][]adj{}
	var nodes []types.Object
	seenNode := map[types.Object]bool{}
	addNode := func(o types.Object) {
		if !seenNode[o] {
			seenNode[o] = true
			nodes = append(nodes, o)
		}
	}
	for _, pkg := range fp.Prog.Pkgs {
		var fact lockEdgesFact
		if !fp.importPackageFact(pkg.Types, &fact) {
			continue
		}
		for _, e := range fact.Edges {
			addNode(e.From)
			addNode(e.To)
			dup := false
			for _, a := range succ[e.From] {
				if a.to == e.To {
					dup = true
					break
				}
			}
			if !dup {
				succ[e.From] = append(succ[e.From], adj{to: e.To, edge: e})
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Pos() < nodes[j].Pos() })
	//cloudrepl:allow-maporder each adjacency list is sorted in place independently; visit order cannot matter
	for _, as := range succ {
		sort.Slice(as, func(i, j int) bool { return as[i].to.Pos() < as[j].to.Pos() })
	}

	// DFS from each node in deterministic order; report each cycle once,
	// keyed by its canonical node set.
	reported := map[string]bool{}
	var dfs func(path []types.Object, edges []LockEdge, cur types.Object)
	onPath := map[types.Object]int{}
	dfs = func(path []types.Object, edges []LockEdge, cur types.Object) {
		for _, a := range succ[cur] {
			if idx, ok := onPath[a.to]; ok {
				// Cycle: path[idx..] + this edge.
				cyc := append(append([]types.Object(nil), path[idx:]...), a.to)
				cycEdges := append(append([]LockEdge(nil), edges[idx:]...), a.edge)
				key := cycleKey(fp, cyc)
				if !reported[key] {
					reported[key] = true
					reportCycle(fp, cyc, cycEdges)
				}
				continue
			}
			onPath[a.to] = len(path)
			dfs(append(path, a.to), append(edges, a.edge), a.to)
			delete(onPath, a.to)
		}
	}
	for _, n := range nodes {
		onPath = map[types.Object]int{n: 0}
		dfs([]types.Object{n}, []LockEdge{{}}, n)
	}
	return nil
}

// importPackageFact is FinishPass access to package facts.
func (f *FinishPass) importPackageFact(pkg *types.Package, ptr Fact) bool {
	p := &Pass{Analyzer: f.Analyzer, facts: f.facts}
	return p.ImportPackageFact(pkg, ptr)
}

func cycleKey(fp *FinishPass, cyc []types.Object) string {
	labels := make([]string, 0, len(cyc)-1)
	for _, o := range cyc[:len(cyc)-1] {
		labels = append(labels, lockLabel(o))
	}
	sort.Strings(labels)
	return strings.Join(labels, "→")
}

func reportCycle(fp *FinishPass, cyc []types.Object, edges []LockEdge) {
	labels := make([]string, len(cyc))
	for i, o := range cyc {
		labels[i] = lockLabel(o)
	}
	witness := edges[len(edges)-1]
	if len(cyc) == 2 && cyc[0] == cyc[1] {
		fp.Reportf(witness.Pos, "lock self-cycle: %s %s itself; a second slot may never free (annotate //cloudrepl:allow-lockorder <reason> if capacity provably suffices)", labels[0], witness.Why)
		return
	}
	fp.Reportf(witness.Pos, "potential lock-order cycle: %s; this edge (%s %s) closes the cycle — acquire in one global order or annotate //cloudrepl:allow-lockorder <reason>", strings.Join(labels, " → "), labels[len(labels)-1], witness.Why)
}

// lockLabel names a lock object for diagnostics: "pkg.name" with the
// package of the object (fields get their declaring package).
func lockLabel(o types.Object) string {
	if o.Pkg() != nil {
		return fmt.Sprintf("%s.%s", lastPathElem(o.Pkg().Path()), o.Name())
	}
	return o.Name()
}
