// Package analysis is cloudrepl's static-analysis toolkit: a minimal,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// Analyzer/Pass model, a module-aware package loader, and the suite of
// determinism linters that enforce the simulator's contract (see the
// "Determinism contract" section of DESIGN.md).
//
// The container this repo builds in has no module proxy access, so the
// framework deliberately depends only on the standard library (go/ast,
// go/parser, go/types and the GOROOT source importer). The API mirrors
// x/tools closely enough that the analyzers could be ported to a real
// multichecker by swapping the import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. It mirrors the x/tools type of the
// same name: a unique short name, human documentation and a Run function
// applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in allow directives:
	// a diagnostic from analyzer "simtime" is suppressed by a
	// "//cloudrepl:allow-simtime <reason>" comment.
	Name string
	// Doc is the one-paragraph description shown by cloudrepl-lint -help.
	Doc string
	// Run applies the check to a single type-checked package. Packages are
	// visited in dependency order, so facts exported on a dependency's
	// objects are importable here.
	Run func(*Pass) error
	// Finish, when non-nil, runs once after Run has been applied to every
	// package of the Program — the hook for whole-program conclusions such
	// as cycle detection over a graph the per-package passes accumulated.
	Finish func(*FinishPass) error
}

// Pass carries everything an Analyzer needs to inspect one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// Path is the package import path ("cloudrepl/internal/repl"). For
	// analysistest fixtures it is the bare fixture directory name.
	Path string
	Info *types.Info
	// Prog is the whole-module analysis universe this pass runs inside:
	// every loaded package, the shared fact store and the call graph. Nil
	// only when an analyzer is driven through the legacy single-package Run
	// entry point.
	Prog *Program

	facts *factStore
	diags *[]Diagnostic
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf resolves an identifier to the object it denotes (Uses or Defs).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// Inspect walks every file of the pass in source order, calling f for each
// node; f returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

// Run applies each analyzer to the single package and returns the
// diagnostics it produced, sorted by position — the legacy entry point,
// kept for tests that poke one package. It fabricates a one-package Program
// (no dependencies, empty fact universe) so analyzers that use facts or the
// call graph still work, seeing only this package. Allow-directive
// suppression is layered on top by the caller (the driver or the
// analysistest harness) so that both agree on the semantics.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog := &Program{
		Pkgs:   []*Package{pkg},
		ByPath: map[string]*Package{pkg.Path: pkg},
		Fset:   pkg.Fset,
		facts:  newFactStore(),
	}
	return RunProgram(prog, analyzers, nil)
}

func sortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// importedPkgName returns the local name under which a file imports path
// ("" when the file does not import it). The default name for the packages
// the linters care about equals the last path element.
func importedPkgName(file *ast.File, path, deflt string) string {
	for _, imp := range file.Imports {
		p := imp.Path.Value // quoted
		if p != `"`+path+`"` {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return deflt
	}
	return ""
}

// isPkgQualifier reports whether x is an identifier denoting an imported
// package (as opposed to a value whose methods share the package's objects,
// e.g. rng.Intn on a *rand.Rand versus the global rand.Intn).
func isPkgQualifier(info *types.Info, x ast.Expr) bool {
	id, ok := x.(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = info.Uses[id].(*types.PkgName)
	return ok
}
