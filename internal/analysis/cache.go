package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CacheFile is the lint cache's file name, written at the module root. The
// file is a build artifact (it is .gitignore'd): deleting it only costs one
// cold lint run.
const CacheFile = ".cloudrepl-lint-cache.json"

// cacheEntry is the serialized outcome of one full lint run. Validity is
// judged by comparing the recorded inputs — analyzer set, patterns, and the
// per-package hashes of every file the loader could have read — against the
// current tree; any difference is a miss and the cache is rebuilt. There is
// no partial reuse: the whole-program analyzers (facts, call graph, lock
// cycles) make a single package's diagnostics depend on code anywhere in the
// module, so per-package replay would be unsound.
type cacheEntry struct {
	Analyzers   []string                     `json:"analyzers"`
	Patterns    []string                     `json:"patterns"`
	Packages    map[string]map[string]string `json:"packages"` // rel dir -> file -> sha256
	Diagnostics []Diagnostic                 `json:"diagnostics"`
	Stale       []*Directive                 `json:"stale"`
}

// lintFingerprint hashes every file that can influence a lint run: go.mod
// (module path) plus each non-test .go file in the directories the loader
// walks, grouped per package directory. Build-tag-excluded files are hashed
// too — their content cannot change results, so including them only turns
// some hits into (safe) misses.
func lintFingerprint(moduleDir string) (map[string]map[string]string, error) {
	pkgs := map[string]map[string]string{}
	hashInto := func(relDir, name, path string) error {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		sum := sha256.Sum256(data)
		if pkgs[relDir] == nil {
			pkgs[relDir] = map[string]string{}
		}
		pkgs[relDir][name] = hex.EncodeToString(sum[:])
		return nil
	}
	if err := hashInto(".", "go.mod", filepath.Join(moduleDir, "go.mod")); err != nil {
		return nil, err
	}
	err := filepath.WalkDir(moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			// Mirror Loader.walkPackageDirs: hidden, underscore, testdata and
			// results trees are invisible to the loader, so their content
			// cannot change a lint outcome.
			if path != moduleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "results") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(moduleDir, filepath.Dir(path))
		if err != nil {
			return err
		}
		return hashInto(filepath.ToSlash(rel), name, path)
	})
	if err != nil {
		return nil, err
	}
	return pkgs, nil
}

func analyzerNames(analyzers []*Analyzer) []string {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFingerprints(a, b map[string]map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	//cloudrepl:allow-maporder set equality: the result is the same whichever entry mismatches first
	for dir, files := range a {
		other, ok := b[dir]
		if !ok || len(files) != len(other) {
			return false
		}
		//cloudrepl:allow-maporder set equality: the result is the same whichever entry mismatches first
		for name, sum := range files {
			if other[name] != sum {
				return false
			}
		}
	}
	return true
}

// LintDetailCached is LintDetail behind the incremental cache: when the
// module's files, the analyzer set, and the patterns all match the entry in
// CacheFile, the stored result is replayed (CacheHit=true) without parsing
// or type-checking anything. On a miss the full pipeline runs and the cache
// is rewritten. Cache read/write failures are deliberately non-fatal — a
// corrupt or unwritable cache degrades to a cold run, never to a lint error.
func LintDetailCached(moduleDir string, analyzers []*Analyzer, patterns ...string) (*LintResult, error) {
	fp, err := lintFingerprint(moduleDir)
	if err != nil {
		return nil, err
	}
	names := analyzerNames(analyzers)
	pats := append([]string(nil), patterns...)
	sort.Strings(pats)
	cachePath := filepath.Join(moduleDir, CacheFile)

	if data, err := os.ReadFile(cachePath); err == nil {
		var entry cacheEntry
		if json.Unmarshal(data, &entry) == nil &&
			equalStrings(entry.Analyzers, names) &&
			equalStrings(entry.Patterns, pats) &&
			equalFingerprints(entry.Packages, fp) {
			return &LintResult{
				Diagnostics: entry.Diagnostics,
				Stale:       entry.Stale,
				CacheHit:    true,
			}, nil
		}
	}

	res, err := LintDetail(moduleDir, analyzers, patterns...)
	if err != nil {
		return nil, err
	}
	entry := cacheEntry{
		Analyzers:   names,
		Patterns:    pats,
		Packages:    fp,
		Diagnostics: res.Diagnostics,
		Stale:       res.Stale,
	}
	if data, err := json.MarshalIndent(&entry, "", "\t"); err == nil {
		_ = os.WriteFile(cachePath, data, 0o644)
	}
	return res, nil
}
