package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SharedState flags mutable state reachable from more than one concurrent
// context without sim-primitive mediation. Two concrete hazards:
//
//  1. Package-level variables touched from experiment.RunShards worker
//     context (or any raw goroutine): workers run real goroutines, so an
//     unsynchronized write is a data race, and a read races with any write
//     elsewhere in the program. The deterministic sim kernel gives no cover
//     here — RunShards is the one genuinely parallel path.
//
//  2. A local variable captured and written by two or more spawned sim
//     procs that never touch a sim primitive: with no Acquire/Wait/Get
//     anywhere in either proc, the interleaving of those writes is pure
//     scheduler accident — hidden coupling that a seed change silently
//     reorders. (Captured state shared by procs that do synchronize through
//     primitives is the normal coroutine style and is not flagged.)
//
// The analysis is whole-program: contexts come from the interprocedural
// call graph (EdgeSpawnParallel roots widened over ordinary calls and sim
// spawns), so a helper three calls below a worker closure is still worker
// context.
var SharedState = &Analyzer{
	Name: "sharedstate",
	Doc: "flag package-level or captured mutable state reachable from " +
		"RunShards workers or multiple unsynchronized sim procs",
	Finish: finishSharedState,
}

func finishSharedState(fp *FinishPass) error {
	cg := fp.Prog.CallGraph()

	// Parallel context: everything reachable from a goroutine/worker entry,
	// following ordinary calls and sim spawns (a proc spawned inside a
	// worker's private sim still executes on the worker's goroutine).
	parallel := cg.Reachable(cg.SpawnRoots(EdgeSpawnParallel), func(k EdgeKind) bool {
		return k == EdgeCall || k == EdgeSpawnProc
	})

	// Pass 1: where is every package-level var written?
	firstWrite := map[*types.Var]token.Pos{}
	for _, n := range cg.Nodes {
		if n.Body == nil {
			continue
		}
		scanGlobalAccesses(n, func(v *types.Var, pos token.Pos, isWrite bool) {
			if isWrite {
				if old, ok := firstWrite[v]; !ok || pos < old {
					firstWrite[v] = pos
				}
			}
		})
	}

	// Pass 2: report accesses from parallel context. Writes are always
	// reported; reads only when the var is written somewhere in the program
	// (a read-only default is harmless). One report per (node, var).
	for _, n := range cg.Nodes {
		if n.Body == nil || !parallel[n] {
			continue
		}
		reported := map[*types.Var]bool{}
		node := n
		scanGlobalAccesses(n, func(v *types.Var, pos token.Pos, isWrite bool) {
			if reported[v] {
				return
			}
			if isWrite {
				reported[v] = true
				fp.Reportf(pos, "package-level var %s written from %s, which runs on a real goroutine (RunShards worker/go statement): this is a data race; move the state into the shard or pass results through the worker's return", v.Name(), node.Name())
				return
			}
			if wpos, ok := firstWrite[v]; ok {
				reported[v] = true
				fp.Reportf(pos, "package-level var %s read from %s, which runs on a real goroutine, and written at %s: reads race with that write; snapshot the value before fan-out", v.Name(), node.Name(), fp.Prog.Fset.Position(wpos))
			}
		})
	}

	// Captured-variable check: group each function's spawned literals by the
	// outer variables they write.
	for _, n := range cg.Nodes {
		if n.Body == nil {
			continue
		}
		type writer struct {
			lit      *CGNode
			kind     EdgeKind
			writePos token.Pos
		}
		writersOf := map[*types.Var][]writer{}
		for _, e := range n.Out {
			if e.Callee.Lit == nil || (e.Kind != EdgeSpawnProc && e.Kind != EdgeSpawnParallel) {
				continue
			}
			lit := e.Callee
			for v, pos := range capturedWrites(lit) {
				writersOf[v] = append(writersOf[v], writer{lit: lit, kind: e.Kind, writePos: pos})
			}
		}
		var vars []*types.Var
		for v := range writersOf {
			if len(writersOf[v]) >= 2 {
				vars = append(vars, v)
			}
		}
		sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
		for _, v := range vars {
			ws := writersOf[v]
			sort.Slice(ws, func(i, j int) bool { return ws[i].writePos < ws[j].writePos })
			anyParallel := false
			for _, w := range ws {
				if w.kind == EdgeSpawnParallel {
					anyParallel = true
				}
			}
			if !anyParallel {
				// Sim procs are serialized; only flag when no writer ever
				// touches a sim primitive — then the write order is pure
				// scheduler accident with no synchronization discipline.
				synced := false
				for _, w := range ws {
					if usesSimPrimitive(w.lit) {
						synced = true
						break
					}
				}
				if synced {
					continue
				}
			}
			what := "spawned sim procs with no sim-primitive synchronization; route updates through a sim.Queue/Signal or guard with a Resource"
			if anyParallel {
				what = "concurrent goroutines (data race); keep per-worker state and merge after the join"
			}
			fp.Reportf(ws[1].writePos, "captured variable %s is written by %d %s", v.Name(), len(ws), what)
		}
	}
	return nil
}

// scanGlobalAccesses walks a node's own body (nested function literals are
// separate nodes and are skipped) reporting each package-level-var access.
// For a write like m[k] = v or s.f = x the base variable is the written one;
// base identifiers of write targets are not double-counted as reads.
func scanGlobalAccesses(n *CGNode, visit func(v *types.Var, pos token.Pos, isWrite bool)) {
	info := n.Pkg.Info
	writeIdents := map[*ast.Ident]bool{}
	asGlobal := func(e ast.Expr) (*types.Var, *ast.Ident) {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				if v, ok := info.ObjectOf(x).(*types.Var); ok && isPackageLevel(v) {
					return v, x
				}
				return nil, nil
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SelectorExpr:
				// pkg.Var resolves through the Sel; expr.field through the base.
				if v, ok := info.Uses[x.Sel].(*types.Var); ok && isPackageLevel(v) {
					return v, x.Sel
				}
				e = x.X
			default:
				return nil, nil
			}
		}
	}
	inspectOwnBody(n, func(node ast.Node) {
		switch st := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if v, id := asGlobal(lhs); v != nil {
					writeIdents[id] = true
					visit(v, lhs.Pos(), true)
				}
			}
		case *ast.IncDecStmt:
			if v, id := asGlobal(st.X); v != nil {
				writeIdents[id] = true
				visit(v, st.X.Pos(), true)
			}
		case *ast.UnaryExpr:
			// &global escapes a writable pointer; treat as a write.
			if st.Op == token.AND {
				if v, id := asGlobal(st.X); v != nil {
					writeIdents[id] = true
					visit(v, st.X.Pos(), true)
				}
			}
		}
	})
	inspectOwnBody(n, func(node ast.Node) {
		if id, ok := node.(*ast.Ident); ok && !writeIdents[id] {
			if v, ok := info.Uses[id].(*types.Var); ok && isPackageLevel(v) {
				visit(v, id.Pos(), false)
			}
		}
	})
}

// inspectOwnBody visits every node of n's body except nested function
// literals (they have their own call-graph nodes).
func inspectOwnBody(n *CGNode, visit func(ast.Node)) {
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok && (n.Lit == nil || lit != n.Lit) {
			return false
		}
		if node != nil {
			visit(node)
		}
		return true
	})
}

// capturedWrites returns the outer (function-local, non-package-level)
// variables that a spawned literal writes, with the first write position.
func capturedWrites(lit *CGNode) map[*types.Var]token.Pos {
	info := lit.Pkg.Info
	out := map[*types.Var]token.Pos{}
	record := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := info.Uses[id].(*types.Var) // Uses, not Defs: := inside the lit defines, not captures
		if !ok || v.IsField() || isPackageLevel(v) || !isFunctionLocal(v) {
			return
		}
		if v.Pos() >= lit.Lit.Pos() && v.Pos() < lit.Lit.End() {
			return // declared inside the literal (params, locals)
		}
		if old, seen := out[v]; !seen || id.Pos() < old {
			out[v] = id.Pos()
		}
	}
	inspectOwnBody(lit, func(node ast.Node) {
		switch st := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(st.X)
		}
	})
	return out
}

// usesSimPrimitive reports whether the literal's own body contains any sim
// kernel blocking/wake primitive call (Acquire/Use/Wait/Get/Put/Broadcast/
// Borrow/...).
func usesSimPrimitive(lit *CGNode) bool {
	p := &Pass{Info: lit.Pkg.Info}
	found := false
	inspectOwnBody(lit, func(node ast.Node) {
		call, ok := node.(*ast.CallExpr)
		if !ok || found {
			return
		}
		if fn := staticCallee(p, call); fn != nil && classifyLockCall(fn) != opNone {
			found = true
		}
	})
	return found
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
