package analysis_test

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"cloudrepl/internal/analysis"
)

// writeModule lays out a temp module from a map of relative path -> content.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module loaderdemo\n\ngo 1.22\n"
	for rel, content := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func loadAll(t *testing.T, dir string) ([]*analysis.Package, error) {
	t.Helper()
	l, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	return l.Load("./...")
}

// TestLoaderSkipsBuildTagExcludedFiles: a //go:build ignore file and a
// wrong-GOOS file may both contain code that cannot compile; the loader must
// neither parse them into the package nor let them break its type check.
func TestLoaderSkipsBuildTagExcludedFiles(t *testing.T) {
	otherOS := "windows"
	if runtime.GOOS == "windows" {
		otherOS = "linux"
	}
	dir := writeModule(t, map[string]string{
		"pkg/pkg.go":                "package pkg\n\nfunc Live() int { return 1 }\n",
		"pkg/gen.go":                "//go:build ignore\n\npackage main\n\nfunc main() { callSomethingUndefined() }\n",
		"pkg/os_" + otherOS + ".go": "package pkg\n\nfunc osOnly() { alsoUndefined() }\n",
	})
	pkgs, err := loadAll(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	if n := len(pkgs[0].Files); n != 1 {
		t.Fatalf("package has %d files, want only pkg.go", n)
	}
}

// TestLoaderExcludesTestFiles: _test.go files are drivers outside the
// determinism contract; a broken or violating test file must not affect the
// load.
func TestLoaderExcludesTestFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"pkg/pkg.go":      "package pkg\n\nfunc Live() int { return 1 }\n",
		"pkg/pkg_test.go": "package pkg\n\nthis is not even Go\n",
	})
	pkgs, err := loadAll(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("got %d packages (files=%d), want 1 package with 1 file", len(pkgs), len(pkgs[0].Files))
	}
}

// TestLoaderReportsTypeCheckFailure: a package that does not type-check is an
// error the caller can print, never a panic, and the message names the
// package.
func TestLoaderReportsTypeCheckFailure(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"broken/broken.go": "package broken\n\nfunc f() int { return undefinedIdent }\n",
	})
	_, err := loadAll(t, dir)
	if err == nil {
		t.Fatal("loading a broken package succeeded, want error")
	}
	if !strings.Contains(err.Error(), "typecheck loaderdemo/broken") {
		t.Fatalf("error %q does not identify the failing package", err)
	}
}

// TestLoaderSkipsAllExcludedDirectory: a directory whose every .go file is
// tag-excluded contributes no package and no error.
func TestLoaderSkipsAllExcludedDirectory(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"pkg/pkg.go":      "package pkg\n\nfunc Live() int { return 1 }\n",
		"tools/gen.go":    "//go:build ignore\n\npackage main\n\nfunc main() {}\n",
		"tools/gen2.go":   "//go:build ignore\n\npackage main\n",
		"hidden/.keep.go": "", // hidden files never reach the parser
	})
	pkgs, err := loadAll(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "loaderdemo/pkg" {
		t.Fatalf("packages = %v, want just loaderdemo/pkg", pkgs)
	}
}
