package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"cloudrepl/internal/analysis"
)

// writeTempModule lays out a minimal single-package module for cache tests.
func writeTempModule(t *testing.T, body string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module cachedemo\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "pkg"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "pkg", "pkg.go"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

const cacheFixtureBad = `package pkg

import "errors"

func fallible() error { return errors.New("boom") }

func drop() { fallible() }
`

const cacheFixtureGood = `package pkg

import "errors"

func fallible() error { return errors.New("boom") }

func drop() { _ = fallible() }
`

func TestLintCacheHitAndInvalidation(t *testing.T) {
	dir := writeTempModule(t, cacheFixtureBad)
	analyzers := analysis.All()

	// Cold run: full pipeline, finds the dropped error, writes the cache.
	res, err := analysis.LintDetailCached(dir, analyzers, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("first run reported a cache hit with no cache file")
	}
	if len(res.Diagnostics) != 1 || res.Diagnostics[0].Analyzer != "errdrop" {
		t.Fatalf("cold run diagnostics = %v, want one errdrop finding", res.Diagnostics)
	}
	if _, err := os.Stat(filepath.Join(dir, analysis.CacheFile)); err != nil {
		t.Fatalf("cache file not written: %v", err)
	}

	// Warm run: identical inputs replay from the cache, same diagnostics.
	res2, err := analysis.LintDetailCached(dir, analyzers, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if !res2.CacheHit {
		t.Error("second run with unchanged inputs missed the cache")
	}
	if len(res2.Diagnostics) != 1 || res2.Diagnostics[0].Message != res.Diagnostics[0].Message {
		t.Fatalf("replayed diagnostics = %v, want %v", res2.Diagnostics, res.Diagnostics)
	}

	// Editing a file invalidates: the fix removes the finding.
	if err := os.WriteFile(filepath.Join(dir, "pkg", "pkg.go"), []byte(cacheFixtureGood), 0o644); err != nil {
		t.Fatal(err)
	}
	res3, err := analysis.LintDetailCached(dir, analyzers, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if res3.CacheHit {
		t.Error("run after file edit hit the cache")
	}
	if len(res3.Diagnostics) != 0 {
		t.Fatalf("post-fix diagnostics = %v, want none", res3.Diagnostics)
	}

	// Changing the analyzer set invalidates even with unchanged files.
	res4, err := analysis.LintDetailCached(dir, []*analysis.Analyzer{analysis.ErrDrop}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if res4.CacheHit {
		t.Error("run with a different analyzer set hit the cache")
	}

	// And back to the full set is again a miss (the cache holds one entry).
	res5, err := analysis.LintDetailCached(dir, analyzers, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if res5.CacheHit {
		t.Error("analyzer-set flip-flop hit a stale entry")
	}

	// A corrupt cache file degrades to a cold run, not an error.
	if err := os.WriteFile(filepath.Join(dir, analysis.CacheFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	res6, err := analysis.LintDetailCached(dir, analyzers, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if res6.CacheHit {
		t.Error("corrupt cache file reported a hit")
	}
}
