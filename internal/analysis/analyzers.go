package analysis

// All returns the full determinism-linter suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{SimTime, SimRand, RawGo, MapOrder, CloseCheck}
}

// KnownNames maps analyzer name -> true for directive validation.
func KnownNames() map[string]bool {
	m := map[string]bool{}
	for _, a := range All() {
		m[a.Name] = true
	}
	return m
}

// Lint loads the given patterns from moduleDir, runs every analyzer with
// allow-directive suppression and stale-directive detection, and returns
// the surviving diagnostics sorted by position. This is the whole
// cloudrepl-lint pipeline behind a function so tests can drive it.
func Lint(moduleDir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	l, err := NewLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	known := KnownNames()
	running := map[string]bool{}
	for _, a := range analyzers {
		running[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		diags, err := Run(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		dirs, bad := ParseDirectives(pkg, known)
		diags = Suppress(diags, dirs)
		out = append(out, bad...)
		out = append(out, diags...)
		// Stale-check only directives for analyzers in this run: under
		// -only, a directive for an excluded analyzer has nothing it could
		// legitimately suppress, so it must not be reported stale.
		var ran []*Directive
		for _, d := range dirs {
			if running[d.Analyzer] {
				ran = append(ran, d)
			}
		}
		out = append(out, StaleDirectives(ran)...)
	}
	sortDiagnostics(out)
	return out, nil
}
