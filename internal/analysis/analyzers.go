package analysis

// All returns the full linter suite in reporting order: the five
// package-local determinism analyzers, then the four whole-program
// flow-aware analyzers (call-graph- and fact-driven).
func All() []*Analyzer {
	return []*Analyzer{
		SimTime, SimRand, RawGo, MapOrder, CloseCheck,
		ErrDrop, LockOrder, MVCCAlias, SharedState,
	}
}

// KnownNames maps analyzer name -> true for directive validation.
func KnownNames() map[string]bool {
	m := map[string]bool{}
	for _, a := range All() {
		m[a.Name] = true
	}
	return m
}

// LintResult is the full outcome of a lint run: the surviving diagnostics
// (violations, malformed directives, stale directives — anything that should
// fail the build) plus the stale directives themselves, separated out so the
// -fix-stale driver can delete them mechanically.
type LintResult struct {
	Diagnostics []Diagnostic
	Stale       []*Directive
	// CacheHit reports that the diagnostics were replayed from the lint
	// cache without loading or type-checking anything.
	CacheHit bool
}

// Lint loads the given patterns from moduleDir, runs every analyzer over the
// whole program (facts propagate in dependency order, Finish hooks see the
// merged result) with allow-directive suppression and stale-directive
// detection, and returns the surviving diagnostics sorted by position. This
// is the whole cloudrepl-lint pipeline behind a function so tests can drive
// it.
func Lint(moduleDir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	res, err := LintDetail(moduleDir, analyzers, patterns...)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// LintDetail is Lint with the stale directives broken out for -fix-stale.
func LintDetail(moduleDir string, analyzers []*Analyzer, patterns ...string) (*LintResult, error) {
	l, err := NewLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	prog := NewProgram(l)
	diags, err := RunProgram(prog, analyzers, pkgs)
	if err != nil {
		return nil, err
	}

	known := KnownNames()
	running := map[string]bool{}
	for _, a := range analyzers {
		running[a.Name] = true
	}
	out := &LintResult{}
	var dirs []*Directive
	for _, pkg := range pkgs {
		ds, bad := ParseDirectives(pkg, known)
		dirs = append(dirs, ds...)
		out.Diagnostics = append(out.Diagnostics, bad...)
	}
	// Suppression is program-wide: a Finish-phase diagnostic (say a lock
	// cycle) lands at a concrete position and is governed by the directive
	// covering that line like any per-package finding.
	out.Diagnostics = append(out.Diagnostics, Suppress(diags, dirs)...)
	// Stale-check only directives for analyzers in this run: under -only, a
	// directive for an excluded analyzer has nothing it could legitimately
	// suppress, so it must not be reported stale.
	var ran []*Directive
	for _, d := range dirs {
		if running[d.Analyzer] {
			ran = append(ran, d)
		}
	}
	for _, d := range ran {
		if !d.Used {
			out.Stale = append(out.Stale, d)
		}
	}
	out.Diagnostics = append(out.Diagnostics, StaleDirectives(ran)...)
	sortDiagnostics(out.Diagnostics)
	return out, nil
}
