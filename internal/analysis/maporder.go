package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map unless the loop body is a pure,
// order-insensitive collection. Go randomizes map iteration order per run,
// so any map range whose body ordering can leak — into scheduling, slave
// selection, emitted rows, float accumulation — makes results depend on the
// runtime's hash seed instead of the experiment seed.
//
// A body is considered order-insensitive when every statement is one of:
// append into a slice (collect-then-sort idiom), a map/set insert, an
// integer counter update (integer + is commutative; float + is not),
// delete, or an if/continue wrapping only such statements. Anything else —
// I/O, sends, scheduling calls, float math, early return — is flagged and
// needs a sort first or a //cloudrepl:allow-maporder justification.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag range over a map whose iteration order can leak into scheduling or " +
		"results; iterate a sorted slice of keys instead",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		if orderInsensitiveBlock(pass, rng.Body.List) {
			return true
		}
		pass.Reportf(rng.Pos(), "range over map: iteration order is randomized per run and this body is not a pure collection; iterate sorted keys (or annotate //cloudrepl:allow-maporder <reason>)")
		return true
	})
	return nil
}

func orderInsensitiveBlock(pass *Pass, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !orderInsensitiveStmt(pass, s) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *Pass, s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.AssignStmt:
		return orderInsensitiveAssign(pass, st)
	case *ast.IncDecStmt:
		return isIntegerExpr(pass, st.X)
	case *ast.ExprStmt:
		// delete(m, k) is the only call with an order-insensitive effect.
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && pass.ObjectOf(id) == nil {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "delete" {
					return true
				}
			}
		}
		return false
	case *ast.BranchStmt:
		return st.Tok == token.CONTINUE
	case *ast.IfStmt:
		if st.Init != nil && !orderInsensitiveStmt(pass, st.Init) {
			return false
		}
		if !orderInsensitiveBlock(pass, st.Body.List) {
			return false
		}
		switch e := st.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return orderInsensitiveBlock(pass, e.List)
		case *ast.IfStmt:
			return orderInsensitiveStmt(pass, e)
		}
		return false
	case *ast.DeclStmt:
		return true // local declaration carries no ordering effect itself
	case *ast.BlockStmt:
		return orderInsensitiveBlock(pass, st.List)
	}
	return false
}

func orderInsensitiveAssign(pass *Pass, a *ast.AssignStmt) bool {
	switch a.Tok {
	case token.ASSIGN, token.DEFINE:
		// s = append(s, ...) — the collect-then-sort idiom — and
		// m[k] = v set/insert are both order-insensitive.
		for i, rhs := range a.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					if b, ok := pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "append" {
						continue
					}
				}
			}
			if i < len(a.Lhs) {
				if ix, ok := a.Lhs[i].(*ast.IndexExpr); ok {
					if t := pass.TypeOf(ix.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							continue
						}
					}
				}
			}
			return false
		}
		return true
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative-and-associative only over integers; float addition
		// depends on evaluation order.
		return len(a.Lhs) == 1 && isIntegerExpr(pass, a.Lhs[0])
	}
	return false
}

func isIntegerExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
