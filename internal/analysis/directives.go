package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// directivePrefix introduces an allow comment. The full syntax is
//
//	//cloudrepl:allow-<analyzer> <reason>
//
// where <analyzer> names one of the registered linters (see All) and
// <reason> is a mandatory free-text
// justification. A directive written as a declaration's doc comment covers
// the entire declaration; anywhere else it covers its own line and the
// line immediately below (so it can trail a statement or sit above one).
const directivePrefix = "//cloudrepl:allow-"

// Directive is one parsed allow comment.
type Directive struct {
	Analyzer string
	Reason   string
	Pos      token.Position
	// File-scoped line range the directive suppresses, inclusive.
	FromLine, ToLine int
	// Used is set when the directive suppressed at least one diagnostic;
	// the driver reports stale (never-used) directives.
	Used bool
}

// ParseDirectives extracts every allow directive from the package, computing
// the line span each one covers. Malformed directives (unknown analyzer,
// missing reason) are returned as diagnostics so that "zero unannotated
// violations" cannot be reached by typo.
func ParseDirectives(pkg *Package, known map[string]bool) ([]*Directive, []Diagnostic) {
	var dirs []*Directive
	var bad []Diagnostic
	for _, file := range pkg.Files {
		// Map each doc comment to the line span of its declaration so a
		// directive in a func's doc comment covers the whole body.
		declSpan := map[*ast.CommentGroup][2]int{}
		for _, decl := range file.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				declSpan[doc] = [2]int{
					pkg.Fset.Position(decl.Pos()).Line,
					pkg.Fset.Position(decl.End()).Line,
				}
			}
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if !known[name] {
					names := make([]string, 0, len(known))
					for k := range known {
						names = append(names, k)
					}
					sort.Strings(names)
					bad = append(bad, Diagnostic{
						Analyzer: "directive",
						Pos:      pos,
						Message:  fmt.Sprintf("unknown allow directive %q (known: %s)", name, strings.Join(names, ", ")),
					})
					continue
				}
				if reason == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "directive",
						Pos:      pos,
						Message:  fmt.Sprintf("allow-%s directive needs a justification: //cloudrepl:allow-%s <reason>", name, name),
					})
					continue
				}
				d := &Directive{Analyzer: name, Reason: reason, Pos: pos}
				if span, ok := declSpan[cg]; ok {
					d.FromLine, d.ToLine = span[0], span[1]
					// The doc comment itself is above the decl; include it
					// so a directive line never looks out of range.
					if pos.Line < d.FromLine {
						d.FromLine = pos.Line
					}
				} else {
					d.FromLine, d.ToLine = pos.Line, pos.Line+1
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, bad
}

// Suppress filters diags through the directives: a diagnostic is dropped
// when a directive for the same analyzer covers its line in the same file.
// Matched directives are marked Used.
func Suppress(diags []Diagnostic, dirs []*Directive) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, dir := range dirs {
			if dir.Analyzer == d.Analyzer &&
				dir.Pos.Filename == d.Pos.Filename &&
				d.Pos.Line >= dir.FromLine && d.Pos.Line <= dir.ToLine {
				dir.Used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// StaleDirectives returns a diagnostic for every directive that suppressed
// nothing — stale annotations rot into blanket exemptions, so they fail the
// lint like any other finding.
func StaleDirectives(dirs []*Directive) []Diagnostic {
	var out []Diagnostic
	for _, dir := range dirs {
		if !dir.Used {
			out = append(out, Diagnostic{
				Analyzer: "directive",
				Pos:      dir.Pos,
				Message:  fmt.Sprintf("stale allow-%s directive: nothing on lines %d-%d triggers it", dir.Analyzer, dir.FromLine, dir.ToLine),
			})
		}
	}
	return out
}
