package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// NilErrorFact marks a function whose error results are statically always
// nil: every return statement yields a literal nil (or the result of
// another always-nil function) in each error position. Dropping such a
// function's error is provably harmless, so errdrop exempts its callers —
// including callers in other packages, which import this fact instead of
// re-deriving it.
type NilErrorFact struct{}

// AFact marks NilErrorFact as a Fact.
func (*NilErrorFact) AFact() {}

// ErrDrop is errcheck for this repo: it flags error results that are
// silently dropped — calls in statement position, deferred calls, and
// goroutine launches whose error vanishes with the stack, plus error
// variables that are assigned from a call and then never read again (the
// "checked the first error, shadowed the second" bug). Unlike a syntactic
// errcheck it is call-graph-aware: wrappers whose error is statically
// always nil (NilErrorFact, propagated across packages) are exempt, as are
// the fmt printers and the infallible strings.Builder / bytes.Buffer
// writers. An explicit `_ = f()` stays visible and greppable and is
// allowed.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "flag silently dropped error results (statement position, defer, go) and " +
		"error variables assigned but never read; always-nil wrappers are exempt via facts",
	Run: runErrDrop,
}

func runErrDrop(pass *Pass) error {
	// Phase 1: classify this package's functions and export facts so
	// downstream packages see them. Same-package calls resolve through the
	// local memo (declaration order is not dependency order within a
	// package, so the memo recurses on demand).
	nw := &nilWrappers{pass: pass, decls: map[*types.Func]*ast.FuncDecl{}, memo: map[*types.Func]bool{}}
	var fns []*types.Func // declaration order, for deterministic fact export
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					nw.decls[fn] = fd
					fns = append(fns, fn)
				}
			}
		}
	}
	for _, fn := range fns {
		if nw.alwaysNil(fn) {
			pass.ExportObjectFact(fn, &NilErrorFact{})
		}
	}

	// Phase 2: report drops.
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				nw.checkDropped(call, "")
			}
		case *ast.DeferStmt:
			nw.checkDropped(n.Call, "deferred ")
		case *ast.GoStmt:
			nw.checkDropped(n.Call, "goroutine ")
		case *ast.FuncDecl:
			if n.Body != nil {
				checkDeadErrorStores(pass, n.Body)
			}
		}
		return true
	})
	return nil
}

type nilWrappers struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func]bool
	stack map[*types.Func]bool // cycle guard
}

// checkDropped reports call when it returns an error nobody can see.
func (nw *nilWrappers) checkDropped(call *ast.CallExpr, how string) {
	pass := nw.pass
	if !callReturnsError(pass, call) || droppedErrorExempt(pass, call) {
		return
	}
	if fn := staticCallee(pass, call); fn != nil && nw.callAlwaysNil(fn) {
		return
	}
	pass.Reportf(call.Pos(), "%serror result of %s dropped: nobody observes the failure; handle it or discard explicitly with _ =", how, calleeName(call))
}

// callAlwaysNil reports whether fn's error results are statically always
// nil, resolving same-package functions locally and imported ones through
// the fact store.
func (nw *nilWrappers) callAlwaysNil(fn *types.Func) bool {
	fn = fn.Origin()
	if _, local := nw.decls[fn]; local {
		return nw.alwaysNil(fn)
	}
	var fact NilErrorFact
	return nw.pass.ImportObjectFact(fn, &fact)
}

// alwaysNil computes (memoized) whether every return of local function fn
// yields nil in each error-typed result position.
func (nw *nilWrappers) alwaysNil(fn *types.Func) bool {
	if v, ok := nw.memo[fn]; ok {
		return v
	}
	if nw.stack == nil {
		nw.stack = map[*types.Func]bool{}
	}
	if nw.stack[fn] {
		return false // recursion: assume fallible
	}
	fd := nw.decls[fn]
	sig, _ := fn.Type().(*types.Signature)
	if fd == nil || sig == nil {
		return false
	}
	errPos := errorResultPositions(sig)
	if len(errPos) == 0 {
		nw.memo[fn] = false
		return false
	}
	nw.stack[fn] = true
	ok := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // literal's returns are its own
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		if len(ret.Results) == 1 && sig.Results().Len() > 1 {
			// return f() forwarding a tuple: nil-ness follows the callee.
			call, isCall := ret.Results[0].(*ast.CallExpr)
			if !isCall {
				ok = false
				return true
			}
			callee := staticCallee(nw.pass, call)
			if callee == nil || !nw.callAlwaysNil(callee) {
				ok = false
			}
			return true
		}
		if len(ret.Results) != sig.Results().Len() {
			ok = false // naked return: named error could hold anything
			return true
		}
		for _, i := range errPos {
			if !nw.exprAlwaysNil(ret.Results[i]) {
				ok = false
				return true
			}
		}
		return true
	})
	delete(nw.stack, fn)
	nw.memo[fn] = ok
	return ok
}

func (nw *nilWrappers) exprAlwaysNil(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name == "nil" && nw.pass.ObjectOf(x) == types.Universe.Lookup("nil")
	case *ast.CallExpr:
		if isErrorType(nw.pass.TypeOf(x)) {
			if fn := staticCallee(nw.pass, x); fn != nil {
				return nw.callAlwaysNil(fn)
			}
		}
		return false
	}
	return false
}

// errorResultPositions returns the indices of error-typed results.
func errorResultPositions(sig *types.Signature) []int {
	var out []int
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			out = append(out, i)
		}
	}
	return out
}

// staticCallee resolves a call to the single declared function or method it
// invokes, or nil for interface calls, function values and builtins.
func staticCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(f.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(f.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[f]; ok {
			if types.IsInterface(sel.Recv()) {
				return nil // dynamic: cannot prove always-nil
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		if fn, ok := pass.Info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// checkDeadErrorStores flags `x, err := f()` / `err = f()` assignments whose
// error variable is never read afterwards — the error was captured only to
// satisfy the compiler and then dropped. A write inside a loop counts as
// read if the variable is read anywhere in that loop body (the read may
// precede the write textually but follow it dynamically).
func checkDeadErrorStores(pass *Pass, body *ast.BlockStmt) {
	type access struct {
		pos  token.Pos
		stmt *ast.AssignStmt // nil for reads
		rhs  ast.Expr        // the call the write drew from, writes only
		list ast.Node        // statement list directly containing the write
	}
	writes := map[types.Object][]access{}
	reads := map[types.Object][]token.Pos{}
	lhsIdent := map[*ast.Ident]bool{} // assignment targets are not reads
	var loops []ast.Node

	// Statement-list ownership: two writes in the same list are sequential,
	// so a read only rescues the earlier one if it happens before the later
	// write overwrites it. Writes in different lists (if/else arms) are
	// alternatives, not a sequence, and get no such narrowing.
	owner := map[ast.Stmt]ast.Node{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			for _, s := range n.List {
				owner[s] = n
			}
		case *ast.CaseClause:
			for _, s := range n.Body {
				owner[s] = n
			}
		case *ast.CommClause:
			for _, s := range n.Body {
				owner[s] = n
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					lhsIdent[id] = true
				}
			}
			// RHS must contain a call for the store to be "an error from a
			// call"; `err = nil` resets are not drops.
			fromCall := len(n.Rhs) == 1 && isCallExpr(n.Rhs[0])
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.ObjectOf(id)
				if obj == nil || !isErrorType(obj.Type()) || !isFunctionLocal(obj) {
					continue
				}
				if fromCall {
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					} else {
						rhs = n.Rhs[0]
					}
					writes[obj] = append(writes[obj], access{pos: id.Pos(), stmt: n, rhs: rhs, list: owner[ast.Stmt(n)]})
				} else {
					// Still a write (kills earlier stores) but not itself a
					// reportable drop.
					writes[obj] = append(writes[obj], access{pos: id.Pos(), list: owner[ast.Stmt(n)]})
				}
			}
		case *ast.Ident:
			if lhsIdent[n] {
				return true
			}
			obj := pass.Info.Uses[n]
			if obj == nil || !isErrorType(obj.Type()) || !isFunctionLocal(obj) {
				return true
			}
			reads[obj] = append(reads[obj], n.Pos())
		}
		return true
	})

	enclosingLoop := func(pos token.Pos) ast.Node {
		var innermost ast.Node
		for _, l := range loops {
			if l.Pos() <= pos && pos < l.End() {
				innermost = l // later entries are more deeply nested
			}
		}
		return innermost
	}
	// Report in deterministic order: objects sorted by first-write position.
	objs := make([]types.Object, 0, len(writes))
	for obj := range writes {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return writes[objs[i]][0].pos < writes[objs[j]][0].pos })
	for _, obj := range objs {
		ws := writes[obj]
		for _, w := range ws {
			if w.stmt == nil {
				continue // non-call write, not reportable
			}
			// The read window closes at the next write in the same statement
			// list: past it, the stored error is gone.
			killed := token.Pos(0)
			if w.list != nil {
				for _, w2 := range ws {
					if w2.pos > w.pos && w2.list == w.list && (killed == 0 || w2.pos < killed) {
						killed = w2.pos
					}
				}
			}
			readAfter := false
			loop := enclosingLoop(w.pos)
			for _, r := range reads[obj] {
				if (r > w.pos && (killed == 0 || r < killed)) ||
					(loop != nil && loop.Pos() <= r && r < loop.End()) {
					readAfter = true
					break
				}
			}
			if !readAfter {
				pass.Reportf(w.pos, "error assigned to %s is never read: the failure from %s is silently dropped", obj.Name(), describeExpr(w.rhs))
			}
		}
	}
}

func isCallExpr(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok
}

// isFunctionLocal reports whether obj is a local variable (not a package
// var, field or parameter of unknown provenance — params count as local).
func isFunctionLocal(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	// Package-level variables have the package scope as parent.
	return v.Parent() != nil && v.Parent() != v.Pkg().Scope()
}

func describeExpr(e ast.Expr) string {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return calleeName(call)
	}
	return "the call"
}

// droppedErrorExempt lists error-returning calls whose drop is idiomatic
// and harmless: the fmt printers (their error is the terminal's problem)
// and the infallible strings.Builder / bytes.Buffer writers.
func droppedErrorExempt(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil {
		return false
	}
	if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		switch obj.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
				case "strings.Builder", "bytes.Buffer":
					return true
				}
			}
		}
	}
	return false
}

// callReturnsError reports whether any result of the call has type error.
func callReturnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}
