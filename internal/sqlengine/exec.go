package sqlengine

import (
	"fmt"
	"sort"
	"strings"
)

// execLocked executes a non-transaction statement. The engine mutex is held
// by the caller. Write statements arrive pre-bound (args interpolated);
// reads arrive as the original parameterized AST with args carried
// separately for plan-cache sharing.
func (e *Engine) execLocked(s *Session, stmt Stmt, args []Value) (*Result, error) {
	switch st := stmt.(type) {
	case *CreateDatabaseStmt:
		if err := e.createDatabaseLocked(st.Name, st.IfNotExists); err != nil {
			return nil, err
		}
		return &Result{Stats: ExecStats{Class: ClassDDL}, SQL: st.String()}, nil
	case *CreateTableStmt:
		return e.execCreateTable(s, st)
	case *DropTableStmt:
		return e.execDropTable(s, st)
	case *TruncateStmt:
		_, tbl, err := s.resolveTable(st.Table)
		if err != nil {
			return nil, err
		}
		n := tbl.NumRows()
		tbl.Truncate()
		e.bumpStatsEpochLocked()
		return &Result{Stats: ExecStats{Class: ClassDDL, RowsAffected: n}, SQL: st.String()}, nil
	case *InsertStmt:
		return e.execInsert(s, st)
	case *UpdateStmt:
		return e.execUpdate(s, st)
	case *DeleteStmt:
		return e.execDelete(s, st)
	case *SelectStmt:
		return e.execSelect(s, st, args)
	case *ExplainStmt:
		return e.execExplain(s, st, args)
	case *ShowStmt:
		return e.execShow(s, st)
	case *DescribeStmt:
		return e.execDescribe(s, st)
	default:
		return nil, fmt.Errorf("sqlengine: cannot execute %T", stmt)
	}
}

func (e *Engine) createDatabaseLocked(name string, ifNotExists bool) error {
	key := strings.ToLower(name)
	if _, ok := e.dbs[key]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("sqlengine: database %s exists", name)
	}
	e.dbs[key] = &Database{Name: name, tables: make(map[string]*Table)}
	return nil
}

func (e *Engine) execCreateTable(s *Session, st *CreateTableStmt) (*Result, error) {
	dbName := st.Table.DB
	if dbName == "" {
		dbName = s.db
	}
	if dbName == "" {
		return nil, fmt.Errorf("sqlengine: no database selected")
	}
	db, ok := e.dbs[strings.ToLower(dbName)]
	if !ok {
		return nil, fmt.Errorf("sqlengine: unknown database %s", dbName)
	}
	key := strings.ToLower(st.Table.Name)
	if _, exists := db.tables[key]; exists {
		if st.IfNotExists {
			return &Result{Stats: ExecStats{Class: ClassDDL}, SQL: st.String()}, nil
		}
		return nil, fmt.Errorf("sqlengine: table %s.%s exists", dbName, st.Table.Name)
	}
	tbl, err := NewTable(st.Table.Name, st.Columns, st.PrimaryKey, st.Indexes)
	if err != nil {
		return nil, err
	}
	db.tables[key] = tbl
	e.bumpStatsEpochLocked()
	return &Result{Stats: ExecStats{Class: ClassDDL}, SQL: st.String()}, nil
}

func (e *Engine) execDropTable(s *Session, st *DropTableStmt) (*Result, error) {
	dbName := st.Table.DB
	if dbName == "" {
		dbName = s.db
	}
	db, ok := e.dbs[strings.ToLower(dbName)]
	if !ok {
		return nil, fmt.Errorf("sqlengine: unknown database %s", dbName)
	}
	key := strings.ToLower(st.Table.Name)
	if _, exists := db.tables[key]; !exists {
		if st.IfExists {
			return &Result{Stats: ExecStats{Class: ClassDDL}, SQL: st.String()}, nil
		}
		return nil, fmt.Errorf("sqlengine: unknown table %s.%s", dbName, st.Table.Name)
	}
	delete(db.tables, key)
	e.bumpStatsEpochLocked()
	return &Result{Stats: ExecStats{Class: ClassDDL}, SQL: st.String()}, nil
}

func (e *Engine) execInsert(s *Session, st *InsertStmt) (*Result, error) {
	_, tbl, err := s.resolveTable(st.Table)
	if err != nil {
		return nil, err
	}
	// Map statement columns to table positions.
	var positions []int
	if len(st.Columns) == 0 {
		positions = make([]int, len(tbl.Columns))
		for i := range positions {
			positions[i] = i
		}
	} else {
		for _, name := range st.Columns {
			pos, ok := tbl.ColPos(name)
			if !ok {
				return nil, fmt.Errorf("sqlengine: unknown column %s in INSERT", name)
			}
			positions = append(positions, pos)
		}
	}
	sc := &scope{eng: e}
	stats := ExecStats{Class: ClassWrite}
	var inserted []*Row
	for _, exprRow := range st.Rows {
		if len(exprRow) != len(positions) {
			return nil, fmt.Errorf("sqlengine: INSERT row has %d values, want %d", len(exprRow), len(positions))
		}
		vals := make([]Value, len(tbl.Columns))
		for i := range vals {
			vals[i] = Null
		}
		for i, ex := range exprRow {
			v, err := sc.eval(ex)
			if err != nil {
				return nil, err
			}
			vals[positions[i]] = v
		}
		r, err := tbl.Insert(vals)
		if err != nil {
			// Undo prior rows of this statement for atomicity.
			for _, prev := range inserted {
				tbl.Delete(prev)
			}
			return nil, err
		}
		inserted = append(inserted, r)
		stats.RowsAffected++
	}
	rows := inserted
	for _, r := range rows {
		r.begin = provisionalVersion
		if s.inTxn {
			r.txn = s
		}
	}
	s.addStamp(func(cv uint64) {
		for _, r := range rows {
			r.begin = cv
			r.txn = nil
		}
	})
	s.addUndo(func() {
		for i := len(rows) - 1; i >= 0; i-- {
			tbl.Delete(rows[i])
		}
	})
	res := &Result{Stats: stats, SQL: st.String()}
	if e.Format == FormatRow {
		for _, r := range inserted {
			res.RowSQL = append(res.RowSQL, renderRowInsert(tbl, r.vals))
		}
	}
	// In statement format the binlog stores the original statement text so
	// the slave re-evaluates builtins against its own clock.
	return res, nil
}

func (e *Engine) execUpdate(s *Session, st *UpdateStmt) (*Result, error) {
	_, tbl, err := s.resolveTable(st.Table)
	if err != nil {
		return nil, err
	}
	stats := ExecStats{Class: ClassWrite}
	cands, usedIdx := pickCandidates(tbl, st.Table.refName(), st.Where, e)
	stats.UsedIndex = usedIdx
	stats.RowsExamined = len(cands)
	sc := &scope{eng: e, tables: []scopeTable{{strings.ToLower(st.Table.refName()), tbl, nil}}}

	// Pre-resolve SET columns.
	var setPos []int
	for _, a := range st.Sets {
		pos, ok := tbl.ColPos(a.Column)
		if !ok {
			return nil, fmt.Errorf("sqlengine: unknown column %s in UPDATE", a.Column)
		}
		setPos = append(setPos, pos)
	}

	var targets []*Row
	for _, r := range cands {
		sc.tables[0].vals = r.vals
		if st.Where != nil {
			ok, err := sc.eval(st.Where)
			if err != nil {
				return nil, err
			}
			if ok.IsNull() || !ok.Bool() {
				continue
			}
		}
		targets = append(targets, r)
	}
	type undoRec struct {
		r      *Row
		old    []Value
		pushed *rowVersion
	}
	popChain := func(rec undoRec) {
		if rec.pushed != nil {
			rec.r.prev = rec.pushed.prev
			rec.r.begin = rec.pushed.begin
			rec.r.txn = nil
		}
	}
	var undos []undoRec
	for _, r := range targets {
		sc.tables[0].vals = r.vals
		newVals := append([]Value(nil), r.vals...)
		changed := false
		for i, a := range st.Sets {
			v, err := sc.eval(a.Value)
			if err != nil {
				return nil, err
			}
			newVals[setPos[i]] = v
			changed = true
		}
		if !changed {
			continue
		}
		old := append([]Value(nil), r.vals...)
		var pushed *rowVersion
		if r.txn == nil {
			// Committed image: supersede it on the version chain. A row
			// already provisional (same-transaction rewrite, or a foreign
			// open writer) is overwritten in place — intra-transaction
			// rewrites create no versions, and concurrent writers to one
			// row keep the engine's last-write-wins semantics.
			pushed = &rowVersion{vals: old, begin: r.begin, prev: r.prev}
		}
		if err := tbl.Update(r, newVals); err != nil {
			for i := len(undos) - 1; i >= 0; i-- {
				_ = tbl.Update(undos[i].r, undos[i].old)
				popChain(undos[i])
			}
			return nil, err
		}
		if pushed != nil {
			r.prev = pushed
			r.begin = provisionalVersion
			if s.inTxn {
				r.txn = s
			}
		}
		undos = append(undos, undoRec{r, old, pushed})
		stats.RowsAffected++
	}
	if len(undos) > 0 {
		recs := undos
		s.addStamp(func(cv uint64) {
			for _, rec := range recs {
				if rec.pushed != nil {
					rec.pushed.end = cv
					rec.r.begin = cv
					rec.r.txn = nil
				}
			}
		})
		s.addUndo(func() {
			for i := len(recs) - 1; i >= 0; i-- {
				_ = tbl.Update(recs[i].r, recs[i].old)
				popChain(recs[i])
			}
		})
	}
	res := &Result{Stats: stats, SQL: st.String()}
	if e.Format == FormatRow {
		for _, rec := range undos {
			res.RowSQL = append(res.RowSQL, renderRowUpdate(tbl, rec.old, rec.r.vals))
		}
	}
	return res, nil
}

func (e *Engine) execDelete(s *Session, st *DeleteStmt) (*Result, error) {
	_, tbl, err := s.resolveTable(st.Table)
	if err != nil {
		return nil, err
	}
	stats := ExecStats{Class: ClassWrite}
	cands, usedIdx := pickCandidates(tbl, st.Table.refName(), st.Where, e)
	stats.UsedIndex = usedIdx
	stats.RowsExamined = len(cands)
	sc := &scope{eng: e, tables: []scopeTable{{strings.ToLower(st.Table.refName()), tbl, nil}}}
	var targets []*Row
	for _, r := range cands {
		sc.tables[0].vals = r.vals
		if st.Where != nil {
			ok, err := sc.eval(st.Where)
			if err != nil {
				return nil, err
			}
			if ok.IsNull() || !ok.Bool() {
				continue
			}
		}
		targets = append(targets, r)
	}
	for _, r := range targets {
		// MVCC delete: out of the heap, primary key and indexes (latest
		// readers must not see it), into the graveyard for snapshot readers
		// until chain GC reclaims it. The end stamp finalizes at commit.
		tbl.Delete(r)
		tbl.graveyard = append(tbl.graveyard, r)
		r.end = provisionalVersion
		if s.inTxn {
			r.txn = s
		}
		stats.RowsAffected++
	}
	if len(targets) > 0 {
		rows := targets
		s.addStamp(func(cv uint64) {
			for _, r := range rows {
				r.end = cv
				r.txn = nil
			}
		})
		s.addUndo(func() {
			for i := len(rows) - 1; i >= 0; i-- {
				rows[i].end = 0
				rows[i].txn = nil
				tbl.relink(rows[i])
			}
		})
	}
	res := &Result{Stats: stats, SQL: st.String()}
	if e.Format == FormatRow {
		for _, r := range targets {
			res.RowSQL = append(res.RowSQL, renderRowDelete(tbl, r.vals))
		}
	}
	return res, nil
}

// conjuncts flattens an AND tree.
func conjuncts(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	if e == nil {
		return nil
	}
	return []Expr{e}
}

// constEval evaluates an expression containing no column references.
func constEval(e Expr, eng *Engine) (Value, bool) {
	hasCol := false
	walkExpr(e, func(x Expr) {
		if _, ok := x.(*ColRef); ok {
			hasCol = true
		}
	})
	if hasCol {
		return Null, false
	}
	sc := &scope{eng: eng}
	v, err := sc.eval(e)
	if err != nil {
		return Null, false
	}
	return v, true
}

// pickCandidates selects the scan set for a table given a WHERE clause: an
// index-equality bucket when some conjunct is `col = const` over an indexed
// column, otherwise the whole heap.
func pickCandidates(tbl *Table, refName string, where Expr, eng *Engine) ([]*Row, bool) {
	ref := strings.ToLower(refName)
	for _, c := range conjuncts(where) {
		b, ok := c.(*Binary)
		if !ok || b.Op != "=" {
			continue
		}
		for _, try := range [2][2]Expr{{b.L, b.R}, {b.R, b.L}} {
			col, ok := try[0].(*ColRef)
			if !ok {
				continue
			}
			if col.Table != "" && strings.ToLower(col.Table) != ref {
				continue
			}
			pos, ok := tbl.ColPos(col.Name)
			if !ok {
				continue
			}
			v, ok := constEval(try[1], eng)
			if !ok {
				continue
			}
			if rows, usable := tbl.lookupEq(pos, v); usable {
				return rows, true
			}
		}
	}
	return tbl.Rows(), false
}

// jrow is one joined row: per scope table, its values (nil = LEFT JOIN miss).
type jrow [][]Value

func (e *Engine) execSelect(s *Session, st *SelectStmt, args []Value) (*Result, error) {
	p, err := e.planSelectLocked(s, st)
	if err != nil {
		return nil, err
	}
	return e.execPlan(s, p, args, nil)
}

// execPlan runs a built plan: the iterator pipeline (operators.go) streams
// joined rows into chunked jrow backing, and the shared projection /
// aggregation / order / limit tail finishes the result. acts, when non-nil,
// receives per-node output counts for EXPLAIN ANALYZE.
func (e *Engine) execPlan(s *Session, p *Plan, args []Value, acts []int64) (*Result, error) {
	if err := p.checkArgs(args); err != nil {
		return nil, err
	}
	st := p.stmt
	stats := ExecStats{Class: ClassRead}
	sc := &scope{eng: e, args: args}

	// Table-less SELECT: evaluate once against the empty scope.
	if st.From == nil {
		var cols []string
		var row []Value
		for _, se := range st.Exprs {
			if se.Star {
				return nil, fmt.Errorf("sqlengine: SELECT * requires FROM")
			}
			v, err := sc.eval(se.Expr)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			cols = append(cols, selectColName(se))
		}
		if acts != nil && len(p.tail) > 0 {
			acts[p.tail[0].id] = 1
		}
		stats.RowsReturned = 1
		return &Result{Set: &ResultSet{Columns: cols, Rows: [][]Value{row}}, Stats: stats}, nil
	}

	for _, pt := range p.tables {
		sc.tables = append(sc.tables, scopeTable{pt.lower, pt.tbl, nil})
	}

	// Visibility is decided per execution, never per plan: a latest-version
	// reader uses heaps and indexes directly, a snapshot reader degrades
	// index access to chain-resolving scans inside the operators.
	readV, mvccScan := e.readViewFor(s)
	ctx := &execCtx{e: e, s: s, sc: sc, readV: readV, mvcc: mvccScan, stats: &stats, acts: acts}
	it := buildIter(ctx, p.root)

	// Materialize surviving joined rows out of chunked backing arrays — one
	// allocation per 64 rows rather than one per row; only rows that pass
	// every pushed filter are ever copied.
	nt := len(sc.tables)
	var rows []jrow
	var chunk jrow
	for {
		ok, err := it.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if len(chunk) < nt {
			chunk = make(jrow, 64*nt)
		}
		row := chunk[0:nt:nt]
		chunk = chunk[nt:]
		for i := range sc.tables {
			row[i] = sc.tables[i].vals
		}
		rows = append(rows, row)
	}

	aggregated := len(st.GroupBy) > 0
	for _, se := range st.Exprs {
		if !se.Star && containsAggregate(se.Expr) {
			aggregated = true
		}
	}

	var set *ResultSet
	var err error
	if aggregated {
		set, err = e.aggSelect(sc, st, rows)
	} else {
		set, err = e.plainSelect(sc, st, rows)
	}
	if err != nil {
		return nil, err
	}
	setTailActs := func(kinds ...opKind) {
		if acts == nil {
			return
		}
		for _, n := range p.tail {
			for _, k := range kinds {
				if n.kind == k {
					acts[n.id] = int64(len(set.Rows))
				}
			}
		}
	}
	setTailActs(opHashAgg, opProject, opSort, opTopN)
	if st.Distinct {
		set.Rows = distinctRows(set.Rows)
		setTailActs(opDistinct)
	}
	if set.Rows, err = applyLimit(st, set.Rows, sc); err != nil {
		return nil, err
	}
	setTailActs(opLimit)
	stats.RowsReturned = len(set.Rows)
	return &Result{Set: set, Stats: stats}, nil
}

func setScope(sc *scope, row jrow) {
	for i := range sc.tables {
		sc.tables[i].vals = row[i]
	}
}

// joinEqPattern finds `rightRef.col = expr` (or mirrored) in the ON clause
// where expr does not mention rightRef; returns the column position or -1.
func joinEqPattern(on Expr, rightRef string, rightTbl *Table) (int, Expr) {
	for _, c := range conjuncts(on) {
		b, ok := c.(*Binary)
		if !ok || b.Op != "=" {
			continue
		}
		for _, try := range [2][2]Expr{{b.L, b.R}, {b.R, b.L}} {
			col, ok := try[0].(*ColRef)
			if !ok || strings.ToLower(col.Table) != rightRef {
				continue
			}
			pos, ok := rightTbl.ColPos(col.Name)
			if !ok {
				continue
			}
			mentionsRight := false
			walkExpr(try[1], func(x Expr) {
				if cr, ok := x.(*ColRef); ok && strings.ToLower(cr.Table) == rightRef {
					mentionsRight = true
				}
			})
			if !mentionsRight {
				return pos, try[1]
			}
		}
	}
	return -1, nil
}

// sortableRow pairs projected values with ORDER BY keys.
type sortableRow struct {
	proj []Value
	keys []Value
}

func (e *Engine) plainSelect(sc *scope, st *SelectStmt, rows []jrow) (*ResultSet, error) {
	cols := projectionColumns(sc, st)
	// One alias map per query, values overwritten per row (orderKeys reads
	// them before the next row) — and none at all unless ORDER BY could
	// reference an alias. The per-row map was the engine's top allocator.
	aliases := aliasMapFor(st)
	width, nk := len(cols), len(st.OrderBy)
	if top, ok := topNBound(st, sc, aliases); ok && top < len(rows) {
		return e.topNSelect(sc, st, rows, cols, top)
	}
	out := make([]sortableRow, 0, len(rows))
	// All rows' projections and sort keys live in one backing array sized
	// up front: one allocation per query instead of one per row (full scans
	// with ORDER BY were the engine's top allocator). The full-cap reslices
	// keep each row's region — and its proj/keys halves — disjoint; if a
	// projection ever outgrows its stride, append spills it to a fresh
	// array and the reserved region simply goes unused.
	stride := width + nk
	backing := make([]Value, len(rows)*stride)
	for i, row := range rows {
		setScope(sc, row)
		buf := backing[i*stride : i*stride : (i+1)*stride]
		buf, err := appendProjection(buf, sc, st, aliases)
		if err != nil {
			return nil, err
		}
		projLen := len(buf)
		buf, err = appendOrderKeys(buf, sc, st, aliases, nil, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, sortableRow{buf[:projLen:projLen], buf[projLen:]})
	}
	sortRows(st, out)
	set := &ResultSet{Columns: cols, Rows: make([][]Value, len(out))}
	for i, r := range out {
		set.Rows[i] = r.proj
	}
	return set, nil
}

// topNBound reports how many leading sorted rows the query can ever return
// (LIMIT + OFFSET) when bounded selection is equivalent to sorting
// everything: ORDER BY present, constant LIMIT/OFFSET (parameters resolve
// through the scope's args), no DISTINCT (which dedups before the limit),
// and no SELECT alias in play (aliases force projection-first evaluation).
func topNBound(st *SelectStmt, sc *scope, aliases map[string]Value) (int, bool) {
	if len(st.OrderBy) == 0 || st.Distinct || st.Limit == nil || aliases != nil {
		return 0, false
	}
	lv, ok := limitConst(sc, st.Limit)
	if !ok {
		return 0, false
	}
	n := int(lv.Int())
	if st.Offset != nil {
		ov, ok := limitConst(sc, st.Offset)
		if !ok {
			return 0, false
		}
		n += int(ov.Int())
	}
	if n < 0 {
		return 0, false
	}
	return n, true
}

// topNSelect keeps only the top rows of the stable sort order while
// scanning: each row's sort keys are computed first, rows that cannot make
// the cut are dropped before their projection is ever evaluated, and
// survivors are inserted into a bounded buffer kept in stable sorted order
// (ties lose to rows already present, exactly as a stable full sort would
// place them). The result is byte-identical to sort-everything-then-limit
// at a fraction of the cost: ORDER BY ... LIMIT over a full scan is the
// workload's hottest read shape.
func (e *Engine) topNSelect(sc *scope, st *SelectStmt, rows []jrow, cols []string, top int) (*ResultSet, error) {
	width, nk := len(cols), len(st.OrderBy)
	lessKeys := func(a, b []Value) bool {
		for k := range st.OrderBy {
			c := Compare(a[k], b[k])
			if c == 0 {
				continue
			}
			if st.OrderBy[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	}
	best := make([]sortableRow, 0, top)
	scratch := make([]Value, 0, nk)
	// Accepted rows draw their backing from chunks: a scan that arrives in
	// worst-case order (every row beats the current cut) would otherwise
	// allocate per row. Evicted rows' regions are simply abandoned — memory
	// stays bounded by the scan size, exactly like the sort-everything path.
	stride := width + nk
	var chunk []Value
	for _, row := range rows {
		setScope(sc, row)
		scratch = scratch[:0]
		var err error
		scratch, err = appendOrderKeys(scratch, sc, st, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		if len(best) == top && (top == 0 || !lessKeys(scratch, best[len(best)-1].keys)) {
			continue
		}
		if len(chunk) < stride {
			chunk = make([]Value, 64*stride)
		}
		buf := chunk[0:0:stride]
		chunk = chunk[stride:]
		buf, err = appendProjection(buf, sc, st, nil)
		if err != nil {
			return nil, err
		}
		projLen := len(buf)
		buf = append(buf, scratch...)
		nr := sortableRow{buf[:projLen:projLen], buf[projLen:]}
		pos := sort.Search(len(best), func(i int) bool { return lessKeys(nr.keys, best[i].keys) })
		if len(best) == top {
			best = best[:len(best)-1] // evict the worst; pos ≤ len-1 since nr beat it
		}
		best = append(best, sortableRow{})
		copy(best[pos+1:], best[pos:])
		best[pos] = nr
	}
	set := &ResultSet{Columns: cols, Rows: make([][]Value, len(best))}
	for i, r := range best {
		set.Rows[i] = r.proj
	}
	return set, nil
}

// aliasMapFor returns a reusable SELECT-alias map when st's ORDER BY could
// resolve against one, nil otherwise (projectRow skips alias bookkeeping
// on nil).
func aliasMapFor(st *SelectStmt) map[string]Value {
	if len(st.OrderBy) == 0 {
		return nil
	}
	for _, se := range st.Exprs {
		if se.Alias != "" {
			return make(map[string]Value, 4)
		}
	}
	return nil
}

// aggSelect groups rows and evaluates aggregate projections per group.
func (e *Engine) aggSelect(sc *scope, st *SelectStmt, rows []jrow) (*ResultSet, error) {
	type group struct {
		key  string
		rows []jrow
	}
	var groups []*group
	index := map[string]*group{}
	if len(st.GroupBy) == 0 {
		g := &group{key: ""}
		g.rows = rows
		groups = append(groups, g)
	} else {
		var kb []byte // reused per row; a string materializes only on a new group
		for _, row := range rows {
			setScope(sc, row)
			kb = kb[:0]
			for _, ge := range st.GroupBy {
				v, err := sc.eval(ge)
				if err != nil {
					return nil, err
				}
				kb = v.appendKey(kb)
				kb = append(kb, 0x1f)
			}
			g, ok := index[string(kb)]
			if !ok {
				k := string(kb)
				g = &group{key: k}
				index[k] = g
				groups = append(groups, g)
			}
			g.rows = append(g.rows, row)
		}
	}

	cols := projectionColumns(sc, st)
	aliases := aliasMapFor(st)
	out := make([]sortableRow, 0, len(groups))
	for _, g := range groups {
		if st.Having != nil {
			v, err := evalAgg(sc, st.Having, g.rows)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.Bool() {
				continue
			}
		}
		// Shared backing array for projection + keys, as in plainSelect.
		buf := make([]Value, 0, len(cols)+len(st.OrderBy))
		for _, se := range st.Exprs {
			if se.Star {
				return nil, fmt.Errorf("sqlengine: SELECT * cannot be mixed with aggregates")
			}
			v, err := evalAgg(sc, se.Expr, g.rows)
			if err != nil {
				return nil, err
			}
			buf = append(buf, v)
			if se.Alias != "" && aliases != nil {
				aliases[strings.ToLower(se.Alias)] = v
			}
		}
		projLen := len(buf)
		buf, err := appendOrderKeys(buf, sc, st, aliases, g.rows, evalAgg)
		if err != nil {
			return nil, err
		}
		out = append(out, sortableRow{buf[:projLen:projLen], buf[projLen:]})
	}
	sortRows(st, out)
	set := &ResultSet{Columns: cols}
	for _, r := range out {
		set.Rows = append(set.Rows, r.proj)
	}
	return set, nil
}

// evalAgg evaluates an expression over a group: aggregates fold the group,
// other nodes evaluate against the group's first row.
func evalAgg(sc *scope, e Expr, group []jrow) (Value, error) {
	switch e := e.(type) {
	case *FuncCall:
		if !isAggregate(e.Name) {
			if len(group) > 0 {
				setScope(sc, group[0])
			}
			return sc.eval(e)
		}
		return foldAggregate(sc, e, group)
	case *Binary:
		l, err := evalAgg(sc, e.L, group)
		if err != nil {
			return Null, err
		}
		r, err := evalAgg(sc, e.R, group)
		if err != nil {
			return Null, err
		}
		tmp := &Binary{e.Op, &Literal{l}, &Literal{r}}
		return sc.evalBinary(tmp)
	case *Unary:
		x, err := evalAgg(sc, e.X, group)
		if err != nil {
			return Null, err
		}
		return sc.eval(&Unary{e.Op, &Literal{x}})
	default:
		if len(group) > 0 {
			setScope(sc, group[0])
		}
		return sc.eval(e)
	}
}

func foldAggregate(sc *scope, f *FuncCall, group []jrow) (Value, error) {
	if f.Name == "COUNT" && f.Star {
		return NewInt(int64(len(group))), nil
	}
	if len(f.Args) != 1 {
		return Null, fmt.Errorf("sqlengine: %s expects one argument", f.Name)
	}
	var count int64
	var sumF float64
	var sumI int64
	anyFloat := false
	var minV, maxV Value
	seen := map[string]bool{}
	for _, row := range group {
		setScope(sc, row)
		v, err := sc.eval(f.Args[0])
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			continue
		}
		if f.Distinct {
			k := v.key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		count++
		if v.Kind() == KindFloat {
			anyFloat = true
		}
		sumF += v.Float()
		sumI += v.Int()
		if minV.IsNull() || Compare(v, minV) < 0 {
			minV = v
		}
		if maxV.IsNull() || Compare(v, maxV) > 0 {
			maxV = v
		}
	}
	switch f.Name {
	case "COUNT":
		return NewInt(count), nil
	case "SUM":
		if count == 0 {
			return Null, nil
		}
		if anyFloat {
			return NewFloat(sumF), nil
		}
		return NewInt(sumI), nil
	case "AVG":
		if count == 0 {
			return Null, nil
		}
		return NewFloat(sumF / float64(count)), nil
	case "MIN":
		return minV, nil
	case "MAX":
		return maxV, nil
	}
	return Null, fmt.Errorf("sqlengine: unknown aggregate %s", f.Name)
}

// projectionColumns derives output column names.
func projectionColumns(sc *scope, st *SelectStmt) []string {
	var cols []string
	for _, se := range st.Exprs {
		if se.Star {
			for _, t := range sc.tables {
				for _, c := range t.tbl.Columns {
					cols = append(cols, c.Name)
				}
			}
			continue
		}
		cols = append(cols, selectColName(se))
	}
	return cols
}

func selectColName(se SelectExpr) string {
	if se.Alias != "" {
		return se.Alias
	}
	if c, ok := se.Expr.(*ColRef); ok {
		return c.Name
	}
	return se.Expr.String()
}

// appendProjection evaluates the projection for the current scope row,
// appending onto buf (callers size buf for projection + ORDER BY keys so
// both live in one allocation). Aliased values are published into aliases
// when the caller passes one (nil means no ORDER BY alias can need them).
func appendProjection(buf []Value, sc *scope, st *SelectStmt, aliases map[string]Value) ([]Value, error) {
	proj := buf
	for _, se := range st.Exprs {
		if se.Star {
			for _, t := range sc.tables {
				if t.vals == nil {
					for range t.tbl.Columns {
						proj = append(proj, Null)
					}
				} else {
					proj = append(proj, t.vals...)
				}
			}
			continue
		}
		v, err := sc.eval(se.Expr)
		if err != nil {
			return nil, err
		}
		proj = append(proj, v)
		if se.Alias != "" && aliases != nil {
			aliases[strings.ToLower(se.Alias)] = v
		}
	}
	return proj, nil
}

// appendOrderKeys computes ORDER BY sort keys for the current row/group,
// appending onto buf. Bare column references matching a projection alias
// use the projected value.
func appendOrderKeys(buf []Value, sc *scope, st *SelectStmt, aliases map[string]Value, group []jrow,
	aggEval func(*scope, Expr, []jrow) (Value, error)) ([]Value, error) {
	for _, item := range st.OrderBy {
		if c, ok := item.Expr.(*ColRef); ok && c.Table == "" {
			if v, hit := aliases[strings.ToLower(c.Name)]; hit {
				buf = append(buf, v)
				continue
			}
		}
		var v Value
		var err error
		if aggEval != nil {
			v, err = aggEval(sc, item.Expr, group)
		} else {
			v, err = sc.eval(item.Expr)
		}
		if err != nil {
			return nil, err
		}
		buf = append(buf, v)
	}
	return buf, nil
}

// rowSorter is a concrete sort.Interface over sortable rows: ORDER BY runs
// on every scanned row of a sorted scan, and sort.SliceStable's
// reflection-based swapper was ~20% of a full experiment cell's CPU.
type rowSorter struct {
	rows  []sortableRow
	order []OrderItem
}

func (s *rowSorter) Len() int      { return len(s.rows) }
func (s *rowSorter) Swap(i, j int) { s.rows[i], s.rows[j] = s.rows[j], s.rows[i] }
func (s *rowSorter) Less(i, j int) bool {
	for k := range s.order {
		c := Compare(s.rows[i].keys[k], s.rows[j].keys[k])
		if c == 0 {
			continue
		}
		if s.order[k].Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

func sortRows(st *SelectStmt, rows []sortableRow) {
	if len(st.OrderBy) == 0 {
		return
	}
	// Stable sort output is uniquely determined by the comparator and input
	// order, so swapping implementations cannot perturb determinism.
	sort.Stable(&rowSorter{rows: rows, order: st.OrderBy})
}

func distinctRows(rows [][]Value) [][]Value {
	seen := map[string]bool{}
	out := rows[:0]
	for _, r := range rows {
		var kb strings.Builder
		for _, v := range r {
			kb.WriteString(v.key())
			kb.WriteByte(0x1f)
		}
		k := kb.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// limitConst evaluates a LIMIT/OFFSET expression: it must reference no
// columns, but may reference ? parameters resolved through the scope's args.
func limitConst(sc *scope, e Expr) (Value, bool) {
	if !runtimeConst(e) {
		return Null, false
	}
	v, err := sc.eval(e)
	if err != nil {
		return Null, false
	}
	return v, true
}

func applyLimit(st *SelectStmt, rows [][]Value, sc *scope) ([][]Value, error) {
	offset := 0
	if st.Offset != nil {
		v, ok := limitConst(sc, st.Offset)
		if !ok {
			return nil, fmt.Errorf("sqlengine: OFFSET must be constant")
		}
		offset = int(v.Int())
	}
	if offset > 0 {
		if offset >= len(rows) {
			return nil, nil
		}
		rows = rows[offset:]
	}
	if st.Limit != nil {
		v, ok := limitConst(sc, st.Limit)
		if !ok {
			return nil, fmt.Errorf("sqlengine: LIMIT must be constant")
		}
		n := int(v.Int())
		if n < len(rows) {
			rows = rows[:n]
		}
	}
	return rows, nil
}
