package sqlengine

import (
	"fmt"
	"strings"
)

// ErrDuplicateKey is wrapped by primary-key and unique-index violations.
var ErrDuplicateKey = fmt.Errorf("duplicate key")

// Row is a stored tuple. Rows have stable identity so index buckets can
// reference them across updates. MVCC state rides on the row: begin and end
// are the commit versions bounding the current image's visibility (end 0 =
// still live), prev chains superseded committed images newest-first, and
// txn marks an image provisionally written by an open transaction (see
// mvcc.go for the visibility rules).
type Row struct {
	vals  []Value
	begin uint64
	end   uint64
	prev  *rowVersion
	txn   *Session
}

// Values returns the row's values aligned with the table's columns. The
// returned slice is the live storage; callers must not modify it.
func (r *Row) Values() []Value { return r.vals }

// Index is a secondary index over one or more columns.
type Index struct {
	Name    string
	Cols    []int // column positions
	Unique  bool
	buckets map[string][]*Row
}

func (ix *Index) keyOf(vals []Value) string {
	var b strings.Builder
	for i, c := range ix.Cols {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteString(vals[c].key())
	}
	return b.String()
}

func (ix *Index) add(r *Row) error {
	k := ix.keyOf(r.vals)
	if ix.Unique && len(ix.buckets[k]) > 0 {
		return fmt.Errorf("%w: index %s", ErrDuplicateKey, ix.Name)
	}
	ix.buckets[k] = append(ix.buckets[k], r)
	return nil
}

func (ix *Index) remove(r *Row) {
	k := ix.keyOf(r.vals)
	bucket := ix.buckets[k]
	for i, x := range bucket {
		if x == r {
			ix.buckets[k] = append(bucket[:i], bucket[i+1:]...)
			if len(ix.buckets[k]) == 0 {
				delete(ix.buckets, k)
			}
			return
		}
	}
}

// Table is an in-memory heap of rows with a primary key and optional
// secondary indexes.
type Table struct {
	Name    string
	Columns []ColumnDef
	colPos  map[string]int
	pkCols  []int
	rows    []*Row
	pk      map[string]*Row
	indexes []*Index
	// graveyard holds deleted rows until chain GC proves no snapshot
	// reader can still see them; they are out of the heap, primary key
	// and indexes, found only by version-resolving scans.
	graveyard []*Row
	rowBytes  int // rough per-row footprint, informational
	// stats is the planner's statistics profile (stats.go): exact live row
	// count via len(rows), lazily analyzed per-column NDV and bounds.
	stats tableStats
}

// NewTable builds a table from column definitions, a primary-key column
// list (which may be empty — then every column forms the identity but no
// uniqueness is enforced) and secondary index definitions.
func NewTable(name string, cols []ColumnDef, pkCols []string, indexes []IndexDef) (*Table, error) {
	t := &Table{Name: name, Columns: cols, colPos: make(map[string]int), pk: make(map[string]*Row)}
	t.stats.analyzedRows = -1
	for i, c := range cols {
		lc := strings.ToLower(c.Name)
		if _, dup := t.colPos[lc]; dup {
			return nil, fmt.Errorf("sqlengine: duplicate column %q in table %s", c.Name, name)
		}
		t.colPos[lc] = i
		if c.PrimaryKey {
			t.pkCols = append(t.pkCols, i)
		}
	}
	for _, pc := range pkCols {
		pos, ok := t.colPos[strings.ToLower(pc)]
		if !ok {
			return nil, fmt.Errorf("sqlengine: primary key column %q not in table %s", pc, name)
		}
		t.pkCols = append(t.pkCols, pos)
	}
	for _, def := range indexes {
		ix := &Index{Name: def.Name, Unique: def.Unique, buckets: make(map[string][]*Row)}
		for _, cn := range def.Columns {
			pos, ok := t.colPos[strings.ToLower(cn)]
			if !ok {
				return nil, fmt.Errorf("sqlengine: index column %q not in table %s", cn, name)
			}
			ix.Cols = append(ix.Cols, pos)
		}
		t.indexes = append(t.indexes, ix)
	}
	return t, nil
}

// ColPos returns the position of a column by (case-insensitive) name.
func (t *Table) ColPos(name string) (int, bool) {
	pos, ok := t.colPos[strings.ToLower(name)]
	return pos, ok
}

// NumRows returns the current row count.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the physical row list. Callers iterate it read-only.
func (t *Table) Rows() []*Row { return t.rows }

// HasPK reports whether the table enforces a primary key.
func (t *Table) HasPK() bool { return len(t.pkCols) > 0 }

func (t *Table) pkKey(vals []Value) string {
	var b strings.Builder
	for i, c := range t.pkCols {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteString(vals[c].key())
	}
	return b.String()
}

// Insert adds a row, enforcing NOT NULL, primary-key and unique-index
// constraints and coercing values to column kinds.
func (t *Table) Insert(vals []Value) (*Row, error) {
	if len(vals) != len(t.Columns) {
		return nil, fmt.Errorf("sqlengine: table %s has %d columns, got %d values", t.Name, len(t.Columns), len(vals))
	}
	stored := make([]Value, len(vals))
	for i, v := range vals {
		cv, err := coerce(v, t.Columns[i])
		if err != nil {
			return nil, fmt.Errorf("sqlengine: column %s.%s: %w", t.Name, t.Columns[i].Name, err)
		}
		stored[i] = cv
	}
	r := &Row{vals: stored}
	if t.HasPK() {
		k := t.pkKey(stored)
		if _, exists := t.pk[k]; exists {
			return nil, fmt.Errorf("%w: primary key of table %s", ErrDuplicateKey, t.Name)
		}
		t.pk[k] = r
	}
	for _, ix := range t.indexes {
		if err := ix.add(r); err != nil {
			// Roll back previously added index entries and the PK entry.
			for _, prev := range t.indexes {
				if prev == ix {
					break
				}
				prev.remove(r)
			}
			if t.HasPK() {
				delete(t.pk, t.pkKey(stored))
			}
			return nil, fmt.Errorf("sqlengine: table %s: %w", t.Name, err)
		}
	}
	t.rows = append(t.rows, r)
	t.stats.observeInsert(stored)
	return r, nil
}

// Delete removes a row by identity.
func (t *Table) Delete(r *Row) {
	if t.HasPK() {
		delete(t.pk, t.pkKey(r.vals))
	}
	for _, ix := range t.indexes {
		ix.remove(r)
	}
	for i, x := range t.rows {
		if x == r {
			t.rows = append(t.rows[:i], t.rows[i+1:]...)
			return
		}
	}
}

// Update replaces a row's values in place, maintaining all indexes. It
// fails without side effects on constraint violations.
func (t *Table) Update(r *Row, newVals []Value) error {
	stored := make([]Value, len(newVals))
	for i, v := range newVals {
		cv, err := coerce(v, t.Columns[i])
		if err != nil {
			return fmt.Errorf("sqlengine: column %s.%s: %w", t.Name, t.Columns[i].Name, err)
		}
		stored[i] = cv
	}
	if t.HasPK() {
		oldKey, newKey := t.pkKey(r.vals), t.pkKey(stored)
		if oldKey != newKey {
			if _, exists := t.pk[newKey]; exists {
				return fmt.Errorf("%w: primary key of table %s", ErrDuplicateKey, t.Name)
			}
			delete(t.pk, oldKey)
			t.pk[newKey] = r
		}
	}
	for _, ix := range t.indexes {
		ix.remove(r)
	}
	old := r.vals
	r.vals = stored
	t.stats.observeInsert(stored)
	for _, ix := range t.indexes {
		if err := ix.add(r); err != nil {
			// Restore: remove entries added so far, put old values back.
			for _, prev := range t.indexes {
				if prev == ix {
					break
				}
				prev.remove(r)
			}
			if t.HasPK() {
				delete(t.pk, t.pkKey(stored))
				r.vals = old
				t.pk[t.pkKey(old)] = r
				for _, again := range t.indexes {
					_ = again.add(r)
				}
				return fmt.Errorf("sqlengine: table %s: %w", t.Name, err)
			}
			r.vals = old
			for _, again := range t.indexes {
				_ = again.add(r)
			}
			return fmt.Errorf("sqlengine: table %s: %w", t.Name, err)
		}
	}
	return nil
}

// LookupPK returns the row with the given primary-key values.
func (t *Table) LookupPK(vals []Value) (*Row, bool) {
	if !t.HasPK() {
		return nil, false
	}
	var b strings.Builder
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteString(v.key())
	}
	r, ok := t.pk[b.String()]
	return r, ok
}

// lookupEq returns rows matching col = v via the best available index, and
// whether an index was usable.
func (t *Table) lookupEq(col int, v Value) ([]*Row, bool) {
	// Keys are built in a stack buffer: map lookups through string(bytes)
	// compile to zero-allocation probes, and point lookups dominate the
	// read workload.
	var kb [32]byte
	// Single-column primary key.
	if len(t.pkCols) == 1 && t.pkCols[0] == col {
		if r, ok := t.pk[string(v.appendKey(kb[:0]))]; ok {
			return []*Row{r}, true
		}
		return nil, true
	}
	for _, ix := range t.indexes {
		if len(ix.Cols) == 1 && ix.Cols[0] == col {
			return ix.buckets[string(v.appendKey(kb[:0]))], true
		}
	}
	return nil, false
}

// Truncate removes all rows. TRUNCATE is DDL, not a versioned write: the
// graveyard and version chains go with the heap, so snapshot readers lose
// pre-truncate images (documented MVCC scope, DESIGN.md §12).
func (t *Table) Truncate() {
	t.rows = nil
	t.graveyard = nil
	t.pk = make(map[string]*Row)
	for _, ix := range t.indexes {
		ix.buckets = make(map[string][]*Row)
	}
}

// coerce converts v to the column's kind, mirroring MySQL's permissive
// implicit conversions.
func coerce(v Value, col ColumnDef) (Value, error) {
	if v.IsNull() {
		if col.NotNull {
			return v, fmt.Errorf("NULL into NOT NULL column")
		}
		return v, nil
	}
	switch col.Type {
	case KindInt:
		switch v.Kind() {
		case KindInt, KindBool, KindTime:
			return NewInt(v.Int()), nil
		case KindFloat:
			return NewInt(int64(v.Float())), nil
		case KindString:
			var n int64
			if _, err := fmt.Sscanf(strings.TrimSpace(v.Str()), "%d", &n); err != nil {
				return v, fmt.Errorf("cannot convert %q to integer", v.Str())
			}
			return NewInt(n), nil
		}
	case KindFloat:
		if v.numeric() {
			return NewFloat(v.Float()), nil
		}
		var f float64
		if _, err := fmt.Sscanf(strings.TrimSpace(v.Str()), "%g", &f); err != nil {
			return v, fmt.Errorf("cannot convert %q to double", v.Str())
		}
		return NewFloat(f), nil
	case KindString:
		s := v.String()
		if col.TypeArg > 0 && len(s) > col.TypeArg {
			s = s[:col.TypeArg] // MySQL truncates with a warning
		}
		return NewString(s), nil
	case KindBool:
		return NewBool(v.Bool()), nil
	case KindTime:
		switch v.Kind() {
		case KindTime, KindInt:
			return NewTime(v.Int()), nil
		case KindFloat:
			return NewTime(int64(v.Float())), nil
		default:
			return v, fmt.Errorf("cannot convert %s to timestamp", v.Kind())
		}
	}
	return v, nil
}
