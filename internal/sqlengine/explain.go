package sqlengine

import (
	"fmt"
	"strconv"
	"strings"
)

// ExplainStmt is EXPLAIN [ANALYZE] <statement>. Plain EXPLAIN renders the
// plan the planner would choose without executing the statement; EXPLAIN
// ANALYZE executes it and annotates every operator with its actual output
// row count.
type ExplainStmt struct {
	Inner   Stmt
	Analyze bool
}

func (s *ExplainStmt) String() string {
	if s.Analyze {
		return "EXPLAIN ANALYZE " + s.Inner.String()
	}
	return "EXPLAIN " + s.Inner.String()
}
func (*ExplainStmt) stmt() {}

// execExplain renders the plan tree for the inner statement: a single "plan"
// column, one operator per row, in the byte-deterministic format documented
// on planNode.line — the A-PLAN decision log and the EXPLAIN golden test
// both pin it. SELECT goes through the planner; UPDATE and DELETE render
// their driving access with the same operator vocabulary.
func (e *Engine) execExplain(s *Session, st *ExplainStmt, args []Value) (*Result, error) {
	var lines []string
	switch inner := st.Inner.(type) {
	case *SelectStmt:
		p, err := e.planSelectLocked(s, inner)
		if err != nil {
			return nil, err
		}
		var acts []int64
		if st.Analyze {
			acts = make([]int64, len(p.nodes))
			if _, err := e.execPlan(s, p, args, acts); err != nil {
				return nil, err
			}
		}
		lines = p.Lines(acts)
	case *UpdateStmt:
		lines = []string{writeAccessLine(s, inner.Table, inner.Where, "update")}
		if strings.HasPrefix(lines[0], "!") {
			return nil, fmt.Errorf("sqlengine: %s", lines[0][1:])
		}
	case *DeleteStmt:
		lines = []string{writeAccessLine(s, inner.Table, inner.Where, "delete")}
		if strings.HasPrefix(lines[0], "!") {
			return nil, fmt.Errorf("sqlengine: %s", lines[0][1:])
		}
	default:
		return nil, fmt.Errorf("sqlengine: cannot EXPLAIN %T", st.Inner)
	}

	set := &ResultSet{Columns: []string{"plan"}}
	for _, l := range lines {
		set.Rows = append(set.Rows, []Value{NewString(l)})
	}
	return &Result{Set: set, Stats: ExecStats{Class: ClassRead, RowsReturned: len(set.Rows)}, SQL: st.String()}, nil
}

// writeAccessLine renders the driving access an UPDATE/DELETE would use (the
// write executor's pickCandidates logic), in the plan-line format. A leading
// "!" marks a resolution error for the caller to surface.
func writeAccessLine(s *Session, ref TableRef, where Expr, verb string) string {
	_, tbl, err := s.resolveTable(ref)
	if err != nil {
		return "!" + strings.TrimPrefix(err.Error(), "sqlengine: ")
	}
	op := "scan"
	detail := ref.refName()
	est := len(tbl.rows)
	for _, c := range conjuncts(where) {
		b, ok := c.(*Binary)
		if !ok || b.Op != "=" {
			continue
		}
		found := false
		for _, try := range [2][2]Expr{{b.L, b.R}, {b.R, b.L}} {
			col, ok := try[0].(*ColRef)
			if !ok {
				continue
			}
			if col.Table != "" && strings.ToLower(col.Table) != strings.ToLower(ref.refName()) {
				continue
			}
			pos, ok := tbl.ColPos(col.Name)
			if !ok {
				continue
			}
			if !runtimeConst(try[1]) {
				continue
			}
			name, unique, usable := usableEqIndex(tbl, pos)
			if !usable {
				continue
			}
			op = "index_scan"
			detail = ref.refName() + " via " + name + " on (" + tbl.Columns[pos].Name + " = " + try[1].String() + ")"
			est = int(eqBucketEst(tbl, pos, unique))
			found = true
			break
		}
		if found {
			break
		}
	}
	if where != nil {
		detail += " filter (" + where.String() + ")"
	}
	return op + " " + detail + " (" + verb + " est=" + strconv.Itoa(est) + " cost=" + strconv.Itoa(est) + ")"
}
