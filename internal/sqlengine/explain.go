package sqlengine

import (
	"fmt"
	"strings"
)

// ExplainStmt is EXPLAIN <statement>: it reports the access path the
// executor would take without running the statement.
type ExplainStmt struct {
	Inner Statement
}

func (s *ExplainStmt) String() string { return "EXPLAIN " + s.Inner.String() }
func (*ExplainStmt) stmt()            {}

// explainRow is one plan step.
type explainRow struct {
	table  string
	access string // "const (PRIMARY)", "ref (idx_x)", "ALL"
	rows   int    // estimated rows examined
	extra  string
}

// execExplain produces the plan description for the inner statement.
func (e *Engine) execExplain(s *Session, st *ExplainStmt) (*Result, error) {
	var rows []explainRow
	switch inner := st.Inner.(type) {
	case *SelectStmt:
		if inner.From == nil {
			rows = append(rows, explainRow{table: "<none>", access: "no table", rows: 1})
			break
		}
		_, tbl, err := s.resolveTable(*inner.From)
		if err != nil {
			return nil, err
		}
		rows = append(rows, explainAccess(tbl, inner.From.refName(), inner.Where, e))
		for i := range inner.Joins {
			j := inner.Joins[i]
			_, jt, err := s.resolveTable(j.Table)
			if err != nil {
				return nil, err
			}
			r := explainRow{table: j.Table.refName(), access: "ALL", rows: jt.NumRows()}
			if col, _ := joinEqPattern(j.On, strings.ToLower(j.Table.refName()), jt); col >= 0 {
				if name, ok := indexNameFor(jt, col); ok {
					r.access = "ref (" + name + ")"
					r.rows = estimateBucket(jt)
				}
			}
			if j.Left {
				r.extra = "left join"
			}
			rows = append(rows, r)
		}
		var notes []string
		if len(inner.GroupBy) > 0 {
			notes = append(notes, "group by")
		}
		if len(inner.OrderBy) > 0 {
			notes = append(notes, "sort")
		}
		if inner.Limit != nil {
			notes = append(notes, "limit")
		}
		if len(notes) > 0 && len(rows) > 0 {
			first := &rows[0]
			if first.extra != "" {
				first.extra += "; "
			}
			first.extra += strings.Join(notes, ", ")
		}
	case *UpdateStmt:
		_, tbl, err := s.resolveTable(inner.Table)
		if err != nil {
			return nil, err
		}
		r := explainAccess(tbl, inner.Table.refName(), inner.Where, e)
		r.extra = strings.TrimSpace("update " + r.extra)
		rows = append(rows, r)
	case *DeleteStmt:
		_, tbl, err := s.resolveTable(inner.Table)
		if err != nil {
			return nil, err
		}
		r := explainAccess(tbl, inner.Table.refName(), inner.Where, e)
		r.extra = strings.TrimSpace("delete " + r.extra)
		rows = append(rows, r)
	default:
		return nil, fmt.Errorf("sqlengine: cannot EXPLAIN %T", st.Inner)
	}

	set := &ResultSet{Columns: []string{"table", "access", "est_rows", "extra"}}
	for _, r := range rows {
		set.Rows = append(set.Rows, []Value{
			NewString(r.table), NewString(r.access), NewInt(int64(r.rows)), NewString(r.extra),
		})
	}
	return &Result{Set: set, Stats: ExecStats{Class: ClassRead, RowsReturned: len(set.Rows)}, SQL: st.String()}, nil
}

// explainAccess describes the driving-table access path for a WHERE clause
// using the same selection logic as the executor.
func explainAccess(tbl *Table, refName string, where Expr, eng *Engine) explainRow {
	ref := strings.ToLower(refName)
	for _, c := range conjuncts(where) {
		b, ok := c.(*Binary)
		if !ok || b.Op != "=" {
			continue
		}
		for _, try := range [2][2]Expr{{b.L, b.R}, {b.R, b.L}} {
			col, ok := try[0].(*ColRef)
			if !ok {
				continue
			}
			if col.Table != "" && strings.ToLower(col.Table) != ref {
				continue
			}
			pos, ok := tbl.ColPos(col.Name)
			if !ok {
				continue
			}
			if _, usable := constEval(try[1], eng); !usable {
				continue
			}
			if len(tbl.pkCols) == 1 && tbl.pkCols[0] == pos {
				return explainRow{table: refName, access: "const (PRIMARY)", rows: 1}
			}
			if name, ok := indexNameFor(tbl, pos); ok {
				return explainRow{table: refName, access: "ref (" + name + ")", rows: estimateBucket(tbl)}
			}
		}
	}
	return explainRow{table: refName, access: "ALL", rows: tbl.NumRows()}
}

// indexNameFor finds a single-column secondary index on column pos.
func indexNameFor(tbl *Table, pos int) (string, bool) {
	if len(tbl.pkCols) == 1 && tbl.pkCols[0] == pos {
		return "PRIMARY", true
	}
	for _, ix := range tbl.indexes {
		if len(ix.Cols) == 1 && ix.Cols[0] == pos {
			return ix.Name, true
		}
	}
	return "", false
}

// estimateBucket estimates rows per index bucket (uniform assumption).
func estimateBucket(tbl *Table) int {
	n := tbl.NumRows()
	if n == 0 {
		return 0
	}
	est := n / 10
	if est < 1 {
		est = 1
	}
	return est
}
