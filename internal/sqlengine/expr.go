package sqlengine

import (
	"fmt"
	"strings"
)

// scopeTable is one table visible to expression evaluation, with the
// current row's values (nil for a LEFT JOIN miss: all columns read NULL).
type scopeTable struct {
	name string // ref name (alias or table name), lower-case
	tbl  *Table
	vals []Value
}

// scope is the row context for evaluating expressions. args carries the
// statement's positional arguments for reads executed against the original
// parameterized AST (writes interpolate via Bind and never see a Param).
type scope struct {
	tables []scopeTable
	eng    *Engine
	args   []Value
}

// resolve finds the value for a column reference, memoizing the column
// position on the ColRef node (see its cache fields). Ambiguity checking
// across multi-table scopes stays on the uncached slow path.
func (sc *scope) resolve(c *ColRef) (Value, error) {
	if c.Table != "" {
		if c.lname == "" {
			c.lname = strings.ToLower(c.Table)
		}
		for i := range sc.tables {
			st := &sc.tables[i]
			if st.name != c.lname {
				continue
			}
			if st.tbl != c.ctbl {
				pos, ok := st.tbl.ColPos(c.Name)
				if !ok {
					return Null, fmt.Errorf("sqlengine: unknown column %s.%s", c.Table, c.Name)
				}
				c.ctbl, c.cpos = st.tbl, pos
			}
			if st.vals == nil {
				return Null, nil
			}
			return st.vals[c.cpos], nil
		}
		return Null, fmt.Errorf("sqlengine: unknown table %s in expression", c.Table)
	}
	if len(sc.tables) == 1 {
		st := &sc.tables[0]
		if st.tbl != c.ctbl {
			pos, ok := st.tbl.ColPos(c.Name)
			if !ok {
				return Null, fmt.Errorf("sqlengine: unknown column %s", c.Name)
			}
			c.ctbl, c.cpos = st.tbl, pos
		}
		if st.vals == nil {
			return Null, nil
		}
		return st.vals[c.cpos], nil
	}
	found := -1
	var out Value
	for _, st := range sc.tables {
		if pos, ok := st.tbl.ColPos(c.Name); ok {
			if found >= 0 {
				return Null, fmt.Errorf("sqlengine: ambiguous column %s", c.Name)
			}
			found = pos
			if st.vals == nil {
				out = Null
			} else {
				out = st.vals[pos]
			}
		}
	}
	if found < 0 {
		return Null, fmt.Errorf("sqlengine: unknown column %s", c.Name)
	}
	return out, nil
}

// eval evaluates a scalar expression in the row scope. Aggregate calls are
// rejected here; the aggregate path evaluates them over groups.
func (sc *scope) eval(e Expr) (Value, error) {
	switch e := e.(type) {
	case *Literal:
		return e.V, nil
	case *Param:
		if e.Index < len(sc.args) {
			return sc.args[e.Index], nil
		}
		return Null, fmt.Errorf("sqlengine: unbound parameter")
	case *ColRef:
		return sc.resolve(e)
	case *Unary:
		x, err := sc.eval(e.X)
		if err != nil {
			return Null, err
		}
		if e.Op == "NOT" {
			if x.IsNull() {
				return Null, nil
			}
			return NewBool(!x.Bool()), nil
		}
		switch x.Kind() {
		case KindFloat:
			return NewFloat(-x.Float()), nil
		case KindNull:
			return Null, nil
		default:
			return NewInt(-x.Int()), nil
		}
	case *Binary:
		return sc.evalBinary(e)
	case *FuncCall:
		if isAggregate(e.Name) {
			return Null, fmt.Errorf("sqlengine: aggregate %s not allowed here", e.Name)
		}
		return sc.evalFunc(e)
	case *InExpr:
		x, err := sc.eval(e.X)
		if err != nil {
			return Null, err
		}
		if x.IsNull() {
			return Null, nil
		}
		for _, item := range e.List {
			v, err := sc.eval(item)
			if err != nil {
				return Null, err
			}
			if !v.IsNull() && Compare(x, v) == 0 {
				return NewBool(!e.Not), nil
			}
		}
		return NewBool(e.Not), nil
	case *BetweenExpr:
		x, err := sc.eval(e.X)
		if err != nil {
			return Null, err
		}
		lo, err := sc.eval(e.Lo)
		if err != nil {
			return Null, err
		}
		hi, err := sc.eval(e.Hi)
		if err != nil {
			return Null, err
		}
		if x.IsNull() || lo.IsNull() || hi.IsNull() {
			return Null, nil
		}
		in := Compare(x, lo) >= 0 && Compare(x, hi) <= 0
		return NewBool(in != e.Not), nil
	case *IsNullExpr:
		x, err := sc.eval(e.X)
		if err != nil {
			return Null, err
		}
		return NewBool(x.IsNull() != e.Not), nil
	case *LikeExpr:
		x, err := sc.eval(e.X)
		if err != nil {
			return Null, err
		}
		pat, err := sc.eval(e.Pattern)
		if err != nil {
			return Null, err
		}
		if x.IsNull() || pat.IsNull() {
			return Null, nil
		}
		m := likeMatch(x.String(), pat.String())
		return NewBool(m != e.Not), nil
	default:
		return Null, fmt.Errorf("sqlengine: cannot evaluate %T", e)
	}
}

func (sc *scope) evalBinary(e *Binary) (Value, error) {
	// AND/OR short-circuit with three-valued-ish logic (NULL treated as
	// unknown that only matters when it decides the outcome).
	if e.Op == "AND" {
		l, err := sc.eval(e.L)
		if err != nil {
			return Null, err
		}
		if !l.IsNull() && !l.Bool() {
			return NewBool(false), nil
		}
		r, err := sc.eval(e.R)
		if err != nil {
			return Null, err
		}
		if !r.IsNull() && !r.Bool() {
			return NewBool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return NewBool(true), nil
	}
	if e.Op == "OR" {
		l, err := sc.eval(e.L)
		if err != nil {
			return Null, err
		}
		if !l.IsNull() && l.Bool() {
			return NewBool(true), nil
		}
		r, err := sc.eval(e.R)
		if err != nil {
			return Null, err
		}
		if !r.IsNull() && r.Bool() {
			return NewBool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return NewBool(false), nil
	}

	l, err := sc.eval(e.L)
	if err != nil {
		return Null, err
	}
	r, err := sc.eval(e.R)
	if err != nil {
		return Null, err
	}
	switch e.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		c := Compare(l, r)
		var out bool
		switch e.Op {
		case "=":
			out = c == 0
		case "!=":
			out = c != 0
		case "<":
			out = c < 0
		case "<=":
			out = c <= 0
		case ">":
			out = c > 0
		case ">=":
			out = c >= 0
		}
		return NewBool(out), nil
	case "+", "-", "*", "/", "%":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		// String concatenation is spelled CONCAT, not +; arithmetic on
		// strings coerces numerically like MySQL.
		lf, rf := l.Float(), r.Float()
		useFloat := l.Kind() == KindFloat || r.Kind() == KindFloat || e.Op == "/"
		if l.Kind() == KindString || r.Kind() == KindString {
			useFloat = true
		}
		switch e.Op {
		case "+":
			if useFloat {
				return NewFloat(lf + rf), nil
			}
			return NewInt(l.Int() + r.Int()), nil
		case "-":
			if useFloat {
				return NewFloat(lf - rf), nil
			}
			return NewInt(l.Int() - r.Int()), nil
		case "*":
			if useFloat {
				return NewFloat(lf * rf), nil
			}
			return NewInt(l.Int() * r.Int()), nil
		case "/":
			if rf == 0 {
				return Null, nil // MySQL: division by zero yields NULL
			}
			return NewFloat(lf / rf), nil
		case "%":
			if r.Int() == 0 {
				return Null, nil
			}
			return NewInt(l.Int() % r.Int()), nil
		}
	}
	return Null, fmt.Errorf("sqlengine: unknown operator %q", e.Op)
}

func (sc *scope) evalFunc(e *FuncCall) (Value, error) {
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		v, err := sc.eval(a)
		if err != nil {
			return Null, err
		}
		args[i] = v
	}
	return callBuiltin(sc.eng, e.Name, args)
}

// callBuiltin dispatches scalar builtins.
func callBuiltin(eng *Engine, name string, args []Value) (Value, error) {
	argn := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sqlengine: %s expects %d arguments, got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "UTC_MICROS", "NOW", "CURRENT_TIMESTAMP", "UTC_TIMESTAMP":
		// Microsecond-resolution local time (the paper's UDF for MySQL Bug
		// #8523). Evaluated against the executing server's own clock.
		return NewTime(eng.NowMicros()), nil
	case "CONCAT":
		var b strings.Builder
		for _, a := range args {
			if a.IsNull() {
				return Null, nil
			}
			b.WriteString(a.String())
		}
		return NewString(b.String()), nil
	case "LOWER":
		if err := argn(1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return NewString(strings.ToLower(args[0].String())), nil
	case "UPPER":
		if err := argn(1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return NewString(strings.ToUpper(args[0].String())), nil
	case "LENGTH":
		if err := argn(1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return NewInt(int64(len(args[0].String()))), nil
	case "ABS":
		if err := argn(1); err != nil {
			return Null, err
		}
		v := args[0]
		switch v.Kind() {
		case KindNull:
			return Null, nil
		case KindFloat:
			f := v.Float()
			if f < 0 {
				f = -f
			}
			return NewFloat(f), nil
		default:
			n := v.Int()
			if n < 0 {
				n = -n
			}
			return NewInt(n), nil
		}
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null, nil
	case "IF":
		if err := argn(3); err != nil {
			return Null, err
		}
		if !args[0].IsNull() && args[0].Bool() {
			return args[1], nil
		}
		return args[2], nil
	case "SUBSTR", "SUBSTRING":
		if len(args) != 2 && len(args) != 3 {
			return Null, fmt.Errorf("sqlengine: %s expects 2 or 3 arguments", name)
		}
		if args[0].IsNull() || args[1].IsNull() {
			return Null, nil
		}
		s := args[0].String()
		start := int(args[1].Int()) // 1-based
		if start < 1 {
			start = 1
		}
		if start > len(s) {
			return NewString(""), nil
		}
		out := s[start-1:]
		if len(args) == 3 {
			if args[2].IsNull() {
				return Null, nil
			}
			n := int(args[2].Int())
			if n < 0 {
				n = 0
			}
			if n < len(out) {
				out = out[:n]
			}
		}
		return NewString(out), nil
	case "MOD":
		if err := argn(2); err != nil {
			return Null, err
		}
		if args[0].IsNull() || args[1].IsNull() || args[1].Int() == 0 {
			return Null, nil
		}
		return NewInt(args[0].Int() % args[1].Int()), nil
	case "FLOOR":
		if err := argn(1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		f := args[0].Float()
		n := int64(f)
		if f < 0 && f != float64(n) {
			n--
		}
		return NewInt(n), nil
	case "CEIL", "CEILING":
		if err := argn(1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		f := args[0].Float()
		n := int64(f)
		if f > 0 && f != float64(n) {
			n++
		}
		return NewInt(n), nil
	default:
		return Null, fmt.Errorf("sqlengine: unknown function %s", name)
	}
}

// isAggregate reports whether name is an aggregate function.
func isAggregate(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	default:
		return false
	}
}

// containsAggregate reports whether the expression tree contains an
// aggregate call.
func containsAggregate(e Expr) bool {
	found := false
	walkExpr(e, func(x Expr) {
		if f, ok := x.(*FuncCall); ok && isAggregate(f.Name) {
			found = true
		}
	})
	return found
}

// likeMatch implements SQL LIKE with % (any run) and _ (one byte),
// case-insensitively like MySQL's default collation.
func likeMatch(s, pattern string) bool {
	// ASCII inputs fold per byte during the match; allocating two lowered
	// copies here ran once per scanned row on LIKE scans. Non-ASCII falls
	// back to whole-string lowering so multi-byte case mapping (which can
	// change byte lengths) behaves exactly as before; the redundant ASCII
	// fold after it is a no-op on already-lowered bytes.
	if !isASCII(s) || !isASCII(pattern) {
		s = strings.ToLower(s)
		pattern = strings.ToLower(pattern)
	}
	// Greedy two-pointer wildcard match over bytes.
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || lowerASCII(pattern[pi]) == lowerASCII(s[si])):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

func lowerASCII(c byte) byte {
	if 'A' <= c && c <= 'Z' {
		return c + 32
	}
	return c
}
