package sqlengine

import (
	"fmt"
	"strings"
)

// The planner builds a Plan (plan.go) for a SELECT in one of two modes.
//
// The cost-based mode pools WHERE and (inner) ON conjuncts, pushes each down
// to the earliest operator where all referenced tables are bound, picks
// access paths and a greedy join order, and chooses index-nested-loop vs
// hash vs nested-loop per join by estimated rows examined — the currency the
// server's virtual CPU model charges, so minimizing it maximizes simulated
// throughput. Any LEFT join switches the query to syntax order with
// ON-conjuncts kept at their join (null-extension makes reordering and WHERE
// pooling unsound in general); only driving-table-only WHERE conjuncts are
// pushed.
//
// The naive mode reproduces the pre-planner executor exactly — first usable
// `col = const` WHERE conjunct picks the driving index, joins run in syntax
// order with per-join index lookups when available, and the whole WHERE
// applies after all joins — so the A-PLAN ablation's baseline arm and the
// engine's published figures stay byte-for-byte stable.

// probePenalty charges an index-nested-loop probe the equivalent of two
// sequentially scanned rows: each probe is a random index access, while a
// hash build reads its input sequentially. This is what lets hash join win
// on unselective outers even when an inner index exists.
const probePenalty = 2.0

// Default selectivities when statistics cannot say better.
const (
	defaultRangeSel   = 1.0 / 3
	defaultLikeSel    = 0.25
	defaultIsNullSel  = 0.1
	defaultBetweenSel = 0.25
	defaultSel        = 1.0 / 3
)

// planSelectLocked returns the cached or freshly built plan for st under the
// session's database and the engine's current planner mode. Engine lock held.
func (e *Engine) planSelectLocked(s *Session, st *SelectStmt) (*Plan, error) {
	mode := "c"
	if e.NaivePlan {
		mode = "n"
	}
	key := strings.ToLower(s.db) + "\x00" + mode + "\x00" + st.normKey()
	if p, ok := e.planCache[key]; ok && p.epoch == e.statsEpoch {
		// Writes don't advance the stats epoch, so a hot cached plan could
		// otherwise outlive arbitrary data drift: re-plan (which re-analyzes)
		// when any involved table has drifted past the staleness threshold.
		if e.NaivePlan || !p.staleStats() {
			return p, nil
		}
	}
	p, err := e.buildPlanLocked(s, st, e.NaivePlan)
	if err != nil {
		return nil, err
	}
	e.planCache[key] = p
	return p, nil
}

// countParams returns the number of ? parameters in the statement.
func countParams(st Stmt) int {
	n := 0
	walkStmt(st, func(e Expr) {
		if _, ok := e.(*Param); ok {
			n++
		}
	})
	return n
}

// runtimeConst reports whether the expression evaluates to the same value
// for every row of one execution: no column references (parameters are fine,
// they are fixed per execution).
func runtimeConst(e Expr) bool {
	hasCol := false
	walkExpr(e, func(x Expr) {
		if _, ok := x.(*ColRef); ok {
			hasCol = true
		}
	})
	return !hasCol
}

// usableEqIndex reports whether `col = v` on tbl can be answered by a point
// lookup (single-column PK or single-column secondary index — the lookupEq
// contract), returning the index display name and whether it is unique.
func usableEqIndex(tbl *Table, col int) (name string, unique, ok bool) {
	if len(tbl.pkCols) == 1 && tbl.pkCols[0] == col {
		return "PRIMARY", true, true
	}
	for _, ix := range tbl.indexes {
		if len(ix.Cols) == 1 && ix.Cols[0] == col {
			return ix.Name, ix.Unique, true
		}
	}
	return "", false, false
}

// planBuilder carries state while constructing one plan.
type planBuilder struct {
	e      *Engine
	s      *Session
	st     *SelectStmt
	p      *Plan
	nextID int
}

func (b *planBuilder) newNode(kind opKind) *planNode {
	n := &planNode{id: b.nextID, kind: kind, eqCol: -1}
	b.nextID++
	b.p.nodes = append(b.p.nodes, n)
	return n
}

// buildPlanLocked constructs a plan for st. Engine lock held: table
// resolution, statistics refresh and cost estimation all read catalog state.
func (e *Engine) buildPlanLocked(s *Session, st *SelectStmt, naive bool) (*Plan, error) {
	p := &Plan{
		db:      strings.ToLower(s.db),
		norm:    st.normKey(),
		naive:   naive,
		stmt:    st,
		topN:    -1,
		nparams: countParams(st),
	}
	b := &planBuilder{e: e, s: s, st: st, p: p}

	if st.From == nil {
		// Table-less SELECT: a lone projection evaluated once.
		proj := b.newNode(opProject)
		proj.detail = projectDetail(st)
		proj.estRows = 1
		p.tail = []*planNode{proj}
		p.epoch = e.statsEpoch
		return p, nil
	}

	// Resolve scope tables in syntax order — jrow slots and column
	// resolution never depend on join order.
	refs := make([]TableRef, 0, 1+len(st.Joins))
	refs = append(refs, *st.From)
	for _, j := range st.Joins {
		refs = append(refs, j.Table)
	}
	for _, r := range refs {
		_, tbl, err := s.resolveTable(r)
		if err != nil {
			return nil, err
		}
		p.tables = append(p.tables, planTable{
			display: r.refName(),
			lower:   strings.ToLower(r.refName()),
			tbl:     tbl,
		})
	}

	if !naive {
		// Cost mode plans against fresh statistics; refresh before costing
		// so the epoch recorded below covers any re-ANALYZE done here.
		for _, pt := range p.tables {
			e.refreshStatsLocked(pt.tbl)
		}
	}

	var err error
	if naive {
		err = b.buildNaiveAccess()
	} else {
		err = b.buildCostAccess()
	}
	if err != nil {
		return nil, err
	}
	b.buildTail()
	p.totalCost = 0
	for _, n := range p.nodes {
		if n.hasCost() {
			p.totalCost += n.estCost
		}
	}
	p.epoch = e.statsEpoch
	return p, nil
}

// ---------------------------------------------------------------------------
// Estimation helpers

// rowsOf returns the live row count as a float with a floor of 0.
func rowsOf(t *Table) float64 { return float64(len(t.rows)) }

// eqBucketEst estimates rows returned by an index point lookup.
func eqBucketEst(t *Table, col int, unique bool) float64 {
	if unique {
		return 1
	}
	n := len(t.rows)
	ndv := t.stats.ndvOf(col, n)
	if ndv < 1 {
		ndv = 1
	}
	est := float64(n) / float64(ndv)
	if est < 1 && n > 0 {
		est = 1
	}
	return est
}

// colOf resolves expr to a column position on slot `slot`, considering both
// qualified refs naming the slot and bare refs uniquely owned by it.
func (b *planBuilder) colOf(expr Expr, slot int) (int, bool) {
	c, ok := expr.(*ColRef)
	if !ok {
		return 0, false
	}
	pt := b.p.tables[slot]
	if c.Table != "" {
		if strings.ToLower(c.Table) != pt.lower {
			return 0, false
		}
		pos, ok := pt.tbl.ColPos(c.Name)
		return pos, ok
	}
	// Bare column: it belongs to this slot only if no other table has it.
	owner, pos := -1, 0
	for i, t := range b.p.tables {
		if p, ok := t.tbl.ColPos(c.Name); ok {
			if owner >= 0 {
				return 0, false // ambiguous
			}
			owner, pos = i, p
		}
	}
	return pos, owner == slot
}

// refMaskOf computes which scope slots an expression references. ok is false
// when any reference cannot be resolved (unknown table/column, or an
// ambiguous bare column) — such conjuncts stay at the top filter so runtime
// errors surface exactly as the naive executor would surface them.
func (b *planBuilder) refMaskOf(expr Expr) (mask uint64, ok bool) {
	ok = true
	walkExpr(expr, func(x Expr) {
		c, isCol := x.(*ColRef)
		if !isCol || !ok {
			return
		}
		if c.Table != "" {
			lt := strings.ToLower(c.Table)
			for i, t := range b.p.tables {
				if t.lower == lt {
					if _, has := t.tbl.ColPos(c.Name); !has {
						ok = false
						return
					}
					mask |= 1 << uint(i)
					return
				}
			}
			ok = false
			return
		}
		owner := -1
		for i, t := range b.p.tables {
			if _, has := t.tbl.ColPos(c.Name); has {
				if owner >= 0 {
					ok = false
					return
				}
				owner = i
			}
		}
		if owner < 0 {
			ok = false
			return
		}
		mask |= 1 << uint(owner)
	})
	return mask, ok
}

// selOf estimates the fraction of rows a single-table conjunct keeps. slot
// is the table the conjunct applies to.
func (b *planBuilder) selOf(c Expr, slot int) float64 {
	t := b.p.tables[slot].tbl
	ts := &t.stats
	switch x := c.(type) {
	case *Binary:
		col, colOK := b.colOf(x.L, slot)
		other := x.R
		op := x.Op
		if !colOK {
			col, colOK = b.colOf(x.R, slot)
			other = x.L
			op = flipCmp(op)
		}
		if !colOK || !runtimeConst(other) {
			return defaultSel
		}
		switch op {
		case "=":
			return 1 / float64(ts.ndvOf(col, len(t.rows)))
		case "!=", "<>":
			return 1 - 1/float64(ts.ndvOf(col, len(t.rows)))
		case "<", "<=", ">", ">=":
			if lit, isLit := other.(*Literal); isLit && col < len(ts.cols) {
				return ts.cols[col].rangeFraction(op, lit.V)
			}
			return defaultRangeSel
		}
		return defaultSel
	case *InExpr:
		col, colOK := b.colOf(x.X, slot)
		if !colOK {
			return defaultSel
		}
		f := float64(len(x.List)) / float64(ts.ndvOf(col, len(t.rows)))
		if f > 1 {
			f = 1
		}
		if x.Not {
			return 1 - f
		}
		return f
	case *IsNullExpr:
		if x.Not {
			return 1 - defaultIsNullSel
		}
		return defaultIsNullSel
	case *LikeExpr:
		return defaultLikeSel
	case *BetweenExpr:
		return defaultBetweenSel
	}
	return defaultSel
}

// flipCmp mirrors a comparison operator for the swapped-operand orientation.
func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// kindClass groups value kinds by hash-key compatibility: within one class,
// Value.appendKey equality coincides with Compare equality, so a hash join
// finds exactly the matches a nested loop would.
type kindClass uint8

const (
	classUnknown kindClass = iota
	classNumeric
	classString
)

func classOfKind(k Kind) kindClass {
	switch k {
	case KindInt, KindFloat, KindBool, KindTime:
		return classNumeric
	case KindString:
		return classString
	}
	return classUnknown
}

// classOfExpr statically classifies an expression's value kind where
// possible: column refs by schema, literals by value.
func (b *planBuilder) classOfExpr(e Expr) kindClass {
	switch x := e.(type) {
	case *ColRef:
		for slot := range b.p.tables {
			if pos, ok := b.colOf(x, slot); ok {
				return classOfKind(b.p.tables[slot].tbl.Columns[pos].Type)
			}
		}
		return classUnknown
	case *Literal:
		return classOfKind(x.V.Kind())
	}
	return classUnknown
}

// ---------------------------------------------------------------------------
// Naive mode — parity with the pre-planner executor

// buildNaiveAccess mirrors the legacy execSelect shape: pickCandidates on
// the driving table, syntax-order joins with per-join index lookups, whole
// WHERE evaluated after all joins.
func (b *planBuilder) buildNaiveAccess() error {
	st, p := b.st, b.p

	drive := b.naiveDriving()
	chain := drive
	outEst := drive.estRows
	for ji, j := range st.Joins {
		slot := ji + 1
		jt := p.tables[slot].tbl
		eqCol, eqExpr := joinEqPattern(j.On, p.tables[slot].lower, jt)
		var n *planNode
		if eqCol >= 0 {
			if name, unique, usable := usableEqIndex(jt, eqCol); usable {
				n = b.newNode(opINLJoin)
				n.eqCol, n.eqExpr, n.idxName = eqCol, eqExpr, name
				n.estCost = outEst * eqBucketEst(jt, eqCol, unique)
			}
		}
		if n == nil {
			n = b.newNode(opNLJoin)
			n.estCost = outEst * rowsOf(jt)
		}
		n.slot, n.tbl, n.left = slot, jt, j.Left
		// The whole ON expression as a single filter reproduces the legacy
		// executor's evaluation (including three-valued AND order) exactly.
		n.filters = []Expr{j.On}
		n.input = chain
		mpo := rowsOf(jt)
		for _, c := range conjuncts(j.On) {
			mpo *= joinFilterSel(b, c, slot)
		}
		out := outEst * mpo
		if j.Left && out < outEst {
			out = outEst
		}
		n.estRows = out
		n.detail = joinDetail(p.tables[slot].display, n)
		chain = n
		outEst = out
	}
	if st.Where != nil {
		f := b.newNode(opFilter)
		f.filters = []Expr{st.Where} // single-expression: legacy evaluation order
		f.input = chain
		sel := 1.0
		for _, c := range conjuncts(st.Where) {
			sel *= b.whereSel(c)
		}
		f.estRows = outEst * sel
		f.detail = strings.TrimPrefix(renderFilters(f.filters), " filter ")
		chain = f
		outEst = f.estRows
	}
	p.root = chain
	return nil
}

// naiveDriving reproduces pickCandidates as a plan node: the first WHERE
// conjunct that is `col = const` over an indexed driving-table column wins.
func (b *planBuilder) naiveDriving() *planNode {
	st, p := b.st, b.p
	tbl := p.tables[0].tbl
	ref := p.tables[0].lower
	for _, c := range conjuncts(st.Where) {
		bin, ok := c.(*Binary)
		if !ok || bin.Op != "=" {
			continue
		}
		for _, try := range [2][2]Expr{{bin.L, bin.R}, {bin.R, bin.L}} {
			col, ok := try[0].(*ColRef)
			if !ok {
				continue
			}
			if col.Table != "" && strings.ToLower(col.Table) != ref {
				continue
			}
			pos, ok := tbl.ColPos(col.Name)
			if !ok {
				continue
			}
			if !runtimeConst(try[1]) {
				continue
			}
			if name, unique, usable := usableEqIndex(tbl, pos); usable {
				n := b.newNode(opIndexScan)
				n.slot, n.tbl = 0, tbl
				n.eqCol, n.eqExpr, n.idxName = pos, try[1], name
				n.estCost = eqBucketEst(tbl, pos, unique)
				n.estRows = n.estCost
				n.detail = accessDetail(p.tables[0].display, n)
				p.usedIndex = true
				return n
			}
		}
	}
	n := b.newNode(opScan)
	n.slot, n.tbl = 0, tbl
	n.estCost = rowsOf(tbl)
	n.estRows = n.estCost
	n.detail = accessDetail(p.tables[0].display, n)
	return n
}

// whereSel estimates a WHERE conjunct's selectivity: single-table conjuncts
// use column statistics, everything else the default.
func (b *planBuilder) whereSel(c Expr) float64 {
	mask, ok := b.refMaskOf(c)
	if !ok || mask == 0 || mask&(mask-1) != 0 {
		return defaultSel
	}
	slot := 0
	for mask>>uint(slot+1) != 0 {
		slot++
	}
	return b.selOf(c, slot)
}

// joinFilterSel estimates one ON conjunct's match fraction against the join
// table: equality against the join column contributes 1/NDV, the rest use
// single-table or default selectivities.
func joinFilterSel(b *planBuilder, c Expr, slot int) float64 {
	if bin, ok := c.(*Binary); ok && bin.Op == "=" {
		for _, try := range [2]Expr{bin.L, bin.R} {
			if col, ok := b.colOf(try, slot); ok {
				t := b.p.tables[slot].tbl
				return 1 / float64(t.stats.ndvOf(col, len(t.rows)))
			}
		}
	}
	return b.whereSel(c)
}

// ---------------------------------------------------------------------------
// Cost mode

// pooledConjunct tracks one predicate through placement.
type pooledConjunct struct {
	expr Expr
	mask uint64
	ok   bool // resolvable (eligible for pushdown)
	used bool // attached to some node already
}

// buildCostAccess builds the cost-based access chain.
func (b *planBuilder) buildCostAccess() error {
	for _, j := range b.st.Joins {
		if j.Left {
			return b.buildCostSyntaxOrder()
		}
	}
	return b.buildCostReorder()
}

// pool collects conjuncts with their reference masks.
func (b *planBuilder) pool(exprs []Expr) []*pooledConjunct {
	out := make([]*pooledConjunct, 0, len(exprs))
	for _, e := range exprs {
		mask, ok := b.refMaskOf(e)
		out = append(out, &pooledConjunct{expr: e, mask: mask, ok: ok})
	}
	return out
}

// attach collects every unused resolvable conjunct whose references are
// covered by bound, marking them used. Order follows the pool (WHERE first,
// then ON clauses in syntax order) for deterministic plans.
func attach(pool []*pooledConjunct, bound uint64) []Expr {
	var out []Expr
	for _, pc := range pool {
		if pc.used || !pc.ok || pc.mask&^bound != 0 {
			continue
		}
		pc.used = true
		out = append(out, pc.expr)
	}
	return out
}

// eqCandidate is a potential equality lookup: slot.col = expr(bound).
type eqCandidate struct {
	pc     *pooledConjunct
	col    int
	expr   Expr // outer-side key expression
	rlSafe bool // hash-key classes compatible
}

// eqCandidatesFor finds equality conjuncts usable to join `slot` to the
// bound set (driving access passes bound = 0 and runtime-const other sides).
func (b *planBuilder) eqCandidatesFor(pool []*pooledConjunct, slot int, bound uint64) []eqCandidate {
	var out []eqCandidate
	slotBit := uint64(1) << uint(slot)
	for _, pc := range pool {
		if pc.used || !pc.ok {
			continue
		}
		bin, isBin := pc.expr.(*Binary)
		if !isBin || bin.Op != "=" {
			continue
		}
		for _, try := range [2][2]Expr{{bin.L, bin.R}, {bin.R, bin.L}} {
			col, ok := b.colOf(try[0], slot)
			if !ok {
				continue
			}
			otherMask, otherOK := b.refMaskOf(try[1])
			if !otherOK || otherMask&slotBit != 0 || otherMask&^bound != 0 {
				continue
			}
			innerClass := classOfKind(b.p.tables[slot].tbl.Columns[col].Type)
			outerClass := b.classOfExpr(try[1])
			out = append(out, eqCandidate{
				pc:     pc,
				col:    col,
				expr:   try[1],
				rlSafe: innerClass != classUnknown && innerClass == outerClass,
			})
			break
		}
	}
	return out
}

// accessChoice is one scored way to bring a table into the pipeline.
type accessChoice struct {
	slot    int
	kind    opKind
	eqCol   int
	eqExpr  Expr
	idxName string
	eqPC    *pooledConjunct // lookup conjunct (excluded from selectivity product)
	cost    float64         // estimated rows examined by this step
	outRows float64         // estimated pipeline output after this step
}

// drivingChoice scores the best access for slot as the driving table.
func (b *planBuilder) drivingChoice(pool []*pooledConjunct, slot int) accessChoice {
	t := b.p.tables[slot].tbl
	best := accessChoice{slot: slot, kind: opScan, eqCol: -1, cost: rowsOf(t)}
	for _, cand := range b.eqCandidatesFor(pool, slot, 0) {
		name, unique, usable := usableEqIndex(t, cand.col)
		if !usable {
			continue
		}
		cost := eqBucketEst(t, cand.col, unique)
		if cost < best.cost {
			best = accessChoice{slot: slot, kind: opIndexScan, eqCol: cand.col,
				eqExpr: cand.expr, idxName: name, eqPC: cand.pc, cost: cost}
		}
	}
	// Output estimate: examined rows filtered by the remaining single-table
	// conjuncts (the lookup conjunct's selectivity is the bucket itself).
	out := best.cost
	slotBit := uint64(1) << uint(slot)
	for _, pc := range pool {
		if pc.used || !pc.ok || pc.mask&^slotBit != 0 || pc == best.eqPC {
			continue
		}
		out *= b.selOf(pc.expr, slot)
	}
	best.outRows = out
	return best
}

// joinChoices scores every way to join `slot` onto the bound pipeline.
func (b *planBuilder) joinChoices(pool []*pooledConjunct, slot int, bound uint64, outEst float64) []accessChoice {
	t := b.p.tables[slot].tbl
	rows := rowsOf(t)
	newBound := bound | 1<<uint(slot)

	// Expected matches per outer row across all conjuncts that become
	// evaluable here — the output cardinality, independent of algorithm.
	mpoAll := rows
	var lookupPCs []*pooledConjunct
	cands := b.eqCandidatesFor(pool, slot, bound)
	for _, pc := range pool {
		if pc.used || !pc.ok || pc.mask&^newBound != 0 || pc.mask&(1<<uint(slot)) == 0 {
			continue
		}
		isEq := false
		for _, c := range cands {
			if c.pc == pc {
				isEq = true
				break
			}
		}
		if isEq {
			mpoAll *= 1 / float64(t.stats.ndvOf(eqColOf(cands, pc), len(t.rows)))
			lookupPCs = append(lookupPCs, pc)
		} else if pc.mask == 1<<uint(slot) {
			mpoAll *= b.selOf(pc.expr, slot)
		} else {
			mpoAll *= defaultSel
		}
	}
	_ = lookupPCs
	out := outEst * mpoAll

	var choices []accessChoice
	for _, cand := range cands {
		bucket := rows / float64(t.stats.ndvOf(cand.col, len(t.rows)))
		if bucket < 1 {
			bucket = 1
		}
		if name, unique, usable := usableEqIndex(t, cand.col); usable {
			bk := bucket
			if unique {
				bk = 1
			}
			choices = append(choices, accessChoice{
				slot: slot, kind: opINLJoin, eqCol: cand.col, eqExpr: cand.expr,
				idxName: name, eqPC: cand.pc,
				cost:    outEst * (probePenalty + bk),
				outRows: out,
			})
		}
		if cand.rlSafe {
			choices = append(choices, accessChoice{
				slot: slot, kind: opHashJoin, eqCol: cand.col, eqExpr: cand.expr,
				eqPC: cand.pc,
				cost: rows + outEst*bucket, outRows: out,
			})
		}
	}
	choices = append(choices, accessChoice{
		slot: slot, kind: opNLJoin, eqCol: -1,
		cost: outEst * rows, outRows: out,
	})
	return choices
}

// eqColOf finds the inner column of the candidate backed by pc.
func eqColOf(cands []eqCandidate, pc *pooledConjunct) int {
	for _, c := range cands {
		if c.pc == pc {
			return c.col
		}
	}
	return -1
}

// buildCostReorder is the inner-join-only path: pooled predicates, greedy
// join order, per-join algorithm choice.
func (b *planBuilder) buildCostReorder() error {
	st, p := b.st, b.p
	exprs := conjuncts(st.Where)
	for _, j := range st.Joins {
		exprs = append(exprs, conjuncts(j.On)...)
	}
	pool := b.pool(exprs)

	nt := len(p.tables)
	var chain *planNode
	var bound uint64
	outEst := 0.0

	for step := 0; step < nt; step++ {
		var best accessChoice
		haveBest := false
		if chain == nil {
			for slot := 0; slot < nt; slot++ {
				c := b.drivingChoice(pool, slot)
				if !haveBest || c.cost < best.cost {
					best, haveBest = c, true
				}
			}
		} else {
			for slot := 0; slot < nt; slot++ {
				if bound&(1<<uint(slot)) != 0 {
					continue
				}
				for _, c := range b.joinChoices(pool, slot, bound, outEst) {
					if !haveBest || c.cost < best.cost {
						best, haveBest = c, true
					}
				}
			}
		}

		slotBit := uint64(1) << uint(best.slot)
		bound |= slotBit
		pt := p.tables[best.slot]
		n := b.newNode(best.kind)
		n.slot, n.tbl = best.slot, pt.tbl
		n.eqCol, n.eqExpr, n.idxName = best.eqCol, best.eqExpr, best.idxName
		n.input = chain
		// The lookup conjunct stays in the filter list as a recheck (exact
		// under MVCC scan degradation); it just doesn't count twice in the
		// estimates above.
		n.filters = attach(pool, bound)
		n.estCost = best.cost
		n.estRows = best.outRows
		if chain == nil {
			n.detail = accessDetail(pt.display, n)
			p.usedIndex = n.kind == opIndexScan
		} else {
			n.detail = joinDetail(pt.display, n)
		}
		chain = n
		outEst = best.outRows
	}

	// Conjuncts that never became attachable (unresolvable references) are
	// evaluated after all joins, where the naive executor would evaluate
	// them — runtime errors surface identically.
	var residual []Expr
	for _, pc := range pool {
		if !pc.used {
			residual = append(residual, pc.expr)
		}
	}
	if len(residual) > 0 {
		f := b.newNode(opFilter)
		f.filters = residual
		f.input = chain
		f.estRows = outEst * defaultSel
		f.detail = strings.TrimPrefix(renderFilters(residual), " filter ")
		chain = f
		outEst = f.estRows
	}
	p.root = chain
	return nil
}

// buildCostSyntaxOrder handles queries with LEFT joins: syntax order, ON
// conjuncts at their join, driving-only WHERE conjuncts pushed to the scan,
// everything else in the post-join filter. Join algorithms are still chosen
// by cost.
func (b *planBuilder) buildCostSyntaxOrder() error {
	st, p := b.st, b.p
	wherePool := b.pool(conjuncts(st.Where))

	// Driving access from driving-only WHERE conjuncts.
	drive := b.drivingChoice(wherePool, 0)
	dn := b.newNode(drive.kind)
	dn.slot, dn.tbl = 0, p.tables[0].tbl
	dn.eqCol, dn.eqExpr, dn.idxName = drive.eqCol, drive.eqExpr, drive.idxName
	dn.filters = attach(wherePool, 1)
	dn.estCost = drive.cost
	dn.estRows = drive.outRows
	dn.detail = accessDetail(p.tables[0].display, dn)
	p.usedIndex = dn.kind == opIndexScan

	chain := dn
	outEst := dn.estRows
	bound := uint64(1)
	for ji, j := range st.Joins {
		slot := ji + 1
		onPool := b.pool(conjuncts(j.On))
		var best accessChoice
		haveBest := false
		for _, c := range b.joinChoices(onPool, slot, bound, outEst) {
			if !haveBest || c.cost < best.cost {
				best, haveBest = c, true
			}
		}
		bound |= 1 << uint(slot)
		n := b.newNode(best.kind)
		n.slot, n.tbl = slot, p.tables[slot].tbl
		n.eqCol, n.eqExpr, n.idxName = best.eqCol, best.eqExpr, best.idxName
		n.left = j.Left
		// Every ON conjunct is evaluated at the join, resolvable or not —
		// LEFT join semantics require the full ON to decide matches.
		n.filters = conjuncts(j.On)
		n.input = chain
		n.estCost = best.cost
		out := best.outRows
		if j.Left && out < outEst {
			out = outEst
		}
		n.estRows = out
		n.detail = joinDetail(p.tables[slot].display, n)
		chain = n
		outEst = out
	}

	var residual []Expr
	for _, pc := range wherePool {
		if !pc.used {
			residual = append(residual, pc.expr)
		}
	}
	if len(residual) > 0 {
		f := b.newNode(opFilter)
		f.filters = residual
		f.input = chain
		sel := 1.0
		for _, c := range residual {
			sel *= b.whereSel(c)
		}
		f.estRows = outEst * sel
		f.detail = strings.TrimPrefix(renderFilters(residual), " filter ")
		chain = f
		outEst = f.estRows
	}
	p.root = chain
	return nil
}

// ---------------------------------------------------------------------------
// Tail (projection / aggregation / order / limit)

// buildTail appends the presentation operators above the relational root,
// outermost first, and fixes the top-N bound when the bounded sort applies.
func (b *planBuilder) buildTail() {
	st, p := b.st, b.p
	outEst := 1.0
	if p.root != nil {
		outEst = p.root.estRows
	}

	aggregated := len(st.GroupBy) > 0
	for _, se := range st.Exprs {
		if !se.Star && containsAggregate(se.Expr) {
			aggregated = true
		}
	}

	var tail []*planNode // built innermost-first, reversed at the end

	if aggregated {
		agg := b.newNode(opHashAgg)
		var d strings.Builder
		if len(st.GroupBy) > 0 {
			d.WriteString("group_by=(")
			d.WriteString(exprList(st.GroupBy))
			d.WriteByte(')')
		} else {
			d.WriteString("global")
		}
		if st.Having != nil {
			d.WriteString(" having (")
			d.WriteString(st.Having.String())
			d.WriteByte(')')
		}
		agg.detail = d.String()
		if len(st.GroupBy) == 0 {
			agg.estRows = 1
		} else {
			agg.estRows = estGroups(b, outEst)
		}
		outEst = agg.estRows
		tail = append(tail, agg)
	} else {
		proj := b.newNode(opProject)
		proj.detail = projectDetail(st)
		proj.estRows = outEst
		tail = append(tail, proj)
	}

	if len(st.OrderBy) > 0 {
		if bound, ok := staticTopNBound(st); ok && !aggregated {
			top := b.newNode(opTopN)
			top.detail = orderDetail(st) + " limit " + estInt(float64(bound))
			if f := float64(bound); f < outEst {
				outEst = f
			}
			top.estRows = outEst
			p.topN = bound
			tail = append(tail, top)
		} else {
			srt := b.newNode(opSort)
			srt.detail = orderDetail(st)
			srt.estRows = outEst
			tail = append(tail, srt)
		}
	}

	if st.Distinct {
		d := b.newNode(opDistinct)
		d.estRows = outEst
		tail = append(tail, d)
	}

	if st.Limit != nil || st.Offset != nil {
		lim := b.newNode(opLimit)
		var d strings.Builder
		if st.Limit != nil {
			d.WriteString(st.Limit.String())
			if lv, isLit := st.Limit.(*Literal); isLit {
				if f := float64(lv.V.Int()); f < outEst {
					outEst = f
				}
			}
		} else {
			d.WriteString("all")
		}
		if st.Offset != nil {
			d.WriteString(" offset ")
			d.WriteString(st.Offset.String())
		}
		lim.detail = d.String()
		lim.estRows = outEst
		tail = append(tail, lim)
	}

	// Reverse: p.tail is outermost-first.
	p.tail = make([]*planNode, 0, len(tail))
	for i := len(tail) - 1; i >= 0; i-- {
		p.tail = append(p.tail, tail[i])
	}
}

// staticTopNBound mirrors topNBound with plan-time (literal-only) constants:
// ORDER BY with literal LIMIT/OFFSET, no DISTINCT, no SELECT alias in play.
func staticTopNBound(st *SelectStmt) (int, bool) {
	if len(st.OrderBy) == 0 || st.Distinct || st.Limit == nil || aliasMapFor(st) != nil {
		return 0, false
	}
	lv, ok := st.Limit.(*Literal)
	if !ok {
		return 0, false
	}
	n := int(lv.V.Int())
	if st.Offset != nil {
		ov, ok := st.Offset.(*Literal)
		if !ok {
			return 0, false
		}
		n += int(ov.V.Int())
	}
	if n < 0 {
		return 0, false
	}
	return n, true
}

// estGroups estimates distinct groups: the product of group-column NDVs when
// all keys are plain column refs, else a fixed fraction of the input.
func estGroups(b *planBuilder, outEst float64) float64 {
	prod := 1.0
	for _, g := range b.st.GroupBy {
		hit := false
		for slot := range b.p.tables {
			if col, ok := b.colOf(g, slot); ok {
				t := b.p.tables[slot].tbl
				prod *= float64(t.stats.ndvOf(col, len(t.rows)))
				hit = true
				break
			}
		}
		if !hit {
			prod *= 8 // opaque key expression: assume moderate fan-out
		}
	}
	if prod > outEst {
		prod = outEst
	}
	if prod < 1 {
		prod = 1
	}
	return prod
}

// ---------------------------------------------------------------------------
// Detail rendering

func accessDetail(display string, n *planNode) string {
	var b strings.Builder
	b.WriteString(display)
	if n.kind == opIndexScan {
		b.WriteString(" via ")
		b.WriteString(n.idxName)
		b.WriteString(" on (")
		b.WriteString(n.tbl.Columns[n.eqCol].Name)
		b.WriteString(" = ")
		b.WriteString(n.eqExpr.String())
		b.WriteByte(')')
	}
	b.WriteString(renderFilters(n.filters))
	return b.String()
}

func joinDetail(display string, n *planNode) string {
	var b strings.Builder
	if n.left {
		b.WriteString("left ")
	}
	b.WriteString(display)
	if n.eqCol >= 0 && n.eqExpr != nil {
		if n.idxName != "" {
			b.WriteString(" via ")
			b.WriteString(n.idxName)
		}
		b.WriteString(" on (")
		b.WriteString(n.tbl.Columns[n.eqCol].Name)
		b.WriteString(" = ")
		b.WriteString(n.eqExpr.String())
		b.WriteByte(')')
	}
	b.WriteString(renderFilters(n.filters))
	return b.String()
}

func projectDetail(st *SelectStmt) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, se := range st.Exprs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(se.String())
	}
	b.WriteByte(')')
	return b.String()
}

func orderDetail(st *SelectStmt) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, o := range st.OrderBy {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(o.String())
	}
	b.WriteByte(')')
	return b.String()
}

// checkArgs validates the argument count against the plan's parameter count,
// matching Bind's error text.
func (p *Plan) checkArgs(args []Value) error {
	if len(args) != p.nparams {
		return fmt.Errorf("sqlengine: statement has %d parameters but %d arguments given", p.nparams, len(args))
	}
	return nil
}
