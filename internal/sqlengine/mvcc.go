package sqlengine

// This file is the MVCC core: rows carry (begin, end) commit-version stamps
// and a newest-first chain of superseded images, stamped by the per-engine
// commit counter. Reads resolve visibility against a read version — the
// latest commit for autocommit statements, the BEGIN-time version for open
// transactions (snapshot isolation) — and Engine.Snapshot() is a
// non-quiescent versioned read over the same chains. The undo log remains
// the write-side abort path: rollback physically restores heap/index state
// and pops the chain entries the transaction pushed.
//
// Version stamps are assigned at commit time through stamp closures: each
// write statement appends a closure taking the final commit version, and
// commit runs them all with commitV+1 before publishing it. Until then the
// affected images hold provisionalVersion and the owning session in txn,
// which routes every other reader to the chain (or, for a pending DELETE of
// a committed image, to the still-visible current image).

// provisionalVersion marks a begin/end stamp belonging to an open
// transaction: numerically above every real commit version, so committed-
// image visibility tests fail naturally, while the row's txn field routes
// the owning session to its own writes.
const provisionalVersion = ^uint64(0)

// gcEvery is how many finalized commits pass between version-chain GC
// sweeps. Sweeps are cheap (pointer walks), but per-commit sweeping would
// dominate small transactions.
const gcEvery = 64

// rowVersion is one superseded committed image in a row's version chain,
// newest first. end is the commit version of the write that superseded it
// (0 while that write is still provisional).
type rowVersion struct {
	vals       []Value
	begin, end uint64
	prev       *rowVersion
}

// visibleTo resolves the image of r that a reader sees at readV, or nil if
// none. s is the reading session (nil for engine-level readers such as
// Snapshot): a session always sees its own provisional writes and never its
// own pending deletes.
func (r *Row) visibleTo(s *Session, readV uint64) []Value {
	if r.txn != nil && r.txn == s {
		if r.end != 0 {
			return nil // own pending delete
		}
		return r.vals // own insert/update
	}
	if r.txn == nil {
		if r.begin <= readV && (r.end == 0 || r.end > readV) {
			return r.vals
		}
	} else if r.end != 0 && r.begin <= readV {
		// Foreign pending DELETE of a committed image: the delete has not
		// committed, so the image stays visible to everyone else.
		return r.vals
	}
	for v := r.prev; v != nil; v = v.prev {
		if v.begin <= readV && (v.end == 0 || v.end > readV) {
			return v.vals
		}
	}
	return nil
}

// scanVisible collects the row images a reader at readV sees: the live heap
// resolved through version chains plus graveyard rows whose delete is not
// yet visible. Indexes are bypassed — they cover only latest images.
func (t *Table) scanVisible(s *Session, readV uint64) [][]Value {
	out := make([][]Value, 0, len(t.rows))
	for _, r := range t.rows {
		if v := r.visibleTo(s, readV); v != nil {
			out = append(out, v)
		}
	}
	for _, r := range t.graveyard {
		if v := r.visibleTo(s, readV); v != nil {
			out = append(out, v)
		}
	}
	return out
}

// relink restores a graveyard row to the live heap — the rollback path of a
// provisional DELETE. The transaction's later inserts were already undone
// (undo runs in reverse), so re-adding the old index entries cannot
// conflict.
func (t *Table) relink(r *Row) {
	if t.HasPK() {
		t.pk[t.pkKey(r.vals)] = r
	}
	for _, ix := range t.indexes {
		_ = ix.add(r)
	}
	t.rows = append(t.rows, r)
	for i, x := range t.graveyard {
		if x == r {
			t.graveyard = append(t.graveyard[:i], t.graveyard[i+1:]...)
			return
		}
	}
}

// pruneChain truncates r's version chain at the first image dead to every
// reader at or above minActive; everything older is dead too (each older
// image's end bounds the next newer one's begin). Returns the number of
// versions freed.
func pruneChain(r *Row, minActive uint64) int {
	n := 0
	at := &r.prev
	for v := r.prev; v != nil; v = v.prev {
		if v.end != 0 && v.end <= minActive {
			for d := v; d != nil; d = d.prev {
				n++
			}
			*at = nil
			break
		}
		at = &v.prev
	}
	return n
}

// gc reclaims MVCC storage invisible to every reader at or above minActive:
// chain versions behind live and buried rows, and graveyard rows whose
// committed delete no active reader can still observe.
func (t *Table) gc(minActive uint64) (versions, rows int) {
	for _, r := range t.rows {
		versions += pruneChain(r, minActive)
	}
	kept := t.graveyard[:0]
	for _, r := range t.graveyard {
		// end is never 0 in the graveyard: committed deletes carry their
		// commit version, pending ones provisionalVersion (> minActive).
		if r.txn == nil && r.end <= minActive {
			rows++
			for v := r.prev; v != nil; v = v.prev {
				versions++
			}
			continue
		}
		versions += pruneChain(r, minActive)
		kept = append(kept, r)
	}
	for i := len(kept); i < len(t.graveyard); i++ {
		t.graveyard[i] = nil // release dropped rows for Go's GC
	}
	t.graveyard = kept
	return versions, rows
}

// readViewFor returns the session's read version and whether SELECT must
// resolve visibility through version chains. The fast path — scanning the
// live heap and its indexes as-is — is exact when the reader is at the
// engine's latest commit version and every outstanding provisional write
// belongs to the reader itself; that covers the whole autocommit workload,
// so MVCC costs nothing on the hot read path.
func (e *Engine) readViewFor(s *Session) (uint64, bool) {
	readV := e.commitV
	if s.inTxn {
		readV = s.readV
	}
	if readV == e.commitV && e.provisional == s.provisional {
		return readV, false
	}
	return readV, true
}

// addStamp defers an MVCC version mark to commit time; inside a transaction
// it also counts toward the engine's provisional-write total that forces
// concurrent readers onto the chain-resolving scan.
func (s *Session) addStamp(fn func(cv uint64)) {
	s.stamps = append(s.stamps, fn)
	if s.inTxn {
		s.provisional++
		s.eng.provisional++
	}
}

// finalizeStampsLocked assigns the next commit version to every provisional
// mark this session holds and publishes it as the engine's latest. Called
// under the engine lock — right after an autocommit write executes, or at
// COMMIT for an explicit transaction.
func (s *Session) finalizeStampsLocked() {
	if len(s.stamps) > 0 {
		cv := s.eng.commitV + 1
		for _, f := range s.stamps {
			f(cv)
		}
		s.eng.commitV = cv
		s.stamps = nil
		s.eng.maybeGCLocked()
	}
	s.eng.provisional -= s.provisional
	s.provisional = 0
}

// dropTxnLocked removes s from the engine's open-transaction set.
func (e *Engine) dropTxnLocked(s *Session) {
	for i, t := range e.txns {
		if t == s {
			e.txns = append(e.txns[:i], e.txns[i+1:]...)
			return
		}
	}
}

func (e *Engine) maybeGCLocked() {
	e.sinceGC++
	if e.sinceGC < gcEvery {
		return
	}
	e.sinceGC = 0
	e.gcLocked()
}

// gcLocked prunes chain versions and graveyard rows invisible to every
// active reader. Pinned snapshot handles and open transactions hold the
// horizon down; with none, everything below the latest version goes.
func (e *Engine) gcLocked() {
	minActive := e.commitV
	for _, v := range e.pins {
		if v < minActive {
			minActive = v
		}
	}
	for _, t := range e.txns {
		if t.readV < minActive {
			minActive = t.readV
		}
	}
	e.gcRuns++
	for _, dbKey := range sortedKeys(e.dbs) {
		db := e.dbs[dbKey]
		for _, tblKey := range sortedKeys(db.tables) {
			nv, nr := db.tables[tblKey].gc(minActive)
			e.gcVersions += uint64(nv)
			e.gcRows += uint64(nr)
		}
	}
}

// CommitVersion returns the engine's current commit version.
func (e *Engine) CommitVersion() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.commitV
}

// AdvanceVersion raises the commit version to at least v. The replication
// apply path calls it with each applied binlog sequence, so replica version
// stamps track the master's commit order — including across failover, where
// the promoted slave keeps counting from the old master's sequence.
func (e *Engine) AdvanceVersion(v uint64) {
	e.mu.Lock()
	if v > e.commitV {
		e.commitV = v
	}
	e.mu.Unlock()
}

// GCStats reports version-chain garbage collection counters: completed
// sweeps, pruned chain versions, and reclaimed deleted rows.
func (e *Engine) GCStats() (runs, versions, rows uint64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.gcRuns, e.gcVersions, e.gcRows
}

// ReadVersion returns the session's snapshot read version (meaningful while
// an explicit transaction is open).
func (s *Session) ReadVersion() uint64 { return s.readV }
