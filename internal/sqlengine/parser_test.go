package sqlengine

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, sql string) Stmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestParseCreateTable(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE IF NOT EXISTS events (
		id BIGINT PRIMARY KEY,
		title VARCHAR(100) NOT NULL,
		score DOUBLE,
		created TIMESTAMP(6),
		live BOOLEAN,
		INDEX idx_title (title),
		UNIQUE uq_score (score)
	)`)
	ct, ok := stmt.(*CreateTableStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if !ct.IfNotExists || ct.Table.Name != "events" {
		t.Fatalf("header parsed wrong: %+v", ct)
	}
	if len(ct.Columns) != 5 {
		t.Fatalf("columns = %d, want 5", len(ct.Columns))
	}
	if !ct.Columns[0].PrimaryKey || ct.Columns[0].Type != KindInt {
		t.Fatalf("id column: %+v", ct.Columns[0])
	}
	if ct.Columns[1].TypeArg != 100 || !ct.Columns[1].NotNull {
		t.Fatalf("title column: %+v", ct.Columns[1])
	}
	if len(ct.Indexes) != 2 || !ct.Indexes[1].Unique {
		t.Fatalf("indexes: %+v", ct.Indexes)
	}
}

func TestParseCreateTableTablePK(t *testing.T) {
	stmt := mustParse(t, "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
	ct := stmt.(*CreateTableStmt)
	if len(ct.PrimaryKey) != 2 {
		t.Fatalf("PK = %v", ct.PrimaryKey)
	}
}

func TestParseInsertMultiRow(t *testing.T) {
	stmt := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	ins := stmt.(*InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Fatalf("parsed %+v", ins)
	}
}

func TestParseQualifiedTable(t *testing.T) {
	stmt := mustParse(t, "INSERT INTO heartbeats.heartbeat (id, ts) VALUES (?, UTC_MICROS())")
	ins := stmt.(*InsertStmt)
	if ins.Table.DB != "heartbeats" || ins.Table.Name != "heartbeat" {
		t.Fatalf("table ref: %+v", ins.Table)
	}
	if _, ok := ins.Rows[0][0].(*Param); !ok {
		t.Fatalf("first value should be param, got %T", ins.Rows[0][0])
	}
	fc, ok := ins.Rows[0][1].(*FuncCall)
	if !ok || fc.Name != "UTC_MICROS" {
		t.Fatalf("second value: %v", ins.Rows[0][1])
	}
}

func TestParseSelectFull(t *testing.T) {
	stmt := mustParse(t, `SELECT e.id, u.name AS creator, COUNT(*) cnt
		FROM events e JOIN users u ON e.creator_id = u.id
		WHERE e.score > 3.5 AND u.name LIKE 'a%'
		GROUP BY e.id ORDER BY cnt DESC, e.id LIMIT 10 OFFSET 5`)
	sel := stmt.(*SelectStmt)
	if len(sel.Exprs) != 3 || sel.Exprs[1].Alias != "creator" || sel.Exprs[2].Alias != "cnt" {
		t.Fatalf("projections: %+v", sel.Exprs)
	}
	if sel.From.Alias != "e" || len(sel.Joins) != 1 || sel.Joins[0].Table.Alias != "u" {
		t.Fatalf("from/join: %+v %+v", sel.From, sel.Joins)
	}
	if len(sel.GroupBy) != 1 || len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc {
		t.Fatalf("group/order: %+v %+v", sel.GroupBy, sel.OrderBy)
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Fatal("limit/offset missing")
	}
}

func TestParseSelectNoFrom(t *testing.T) {
	stmt := mustParse(t, "SELECT UTC_MICROS()")
	sel := stmt.(*SelectStmt)
	if sel.From != nil || len(sel.Exprs) != 1 {
		t.Fatalf("parsed %+v", sel)
	}
}

func TestParseLeftJoin(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM a LEFT JOIN b ON a.x = b.y")
	sel := stmt.(*SelectStmt)
	if len(sel.Joins) != 1 || !sel.Joins[0].Left {
		t.Fatalf("join: %+v", sel.Joins)
	}
}

func TestParseLimitCommaForm(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t LIMIT 5, 10")
	sel := stmt.(*SelectStmt)
	if sel.Limit.String() != "10" || sel.Offset.String() != "5" {
		t.Fatalf("limit=%v offset=%v", sel.Limit, sel.Offset)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	sel := stmt.(*SelectStmt)
	or, ok := sel.Where.(*Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %v", sel.Where)
	}
	and, ok := or.R.(*Binary)
	if !ok || and.Op != "AND" {
		t.Fatalf("AND should bind tighter: %v", sel.Where)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT 1 + 2 * 3")
	sel := stmt.(*SelectStmt)
	if got := sel.Exprs[0].Expr.String(); got != "(1 + (2 * 3))" {
		t.Fatalf("precedence tree: %s", got)
	}
}

func TestParseInBetweenLikeNull(t *testing.T) {
	for _, sql := range []string{
		"SELECT * FROM t WHERE a IN (1, 2, 3)",
		"SELECT * FROM t WHERE a NOT IN (1)",
		"SELECT * FROM t WHERE a BETWEEN 1 AND 10",
		"SELECT * FROM t WHERE a NOT BETWEEN 1 AND 10",
		"SELECT * FROM t WHERE a LIKE '%x%'",
		"SELECT * FROM t WHERE a NOT LIKE 'x_'",
		"SELECT * FROM t WHERE a IS NULL",
		"SELECT * FROM t WHERE a IS NOT NULL",
	} {
		mustParse(t, sql)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	up := mustParse(t, "UPDATE users SET name = 'x', age = age + 1 WHERE id = ?").(*UpdateStmt)
	if len(up.Sets) != 2 || up.Where == nil {
		t.Fatalf("update: %+v", up)
	}
	del := mustParse(t, "DELETE FROM users WHERE id = 7").(*DeleteStmt)
	if del.Where == nil {
		t.Fatalf("delete: %+v", del)
	}
}

func TestParseTxnAndUse(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN").(*BeginStmt); !ok {
		t.Fatal("BEGIN")
	}
	if _, ok := mustParse(t, "COMMIT").(*CommitStmt); !ok {
		t.Fatal("COMMIT")
	}
	if _, ok := mustParse(t, "ROLLBACK").(*RollbackStmt); !ok {
		t.Fatal("ROLLBACK")
	}
	use := mustParse(t, "USE cloudstone").(*UseStmt)
	if use.DB != "cloudstone" {
		t.Fatalf("USE: %+v", use)
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	mustParse(t, "SELECT 1;")
}

func TestParseComments(t *testing.T) {
	mustParse(t, "SELECT 1 -- trailing comment\n")
}

func TestParseQuotedIdent(t *testing.T) {
	stmt := mustParse(t, "SELECT `order` FROM `select_table`")
	sel := stmt.(*SelectStmt)
	if sel.From.Name != "select_table" {
		t.Fatalf("from: %+v", sel.From)
	}
}

func TestParseErrors(t *testing.T) {
	for _, sql := range []string{
		"",
		"SELEC 1",
		"SELECT FROM",
		"INSERT INTO t VALUES",
		"CREATE TABLE t (a BADTYPE)",
		"SELECT * FROM t WHERE",
		"SELECT 'unterminated",
		"UPDATE t SET",
		"SELECT 1 extra garbage ,",
		"DELETE t",
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestParamIndexing(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t WHERE a = ? AND b = ? AND c = ?")
	var idx []int
	walkStmt(stmt, func(e Expr) {
		if p, ok := e.(*Param); ok {
			idx = append(idx, p.Index)
		}
	})
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 1 || idx[2] != 2 {
		t.Fatalf("param indexes: %v", idx)
	}
}

// TestRenderParseRoundTrip: parse → String → parse must yield identical
// rendered text (fixed corpus covering the full dialect).
func TestRenderParseRoundTrip(t *testing.T) {
	corpus := []string{
		"SELECT 1",
		"SELECT (1 + 2)",
		"SELECT * FROM t",
		"SELECT a, b AS x FROM t WHERE ((a = 1) AND (b != 'y')) ORDER BY a DESC LIMIT 10",
		"INSERT INTO db1.t (a, b) VALUES (1, 'x''y'), (2, NULL)",
		"UPDATE t SET a = (a + 1) WHERE (b IN (1, 2))",
		"DELETE FROM t WHERE (a BETWEEN 1 AND 2)",
		"CREATE TABLE t (a BIGINT PRIMARY KEY, b VARCHAR(10) NOT NULL, INDEX idx_b(b))",
		"DROP TABLE IF EXISTS t",
		"TRUNCATE TABLE t",
		"SELECT COUNT(*) FROM t GROUP BY a HAVING (COUNT(*) > 1)",
		"SELECT a FROM t LEFT JOIN u ON (t.x = u.y)",
		"SELECT DISTINCT a FROM t",
		"SELECT IF((a > 0), 'pos', 'neg') FROM t",
		"SELECT COUNT(DISTINCT a) FROM t",
	}
	for _, sql := range corpus {
		s1 := mustParse(t, sql)
		r1 := s1.String()
		s2 := mustParse(t, r1)
		r2 := s2.String()
		if r1 != r2 {
			t.Errorf("round trip diverged:\n  in:  %s\n  r1:  %s\n  r2:  %s", sql, r1, r2)
		}
	}
}

// Property: randomly generated expressions render to SQL that re-parses to
// the same rendering (fixed point after one normalization).
func TestExprRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 300; i++ {
		e := genExpr(rng, 3)
		sql := "SELECT " + e.String() + " FROM t"
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("generated SQL does not parse: %s: %v", sql, err)
		}
		if got := stmt.String(); got != sql {
			t.Fatalf("round trip diverged:\n  in:  %s\n  out: %s", sql, got)
		}
	}
}

// genExpr builds a random expression tree that renders deterministically.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 {
		switch rng.Intn(4) {
		case 0:
			return &Literal{NewInt(int64(rng.Intn(100)))}
		case 1:
			return &Literal{NewString(string(rune('a' + rng.Intn(26))))}
		case 2:
			return &ColRef{Name: "c" + string(rune('a'+rng.Intn(4)))}
		default:
			return &Literal{Null}
		}
	}
	switch rng.Intn(7) {
	case 0:
		ops := []string{"+", "-", "*", "/", "=", "!=", "<", "<=", ">", ">=", "AND", "OR"}
		return &Binary{ops[rng.Intn(len(ops))], genExpr(rng, depth-1), genExpr(rng, depth-1)}
	case 1:
		return &Unary{"NOT", genExpr(rng, depth-1)}
	case 2:
		return &FuncCall{Name: "COALESCE", Args: []Expr{genExpr(rng, depth-1), genExpr(rng, depth-1)}}
	case 3:
		return &InExpr{X: genExpr(rng, depth-1), List: []Expr{genExpr(rng, 0), genExpr(rng, 0)}, Not: rng.Intn(2) == 0}
	case 4:
		return &BetweenExpr{X: genExpr(rng, depth-1), Lo: genExpr(rng, 0), Hi: genExpr(rng, 0), Not: rng.Intn(2) == 0}
	case 5:
		return &IsNullExpr{X: genExpr(rng, depth-1), Not: rng.Intn(2) == 0}
	default:
		return &LikeExpr{X: genExpr(rng, depth-1), Pattern: &Literal{NewString("%x_")}, Not: rng.Intn(2) == 0}
	}
}

// Property: Bind replaces every parameter and renders literal text with no
// remaining '?' placeholders.
func TestBindInterpolationProperty(t *testing.T) {
	f := func(a int64, s string) bool {
		if strings.ContainsAny(s, "'\\") || len(s) > 50 {
			return true
		}
		stmt, err := Parse("INSERT INTO t (x, y) VALUES (?, ?)")
		if err != nil {
			return false
		}
		bound, err := Bind(stmt, []Value{NewInt(a), NewString(s)})
		if err != nil {
			return false
		}
		out := bound.String()
		if strings.Contains(out, "?") {
			return false
		}
		re, err := Parse(out)
		if err != nil {
			return false
		}
		return re.String() == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBindArityErrors(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t WHERE a = ? AND b = ?")
	if _, err := Bind(stmt, []Value{NewInt(1)}); err == nil {
		t.Fatal("missing arg accepted")
	}
	if _, err := Bind(stmt, []Value{NewInt(1), NewInt(2), NewInt(3)}); err == nil {
		t.Fatal("extra arg accepted")
	}
	if _, err := Bind(stmt, []Value{NewInt(1), NewInt(2)}); err != nil {
		t.Fatalf("exact args rejected: %v", err)
	}
}
