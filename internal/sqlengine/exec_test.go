package sqlengine

import (
	"errors"
	"strings"
	"testing"
)

// newTestDB builds an engine with a small social-events schema and returns
// a session on it.
func newTestDB(t *testing.T) *Session {
	t.Helper()
	eng := NewEngine()
	if err := eng.CreateDatabase("app", false); err != nil {
		t.Fatal(err)
	}
	s := eng.NewSession("app")
	for _, ddl := range []string{
		`CREATE TABLE users (id BIGINT PRIMARY KEY, name VARCHAR(50) NOT NULL, karma INT)`,
		`CREATE TABLE events (id BIGINT PRIMARY KEY, creator_id BIGINT, title VARCHAR(100),
			score DOUBLE, created TIMESTAMP, INDEX idx_creator (creator_id))`,
	} {
		if _, err := s.Exec(ddl); err != nil {
			t.Fatalf("%s: %v", ddl, err)
		}
	}
	for i := 1; i <= 10; i++ {
		if _, err := s.Exec("INSERT INTO users (id, name, karma) VALUES (?, ?, ?)",
			NewInt(int64(i)), NewString("user"+string(rune('a'+i-1))), NewInt(int64(i*10))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 20; i++ {
		creator := (i % 10) + 1
		if _, err := s.Exec("INSERT INTO events (id, creator_id, title, score, created) VALUES (?, ?, ?, ?, ?)",
			NewInt(int64(i)), NewInt(int64(creator)), NewString("event "+string(rune('A'+i-1))),
			NewFloat(float64(i)/2), NewTime(int64(i)*1000)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSelectByPrimaryKeyUsesIndex(t *testing.T) {
	s := newTestDB(t)
	res, err := s.Exec("SELECT name FROM users WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set.Rows) != 1 || res.Set.Rows[0][0].Str() != "userc" {
		t.Fatalf("rows: %+v", res.Set.Rows)
	}
	if !res.Stats.UsedIndex || res.Stats.RowsExamined != 1 {
		t.Fatalf("stats: %+v, want index lookup examining 1 row", res.Stats)
	}
}

func TestSelectFullScanStats(t *testing.T) {
	s := newTestDB(t)
	res, err := s.Exec("SELECT * FROM users WHERE karma > 50")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.UsedIndex || res.Stats.RowsExamined != 10 {
		t.Fatalf("stats: %+v, want full scan of 10", res.Stats)
	}
	if len(res.Set.Rows) != 5 {
		t.Fatalf("returned %d rows, want 5", len(res.Set.Rows))
	}
	if res.Stats.RowsReturned != 5 {
		t.Fatalf("RowsReturned = %d", res.Stats.RowsReturned)
	}
}

func TestSecondaryIndexLookup(t *testing.T) {
	s := newTestDB(t)
	res, err := s.Exec("SELECT id FROM events WHERE creator_id = 4")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.UsedIndex {
		t.Fatalf("expected secondary index use, stats %+v", res.Stats)
	}
	if len(res.Set.Rows) != 2 { // events 3 and 13
		t.Fatalf("rows: %+v", res.Set.Rows)
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	s := newTestDB(t)
	set, err := s.Query("SELECT id FROM events ORDER BY score DESC LIMIT 3 OFFSET 1")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{19, 18, 17}
	for i, r := range set.Rows {
		if r[0].Int() != want[i] {
			t.Fatalf("rows: %v, want ids %v", set.Rows, want)
		}
	}
}

func TestOrderByAlias(t *testing.T) {
	s := newTestDB(t)
	set, err := s.Query("SELECT id, score * 2 AS dbl FROM events ORDER BY dbl DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if set.Rows[0][0].Int() != 20 {
		t.Fatalf("rows: %v", set.Rows)
	}
}

func TestAggregatesWholeTable(t *testing.T) {
	s := newTestDB(t)
	set, err := s.Query("SELECT COUNT(*), SUM(karma), AVG(karma), MIN(karma), MAX(karma) FROM users")
	if err != nil {
		t.Fatal(err)
	}
	r := set.Rows[0]
	if r[0].Int() != 10 || r[1].Int() != 550 || r[2].Float() != 55 || r[3].Int() != 10 || r[4].Int() != 100 {
		t.Fatalf("aggregates: %v", r)
	}
}

func TestAggregatesEmptyTable(t *testing.T) {
	s := newTestDB(t)
	set, err := s.Query("SELECT COUNT(*), SUM(karma) FROM users WHERE id > 1000")
	if err != nil {
		t.Fatal(err)
	}
	if set.Rows[0][0].Int() != 0 || !set.Rows[0][1].IsNull() {
		t.Fatalf("empty aggregates: %v", set.Rows[0])
	}
}

func TestGroupByHaving(t *testing.T) {
	s := newTestDB(t)
	set, err := s.Query(`SELECT creator_id, COUNT(*) AS cnt FROM events
		GROUP BY creator_id HAVING COUNT(*) = 2 ORDER BY creator_id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 10 {
		t.Fatalf("groups: %v", set.Rows)
	}
	if set.Rows[0][0].Int() != 1 || set.Rows[0][1].Int() != 2 {
		t.Fatalf("first group: %v", set.Rows[0])
	}
}

func TestCountDistinct(t *testing.T) {
	s := newTestDB(t)
	set, err := s.Query("SELECT COUNT(DISTINCT creator_id) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if set.Rows[0][0].Int() != 10 {
		t.Fatalf("distinct creators: %v", set.Rows[0])
	}
}

func TestInnerJoinWithIndex(t *testing.T) {
	s := newTestDB(t)
	res, err := s.Exec(`SELECT e.id, u.name FROM events e JOIN users u ON e.creator_id = u.id
		WHERE e.id = 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set.Rows) != 1 {
		t.Fatalf("rows: %v", res.Set.Rows)
	}
	if got := res.Set.Rows[0][1].Str(); got != "userf" { // creator of event 5 is 6
		t.Fatalf("joined name: %q", got)
	}
	// PK candidates (1) + indexed join lookup (1): no full scans.
	if res.Stats.RowsExamined > 3 {
		t.Fatalf("join examined %d rows; index join not used", res.Stats.RowsExamined)
	}
}

func TestLeftJoinEmitsNulls(t *testing.T) {
	s := newTestDB(t)
	if _, err := s.Exec("INSERT INTO users (id, name, karma) VALUES (99, 'loner', 0)"); err != nil {
		t.Fatal(err)
	}
	set, err := s.Query(`SELECT u.id, e.id FROM users u LEFT JOIN events e ON e.creator_id = u.id
		WHERE u.id = 99`)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 1 || !set.Rows[0][1].IsNull() {
		t.Fatalf("left join rows: %v", set.Rows)
	}
}

func TestUpdateWithExpressionAndStats(t *testing.T) {
	s := newTestDB(t)
	res, err := s.Exec("UPDATE users SET karma = karma + 5 WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RowsAffected != 1 || !res.Stats.UsedIndex {
		t.Fatalf("stats: %+v", res.Stats)
	}
	set, _ := s.Query("SELECT karma FROM users WHERE id = 2")
	if set.Rows[0][0].Int() != 25 {
		t.Fatalf("karma = %v", set.Rows[0][0])
	}
}

func TestUpdateMovesIndexEntries(t *testing.T) {
	s := newTestDB(t)
	if _, err := s.Exec("UPDATE events SET creator_id = 1 WHERE creator_id = 4"); err != nil {
		t.Fatal(err)
	}
	set, _ := s.Query("SELECT COUNT(*) FROM events WHERE creator_id = 1")
	if set.Rows[0][0].Int() != 4 {
		t.Fatalf("creator 1 now has %v events, want 4", set.Rows[0][0])
	}
	set, _ = s.Query("SELECT COUNT(*) FROM events WHERE creator_id = 4")
	if set.Rows[0][0].Int() != 0 {
		t.Fatalf("creator 4 still has %v events", set.Rows[0][0])
	}
}

func TestDeleteRemovesFromIndexes(t *testing.T) {
	s := newTestDB(t)
	res, err := s.Exec("DELETE FROM events WHERE creator_id = 4")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RowsAffected != 2 {
		t.Fatalf("deleted %d, want 2", res.Stats.RowsAffected)
	}
	set, _ := s.Query("SELECT COUNT(*) FROM events")
	if set.Rows[0][0].Int() != 18 {
		t.Fatalf("remaining: %v", set.Rows[0][0])
	}
}

func TestDuplicatePKRejected(t *testing.T) {
	s := newTestDB(t)
	_, err := s.Exec("INSERT INTO users (id, name) VALUES (1, 'dup')")
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v, want ErrDuplicateKey", err)
	}
}

func TestNotNullEnforced(t *testing.T) {
	s := newTestDB(t)
	if _, err := s.Exec("INSERT INTO users (id, karma) VALUES (50, 1)"); err == nil {
		t.Fatal("NULL into NOT NULL column accepted")
	}
}

func TestMultiRowInsertAtomicity(t *testing.T) {
	s := newTestDB(t)
	_, err := s.Exec("INSERT INTO users (id, name) VALUES (60, 'a'), (1, 'dup')")
	if err == nil {
		t.Fatal("expected duplicate key error")
	}
	set, _ := s.Query("SELECT COUNT(*) FROM users WHERE id = 60")
	if set.Rows[0][0].Int() != 0 {
		t.Fatal("partial insert persisted after statement failure")
	}
}

func TestTransactionCommitAndRollback(t *testing.T) {
	s := newTestDB(t)
	mustExec := func(sql string, args ...Value) {
		t.Helper()
		if _, err := s.Exec(sql, args...); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("BEGIN")
	mustExec("INSERT INTO users (id, name) VALUES (70, 'txn')")
	mustExec("UPDATE users SET karma = 0 WHERE id = 1")
	mustExec("DELETE FROM users WHERE id = 2")
	mustExec("ROLLBACK")
	set, _ := s.Query("SELECT COUNT(*) FROM users")
	if set.Rows[0][0].Int() != 10 {
		t.Fatalf("rollback left %v users, want 10", set.Rows[0][0])
	}
	set, _ = s.Query("SELECT karma FROM users WHERE id = 1")
	if set.Rows[0][0].Int() != 10 {
		t.Fatalf("rollback did not restore karma: %v", set.Rows[0][0])
	}

	mustExec("BEGIN")
	mustExec("INSERT INTO users (id, name) VALUES (71, 'kept')")
	mustExec("COMMIT")
	set, _ = s.Query("SELECT COUNT(*) FROM users WHERE id = 71")
	if set.Rows[0][0].Int() != 1 {
		t.Fatal("committed insert lost")
	}
}

func TestCommitHookAutocommit(t *testing.T) {
	s := newTestDB(t)
	var gotDB string
	var gotSQL []string
	s.eng.OnCommit = func(db string, sqls []string) {
		gotDB = db
		gotSQL = append(gotSQL, sqls...)
	}
	if _, err := s.Exec("INSERT INTO users (id, name) VALUES (?, ?)", NewInt(80), NewString("hook")); err != nil {
		t.Fatal(err)
	}
	if gotDB != "app" || len(gotSQL) != 1 {
		t.Fatalf("hook got db=%q sqls=%v", gotDB, gotSQL)
	}
	if !strings.Contains(gotSQL[0], "80") || !strings.Contains(gotSQL[0], "'hook'") {
		t.Fatalf("hook SQL not interpolated: %s", gotSQL[0])
	}
	// Reads never hit the hook.
	gotSQL = nil
	if _, err := s.Exec("SELECT * FROM users"); err != nil {
		t.Fatal(err)
	}
	if len(gotSQL) != 0 {
		t.Fatalf("read reached commit hook: %v", gotSQL)
	}
}

func TestCommitHookTransactionBuffersUntilCommit(t *testing.T) {
	s := newTestDB(t)
	var got []string
	s.eng.OnCommit = func(db string, sqls []string) { got = append(got, sqls...) }
	s.Exec("BEGIN")
	s.Exec("INSERT INTO users (id, name) VALUES (81, 'a')")
	s.Exec("UPDATE users SET karma = 1 WHERE id = 81")
	if len(got) != 0 {
		t.Fatalf("hook fired before COMMIT: %v", got)
	}
	s.Exec("COMMIT")
	if len(got) != 2 {
		t.Fatalf("hook got %v, want both statements in order", got)
	}
	if !strings.HasPrefix(got[0], "INSERT") || !strings.HasPrefix(got[1], "UPDATE") {
		t.Fatalf("commit order wrong: %v", got)
	}
}

func TestRolledBackStatementsNeverReachHook(t *testing.T) {
	s := newTestDB(t)
	var got []string
	s.eng.OnCommit = func(db string, sqls []string) { got = append(got, sqls...) }
	s.Exec("BEGIN")
	s.Exec("INSERT INTO users (id, name) VALUES (82, 'x')")
	s.Exec("ROLLBACK")
	if len(got) != 0 {
		t.Fatalf("rolled-back write reached hook: %v", got)
	}
}

func TestTimeBuiltinUsesEngineClock(t *testing.T) {
	s := newTestDB(t)
	now := int64(1234567)
	s.eng.NowMicros = func() int64 { return now }
	set, err := s.Query("SELECT UTC_MICROS()")
	if err != nil {
		t.Fatal(err)
	}
	if set.Rows[0][0].Micros() != 1234567 {
		t.Fatalf("UTC_MICROS = %v", set.Rows[0][0])
	}
	now = 999
	set, _ = s.Query("SELECT NOW()")
	if set.Rows[0][0].Micros() != 999 {
		t.Fatalf("NOW did not re-read the clock: %v", set.Rows[0][0])
	}
}

func TestScalarFunctions(t *testing.T) {
	s := newTestDB(t)
	cases := []struct {
		sql  string
		want string
	}{
		{"SELECT CONCAT('a', 'b', 1)", "ab1"},
		{"SELECT LOWER('AbC')", "abc"},
		{"SELECT UPPER('AbC')", "ABC"},
		{"SELECT LENGTH('hello')", "5"},
		{"SELECT ABS(-7)", "7"},
		{"SELECT COALESCE(NULL, NULL, 3)", "3"},
		{"SELECT IF(1 > 2, 'yes', 'no')", "no"},
		{"SELECT SUBSTR('abcdef', 2, 3)", "bcd"},
		{"SELECT MOD(10, 3)", "1"},
		{"SELECT FLOOR(2.7)", "2"},
		{"SELECT CEIL(2.1)", "3"},
		{"SELECT FLOOR(-2.5)", "-3"},
	}
	for _, tc := range cases {
		set, err := s.Query(tc.sql)
		if err != nil {
			t.Errorf("%s: %v", tc.sql, err)
			continue
		}
		if got := set.Rows[0][0].String(); got != tc.want {
			t.Errorf("%s = %q, want %q", tc.sql, got, tc.want)
		}
	}
}

func TestLikeSemantics(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false}, // length mismatch without %
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"HeLLo", "hello", true}, // case-insensitive
		{"abc", "a%c", true},
		{"abc", "a%b", false},
		{"aXbXc", "a%b%c", true},
	}
	for _, tc := range cases {
		if got := likeMatch(tc.s, tc.pat); got != tc.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tc.s, tc.pat, got, tc.want)
		}
	}
}

func TestDivisionByZeroYieldsNull(t *testing.T) {
	s := newTestDB(t)
	set, err := s.Query("SELECT 1 / 0, 5 % 0")
	if err != nil {
		t.Fatal(err)
	}
	if !set.Rows[0][0].IsNull() || !set.Rows[0][1].IsNull() {
		t.Fatalf("division by zero: %v", set.Rows[0])
	}
}

func TestNullComparisonsFilterRows(t *testing.T) {
	s := newTestDB(t)
	if _, err := s.Exec("INSERT INTO users (id, name, karma) VALUES (90, 'nil', NULL)"); err != nil {
		t.Fatal(err)
	}
	set, _ := s.Query("SELECT COUNT(*) FROM users WHERE karma > 0")
	if set.Rows[0][0].Int() != 10 { // NULL karma row excluded
		t.Fatalf("count: %v", set.Rows[0][0])
	}
	set, _ = s.Query("SELECT COUNT(*) FROM users WHERE karma IS NULL")
	if set.Rows[0][0].Int() != 1 {
		t.Fatalf("IS NULL count: %v", set.Rows[0][0])
	}
}

func TestDistinct(t *testing.T) {
	s := newTestDB(t)
	set, err := s.Query("SELECT DISTINCT creator_id FROM events ORDER BY creator_id")
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 10 {
		t.Fatalf("distinct rows: %d", len(set.Rows))
	}
}

func TestInAndBetween(t *testing.T) {
	s := newTestDB(t)
	set, _ := s.Query("SELECT COUNT(*) FROM users WHERE id IN (1, 3, 5)")
	if set.Rows[0][0].Int() != 3 {
		t.Fatalf("IN count: %v", set.Rows[0][0])
	}
	set, _ = s.Query("SELECT COUNT(*) FROM users WHERE id BETWEEN 3 AND 6")
	if set.Rows[0][0].Int() != 4 {
		t.Fatalf("BETWEEN count: %v", set.Rows[0][0])
	}
	set, _ = s.Query("SELECT COUNT(*) FROM users WHERE id NOT BETWEEN 3 AND 6")
	if set.Rows[0][0].Int() != 6 {
		t.Fatalf("NOT BETWEEN count: %v", set.Rows[0][0])
	}
}

func TestVarcharTruncation(t *testing.T) {
	eng := NewEngine()
	eng.CreateDatabase("d", false)
	s := eng.NewSession("d")
	s.Exec("CREATE TABLE t (x VARCHAR(3))")
	s.Exec("INSERT INTO t (x) VALUES ('abcdef')")
	set, _ := s.Query("SELECT x FROM t")
	if set.Rows[0][0].Str() != "abc" {
		t.Fatalf("stored: %q", set.Rows[0][0].Str())
	}
}

func TestUseSwitchesDatabase(t *testing.T) {
	eng := NewEngine()
	eng.CreateDatabase("a", false)
	eng.CreateDatabase("b", false)
	s := eng.NewSession("a")
	s.Exec("CREATE TABLE t (x INT)")
	if _, err := s.Exec("USE b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("SELECT * FROM t"); err == nil {
		t.Fatal("table from database a visible after USE b")
	}
	// Qualified access still works.
	if _, err := s.Exec("SELECT * FROM a.t"); err != nil {
		t.Fatal(err)
	}
}

func TestDropAndTruncate(t *testing.T) {
	s := newTestDB(t)
	if _, err := s.Exec("TRUNCATE TABLE events"); err != nil {
		t.Fatal(err)
	}
	set, _ := s.Query("SELECT COUNT(*) FROM events")
	if set.Rows[0][0].Int() != 0 {
		t.Fatal("truncate left rows")
	}
	if _, err := s.Exec("DROP TABLE events"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("SELECT * FROM events"); err == nil {
		t.Fatal("dropped table still queryable")
	}
	if _, err := s.Exec("DROP TABLE IF EXISTS events"); err != nil {
		t.Fatalf("DROP IF EXISTS: %v", err)
	}
}

func TestUnknownColumnAndTableErrors(t *testing.T) {
	s := newTestDB(t)
	for _, sql := range []string{
		"SELECT nope FROM users",
		"SELECT * FROM nope",
		"INSERT INTO users (nope) VALUES (1)",
		"UPDATE users SET nope = 1",
		"SELECT * FROM users WHERE nope = 1",
	} {
		if _, err := s.Exec(sql); err == nil {
			t.Errorf("%s: expected error", sql)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	s := newTestDB(t)
	if _, err := s.Exec("SELECT id FROM users u JOIN events e ON u.id = e.creator_id"); err == nil {
		t.Fatal("ambiguous column accepted")
	}
}

func TestParseCacheReuse(t *testing.T) {
	s := newTestDB(t)
	const q = "SELECT name FROM users WHERE id = ?"
	if _, err := s.Exec(q, NewInt(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.eng.parseCache.Load(q); !ok {
		t.Fatal("statement not cached")
	}
	// Second execution with different args must not be polluted by the
	// first binding.
	set, err := s.Query(q, NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if set.Rows[0][0].Str() != "userb" {
		t.Fatalf("cached statement returned stale binding: %v", set.Rows[0][0])
	}
}

// explainText runs an EXPLAIN and returns the plan column joined by newlines.
func explainText(t *testing.T, s *Session, sql string, args ...Value) string {
	t.Helper()
	set, err := s.Query(sql, args...)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	var lines []string
	for _, r := range set.Rows {
		lines = append(lines, r[0].Str())
	}
	return strings.Join(lines, "\n")
}

func TestExplainAccessPaths(t *testing.T) {
	s := newTestDB(t)
	cases := []struct {
		sql  string
		want string
	}{
		{"EXPLAIN SELECT * FROM users WHERE id = 3", "index_scan users via PRIMARY on (id = 3)"},
		{"EXPLAIN SELECT * FROM events WHERE creator_id = 4", "index_scan events via idx_creator on (creator_id = 4)"},
		{"EXPLAIN SELECT * FROM users WHERE karma > 10", "scan users"},
		{"EXPLAIN UPDATE users SET karma = 0 WHERE id = 1", "index_scan users via PRIMARY on (id = 1)"},
		{"EXPLAIN DELETE FROM events WHERE creator_id = 2", "index_scan events via idx_creator on (creator_id = 2)"},
	}
	for _, tc := range cases {
		if got := explainText(t, s, tc.sql); !strings.Contains(got, tc.want) {
			t.Errorf("%s:\n%s\nwant access %q", tc.sql, got, tc.want)
		}
	}
}

func TestExplainJoinShowsIndexedLookup(t *testing.T) {
	s := newTestDB(t)
	got := explainText(t, s, "EXPLAIN SELECT e.id FROM users u JOIN events e ON e.creator_id = u.id WHERE u.id = 1")
	if !strings.Contains(got, "index_scan u via PRIMARY on (id = 1)") {
		t.Errorf("driving access not a PRIMARY lookup:\n%s", got)
	}
	if !strings.Contains(got, "inl_join e via idx_creator") {
		t.Errorf("join not an indexed nested loop:\n%s", got)
	}
}

func TestExplainDoesNotExecute(t *testing.T) {
	s := newTestDB(t)
	if _, err := s.Exec("EXPLAIN DELETE FROM users WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	set, _ := s.Query("SELECT COUNT(*) FROM users")
	if set.Rows[0][0].Int() != 10 {
		t.Fatal("EXPLAIN DELETE removed rows")
	}
}

func TestExplainWithParams(t *testing.T) {
	s := newTestDB(t)
	got := explainText(t, s, "EXPLAIN SELECT * FROM users WHERE id = ?", NewInt(5))
	if !strings.Contains(got, "index_scan users via PRIMARY on (id = ?)") {
		t.Errorf("parameterized plan not an index lookup:\n%s", got)
	}
}

func TestShowDatabasesAndTables(t *testing.T) {
	s := newTestDB(t)
	set, err := s.Query("SHOW DATABASES")
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 1 || set.Rows[0][0].Str() != "app" {
		t.Fatalf("databases: %v", set.Rows)
	}
	set, err = s.Query("SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 2 { // users, events
		t.Fatalf("tables: %v", set.Rows)
	}
	if set.Rows[0][0].Str() != "events" || set.Rows[1][0].Str() != "users" {
		t.Fatalf("tables not sorted: %v", set.Rows)
	}
}

func TestDescribe(t *testing.T) {
	s := newTestDB(t)
	set, err := s.Query("DESCRIBE events")
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 5 {
		t.Fatalf("columns: %v", set.Rows)
	}
	// id BIGINT PRIMARY KEY
	if set.Rows[0][0].Str() != "id" || set.Rows[0][3].Str() != "PRI" || set.Rows[0][2].Str() != "NO" {
		t.Fatalf("id row: %v", set.Rows[0])
	}
	// creator_id has a secondary index
	if set.Rows[1][0].Str() != "creator_id" || set.Rows[1][3].Str() != "MUL" {
		t.Fatalf("creator_id row: %v", set.Rows[1])
	}
}

func TestShowErrors(t *testing.T) {
	s := newTestDB(t)
	if _, err := s.Exec("SHOW GRANTS"); err == nil {
		t.Fatal("SHOW GRANTS accepted")
	}
	if _, err := s.Exec("DESCRIBE nope"); err == nil {
		t.Fatal("DESCRIBE of unknown table accepted")
	}
}

func TestOrderByMultipleMixedKeys(t *testing.T) {
	s := newTestDB(t)
	set, err := s.Query("SELECT creator_id, id FROM events ORDER BY creator_id ASC, id DESC LIMIT 4")
	if err != nil {
		t.Fatal(err)
	}
	// creator 1 has events 10 and 20; creator 2 has 1 and 11.
	want := [][2]int64{{1, 20}, {1, 10}, {2, 11}, {2, 1}}
	for i, w := range want {
		if set.Rows[i][0].Int() != w[0] || set.Rows[i][1].Int() != w[1] {
			t.Fatalf("row %d = %v, want %v (full: %v)", i, set.Rows[i], w, set.Rows)
		}
	}
}

func TestGroupByExpression(t *testing.T) {
	s := newTestDB(t)
	set, err := s.Query("SELECT id % 2 AS parity, COUNT(*) AS cnt FROM events GROUP BY id % 2 ORDER BY parity")
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 2 {
		t.Fatalf("groups: %v", set.Rows)
	}
	if set.Rows[0][1].Int() != 10 || set.Rows[1][1].Int() != 10 {
		t.Fatalf("parity counts: %v", set.Rows)
	}
}

func TestAggregateArithmetic(t *testing.T) {
	s := newTestDB(t)
	set, err := s.Query("SELECT MAX(karma) - MIN(karma) FROM users")
	if err != nil {
		t.Fatal(err)
	}
	if set.Rows[0][0].Int() != 90 {
		t.Fatalf("range: %v", set.Rows[0][0])
	}
}

func TestSelectStarWithJoinProjectsAllColumns(t *testing.T) {
	s := newTestDB(t)
	set, err := s.Query("SELECT * FROM users u JOIN events e ON e.creator_id = u.id WHERE u.id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Columns) != 3+5 {
		t.Fatalf("columns: %v", set.Columns)
	}
	if len(set.Rows) != 2 {
		t.Fatalf("rows: %d", len(set.Rows))
	}
}

func TestUpdateWithoutWhereTouchesAllRows(t *testing.T) {
	s := newTestDB(t)
	res, err := s.Exec("UPDATE users SET karma = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RowsAffected != 10 {
		t.Fatalf("affected %d", res.Stats.RowsAffected)
	}
	set, _ := s.Query("SELECT SUM(karma) FROM users")
	if set.Rows[0][0].Int() != 10 {
		t.Fatalf("sum: %v", set.Rows[0][0])
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := newTestDB(t)
	snap := src.eng.Snapshot()
	if snap.NumRows() != 30 {
		t.Fatalf("snapshot rows: %d, want 30", snap.NumRows())
	}

	dst := NewEngine()
	if err := dst.Restore(snap); err != nil {
		t.Fatal(err)
	}
	ds := dst.NewSession("app")
	// Data equality.
	for _, q := range []string{
		"SELECT COUNT(*) FROM users",
		"SELECT COUNT(*) FROM events",
		"SELECT name FROM users WHERE id = 7",
		"SELECT title FROM events WHERE id = 13",
	} {
		a, err := src.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ds.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Rows[0][0].String() != b.Rows[0][0].String() {
			t.Fatalf("%s: %v vs %v", q, a.Rows[0][0], b.Rows[0][0])
		}
	}
	// Constraints survive: PK enforced, secondary index usable.
	if _, err := ds.Exec("INSERT INTO users (id, name) VALUES (1, 'dup')"); err == nil {
		t.Fatal("restored PK not enforced")
	}
	res, err := ds.Exec("SELECT id FROM events WHERE creator_id = 4")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.UsedIndex {
		t.Fatal("restored secondary index not used")
	}
	// The copy is deep: mutating the restore leaves the source untouched.
	ds.Exec("DELETE FROM users WHERE id = 7")
	a, _ := src.Query("SELECT COUNT(*) FROM users")
	if a.Rows[0][0].Int() != 10 {
		t.Fatal("restore shares storage with source")
	}
}

func TestRowFormatRendersRowImages(t *testing.T) {
	s := newTestDB(t)
	s.eng.Format = FormatRow
	s.eng.NowMicros = func() int64 { return 777 }
	var logged []string
	s.eng.OnCommit = func(db string, sqls []string) { logged = append(logged, sqls...) }

	// INSERT with a time builtin: the row image carries the literal 777,
	// not the builtin call.
	if _, err := s.Exec("INSERT INTO events (id, creator_id, title, score, created) VALUES (100, 1, 'row fmt', 1.5, UTC_MICROS())"); err != nil {
		t.Fatal(err)
	}
	if len(logged) != 1 {
		t.Fatalf("logged: %v", logged)
	}
	if strings.Contains(logged[0], "UTC_MICROS") || !strings.Contains(logged[0], "777") {
		t.Fatalf("row image not literal: %s", logged[0])
	}

	// Multi-row UPDATE becomes one image per row, keyed by PK.
	logged = nil
	if _, err := s.Exec("UPDATE users SET karma = karma + 1 WHERE id IN (1, 2)"); err != nil {
		t.Fatal(err)
	}
	if len(logged) != 2 {
		t.Fatalf("update images: %v", logged)
	}
	for _, sql := range logged {
		if !strings.Contains(sql, "WHERE id =") {
			t.Fatalf("image not PK-keyed: %s", sql)
		}
	}

	// DELETE images.
	logged = nil
	if _, err := s.Exec("DELETE FROM events WHERE creator_id = 4"); err != nil {
		t.Fatal(err)
	}
	if len(logged) != 2 {
		t.Fatalf("delete images: %v", logged)
	}

	// A write matching no rows replicates nothing in row format.
	logged = nil
	if _, err := s.Exec("UPDATE users SET karma = 0 WHERE id = 99999"); err != nil {
		t.Fatal(err)
	}
	if len(logged) != 0 {
		t.Fatalf("no-op write logged: %v", logged)
	}
}

func TestRowImagesReplayToIdenticalState(t *testing.T) {
	src := newTestDB(t)
	src.eng.Format = FormatRow
	var images []string
	src.eng.OnCommit = func(db string, sqls []string) { images = append(images, sqls...) }
	for _, sql := range []string{
		"INSERT INTO users (id, name, karma) VALUES (50, 'fresh', 5)",
		"UPDATE users SET karma = karma * 2 WHERE karma >= 50",
		"DELETE FROM users WHERE id = 3",
	} {
		if _, err := src.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	// Replay images on a second engine cloned from the same seed state.
	dst := newTestDB(t)
	for _, sql := range images {
		if _, err := dst.Exec(sql); err != nil {
			t.Fatalf("replay %s: %v", sql, err)
		}
	}
	a, _ := src.Query("SELECT id, name, karma FROM users ORDER BY id")
	b, _ := dst.Query("SELECT id, name, karma FROM users ORDER BY id")
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j].String() != b.Rows[i][j].String() {
				t.Fatalf("row %d col %d: %v vs %v", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}
