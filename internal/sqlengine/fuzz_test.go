package sqlengine

import (
	"testing"
)

// FuzzParse feeds arbitrary strings through the SQL parser. Parse must never
// panic, and any statement it accepts must satisfy the render fixed point:
// String() re-parses, and re-rendering reproduces the same text — the same
// normalization invariant the plan cache keys on. The seeds extend the
// dialect corpus with the planner PR's surface: JOIN ... ON chains, LEFT
// JOIN, GROUP BY/HAVING with grouped aggregates, and EXPLAIN [ANALYZE].
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"SELECT a, b FROM t JOIN u ON u.id = t.uid",
		"SELECT a FROM t JOIN u ON u.id = t.uid JOIN v ON v.id = u.vid WHERE t.a = 1 ORDER BY v.b DESC LIMIT 10",
		"SELECT a FROM t LEFT JOIN u ON u.id = t.uid AND u.live = 1",
		"SELECT g, COUNT(*), AVG(x) FROM t GROUP BY g",
		"SELECT g, COUNT(*) AS n FROM t GROUP BY g HAVING COUNT(*) > 2 ORDER BY n DESC",
		"SELECT COUNT(DISTINCT g) FROM t WHERE x BETWEEN 1 AND 9",
		"SELECT DISTINCT g FROM t ORDER BY g LIMIT 3 OFFSET 1",
		"EXPLAIN SELECT a FROM t JOIN u ON u.id = t.uid WHERE t.a = ?",
		"EXPLAIN ANALYZE SELECT g, COUNT(*) FROM t GROUP BY g HAVING COUNT(*) > 1",
		"SELECT t.a, u.b FROM t, u WHERE t.id = u.tid",
		"SELECT a FROM t JOIN u ON",
		"SELECT FROM GROUP BY HAVING",
		"SELECT a FROM t GROUP BY",
		"EXPLAIN EXPLAIN SELECT 1",
		"SELECT ((((1",
		"JOIN JOIN ON ON",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		st, err := Parse(sql) // must not panic on any input
		if err != nil {
			return
		}
		r1 := st.String()
		st2, err := Parse(r1)
		if err != nil {
			t.Fatalf("rendering does not re-parse:\n  in: %q\n  r1: %q\n  err: %v", sql, r1, err)
		}
		if r2 := st2.String(); r1 != r2 {
			t.Fatalf("render not a fixed point:\n  in: %q\n  r1: %q\n  r2: %q", sql, r1, r2)
		}
	})
}
