package sqlengine

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokParam // ?
	tokSymbol
)

type token struct {
	kind tokenKind
	text string // keywords uppercased, idents as written
	pos  int    // byte offset for error messages
}

// keywords recognized by the dialect. Idents matching these (case
// insensitively) lex as keywords.
var keywords = map[string]bool{
	"SELECT": true, "INSERT": true, "UPDATE": true, "DELETE": true,
	"CREATE": true, "DROP": true, "TABLE": true, "DATABASE": true,
	"INTO": true, "VALUES": true, "SET": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true, "NULL": true, "TRUE": true,
	"FALSE": true, "ORDER": true, "BY": true, "ASC": true, "DESC": true,
	"LIMIT": true, "OFFSET": true, "GROUP": true, "JOIN": true, "INNER": true,
	"LEFT": true, "ON": true, "AS": true, "IN": true, "IS": true,
	"LIKE": true, "BETWEEN": true, "PRIMARY": true, "KEY": true,
	"INDEX": true, "UNIQUE": true, "IF": true, "EXISTS": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "USE": true,
	"EXPLAIN": true, "ANALYZE": true, "SHOW": true, "DESCRIBE": true,
	"INT": true, "INTEGER": true, "BIGINT": true, "DOUBLE": true,
	"FLOAT": true, "VARCHAR": true, "TEXT": true, "BOOLEAN": true,
	"BOOL": true, "TIMESTAMP": true, "DATETIME": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"DISTINCT": true, "HAVING": true, "TRUNCATE": true,
}

// lexError is a tokenization failure.
type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string { return fmt.Sprintf("lex error at offset %d: %s", e.pos, e.msg) }

// lex tokenizes a SQL string.
func lex(sql string) ([]token, error) {
	// Sized so typical statements tokenize in one allocation — replication
	// apply lexes every shipped write, so repeated slice growth adds up.
	toks := make([]token, 0, len(sql)/5+4)
	i := 0
	n := len(sql)
	for i < n {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && sql[i+1] == '-':
			for i < n && sql[i] != '\n' {
				i++
			}
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(sql[i+1])):
			start := i
			isFloat := false
			for i < n && (isDigit(sql[i]) || sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E' ||
				((sql[i] == '+' || sql[i] == '-') && i > start && (sql[i-1] == 'e' || sql[i-1] == 'E'))) {
				if sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E' {
					isFloat = true
				}
				i++
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind, sql[start:i], start})
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if sql[i] == '\'' {
					if i+1 < n && sql[i+1] == '\'' { // escaped quote
						b.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				if sql[i] == '\\' && i+1 < n { // backslash escapes
					switch sql[i+1] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case '\'', '\\':
						b.WriteByte(sql[i+1])
					default:
						b.WriteByte(sql[i+1])
					}
					i += 2
					continue
				}
				b.WriteByte(sql[i])
				i++
			}
			if !closed {
				return nil, &lexError{start, "unterminated string literal"}
			}
			toks = append(toks, token{tokString, b.String(), start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(sql[i]) {
				i++
			}
			word := sql[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{tokKeyword, upper, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		case c == '`': // quoted identifier
			start := i
			i++
			j := strings.IndexByte(sql[i:], '`')
			if j < 0 {
				return nil, &lexError{start, "unterminated quoted identifier"}
			}
			toks = append(toks, token{tokIdent, sql[i : i+j], start})
			i += j + 1
		case c == '?':
			toks = append(toks, token{tokParam, "?", i})
			i++
		default:
			start := i
			// Multi-byte operators first.
			for _, op := range []string{"<=", ">=", "<>", "!="} {
				if strings.HasPrefix(sql[i:], op) {
					toks = append(toks, token{tokSymbol, op, start})
					i += 2
					goto next
				}
			}
			switch c {
			case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.', ';':
				toks = append(toks, token{tokSymbol, string(c), start})
				i++
			default:
				return nil, &lexError{start, fmt.Sprintf("unexpected character %q", c)}
			}
		next:
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c|0x20 >= 'a' && c|0x20 <= 'z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) || c == '$' }
