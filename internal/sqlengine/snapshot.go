package sqlengine

import (
	"fmt"
	"sort"
)

// Snapshot is a consistent deep copy of an engine's entire catalog — the
// mysqldump/xtrabackup equivalent used to provision new replicas from a
// running master instead of replaying history from the beginning.
type Snapshot struct {
	dbs []snapshotDB
}

type snapshotDB struct {
	name   string
	tables []snapshotTable
}

type snapshotTable struct {
	name    string
	columns []ColumnDef
	pkCols  []string
	indexes []IndexDef
	rows    [][]Value
}

// NumRows returns the total row count across all tables.
func (s *Snapshot) NumRows() int {
	n := 0
	for _, d := range s.dbs {
		for _, t := range d.tables {
			n += len(t.rows)
		}
	}
	return n
}

// Snapshot captures every database, table definition and row. The caller
// must ensure the engine is quiescent (on the simulation timeline any
// single instant is quiescent). Databases and tables are captured in
// sorted-name order so that two snapshots of identical catalogs are
// byte-identical — replica provisioning cost and restore order must not
// depend on Go's per-run map hashing.
func (e *Engine) Snapshot() *Snapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	snap := &Snapshot{}
	for _, dbKey := range sortedKeys(e.dbs) {
		db := e.dbs[dbKey]
		sd := snapshotDB{name: db.Name}
		for _, tblKey := range sortedKeys(db.tables) {
			tbl := db.tables[tblKey]
			st := snapshotTable{
				name:    tbl.Name,
				columns: append([]ColumnDef(nil), tbl.Columns...),
			}
			for _, pos := range tbl.pkCols {
				st.pkCols = append(st.pkCols, tbl.Columns[pos].Name)
			}
			for _, ix := range tbl.indexes {
				def := IndexDef{Name: ix.Name, Unique: ix.Unique}
				for _, pos := range ix.Cols {
					def.Columns = append(def.Columns, tbl.Columns[pos].Name)
				}
				st.indexes = append(st.indexes, def)
			}
			for _, r := range tbl.rows {
				st.rows = append(st.rows, append([]Value(nil), r.vals...))
			}
			sd.tables = append(sd.tables, st)
		}
		snap.dbs = append(snap.dbs, sd)
	}
	return snap
}

// Restore replaces the engine's entire catalog with the snapshot's
// contents. Inline primary-key flags were normalized into the PK column
// list at capture time, so they are cleared on the restored definitions.
func (e *Engine) Restore(snap *Snapshot) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	dbs := make(map[string]*Database, len(snap.dbs))
	for _, sd := range snap.dbs {
		db := &Database{Name: sd.name, tables: make(map[string]*Table, len(sd.tables))}
		for _, st := range sd.tables {
			cols := append([]ColumnDef(nil), st.columns...)
			for i := range cols {
				cols[i].PrimaryKey = false // carried via pkCols instead
			}
			tbl, err := NewTable(st.name, cols, st.pkCols, st.indexes)
			if err != nil {
				return fmt.Errorf("sqlengine: restore %s.%s: %w", sd.name, st.name, err)
			}
			for _, row := range st.rows {
				if _, err := tbl.Insert(append([]Value(nil), row...)); err != nil {
					return fmt.Errorf("sqlengine: restore %s.%s row: %w", sd.name, st.name, err)
				}
			}
			db.tables[lowerKey(st.name)] = tbl
		}
		dbs[lowerKey(sd.name)] = db
	}
	e.dbs = dbs
	return nil
}

// sortedKeys returns m's keys in sorted order, for deterministic iteration.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func lowerKey(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}
