package sqlengine

import (
	"fmt"
	"sort"
)

// Snapshot is a consistent deep copy of an engine's entire catalog — the
// mysqldump/xtrabackup equivalent used to provision new replicas from a
// running master instead of replaying history from the beginning. It is
// taken at a single commit version: row images resolve through the MVCC
// chains, so the capture is consistent without quiescing the engine.
type Snapshot struct {
	version uint64
	dbs     []snapshotDB
}

// Version returns the commit version the snapshot was captured at.
func (s *Snapshot) Version() uint64 { return s.version }

type snapshotDB struct {
	name   string
	tables []snapshotTable
}

type snapshotTable struct {
	name    string
	columns []ColumnDef
	pkCols  []string
	indexes []IndexDef
	rows    [][]Value
}

// NumRows returns the total row count across all tables.
func (s *Snapshot) NumRows() int {
	n := 0
	for _, d := range s.dbs {
		for _, t := range d.tables {
			n += len(t.rows)
		}
	}
	return n
}

// Snapshot captures every database, table definition and row as of the
// engine's current commit version — a non-quiescent versioned read: images
// resolve through the MVCC chains, so provisional writes of open
// transactions are excluded instead of requiring the engine to pause.
// Databases and tables are captured in sorted-name order so that two
// snapshots of identical catalogs are byte-identical — replica provisioning
// cost and restore order must not depend on Go's per-run map hashing.
func (e *Engine) Snapshot() *Snapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.snapshotAtLocked(e.commitV)
}

// snapshotAtLocked captures the catalog as seen at commit version v. The
// engine lock (read or write) is held by the caller.
func (e *Engine) snapshotAtLocked(v uint64) *Snapshot {
	snap := &Snapshot{version: v}
	for _, dbKey := range sortedKeys(e.dbs) {
		db := e.dbs[dbKey]
		sd := snapshotDB{name: db.Name}
		for _, tblKey := range sortedKeys(db.tables) {
			tbl := db.tables[tblKey]
			st := snapshotTable{
				name:    tbl.Name,
				columns: append([]ColumnDef(nil), tbl.Columns...),
			}
			for _, pos := range tbl.pkCols {
				st.pkCols = append(st.pkCols, tbl.Columns[pos].Name)
			}
			for _, ix := range tbl.indexes {
				def := IndexDef{Name: ix.Name, Unique: ix.Unique}
				for _, pos := range ix.Cols {
					def.Columns = append(def.Columns, tbl.Columns[pos].Name)
				}
				st.indexes = append(st.indexes, def)
			}
			for _, r := range tbl.rows {
				if img := r.visibleTo(nil, v); img != nil {
					st.rows = append(st.rows, append([]Value(nil), img...))
				}
			}
			for _, r := range tbl.graveyard {
				if img := r.visibleTo(nil, v); img != nil {
					st.rows = append(st.rows, append([]Value(nil), img...))
				}
			}
			sd.tables = append(sd.tables, st)
		}
		snap.dbs = append(snap.dbs, sd)
	}
	return snap
}

// SnapshotHandle pins a commit version: chain GC keeps every row image that
// version can see until Close releases the pin. Materialize may run any
// number of times, arbitrarily later — even after further commits. A handle
// that is never Closed pins chain memory for the engine's lifetime;
// cloudrepl-lint's closecheck flags dropped handles.
type SnapshotHandle struct {
	eng    *Engine
	v      uint64
	closed bool
}

// Pin captures the current commit version and protects its images from
// chain GC until Close — the provisioning-friendly form of Snapshot: pin at
// the binlog position you record, copy rows later, then release.
func (e *Engine) Pin() *SnapshotHandle {
	e.mu.Lock()
	h := &SnapshotHandle{eng: e, v: e.commitV}
	e.pins = append(e.pins, h.v)
	e.mu.Unlock()
	return h
}

// Version returns the pinned commit version.
func (h *SnapshotHandle) Version() uint64 { return h.v }

// Materialize deep-copies the catalog as of the pinned version.
func (h *SnapshotHandle) Materialize() *Snapshot {
	h.eng.mu.RLock()
	defer h.eng.mu.RUnlock()
	return h.eng.snapshotAtLocked(h.v)
}

// Close releases the pin; closing twice is a no-op.
func (h *SnapshotHandle) Close() {
	if h.closed {
		return
	}
	h.closed = true
	e := h.eng
	e.mu.Lock()
	for i, v := range e.pins {
		if v == h.v {
			e.pins = append(e.pins[:i], e.pins[i+1:]...)
			break
		}
	}
	e.mu.Unlock()
}

// Restore replaces the engine's entire catalog with the snapshot's
// contents. Inline primary-key flags were normalized into the PK column
// list at capture time, so they are cleared on the restored definitions.
func (e *Engine) Restore(snap *Snapshot) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	dbs := make(map[string]*Database, len(snap.dbs))
	for _, sd := range snap.dbs {
		db := &Database{Name: sd.name, tables: make(map[string]*Table, len(sd.tables))}
		for _, st := range sd.tables {
			cols := append([]ColumnDef(nil), st.columns...)
			for i := range cols {
				cols[i].PrimaryKey = false // carried via pkCols instead
			}
			tbl, err := NewTable(st.name, cols, st.pkCols, st.indexes)
			if err != nil {
				return fmt.Errorf("sqlengine: restore %s.%s: %w", sd.name, st.name, err)
			}
			for _, row := range st.rows {
				if _, err := tbl.Insert(append([]Value(nil), row...)); err != nil {
					return fmt.Errorf("sqlengine: restore %s.%s row: %w", sd.name, st.name, err)
				}
			}
			db.tables[lowerKey(st.name)] = tbl
		}
		dbs[lowerKey(sd.name)] = db
	}
	e.dbs = dbs
	if snap.version > e.commitV {
		e.commitV = snap.version
	}
	// The whole catalog was just replaced: cached plans hold pre-restore
	// *Table pointers and must never be reused.
	e.bumpStatsEpochLocked()
	return nil
}

// sortedKeys returns m's keys in sorted order, for deterministic iteration.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func lowerKey(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}
