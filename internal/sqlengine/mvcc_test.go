package sqlengine

import (
	"fmt"
	"testing"
)

// mvccDB builds an engine with one small table and returns the engine and an
// autocommit session on it.
func mvccDB(t *testing.T) (*Engine, *Session) {
	t.Helper()
	eng := NewEngine()
	if err := eng.CreateDatabase("app", false); err != nil {
		t.Fatal(err)
	}
	s := eng.NewSession("app")
	if _, err := s.Exec(`CREATE TABLE kv (id BIGINT PRIMARY KEY, v BIGINT, INDEX idx_v (v))`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := s.Exec("INSERT INTO kv (id, v) VALUES (?, ?)", NewInt(int64(i)), NewInt(int64(i*100))); err != nil {
			t.Fatal(err)
		}
	}
	return eng, s
}

func readV(t *testing.T, s *Session, id int64) (int64, bool) {
	t.Helper()
	res, err := s.Exec("SELECT v FROM kv WHERE id = ?", NewInt(id))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set.Rows) == 0 {
		return 0, false
	}
	return res.Set.Rows[0][0].Int(), true
}

func countRows(t *testing.T, s *Session) int64 {
	t.Helper()
	res, err := s.Exec("SELECT COUNT(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	return res.Set.Rows[0][0].Int()
}

// A transaction's reads all run against its BEGIN-time version: concurrent
// committed writes stay invisible until the transaction ends.
func TestSnapshotIsolationReads(t *testing.T) {
	eng, writer := mvccDB(t)
	reader := eng.NewSession("app")
	if _, err := reader.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if v, _ := readV(t, reader, 1); v != 100 {
		t.Fatalf("pre-write read = %d, want 100", v)
	}
	if _, err := writer.Exec("UPDATE kv SET v = 999 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Exec("INSERT INTO kv (id, v) VALUES (6, 600)"); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Exec("DELETE FROM kv WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	// The open transaction still sees the BEGIN-time state.
	if v, _ := readV(t, reader, 1); v != 100 {
		t.Errorf("post-update snapshot read = %d, want 100", v)
	}
	if _, ok := readV(t, reader, 6); ok {
		t.Error("snapshot reader sees row inserted after BEGIN")
	}
	if v, ok := readV(t, reader, 2); !ok || v != 200 {
		t.Errorf("snapshot reader lost deleted row: v=%d ok=%v", v, ok)
	}
	if n := countRows(t, reader); n != 5 {
		t.Errorf("snapshot COUNT(*) = %d, want 5", n)
	}
	if _, err := reader.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	// After the transaction ends the session reads latest state.
	if v, _ := readV(t, reader, 1); v != 999 {
		t.Errorf("post-commit read = %d, want 999", v)
	}
	if _, ok := readV(t, reader, 2); ok {
		t.Error("deleted row still visible after transaction end")
	}
	if n := countRows(t, reader); n != 5 {
		t.Errorf("latest COUNT(*) = %d, want 5 (one insert, one delete)", n)
	}
}

// Provisional writes of an open transaction are invisible to everyone else —
// and a provisional DELETE leaves the committed image visible to others while
// hiding it from the deleting session.
func TestProvisionalWriteVisibility(t *testing.T) {
	eng, other := mvccDB(t)
	txn := eng.NewSession("app")
	if _, err := txn.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Exec("INSERT INTO kv (id, v) VALUES (10, 1000)"); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Exec("UPDATE kv SET v = 111 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Exec("DELETE FROM kv WHERE id = 3"); err != nil {
		t.Fatal(err)
	}
	// The writer sees its own effects.
	if v, _ := readV(t, txn, 10); v != 1000 {
		t.Errorf("own insert invisible: %d", v)
	}
	if v, _ := readV(t, txn, 1); v != 111 {
		t.Errorf("own update invisible: %d", v)
	}
	if _, ok := readV(t, txn, 3); ok {
		t.Error("own pending delete still visible")
	}
	// Everyone else sees the committed state.
	if _, ok := readV(t, other, 10); ok {
		t.Error("foreign pending insert visible")
	}
	if v, _ := readV(t, other, 1); v != 100 {
		t.Errorf("foreign pending update visible: %d", v)
	}
	if v, ok := readV(t, other, 3); !ok || v != 300 {
		t.Errorf("pending delete hid committed image from others: v=%d ok=%v", v, ok)
	}
	if _, err := txn.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if v, _ := readV(t, other, 10); v != 1000 {
		t.Errorf("committed insert invisible: %d", v)
	}
	if _, ok := readV(t, other, 3); ok {
		t.Error("committed delete not applied")
	}
}

// Rollback restores exactly the pre-transaction state, including indexes and
// the primary key, with no version-counter advance.
func TestRollbackRestoresState(t *testing.T) {
	eng, other := mvccDB(t)
	before := eng.CommitVersion()
	txn := eng.NewSession("app")
	for _, sql := range []string{
		"BEGIN",
		"UPDATE kv SET v = 1 WHERE id = 1",
		"DELETE FROM kv WHERE id = 2",
		"INSERT INTO kv (id, v) VALUES (7, 700)",
		"UPDATE kv SET v = 2 WHERE id = 7",
		"ROLLBACK",
	} {
		if _, err := txn.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	if got := eng.CommitVersion(); got != before {
		t.Errorf("rollback advanced commit version %d -> %d", before, got)
	}
	for _, s := range []*Session{txn, other} {
		if v, _ := readV(t, s, 1); v != 100 {
			t.Errorf("id 1 = %d after rollback, want 100", v)
		}
		if v, ok := readV(t, s, 2); !ok || v != 200 {
			t.Errorf("id 2 gone after rollback: v=%d ok=%v", v, ok)
		}
		if _, ok := readV(t, s, 7); ok {
			t.Error("rolled-back insert still visible")
		}
	}
	// The indexed path must agree with the restored heap.
	res, err := other.Exec("SELECT id FROM kv WHERE v = 200")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set.Rows) != 1 || res.Set.Rows[0][0].Int() != 2 {
		t.Fatalf("index lookup after rollback: %+v", res.Set.Rows)
	}
	// The relinked row is a first-class heap row again: updatable, deletable.
	if _, err := other.Exec("UPDATE kv SET v = 201 WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	if v, _ := readV(t, other, 2); v != 201 {
		t.Errorf("update of relinked row: %d", v)
	}
}

// Snapshot is a versioned read: provisional writes of open transactions are
// excluded without quiescing, and Restore adopts the snapshot's version.
func TestSnapshotExcludesProvisionalWrites(t *testing.T) {
	eng, _ := mvccDB(t)
	txn := eng.NewSession("app")
	if _, err := txn.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Exec("INSERT INTO kv (id, v) VALUES (99, 9)"); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Exec("DELETE FROM kv WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if snap.NumRows() != 5 {
		t.Fatalf("snapshot rows = %d, want 5 (provisional insert/delete excluded)", snap.NumRows())
	}
	if snap.Version() != eng.CommitVersion() {
		t.Fatalf("snapshot version %d != commit version %d", snap.Version(), eng.CommitVersion())
	}
	restored := NewEngine()
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if restored.CommitVersion() != snap.Version() {
		t.Fatalf("restore left commit version %d, want %d", restored.CommitVersion(), snap.Version())
	}
	rs := restored.NewSession("app")
	if v, ok := readV(t, rs, 1); !ok || v != 100 {
		t.Errorf("restored engine: id 1 v=%d ok=%v", v, ok)
	}
	if _, err := txn.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
}

// A pinned handle holds the GC horizon: images its version can see survive
// any number of later commits, and Materialize reproduces the pin-time state.
func TestPinBlocksGCAndMaterializes(t *testing.T) {
	eng, s := mvccDB(t)
	h := eng.Pin()
	pinRows := 5
	// Churn well past the GC interval: overwrite one row and delete/reinsert
	// another, hundreds of times.
	for i := 0; i < 4*gcEvery; i++ {
		if _, err := s.Exec("UPDATE kv SET v = ? WHERE id = 1", NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Exec("DELETE FROM kv WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	snap := h.Materialize()
	if snap.NumRows() != pinRows {
		t.Fatalf("materialized rows = %d, want %d", snap.NumRows(), pinRows)
	}
	if snap.Version() != h.Version() {
		t.Fatalf("materialized version %d != pin %d", snap.Version(), h.Version())
	}
	re := NewEngine()
	if err := re.Restore(snap); err != nil {
		t.Fatal(err)
	}
	rs := re.NewSession("app")
	if v, _ := readV(t, rs, 1); v != 100 {
		t.Errorf("pin-time image of id 1 = %d, want 100", v)
	}
	if v, ok := readV(t, rs, 2); !ok || v != 200 {
		t.Errorf("pin-time image of id 2: v=%d ok=%v", v, ok)
	}
	h.Close()
	h.Close() // idempotent
	// With the pin gone, churn past another GC interval and check the chains
	// actually shrank: prune counters move and the long id-1 chain is cut.
	for i := 0; i < 2*gcEvery; i++ {
		if _, err := s.Exec("UPDATE kv SET v = ? WHERE id = 1", NewInt(int64(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	runs, versions, rows := eng.GCStats()
	if runs == 0 || versions == 0 {
		t.Fatalf("GC never reclaimed after unpin: runs=%d versions=%d", runs, versions)
	}
	if rows == 0 {
		t.Fatalf("deleted row never reclaimed from graveyard: rows=%d", rows)
	}
}

// Without pins or open transactions, chain memory stays bounded: steady
// update churn reclaims superseded versions instead of accreting them.
func TestChainGCBoundsMemory(t *testing.T) {
	eng, s := mvccDB(t)
	for i := 0; i < 10*gcEvery; i++ {
		if _, err := s.Exec("UPDATE kv SET v = ? WHERE id = 3", NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	_, versions, _ := eng.GCStats()
	// 10*gcEvery superseded images were produced; nearly all must be pruned.
	if versions < uint64(8*gcEvery) {
		t.Fatalf("pruned only %d versions out of ~%d produced", versions, 10*gcEvery)
	}
}

// AdvanceVersion is a monotone max — the replication apply path may deliver
// sequence numbers out of order across appliers.
func TestAdvanceVersionMonotone(t *testing.T) {
	eng, _ := mvccDB(t)
	base := eng.CommitVersion()
	eng.AdvanceVersion(base + 10)
	if got := eng.CommitVersion(); got != base+10 {
		t.Fatalf("advance to %d got %d", base+10, got)
	}
	eng.AdvanceVersion(base + 5)
	if got := eng.CommitVersion(); got != base+10 {
		t.Fatalf("AdvanceVersion went backwards: %d", got)
	}
}

// Version stamping is deterministic: the same statement sequence yields the
// same commit versions, so replicas stamping via AdvanceVersion(seq) agree
// with masters stamping via commit.
func TestVersionStampsDeterministic(t *testing.T) {
	run := func() []uint64 {
		eng := NewEngine()
		if err := eng.CreateDatabase("app", false); err != nil {
			t.Fatal(err)
		}
		s := eng.NewSession("app")
		var vs []uint64
		mustExec := func(sql string) {
			if _, err := s.Exec(sql); err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			vs = append(vs, eng.CommitVersion())
		}
		mustExec(`CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)`)
		for i := 0; i < 20; i++ {
			mustExec(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", i, i))
		}
		mustExec("BEGIN")
		mustExec("UPDATE t SET v = 99 WHERE id < 10")
		mustExec("DELETE FROM t WHERE id = 15")
		mustExec("COMMIT")
		return vs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("stamp streams differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stamp %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}
