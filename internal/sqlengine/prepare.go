package sqlengine

import "fmt"

// Statement is a prepared statement: the SQL text parsed and normalized
// once, shareable across sessions and argument vectors. SELECT statements
// plan lazily through the engine's plan cache — one plan per (database,
// normalized SQL, planner mode) until a statistics epoch change retires it —
// so preparing is cheap and repeated Runs do no per-call planning work.
//
// The handle carries no resources beyond cache entries, but dropping it
// unused almost always indicates a lost result: cloudrepl-lint's closecheck
// flags Prepare results that are never consumed.
type Statement struct {
	eng     *Engine
	sql     string
	norm    string
	stmt    Stmt
	nparams int
}

// Prepare parses sql (through the parse cache) and returns a prepared
// statement. Any statement kind can be prepared; only SELECTs are planned.
func (e *Engine) Prepare(sql string) (*Statement, error) {
	ent, err := e.parseEntry(sql)
	if err != nil {
		return nil, err
	}
	return &Statement{
		eng:     e,
		sql:     sql,
		norm:    ent.norm,
		stmt:    ent.stmt,
		nparams: ent.nparams,
	}, nil
}

// SQL returns the original statement text.
func (st *Statement) SQL() string { return st.sql }

// Norm returns the normalized (canonical) rendering that keys the plan
// cache: textual variants with identical structure share one plan.
func (st *Statement) Norm() string { return st.norm }

// NumParams returns the number of ? placeholders the statement requires.
func (st *Statement) NumParams() int { return st.nparams }

// Run executes the statement on a session with the given arguments. SELECTs
// resolve their plan from the engine's plan cache (building it on first use
// or after a statistics epoch change); writes bind args into the statement
// text for the binlog, exactly as Session.Exec always has.
func (st *Statement) Run(s *Session, args ...Value) (*Result, error) {
	return s.ExecStmt(st.stmt, args...)
}

// Query is Run for statements expected to return rows.
func (st *Statement) Query(s *Session, args ...Value) (*ResultSet, error) {
	res, err := st.Run(s, args...)
	if err != nil {
		return nil, err
	}
	if res.Set == nil {
		return nil, fmt.Errorf("sqlengine: statement returned no result set")
	}
	return res.Set, nil
}

// Plan returns the execution plan the engine will use for this statement on
// s's current database, building and caching it if needed. Only SELECT
// statements have plans. The returned Plan is immutable; iterate its
// rendering via Lines/Explain. The plan reflects statistics at call time —
// a later Run may plan afresh if the statistics epoch has advanced.
func (st *Statement) Plan(s *Session) (*Plan, error) {
	sel, ok := st.stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqlengine: cannot plan %T", st.stmt)
	}
	e := st.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.planSelectLocked(s, sel)
}

// ExplainString renders the plan tree for this statement (SELECT only) in
// the stable EXPLAIN format.
func (st *Statement) ExplainString(s *Session) (string, error) {
	p, err := st.Plan(s)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}
