package sqlengine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func newKVTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable("kv",
		[]ColumnDef{
			{Name: "id", Type: KindInt, PrimaryKey: true, NotNull: true},
			{Name: "grp", Type: KindInt},
			{Name: "val", Type: KindString},
		},
		nil,
		[]IndexDef{{Name: "idx_grp", Columns: []string{"grp"}}})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestTableInsertLookup(t *testing.T) {
	tbl := newKVTable(t)
	for i := 0; i < 10; i++ {
		if _, err := tbl.Insert([]Value{NewInt(int64(i)), NewInt(int64(i % 3)), NewString("v")}); err != nil {
			t.Fatal(err)
		}
	}
	r, ok := tbl.LookupPK([]Value{NewInt(7)})
	if !ok || r.Values()[0].Int() != 7 {
		t.Fatal("PK lookup failed")
	}
	pos, _ := tbl.ColPos("grp")
	rows, usable := tbl.lookupEq(pos, NewInt(1))
	if !usable || len(rows) != 4 { // 1, 4, 7 — wait: i%3==1 for 1,4,7 → 3 rows... recompute below
		// ids 0..9 with grp i%3==1: 1,4,7 → 3 rows; plus none others.
		if len(rows) != 3 {
			t.Fatalf("index lookup found %d rows", len(rows))
		}
	}
}

func TestTableUniqueIndexViolation(t *testing.T) {
	tbl, err := NewTable("u",
		[]ColumnDef{
			{Name: "id", Type: KindInt, PrimaryKey: true, NotNull: true},
			{Name: "email", Type: KindString},
		},
		nil,
		[]IndexDef{{Name: "uq_email", Columns: []string{"email"}, Unique: true}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert([]Value{NewInt(1), NewString("a@x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert([]Value{NewInt(2), NewString("a@x")}); err == nil {
		t.Fatal("unique violation accepted")
	}
	// Failed insert must leave no trace.
	if tbl.NumRows() != 1 {
		t.Fatalf("rows = %d after failed insert", tbl.NumRows())
	}
	if _, ok := tbl.LookupPK([]Value{NewInt(2)}); ok {
		t.Fatal("phantom PK entry after failed insert")
	}
}

func TestTableUpdatePKMove(t *testing.T) {
	tbl := newKVTable(t)
	r, _ := tbl.Insert([]Value{NewInt(1), NewInt(0), NewString("a")})
	tbl.Insert([]Value{NewInt(2), NewInt(0), NewString("b")})
	// Moving PK 1 onto existing 2 must fail cleanly.
	if err := tbl.Update(r, []Value{NewInt(2), NewInt(0), NewString("a")}); err == nil {
		t.Fatal("PK collision on update accepted")
	}
	if got, ok := tbl.LookupPK([]Value{NewInt(1)}); !ok || got != r {
		t.Fatal("failed update corrupted PK index")
	}
	// Moving to a fresh key works and old key disappears.
	if err := tbl.Update(r, []Value{NewInt(9), NewInt(0), NewString("a")}); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.LookupPK([]Value{NewInt(1)}); ok {
		t.Fatal("old PK entry survives update")
	}
	if _, ok := tbl.LookupPK([]Value{NewInt(9)}); !ok {
		t.Fatal("new PK entry missing")
	}
}

// checkConsistent verifies the structural invariants between heap, PK map
// and secondary indexes.
func checkConsistent(tbl *Table) error {
	if len(tbl.pk) != len(tbl.rows) {
		return fmt.Errorf("pk map has %d entries, heap has %d", len(tbl.pk), len(tbl.rows))
	}
	for _, r := range tbl.rows {
		if got, ok := tbl.pk[tbl.pkKey(r.vals)]; !ok || got != r {
			return fmt.Errorf("heap row missing from pk map")
		}
	}
	for _, ix := range tbl.indexes {
		n := 0
		for k, bucket := range ix.buckets {
			for _, r := range bucket {
				if ix.keyOf(r.vals) != k {
					return fmt.Errorf("index %s entry under stale key", ix.Name)
				}
				n++
			}
		}
		if n != len(tbl.rows) {
			return fmt.Errorf("index %s has %d entries, heap has %d", ix.Name, n, len(tbl.rows))
		}
	}
	return nil
}

// Property: under any random sequence of inserts, updates and deletes, the
// heap, primary-key map and secondary indexes stay mutually consistent.
func TestTableIndexConsistencyProperty(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		if len(opsRaw) > 200 {
			opsRaw = opsRaw[:200]
		}
		rng := rand.New(rand.NewSource(seed))
		tbl, err := NewTable("kv",
			[]ColumnDef{
				{Name: "id", Type: KindInt, PrimaryKey: true, NotNull: true},
				{Name: "grp", Type: KindInt},
				{Name: "val", Type: KindString},
			},
			nil,
			[]IndexDef{{Name: "idx_grp", Columns: []string{"grp"}}})
		if err != nil {
			return false
		}
		for _, op := range opsRaw {
			switch op % 3 {
			case 0: // insert
				id := int64(rng.Intn(50))
				_, _ = tbl.Insert([]Value{NewInt(id), NewInt(int64(rng.Intn(5))), NewString("v")})
			case 1: // update random row
				if tbl.NumRows() == 0 {
					continue
				}
				r := tbl.rows[rng.Intn(len(tbl.rows))]
				nv := append([]Value(nil), r.vals...)
				nv[1] = NewInt(int64(rng.Intn(5)))
				if op%2 == 0 {
					nv[0] = NewInt(int64(rng.Intn(50))) // may collide; must fail cleanly
				}
				_ = tbl.Update(r, nv)
			case 2: // delete random row
				if tbl.NumRows() == 0 {
					continue
				}
				tbl.Delete(tbl.rows[rng.Intn(len(tbl.rows))])
			}
			if err := checkConsistent(tbl); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCoerceKinds(t *testing.T) {
	intCol := ColumnDef{Name: "i", Type: KindInt}
	if v, err := coerce(NewString("42"), intCol); err != nil || v.Int() != 42 {
		t.Fatalf("string→int: %v %v", v, err)
	}
	if _, err := coerce(NewString("xyz"), intCol); err == nil {
		t.Fatal("garbage string→int accepted")
	}
	if v, err := coerce(NewFloat(3.9), intCol); err != nil || v.Int() != 3 {
		t.Fatalf("float→int: %v %v", v, err)
	}
	boolCol := ColumnDef{Name: "b", Type: KindBool}
	if v, _ := coerce(NewInt(2), boolCol); !v.Bool() {
		t.Fatal("2→bool should be true")
	}
	timeCol := ColumnDef{Name: "t", Type: KindTime}
	if v, err := coerce(NewInt(123), timeCol); err != nil || v.Kind() != KindTime || v.Micros() != 123 {
		t.Fatalf("int→time: %v %v", v, err)
	}
	if _, err := coerce(NewString("notatime"), timeCol); err == nil {
		t.Fatal("string→time accepted")
	}
}
