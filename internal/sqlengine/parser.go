package sqlengine

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError describes a syntax error with its byte offset.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("parse error at offset %d: %s", e.Pos, e.Msg)
}

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(sql string) (Stmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks   []token
	pos    int
	params int
}

func (p *parser) peek() token  { return p.toks[p.pos] }
func (p *parser) peek2() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

// acceptKw consumes the keyword if present.
func (p *parser) acceptKw(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSym(s string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q, got %q", s, p.peek().text)
	}
	return nil
}

// ident accepts an identifier (or a non-reserved keyword used as a name).
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.next()
		return t.text, nil
	}
	// Permit a few keywords commonly used as identifiers.
	if t.kind == tokKeyword {
		switch t.text {
		case "KEY", "INDEX", "COUNT", "MIN", "MAX", "SUM", "AVG", "TIMESTAMP", "DATABASE", "TEXT":
			p.next()
			return strings.ToLower(t.text), nil
		}
	}
	return "", p.errf("expected identifier, got %q", t.text)
}

func (p *parser) statement() (Stmt, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errf("expected statement keyword, got %q", t.text)
	}
	switch t.text {
	case "EXPLAIN":
		p.next()
		analyze := false
		if a := p.peek(); a.kind == tokKeyword && a.text == "ANALYZE" {
			p.next()
			analyze = true
		}
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Inner: inner, Analyze: analyze}, nil
	case "SHOW":
		p.next()
		w := p.peek()
		if w.kind == tokIdent && (strings.EqualFold(w.text, "databases") || strings.EqualFold(w.text, "tables")) {
			p.next()
			return &ShowStmt{What: strings.ToUpper(w.text)}, nil
		}
		return nil, p.errf("expected DATABASES or TABLES after SHOW, got %q", w.text)
	case "DESCRIBE":
		p.next()
		ref, err := p.tableRef(false)
		if err != nil {
			return nil, err
		}
		return &DescribeStmt{Table: ref}, nil
	case "SELECT":
		return p.selectStmt()
	case "INSERT":
		return p.insertStmt()
	case "UPDATE":
		return p.updateStmt()
	case "DELETE":
		return p.deleteStmt()
	case "CREATE":
		return p.createStmt()
	case "DROP":
		return p.dropStmt()
	case "TRUNCATE":
		p.next()
		p.acceptKw("TABLE")
		ref, err := p.tableRef(false)
		if err != nil {
			return nil, err
		}
		return &TruncateStmt{Table: ref}, nil
	case "BEGIN":
		p.next()
		return &BeginStmt{}, nil
	case "COMMIT":
		p.next()
		return &CommitStmt{}, nil
	case "ROLLBACK":
		p.next()
		return &RollbackStmt{}, nil
	case "USE":
		p.next()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &UseStmt{DB: name}, nil
	default:
		return nil, p.errf("unsupported statement %q", t.text)
	}
}

// tableRef parses [db.]table [AS alias].
func (p *parser) tableRef(allowAlias bool) (TableRef, error) {
	var ref TableRef
	name, err := p.ident()
	if err != nil {
		return ref, err
	}
	ref.Name = name
	if p.acceptSym(".") {
		ref.DB = ref.Name
		if ref.Name, err = p.ident(); err != nil {
			return ref, err
		}
	}
	if allowAlias {
		if p.acceptKw("AS") {
			if ref.Alias, err = p.ident(); err != nil {
				return ref, err
			}
		} else if p.peek().kind == tokIdent {
			ref.Alias = p.next().text
		}
	}
	return ref, nil
}

func (p *parser) createStmt() (Stmt, error) {
	p.next() // CREATE
	if p.acceptKw("DATABASE") {
		ifne, err := p.ifNotExists()
		if err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &CreateDatabaseStmt{Name: name, IfNotExists: ifne}, nil
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	ifne, err := p.ifNotExists()
	if err != nil {
		return nil, err
	}
	ref, err := p.tableRef(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Table: ref, IfNotExists: ifne}
	for {
		t := p.peek()
		switch {
		case t.kind == tokKeyword && t.text == "PRIMARY":
			p.next()
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parenIdentList()
			if err != nil {
				return nil, err
			}
			stmt.PrimaryKey = cols
		case t.kind == tokKeyword && (t.text == "INDEX" || t.text == "UNIQUE"):
			unique := t.text == "UNIQUE"
			p.next()
			if unique {
				p.acceptKw("INDEX")
			}
			ixName := ""
			if p.peek().kind == tokIdent {
				ixName = p.next().text
			}
			cols, err := p.parenIdentList()
			if err != nil {
				return nil, err
			}
			if ixName == "" {
				ixName = "idx_" + strings.Join(cols, "_")
			}
			stmt.Indexes = append(stmt.Indexes, IndexDef{Name: ixName, Columns: cols, Unique: unique})
		default:
			col, err := p.columnDef()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
		}
		if p.acceptSym(",") {
			continue
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		break
	}
	return stmt, nil
}

func (p *parser) ifNotExists() (bool, error) {
	if p.acceptKw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return false, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

func (p *parser) parenIdentList() ([]string, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var out []string
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, name)
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) columnDef() (ColumnDef, error) {
	var col ColumnDef
	name, err := p.ident()
	if err != nil {
		return col, err
	}
	col.Name = name
	t := p.next()
	if t.kind != tokKeyword {
		return col, &ParseError{t.pos, fmt.Sprintf("expected column type, got %q", t.text)}
	}
	switch t.text {
	case "INT", "INTEGER", "BIGINT":
		col.Type = KindInt
	case "DOUBLE", "FLOAT":
		col.Type = KindFloat
	case "VARCHAR", "TEXT":
		col.Type = KindString
	case "BOOLEAN", "BOOL":
		col.Type = KindBool
	case "TIMESTAMP", "DATETIME":
		col.Type = KindTime
	default:
		return col, &ParseError{t.pos, fmt.Sprintf("unsupported column type %q", t.text)}
	}
	if p.acceptSym("(") {
		sz := p.next()
		if sz.kind != tokInt {
			return col, &ParseError{sz.pos, "expected type length"}
		}
		n, _ := strconv.Atoi(sz.text)
		col.TypeArg = n
		if err := p.expectSym(")"); err != nil {
			return col, err
		}
	}
	for {
		switch {
		case p.acceptKw("NOT"):
			if err := p.expectKw("NULL"); err != nil {
				return col, err
			}
			col.NotNull = true
		case p.acceptKw("NULL"):
			// accepted, default
		case p.acceptKw("PRIMARY"):
			if err := p.expectKw("KEY"); err != nil {
				return col, err
			}
			col.PrimaryKey = true
			col.NotNull = true
		default:
			return col, nil
		}
	}
}

func (p *parser) dropStmt() (Stmt, error) {
	p.next() // DROP
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	ifExists := false
	if p.acceptKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	ref, err := p.tableRef(false)
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Table: ref, IfExists: ifExists}, nil
}

func (p *parser) insertStmt() (Stmt, error) {
	p.next() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	ref, err := p.tableRef(false)
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: ref}
	if p.peek().kind == tokSymbol && p.peek().text == "(" {
		cols, err := p.parenIdentList()
		if err != nil {
			return nil, err
		}
		stmt.Columns = cols
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptSym(",") {
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if p.acceptSym(",") {
			continue
		}
		break
	}
	return stmt, nil
}

func (p *parser) updateStmt() (Stmt, error) {
	p.next() // UPDATE
	ref, err := p.tableRef(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: ref}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		val, err := p.expression()
		if err != nil {
			return nil, err
		}
		stmt.Sets = append(stmt.Sets, Assignment{col, val})
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if p.acceptKw("WHERE") {
		if stmt.Where, err = p.expression(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *parser) deleteStmt() (Stmt, error) {
	p.next() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	ref, err := p.tableRef(false)
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: ref}
	if p.acceptKw("WHERE") {
		if stmt.Where, err = p.expression(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *parser) selectStmt() (Stmt, error) {
	p.next() // SELECT
	stmt := &SelectStmt{}
	stmt.Distinct = p.acceptKw("DISTINCT")
	for {
		if p.acceptSym("*") {
			stmt.Exprs = append(stmt.Exprs, SelectExpr{Star: true})
		} else {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			se := SelectExpr{Expr: e}
			if p.acceptKw("AS") {
				alias, err := p.ident()
				if err != nil {
					return nil, err
				}
				se.Alias = alias
			} else if p.peek().kind == tokIdent {
				se.Alias = p.next().text
			}
			stmt.Exprs = append(stmt.Exprs, se)
		}
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if p.acceptKw("FROM") {
		ref, err := p.tableRef(true)
		if err != nil {
			return nil, err
		}
		stmt.From = &ref
		for {
			left := false
			if p.acceptKw("LEFT") {
				left = true
			} else if p.acceptKw("INNER") {
				// fallthrough to JOIN
			} else if p.peek().kind != tokKeyword || p.peek().text != "JOIN" {
				break
			}
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			jref, err := p.tableRef(true)
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			on, err := p.expression()
			if err != nil {
				return nil, err
			}
			stmt.Joins = append(stmt.Joins, JoinClause{Left: left, Table: jref, On: on})
		}
	}
	var err error
	if p.acceptKw("WHERE") {
		if stmt.Where, err = p.expression(); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if p.acceptSym(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("HAVING") {
		if stmt.Having, err = p.expression(); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if p.acceptSym(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("LIMIT") {
		if stmt.Limit, err = p.expression(); err != nil {
			return nil, err
		}
		if p.acceptSym(",") { // LIMIT offset, count
			stmt.Offset = stmt.Limit
			if stmt.Limit, err = p.expression(); err != nil {
				return nil, err
			}
		}
	}
	if p.acceptKw("OFFSET") {
		if stmt.Offset, err = p.expression(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

// Expression grammar, lowest to highest precedence:
//
//	or   := and (OR and)*
//	and  := not (AND not)*
//	not  := NOT not | cmp
//	cmp  := add ((=|!=|<>|<|<=|>|>=) add | IS [NOT] NULL | [NOT] IN (...)
//	        | [NOT] BETWEEN add AND add | [NOT] LIKE add)?
//	add  := mul ((+|-) mul)*
//	mul  := unary ((*|/|%) unary)*
//	unary := - unary | primary
func (p *parser) expression() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{"OR", l, r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{"AND", l, r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{"NOT", x}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "!=", "<>", "<", "<=", ">", ">=":
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "<>" {
				op = "!="
			}
			return &Binary{op, l, r}, nil
		}
	}
	if t.kind == tokKeyword {
		not := false
		if t.text == "NOT" && p.peek2().kind == tokKeyword &&
			(p.peek2().text == "IN" || p.peek2().text == "BETWEEN" || p.peek2().text == "LIKE") {
			p.next()
			not = true
			t = p.peek()
		}
		switch t.text {
		case "IS":
			p.next()
			isNot := p.acceptKw("NOT")
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			return &IsNullExpr{X: l, Not: isNot}, nil
		case "IN":
			p.next()
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			var list []Expr
			for {
				e, err := p.expression()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if p.acceptSym(",") {
					continue
				}
				break
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return &InExpr{X: l, List: list, Not: not}, nil
		case "BETWEEN":
			p.next()
			lo, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AND"); err != nil {
				return nil, err
			}
			hi, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &BetweenExpr{X: l, Lo: lo, Hi: hi, Not: not}, nil
		case "LIKE":
			p.next()
			pat, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &LikeExpr{X: l, Pattern: pat, Not: not}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.next()
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{t.text, l, r}
			continue
		}
		return l, nil
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.next()
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{t.text, l, r}
			continue
		}
		return l, nil
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.acceptSym("-") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*Literal); ok { // fold -literal
			switch lit.V.Kind() {
			case KindInt:
				return &Literal{NewInt(-lit.V.Int())}, nil
			case KindFloat:
				return &Literal{NewFloat(-lit.V.Float())}, nil
			}
		}
		return &Unary{"-", x}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, &ParseError{t.pos, "invalid integer literal"}
		}
		return &Literal{NewInt(n)}, nil
	case tokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, &ParseError{t.pos, "invalid float literal"}
		}
		return &Literal{NewFloat(f)}, nil
	case tokString:
		p.next()
		return &Literal{NewString(t.text)}, nil
	case tokParam:
		p.next()
		e := &Param{Index: p.params}
		p.params++
		return e, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Null}, nil
		case "TRUE":
			p.next()
			return &Literal{NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{NewBool(false)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX", "IF":
			p.next()
			return p.funcCall(t.text)
		}
		return nil, &ParseError{t.pos, fmt.Sprintf("unexpected keyword %q in expression", t.text)}
	case tokIdent:
		// function call, qualified column, or bare column
		if p.peek2().kind == tokSymbol && p.peek2().text == "(" {
			name := strings.ToUpper(p.next().text)
			return p.funcCall(name)
		}
		p.next()
		name := t.text
		if p.acceptSym(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Name: col}, nil
		}
		return &ColRef{Name: name}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, &ParseError{t.pos, fmt.Sprintf("unexpected token %q in expression", t.text)}
}

func (p *parser) funcCall(name string) (Expr, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: name}
	if p.acceptSym("*") {
		fc.Star = true
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.acceptSym(")") {
		return fc, nil
	}
	fc.Distinct = p.acceptKw("DISTINCT")
	for {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, e)
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return fc, nil
}
