package sqlengine

import "strings"

// Row-image rendering for row-based replication (FormatRow): each affected
// row becomes one deterministic statement with every value a literal, so a
// replica applies exactly the master's bytes. Rows are identified by
// primary key when the table has one, else by the full before-image.

// renderRowInsert renders one inserted row as a literal INSERT.
func renderRowInsert(tbl *Table, vals []Value) string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(tbl.Name)
	b.WriteString(" (")
	for i, c := range tbl.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
	}
	b.WriteString(") VALUES (")
	for i, v := range vals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.SQL())
	}
	b.WriteString(")")
	return b.String()
}

// rowPredicate renders the identifying WHERE clause for a before-image.
func rowPredicate(tbl *Table, before []Value) string {
	var b strings.Builder
	positions := tbl.pkCols
	if len(positions) == 0 {
		positions = make([]int, len(tbl.Columns))
		for i := range positions {
			positions[i] = i
		}
	}
	for i, pos := range positions {
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteString(tbl.Columns[pos].Name)
		if before[pos].IsNull() {
			b.WriteString(" IS NULL")
		} else {
			b.WriteString(" = ")
			b.WriteString(before[pos].SQL())
		}
	}
	return b.String()
}

// renderRowUpdate renders one updated row as a literal UPDATE keyed on the
// before-image.
func renderRowUpdate(tbl *Table, before, after []Value) string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(tbl.Name)
	b.WriteString(" SET ")
	first := true
	for i, c := range tbl.Columns {
		if Compare(before[i], after[i]) == 0 && before[i].Kind() == after[i].Kind() {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(c.Name)
		b.WriteString(" = ")
		b.WriteString(after[i].SQL())
	}
	if first {
		// No column changed value; still emit a no-op-safe full image.
		for i, c := range tbl.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.Name)
			b.WriteString(" = ")
			b.WriteString(after[i].SQL())
		}
	}
	b.WriteString(" WHERE ")
	b.WriteString(rowPredicate(tbl, before))
	return b.String()
}

// renderRowDelete renders one deleted row as a literal DELETE keyed on the
// before-image.
func renderRowDelete(tbl *Table, before []Value) string {
	return "DELETE FROM " + tbl.Name + " WHERE " + rowPredicate(tbl, before)
}
