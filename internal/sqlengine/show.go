package sqlengine

import (
	"fmt"
	"sort"
	"strings"
)

// ShowStmt is SHOW DATABASES | SHOW TABLES.
type ShowStmt struct {
	What string // "DATABASES" or "TABLES"
}

func (s *ShowStmt) String() string { return "SHOW " + s.What }
func (*ShowStmt) stmt()            {}

// DescribeStmt is DESCRIBE <table>.
type DescribeStmt struct {
	Table TableRef
}

func (s *DescribeStmt) String() string { return "DESCRIBE " + s.Table.String() }
func (*DescribeStmt) stmt()            {}

// execShow lists databases or the session database's tables.
func (e *Engine) execShow(s *Session, st *ShowStmt) (*Result, error) {
	switch st.What {
	case "DATABASES":
		var names []string
		for _, d := range e.dbs {
			names = append(names, d.Name)
		}
		sort.Strings(names)
		set := &ResultSet{Columns: []string{"Database"}}
		for _, n := range names {
			set.Rows = append(set.Rows, []Value{NewString(n)})
		}
		return &Result{Set: set, Stats: ExecStats{Class: ClassRead, RowsReturned: len(set.Rows)}, SQL: st.String()}, nil
	case "TABLES":
		if s.db == "" {
			return nil, fmt.Errorf("sqlengine: no database selected")
		}
		db, ok := e.dbs[strings.ToLower(s.db)]
		if !ok {
			return nil, fmt.Errorf("sqlengine: unknown database %s", s.db)
		}
		var names []string
		for _, t := range db.tables {
			names = append(names, t.Name)
		}
		sort.Strings(names)
		set := &ResultSet{Columns: []string{"Tables_in_" + db.Name}}
		for _, n := range names {
			set.Rows = append(set.Rows, []Value{NewString(n)})
		}
		return &Result{Set: set, Stats: ExecStats{Class: ClassRead, RowsReturned: len(set.Rows)}, SQL: st.String()}, nil
	default:
		return nil, fmt.Errorf("sqlengine: cannot SHOW %s", st.What)
	}
}

// execDescribe reports a table's columns MySQL-style.
func (e *Engine) execDescribe(s *Session, st *DescribeStmt) (*Result, error) {
	_, tbl, err := s.resolveTable(st.Table)
	if err != nil {
		return nil, err
	}
	set := &ResultSet{Columns: []string{"Field", "Type", "Null", "Key"}}
	for i, c := range tbl.Columns {
		null := "YES"
		if c.NotNull {
			null = "NO"
		}
		key := ""
		for _, pk := range tbl.pkCols {
			if pk == i {
				key = "PRI"
			}
		}
		if key == "" {
			for _, ix := range tbl.indexes {
				for _, pos := range ix.Cols {
					if pos == i {
						if ix.Unique {
							key = "UNI"
						} else {
							key = "MUL"
						}
					}
				}
			}
		}
		set.Rows = append(set.Rows, []Value{
			NewString(c.Name),
			NewString(strings.ToLower(typeName(c.Type, c.TypeArg))),
			NewString(null),
			NewString(key),
		})
	}
	return &Result{Set: set, Stats: ExecStats{Class: ClassRead, RowsReturned: len(set.Rows)}, SQL: st.String()}, nil
}
