package sqlengine

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// explainGoldenQueries covers the full operator vocabulary the stable
// EXPLAIN format renders: scan, index_scan, filter, project, hash_join,
// inl_join, hash_agg, sort, limit, naive-mode parity, and EXPLAIN ANALYZE's
// est-vs-actual annotation. One golden file pins all of it byte-exactly —
// the A-PLAN decision log embeds these renderings in BENCH_plan.json, so a
// format drift is a visible interface change, not an incidental one.
var explainGoldenQueries = []string{
	"EXPLAIN SELECT * FROM users WHERE id = 3",
	"EXPLAIN SELECT name FROM users WHERE karma > 40 ORDER BY karma DESC LIMIT 3",
	"EXPLAIN SELECT u.name, e.title FROM users u JOIN events e ON e.creator_id = u.id",
	"EXPLAIN SELECT e.title FROM events e JOIN users u ON e.creator_id = u.id WHERE u.id = 4",
	"EXPLAIN SELECT creator_id, COUNT(*) FROM events GROUP BY creator_id HAVING COUNT(*) > 1 ORDER BY creator_id",
	"EXPLAIN SELECT DISTINCT creator_id FROM events",
	"EXPLAIN UPDATE users SET karma = 0 WHERE id = 1",
	"EXPLAIN ANALYZE SELECT u.name, e.title FROM events e JOIN users u ON e.creator_id = u.id WHERE u.karma > 30 ORDER BY e.id DESC LIMIT 5",
}

// TestExplainGolden renders the corpus under both planner modes and
// byte-compares against testdata/explain_golden.txt. Regenerate after a
// deliberate format change with:
//
//	UPDATE_EXPLAIN_GOLDEN=1 go test ./internal/sqlengine -run TestExplainGolden
func TestExplainGolden(t *testing.T) {
	s := newTestDB(t)
	var b strings.Builder
	for _, q := range explainGoldenQueries {
		b.WriteString("== " + q + "\n")
		b.WriteString(explainText(t, s, q) + "\n")
		s.eng.NaivePlan = true
		b.WriteString("-- naive\n")
		b.WriteString(explainText(t, s, q) + "\n\n")
		s.eng.NaivePlan = false
	}
	got := b.String()

	path := filepath.Join("testdata", "explain_golden.txt")
	if os.Getenv("UPDATE_EXPLAIN_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with UPDATE_EXPLAIN_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) || i < len(wl); i++ {
			var g, w string
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(wl) {
				w = wl[i]
			}
			if g != w {
				t.Fatalf("EXPLAIN output drifted at line %d\n got: %q\nwant: %q\n(regenerate deliberately with UPDATE_EXPLAIN_GOLDEN=1)", i+1, g, w)
			}
		}
		t.Fatal("EXPLAIN output drifted (length mismatch)")
	}
}
