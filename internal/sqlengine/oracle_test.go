package sqlengine

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestExecutorAgainstNaiveOracle cross-checks the planner/executor (index
// selection, candidate pruning) against a brute-force evaluation of the
// same predicate over every row: for many random WHERE clauses, SELECT must
// return exactly the rows the predicate admits, regardless of which access
// path the planner picks.
func TestExecutorAgainstNaiveOracle(t *testing.T) {
	eng := NewEngine()
	if err := eng.CreateDatabase("d", false); err != nil {
		t.Fatal(err)
	}
	s := eng.NewSession("d")
	if _, err := s.Exec(`CREATE TABLE rows (
		id BIGINT PRIMARY KEY, grp BIGINT, val BIGINT, name VARCHAR(20),
		INDEX idx_grp (grp))`); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	type rowT struct {
		id, grp, val int64
		name         string
	}
	var rows []rowT
	for i := 0; i < 200; i++ {
		r := rowT{
			id:   int64(i),
			grp:  int64(rng.Intn(8)),
			val:  int64(rng.Intn(50)),
			name: fmt.Sprintf("n%02d", rng.Intn(30)),
		}
		rows = append(rows, r)
		if _, err := s.Exec("INSERT INTO rows (id, grp, val, name) VALUES (?, ?, ?, ?)",
			NewInt(r.id), NewInt(r.grp), NewInt(r.val), NewString(r.name)); err != nil {
			t.Fatal(err)
		}
	}

	type pred struct {
		sql  string
		args []Value
		eval func(rowT) bool
	}
	mkPred := func() pred {
		switch rng.Intn(8) {
		case 0:
			v := int64(rng.Intn(220))
			return pred{"id = ?", []Value{NewInt(v)}, func(r rowT) bool { return r.id == v }}
		case 1:
			g := int64(rng.Intn(10))
			return pred{"grp = ?", []Value{NewInt(g)}, func(r rowT) bool { return r.grp == g }}
		case 2:
			v := int64(rng.Intn(50))
			return pred{"val > ?", []Value{NewInt(v)}, func(r rowT) bool { return r.val > v }}
		case 3:
			g := int64(rng.Intn(8))
			v := int64(rng.Intn(50))
			return pred{"grp = ? AND val <= ?", []Value{NewInt(g), NewInt(v)},
				func(r rowT) bool { return r.grp == g && r.val <= v }}
		case 4:
			a, b := int64(rng.Intn(50)), int64(rng.Intn(50))
			return pred{"val BETWEEN ? AND ?", []Value{NewInt(a), NewInt(b)},
				func(r rowT) bool { return r.val >= a && r.val <= b }}
		case 5:
			g1, g2 := int64(rng.Intn(8)), int64(rng.Intn(8))
			return pred{"grp IN (?, ?)", []Value{NewInt(g1), NewInt(g2)},
				func(r rowT) bool { return r.grp == g1 || r.grp == g2 }}
		case 6:
			n := fmt.Sprintf("n%02d", rng.Intn(30))
			return pred{"name = ?", []Value{NewString(n)}, func(r rowT) bool { return r.name == n }}
		default:
			g := int64(rng.Intn(8))
			v := int64(rng.Intn(50))
			return pred{"grp = ? OR val = ?", []Value{NewInt(g), NewInt(v)},
				func(r rowT) bool { return r.grp == g || r.val == v }}
		}
	}

	for trial := 0; trial < 300; trial++ {
		p := mkPred()
		set, err := s.Query("SELECT id FROM rows WHERE "+p.sql, p.args...)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, p.sql, err)
		}
		got := map[int64]bool{}
		for _, r := range set.Rows {
			if got[r[0].Int()] {
				t.Fatalf("trial %d (%s): duplicate id %d", trial, p.sql, r[0].Int())
			}
			got[r[0].Int()] = true
		}
		want := map[int64]bool{}
		for _, r := range rows {
			if p.eval(r) {
				want[r.id] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (%s args %v): got %d rows, want %d", trial, p.sql, p.args, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d (%s): missing id %d", trial, p.sql, id)
			}
		}
	}
}

// TestUpdateDeleteAgainstOracle cross-checks mutation statements the same
// way: the set of surviving rows must equal the brute-force expectation.
func TestUpdateDeleteAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		eng := NewEngine()
		eng.CreateDatabase("d", false)
		s := eng.NewSession("d")
		s.Exec("CREATE TABLE t (id BIGINT PRIMARY KEY, grp BIGINT, INDEX idx_grp (grp))")
		live := map[int64]int64{} // id -> grp
		for i := 0; i < 60; i++ {
			g := int64(rng.Intn(5))
			live[int64(i)] = g
			if _, err := s.Exec("INSERT INTO t (id, grp) VALUES (?, ?)", NewInt(int64(i)), NewInt(g)); err != nil {
				t.Fatal(err)
			}
		}
		for step := 0; step < 20; step++ {
			g := int64(rng.Intn(5))
			if rng.Intn(2) == 0 {
				res, err := s.Exec("DELETE FROM t WHERE grp = ?", NewInt(g))
				if err != nil {
					t.Fatal(err)
				}
				expect := 0
				for id, grp := range live {
					if grp == g {
						delete(live, id)
						expect++
					}
				}
				if res.Stats.RowsAffected != expect {
					t.Fatalf("delete affected %d, want %d", res.Stats.RowsAffected, expect)
				}
			} else {
				ng := int64(rng.Intn(5))
				res, err := s.Exec("UPDATE t SET grp = ? WHERE grp = ?", NewInt(ng), NewInt(g))
				if err != nil {
					t.Fatal(err)
				}
				expect := 0
				for id, grp := range live {
					if grp == g {
						live[id] = ng
						if ng != g {
							expect++
						} else {
							expect++ // engine counts assignments even when equal
						}
					}
				}
				if res.Stats.RowsAffected != expect {
					t.Fatalf("update affected %d, want %d", res.Stats.RowsAffected, expect)
				}
			}
			// Verify the full surviving state via the indexed path.
			for g := int64(0); g < 5; g++ {
				set, err := s.Query("SELECT COUNT(*) FROM t WHERE grp = ?", NewInt(g))
				if err != nil {
					t.Fatal(err)
				}
				want := int64(0)
				for _, grp := range live {
					if grp == g {
						want++
					}
				}
				if set.Rows[0][0].Int() != want {
					t.Fatalf("grp %d count %v, want %d", g, set.Rows[0][0], want)
				}
			}
		}
	}
}

// TestConcurrentSnapshotAgainstOracle interleaves autocommit writers,
// multi-statement transactions and snapshot readers, checking every read
// against a version-indexed oracle: each commit records the full table
// state, and a reader at version v — an open transaction or a materialized
// pin — must observe exactly the state recorded for v, never a torn mix.
func TestConcurrentSnapshotAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	eng := NewEngine()
	if err := eng.CreateDatabase("d", false); err != nil {
		t.Fatal(err)
	}
	w := eng.NewSession("d")
	if _, err := w.Exec("CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT, INDEX idx_v (v))"); err != nil {
		t.Fatal(err)
	}
	live := map[int64]int64{}
	history := map[uint64]map[int64]int64{} // commit version -> full state
	record := func() {
		st := make(map[int64]int64, len(live))
		for k, v := range live {
			st[k] = v
		}
		history[eng.CommitVersion()] = st
	}
	record()

	checkState := func(got map[int64]int64, v uint64, what string) {
		t.Helper()
		want, ok := history[v]
		if !ok {
			t.Fatalf("%s at unrecorded version %d", what, v)
		}
		if len(got) != len(want) {
			t.Fatalf("%s at v%d: %d rows, want %d", what, v, len(got), len(want))
		}
		for id, val := range want {
			if got[id] != val {
				t.Fatalf("%s at v%d: id %d = %d, want %d", what, v, id, got[id], val)
			}
		}
	}
	readAll := func(s *Session) map[int64]int64 {
		t.Helper()
		set, err := s.Query("SELECT id, v FROM t")
		if err != nil {
			t.Fatal(err)
		}
		got := map[int64]int64{}
		for _, r := range set.Rows {
			got[r[0].Int()] = r[1].Int()
		}
		return got
	}

	type openTxn struct {
		s *Session
		v uint64
	}
	var txns []openTxn
	var writers []*Session
	var pins []*SnapshotHandle
	nextID := int64(0)
	// Writer transactions get disjoint id ranges: without row locks,
	// write-write overlap between an open transaction and autocommit
	// writers has no defined winner, and the oracle only models the
	// committed timeline.
	wBase := int64(1_000_000)
	mutate := func(s *Session, base, n int64) int64 {
		switch rng.Intn(3) {
		case 0:
			n++
			if _, err := s.Exec("INSERT INTO t (id, v) VALUES (?, ?)",
				NewInt(base+n), NewInt(int64(rng.Intn(1000)))); err != nil {
				t.Fatal(err)
			}
		case 1:
			if n > 0 {
				if _, err := s.Exec("UPDATE t SET v = ? WHERE id = ?",
					NewInt(int64(rng.Intn(1000))), NewInt(base+int64(rng.Intn(int(n)))+1)); err != nil {
					t.Fatal(err)
				}
			}
		default:
			if n > 0 {
				if _, err := s.Exec("DELETE FROM t WHERE id = ?",
					NewInt(base+int64(rng.Intn(int(n)))+1)); err != nil {
					t.Fatal(err)
				}
			}
		}
		return n
	}

	for step := 0; step < 600; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // autocommit write; the oracle tracks it immediately
			nextID++
			val := int64(rng.Intn(1000))
			switch rng.Intn(3) {
			case 0:
				if _, err := w.Exec("INSERT INTO t (id, v) VALUES (?, ?)", NewInt(nextID), NewInt(val)); err != nil {
					t.Fatal(err)
				}
				live[nextID] = val
			case 1:
				id := int64(rng.Intn(int(nextID))) + 1
				if _, err := w.Exec("UPDATE t SET v = ? WHERE id = ?", NewInt(val), NewInt(id)); err != nil {
					t.Fatal(err)
				}
				if _, ok := live[id]; ok {
					live[id] = val
				}
			default:
				id := int64(rng.Intn(int(nextID))) + 1
				if _, err := w.Exec("DELETE FROM t WHERE id = ?", NewInt(id)); err != nil {
					t.Fatal(err)
				}
				delete(live, id)
			}
			record()
		case op < 5: // open a read-only snapshot transaction (oracle-checked)
			s := eng.NewSession("d")
			if _, err := s.Exec("BEGIN"); err != nil {
				t.Fatal(err)
			}
			txns = append(txns, openTxn{s: s, v: s.ReadVersion()})
		case op < 6: // provisional-write noise: a writer txn others must not see
			s := eng.NewSession("d")
			if _, err := s.Exec("BEGIN"); err != nil {
				t.Fatal(err)
			}
			wBase += 1000
			var n int64
			for i := 0; i < 1+rng.Intn(3); i++ {
				n = mutate(s, wBase, n)
			}
			writers = append(writers, s)
		case op < 7 && len(txns)+len(writers) > 0: // end a transaction
			if len(writers) > 0 && (len(txns) == 0 || rng.Intn(2) == 0) {
				i := rng.Intn(len(writers))
				if _, err := writers[i].Exec("ROLLBACK"); err != nil {
					t.Fatal(err)
				}
				writers = append(writers[:i], writers[i+1:]...)
			} else {
				i := rng.Intn(len(txns))
				if _, err := txns[i].s.Exec("ROLLBACK"); err != nil {
					t.Fatal(err)
				}
				txns = append(txns[:i], txns[i+1:]...)
			}
			record() // rollback changes nothing; state maps to same version
		case op < 8:
			pins = append(pins, eng.Pin())
		case op < 9 && len(pins) > 0:
			i := rng.Intn(len(pins))
			pins[i].Close()
			pins = append(pins[:i], pins[i+1:]...)
		default: // verify every open reader sees its own version's state
			for _, tx := range txns {
				checkState(readAll(tx.s), tx.v, "txn read")
			}
			for _, h := range pins {
				snap := h.Materialize()
				got := map[int64]int64{}
				for _, d := range snap.dbs {
					for _, tb := range d.tables {
						for _, r := range tb.rows {
							got[r[0].Int()] = r[1].Int()
						}
					}
				}
				checkState(got, h.Version(), "pin materialize")
			}
		}
	}
	for _, tx := range txns {
		checkState(readAll(tx.s), tx.v, "final txn read")
		if _, err := tx.s.Exec("ROLLBACK"); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range writers {
		if _, err := s.Exec("ROLLBACK"); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range pins {
		h.Close()
	}
	// With every reader gone, GC must fully reclaim: the final state read
	// through a fresh session equals the oracle's last committed state.
	checkState(readAll(eng.NewSession("d")), eng.CommitVersion(), "final state")
}
