package sqlengine

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates runtime value kinds.
type Kind uint8

// Value kinds. Timestamps are microseconds since the epoch, matching the
// paper's microsecond-resolution user-defined time function.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindTime // microseconds since epoch
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindTime:
		return "TIMESTAMP"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed SQL value.
type Value struct {
	kind Kind
	i    int64 // int, bool (0/1), time (µs)
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{kind: KindNull}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a double value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewTime returns a timestamp value from microseconds since the epoch.
func NewTime(micros int64) Value { return Value{kind: KindTime, i: micros} }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the value as int64 (valid for Int, Bool and Time kinds).
func (v Value) Int() int64 { return v.i }

// Float returns the value as float64, coercing integers.
func (v Value) Float() float64 {
	if v.kind == KindFloat {
		return v.f
	}
	return float64(v.i)
}

// Str returns the underlying string (valid for String kind).
func (v Value) Str() string { return v.s }

// Bool returns the value's truthiness: non-zero numbers and non-empty
// strings are true; NULL is false.
func (v Value) Bool() bool {
	switch v.kind {
	case KindBool, KindInt, KindTime:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindString:
		return v.s != ""
	default:
		return false
	}
}

// Micros returns the timestamp in microseconds (valid for Time and Int).
func (v Value) Micros() int64 { return v.i }

// numeric reports whether the value can participate in arithmetic.
func (v Value) numeric() bool {
	switch v.kind {
	case KindInt, KindFloat, KindBool, KindTime:
		return true
	default:
		return false
	}
}

// String renders the value for result display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt, KindTime:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "?"
	}
}

// SQL renders the value as a SQL literal (strings quoted and escaped). The
// binlog uses this to interpolate bound parameters into replayable
// statement text, the way MySQL's statement-based log records fully-formed
// statements.
func (v Value) SQL() string {
	switch v.kind {
	case KindString:
		s := strings.ReplaceAll(v.s, `\`, `\\`)
		s = strings.ReplaceAll(s, "'", "''")
		return "'" + s + "'"
	default:
		return v.String()
	}
}

// Compare orders two values: -1, 0, or +1. NULL sorts before everything and
// equals only NULL. Numeric kinds compare numerically across kinds; strings
// compare lexicographically. Comparing string with numeric kinds compares
// the string's numeric parse when possible, else string forms — mirroring
// MySQL's permissive coercion.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.numeric() && b.numeric() {
		if a.kind == KindFloat || b.kind == KindFloat {
			return cmpFloat(a.Float(), b.Float())
		}
		return cmpInt(a.i, b.i)
	}
	if a.kind == KindString && b.kind == KindString {
		return strings.Compare(a.s, b.s)
	}
	// Mixed string/numeric: try numeric parse of the string side.
	if a.kind == KindString {
		if f, err := strconv.ParseFloat(strings.TrimSpace(a.s), 64); err == nil {
			return cmpFloat(f, b.Float())
		}
		return strings.Compare(a.s, b.String())
	}
	if f, err := strconv.ParseFloat(strings.TrimSpace(b.s), 64); err == nil {
		return cmpFloat(a.Float(), f)
	}
	return strings.Compare(a.String(), b.s)
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports value equality under Compare semantics, with NULL ≠ NULL
// handled by the caller when three-valued logic applies.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// key returns a map key identifying the value for index lookups. Values
// that compare equal across kinds (1 and 1.0) share a key.
func (v Value) key() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindString:
		return "s" + v.s
	default:
		return string(v.appendKey(nil))
	}
}

// appendKey appends v's map key (same bytes as key) to b, for callers that
// build composite keys row-by-row and must not allocate one string per value.
func (v Value) appendKey(b []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(b, 0x00)
	case KindString:
		return append(append(b, 's'), v.s...)
	case KindFloat:
		if v.f == float64(int64(v.f)) {
			return strconv.AppendInt(append(b, 'n'), int64(v.f), 10)
		}
		return strconv.AppendFloat(append(b, 'n'), v.f, 'g', -1, 64)
	default: // int, bool, time
		return strconv.AppendInt(append(b, 'n'), v.i, 10)
	}
}
