package sqlengine

import (
	"sort"
	"strings"
	"testing"
)

// newJoinDB builds a schema shaped so that join-algorithm choice matters:
// orders (100 rows) joins items (100 rows, 10 per key) on an indexed,
// non-unique column.
func newJoinDB(t *testing.T) *Session {
	t.Helper()
	eng := NewEngine()
	if err := eng.CreateDatabase("shop", false); err != nil {
		t.Fatal(err)
	}
	s := eng.NewSession("shop")
	for _, ddl := range []string{
		`CREATE TABLE orders (id BIGINT PRIMARY KEY, buyer VARCHAR(20), total INT)`,
		`CREATE TABLE items (id BIGINT PRIMARY KEY, order_key BIGINT, sku VARCHAR(20),
			INDEX idx_order (order_key))`,
	} {
		if _, err := s.Exec(ddl); err != nil {
			t.Fatalf("%s: %v", ddl, err)
		}
	}
	for i := 1; i <= 100; i++ {
		if _, err := s.Exec("INSERT INTO orders (id, buyer, total) VALUES (?, ?, ?)",
			NewInt(int64(i)), NewString("b"+string(rune('a'+i%26))), NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 100; i++ {
		if _, err := s.Exec("INSERT INTO items (id, order_key, sku) VALUES (?, ?, ?)",
			NewInt(int64(i)), NewInt(int64(i%10+1)), NewString("sku")); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestPlannerJoinAlgorithmFlips pins the cost model's central behaviour: the
// same join predicate plans as an index-nested-loop when the outer side is
// selective (few probes) and as a hash join when the outer side is the full
// table (probe volume exceeds build cost).
func TestPlannerJoinAlgorithmFlips(t *testing.T) {
	s := newJoinDB(t)
	selective := explainText(t, s,
		"EXPLAIN SELECT i.sku FROM orders o JOIN items i ON i.order_key = o.id WHERE o.id = 1")
	if !strings.Contains(selective, "inl_join") {
		t.Errorf("selective outer should use index nested loop:\n%s", selective)
	}
	full := explainText(t, s,
		"EXPLAIN SELECT i.sku FROM orders o JOIN items i ON i.order_key = o.id")
	if !strings.Contains(full, "hash_join") {
		t.Errorf("full outer should use hash join:\n%s", full)
	}
	if strings.Contains(full, "inl_join") {
		t.Errorf("full outer still uses index nested loop:\n%s", full)
	}
}

// TestPlannerPushdownReordersJoin checks that an unselective syntax order is
// rewritten: the WHERE predicate binds the second table, so the planner
// should drive from it rather than scanning the first.
func TestPlannerPushdownReordersJoin(t *testing.T) {
	s := newJoinDB(t)
	got := explainText(t, s,
		"EXPLAIN SELECT o.buyer FROM items i JOIN orders o ON i.order_key = o.id WHERE o.id = 5")
	lines := strings.Split(got, "\n")
	var driving string
	for _, l := range lines {
		driving = strings.TrimSpace(l) // last line is the driving access
	}
	if !strings.HasPrefix(driving, "index_scan o via PRIMARY") {
		t.Errorf("driving access should be orders PK lookup:\n%s", got)
	}
}

// differentialQueries is the planner-vs-naive corpus: every query must
// return byte-identical results under both planners (order-sensitive when
// ORDER BY is present, multiset-equal otherwise).
var differentialQueries = []string{
	"SELECT * FROM users",
	"SELECT name, karma FROM users WHERE id = 3",
	"SELECT * FROM users WHERE karma > 40 ORDER BY karma DESC",
	"SELECT * FROM users WHERE karma > 40 ORDER BY karma DESC LIMIT 3",
	"SELECT * FROM users WHERE karma > 40 ORDER BY karma DESC LIMIT 3 OFFSET 2",
	"SELECT u.name, e.title FROM users u JOIN events e ON e.creator_id = u.id",
	"SELECT u.name, e.title FROM users u JOIN events e ON e.creator_id = u.id WHERE u.id = 4 ORDER BY e.id",
	"SELECT u.name, e.title FROM events e JOIN users u ON e.creator_id = u.id WHERE u.karma > 30 ORDER BY e.id DESC",
	"SELECT u.name, e.title FROM users u LEFT JOIN events e ON e.creator_id = u.id AND e.score > 8 ORDER BY u.id, e.id",
	"SELECT creator_id, COUNT(*), AVG(score) FROM events GROUP BY creator_id ORDER BY creator_id",
	"SELECT creator_id, COUNT(*) FROM events GROUP BY creator_id HAVING COUNT(*) > 2 ORDER BY creator_id",
	"SELECT DISTINCT creator_id FROM events ORDER BY creator_id",
	"SELECT COUNT(*) FROM users WHERE karma BETWEEN 20 AND 70",
	"SELECT name FROM users WHERE name LIKE 'user%' ORDER BY name LIMIT 4",
	"SELECT u.name FROM users u JOIN events e ON e.creator_id = u.id AND e.score > 2 WHERE u.karma < 90 ORDER BY e.created DESC, u.id LIMIT 5",
	"SELECT e1.title FROM events e1 JOIN events e2 ON e1.creator_id = e2.creator_id WHERE e2.id = 7 ORDER BY e1.id",
	"SELECT u.id, COUNT(*) FROM users u JOIN events e ON e.creator_id = u.id GROUP BY u.id ORDER BY u.id",
	"SELECT * FROM users WHERE id IN (2, 4, 6) ORDER BY id",
	"SELECT name FROM users WHERE karma IS NULL",
	"SELECT 1 + 2, UPPER('x')",
}

func canonRows(set *ResultSet, ordered bool) []string {
	out := make([]string, 0, len(set.Rows))
	for _, r := range set.Rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.key())
			b.WriteByte(0x1f)
		}
		out = append(out, b.String())
	}
	if !ordered {
		sort.Strings(out)
	}
	return out
}

// TestPlannerNaiveDifferential runs the corpus under the cost-based and the
// forced-naive planner and requires identical results.
func TestPlannerNaiveDifferential(t *testing.T) {
	for _, q := range differentialQueries {
		s := newTestDB(t)
		cost, err := s.Query(q)
		if err != nil {
			t.Fatalf("cost plan %s: %v", q, err)
		}
		s.eng.NaivePlan = true
		naive, err := s.Query(q)
		if err != nil {
			t.Fatalf("naive plan %s: %v", q, err)
		}
		ordered := strings.Contains(q, "ORDER BY")
		c, n := canonRows(cost, ordered), canonRows(naive, ordered)
		if len(c) != len(n) {
			t.Errorf("%s: cost %d rows, naive %d rows", q, len(c), len(n))
			continue
		}
		for i := range c {
			if c[i] != n[i] {
				t.Errorf("%s: row %d differs\ncost:  %q\nnaive: %q", q, i, c[i], n[i])
				break
			}
		}
	}
}

// TestPlannerDifferentialUnderSnapshotRead repeats a join query inside a
// snapshot-isolated transaction concurrent with later writes: both planners
// must degrade to chain-resolving scans and still agree.
func TestPlannerDifferentialUnderSnapshotRead(t *testing.T) {
	q := "SELECT u.name, e.title FROM users u JOIN events e ON e.creator_id = u.id WHERE u.id = 4 ORDER BY e.id"
	run := func(naive bool) []string {
		s := newTestDB(t)
		s.eng.NaivePlan = naive
		if _, err := s.Exec("BEGIN"); err != nil {
			t.Fatal(err)
		}
		// A concurrent writer advances the commit version past the reader.
		w := s.eng.NewSession("app")
		if _, err := w.Exec("INSERT INTO events (id, creator_id, title, score, created) VALUES (99, 4, 'late', 1.0, 1)"); err != nil {
			t.Fatal(err)
		}
		set, err := s.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Exec("COMMIT"); err != nil {
			t.Fatal(err)
		}
		return canonRows(set, true)
	}
	c, n := run(false), run(true)
	if len(c) != len(n) {
		t.Fatalf("cost %d rows, naive %d rows", len(c), len(n))
	}
	for i := range c {
		if c[i] != n[i] {
			t.Fatalf("row %d differs under snapshot read", i)
		}
	}
	// The snapshot must also hide the concurrent insert entirely.
	for _, r := range c {
		if strings.Contains(r, "late") {
			t.Fatal("snapshot read saw concurrent insert")
		}
	}
}

// TestPlanCacheReuseAndInvalidation checks that repeated executions share
// one cached plan and that DDL and statistics drift retire it.
func TestPlanCacheReuseAndInvalidation(t *testing.T) {
	s := newTestDB(t)
	stmt, err := s.eng.Prepare("SELECT name FROM users WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := stmt.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := stmt.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("second Plan call did not reuse the cached plan")
	}
	// Textual variants with identical structure share the plan.
	stmt2, err := s.eng.Prepare("select   name from users where id=?")
	if err != nil {
		t.Fatal(err)
	}
	p3, err := stmt2.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Fatalf("normalized variant got a different plan (norm %q vs %q)", stmt2.Norm(), stmt.Norm())
	}
	// DDL advances the stats epoch: the cached plan must be rebuilt.
	if _, err := s.Exec("CREATE TABLE scratch (id BIGINT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	p4, err := stmt.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p1 {
		t.Fatal("plan survived a DDL epoch bump")
	}
}

// TestPlanCacheKeyedByMode ensures naive and cost plans never cross-pollute.
func TestPlanCacheKeyedByMode(t *testing.T) {
	s := newTestDB(t)
	q := "SELECT u.name FROM users u JOIN events e ON e.creator_id = u.id"
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	s.eng.NaivePlan = true
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	s.eng.mu.Lock()
	modes := map[bool]int{}
	for _, p := range s.eng.planCache {
		modes[p.Naive()]++
	}
	s.eng.mu.Unlock()
	if modes[true] == 0 || modes[false] == 0 {
		t.Fatalf("expected both planner modes cached, got %v", modes)
	}
}

// TestExplainAnalyzeReportsActualRows checks that EXPLAIN ANALYZE executes
// and annotates operators with act= counts, and that plain EXPLAIN does not.
func TestExplainAnalyzeReportsActualRows(t *testing.T) {
	s := newTestDB(t)
	plain := explainText(t, s, "EXPLAIN SELECT * FROM users WHERE karma > 50")
	if strings.Contains(plain, "act=") {
		t.Errorf("plain EXPLAIN carries act counts:\n%s", plain)
	}
	analyzed := explainText(t, s, "EXPLAIN ANALYZE SELECT * FROM users WHERE karma > 50")
	if !strings.Contains(analyzed, "act=5") {
		t.Errorf("EXPLAIN ANALYZE missing actual counts:\n%s", analyzed)
	}
}

// TestExplainAnalyzeDoesNotMutate ensures EXPLAIN ANALYZE of a SELECT leaves
// table contents untouched (it executes the read, nothing else).
func TestExplainAnalyzeDoesNotMutate(t *testing.T) {
	s := newTestDB(t)
	if _, err := s.Query("EXPLAIN ANALYZE SELECT COUNT(*) FROM users"); err != nil {
		t.Fatal(err)
	}
	set, err := s.Query("SELECT COUNT(*) FROM users")
	if err != nil {
		t.Fatal(err)
	}
	if set.Rows[0][0].Int() != 10 {
		t.Fatalf("row count changed: %v", set.Rows)
	}
}

// TestPreparedStatementAPI exercises Prepare/Run/Query/Plan end to end and
// the deprecated Session.Exec shim's equivalence.
func TestPreparedStatementAPI(t *testing.T) {
	s := newTestDB(t)
	stmt, err := s.eng.Prepare("SELECT name FROM users WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 1 {
		t.Fatalf("NumParams = %d", stmt.NumParams())
	}
	set, err := stmt.Query(s, NewInt(3))
	if err != nil {
		t.Fatal(err)
	}
	if set.Rows[0][0].Str() != "userc" {
		t.Fatalf("prepared query: %v", set.Rows)
	}
	// Same statement, different args: the shared plan must not leak state.
	set, err = stmt.Query(s, NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	if set.Rows[0][0].Str() != "usere" {
		t.Fatalf("second run: %v", set.Rows)
	}
	// Deprecated shim returns the same result.
	shim, err := s.Query("SELECT name FROM users WHERE id = ?", NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	if shim.Rows[0][0].Str() != set.Rows[0][0].Str() {
		t.Fatal("Exec shim diverged from Statement.Run")
	}
	// Wrong arity errors match the bind-time contract.
	if _, err := stmt.Run(s); err == nil || !strings.Contains(err.Error(), "1 parameters but 0 arguments") {
		t.Fatalf("arity error: %v", err)
	}
	// Writes run through the same prepared handle.
	ins, err := s.eng.Prepare("INSERT INTO users (id, name, karma) VALUES (?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Run(s, NewInt(11), NewString("userk"), NewInt(110)); err != nil {
		t.Fatal(err)
	}
	set, err = stmt.Query(s, NewInt(11))
	if err != nil {
		t.Fatal(err)
	}
	if set.Rows[0][0].Str() != "userk" {
		t.Fatalf("insert via prepared statement: %v", set.Rows)
	}
}

// TestHashJoinNullAndLeftSemantics pins hash-join edge rules: NULL keys
// never match, and LEFT joins null-extend at the same position a nested
// loop would.
func TestHashJoinNullAndLeftSemantics(t *testing.T) {
	s := newJoinDB(t)
	if _, err := s.Exec("INSERT INTO items (id, order_key, sku) VALUES (200, NULL, 'orphan')"); err != nil {
		t.Fatal(err)
	}
	// Full join: hash algorithm (see TestPlannerJoinAlgorithmFlips). The
	// NULL-keyed item must not match any order.
	set, err := s.Query("SELECT COUNT(*) FROM orders o JOIN items i ON i.order_key = o.id")
	if err != nil {
		t.Fatal(err)
	}
	if set.Rows[0][0].Int() != 100 {
		t.Fatalf("inner join matched %d rows, want 100", set.Rows[0][0].Int())
	}
	// LEFT join keyed the other way: items with NULL keys null-extend.
	set, err = s.Query("SELECT COUNT(*) FROM items i LEFT JOIN orders o ON o.id = i.order_key WHERE o.id IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if set.Rows[0][0].Int() != 1 {
		t.Fatalf("left join null-extended %d rows, want 1", set.Rows[0][0].Int())
	}
}

// TestStatsObserveAndAnalyze checks the incremental statistics lifecycle:
// plans see fresh NDV after enough drift, and the epoch advances on refresh.
func TestStatsObserveAndAnalyze(t *testing.T) {
	s := newJoinDB(t)
	// Force an analyze via planning, then record the epoch.
	if _, err := s.Query("SELECT COUNT(*) FROM items WHERE order_key = 1"); err != nil {
		t.Fatal(err)
	}
	s.eng.mu.Lock()
	_, tbl, err := s.resolveTable(TableRef{Name: "items"})
	if err != nil {
		s.eng.mu.Unlock()
		t.Fatal(err)
	}
	analyzed := tbl.stats.analyzedRows
	s.eng.mu.Unlock()
	if analyzed != 101 && analyzed != 100 {
		t.Fatalf("analyzedRows = %d after planning", analyzed)
	}
	// Doubling the table forces re-analysis on next plan (drift > 20%).
	for i := 300; i < 420; i++ {
		if _, err := s.Exec("INSERT INTO items (id, order_key, sku) VALUES (?, ?, 'x')",
			NewInt(int64(i)), NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Query("SELECT COUNT(*) FROM items WHERE order_key = 1"); err != nil {
		t.Fatal(err)
	}
	s.eng.mu.Lock()
	reanalyzed := tbl.stats.analyzedRows
	s.eng.mu.Unlock()
	if reanalyzed <= analyzed {
		t.Fatalf("stats not refreshed after drift: %d -> %d", analyzed, reanalyzed)
	}
}
