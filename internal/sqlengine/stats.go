package sqlengine

// Table statistics for the cost-based planner (planner.go). A table carries
// one tableStats: the live row count is always exact (it is just the heap
// length), while the per-column profile — number of distinct values, min and
// max — comes from the most recent ANALYZE pass and is allowed to drift.
//
// Maintenance is deliberately two-speed:
//
//   - Incrementally, on every write: the row count is implicit, and inserts
//     widen each column's observed min/max so range-selectivity estimates
//     never think new data is outside the known domain. Deletes do not
//     shrink min/max (that would need a scan); the bounds are upper bounds
//     on the true domain, which is the safe direction for selectivity.
//
//   - Lazily, at plan time: when the row count has drifted more than 20%
//     from the count at the last ANALYZE (or the table has never been
//     analyzed), the planner re-analyzes before costing. Analysis scans the
//     latest committed images under the engine lock, so it is consistent
//     with the state a latest-version reader sees; the engine-wide stats
//     epoch then bumps, invalidating every cached plan (plan.go). Snapshot
//     readers behind the latest version may plan against slightly newer
//     statistics — harmless, because statistics only steer plan choice,
//     never visibility: operators resolve rows through the same MVCC read
//     view regardless of the plan shape (DESIGN.md §14).
type tableStats struct {
	// analyzedRows is the row count at the last ANALYZE (-1 = never).
	analyzedRows int
	// analyzedV is the engine commit version the last ANALYZE ran at,
	// recording which MVCC state the column profile describes.
	analyzedV uint64
	cols      []colStats
}

// colStats is the per-column profile from the last ANALYZE, plus
// incrementally widened bounds.
type colStats struct {
	ndv      int   // distinct non-NULL values at last ANALYZE (≥1 once analyzed)
	nulls    int   // NULL count at last ANALYZE
	min, max Value // observed bounds (widened by inserts since)
	bounded  bool  // min/max valid (false until a non-NULL value is seen)
}

// statsDriftLimit is the fractional row-count drift that triggers a lazy
// re-ANALYZE at plan time.
const statsDriftLimit = 0.20

// stale reports whether the profile should be rebuilt before costing.
func (ts *tableStats) stale(liveRows int) bool {
	if ts.analyzedRows < 0 {
		return true
	}
	drift := liveRows - ts.analyzedRows
	if drift < 0 {
		drift = -drift
	}
	// Small tables re-analyze on any change: the scan is trivially cheap and
	// the relative-drift rule would otherwise never fire near zero rows.
	if ts.analyzedRows < 16 {
		return drift > 0
	}
	return float64(drift) > statsDriftLimit*float64(ts.analyzedRows)
}

// observeInsert widens column bounds for a newly inserted row, keeping
// range-selectivity denominators honest between ANALYZE passes.
func (ts *tableStats) observeInsert(vals []Value) {
	if len(ts.cols) != len(vals) {
		return // never analyzed; bounds arrive with the first ANALYZE
	}
	for i, v := range vals {
		if v.IsNull() {
			continue
		}
		cs := &ts.cols[i]
		if !cs.bounded {
			cs.min, cs.max, cs.bounded = v, v, true
			continue
		}
		if Compare(v, cs.min) < 0 {
			cs.min = v
		}
		if Compare(v, cs.max) > 0 {
			cs.max = v
		}
	}
}

// analyzeLocked rebuilds t's column profile from the latest committed images.
// The engine write lock is held by the caller; the pass reads only row value
// slices, which are immutable while the lock is held.
func (e *Engine) analyzeLocked(t *Table) {
	ts := &t.stats
	ncols := len(t.Columns)
	ts.cols = make([]colStats, ncols)
	// One distinct-key set per column. Value.key normalizes kinds that
	// compare equal (1 and 1.0), matching index and GROUP BY identity.
	seen := make([]map[string]struct{}, ncols)
	for i := range seen {
		seen[i] = make(map[string]struct{})
	}
	var kb []byte
	for _, r := range t.rows {
		for i, v := range r.vals {
			cs := &ts.cols[i]
			if v.IsNull() {
				cs.nulls++
				continue
			}
			kb = v.appendKey(kb[:0])
			if _, dup := seen[i][string(kb)]; !dup {
				seen[i][string(kb)] = struct{}{}
			}
			if !cs.bounded {
				cs.min, cs.max, cs.bounded = v, v, true
				continue
			}
			if Compare(v, cs.min) < 0 {
				cs.min = v
			}
			if Compare(v, cs.max) > 0 {
				cs.max = v
			}
		}
	}
	for i := range ts.cols {
		ts.cols[i].ndv = len(seen[i])
		if ts.cols[i].ndv == 0 {
			ts.cols[i].ndv = 1 // avoid zero denominators on all-NULL columns
		}
	}
	ts.analyzedRows = len(t.rows)
	ts.analyzedV = e.commitV
	e.bumpStatsEpochLocked()
}

// refreshStatsLocked re-analyzes t if its profile is stale, returning the
// (possibly rebuilt) statistics. Engine write lock held by the caller.
func (e *Engine) refreshStatsLocked(t *Table) *tableStats {
	if t.stats.stale(len(t.rows)) {
		e.analyzeLocked(t)
	}
	return &t.stats
}

// bumpStatsEpochLocked advances the engine's stats epoch, invalidating every
// cached plan. Called on ANALYZE, on DDL (tables appear/vanish, so cached
// plans may hold dangling *Table pointers) and on snapshot Restore (which
// replaces the whole catalog).
func (e *Engine) bumpStatsEpochLocked() {
	e.statsEpoch++
}

// ndvOf returns the distinct-value estimate for column pos, defaulting to a
// tenth of the analyzed rows when the profile has no entry (never analyzed).
func (ts *tableStats) ndvOf(pos int, liveRows int) int {
	if pos >= 0 && pos < len(ts.cols) && ts.cols[pos].ndv > 0 {
		return ts.cols[pos].ndv
	}
	if liveRows >= 10 {
		return liveRows / 10
	}
	if liveRows > 0 {
		return liveRows
	}
	return 1
}

// rangeFraction estimates the fraction of the column domain selected by a
// one-sided comparison against v, using the observed bounds. Non-numeric or
// unbounded columns fall back to defaultRangeSel.
func (cs *colStats) rangeFraction(op string, v Value) float64 {
	if !cs.bounded || !cs.min.numeric() || !cs.max.numeric() || !v.numeric() {
		return defaultRangeSel
	}
	lo, hi, x := cs.min.Float(), cs.max.Float(), v.Float()
	if hi <= lo {
		return defaultRangeSel
	}
	var f float64
	switch op {
	case "<", "<=":
		f = (x - lo) / (hi - lo)
	case ">", ">=":
		f = (hi - x) / (hi - lo)
	default:
		return defaultRangeSel
	}
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f
}
