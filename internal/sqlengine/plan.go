package sqlengine

import (
	"math"
	"strconv"
	"strings"
)

// A Plan is an immutable operator tree for one SELECT, built by the planner
// (planner.go) and executed by the iterator operators (operators.go). Plans
// are cached on the engine keyed by database + normalized SQL + planner
// mode; they embed *Table and *Index pointers, so a plan is only valid while
// Engine.statsEpoch equals the epoch it was built under — ANALYZE, DDL and
// snapshot Restore all advance the epoch and retire every cached plan.
//
// A plan fixes access paths, join order and join algorithms, never
// visibility: operators resolve rows through the session's MVCC read view at
// execution time, degrading index access to chain-resolving scans when the
// reader is behind the latest commit (operators.go). Cost estimates are in
// rows-examined units — the same unit the server's virtual CPU model charges
// per row — so the cheapest plan is the one that minimizes simulated CPU.
type Plan struct {
	db    string // lower-cased session database the plan was built for
	norm  string // normalized SQL (canonical AST rendering)
	naive bool   // built by the naive (pre-planner parity) planner
	epoch uint64 // Engine.statsEpoch at build time

	stmt    *SelectStmt // the statement (projection/aggregate/order tail)
	tables  []planTable // scope tables in syntax order (jrow slot order)
	root    *planNode   // relational pipeline: filter → joins → driving scan
	tail    []*planNode // presentation nodes above root, outermost first
	nodes   []*planNode // every node by id (actual-count slots)
	nparams int         // number of ? parameters the statement requires

	// topN is the bound for the in-flight bounded sort (LIMIT+OFFSET with
	// constant literals, ORDER BY, no DISTINCT, no usable alias), -1 when
	// the plain sort path applies.
	topN int

	// usedIndex mirrors the legacy ExecStats.UsedIndex contract: true when
	// the driving access is an index lookup.
	usedIndex bool

	totalCost float64 // summed estimated rows examined across the pipeline
}

// planTable is one scope slot: tables appear in syntax order so column
// resolution and SELECT * output are independent of join order.
type planTable struct {
	display string // ref name as written (alias or table name)
	lower   string // lower-cased ref name for scope binding
	tbl     *Table
}

// opKind enumerates plan operators.
type opKind uint8

const (
	opScan      opKind = iota // full heap scan (or visible-image scan)
	opIndexScan               // eq bucket via single-column index or PK
	opNLJoin                  // nested-loop join, full inner per outer row
	opINLJoin                 // index-nested-loop join via inner index
	opHashJoin                // build inner hash table, probe outer rows
	opFilter                  // residual predicate over joined rows
	opHashAgg                 // grouped aggregation (+ HAVING)
	opProject                 // projection
	opSort                    // full ORDER BY sort
	opTopN                    // bounded in-flight sort (ORDER BY + LIMIT)
	opDistinct                // post-projection DISTINCT
	opLimit                   // LIMIT/OFFSET
)

func (k opKind) String() string {
	switch k {
	case opScan:
		return "scan"
	case opIndexScan:
		return "index_scan"
	case opNLJoin:
		return "nl_join"
	case opINLJoin:
		return "inl_join"
	case opHashJoin:
		return "hash_join"
	case opFilter:
		return "filter"
	case opHashAgg:
		return "hash_agg"
	case opProject:
		return "project"
	case opSort:
		return "sort"
	case opTopN:
		return "topn"
	case opDistinct:
		return "distinct"
	default:
		return "limit"
	}
}

// planNode is one operator. Join nodes embed their inner-side access (table,
// index, key expression) rather than a child subtree: the executor's
// pipeline is strictly left-deep, so the plan is a chain from the top filter
// down to the driving scan via input.
type planNode struct {
	id   int
	kind opKind

	input *planNode // outer input; nil for the driving access

	slot    int    // scope slot this node fills (scans and joins)
	tbl     *Table // accessed table (scans and joins)
	idxName string // index backing an index_scan / inl_join lookup
	eqCol   int    // inner key column (index_scan, inl_join, hash_join)
	eqExpr  Expr   // outer key expression evaluated per probe
	left    bool   // LEFT join (null-extend on no match)

	// filters are the conjuncts this node evaluates on every candidate row
	// it produces, in deterministic assignment order. For index and join
	// nodes the equality conjunct itself is included as a recheck: when MVCC
	// degrades index access to a chain-resolving scan the recheck keeps the
	// operator exact.
	filters []Expr

	detail  string  // pre-rendered operand text (deterministic)
	estRows float64 // estimated output rows
	estCost float64 // estimated rows examined at this node
}

// hasCost reports whether the node charges examined rows (relational access
// nodes do; presentation tail nodes do not).
func (n *planNode) hasCost() bool {
	switch n.kind {
	case opScan, opIndexScan, opNLJoin, opINLJoin, opHashJoin:
		return true
	}
	return false
}

func estInt(f float64) string {
	if f < 0 {
		f = 0
	}
	return strconv.FormatInt(int64(math.Round(f)), 10)
}

// line renders one plan row. acts is the per-node actual output counts of an
// EXPLAIN ANALYZE run (nil for plain EXPLAIN). The format is stable and
// byte-deterministic — the EXPLAIN golden test and the A-PLAN decision log
// both pin it:
//
//	<2·depth spaces><op> <detail> (est=<rows>[ cost=<rows examined>][ act=<rows>])
func (n *planNode) line(depth int, acts []int64) string {
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(n.kind.String())
	if n.detail != "" {
		b.WriteByte(' ')
		b.WriteString(n.detail)
	}
	b.WriteString(" (est=")
	b.WriteString(estInt(n.estRows))
	if n.hasCost() {
		b.WriteString(" cost=")
		b.WriteString(estInt(n.estCost))
	}
	if acts != nil {
		b.WriteString(" act=")
		b.WriteString(strconv.FormatInt(acts[n.id], 10))
	}
	b.WriteByte(')')
	return b.String()
}

// Lines renders the plan tree top-down, one operator per line, outermost
// first. acts carries EXPLAIN ANALYZE actual row counts (nil otherwise).
func (p *Plan) Lines(acts []int64) []string {
	lines := make([]string, 0, len(p.nodes))
	depth := 0
	for _, n := range p.tail {
		lines = append(lines, n.line(depth, acts))
		depth++
	}
	for n := p.root; n != nil; n = n.input {
		lines = append(lines, n.line(depth, acts))
		depth++
	}
	return lines
}

// Explain renders the plan as a single newline-joined string — the format
// consumed by the A-PLAN decision log and the EXPLAIN golden test.
func (p *Plan) Explain() string { return strings.Join(p.Lines(nil), "\n") }

// Cost returns the plan's total estimated rows examined.
func (p *Plan) Cost() float64 { return p.totalCost }

// staleStats reports whether any table the plan touches has drifted past the
// statistics staleness threshold since the plan was built. Engine lock held.
func (p *Plan) staleStats() bool {
	for _, pt := range p.tables {
		if pt.tbl.stats.stale(len(pt.tbl.rows)) {
			return true
		}
	}
	return false
}

// Naive reports whether the naive (parity) planner built this plan.
func (p *Plan) Naive() bool { return p.naive }

// Norm returns the normalized SQL the plan was built from.
func (p *Plan) Norm() string { return p.norm }

// renderFilters renders a conjunct list as " filter (a AND b)" or "".
func renderFilters(filters []Expr) string {
	if len(filters) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString(" filter (")
	for i, f := range filters {
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteString(f.String())
	}
	b.WriteByte(')')
	return b.String()
}

// exprList renders a comma-separated expression list.
func exprList(es []Expr) string {
	var b strings.Builder
	for i, e := range es {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	return b.String()
}
