// Package sqlengine is an embeddable in-memory relational engine with a
// MySQL-flavored SQL dialect: typed tables with primary keys and secondary
// indexes, INSERT/UPDATE/DELETE/SELECT (joins, aggregates, ORDER BY/LIMIT),
// MVCC row versioning with snapshot-isolated transactions (mvcc.go),
// positional parameters, and a statement-commit hook that feeds
// statement-based replication.
//
// The engine stands in for MySQL 5.x in the paper's experiments. Two
// properties matter for fidelity: per-statement execution statistics (rows
// examined/affected) drive the virtual CPU cost model, and time builtins
// (UTC_MICROS, NOW) are evaluated against the *local* instance clock at
// execution time, so a replicated heartbeat INSERT commits the slave's own
// timestamp when the slave's SQL thread re-executes it — the paper's delay
// measurement methodology.
package sqlengine

import (
	"fmt"
	"strings"
	"sync"
)

// StmtClass classifies a statement for cost accounting and routing.
type StmtClass uint8

// Statement classes.
const (
	ClassRead  StmtClass = iota // SELECT
	ClassWrite                  // INSERT, UPDATE, DELETE
	ClassDDL                    // CREATE, DROP, TRUNCATE
	ClassTxn                    // BEGIN, COMMIT, ROLLBACK, USE
)

func (c StmtClass) String() string {
	switch c {
	case ClassRead:
		return "read"
	case ClassWrite:
		return "write"
	case ClassDDL:
		return "ddl"
	default:
		return "txn"
	}
}

// ExecStats describes the work one statement performed; the server layer
// converts it to virtual CPU time.
type ExecStats struct {
	RowsExamined int
	RowsReturned int
	RowsAffected int
	UsedIndex    bool
	Class        StmtClass
}

// ResultSet is the rows returned by a SELECT.
type ResultSet struct {
	Columns []string
	Rows    [][]Value
}

// Result is the outcome of executing one statement.
type Result struct {
	Set   *ResultSet // nil for non-SELECT
	Stats ExecStats
	// SQL is the fully-bound statement text (parameters interpolated) —
	// what a statement-format binlog records for write statements. Reads
	// leave it empty: nothing replicates a SELECT, and rendering one per
	// query was a measurable share of hot-path allocation.
	SQL string
	// RowSQL carries the row-image statements (one per affected row) that
	// a row-format binlog records instead of SQL.
	RowSQL []string
}

// CommitHook observes committed write statements in commit order. database
// is the session's current database; sqls are replayable statement texts.
type CommitHook func(database string, sqls []string)

// BinlogFormat selects how committed writes are rendered for replication.
type BinlogFormat uint8

const (
	// FormatStatement logs the original statement text; non-deterministic
	// builtins (UTC_MICROS) re-evaluate on each replica — MySQL SBR and
	// the mode the paper's heartbeat methodology depends on.
	FormatStatement BinlogFormat = iota
	// FormatRow logs deterministic per-row images (literal values fixed at
	// the master) — MySQL RBR. Replicas apply exactly the master's values,
	// so the heartbeat trick stops working (the negative control).
	FormatRow
)

// Engine is a single server's database engine: a set of databases, a parse
// cache, a local-time source for time builtins and a commit hook feeding
// the binlog.
type Engine struct {
	mu  sync.RWMutex
	dbs map[string]*Database

	// NowMicros supplies local time in microseconds for UTC_MICROS()/NOW().
	// The database server binds it to its instance's drifting clock.
	NowMicros func() int64
	// Format selects statement- or row-based rendering for the commit hook.
	Format BinlogFormat
	// OnCommit, when non-nil, receives every committed write statement.
	OnCommit CommitHook

	// MVCC state (mvcc.go): commitV is the engine's commit counter — every
	// finalized write statement or transaction takes the next version, and
	// replicas additionally advance it to the applied binlog sequence. pins
	// holds versions kept alive by open SnapshotHandles, txns the sessions
	// with open transactions, provisional the outstanding in-transaction
	// stamps (the fast-path read check), sinceGC the commits since the last
	// chain-GC sweep.
	commitV     uint64
	pins        []uint64
	txns        []*Session
	provisional int
	sinceGC     int

	gcRuns     uint64
	gcVersions uint64
	gcRows     uint64

	parseCache sync.Map // sql string -> parseEntry

	// Planner state (planner.go, prepare.go). statsEpoch advances on
	// ANALYZE, DDL and snapshot Restore; a cached *Plan embeds table and
	// index pointers plus cost estimates, so any epoch mismatch retires it.
	// planCache is keyed on db + normalized SQL + planner mode and, like the
	// catalog it points into, is only touched under mu.
	statsEpoch uint64
	planCache  map[string]*Plan

	// NaivePlan forces the syntax-order, no-pushdown planner for every
	// statement — the A-PLAN ablation's baseline arm, mirroring the
	// pre-planner executor's access-path choices exactly.
	NaivePlan bool
}

// parseEntry is a parse-cache value: the immutable AST plus its canonical
// String rendering (which keys the plan cache across textual variants) and
// parameter count, both computed once per distinct text.
type parseEntry struct {
	stmt    Stmt
	norm    string
	nparams int
}

// Database is a named collection of tables.
type Database struct {
	Name   string
	tables map[string]*Table
}

// Tables returns the table map (keyed by lower-case name).
func (d *Database) Tables() map[string]*Table { return d.tables }

// Table looks up a table by case-insensitive name.
func (d *Database) Table(name string) (*Table, bool) {
	t, ok := d.tables[strings.ToLower(name)]
	return t, ok
}

// NewEngine creates an empty engine. Time builtins read zero until
// NowMicros is set.
func NewEngine() *Engine {
	return &Engine{
		dbs:       make(map[string]*Database),
		NowMicros: func() int64 { return 0 },
		planCache: make(map[string]*Plan),
	}
}

// CreateDatabase creates a database, erroring if it exists (unless ifNotExists).
func (e *Engine) CreateDatabase(name string, ifNotExists bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.createDatabaseLocked(name, ifNotExists)
}

// Database returns a database by case-insensitive name.
func (e *Engine) Database(name string) (*Database, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	d, ok := e.dbs[strings.ToLower(name)]
	return d, ok
}

// Databases lists database names.
func (e *Engine) Databases() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []string
	for _, d := range e.dbs {
		out = append(out, d.Name)
	}
	return out
}

// parse returns the cached AST for sql, parsing on first use. Cached ASTs
// are never mutated: execution works on bound copies.
func (e *Engine) parse(sql string) (Stmt, error) {
	ent, err := e.parseEntry(sql)
	if err != nil {
		return nil, err
	}
	return ent.stmt, nil
}

// parseEntry returns the cached AST plus its normalized rendering, parsing
// and rendering on first use.
func (e *Engine) parseEntry(sql string) (parseEntry, error) {
	if v, ok := e.parseCache.Load(sql); ok {
		return v.(parseEntry), nil
	}
	stmt, err := Parse(sql)
	if err != nil {
		return parseEntry{}, err
	}
	ent := parseEntry{stmt: stmt, norm: stmt.String(), nparams: countParams(stmt)}
	e.parseCache.Store(sql, ent)
	return ent, nil
}

// Session is a connection-scoped execution context: current database,
// transaction state and undo log.
type Session struct {
	eng *Engine
	db  string

	inTxn   bool
	readV   uint64   // snapshot read version while inTxn (set at BEGIN)
	pending []string // bound SQL texts awaiting commit, in order
	undo    []func() // undo actions, applied in reverse on rollback
	// stamps finalize provisional MVCC version marks with the commit
	// version assigned at commit time (mvcc.go).
	stamps []func(cv uint64)
	// provisional counts this session's outstanding in-transaction stamps,
	// mirrored into Engine.provisional for the fast-path read check.
	provisional int
}

// NewSession opens a session with the given current database (may be "").
func (e *Engine) NewSession(db string) *Session {
	return &Session{eng: e, db: db}
}

// DB returns the session's current database name.
func (s *Session) DB() string { return s.db }

// InTxn reports whether an explicit transaction is open.
func (s *Session) InTxn() bool { return s.inTxn }

// Exec parses (with caching) and executes one statement with args.
//
// Deprecated: Exec remains as a compatibility shim over the prepared
// statement API and behaves identically. New code should use Engine.Prepare
// once and Statement.Run per call, which makes the parse/plan reuse explicit
// and exposes the plan via Statement.Plan.
func (s *Session) Exec(sql string, args ...Value) (*Result, error) {
	stmt, err := s.eng.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return stmt.Run(s, args...)
}

// ExecUncached parses and executes one statement without touching the
// parse cache. Replication apply uses it: replicated texts carry
// interpolated literals, so they would never hit the cache again — caching
// them only grows it without bound over a run.
func (s *Session) ExecUncached(sql string, args ...Value) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.ExecStmt(stmt, args...)
}

// ExecStmt executes a pre-parsed statement with bound args.
//
// Reads (SELECT, EXPLAIN) are not bound: the planner works on the original
// parameterized AST so one cached plan serves every argument vector, and the
// executor resolves ? placeholders against args at evaluation time. Writes
// still bind eagerly — the binlog replicates their interpolated text.
func (s *Session) ExecStmt(stmt Stmt, args ...Value) (*Result, error) {
	bound := stmt
	var readArgs []Value
	switch stmt.(type) {
	case *SelectStmt, *ExplainStmt:
		readArgs = args
	default:
		if len(args) > 0 || hasParams(stmt) {
			var err error
			bound, err = Bind(stmt, args)
			if err != nil {
				return nil, err
			}
		}
	}
	switch st := bound.(type) {
	case *BeginStmt:
		if s.inTxn {
			return nil, fmt.Errorf("sqlengine: nested BEGIN")
		}
		// Snapshot isolation: every read inside the transaction resolves
		// against the commit version current at BEGIN.
		s.eng.mu.Lock()
		s.inTxn = true
		s.readV = s.eng.commitV
		s.eng.txns = append(s.eng.txns, s)
		s.eng.mu.Unlock()
		return &Result{Stats: ExecStats{Class: ClassTxn}, SQL: "BEGIN"}, nil
	case *CommitStmt:
		s.commit()
		return &Result{Stats: ExecStats{Class: ClassTxn}, SQL: "COMMIT"}, nil
	case *RollbackStmt:
		s.rollback()
		return &Result{Stats: ExecStats{Class: ClassTxn}, SQL: "ROLLBACK"}, nil
	case *UseStmt:
		if _, ok := s.eng.Database(st.DB); !ok {
			return nil, fmt.Errorf("sqlengine: unknown database %s", st.DB)
		}
		s.db = st.DB
		return &Result{Stats: ExecStats{Class: ClassTxn}, SQL: bound.String()}, nil
	}

	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	res, err := s.eng.execLocked(s, bound, readArgs)
	if err != nil {
		return nil, err
	}
	if res.Stats.Class == ClassWrite && !s.inTxn {
		// Autocommit: the statement is its own commit — stamp its version
		// marks before the lock drops and anything else can observe them.
		s.finalizeStampsLocked()
	}
	if res.Stats.Class == ClassWrite || res.Stats.Class == ClassDDL {
		s.recordCommit(res)
	}
	return res, nil
}

// Query is Exec for statements expected to return rows.
func (s *Session) Query(sql string, args ...Value) (*ResultSet, error) {
	res, err := s.Exec(sql, args...)
	if err != nil {
		return nil, err
	}
	if res.Set == nil {
		return nil, fmt.Errorf("sqlengine: statement returned no result set")
	}
	return res.Set, nil
}

// recordCommit routes a completed write to the commit hook, immediately in
// autocommit mode or buffered until COMMIT inside a transaction. DDL always
// commits immediately (MySQL's implicit-commit behaviour).
func (s *Session) recordCommit(res *Result) {
	sqls := []string{res.SQL}
	if s.eng.Format == FormatRow && res.Stats.Class == ClassWrite {
		sqls = res.RowSQL
		if len(sqls) == 0 {
			return // write touched no rows: nothing to replicate
		}
	}
	if res.Stats.Class == ClassDDL || !s.inTxn {
		// An implicitly-committing statement flushes any open transaction
		// first, preserving order. recordCommit always runs with the engine
		// lock held, so the locked commit form is required here.
		if res.Stats.Class == ClassDDL && s.inTxn {
			s.commitLocked()
		}
		if s.eng.OnCommit != nil {
			s.eng.OnCommit(s.db, sqls)
		}
		return
	}
	s.pending = append(s.pending, sqls...)
}

func (s *Session) commit() {
	s.eng.mu.Lock()
	s.commitLocked()
	s.eng.mu.Unlock()
}

// commitLocked finalizes the transaction under the engine lock: provisional
// MVCC marks take the next commit version, buffered statements reach the
// binlog hook, and the session leaves the engine's open-transaction set.
func (s *Session) commitLocked() {
	s.finalizeStampsLocked()
	if s.inTxn && len(s.pending) > 0 && s.eng.OnCommit != nil {
		s.eng.OnCommit(s.db, s.pending)
	}
	s.eng.dropTxnLocked(s)
	s.pending = nil
	s.undo = nil
	s.inTxn = false
}

// rollback is the write-side abort path: the undo log physically restores
// heap/index state and pops the chain entries the transaction pushed, and
// the provisional version marks are discarded unstamped.
func (s *Session) rollback() {
	s.eng.mu.Lock()
	for i := len(s.undo) - 1; i >= 0; i-- {
		s.undo[i]()
	}
	s.eng.provisional -= s.provisional
	s.provisional = 0
	s.stamps = nil
	s.eng.dropTxnLocked(s)
	s.eng.mu.Unlock()
	s.pending = nil
	s.undo = nil
	s.inTxn = false
}

// addUndo records an undo action when inside a transaction.
func (s *Session) addUndo(fn func()) {
	if s.inTxn {
		s.undo = append(s.undo, fn)
	}
}

// resolveTable finds the table named by ref in the session's engine.
func (s *Session) resolveTable(ref TableRef) (*Database, *Table, error) {
	dbName := ref.DB
	if dbName == "" {
		dbName = s.db
	}
	if dbName == "" {
		return nil, nil, fmt.Errorf("sqlengine: no database selected")
	}
	db, ok := s.eng.dbs[strings.ToLower(dbName)]
	if !ok {
		return nil, nil, fmt.Errorf("sqlengine: unknown database %s", dbName)
	}
	t, ok := db.Table(ref.Name)
	if !ok {
		return db, nil, fmt.Errorf("sqlengine: unknown table %s.%s", dbName, ref.Name)
	}
	return db, t, nil
}

// hasParams reports whether any Param node appears in the statement.
func hasParams(stmt Stmt) bool {
	found := false
	walkStmt(stmt, func(e Expr) {
		if _, ok := e.(*Param); ok {
			found = true
		}
	})
	return found
}

// walkStmt visits every expression in a statement.
func walkStmt(stmt Stmt, visit func(Expr)) {
	switch s := stmt.(type) {
	case *ExplainStmt:
		walkStmt(s.Inner, visit)
	case *InsertStmt:
		for _, row := range s.Rows {
			for _, e := range row {
				walkExpr(e, visit)
			}
		}
	case *UpdateStmt:
		for _, a := range s.Sets {
			walkExpr(a.Value, visit)
		}
		walkExpr(s.Where, visit)
	case *DeleteStmt:
		walkExpr(s.Where, visit)
	case *SelectStmt:
		for _, se := range s.Exprs {
			walkExpr(se.Expr, visit)
		}
		for _, j := range s.Joins {
			walkExpr(j.On, visit)
		}
		walkExpr(s.Where, visit)
		for _, g := range s.GroupBy {
			walkExpr(g, visit)
		}
		walkExpr(s.Having, visit)
		for _, o := range s.OrderBy {
			walkExpr(o.Expr, visit)
		}
		walkExpr(s.Limit, visit)
		walkExpr(s.Offset, visit)
	}
}

// walkExpr visits e and its children.
func walkExpr(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch e := e.(type) {
	case *Unary:
		walkExpr(e.X, visit)
	case *Binary:
		walkExpr(e.L, visit)
		walkExpr(e.R, visit)
	case *FuncCall:
		for _, a := range e.Args {
			walkExpr(a, visit)
		}
	case *InExpr:
		walkExpr(e.X, visit)
		for _, it := range e.List {
			walkExpr(it, visit)
		}
	case *BetweenExpr:
		walkExpr(e.X, visit)
		walkExpr(e.Lo, visit)
		walkExpr(e.Hi, visit)
	case *IsNullExpr:
		walkExpr(e.X, visit)
	case *LikeExpr:
		walkExpr(e.X, visit)
		walkExpr(e.Pattern, visit)
	}
}
