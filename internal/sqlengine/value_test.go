package sqlengine

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(42); v.Kind() != KindInt || v.Int() != 42 {
		t.Fatalf("NewInt: %v/%v", v.Kind(), v.Int())
	}
	if v := NewFloat(2.5); v.Kind() != KindFloat || v.Float() != 2.5 {
		t.Fatalf("NewFloat: %v/%v", v.Kind(), v.Float())
	}
	if v := NewString("x"); v.Kind() != KindString || v.Str() != "x" {
		t.Fatalf("NewString: %v/%v", v.Kind(), v.Str())
	}
	if v := NewBool(true); v.Kind() != KindBool || !v.Bool() {
		t.Fatalf("NewBool: %v/%v", v.Kind(), v.Bool())
	}
	if v := NewTime(123456); v.Kind() != KindTime || v.Micros() != 123456 {
		t.Fatalf("NewTime: %v/%v", v.Kind(), v.Micros())
	}
	if !Null.IsNull() || Null.Bool() {
		t.Fatal("Null misbehaves")
	}
}

func TestValueFloatCoercesInt(t *testing.T) {
	if f := NewInt(7).Float(); f != 7.0 {
		t.Fatalf("int→float = %v", f)
	}
}

func TestCompareNumericAcrossKinds(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewFloat(2.5), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewBool(true), NewInt(1), 0},
		{NewTime(100), NewInt(100), 0},
		{NewString("abc"), NewString("abd"), -1},
		{NewString("10"), NewInt(9), 1}, // numeric parse of string
		{NewString("abc"), NewString("abc"), 0},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
	}
	for _, tc := range cases {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSQLRenderingEscapesQuotes(t *testing.T) {
	v := NewString("o'brien")
	if got := v.SQL(); got != "'o''brien'" {
		t.Fatalf("SQL() = %q", got)
	}
	if got := NewInt(-5).SQL(); got != "-5" {
		t.Fatalf("SQL() = %q", got)
	}
	if got := Null.SQL(); got != "NULL" {
		t.Fatalf("SQL() = %q", got)
	}
	if got := NewBool(true).SQL(); got != "TRUE" {
		t.Fatalf("SQL() = %q", got)
	}
}

func TestKeyEqualValuesShareKeys(t *testing.T) {
	if NewInt(1).key() != NewFloat(1.0).key() {
		t.Fatal("1 and 1.0 have different index keys")
	}
	if NewInt(1).key() != NewBool(true).key() {
		t.Fatal("1 and TRUE have different index keys")
	}
	if NewInt(1).key() == NewString("1").key() {
		t.Fatal("int 1 and string \"1\" share an index key")
	}
}

// Property: Compare is antisymmetric and consistent with Equal for random
// integer and string values.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64, sa, sb string) bool {
		va, vb := NewInt(a), NewInt(b)
		if Compare(va, vb) != -Compare(vb, va) {
			return false
		}
		ws, wt := NewString(sa), NewString(sb)
		if Compare(ws, wt) != -Compare(wt, ws) {
			return false
		}
		return Equal(va, va) && Equal(ws, ws)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SQL rendering of a string value always round-trips through the
// lexer as a single string token with the original content.
func TestStringSQLRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		// The lexer handles ASCII input; interpolated values in this
		// codebase are ASCII identifiers and text.
		for _, r := range s {
			if r < 32 || r > 126 {
				return true
			}
		}
		if len(s) > 200 {
			return true
		}
		toks, err := lex(NewString(s).SQL())
		if err != nil {
			return false
		}
		return len(toks) == 2 && toks[0].kind == tokString && toks[0].text == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
