package sqlengine

// Iterator operators execute a Plan's relational chain. Each operator fills
// its scope slot (sc.tables[slot].vals) and pulls from its outer input; the
// scope itself is the current row, so expression evaluation needs no
// per-operator row buffers. A true next() leaves every slot at or below the
// operator populated; the executor (exec.go) materializes surviving rows
// into jrows for the projection/aggregation tail.
//
// Plans never fix visibility: at execution time a latest-version reader uses
// heaps and indexes directly, while a snapshot reader (behind the latest
// commit, or with concurrent provisional writers) degrades every index
// access to a chain-resolving visible-image scan. The recheck filters the
// planner leaves on index and join nodes keep degraded access exact.

// execCtx is the per-execution state shared by a pipeline's operators.
type execCtx struct {
	e     *Engine
	s     *Session
	sc    *scope
	readV uint64
	mvcc  bool // chain-resolving visibility scan required
	stats *ExecStats
	acts  []int64 // EXPLAIN ANALYZE per-node output counts (nil otherwise)
}

func (c *execCtx) emit(n *planNode) {
	if c.acts != nil {
		c.acts[n.id]++
	}
}

// rowIter is the operator interface: next advances to the following row,
// returning false at end of stream.
type rowIter interface {
	next() (bool, error)
}

// buildIter constructs the iterator pipeline for a plan chain.
func buildIter(ctx *execCtx, n *planNode) rowIter {
	switch n.kind {
	case opScan, opIndexScan:
		return &scanIter{ctx: ctx, n: n}
	case opFilter:
		return &filterIter{ctx: ctx, n: n, input: buildIter(ctx, n.input)}
	default:
		return &joinIter{ctx: ctx, n: n, input: buildIter(ctx, n.input)}
	}
}

// evalFilters evaluates a conjunct list against the current scope row,
// stopping at the first non-true conjunct (matching AND short-circuit).
func evalFilters(sc *scope, filters []Expr) (bool, error) {
	for _, f := range filters {
		v, err := sc.eval(f)
		if err != nil {
			return false, err
		}
		if v.IsNull() || !v.Bool() {
			return false, nil
		}
	}
	return true, nil
}

// scanIter is the driving access: full heap scan or index-equality bucket,
// degraded to a visible-image scan for snapshot readers.
type scanIter struct {
	ctx    *execCtx
	n      *planNode
	inited bool
	rows   []*Row    // latest-version candidates
	images [][]Value // snapshot-reader candidates
	i      int
}

func (it *scanIter) init() error {
	it.inited = true
	ctx, n := it.ctx, it.n
	if ctx.mvcc {
		// Indexes cover only latest images: resolve visibility through the
		// chains over heap plus graveyard, then rely on the node's filters
		// (which include the index equality as a recheck) for exactness.
		it.images = n.tbl.scanVisible(ctx.s, ctx.readV)
		ctx.stats.RowsExamined += len(it.images)
		return nil
	}
	if n.kind == opIndexScan {
		// The key expression is runtime-const; an evaluation error falls
		// back to the full scan, surfacing the error through the residual
		// predicate exactly where the pre-planner executor surfaced it.
		if v, err := ctx.sc.eval(n.eqExpr); err == nil {
			if rows, usable := n.tbl.lookupEq(n.eqCol, v); usable {
				it.rows = rows
				ctx.stats.RowsExamined += len(rows)
				ctx.stats.UsedIndex = true
				return nil
			}
		}
	}
	it.rows = n.tbl.Rows()
	ctx.stats.RowsExamined += len(it.rows)
	return nil
}

func (it *scanIter) next() (bool, error) {
	if !it.inited {
		if err := it.init(); err != nil {
			return false, err
		}
	}
	sc, n := it.ctx.sc, it.n
	for {
		var vals []Value
		if it.images != nil {
			if it.i >= len(it.images) {
				return false, nil
			}
			vals = it.images[it.i]
		} else {
			if it.i >= len(it.rows) {
				return false, nil
			}
			vals = it.rows[it.i].vals
		}
		it.i++
		sc.tables[n.slot].vals = vals
		ok, err := evalFilters(sc, n.filters)
		if err != nil {
			return false, err
		}
		if ok {
			it.ctx.emit(n)
			return true, nil
		}
	}
}

// filterIter applies residual conjuncts over fully joined rows.
type filterIter struct {
	ctx   *execCtx
	n     *planNode
	input rowIter
}

func (it *filterIter) next() (bool, error) {
	for {
		ok, err := it.input.next()
		if err != nil || !ok {
			return false, err
		}
		pass, err := evalFilters(it.ctx.sc, it.n.filters)
		if err != nil {
			return false, err
		}
		if pass {
			it.ctx.emit(it.n)
			return true, nil
		}
	}
}

// joinIter executes nl_join, inl_join and hash_join nodes. All three share
// one loop: per outer row, produce the candidate inner rows, run the node's
// filters on each pair, and null-extend on a LEFT join with no survivor.
// Candidate production is what differs:
//
//   - nl_join: the whole inner heap per outer row.
//   - inl_join: the index-equality bucket for the outer key; a key
//     evaluation error falls back to the full heap (the residual equality
//     filter then reports the error against the first pair, exactly as the
//     pre-planner nested loop did).
//   - hash_join: a one-time build of inner rows keyed by the join column,
//     probed per outer row. Per-key buckets keep heap insertion order, so
//     output order is identical to the nested loop's.
//
// A snapshot reader degrades nl/inl to a nested loop over the inner table's
// visible images (resolved once, reused for every outer row); hash builds
// from the same visible images and needs no further degradation.
type joinIter struct {
	ctx   *execCtx
	n     *planNode
	input rowIter

	// inner-side candidate sources, resolved lazily
	images     []([]Value) // visible images (snapshot readers)
	haveImages bool
	built      bool
	buckets    map[string][][]Value // hash build, keyed by Value.appendKey
	kb         []byte               // hash key scratch

	// per-outer iteration state
	rowMatches []*Row    // latest-version candidates (nl/inl)
	valMatches [][]Value // image or hash-bucket candidates
	mi         int
	active     bool // an outer row is in flight
	matched    bool // it produced at least one surviving pair
}

func (it *joinIter) innerImages() [][]Value {
	if !it.haveImages {
		it.images = it.n.tbl.scanVisible(it.ctx.s, it.ctx.readV)
		it.haveImages = true
	}
	return it.images
}

// build constructs the hash table over the inner side. NULL keys never join,
// so they are left out of the table entirely.
func (it *joinIter) build() {
	it.built = true
	it.buckets = make(map[string][][]Value)
	add := func(vals []Value) {
		v := vals[it.n.eqCol]
		if v.IsNull() {
			return
		}
		it.kb = v.appendKey(it.kb[:0])
		it.buckets[string(it.kb)] = append(it.buckets[string(it.kb)], vals)
	}
	if it.ctx.mvcc {
		for _, vals := range it.innerImages() {
			add(vals)
		}
		it.ctx.stats.RowsExamined += len(it.images)
	} else {
		rows := it.n.tbl.Rows()
		for _, r := range rows {
			add(r.vals)
		}
		it.ctx.stats.RowsExamined += len(rows)
	}
}

// beginOuter resolves the candidate inner rows for the outer row currently
// in scope.
func (it *joinIter) beginOuter() error {
	ctx, n := it.ctx, it.n
	it.rowMatches, it.valMatches = nil, nil
	switch {
	case n.kind == opHashJoin:
		if !it.built {
			it.build()
		}
		if len(it.buckets) == 0 {
			return nil // empty build: probe keys need not be evaluated
		}
		v, err := ctx.sc.eval(n.eqExpr)
		if err != nil {
			return err
		}
		if v.IsNull() {
			return nil
		}
		it.kb = v.appendKey(it.kb[:0])
		it.valMatches = it.buckets[string(it.kb)]
		ctx.stats.RowsExamined += len(it.valMatches)
	case ctx.mvcc:
		// nl/inl degrade to a nested loop over visible images.
		it.valMatches = it.innerImages()
		ctx.stats.RowsExamined += len(it.valMatches)
	case n.kind == opINLJoin:
		indexed := false
		if v, err := ctx.sc.eval(n.eqExpr); err == nil {
			if rows, usable := n.tbl.lookupEq(n.eqCol, v); usable {
				it.rowMatches = rows
				indexed = true
			}
		}
		if !indexed {
			it.rowMatches = n.tbl.Rows()
		}
		ctx.stats.RowsExamined += len(it.rowMatches)
	default: // opNLJoin
		it.rowMatches = n.tbl.Rows()
		ctx.stats.RowsExamined += len(it.rowMatches)
	}
	return nil
}

func (it *joinIter) next() (bool, error) {
	sc, n := it.ctx.sc, it.n
	for {
		if !it.active {
			ok, err := it.input.next()
			if err != nil || !ok {
				return false, err
			}
			if err := it.beginOuter(); err != nil {
				return false, err
			}
			it.active, it.matched, it.mi = true, false, 0
		}
		nm := len(it.rowMatches) + len(it.valMatches)
		for it.mi < nm {
			var vals []Value
			if it.rowMatches != nil {
				vals = it.rowMatches[it.mi].vals
			} else {
				vals = it.valMatches[it.mi]
			}
			it.mi++
			sc.tables[n.slot].vals = vals
			ok, err := evalFilters(sc, n.filters)
			if err != nil {
				return false, err
			}
			if ok {
				it.matched = true
				it.ctx.emit(n)
				return true, nil
			}
		}
		it.active = false
		if !it.matched && n.left {
			sc.tables[n.slot].vals = nil
			it.ctx.emit(n)
			return true, nil
		}
	}
}
