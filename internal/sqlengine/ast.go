package sqlengine

import (
	"fmt"
	"strings"
)

// Stmt is a parsed SQL statement (the AST root). String renders it back to
// SQL; for statements with bound parameters, rendering after Bind produces
// the fully-interpolated text recorded in the binlog. The canonical String
// rendering also serves as the normalized-SQL key of the plan cache: two
// texts differing only in whitespace or keyword case share one entry.
//
// Stmt is the raw parse-tree layer. The prepared-statement handle the engine
// hands out is *Statement (prepare.go), which wraps a Stmt together with its
// normalization and plan-cache identity.
type Stmt interface {
	String() string
	stmt()
}

// TableRef names a table, optionally database-qualified and aliased.
type TableRef struct {
	DB    string
	Name  string
	Alias string
}

func (t TableRef) String() string {
	s := t.Name
	if t.DB != "" {
		s = t.DB + "." + t.Name
	}
	if t.Alias != "" {
		s += " AS " + t.Alias
	}
	return s
}

// refName returns the name the table is known by in scope.
func (t TableRef) refName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// ColumnDef defines a column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       Kind
	TypeArg    int // VARCHAR length / TIMESTAMP precision, 0 when absent
	NotNull    bool
	PrimaryKey bool
}

func (c ColumnDef) String() string {
	s := c.Name + " " + typeName(c.Type, c.TypeArg)
	if c.NotNull {
		s += " NOT NULL"
	}
	if c.PrimaryKey {
		s += " PRIMARY KEY"
	}
	return s
}

func typeName(k Kind, arg int) string {
	switch k {
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		if arg > 0 {
			return fmt.Sprintf("VARCHAR(%d)", arg)
		}
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	case KindTime:
		if arg > 0 {
			return fmt.Sprintf("TIMESTAMP(%d)", arg)
		}
		return "TIMESTAMP"
	default:
		return k.String()
	}
}

// IndexDef defines a secondary index in CREATE TABLE.
type IndexDef struct {
	Name    string
	Columns []string
	Unique  bool
}

func (ix IndexDef) String() string {
	kw := "INDEX"
	if ix.Unique {
		kw = "UNIQUE INDEX"
	}
	return fmt.Sprintf("%s %s(%s)", kw, ix.Name, strings.Join(ix.Columns, ", "))
}

// CreateDatabaseStmt is CREATE DATABASE.
type CreateDatabaseStmt struct {
	Name        string
	IfNotExists bool
}

func (s *CreateDatabaseStmt) String() string {
	ifne := ""
	if s.IfNotExists {
		ifne = "IF NOT EXISTS "
	}
	return "CREATE DATABASE " + ifne + s.Name
}
func (*CreateDatabaseStmt) stmt() {}

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Table       TableRef
	Columns     []ColumnDef
	PrimaryKey  []string // table-level PK, empty when inline
	Indexes     []IndexDef
	IfNotExists bool
}

func (s *CreateTableStmt) String() string {
	var parts []string
	for _, c := range s.Columns {
		parts = append(parts, c.String())
	}
	if len(s.PrimaryKey) > 0 {
		parts = append(parts, "PRIMARY KEY ("+strings.Join(s.PrimaryKey, ", ")+")")
	}
	for _, ix := range s.Indexes {
		parts = append(parts, ix.String())
	}
	ifne := ""
	if s.IfNotExists {
		ifne = "IF NOT EXISTS "
	}
	return "CREATE TABLE " + ifne + s.Table.String() + " (" + strings.Join(parts, ", ") + ")"
}
func (*CreateTableStmt) stmt() {}

// DropTableStmt is DROP TABLE.
type DropTableStmt struct {
	Table    TableRef
	IfExists bool
}

func (s *DropTableStmt) String() string {
	ife := ""
	if s.IfExists {
		ife = "IF EXISTS "
	}
	return "DROP TABLE " + ife + s.Table.String()
}
func (*DropTableStmt) stmt() {}

// TruncateStmt is TRUNCATE TABLE.
type TruncateStmt struct {
	Table TableRef
}

func (s *TruncateStmt) String() string { return "TRUNCATE TABLE " + s.Table.String() }
func (*TruncateStmt) stmt()            {}

// InsertStmt is INSERT INTO ... VALUES.
type InsertStmt struct {
	Table   TableRef
	Columns []string
	Rows    [][]Expr
}

func (s *InsertStmt) String() string {
	var b strings.Builder
	// Sized for the common one-row insert: replication interpolates every
	// write through here, so repeated Builder growth is measurable.
	b.Grow(64 + 16*len(s.Columns) + 24*len(s.Rows)*(1+len(s.Columns)))
	b.WriteString("INSERT INTO ")
	b.WriteString(s.Table.String())
	if len(s.Columns) > 0 {
		b.WriteString(" (")
		for i, c := range s.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c)
		}
		b.WriteString(")")
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteString(")")
	}
	return b.String()
}
func (*InsertStmt) stmt() {}

// Assignment is one SET clause of UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// UpdateStmt is UPDATE ... SET ... WHERE.
type UpdateStmt struct {
	Table TableRef
	Sets  []Assignment
	Where Expr
}

func (s *UpdateStmt) String() string {
	var sets []string
	for _, a := range s.Sets {
		sets = append(sets, a.Column+" = "+a.Value.String())
	}
	out := "UPDATE " + s.Table.String() + " SET " + strings.Join(sets, ", ")
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}
func (*UpdateStmt) stmt() {}

// DeleteStmt is DELETE FROM ... WHERE.
type DeleteStmt struct {
	Table TableRef
	Where Expr
}

func (s *DeleteStmt) String() string {
	out := "DELETE FROM " + s.Table.String()
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}
func (*DeleteStmt) stmt() {}

// SelectExpr is one projection of a SELECT.
type SelectExpr struct {
	Star  bool // SELECT *
	Expr  Expr
	Alias string
}

func (se SelectExpr) String() string {
	if se.Star {
		return "*"
	}
	s := se.Expr.String()
	if se.Alias != "" {
		s += " AS " + se.Alias
	}
	return s
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (o OrderItem) String() string {
	s := o.Expr.String()
	if o.Desc {
		s += " DESC"
	}
	return s
}

// JoinClause is an INNER/LEFT join.
type JoinClause struct {
	Left  bool
	Table TableRef
	On    Expr
}

func (j JoinClause) String() string {
	kw := "JOIN"
	if j.Left {
		kw = "LEFT JOIN"
	}
	return kw + " " + j.Table.String() + " ON " + j.On.String()
}

// SelectStmt is SELECT.
type SelectStmt struct {
	Distinct bool
	Exprs    []SelectExpr
	From     *TableRef // nil for table-less SELECT
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil when absent
	Offset   Expr

	// norm caches the canonical String() rendering used as the plan-cache
	// key. Written only under the engine mutex (planner) and cleared by the
	// binder when it copies the statement.
	norm string
}

// normKey returns the memoized canonical rendering of the statement.
func (s *SelectStmt) normKey() string {
	if s.norm == "" {
		s.norm = s.String()
	}
	return s.norm
}

func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, e := range s.Exprs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	if s.From != nil {
		b.WriteString(" FROM " + s.From.String())
	}
	for _, j := range s.Joins {
		b.WriteString(" " + j.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		var gs []string
		for _, g := range s.GroupBy {
			gs = append(gs, g.String())
		}
		b.WriteString(" GROUP BY " + strings.Join(gs, ", "))
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		var os []string
		for _, o := range s.OrderBy {
			os = append(os, o.String())
		}
		b.WriteString(" ORDER BY " + strings.Join(os, ", "))
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT " + s.Limit.String())
	}
	if s.Offset != nil {
		b.WriteString(" OFFSET " + s.Offset.String())
	}
	return b.String()
}
func (*SelectStmt) stmt() {}

// BeginStmt is BEGIN.
type BeginStmt struct{}

func (*BeginStmt) String() string { return "BEGIN" }
func (*BeginStmt) stmt()          {}

// CommitStmt is COMMIT.
type CommitStmt struct{}

func (*CommitStmt) String() string { return "COMMIT" }
func (*CommitStmt) stmt()          {}

// RollbackStmt is ROLLBACK.
type RollbackStmt struct{}

func (*RollbackStmt) String() string { return "ROLLBACK" }
func (*RollbackStmt) stmt()          {}

// UseStmt is USE db.
type UseStmt struct{ DB string }

func (s *UseStmt) String() string { return "USE " + s.DB }
func (*UseStmt) stmt()            {}

// Expr is an expression node.
type Expr interface {
	String() string
	expr()
}

// Literal is a constant value.
type Literal struct{ V Value }

func (l *Literal) String() string { return l.V.SQL() }
func (*Literal) expr()            {}

// Param is a positional ? placeholder.
type Param struct{ Index int }

func (*Param) String() string { return "?" }
func (*Param) expr()          {}

// ColRef references a column, optionally qualified by table name or alias.
// The unexported fields memoize name resolution: parsed ASTs are cached
// and re-executed many times, and resolving the same column to the same
// position on every row was the single hottest line of the executor. The
// cache is written only under the engine's execution mutex (the binder
// shares ColRef nodes rather than cloning them, so bound statements reuse
// it too) and is keyed by table pointer, so DDL that rebuilds a table
// invalidates it naturally.
type ColRef struct {
	Table, Name string

	lname string // Table lowered once, "" until first qualified resolve
	ctbl  *Table // table the ref last resolved against
	cpos  int    // column position in ctbl
}

func (c *ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}
func (*ColRef) expr() {}

// Unary is NOT x or -x.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

func (u *Unary) String() string {
	// Fully parenthesized so the rendering re-parses at any precedence
	// level (e.g. as a BETWEEN operand).
	if u.Op == "NOT" {
		return "(NOT (" + u.X.String() + "))"
	}
	return "(-(" + u.X.String() + "))"
}
func (*Unary) expr() {}

// Binary is a binary operation: comparison, logic or arithmetic.
type Binary struct {
	Op   string // = != <> < <= > >= AND OR + - * / %
	L, R Expr
}

func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}
func (*Binary) expr() {}

// FuncCall is a builtin or aggregate call.
type FuncCall struct {
	Name     string // uppercased
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	var args []string
	for _, a := range f.Args {
		args = append(args, a.String())
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return f.Name + "(" + d + strings.Join(args, ", ") + ")"
}
func (*FuncCall) expr() {}

// InExpr is x [NOT] IN (list).
type InExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

func (e *InExpr) String() string {
	var items []string
	for _, it := range e.List {
		items = append(items, it.String())
	}
	op := " IN "
	if e.Not {
		op = " NOT IN "
	}
	return "(" + e.X.String() + op + "(" + strings.Join(items, ", ") + "))"
}
func (*InExpr) expr() {}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

func (e *BetweenExpr) String() string {
	op := " BETWEEN "
	if e.Not {
		op = " NOT BETWEEN "
	}
	return "(" + e.X.String() + op + e.Lo.String() + " AND " + e.Hi.String() + ")"
}
func (*BetweenExpr) expr() {}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

func (e *IsNullExpr) String() string {
	if e.Not {
		return "(" + e.X.String() + " IS NOT NULL)"
	}
	return "(" + e.X.String() + " IS NULL)"
}
func (*IsNullExpr) expr() {}

// LikeExpr is x [NOT] LIKE pattern.
type LikeExpr struct {
	X, Pattern Expr
	Not        bool
}

func (e *LikeExpr) String() string {
	op := " LIKE "
	if e.Not {
		op = " NOT LIKE "
	}
	return "(" + e.X.String() + op + e.Pattern.String() + ")"
}
func (*LikeExpr) expr() {}

// Bind returns a deep copy of stmt with every Param replaced by the
// corresponding argument as a literal. The rendered String of the result is
// the replayable statement text that goes into the binlog.
func Bind(stmt Stmt, args []Value) (Stmt, error) {
	b := &binder{args: args}
	out := b.stmt(stmt)
	if b.err != nil {
		return nil, b.err
	}
	if b.used != len(args) {
		return nil, fmt.Errorf("sqlengine: statement has %d parameters but %d arguments given", b.used, len(args))
	}
	return out, nil
}

type binder struct {
	args []Value
	used int
	err  error
}

func (b *binder) stmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *ExplainStmt:
		return &ExplainStmt{Inner: b.stmt(s.Inner)}
	case *InsertStmt:
		out := *s
		out.Rows = make([][]Expr, len(s.Rows))
		for i, row := range s.Rows {
			out.Rows[i] = b.exprs(row)
		}
		return &out
	case *UpdateStmt:
		out := *s
		out.Sets = make([]Assignment, len(s.Sets))
		for i, a := range s.Sets {
			out.Sets[i] = Assignment{a.Column, b.expr(a.Value)}
		}
		out.Where = b.expr(s.Where)
		return &out
	case *DeleteStmt:
		out := *s
		out.Where = b.expr(s.Where)
		return &out
	case *SelectStmt:
		out := *s
		out.norm = "" // bound copy renders differently from the original
		out.Exprs = make([]SelectExpr, len(s.Exprs))
		for i, se := range s.Exprs {
			out.Exprs[i] = SelectExpr{se.Star, b.expr(se.Expr), se.Alias}
		}
		out.Joins = make([]JoinClause, len(s.Joins))
		for i, j := range s.Joins {
			out.Joins[i] = JoinClause{j.Left, j.Table, b.expr(j.On)}
		}
		out.Where = b.expr(s.Where)
		out.GroupBy = b.exprs(s.GroupBy)
		out.Having = b.expr(s.Having)
		out.OrderBy = make([]OrderItem, len(s.OrderBy))
		for i, o := range s.OrderBy {
			out.OrderBy[i] = OrderItem{b.expr(o.Expr), o.Desc}
		}
		out.Limit = b.expr(s.Limit)
		out.Offset = b.expr(s.Offset)
		return &out
	default:
		return s
	}
}

func (b *binder) exprs(es []Expr) []Expr {
	if es == nil {
		return nil
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = b.expr(e)
	}
	return out
}

func (b *binder) expr(e Expr) Expr {
	if e == nil || b.err != nil {
		return e
	}
	switch e := e.(type) {
	case *Param:
		if e.Index >= len(b.args) {
			b.err = fmt.Errorf("sqlengine: missing argument for parameter %d", e.Index+1)
			return e
		}
		b.used++
		return &Literal{b.args[e.Index]}
	case *Literal, *ColRef:
		return e
	case *Unary:
		return &Unary{e.Op, b.expr(e.X)}
	case *Binary:
		return &Binary{e.Op, b.expr(e.L), b.expr(e.R)}
	case *FuncCall:
		return &FuncCall{e.Name, b.exprs(e.Args), e.Star, e.Distinct}
	case *InExpr:
		return &InExpr{b.expr(e.X), b.exprs(e.List), e.Not}
	case *BetweenExpr:
		return &BetweenExpr{b.expr(e.X), b.expr(e.Lo), b.expr(e.Hi), e.Not}
	case *IsNullExpr:
		return &IsNullExpr{b.expr(e.X), e.Not}
	case *LikeExpr:
		return &LikeExpr{b.expr(e.X), b.expr(e.Pattern), e.Not}
	default:
		b.err = fmt.Errorf("sqlengine: cannot bind expression %T", e)
		return e
	}
}
