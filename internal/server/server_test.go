package server

import (
	"strings"
	"testing"
	"time"

	"cloudrepl/internal/binlog"
	"cloudrepl/internal/cloud"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

func newTestServer(t *testing.T, seed int64) (*sim.Env, *DBServer) {
	t.Helper()
	env := sim.NewEnv(seed)
	c := cloud.New(env, cloud.Config{}) // homogeneous instances, no clock error
	inst := c.Launch("db1", cloud.Small, cloud.Placement{Region: cloud.USWest1, Zone: "a"})
	srv := New(env, "db1", inst, DefaultCostModel())
	sess := srv.Session("")
	for _, sql := range []string{
		"CREATE DATABASE app",
		"USE app",
		"CREATE TABLE t (id BIGINT PRIMARY KEY, v VARCHAR(20))",
	} {
		if _, err := srv.ExecFree(sess, sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	return env, srv
}

func TestExecChargesCPU(t *testing.T) {
	env, srv := newTestServer(t, 1)
	sess := srv.Session("app")
	var elapsed sim.Time
	env.Go("client", func(p *sim.Proc) {
		if _, err := srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (1, 'x')"); err != nil {
			t.Errorf("exec: %v", err)
		}
		elapsed = p.Now()
	})
	env.Run()
	cost := srv.Cost.StatementCost(sqlengine.ExecStats{Class: sqlengine.ClassWrite, RowsAffected: 1}, false)
	if elapsed != cost {
		t.Fatalf("write took %v, want %v", elapsed, cost)
	}
	if srv.Stats().Writes != 1 {
		t.Fatalf("stats: %+v", srv.Stats())
	}
}

func TestConcurrentStatementsQueueOnCPU(t *testing.T) {
	env, srv := newTestServer(t, 1)
	var last sim.Time
	for i := 0; i < 3; i++ {
		i := i
		sess := srv.Session("app")
		env.Go("client", func(p *sim.Proc) {
			if _, err := srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (?, 'x')", sqlengine.NewInt(int64(i))); err != nil {
				t.Errorf("exec: %v", err)
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	env.Run()
	one := srv.Cost.StatementCost(sqlengine.ExecStats{Class: sqlengine.ClassWrite, RowsAffected: 1}, false)
	if last != 3*one {
		t.Fatalf("3 writes on 1 vCPU finished at %v, want %v", last, 3*one)
	}
}

func TestSlowInstanceRunsSlower(t *testing.T) {
	env := sim.NewEnv(2)
	c := cloud.New(env, cloud.Config{CPUModels: []cloud.CPUModel{cloud.XeonE5507}})
	inst := c.Launch("slow", cloud.Small, cloud.Placement{Region: cloud.USWest1, Zone: "a"})
	srv := New(env, "slow", inst, DefaultCostModel())
	sess := srv.Session("")
	srv.ExecFree(sess, "CREATE DATABASE app")
	srv.ExecFree(sess, "USE app")
	srv.ExecFree(sess, "CREATE TABLE t (id BIGINT PRIMARY KEY)")
	var elapsed sim.Time
	env.Go("client", func(p *sim.Proc) {
		srv.Exec(p, sess, "INSERT INTO t (id) VALUES (1)")
		elapsed = p.Now()
	})
	env.Run()
	nominal := srv.Cost.StatementCost(sqlengine.ExecStats{Class: sqlengine.ClassWrite, RowsAffected: 1}, false)
	want := time.Duration(float64(nominal) / cloud.XeonE5507.Factor)
	if elapsed != want {
		t.Fatalf("write on E5507 took %v, want %v", elapsed, want)
	}
}

func TestCommittedWritesReachBinlogWithClockTimestamp(t *testing.T) {
	env, srv := newTestServer(t, 1)
	sess := srv.Session("app")
	env.RunFor(10 * time.Second) // advance the clock
	base := srv.Log.LastSeq()    // preload DDL entries
	env.Go("client", func(p *sim.Proc) {
		srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (1, 'x')")
	})
	env.Run()
	if srv.Log.LastSeq() != base+1 {
		t.Fatalf("binlog has %d entries, want %d", srv.Log.LastSeq(), base+1)
	}
	e, _ := srv.Log.At(base + 1)
	if e.Database != "app" || !strings.HasPrefix(e.SQL, "INSERT INTO t") {
		t.Fatalf("entry: %+v", e)
	}
	// No clock error configured: timestamp equals virtual now at commit
	// (commit happens at exec time, before CPU accounting).
	if e.TimestampMicros != (10 * time.Second).Microseconds() {
		t.Fatalf("timestamp %d µs, want 10s", e.TimestampMicros)
	}
}

func TestReadsDoNotReachBinlog(t *testing.T) {
	env, srv := newTestServer(t, 1)
	sess := srv.Session("app")
	base := srv.Log.LastSeq()
	env.Go("client", func(p *sim.Proc) {
		srv.Exec(p, sess, "SELECT * FROM t")
	})
	env.Run()
	if srv.Log.LastSeq() != base {
		t.Fatal("SELECT reached the binlog")
	}
	if srv.Stats().Reads != 1 {
		t.Fatalf("stats: %+v", srv.Stats())
	}
}

func TestApplyReevaluatesTimeOnLocalClock(t *testing.T) {
	env := sim.NewEnv(3)
	c := cloud.New(env, cloud.Config{})
	m := c.Launch("master", cloud.Small, cloud.Placement{Region: cloud.USWest1, Zone: "a"})
	s := c.Launch("slave", cloud.Small, cloud.Placement{Region: cloud.USWest1, Zone: "a"})
	// Skew the slave clock forward by exactly 1s.
	s.Clock.SetOffset(time.Second)
	master := New(env, "master", m, DefaultCostModel())
	slave := New(env, "slave", s, DefaultCostModel())
	for _, srv := range []*DBServer{master, slave} {
		sess := srv.Session("")
		srv.ExecFree(sess, "CREATE DATABASE hb")
		srv.ExecFree(sess, "USE hb")
		srv.ExecFree(sess, "CREATE TABLE heartbeat (id BIGINT PRIMARY KEY, ts TIMESTAMP)")
	}
	msess := master.Session("hb")
	ssess := slave.Session("hb")
	env.Go("flow", func(p *sim.Proc) {
		if _, err := master.Exec(p, msess, "INSERT INTO heartbeat (id, ts) VALUES (1, UTC_MICROS())"); err != nil {
			t.Errorf("master exec: %v", err)
			return
		}
		// Preload DDL is also in the binlog; the INSERT is the newest entry.
		e, err := master.Log.At(master.Log.LastSeq())
		if err != nil {
			t.Errorf("binlog: %v", err)
			return
		}
		if err := slave.Apply(p, ssess, e); err != nil {
			t.Errorf("apply: %v", err)
		}
	})
	env.Run()
	mset, _ := master.Session("hb").Query("SELECT ts FROM heartbeat WHERE id = 1")
	sset, _ := slave.Session("hb").Query("SELECT ts FROM heartbeat WHERE id = 1")
	mts := mset.Rows[0][0].Micros()
	sts := sset.Rows[0][0].Micros()
	// The slave committed its own local time: ~1s ahead of the master's,
	// plus the master's write service time that elapsed before apply.
	diff := sts - mts
	if diff < (time.Second).Microseconds() || diff > (2*time.Second).Microseconds() {
		t.Fatalf("slave ts - master ts = %dµs, want ≈1s (clock skew) + service", diff)
	}
}

func TestApplyCostsLessThanMasterWrite(t *testing.T) {
	cm := DefaultCostModel()
	st := sqlengine.ExecStats{Class: sqlengine.ClassWrite, RowsAffected: 1}
	w := cm.StatementCost(st, false)
	a := cm.StatementCost(st, true)
	if a >= w {
		t.Fatalf("apply cost %v not below write cost %v", a, w)
	}
	if a == 0 {
		t.Fatal("apply cost is zero")
	}
}

func TestStatementCostScalesWithRowsExamined(t *testing.T) {
	cm := DefaultCostModel()
	small := cm.StatementCost(sqlengine.ExecStats{Class: sqlengine.ClassRead, RowsExamined: 10}, false)
	big := cm.StatementCost(sqlengine.ExecStats{Class: sqlengine.ClassRead, RowsExamined: 1000}, false)
	if big <= small {
		t.Fatal("scan cost does not grow with rows examined")
	}
}

func TestUseStatementSwitchesApplyDatabase(t *testing.T) {
	env, srv := newTestServer(t, 1)
	sess := srv.Session("")
	env.Go("applier", func(p *sim.Proc) {
		err := srv.Apply(p, sess, binlog.Entry{Seq: 1, Database: "app", SQL: "INSERT INTO t (id, v) VALUES (9, 'via-apply')"})
		if err != nil {
			t.Errorf("apply: %v", err)
		}
	})
	env.Run()
	set, err := srv.Session("app").Query("SELECT v FROM t WHERE id = 9")
	if err != nil || len(set.Rows) != 1 {
		t.Fatalf("applied row missing: %v %v", set, err)
	}
}

func TestDumpAndRelayWorkChargeCPU(t *testing.T) {
	env, srv := newTestServer(t, 5)
	var after sim.Time
	env.Go("threads", func(p *sim.Proc) {
		srv.DumpWork(p)
		srv.RelayWork(p)
		after = p.Now()
	})
	env.Run()
	want := srv.Cost.DumpPerEvent + srv.Cost.RelayPerEvent
	if after != want {
		t.Fatalf("dump+relay took %v, want %v", after, want)
	}
}

func TestPriorityApplyUsesHighPriorityCPU(t *testing.T) {
	env, srv := newTestServer(t, 6)
	srv.PriorityApply = true
	sess := srv.Session("app")
	// A long normal-priority job holds the CPU; queue several normal reads
	// and one priority apply — the apply must finish before the queued
	// reads despite arriving last.
	var order []string
	env.Go("holder", func(p *sim.Proc) {
		srv.Inst.Work(p, 200*time.Millisecond)
	})
	for i := 0; i < 3; i++ {
		rs := srv.Session("app")
		env.Go("reader", func(p *sim.Proc) {
			p.Sleep(time.Millisecond)
			srv.Exec(p, rs, "SELECT * FROM t")
			order = append(order, "read")
		})
	}
	env.Go("applier", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond) // arrives after the readers queued
		srv.Apply(p, sess, binlog.Entry{Seq: 1, Database: "app", SQL: "INSERT INTO t (id, v) VALUES (5, 'x')"})
		order = append(order, "apply")
	})
	env.Run()
	if len(order) != 4 || order[0] != "apply" {
		t.Fatalf("completion order %v; prioritized apply should finish first", order)
	}
}

func TestStatsCounters(t *testing.T) {
	env, srv := newTestServer(t, 7)
	sess := srv.Session("app")
	env.Go("mix", func(p *sim.Proc) {
		srv.Exec(p, sess, "SELECT * FROM t")
		srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (1, 'x')")
		srv.Apply(p, sess, binlog.Entry{Seq: 1, Database: "app", SQL: "INSERT INTO t (id, v) VALUES (2, 'y')"})
	})
	env.Run()
	st := srv.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Applied != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// With group commit enabled, N concurrent autocommit writes must form few
// fsync groups and finish sooner than N serialized legacy commits, because
// the fsync share of WriteBase is paid per group instead of per statement.
func TestGroupCommitAmortizesFsync(t *testing.T) {
	const writers = 4
	run := func(window time.Duration) (sim.Time, Stats) {
		env, srv := newTestServer(t, 1)
		srv.GroupCommitWindow = window
		var last sim.Time
		for i := 0; i < writers; i++ {
			i := i
			sess := srv.Session("app")
			env.Go("w", func(p *sim.Proc) {
				if _, err := srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (?, 'x')", sqlengine.NewInt(int64(i))); err != nil {
					t.Errorf("exec: %v", err)
				}
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		env.Run()
		return last, srv.Stats()
	}

	legacy, legacyStats := run(0)
	// The 1-vCPU FIFO spaces write completions by their ~54ms CPU cost, so
	// the window must exceed that for successive commits to pile onto an
	// open group.
	grouped, stats := run(60 * time.Millisecond)

	if legacyStats.GroupCommits != 0 || legacyStats.GroupedWrites != 0 {
		t.Fatalf("legacy path recorded groups: %+v", legacyStats)
	}
	if stats.GroupedWrites != writers {
		t.Fatalf("GroupedWrites = %d, want %d", stats.GroupedWrites, writers)
	}
	if stats.GroupCommits >= writers {
		t.Fatalf("GroupCommits = %d: no amortization over %d writes", stats.GroupCommits, writers)
	}
	if grouped >= legacy {
		t.Fatalf("group commit did not help: %v grouped vs %v legacy", grouped, legacy)
	}
	if srvLog := stats.Writes; srvLog != writers {
		t.Fatalf("writes = %d, want %d", srvLog, writers)
	}
}

// A single write under group commit pays window + full write cost — it must
// not lose the fsync entirely, only defer it to the group.
func TestGroupCommitSingleWriteStillFsyncs(t *testing.T) {
	env, srv := newTestServer(t, 1)
	srv.GroupCommitWindow = 5 * time.Millisecond
	sess := srv.Session("app")
	var elapsed sim.Time
	env.Go("w", func(p *sim.Proc) {
		if _, err := srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (1, 'x')"); err != nil {
			t.Errorf("exec: %v", err)
		}
		elapsed = p.Now()
	})
	env.Run()
	cost := srv.Cost.StatementCost(sqlengine.ExecStats{Class: sqlengine.ClassWrite, RowsAffected: 1}, false)
	want := cost + srv.GroupCommitWindow // CPU (cost−fsync) + window + fsync disk
	if elapsed != want {
		t.Fatalf("single grouped write took %v, want %v", elapsed, want)
	}
	if st := srv.Stats(); st.GroupCommits != 1 || st.GroupedWrites != 1 || st.MaxGroupSize != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// Statements inside an explicit transaction must bypass the group-commit
// path: their commit point is COMMIT, not the statement.
func TestGroupCommitSkipsExplicitTransactions(t *testing.T) {
	env, srv := newTestServer(t, 1)
	srv.GroupCommitWindow = 5 * time.Millisecond
	sess := srv.Session("app")
	env.Go("w", func(p *sim.Proc) {
		for _, sql := range []string{
			"BEGIN",
			"INSERT INTO t (id, v) VALUES (1, 'x')",
			"COMMIT",
		} {
			if _, err := srv.Exec(p, sess, sql); err != nil {
				t.Errorf("%s: %v", sql, err)
			}
		}
	})
	env.Run()
	if st := srv.Stats(); st.GroupCommits != 0 || st.GroupedWrites != 0 {
		t.Fatalf("transactional write went through group commit: %+v", st)
	}
}

// A batch of one must cost exactly the same as the per-event path, so an
// unconfigured pipeline cannot change baseline timing.
func TestBatchWorkOfOneMatchesPerEvent(t *testing.T) {
	env, srv := newTestServer(t, 1)
	var tDump, tBatch, tRelay, tRelayBatch sim.Time
	env.Go("seq", func(p *sim.Proc) {
		start := p.Now()
		srv.DumpWork(p)
		tDump = p.Now() - start
		start = p.Now()
		srv.DumpBatchWork(p, 1)
		tBatch = p.Now() - start
		start = p.Now()
		srv.RelayWork(p)
		tRelay = p.Now() - start
		start = p.Now()
		srv.RelayBatchWork(p, 1)
		tRelayBatch = p.Now() - start
	})
	env.Run()
	if tDump != tBatch {
		t.Fatalf("DumpBatchWork(1) = %v, DumpWork = %v", tBatch, tDump)
	}
	if tRelay != tRelayBatch {
		t.Fatalf("RelayBatchWork(1) = %v, RelayWork = %v", tRelayBatch, tRelay)
	}
}

// Batched shipping must be cheaper than per-event shipping for n>1.
func TestBatchWorkAmortizes(t *testing.T) {
	env, srv := newTestServer(t, 1)
	const n = 32
	var tBatch, tSingles sim.Time
	env.Go("seq", func(p *sim.Proc) {
		start := p.Now()
		srv.DumpBatchWork(p, n)
		tBatch = p.Now() - start
		start = p.Now()
		for i := 0; i < n; i++ {
			srv.DumpWork(p)
		}
		tSingles = p.Now() - start
	})
	env.Run()
	if tBatch >= tSingles/4 {
		t.Fatalf("batched dump of %d = %v, singles = %v: expected ≥4× amortization", n, tBatch, tSingles)
	}
}
