// Package server binds a sqlengine to a cloud instance: statements execute
// logically instantly but charge virtual CPU time derived from their
// execution statistics, queueing FIFO on the instance's vCPUs. Committed
// writes are appended to the server's binlog stamped with the instance's
// local (drifting) clock — the master side of statement-based replication.
package server

import (
	"errors"
	"time"

	"cloudrepl/internal/binlog"
	"cloudrepl/internal/cloud"
	"cloudrepl/internal/obs"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// CostModel converts execution statistics into nominal CPU time on the
// reference core. Defaults are calibrated so that the Cloudstone workload
// saturates replicas the way the paper's m1.small instances did (§IV-A).
type CostModel struct {
	// ReadBase is the fixed cost of any SELECT.
	ReadBase time.Duration
	// PerRowExamined is added for every row visited by scans and lookups.
	PerRowExamined time.Duration
	// WriteBase is the fixed cost of any INSERT/UPDATE/DELETE on a master.
	WriteBase time.Duration
	// PerRowAffected is added for every row mutated.
	PerRowAffected time.Duration
	// DDLBase is the fixed cost of DDL statements.
	DDLBase time.Duration
	// ApplyFactor scales a write's cost when re-executed by a slave's SQL
	// thread (no client/connection handling, no binlog fsync).
	ApplyFactor float64
	// DumpPerEvent is the master CPU spent by each dump thread per binlog
	// event shipped to a slave.
	DumpPerEvent time.Duration
	// RelayPerEvent is the slave CPU spent by the I/O thread per event
	// written to the relay log.
	RelayPerEvent time.Duration

	// CommitFsync is the binlog write+fsync portion of WriteBase. It only
	// matters when group commit is enabled (DBServer.GroupCommitWindow > 0):
	// the fsync is then paid once per commit *group* as serialized disk
	// time instead of once per statement as CPU, which is what lifts the
	// per-write master ceiling.
	CommitFsync time.Duration
	// DumpPerEntryBatched is the marginal master CPU per additional binlog
	// event in a batched dump transit (the first event of every batch pays
	// the full DumpPerEvent). Zero falls back to DumpPerEvent, i.e. no
	// batching advantage.
	DumpPerEntryBatched time.Duration
	// RelayPerEntryBatched is the slave-side equivalent for batched relay
	// writes.
	RelayPerEntryBatched time.Duration
}

// DefaultCostModel returns the calibrated model (see DESIGN.md §5).
func DefaultCostModel() CostModel {
	return CostModel{
		ReadBase:       95 * time.Millisecond,
		PerRowExamined: 150 * time.Microsecond,
		WriteBase:      82 * time.Millisecond,
		PerRowAffected: 2 * time.Millisecond,
		DDLBase:        20 * time.Millisecond,
		ApplyFactor:    0.5,
		DumpPerEvent:   1200 * time.Microsecond,
		RelayPerEvent:  300 * time.Microsecond,

		CommitFsync:          30 * time.Millisecond,
		DumpPerEntryBatched:  150 * time.Microsecond,
		RelayPerEntryBatched: 60 * time.Microsecond,
	}
}

// StatementCost returns the nominal CPU time for a statement with the given
// stats executed in the given role.
func (c CostModel) StatementCost(stats sqlengine.ExecStats, applied bool) time.Duration {
	var d time.Duration
	switch stats.Class {
	case sqlengine.ClassRead:
		d = c.ReadBase + time.Duration(stats.RowsExamined)*c.PerRowExamined
	case sqlengine.ClassWrite:
		d = c.WriteBase +
			time.Duration(stats.RowsExamined)*c.PerRowExamined +
			time.Duration(stats.RowsAffected)*c.PerRowAffected
	case sqlengine.ClassDDL:
		d = c.DDLBase
	default:
		return 0
	}
	if applied {
		d = time.Duration(float64(d) * c.ApplyFactor)
	}
	return d
}

// ErrServerDown is returned when a statement reaches a server whose
// instance has been terminated (e.g. a race between scale-in and an
// in-flight request).
var ErrServerDown = errors.New("server: instance is down")

// Stats aggregates the server's statement counters.
type Stats struct {
	Reads   uint64
	Writes  uint64
	Applied uint64
	DDL     uint64

	// GroupCommits counts binlog fsync groups; GroupedWrites counts the
	// autocommit writes that committed through them. Their ratio is the
	// achieved amortization (1.0 = no grouping happened).
	GroupCommits  uint64
	GroupedWrites uint64
	MaxGroupSize  int
}

// DBServer is a database process on a cloud instance.
type DBServer struct {
	Name string
	Inst *cloud.Instance
	Eng  *sqlengine.Engine
	Log  *binlog.Log
	Cost CostModel
	// PriorityApply schedules replication-apply CPU at high priority so
	// the SQL thread never starves behind client reads (an operator
	// mitigation for the staleness blow-up; ablation A-PRIO).
	PriorityApply bool
	// GroupCommitWindow enables binlog group commit: an autocommit write
	// finishing its execution waits up to this long for concurrent writes
	// to pile on, then the whole group pays one CommitFsync of serialized
	// binlog-disk time instead of one per statement. Zero (the default)
	// keeps the legacy per-commit fsync-as-CPU costing. Statements inside
	// explicit transactions always take the legacy path — their commit
	// point is the COMMIT statement, not the write itself.
	GroupCommitWindow time.Duration

	// Tracer, when set, records a "server" span per executed statement
	// (registering committed binlog sequences for cross-process linking)
	// and a "binlog" group-commit span per fsync group. Nil disables
	// tracing.
	Tracer *obs.Tracer

	env   *sim.Env
	stats Stats

	// Group-commit state: one open group at a time; a new leader may open
	// the next group while the previous one is still in its fsync, with
	// binlogDisk serializing the actual fsyncs.
	gcSig      *sim.Signal
	gcOpen     bool
	gcSize     int
	binlogDisk *sim.Resource
}

// New creates a database server on inst with statement-based logging. Time
// builtins read the instance's local clock; committed writes are appended
// to the binlog stamped with that same clock.
func New(env *sim.Env, name string, inst *cloud.Instance, cost CostModel) *DBServer {
	s := &DBServer{
		Name: name,
		Inst: inst,
		Eng:  sqlengine.NewEngine(),
		Log:  binlog.New(env),
		Cost: cost,
		env:  env,
	}
	s.Eng.NowMicros = func() int64 { return inst.Clock.NowMicros() }
	// s.Eng.Format stays FormatStatement unless SetRowFormat is called.
	s.Eng.OnCommit = func(db string, sqls []string) {
		ts := inst.Clock.NowMicros()
		for _, sql := range sqls {
			s.Log.Append(db, sql, ts)
		}
	}
	return s
}

// SetRowFormat switches the server's binlog to row-based logging (MySQL
// RBR): committed writes replicate as literal per-row images instead of
// the original statement text, so time builtins are fixed at the master
// rather than re-evaluated on each replica.
func (s *DBServer) SetRowFormat() { s.Eng.Format = sqlengine.FormatRow }

// Env returns the simulation environment.
func (s *DBServer) Env() *sim.Env { return s.env }

// Up reports whether the backing instance is running.
func (s *DBServer) Up() bool { return s.Inst.Up() }

// Stats returns a snapshot of the statement counters.
func (s *DBServer) Stats() Stats { return s.stats }

// Session opens an engine session with the given default database.
func (s *DBServer) Session(db string) *sqlengine.Session { return s.Eng.NewSession(db) }

// Exec executes a statement on behalf of a client session, charging the
// instance's CPU according to the cost model. It must be called from a
// simulation process.
func (s *DBServer) Exec(p *sim.Proc, sess *sqlengine.Session, sql string, args ...sqlengine.Value) (*sqlengine.Result, error) {
	if !s.Up() {
		return nil, ErrServerDown
	}
	sp := s.Tracer.StartSpan(p, "server", "exec")
	sp.SetAttr("server", s.Name)
	before := s.Log.LastSeq()
	// Prepared-statement path: parse and normalization are cached per text,
	// and SELECT plans are shared across argument vectors via the plan cache.
	var res *sqlengine.Result
	stmt, err := s.Eng.Prepare(sql)
	if err == nil {
		res, err = stmt.Run(sess, args...)
	}
	if err != nil {
		sp.SetAttr("error", "sql")
		sp.End(p)
		return nil, err
	}
	switch res.Stats.Class {
	case sqlengine.ClassRead:
		s.stats.Reads++
	case sqlengine.ClassWrite:
		s.stats.Writes++
	case sqlengine.ClassDDL:
		s.stats.DDL++
	}
	if s.Tracer != nil && res.Stats.Class != sqlengine.ClassRead {
		// sess.Exec runs without yielding, so (before, LastSeq] is exactly
		// the set of binlog entries this statement committed; registering
		// them lets the dump and apply threads join this write's trace.
		for seq := before + 1; seq <= s.Log.LastSeq(); seq++ {
			s.Tracer.LinkSeq(seq, sp)
		}
	}
	cost := s.Cost.StatementCost(res.Stats, false)
	if s.GroupCommitWindow > 0 && res.Stats.Class == sqlengine.ClassWrite && !sess.InTxn() {
		fsync := s.Cost.CommitFsync
		if fsync > cost {
			fsync = cost
		}
		s.Inst.Work(p, cost-fsync) // execution minus the fsync share
		s.groupCommit(p)
		sp.End(p)
		return res, nil
	}
	s.Inst.Work(p, cost)
	sp.End(p)
	return res, nil
}

// groupCommit makes the calling write part of a binlog commit group: the
// first arrival leads — it holds the group open for GroupCommitWindow, then
// pays one CommitFsync of binlog-disk time for everyone — and later
// arrivals ride along, waking when the group's fsync completes.
func (s *DBServer) groupCommit(p *sim.Proc) {
	s.stats.GroupedWrites++
	if s.gcOpen {
		s.gcSize++
		if s.gcSize > s.stats.MaxGroupSize {
			s.stats.MaxGroupSize = s.gcSize
		}
		s.gcSig.Wait(p)
		return
	}
	if s.binlogDisk == nil {
		s.binlogDisk = sim.NewResource(s.env, s.Name+"/binlog-disk", 1)
	}
	s.gcOpen = true
	s.gcSize = 1
	s.gcSig = sim.NewSignal(s.env).Named(s.Name + "/group-commit")
	if s.stats.MaxGroupSize < 1 {
		s.stats.MaxGroupSize = 1
	}
	gsp := s.Tracer.StartSpan(p, "binlog", "group-commit")
	p.Sleep(s.GroupCommitWindow)
	// Close the group before fsyncing so commits arriving during the fsync
	// form the next group instead of joining one whose write is in flight.
	sig := s.gcSig
	size := s.gcSize
	s.gcOpen = false
	s.stats.GroupCommits++
	s.binlogDisk.Use(p, s.Cost.CommitFsync)
	sig.Broadcast()
	gsp.SetAttrInt("size", int64(size))
	gsp.End(p)
}

// ExecFree executes a statement without charging CPU — used by loaders that
// pre-populate databases before an experiment's clock starts.
func (s *DBServer) ExecFree(sess *sqlengine.Session, sql string, args ...sqlengine.Value) (*sqlengine.Result, error) {
	stmt, err := s.Eng.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return stmt.Run(sess, args...)
}

// Apply re-executes a replicated statement on this server (the slave SQL
// thread path): time builtins re-evaluate against this instance's clock,
// and CPU is charged at the apply rate.
func (s *DBServer) Apply(p *sim.Proc, sess *sqlengine.Session, e binlog.Entry) error {
	if !s.Up() {
		return ErrServerDown
	}
	if e.Database != "" && sess.DB() != e.Database {
		if _, err := sess.Exec("USE " + e.Database); err != nil {
			return err
		}
	}
	res, err := sess.ExecUncached(e.SQL)
	if err != nil {
		return err
	}
	s.stats.Applied++
	cost := s.Cost.StatementCost(res.Stats, true)
	if s.PriorityApply {
		s.Inst.WorkHigh(p, cost)
	} else {
		s.Inst.Work(p, cost)
	}
	return nil
}

// DumpWork charges the master CPU for shipping one binlog event to a slave.
func (s *DBServer) DumpWork(p *sim.Proc) {
	s.Inst.Work(p, s.Cost.DumpPerEvent)
}

// DumpBatchWork charges the master CPU for shipping a batch of n binlog
// events in one network transit: the first event pays the full per-event
// cost (connection handling, packet assembly), each additional one only the
// batched marginal cost. n=1 is cost-identical to DumpWork.
func (s *DBServer) DumpBatchWork(p *sim.Proc, n int) {
	s.Inst.Work(p, batchCost(s.Cost.DumpPerEvent, s.Cost.DumpPerEntryBatched, n))
}

// RelayWork charges the slave CPU for persisting one event to its relay
// log. PriorityApply covers the whole replication pipeline, so the I/O
// thread is prioritized together with the SQL thread.
func (s *DBServer) RelayWork(p *sim.Proc) {
	if s.PriorityApply {
		s.Inst.WorkHigh(p, s.Cost.RelayPerEvent)
		return
	}
	s.Inst.Work(p, s.Cost.RelayPerEvent)
}

// RelayBatchWork is DumpBatchWork's slave-side counterpart: one relay-log
// write for the whole received batch.
func (s *DBServer) RelayBatchWork(p *sim.Proc, n int) {
	cost := batchCost(s.Cost.RelayPerEvent, s.Cost.RelayPerEntryBatched, n)
	if s.PriorityApply {
		s.Inst.WorkHigh(p, cost)
		return
	}
	s.Inst.Work(p, cost)
}

// batchCost is first + (n-1)×marginal; a zero marginal cost (custom cost
// models predating batching) falls back to the full per-event cost.
func batchCost(first, marginal time.Duration, n int) time.Duration {
	if n <= 1 {
		return first
	}
	if marginal <= 0 {
		marginal = first
	}
	return first + time.Duration(n-1)*marginal
}
