package sim

import "time"

// Signal is a broadcast condition variable for simulation processes. A
// waiter blocks until the next Broadcast after it started waiting, or until
// an optional timeout elapses. Semi-synchronous replication acknowledgements
// and cluster state changes are built on Signals.
type Signal struct {
	env     *Env
	name    string
	waiters []*sigWaiter
}

type sigWaiter struct {
	p        *Proc
	woken    bool
	timedOut bool
	cancel   func() // cancels the timeout event, nil when no timeout
}

// NewSignal creates a Signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Named sets the signal's diagnostic name (shown in deadlock wait-for
// dumps) and returns the signal, so it chains onto NewSignal.
func (s *Signal) Named(name string) *Signal {
	s.name = name
	return s
}

// Name returns the diagnostic name given to Named ("" if unset).
func (s *Signal) Name() string { return s.name }

// Waiting returns the number of blocked waiters.
func (s *Signal) Waiting() int { return len(s.waiters) }

// Wait blocks the calling process until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	w := &sigWaiter{p: p}
	s.waiters = append(s.waiters, w)
	p.wait(ParkSignal, s.name)
}

// WaitTimeout blocks until the next Broadcast or until d elapses. It reports
// whether the signal arrived (false on timeout).
func (s *Signal) WaitTimeout(p *Proc, d time.Duration) bool {
	w := &sigWaiter{p: p}
	w.cancel = s.env.Schedule(d, func() {
		if w.woken {
			return
		}
		w.woken = true
		w.timedOut = true
		s.remove(w)
		s.env.scheduleProc(s.env.now, p)
	})
	s.waiters = append(s.waiters, w)
	p.wait(ParkSignal, s.name)
	return !w.timedOut
}

func (s *Signal) remove(w *sigWaiter) {
	for i, x := range s.waiters {
		if x == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// Broadcast wakes every current waiter. It may be called from any process or
// callback; waiters resume at the current virtual time in wait order.
func (s *Signal) Broadcast() {
	for _, w := range s.waiters {
		if w.woken {
			continue
		}
		w.woken = true
		if w.cancel != nil {
			w.cancel()
		}
		s.env.scheduleProc(s.env.now, w.p)
	}
	s.waiters = s.waiters[:0]
}
