package sim

import "time"

// Signal is a broadcast condition variable for simulation processes. A
// waiter blocks until the next Broadcast after it started waiting, or until
// an optional timeout elapses. Semi-synchronous replication acknowledgements
// and cluster state changes are built on Signals.
type Signal struct {
	env     *Env
	name    string
	waiters []*sigWaiter
}

// sigWaiter records one blocked process. Waiters are pooled on the Env:
// the waiting process owns its waiter and frees it when Wait/WaitTimeout
// returns, so neither the signal (waiters are unlinked before wakeup) nor
// the timer event (tombstoned or already fired) can reach a recycled one.
type sigWaiter struct {
	p        *Proc
	s        *Signal
	woken    bool
	timedOut bool
	timer    *event // pending timeout event, nil when no timeout
	timerGen uint64 // generation guard for cancelling timer
}

// NewSignal creates a Signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Named sets the signal's diagnostic name (shown in deadlock wait-for
// dumps) and returns the signal, so it chains onto NewSignal.
func (s *Signal) Named(name string) *Signal {
	s.name = name
	return s
}

// Name returns the diagnostic name given to Named ("" if unset).
func (s *Signal) Name() string { return s.name }

// Waiting returns the number of blocked waiters.
func (s *Signal) Waiting() int { return len(s.waiters) }

// allocWaiter takes a waiter off the Env free list, or allocates one.
func (e *Env) allocWaiter() *sigWaiter {
	if n := len(e.wfree); n > 0 {
		w := e.wfree[n-1]
		e.wfree[n-1] = nil
		e.wfree = e.wfree[:n-1]
		return w
	}
	return &sigWaiter{}
}

func (e *Env) freeWaiter(w *sigWaiter) {
	w.p = nil
	w.s = nil
	w.woken = false
	w.timedOut = false
	w.timer = nil
	w.timerGen = 0
	e.wfree = append(e.wfree, w)
}

// Wait blocks the calling process until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	e := s.env
	w := e.allocWaiter()
	w.p = p
	w.s = s
	s.waiters = append(s.waiters, w)
	p.wait(ParkSignal, s.name)
	e.freeWaiter(w)
}

// WaitTimeout blocks until the next Broadcast or until d elapses. It reports
// whether the signal arrived (false on timeout). The timeout is a kernel
// event carrying the waiter itself — no closure, and its near-universal
// cancellation (waits usually succeed) is absorbed by the queue's tombstone
// compaction.
func (s *Signal) WaitTimeout(p *Proc, d time.Duration) bool {
	e := s.env
	w := e.allocWaiter()
	w.p = p
	w.s = s
	if d < 0 {
		d = 0
	}
	ev := e.allocEvent()
	ev.at = e.now + d
	ev.w = w
	e.push(ev)
	w.timer = ev
	w.timerGen = ev.gen
	s.waiters = append(s.waiters, w)
	p.wait(ParkSignal, s.name)
	timedOut := w.timedOut
	e.freeWaiter(w)
	return !timedOut
}

// signalTimeout fires a WaitTimeout deadline: the kernel dispatches it when
// the timer event pops. The waiter is still live — it is freed only by the
// blocked process after it resumes — so the check-and-wake is safe even if
// a Broadcast won the same instant.
func (e *Env) signalTimeout(w *sigWaiter) {
	if w.woken {
		return
	}
	w.woken = true
	w.timedOut = true
	w.timer = nil
	w.s.remove(w)
	e.scheduleProc(e.now, w.p)
}

func (s *Signal) remove(w *sigWaiter) {
	for i, x := range s.waiters {
		if x == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// Broadcast wakes every current waiter. It may be called from any process or
// callback; waiters resume at the current virtual time in wait order.
func (s *Signal) Broadcast() {
	for _, w := range s.waiters {
		if w.woken {
			continue
		}
		w.woken = true
		if w.timer != nil {
			s.env.cancelEvent(w.timer, w.timerGen)
			w.timer = nil
		}
		s.env.scheduleProc(s.env.now, w.p)
	}
	s.waiters = s.waiters[:0]
}
