package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"sort"
	"strings"
	"time"
)

// Time is a point on the virtual timeline, expressed as the duration elapsed
// since the start of the simulation.
type Time = time.Duration

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// event is a scheduled occurrence: either a process wakeup or a callback.
type event struct {
	at        Time
	seq       uint64 // tie-breaker: schedule order
	proc      *Proc  // non-nil for a process wakeup
	fn        func() // non-nil for a callback
	cancelled bool
	index     int // heap index, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

type yieldKind int

const (
	yieldBlocked yieldKind = iota
	yieldDone
)

type yieldMsg struct {
	p    *Proc
	kind yieldKind
}

// errShutdown is panicked inside blocked processes when the environment is
// shut down; the process wrapper swallows it.
type shutdownSentinel struct{}

// Env is a simulation environment: an event queue, a virtual clock and a
// scheduler. An Env must only be driven from a single goroutine (the one
// calling Run and friends); simulation processes themselves are goroutines
// that the scheduler resumes one at a time.
type Env struct {
	now     Time
	queue   eventHeap
	seq     uint64
	rng     *rand.Rand
	cur     *Proc
	yield   chan yieldMsg
	doneCh  chan struct{}
	killTok chan struct{}
	alive   int // processes started and not yet finished
	stopped bool
	closed  bool

	panicVal   any
	panicStack []byte
	procSeq    uint64
	// procs indexes every live process by id so the deadlock detector can
	// dump a wait-for graph (who is parked on which resource/queue/signal).
	procs map[uint64]*Proc
}

// NewEnv returns a fresh environment whose random source is seeded with seed.
// Two environments with the same seed and the same process program produce
// identical event orderings.
func NewEnv(seed int64) *Env {
	return &Env{
		rng:     rand.New(rand.NewSource(seed)),
		yield:   make(chan yieldMsg),
		doneCh:  make(chan struct{}),
		killTok: make(chan struct{}, 1),
		procs:   make(map[uint64]*Proc),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random source. It must only
// be used from the scheduler goroutine or from a running process (both are
// serialized, so no locking is needed).
func (e *Env) Rand() *rand.Rand { return e.rng }

// Pending reports the number of live (not cancelled) scheduled events.
func (e *Env) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// Alive reports the number of processes that have been started and have not
// yet returned.
func (e *Env) Alive() int { return e.alive }

func (e *Env) push(ev *event) *event {
	e.seq++
	ev.seq = e.seq
	heap.Push(&e.queue, ev)
	return ev
}

// Schedule arranges for fn to run at virtual time Now()+d. Callbacks run on
// the scheduler goroutine and must not block on kernel primitives. The
// returned cancel function is safe to call at most once, from scheduler
// context, and is a no-op if the event already fired.
func (e *Env) Schedule(d time.Duration, fn func()) (cancel func()) {
	if d < 0 {
		d = 0
	}
	ev := e.push(&event{at: e.now + d, fn: fn})
	return func() { ev.cancelled = true }
}

// scheduleProc arranges for p to resume at time at.
func (e *Env) scheduleProc(at Time, p *Proc) *event {
	if at < e.now {
		at = e.now
	}
	return e.push(&event{at: at, proc: p})
}

// ParkKind classifies what a blocked process is waiting for; it feeds the
// deadlock detector's wait-for dump.
type ParkKind uint8

const (
	ParkNone     ParkKind = iota // running or runnable
	ParkStart                    // spawned, waiting for its first resume
	ParkTimer                    // Sleep / SleepUntil
	ParkResource                 // Resource.Acquire wait queue
	ParkQueue                    // Queue.Get on an empty queue
	ParkSignal                   // Signal.Wait / WaitTimeout
)

func (k ParkKind) String() string {
	switch k {
	case ParkNone:
		return "runnable"
	case ParkStart:
		return "start"
	case ParkTimer:
		return "timer"
	case ParkResource:
		return "resource"
	case ParkQueue:
		return "queue"
	case ParkSignal:
		return "signal"
	}
	return "unknown"
}

// Proc is a simulation process. All blocking methods must be called from the
// process's own goroutine while it is the running process.
type Proc struct {
	env    *Env
	name   string
	id     uint64
	resume chan struct{}

	// Park state: what the process is currently blocked on. Written by the
	// process right before yielding and cleared when it resumes; read by
	// the scheduler goroutine for the wait-for dump (the two never run
	// concurrently, so no locking is needed).
	parkKind ParkKind
	parkObj  string // name of the resource/queue/signal, "" for timers
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// ID returns the process's spawn-ordered identifier (1 for the first
// process started on the Env). Together with Name it labels the process in
// deadlock dumps and determinism diffs.
func (p *Proc) ID() uint64 { return p.id }

// ParkedOn describes what the process is blocked on ("queue relay(slave1)",
// "timer", "runnable"), for diagnostics.
func (p *Proc) ParkedOn() string {
	if p.parkKind == ParkNone || p.parkKind == ParkTimer || p.parkObj == "" {
		return p.parkKind.String()
	}
	return p.parkKind.String() + " " + p.parkObj
}

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Rand returns the environment's deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.env.rng }

// Go starts a new simulation process running fn. The process is scheduled to
// begin at the current virtual time. Go may be called before Run, from
// another process, or from a callback.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: Go on a closed Env")
	}
	e.procSeq++
	p := &Proc{env: e, name: name, id: e.procSeq, resume: make(chan struct{}), parkKind: ParkStart}
	e.alive++
	e.procs[p.id] = p
	// The kernel's own process launcher is the one place a goroutine may be
	// created: the scheduler immediately owns it and resumes it one at a
	// time against the virtual clock.
	//cloudrepl:allow-rawgo the sim kernel implements Env.Go itself; the goroutine is scheduler-managed from birth
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(shutdownSentinel); !ok {
					e.panicVal = r
					e.panicStack = debug.Stack()
				}
			}
			e.yield <- yieldMsg{p, yieldDone}
		}()
		select {
		case <-p.resume:
		case <-e.doneCh:
			e.awaitKill()
		}
		p.parkKind, p.parkObj = ParkNone, ""
		fn(p)
	}()
	e.scheduleProc(e.now, p)
	return p
}

// wait blocks the calling process until it is resumed by the scheduler,
// recording what it is parked on (kind + object name) for the deadlock
// detector. The caller must have arranged for a wakeup (timer event,
// resource grant, queue put, signal) before calling wait.
func (p *Proc) wait(kind ParkKind, obj string) {
	e := p.env
	if e.cur != p {
		panic(fmt.Sprintf("sim: blocking call on process %q from outside its own goroutine", p.name))
	}
	p.parkKind, p.parkObj = kind, obj
	e.yield <- yieldMsg{p, yieldBlocked}
	select {
	case <-p.resume:
	case <-e.doneCh:
		e.awaitKill()
	}
	p.parkKind, p.parkObj = ParkNone, ""
}

// awaitKill serializes process teardown during Shutdown. Every parked
// process observes the closed doneCh at once, but each must take the kill
// token before unwinding so that deferred cleanup (which may touch state
// shared between processes) keeps the kernel's one-process-at-a-time
// guarantee; Shutdown hands out one token per process and waits for its
// unwind to finish before issuing the next.
func (e *Env) awaitKill() {
	<-e.killTok
	panic(shutdownSentinel{})
}

// Sleep suspends the process for virtual duration d (non-positive durations
// still yield to the scheduler for one event cycle).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.env.scheduleProc(p.env.now+d, p)
	p.wait(ParkTimer, "")
}

// SleepUntil suspends the process until virtual time t (immediately resumes
// if t is in the past).
func (p *Proc) SleepUntil(t Time) {
	p.env.scheduleProc(t, p)
	p.wait(ParkTimer, "")
}

// step executes the next event. It returns false when the queue is empty.
func (e *Env) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		if ev.fn != nil {
			ev.fn()
			e.checkPanic()
			return true
		}
		p := ev.proc
		e.cur = p
		p.resume <- struct{}{}
		msg := <-e.yield
		e.cur = nil
		if msg.kind == yieldDone {
			e.alive--
			delete(e.procs, msg.p.id)
		}
		e.checkPanic()
		return true
	}
	return false
}

func (e *Env) checkPanic() {
	if e.panicVal != nil {
		v, s := e.panicVal, e.panicStack
		e.panicVal, e.panicStack = nil, nil
		panic(fmt.Sprintf("sim: process panicked: %v\n%s", v, s))
	}
}

// Run executes events until the queue is empty or Stop is called.
func (e *Env) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// RunUntil executes all events scheduled at or before t, then advances the
// clock to exactly t. Later events remain queued.
func (e *Env) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		next := e.peek()
		if next == nil {
			break
		}
		if next.at > t {
			break
		}
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for virtual duration d from the current time.
func (e *Env) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// peek returns the earliest non-cancelled event without removing it.
func (e *Env) peek() *event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.cancelled {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}

// Stop makes the current Run/RunUntil/RunFor call return after the event in
// progress. It may be called from a process or callback.
func (e *Env) Stop() { e.stopped = true }

// RunRealtime executes events while pacing virtual time against the wall
// clock: one second of virtual time takes 1/speed wall seconds. It returns
// when the queue is empty, Stop is called, or stop is closed.
//
//cloudrepl:allow-simtime pacing virtual time against the wall clock is this function's entire purpose
func (e *Env) RunRealtime(speed float64, stop <-chan struct{}) {
	if speed <= 0 {
		speed = 1
	}
	e.stopped = false
	start := time.Now()
	base := e.now
	for !e.stopped {
		next := e.peek()
		if next == nil {
			return
		}
		target := time.Duration(float64(next.at-base) / speed)
		if wait := target - time.Since(start); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-stop:
				timer.Stop()
				return
			}
		}
		select {
		case <-stop:
			return
		default:
		}
		e.step()
	}
}

// WaitForGraph renders the wait-for graph of every live process: one line
// per process, sorted by spawn id, naming the resource, queue or signal it
// is parked on. It is the payload of the deadlock detector's panic and is
// also useful on its own when a test hangs.
func (e *Env) WaitForGraph() string {
	ids := make([]uint64, 0, len(e.procs))
	for id := range e.procs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for _, id := range ids {
		p := e.procs[id]
		name := p.name
		if name == "" {
			name = "(unnamed)"
		}
		fmt.Fprintf(&b, "  proc %-4d %-28s parked on %s\n", p.id, name, p.ParkedOn())
	}
	return b.String()
}

// shutdownWatchdog bounds how long Shutdown waits for a single process to
// unwind before declaring the kernel wedged and dumping the wait-for graph.
var shutdownWatchdog = 5 * time.Second

// Shutdown unwinds every blocked process so that no goroutines leak. The
// environment must not be used afterwards. It is safe to call Shutdown after
// Run has returned, including when processes are still blocked on resources
// or queues.
//
// If a process fails to unwind — deferred cleanup blocked on a kernel
// primitive the scheduler does not manage, typically — Shutdown panics with
// a deadlock report: every live process's name and the resource, queue or
// signal it is parked on, so the hang is attributable without a debugger.
//
//cloudrepl:allow-simtime the unwind watchdog must measure wall time: a wedged process stops the virtual clock entirely
func (e *Env) Shutdown() {
	if e.closed {
		return
	}
	e.closed = true
	close(e.doneCh)
	// Every alive process is parked: either in wait()'s select or in the
	// wrapper's initial select, both of which observe doneCh and park on the
	// kill token. No process can be running because Shutdown is called from
	// the scheduler goroutine between events. Issue one token at a time and
	// wait for that process to finish unwinding before releasing the next,
	// so deferred cleanup never runs concurrently across processes.
	remaining := e.alive
	watchdog := time.NewTimer(shutdownWatchdog)
	defer watchdog.Stop()
	for remaining > 0 {
		e.killTok <- struct{}{}
		waitDone := true
		for waitDone {
			if !watchdog.Stop() {
				select {
				case <-watchdog.C:
				default:
				}
			}
			watchdog.Reset(shutdownWatchdog)
			select {
			case msg := <-e.yield:
				if msg.kind == yieldDone {
					remaining--
					e.alive--
					delete(e.procs, msg.p.id)
					waitDone = false
				}
			case <-watchdog.C:
				panic(fmt.Sprintf(
					"sim: deadlock during Shutdown: %d process(es) failed to unwind within %v\nwait-for graph:\n%s",
					remaining, shutdownWatchdog, e.WaitForGraph()))
			}
		}
	}
}
