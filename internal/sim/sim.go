package sim

import (
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"sort"
	"strings"
	"time"
)

// Time is a point on the virtual timeline, expressed as the duration elapsed
// since the start of the simulation.
type Time = time.Duration

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// event is a scheduled occurrence: a process wakeup, a callback, a message
// delivery, or a signal timeout. Exactly one of proc/fn/msg/w is set.
// Events are pooled on the Env free list; gen increments on every recycle
// so a cancel handle captured before the event fired cannot cancel an
// unrelated reincarnation.
type event struct {
	at        Time
	seq       uint64 // tie-breaker: schedule order
	gen       uint64 // recycle generation, guards stale cancels
	proc      *Proc  // non-nil for a process wakeup
	fn        func() // non-nil for a callback
	msg       Deliverable
	w         *sigWaiter // non-nil for a Signal.WaitTimeout timer
	cancelled bool
}

// Deliverable is a pre-allocated event payload: ScheduleDeliver queues it
// without the closure allocation that Schedule's fn costs. The network
// layer's message deliveries are the hot-path user.
type Deliverable interface{ Deliver() }

type yieldKind int

const (
	yieldBlocked yieldKind = iota
	yieldDone
)

type yieldMsg struct {
	p    *Proc
	kind yieldKind
}

// errShutdown is panicked inside blocked processes when the environment is
// shut down; the process wrapper swallows it.
type shutdownSentinel struct{}

// Env is a simulation environment: an event queue, a virtual clock and a
// scheduler. An Env must only be driven from a single goroutine (the one
// calling Run and friends); simulation processes themselves are goroutines
// that the scheduler resumes one at a time.
type Env struct {
	now       Time
	queue     calQueue
	seq       uint64
	processed uint64 // events dispatched since creation
	rng       *rand.Rand
	cur       *Proc
	yield     chan yieldMsg
	alive     int // processes started and not yet finished
	stopped   bool
	closed    bool

	efree []*event     // recycled event structs
	wfree []*sigWaiter // recycled signal waiters

	panicVal   any
	panicStack []byte
	procSeq    uint64
	// procs indexes every live process by id so the deadlock detector can
	// dump a wait-for graph (who is parked on which resource/queue/signal).
	procs map[uint64]*Proc
}

// NewEnv returns a fresh environment whose random source is seeded with seed.
// Two environments with the same seed and the same process program produce
// identical event orderings.
func NewEnv(seed int64) *Env {
	e := &Env{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan yieldMsg),
		procs: make(map[uint64]*Proc),
	}
	e.queue.free = e.freeEvent
	return e
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random source. It must only
// be used from the scheduler goroutine or from a running process (both are
// serialized, so no locking is needed).
func (e *Env) Rand() *rand.Rand { return e.rng }

// Pending reports the number of live (not cancelled) scheduled events. It is
// O(1): the queue maintains the count across push/pop/cancel.
func (e *Env) Pending() int { return e.queue.live }

// Events reports the total number of events dispatched since the Env was
// created (cancelled events are not counted). It is the denominator of the
// kernel benchmark's events/sec.
func (e *Env) Events() uint64 { return e.processed }

// Alive reports the number of processes that have been started and have not
// yet returned.
func (e *Env) Alive() int { return e.alive }

// allocEvent takes an event struct off the free list, or allocates one.
// Ownership: the queue owns a pushed event until it is popped or discarded
// as a tombstone; the kernel frees it before dispatch, so payload fields
// must be captured first and no pointer to the event may outlive that.
func (e *Env) allocEvent() *event {
	if n := len(e.efree); n > 0 {
		ev := e.efree[n-1]
		e.efree[n-1] = nil
		e.efree = e.efree[:n-1]
		return ev
	}
	return &event{}
}

// freeEvent recycles ev, bumping its generation so stale cancel handles
// become no-ops.
func (e *Env) freeEvent(ev *event) {
	ev.gen++
	ev.at = 0
	ev.seq = 0
	ev.proc = nil
	ev.fn = nil
	ev.msg = nil
	ev.w = nil
	ev.cancelled = false
	e.efree = append(e.efree, ev)
}

func (e *Env) push(ev *event) *event {
	e.seq++
	ev.seq = e.seq
	e.queue.push(ev)
	return ev
}

// cancelEvent tombstones ev if it is still the same incarnation (gen
// matches) and still queued. Safe to call any number of times, including
// after the event fired and its struct was recycled.
func (e *Env) cancelEvent(ev *event, gen uint64) {
	if ev == nil || ev.gen != gen || ev.cancelled {
		return
	}
	e.queue.cancel(ev)
}

// Schedule arranges for fn to run at virtual time Now()+d. Callbacks run on
// the scheduler goroutine and must not block on kernel primitives. The
// returned cancel function may be called any number of times, from scheduler
// context, and is a no-op once the event has fired. Hot paths that never
// cancel should use After, which skips the cancel-handle allocation.
func (e *Env) Schedule(d time.Duration, fn func()) (cancel func()) {
	if d < 0 {
		d = 0
	}
	ev := e.allocEvent()
	ev.at = e.now + d
	ev.fn = fn
	e.push(ev)
	gen := ev.gen
	return func() { e.cancelEvent(ev, gen) }
}

// After arranges for fn to run at virtual time Now()+d, like Schedule, but
// without materializing a cancel handle.
func (e *Env) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	ev := e.allocEvent()
	ev.at = e.now + d
	ev.fn = fn
	e.push(ev)
}

// ScheduleDeliver arranges for m.Deliver() to run at virtual time Now()+d.
// Unlike Schedule(d, func(){ ... }) this allocates nothing beyond what the
// caller already holds: the payload is the caller's own Deliverable and the
// event struct comes from the free list.
func (e *Env) ScheduleDeliver(d time.Duration, m Deliverable) {
	if d < 0 {
		d = 0
	}
	ev := e.allocEvent()
	ev.at = e.now + d
	ev.msg = m
	e.push(ev)
}

// scheduleProc arranges for p to resume at time at.
func (e *Env) scheduleProc(at Time, p *Proc) {
	if at < e.now {
		at = e.now
	}
	ev := e.allocEvent()
	ev.at = at
	ev.proc = p
	e.push(ev)
}

// ParkKind classifies what a blocked process is waiting for; it feeds the
// deadlock detector's wait-for dump.
type ParkKind uint8

const (
	ParkNone     ParkKind = iota // running or runnable
	ParkStart                    // spawned, waiting for its first resume
	ParkTimer                    // Sleep / SleepUntil
	ParkResource                 // Resource.Acquire wait queue
	ParkQueue                    // Queue.Get on an empty queue
	ParkSignal                   // Signal.Wait / WaitTimeout
)

func (k ParkKind) String() string {
	switch k {
	case ParkNone:
		return "runnable"
	case ParkStart:
		return "start"
	case ParkTimer:
		return "timer"
	case ParkResource:
		return "resource"
	case ParkQueue:
		return "queue"
	case ParkSignal:
		return "signal"
	}
	return "unknown"
}

// Proc is a simulation process. All blocking methods must be called from the
// process's own goroutine while it is the running process.
type Proc struct {
	env    *Env
	name   string
	id     uint64
	resume chan struct{}

	// Park state: what the process is currently blocked on. Written by the
	// process right before yielding and cleared when it resumes; read by
	// the scheduler goroutine for the wait-for dump (the two never run
	// concurrently, so no locking is needed).
	parkKind ParkKind
	parkObj  string // name of the resource/queue/signal, "" for timers
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// ID returns the process's spawn-ordered identifier (1 for the first
// process started on the Env). Together with Name it labels the process in
// deadlock dumps and determinism diffs.
func (p *Proc) ID() uint64 { return p.id }

// ParkedOn describes what the process is blocked on ("queue relay(slave1)",
// "timer", "runnable"), for diagnostics.
func (p *Proc) ParkedOn() string {
	if p.parkKind == ParkNone || p.parkKind == ParkTimer || p.parkObj == "" {
		return p.parkKind.String()
	}
	return p.parkKind.String() + " " + p.parkObj
}

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Rand returns the environment's deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.env.rng }

// Go starts a new simulation process running fn. The process is scheduled to
// begin at the current virtual time. Go may be called before Run, from
// another process, or from a callback.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: Go on a closed Env")
	}
	e.procSeq++
	p := &Proc{env: e, name: name, id: e.procSeq, resume: make(chan struct{}), parkKind: ParkStart}
	e.alive++
	e.procs[p.id] = p
	// The kernel's own process launcher is the one place a goroutine may be
	// created: the scheduler immediately owns it and resumes it one at a
	// time against the virtual clock.
	//cloudrepl:allow-rawgo the sim kernel implements Env.Go itself; the goroutine is scheduler-managed from birth
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(shutdownSentinel); !ok {
					e.panicVal = r
					e.panicStack = debug.Stack()
				}
			}
			e.yield <- yieldMsg{p, yieldDone}
		}()
		<-p.resume
		if e.closed {
			panic(shutdownSentinel{})
		}
		p.parkKind, p.parkObj = ParkNone, ""
		fn(p)
	}()
	e.scheduleProc(e.now, p)
	return p
}

// wait blocks the calling process until it is resumed by the scheduler,
// recording what it is parked on (kind + object name) for the deadlock
// detector. The caller must have arranged for a wakeup (timer event,
// resource grant, queue put, signal) before calling wait.
func (p *Proc) wait(kind ParkKind, obj string) {
	e := p.env
	if e.cur != p {
		panic(fmt.Sprintf("sim: blocking call on process %q from outside its own goroutine", p.name))
	}
	p.parkKind, p.parkObj = kind, obj
	e.yield <- yieldMsg{p, yieldBlocked}
	// A plain receive, not a select: this handshake runs once per resumed
	// process and a two-way select here costs ~25% of pure-kernel time.
	// Shutdown wakes parked processes through this same channel and the
	// closed flag turns the wakeup into an unwind.
	<-p.resume
	if e.closed {
		panic(shutdownSentinel{})
	}
	p.parkKind, p.parkObj = ParkNone, ""
}

// Sleep suspends the process for virtual duration d (non-positive durations
// still yield to the scheduler for one event cycle).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.env.scheduleProc(p.env.now+d, p)
	p.wait(ParkTimer, "")
}

// SleepUntil suspends the process until virtual time t (immediately resumes
// if t is in the past).
func (p *Proc) SleepUntil(t Time) {
	p.env.scheduleProc(t, p)
	p.wait(ParkTimer, "")
}

// step executes the next event. It returns false when the queue is empty.
// The event struct is recycled before dispatch — payloads are captured
// first, and nothing downstream may retain the pointer.
func (e *Env) step() bool {
	ev, idx := e.queue.locate()
	if ev == nil {
		return false
	}
	e.queue.popLocated(idx)
	at, fn, msg, w, p := ev.at, ev.fn, ev.msg, ev.w, ev.proc
	e.freeEvent(ev)
	if at > e.now {
		e.now = at
	}
	e.processed++
	switch {
	case fn != nil:
		fn()
		e.checkPanic()
	case msg != nil:
		msg.Deliver()
		e.checkPanic()
	case w != nil:
		e.signalTimeout(w)
	default:
		e.cur = p
		p.resume <- struct{}{}
		m := <-e.yield
		e.cur = nil
		if m.kind == yieldDone {
			e.alive--
			delete(e.procs, m.p.id)
		}
		e.checkPanic()
	}
	return true
}

func (e *Env) checkPanic() {
	if e.panicVal != nil {
		v, s := e.panicVal, e.panicStack
		e.panicVal, e.panicStack = nil, nil
		panic(fmt.Sprintf("sim: process panicked: %v\n%s", v, s))
	}
}

// Run executes events until the queue is empty or Stop is called.
func (e *Env) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// RunUntil executes all events scheduled at or before t, then advances the
// clock to exactly t. Later events remain queued. If Stop is called from an
// event, the clock stays where the last event left it — it does not jump to
// t past events that are still runnable.
func (e *Env) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		next := e.peek()
		if next == nil || next.at > t {
			break
		}
		e.step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor executes events for virtual duration d from the current time.
func (e *Env) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// peek returns the earliest non-cancelled event without removing it.
func (e *Env) peek() *event {
	ev, _ := e.queue.locate()
	return ev
}

// Stop makes the current Run/RunUntil/RunFor call return after the event in
// progress. It may be called from a process or callback.
func (e *Env) Stop() { e.stopped = true }

// RunRealtime executes events while pacing virtual time against the wall
// clock: one second of virtual time takes 1/speed wall seconds. It returns
// when the queue is empty, Stop is called, or stop is closed.
//
//cloudrepl:allow-simtime pacing virtual time against the wall clock is this function's entire purpose
func (e *Env) RunRealtime(speed float64, stop <-chan struct{}) {
	if speed <= 0 {
		speed = 1
	}
	e.stopped = false
	start := time.Now()
	base := e.now
	for !e.stopped {
		next := e.peek()
		if next == nil {
			return
		}
		target := time.Duration(float64(next.at-base) / speed)
		if wait := target - time.Since(start); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-stop:
				timer.Stop()
				return
			}
		}
		select {
		case <-stop:
			return
		default:
		}
		e.step()
	}
}

// WaitForGraph renders the wait-for graph of every live process: one line
// per process, sorted by spawn id, naming the resource, queue or signal it
// is parked on. It is the payload of the deadlock detector's panic and is
// also useful on its own when a test hangs.
func (e *Env) WaitForGraph() string {
	ids := make([]uint64, 0, len(e.procs))
	for id := range e.procs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for _, id := range ids {
		p := e.procs[id]
		name := p.name
		if name == "" {
			name = "(unnamed)"
		}
		fmt.Fprintf(&b, "  proc %-4d %-28s parked on %s\n", p.id, name, p.ParkedOn())
	}
	return b.String()
}

// shutdownWatchdog bounds how long Shutdown waits for a single process to
// unwind before declaring the kernel wedged and dumping the wait-for graph.
var shutdownWatchdog = 5 * time.Second

// Shutdown unwinds every blocked process so that no goroutines leak. The
// environment must not be used afterwards. It is safe to call Shutdown after
// Run has returned, including when processes are still blocked on resources
// or queues.
//
// If a process fails to unwind — deferred cleanup blocked on a kernel
// primitive the scheduler does not manage, typically — Shutdown panics with
// a deadlock report: every live process's name and the resource, queue or
// signal it is parked on, so the hang is attributable without a debugger.
//
//cloudrepl:allow-simtime the unwind watchdog must measure wall time: a wedged process stops the virtual clock entirely
func (e *Env) Shutdown() {
	if e.closed {
		return
	}
	e.closed = true
	// Every alive process is parked on its own resume channel — either in
	// wait() or in the spawn preamble — and observes the closed flag when
	// woken. No process can be running because Shutdown is called from the
	// scheduler goroutine between events. Wake one process at a time, in
	// spawn order, and wait for it to finish unwinding before waking the
	// next, so deferred cleanup never runs concurrently across processes.
	ids := make([]uint64, 0, len(e.procs))
	for id := range e.procs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	watchdog := time.NewTimer(shutdownWatchdog)
	defer watchdog.Stop()
	for _, id := range ids {
		p, live := e.procs[id]
		if !live {
			continue
		}
		p.resume <- struct{}{}
		waitDone := true
		for waitDone {
			if !watchdog.Stop() {
				select {
				case <-watchdog.C:
				default:
				}
			}
			watchdog.Reset(shutdownWatchdog)
			select {
			case msg := <-e.yield:
				if msg.kind == yieldDone {
					e.alive--
					delete(e.procs, msg.p.id)
					waitDone = false
				}
			case <-watchdog.C:
				panic(fmt.Sprintf(
					"sim: deadlock during Shutdown: %d process(es) failed to unwind within %v\nwait-for graph:\n%s",
					e.alive, shutdownWatchdog, e.WaitForGraph()))
			}
		}
	}
}
