package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestResourceSerializesWork(t *testing.T) {
	env := NewEnv(1)
	cpu := NewResource(env, "cpu", 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		env.Go("job", func(p *Proc) {
			cpu.Use(p, 100*time.Millisecond)
			finish = append(finish, p.Now())
		})
	}
	env.Run()
	want := []Time{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond}
	for i, w := range want {
		if finish[i] != w {
			t.Fatalf("job %d finished at %v, want %v", i, finish[i], w)
		}
	}
}

func TestResourceParallelism(t *testing.T) {
	env := NewEnv(1)
	cpu := NewResource(env, "cpu", 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		env.Go("job", func(p *Proc) {
			cpu.Use(p, 100*time.Millisecond)
			finish = append(finish, p.Now())
		})
	}
	env.Run()
	// Two servers: jobs finish pairwise at 100ms and 200ms.
	want := []Time{100 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond, 200 * time.Millisecond}
	for i, w := range want {
		if finish[i] != w {
			t.Fatalf("job %d finished at %v, want %v", i, finish[i], w)
		}
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, "r", 1)
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		env.Go("job", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Microsecond) // stagger arrivals
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(time.Millisecond)
			r.Release()
		})
	}
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order %v not FIFO", order)
		}
	}
}

func TestResourceUtilization(t *testing.T) {
	env := NewEnv(1)
	cpu := NewResource(env, "cpu", 1)
	env.Go("halfload", func(p *Proc) {
		for i := 0; i < 10; i++ {
			cpu.Use(p, 50*time.Millisecond)
			p.Sleep(50 * time.Millisecond)
		}
	})
	env.Run()
	if u := cpu.Utilization(); math.Abs(u-0.5) > 0.01 {
		t.Fatalf("utilization = %v, want ≈0.5", u)
	}
}

func TestResourceAvgWait(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, "r", 1)
	// Two jobs arrive together; second waits 100ms. Mean over 2 acquires = 50ms.
	for i := 0; i < 2; i++ {
		env.Go("job", func(p *Proc) { r.Use(p, 100*time.Millisecond) })
	}
	env.Run()
	if w := r.AvgWait(); w != 50*time.Millisecond {
		t.Fatalf("AvgWait = %v, want 50ms", w)
	}
}

func TestResourceResetStats(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, "r", 1)
	env.Go("job", func(p *Proc) { r.Use(p, time.Second) })
	env.Run()
	r.ResetStats()
	env.RunFor(time.Second) // idle second
	if u := r.Utilization(); u != 0 {
		t.Fatalf("utilization after reset = %v, want 0", u)
	}
	if r.Acquires() != 0 {
		t.Fatalf("acquires after reset = %d, want 0", r.Acquires())
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, "r", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on releasing an idle resource")
		}
	}()
	r.Release()
}

func TestResourceInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity 0")
		}
	}()
	NewResource(NewEnv(1), "bad", 0)
}

// Property: for any mix of job service times on a single-server resource,
// total busy time equals the sum of service times, the resource never holds
// more than its capacity, and every job eventually completes.
func TestResourceConservationProperty(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		env := NewEnv(seed)
		capacity := 1 + int(uint(seed)%3)
		r := NewResource(env, "r", capacity)
		var total time.Duration
		completed := 0
		overCap := false
		for _, v := range raw {
			service := time.Duration(v%5000) * time.Microsecond
			total += service
			env.Go("job", func(p *Proc) {
				p.Sleep(Exp(p.Rand(), time.Millisecond))
				r.Acquire(p)
				if r.InUse() > r.Cap() {
					overCap = true
				}
				p.Sleep(service)
				r.Release()
				completed++
			})
		}
		env.Run()
		if overCap {
			t.Logf("capacity exceeded")
			return false
		}
		if completed != len(raw) {
			t.Logf("completed %d of %d", completed, len(raw))
			return false
		}
		busy := r.busyIntegral // seconds·servers
		want := total.Seconds()
		if math.Abs(busy-want) > 1e-6*math.Max(1, want) {
			t.Logf("busy integral %v, want %v", busy, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireHighJumpsQueue(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, "cpu", 1)
	var order []string
	env.Go("holder", func(p *Proc) {
		r.Use(p, 10*time.Millisecond)
	})
	for i := 0; i < 3; i++ {
		i := i
		env.Go("normal", func(p *Proc) {
			p.Sleep(time.Duration(i+1) * time.Millisecond)
			r.Acquire(p)
			order = append(order, "normal")
			p.Sleep(time.Millisecond)
			r.Release()
		})
	}
	env.Go("urgent", func(p *Proc) {
		p.Sleep(5 * time.Millisecond) // arrives last, behind 3 waiters
		r.AcquireHigh(p)
		order = append(order, "urgent")
		p.Sleep(time.Millisecond)
		r.Release()
	})
	env.Run()
	if len(order) != 4 || order[0] != "urgent" {
		t.Fatalf("grant order %v; high priority should be served first", order)
	}
}

func TestUseHighPreservesAccounting(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, "cpu", 1)
	env.Go("a", func(p *Proc) { r.UseHigh(p, 40*time.Millisecond) })
	env.Go("b", func(p *Proc) { r.Use(p, 60*time.Millisecond) })
	env.Run()
	if got := r.busyIntegral; got < 0.099 || got > 0.101 {
		t.Fatalf("busy integral %v, want ≈0.1s", got)
	}
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d after quiesce", r.InUse())
	}
}
