package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestQueuePutGet(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q")
	var got []int
	env.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Millisecond)
			q.Put(i)
		}
	})
	env.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
			if v == 4 {
				return
			}
		}
	})
	env.Run()
	if len(got) != 5 {
		t.Fatalf("got %v, want 5 items", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want FIFO order", got)
		}
	}
}

func TestQueueGetBlocksUntilPut(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[string](env, "q")
	var when Time
	env.Go("consumer", func(p *Proc) {
		q.Get(p)
		when = p.Now()
	})
	env.Schedule(7*time.Millisecond, func() { q.Put("hello") })
	env.Run()
	if when != 7*time.Millisecond {
		t.Fatalf("consumer resumed at %v, want 7ms", when)
	}
}

func TestQueueMultipleConsumersFIFO(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		env.Go("consumer", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Microsecond)
			q.Get(p)
			order = append(order, i)
		})
	}
	env.Schedule(time.Millisecond, func() {
		q.Put(100)
		q.Put(200)
		q.Put(300)
	})
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("consumers served in order %v, want FIFO", order)
		}
	}
}

func TestQueueClose(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q")
	q.Put(1)
	q.Put(2)
	var drained []int
	var okAfterClose bool
	env.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				okAfterClose = false
				return
			}
			drained = append(drained, v)
		}
	})
	env.Schedule(time.Millisecond, q.Close)
	env.Run()
	if len(drained) != 2 {
		t.Fatalf("drained %v, want buffered items before close", drained)
	}
	if okAfterClose {
		t.Fatal("Get returned ok after close and drain")
	}
	// Put after close is dropped.
	q.Put(3)
	if q.Len() != 0 {
		t.Fatal("Put after close buffered an item")
	}
}

func TestQueueCloseWakesAllWaiters(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q")
	woken := 0
	for i := 0; i < 4; i++ {
		env.Go("consumer", func(p *Proc) {
			_, ok := q.Get(p)
			if !ok {
				woken++
			}
		})
	}
	env.Schedule(time.Millisecond, q.Close)
	env.Run()
	if woken != 4 {
		t.Fatalf("woken = %d, want 4", woken)
	}
}

func TestQueueTryGetAndPeek(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q")
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue returned ok")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue returned ok")
	}
	q.Put(42)
	if v, ok := q.Peek(); !ok || v != 42 {
		t.Fatalf("Peek = %v/%v, want 42/true", v, ok)
	}
	if q.Len() != 1 {
		t.Fatal("Peek consumed the item")
	}
	if v, ok := q.TryGet(); !ok || v != 42 {
		t.Fatalf("TryGet = %v/%v, want 42/true", v, ok)
	}
}

func TestQueueMaxDepth(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q")
	for i := 0; i < 10; i++ {
		q.Put(i)
	}
	for i := 0; i < 5; i++ {
		q.TryGet()
	}
	q.Put(11)
	if q.MaxDepth() != 10 {
		t.Fatalf("MaxDepth = %d, want 10", q.MaxDepth())
	}
}

// Property: items come out in exactly the order they went in, none lost,
// none duplicated, regardless of producer/consumer interleaving.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		count := int(n%100) + 1
		env := NewEnv(seed)
		q := NewQueue[int](env, "q")
		env.Go("producer", func(p *Proc) {
			for i := 0; i < count; i++ {
				p.Sleep(Exp(p.Rand(), 100*time.Microsecond))
				q.Put(i)
			}
		})
		var got []int
		env.Go("consumer", func(p *Proc) {
			for len(got) < count {
				p.Sleep(Exp(p.Rand(), 150*time.Microsecond))
				v, ok := q.Get(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		env.Run()
		if len(got) != count {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
