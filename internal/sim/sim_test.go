package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	env := NewEnv(1)
	var at Time
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(3 * time.Second)
		at = p.Now()
	})
	env.Run()
	if at != 3*time.Second {
		t.Fatalf("woke at %v, want 3s", at)
	}
	if env.Now() != 3*time.Second {
		t.Fatalf("env.Now() = %v, want 3s", env.Now())
	}
}

func TestRunIsInstantInWallClock(t *testing.T) {
	env := NewEnv(1)
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(24 * time.Hour)
	})
	start := time.Now()
	env.Run()
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("simulating 24h took %v of wall time", wall)
	}
}

func TestEventOrdering(t *testing.T) {
	env := NewEnv(1)
	var order []string
	for _, tc := range []struct {
		name  string
		delay time.Duration
	}{
		{"c", 3 * time.Millisecond},
		{"a", 1 * time.Millisecond},
		{"b", 2 * time.Millisecond},
	} {
		tc := tc
		env.Go(tc.name, func(p *Proc) {
			p.Sleep(tc.delay)
			order = append(order, tc.name)
		})
	}
	env.Run()
	if got := strings.Join(order, ""); got != "abc" {
		t.Fatalf("order = %q, want abc", got)
	}
}

func TestSameTimeEventsRunInScheduleOrder(t *testing.T) {
	env := NewEnv(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		env.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(time.Millisecond) // all wake at the same instant
			order = append(order, i)
		})
	}
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestScheduleCallback(t *testing.T) {
	env := NewEnv(1)
	fired := Time(-1)
	env.Schedule(5*time.Millisecond, func() { fired = env.Now() })
	env.Run()
	if fired != 5*time.Millisecond {
		t.Fatalf("callback fired at %v, want 5ms", fired)
	}
}

func TestScheduleCancel(t *testing.T) {
	env := NewEnv(1)
	fired := false
	cancel := env.Schedule(5*time.Millisecond, func() { fired = true })
	cancel()
	env.Run()
	if fired {
		t.Fatal("cancelled callback fired")
	}
}

func TestRunUntilLeavesFutureEvents(t *testing.T) {
	env := NewEnv(1)
	var fired []Time
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		env.Schedule(d, func() { fired = append(fired, env.Now()) })
	}
	env.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if env.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", env.Now())
	}
	env.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events after Run, want 3", len(fired))
	}
}

func TestRunForAdvancesEvenWithoutEvents(t *testing.T) {
	env := NewEnv(1)
	env.RunFor(10 * time.Second)
	if env.Now() != 10*time.Second {
		t.Fatalf("Now() = %v, want 10s", env.Now())
	}
}

func TestStop(t *testing.T) {
	env := NewEnv(1)
	count := 0
	env.Go("counter", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Millisecond)
			count++
			if count == 10 {
				p.Env().Stop()
			}
		}
	})
	env.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10 after Stop", count)
	}
	env.Shutdown()
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) string {
		env := NewEnv(seed)
		var b strings.Builder
		for i := 0; i < 5; i++ {
			i := i
			env.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
				for j := 0; j < 20; j++ {
					p.Sleep(Exp(p.Rand(), 10*time.Millisecond))
					fmt.Fprintf(&b, "%d@%d;", i, p.Now().Microseconds())
				}
			})
		}
		env.Run()
		return b.String()
	}
	a, b := trace(42), trace(42)
	if a != b {
		t.Fatal("same seed produced different traces")
	}
	if c := trace(43); c == a {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

func TestProcPanicPropagates(t *testing.T) {
	env := NewEnv(1)
	env.Go("boom", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("kaboom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate to Run")
		}
		if !strings.Contains(fmt.Sprint(r), "kaboom") {
			t.Fatalf("panic %v does not mention original cause", r)
		}
	}()
	env.Run()
}

func TestShutdownUnblocksParkedProcesses(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "never")
	for i := 0; i < 5; i++ {
		env.Go("blocked", func(p *Proc) {
			q.Get(p) // never satisfied
		})
	}
	env.Run() // returns with the 5 procs parked
	if env.Alive() != 5 {
		t.Fatalf("alive = %d, want 5", env.Alive())
	}
	env.Shutdown()
	if env.Alive() != 0 {
		t.Fatalf("alive after Shutdown = %d, want 0", env.Alive())
	}
}

func TestShutdownBeforeFirstResume(t *testing.T) {
	env := NewEnv(1)
	ran := false
	env.Go("neverruns", func(p *Proc) { ran = true })
	// Shut down without running: the process is parked on its initial
	// resume and must still unwind.
	env.Shutdown()
	if ran {
		t.Fatal("process body ran despite immediate shutdown")
	}
	if env.Alive() != 0 {
		t.Fatalf("alive = %d, want 0", env.Alive())
	}
}

func TestGoFromProcessAndCallback(t *testing.T) {
	env := NewEnv(1)
	var got []string
	env.Go("parent", func(p *Proc) {
		p.Env().Go("child", func(c *Proc) {
			c.Sleep(time.Millisecond)
			got = append(got, "child")
		})
		got = append(got, "parent")
	})
	env.Schedule(2*time.Millisecond, func() {
		env.Go("late", func(c *Proc) { got = append(got, "late") })
	})
	env.Run()
	want := "parent,child,late"
	if s := strings.Join(got, ","); s != want {
		t.Fatalf("got %q, want %q", s, want)
	}
}

func TestRunRealtimePacesAgainstWallClock(t *testing.T) {
	env := NewEnv(1)
	ticks := 0
	env.Go("ticker", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(100 * time.Millisecond)
			ticks++
		}
	})
	start := time.Now()
	env.RunRealtime(10, nil) // 500ms virtual at 10x ≈ 50ms wall
	wall := time.Since(start)
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	if wall < 30*time.Millisecond {
		t.Fatalf("realtime run finished in %v; pacing appears disabled", wall)
	}
	if wall > 2*time.Second {
		t.Fatalf("realtime run took %v; pacing far too slow", wall)
	}
}

func TestRunRealtimeStops(t *testing.T) {
	env := NewEnv(1)
	env.Go("forever", func(p *Proc) {
		for {
			p.Sleep(time.Hour)
		}
	})
	stop := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(stop)
	}()
	done := make(chan struct{})
	go func() {
		env.RunRealtime(1, stop)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RunRealtime did not honor stop channel")
	}
	env.Shutdown()
}

func TestBlockingFromWrongGoroutinePanics(t *testing.T) {
	env := NewEnv(1)
	var victim *Proc
	env.Go("victim", func(p *Proc) {
		victim = p
		p.Sleep(time.Hour)
	})
	env.RunUntil(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when blocking from outside the process goroutine")
		}
		env.Shutdown()
	}()
	victim.Sleep(time.Second) // wrong goroutine: test goroutine, not victim's
}

func TestPendingAndAlive(t *testing.T) {
	env := NewEnv(1)
	env.Go("a", func(p *Proc) { p.Sleep(time.Second) })
	env.Go("b", func(p *Proc) { p.Sleep(2 * time.Second) })
	if env.Alive() != 2 {
		t.Fatalf("alive = %d, want 2", env.Alive())
	}
	if env.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", env.Pending())
	}
	env.Run()
	if env.Alive() != 0 || env.Pending() != 0 {
		t.Fatalf("after run: alive=%d pending=%d, want 0/0", env.Alive(), env.Pending())
	}
}
