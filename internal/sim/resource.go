package sim

import (
	"fmt"
	"time"
)

// Resource models a multi-server station with a FIFO wait queue: a CPU with
// N hardware threads, a disk with one head, a network card. A process
// acquires one server slot, holds it for some service time and releases it.
// Utilization and queueing statistics are tracked on the virtual timeline.
type Resource struct {
	env  *Env
	name string
	cap  int

	inUse   int
	waiters []*Proc // normal-priority FIFO
	urgent  []*Proc // high-priority FIFO, always served first

	// Integrals for time-weighted statistics.
	lastChange    Time
	busyIntegral  float64 // ∫ inUse dt, in seconds·servers
	queueIntegral float64 // ∫ len(waiters) dt, in seconds·procs
	statsStart    Time

	acquires  uint64
	totalWait time.Duration
}

// NewResource creates a resource with the given number of server slots.
func NewResource(env *Env, name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity must be >= 1, got %d", name, capacity))
	}
	return &Resource{env: env, name: name, cap: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Cap returns the number of server slots.
func (r *Resource) Cap() int { return r.cap }

// InUse returns the number of slots currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) + len(r.urgent) }

func (r *Resource) accumulate() {
	now := r.env.now
	dt := (now - r.lastChange).Seconds()
	if dt > 0 {
		r.busyIntegral += dt * float64(r.inUse)
		r.queueIntegral += dt * float64(len(r.waiters)+len(r.urgent))
	}
	r.lastChange = now
}

// Acquire blocks the calling process until a server slot is free. Slots
// are granted strictly in arrival order within a priority class; the
// high-priority class always goes first.
func (r *Resource) Acquire(p *Proc) { r.acquire(p, false) }

// AcquireHigh is Acquire at high priority: the caller jumps ahead of every
// normal-priority waiter (but behind earlier high-priority ones). A slave's
// SQL applier configured with apply priority uses this to avoid starving
// behind client reads.
func (r *Resource) AcquireHigh(p *Proc) { r.acquire(p, true) }

func (r *Resource) acquire(p *Proc, high bool) {
	start := r.env.now
	r.accumulate()
	r.acquires++
	if r.inUse < r.cap && len(r.waiters) == 0 && len(r.urgent) == 0 {
		r.inUse++
		return
	}
	if high {
		r.urgent = append(r.urgent, p)
	} else {
		r.waiters = append(r.waiters, p)
	}
	p.wait(ParkResource, r.name)
	// The releasing side already claimed the slot on our behalf.
	r.totalWait += r.env.now - start
}

// Release frees a slot held by the calling process (or on its behalf). It
// may be called from any process or callback.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	r.accumulate()
	r.inUse--
	if r.inUse >= r.cap {
		return
	}
	var next *Proc
	switch {
	case len(r.urgent) > 0:
		next = r.urgent[0]
		copy(r.urgent, r.urgent[1:])
		r.urgent = r.urgent[:len(r.urgent)-1]
	case len(r.waiters) > 0:
		next = r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
	default:
		return
	}
	r.inUse++ // claim the slot for the woken process
	r.env.scheduleProc(r.env.now, next)
}

// Use acquires a slot, holds it for service duration d and releases it.
// This is the common pattern for charging CPU time.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// UseHigh is Use with a high-priority acquisition.
func (r *Resource) UseHigh(p *Proc, d time.Duration) {
	r.AcquireHigh(p)
	p.Sleep(d)
	r.Release()
}

// ResetStats restarts utilization accounting from the current virtual time.
func (r *Resource) ResetStats() {
	r.accumulate()
	r.busyIntegral = 0
	r.queueIntegral = 0
	r.statsStart = r.env.now
	r.acquires = 0
	r.totalWait = 0
}

// Utilization returns the time-averaged fraction of capacity in use since
// the last ResetStats (or creation).
func (r *Resource) Utilization() float64 {
	r.accumulate()
	elapsed := (r.env.now - r.statsStart).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return r.busyIntegral / (elapsed * float64(r.cap))
}

// BusySeconds returns the cumulative busy integral (seconds·servers) since
// the last ResetStats. It is a non-decreasing counter between resets, which
// makes it the right input for windowed-utilization estimators that need
// "how busy was this CPU over the last N seconds" rather than a run-wide
// average.
func (r *Resource) BusySeconds() float64 {
	r.accumulate()
	return r.busyIntegral
}

// AvgQueueLen returns the time-averaged number of waiting processes since
// the last ResetStats.
func (r *Resource) AvgQueueLen() float64 {
	r.accumulate()
	elapsed := (r.env.now - r.statsStart).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return r.queueIntegral / elapsed
}

// Acquires returns the number of Acquire calls since the last ResetStats.
func (r *Resource) Acquires() uint64 { return r.acquires }

// AvgWait returns the mean time processes spent queued before acquiring a
// slot since the last ResetStats.
func (r *Resource) AvgWait() time.Duration {
	if r.acquires == 0 {
		return 0
	}
	return r.totalWait / time.Duration(r.acquires)
}
