package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestExpMean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	mean := 5 * time.Second
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += Exp(rng, mean)
	}
	got := float64(sum) / n
	if math.Abs(got-float64(mean)) > 0.03*float64(mean) {
		t.Fatalf("sample mean %v, want ≈%v", time.Duration(got), mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if d := Exp(rng, 0); d != 0 {
		t.Fatalf("Exp(0) = %v, want 0", d)
	}
	if d := Exp(rng, -time.Second); d != 0 {
		t.Fatalf("Exp(-1s) = %v, want 0", d)
	}
}

func TestNormalTruncatesAtZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		if d := Normal(rng, time.Millisecond, 10*time.Millisecond); d < 0 {
			t.Fatalf("Normal produced negative duration %v", d)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 100001
	samples := make([]time.Duration, n)
	for i := range samples {
		samples[i] = LogNormal(rng, 20*time.Millisecond, 0.5)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	med := samples[n/2]
	if math.Abs(float64(med)-float64(20*time.Millisecond)) > 0.05*float64(20*time.Millisecond) {
		t.Fatalf("sample median %v, want ≈20ms", med)
	}
}

func TestUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lo, hi := 10*time.Millisecond, 20*time.Millisecond
	for i := 0; i < 10000; i++ {
		d := Uniform(rng, lo, hi)
		if d < lo || d >= hi {
			t.Fatalf("Uniform = %v outside [%v, %v)", d, lo, hi)
		}
	}
	if d := Uniform(rng, hi, lo); d != hi {
		t.Fatalf("degenerate Uniform = %v, want lo", d)
	}
}

func TestJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := 100 * time.Millisecond
	for i := 0; i < 10000; i++ {
		d := Jitter(rng, base, 0.2)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("Jitter = %v outside ±20%% of %v", d, base)
		}
	}
	if d := Jitter(rng, base, 0); d != base {
		t.Fatalf("Jitter with f=0 = %v, want %v", d, base)
	}
}

func TestTruncNormFactorStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		f := TruncNormFactor(rng, 0.21)
		if f < 0.3 || f > 3 {
			t.Fatalf("factor %v outside truncation bounds", f)
		}
		sum += f
		sumsq += f * f
	}
	mean := sum / n
	cov := math.Sqrt(sumsq/n-mean*mean) / mean
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("mean factor %v, want ≈1", mean)
	}
	if math.Abs(cov-0.21) > 0.03 {
		t.Fatalf("CoV %v, want ≈0.21", cov)
	}
	if f := TruncNormFactor(rng, 0); f != 1 {
		t.Fatalf("CoV 0 factor = %v, want 1", f)
	}
}
