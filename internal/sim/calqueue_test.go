package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// refHeap is the kernel's previous event queue — a container/heap ordered
// by (at, seq) — kept here as the ordering oracle for the calendar queue.
type refHeap []*event

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return eventBefore(h[i], h[j]) }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(*event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
func (h *refHeap) popLive() *event {
	for h.Len() > 0 {
		ev := heap.Pop(h).(*event)
		if !ev.cancelled {
			return ev
		}
	}
	return nil
}

// TestCalQueueDifferentialVsHeap drives the old binary heap and the new
// calendar queue with the same randomized schedule/cancel/pop workload and
// asserts identical pop order — including (at, seq) ties, which is what the
// determinism contract hangs on.
func TestCalQueueDifferentialVsHeap(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 99, 12345} {
		rng := rand.New(rand.NewSource(seed))
		cq := &calQueue{free: func(*event) {}}
		ref := &refHeap{}

		var seq uint64
		var pending []*event // live events present in both structures
		push := func(at Time) {
			seq++
			// Two physical copies of one logical event, since each
			// structure mutates its own links/flags.
			a := &event{at: at, seq: seq}
			b := &event{at: at, seq: seq}
			cq.push(a)
			heap.Push(ref, b)
			pending = append(pending, a)
		}

		var now Time
		for op := 0; op < 20000; op++ {
			switch r := rng.Intn(10); {
			case r < 5: // schedule
				at := now + Time(rng.Int63n(int64(5*time.Second)))
				if rng.Intn(10) == 0 {
					at = now // deliberate ties to exercise seq ordering
				}
				if rng.Intn(50) == 0 {
					at = MaxTime // parked-timer sentinel (WaitTimeout with no deadline)
				}
				push(at)
			case r < 7 && len(pending) > 0: // cancel a random live event
				i := rng.Intn(len(pending))
				ev := pending[i]
				pending = append(pending[:i], pending[i+1:]...)
				cq.cancel(ev)
				// The ref holds its own copy: find by (at, seq) and flag it.
				for _, rev := range *ref {
					if rev.at == ev.at && rev.seq == ev.seq {
						rev.cancelled = true
						break
					}
				}
			default: // pop
				got := cq.pop()
				want := ref.popLive()
				if (got == nil) != (want == nil) {
					t.Fatalf("seed %d op %d: pop mismatch: cal=%v heap=%v", seed, op, got, want)
				}
				if got == nil {
					continue
				}
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("seed %d op %d: pop order diverged: cal=(%d,%d) heap=(%d,%d)",
						seed, op, got.at, got.seq, want.at, want.seq)
				}
				if got.at > now && got.at != MaxTime {
					now = got.at
				}
				for i, ev := range pending {
					if ev == got {
						pending = append(pending[:i], pending[i+1:]...)
						break
					}
				}
			}
		}
		// Drain both completely: the tails must agree too.
		for {
			got, want := cq.pop(), ref.popLive()
			if got == nil && want == nil {
				break
			}
			if got == nil || want == nil || got.at != want.at || got.seq != want.seq {
				t.Fatalf("seed %d drain: order diverged: cal=%v heap=%v", seed, got, want)
			}
		}
	}
}

// TestCalQueueTombstonesBounded is the regression test for the
// cancelled-event leak: before the compaction pass, a workload that arms
// and cancels far-future timers (exactly what Signal.WaitTimeout does on
// every proxied query) kept every tombstone queued until its due time,
// growing the queue without bound. Compaction must hold total queue length
// within 2× the live population (plus the pre-compaction floor).
func TestCalQueueTombstonesBounded(t *testing.T) {
	freed := 0
	cq := &calQueue{free: func(*event) { freed++ }}
	var seq uint64
	live := []*event{}
	for i := 0; i < 100000; i++ {
		seq++
		ev := &event{at: Time(i) * Time(time.Hour), seq: seq}
		cq.push(ev)
		live = append(live, ev)
		// Cancel almost everything, like timeout timers that rarely fire.
		if len(live) > 10 {
			cq.cancel(live[0])
			live = live[1:]
		}
		if max := 2*cq.live + calCompactFloor; cq.size > max {
			t.Fatalf("after %d pushes: queue size %d exceeds bound %d (live %d)", i+1, cq.size, max, cq.live)
		}
	}
	if cq.live != len(live) {
		t.Fatalf("live count %d, want %d", cq.live, len(live))
	}
	if freed == 0 {
		t.Fatal("no tombstones were recycled")
	}
}

// TestPendingMatchesScan checks the O(1) Pending counter against a direct
// scan of the queue's buckets across schedule/cancel/run churn. Pending
// was previously an O(n) walk per call; now it must stay consistent with
// the ground truth for free.
func TestPendingMatchesScan(t *testing.T) {
	e := NewEnv(1)
	scan := func() int {
		n := 0
		for _, b := range e.queue.buckets {
			for _, ev := range b {
				if !ev.cancelled {
					n++
				}
			}
		}
		return n
	}
	rng := rand.New(rand.NewSource(7))
	var cancels []func()
	for i := 0; i < 500; i++ {
		switch {
		case rng.Intn(3) > 0:
			cancels = append(cancels, e.Schedule(Time(rng.Int63n(int64(time.Minute))), func() {}))
		case len(cancels) > 0:
			j := rng.Intn(len(cancels))
			cancels[j]()
			cancels[j]() // double-cancel must be a no-op for the counter
			cancels = append(cancels[:j], cancels[j+1:]...)
		}
		if got, want := e.Pending(), scan(); got != want {
			t.Fatalf("step %d: Pending()=%d, scan=%d", i, got, want)
		}
	}
	e.RunUntil(Time(30 * time.Second))
	if got, want := e.Pending(), scan(); got != want {
		t.Fatalf("after partial run: Pending()=%d, scan=%d", got, want)
	}
	e.Run()
	if got := e.Pending(); got != 0 {
		t.Fatalf("after full run: Pending()=%d, want 0", got)
	}
}

// TestRunUntilStopKeepsClock is the regression test for Stop() inside a
// callback: RunUntil used to advance e.now to its target even when the
// simulation had been stopped mid-run, so post-mortem timestamps lied.
func TestRunUntilStopKeepsClock(t *testing.T) {
	e := NewEnv(1)
	stopAt := Time(3 * time.Second)
	e.Schedule(stopAt, func() { e.Stop() })
	e.Schedule(Time(5*time.Second), func() { t.Fatal("event after Stop ran") })
	e.RunUntil(Time(10 * time.Second))
	if e.Now() != stopAt {
		t.Fatalf("clock advanced to %v after Stop; want %v", e.Now(), stopAt)
	}
}

// TestSleepSteadyStateAllocs guards the event free list: once the pool is
// primed, a schedule→fire cycle must not allocate.
func TestSleepSteadyStateAllocs(t *testing.T) {
	e := NewEnv(1)
	fn := func() {}
	e.After(Time(time.Millisecond), fn) // prime the pool
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		e.After(Time(time.Millisecond), fn)
		e.Run()
	})
	if allocs > 0 {
		t.Fatalf("schedule/fire cycle allocates %.1f objects; want 0", allocs)
	}
}

// TestWaitTimeoutSteadyStateAllocs guards the pooled waiter + timer path:
// a signaled WaitTimeout must reuse the waiter and the cancelled timer
// event once the pools are primed (the coroutine handshake itself is
// allocation-free).
func TestWaitTimeoutSteadyStateAllocs(t *testing.T) {
	e := NewEnv(1)
	s := NewSignal(e)
	// Closures hoisted so the measurement sees the kernel's allocations,
	// not the test's own captures.
	waitFn := func(p *Proc) { s.WaitTimeout(p, Time(time.Hour)) }
	bcast := func() { s.Broadcast() }
	cycle := func() {
		e.Go("waiter", waitFn)
		e.After(Time(time.Millisecond), bcast)
		e.Run()
	}
	cycle() // prime pools
	allocs := testing.AllocsPerRun(100, cycle)
	// Go() itself allocates the Proc and goroutine stack; measure the
	// remainder by comparing against a spawn that never waits.
	noop := func(p *Proc) {}
	tick := func() {}
	base := testing.AllocsPerRun(100, func() {
		e.Go("noop", noop)
		e.After(Time(time.Millisecond), tick)
		e.Run()
	})
	if allocs > base {
		t.Fatalf("WaitTimeout cycle allocates %.1f objects vs %.1f spawn baseline; waiter/timer pooling regressed", allocs, base)
	}
}
