// Package sim implements a process-based discrete-event simulation kernel.
//
// Every timing-sensitive component of cloudrepl — database server CPUs,
// network links, clocks, NTP daemons, benchmark users — runs as a simulation
// process on a shared virtual timeline. A process is an ordinary goroutine
// that blocks only through kernel primitives (Proc.Sleep, Resource.Acquire,
// Queue.Get, Signal.Wait). The kernel runs exactly one process at a time and
// orders wakeups by (virtual time, schedule sequence), so a run is fully
// deterministic for a given seed.
//
// The kernel supports two run modes: Run/RunFor/RunUntil execute events as
// fast as the host allows (a 35-minute experiment finishes in seconds), and
// RunRealtime paces virtual time against the wall clock for interactive
// demos.
//
// The zero kernel overhead target is modest — a few hundred thousand events
// per second — which is ample for the Cloudstone-scale experiments this
// repository reproduces.
package sim
