package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestWaitForGraphNamesParkSites: the wait-for dump must name every live
// process and the exact primitive it is parked on — that is what makes a
// deadlock report attributable without a debugger.
func TestWaitForGraphNamesParkSites(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "relay(slave1)")
	r := NewResource(env, "cpu(master)", 1)
	sig := NewSignal(env).Named("semisync-ack(master)")

	env.Go("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(time.Hour) // keeps the resource busy, then parks on a timer
	})
	env.Go("applier", func(p *Proc) { q.Get(p) })
	env.Go("contender", func(p *Proc) { r.Acquire(p) })
	env.Go("waiter", func(p *Proc) { sig.Wait(p) })
	env.RunFor(time.Minute)

	g := env.WaitForGraph()
	for _, s := range []string{
		"holder", "timer",
		"applier", "queue relay(slave1)",
		"contender", "resource cpu(master)",
		"waiter", "signal semisync-ack(master)",
	} {
		if !strings.Contains(g, s) {
			t.Errorf("wait-for graph missing %q:\n%s", s, g)
		}
	}

	// Spawn-ordered ids label the same processes in determinism diffs.
	if !strings.Contains(g, "proc 1") || !strings.Contains(g, "proc 4") {
		t.Errorf("wait-for graph missing spawn-ordered ids:\n%s", g)
	}
	env.Shutdown()
}

// TestShutdownDeadlockPanicDumpsGraph: a process whose deferred cleanup
// blocks on a primitive the scheduler does not manage wedges Shutdown; the
// watchdog must convert the silent hang into a panic carrying the wait-for
// graph instead of the old opaque timeout.
func TestShutdownDeadlockPanicDumpsGraph(t *testing.T) {
	old := shutdownWatchdog
	shutdownWatchdog = 200 * time.Millisecond
	defer func() { shutdownWatchdog = old }()

	env := NewEnv(1)
	wedge := make(chan struct{})
	env.Go("wedged-applier", func(p *Proc) {
		// Deferred cleanup stuck on a raw channel: exactly the bug class the
		// detector exists for (cleanup relying on kernel-external signaling).
		defer func() { <-wedge }()
		p.Sleep(time.Hour)
	})
	env.RunFor(time.Minute)

	defer close(wedge) // unstick the goroutine so the test process drains
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Shutdown returned despite a wedged process")
		}
		msg := fmt.Sprint(r)
		for _, want := range []string{
			"deadlock during Shutdown",
			"wait-for graph",
			"wedged-applier",
		} {
			if !strings.Contains(msg, want) {
				t.Errorf("deadlock panic missing %q:\n%s", want, msg)
			}
		}
	}()
	env.Shutdown()
}

// TestShutdownCleanWithParkedProcs: processes parked on every primitive
// kind unwind cleanly — the watchdog must never fire on a healthy model.
func TestShutdownCleanWithParkedProcs(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "relay")
	sig := NewSignal(env).Named("ack")
	r := NewResource(env, "cpu", 1)
	env.Go("a", func(p *Proc) { q.Get(p) })
	env.Go("b", func(p *Proc) { sig.Wait(p) })
	env.Go("c", func(p *Proc) { r.Use(p, time.Hour) })
	env.Go("d", func(p *Proc) { r.Acquire(p) })
	env.RunFor(time.Minute)
	env.Shutdown()
	if env.Alive() != 0 {
		t.Fatalf("%d process(es) alive after Shutdown", env.Alive())
	}
	if g := env.WaitForGraph(); g != "" {
		t.Fatalf("wait-for graph not empty after Shutdown:\n%s", g)
	}
}
