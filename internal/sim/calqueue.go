package sim

// calQueue is the kernel's event queue: a calendar queue (Brown 1988) — a
// bucketed time wheel whose bucket count and width adapt to the live event
// population, giving O(1) amortized push/pop against the binary heap's
// O(log n). Ordering is the exact total order the old heap used: ascending
// (at, seq), so the swap is invisible to the determinism contract — two
// events at one instant still fire in schedule order.
//
// Cancelled events are tombstones: cancellation only flags the event (the
// canceller holds no position handle), and tombstones are discarded when
// they surface at a bucket head — or in bulk by compact() once they
// outnumber live events, which bounds queue length at 2× the live
// population under cancel-heavy workloads (timeout timers that almost
// always get cancelled; see Signal.WaitTimeout).
type calQueue struct {
	buckets [][]*event
	mask    int  // len(buckets)-1; bucket count is a power of two
	width   Time // virtual-time span of one bucket

	// Scan cursor: the earliest live event is at or after the slice
	// [top-width, top) that bucket cur owns this "year". locate advances
	// the cursor bucket by bucket; push rewinds it when an earlier event
	// arrives.
	cur int
	top Time

	size      int // events stored, tombstones included
	live      int // non-cancelled events
	cancelled int // tombstones still buried in buckets

	// free recycles a discarded tombstone back to the Env's event pool.
	free func(*event)
}

// calMinBuckets is the initial and minimum bucket count.
const calMinBuckets = 8

// calCompactFloor is the minimum total size before compact() runs; below
// it the tombstone scan cost is trivial and rebuilding would thrash.
const calCompactFloor = 64

func (cq *calQueue) init() {
	cq.buckets = make([][]*event, calMinBuckets)
	cq.mask = calMinBuckets - 1
	cq.width = Time(1e6) // 1ms starting guess; resize() re-derives it
	cq.cur = 0
	cq.top = cq.width
}

// bucketOf maps a timestamp to its bucket index.
func (cq *calQueue) bucketOf(at Time) int {
	return int(uint64(at)/uint64(cq.width)) & cq.mask
}

// eventBefore is the kernel's total event order: ascending time, ties
// broken by schedule sequence.
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev, keeping its bucket sorted by (at, seq).
func (cq *calQueue) push(ev *event) {
	if cq.buckets == nil {
		cq.init()
	}
	if cq.live >= 2*len(cq.buckets) {
		cq.resize(2 * len(cq.buckets))
	}
	cq.insert(ev)
	cq.size++
	cq.live++
	// An event earlier than the scan cursor's slice would be missed by the
	// forward scan: rewind the cursor onto its slice.
	if ev.at < cq.top-cq.width {
		cq.cur = cq.bucketOf(ev.at)
		cq.setTopFor(ev.at)
	}
}

// insert places ev into its bucket in (at, seq) order. Buckets hold O(1)
// events when the width matches the schedule density, so the insertion
// scan from the tail is cheap; a skewed distribution degrades to a longer
// sorted-list insert, never to wrong ordering.
func (cq *calQueue) insert(ev *event) {
	idx := cq.bucketOf(ev.at)
	b := append(cq.buckets[idx], ev)
	i := len(b) - 1
	for i > 0 && eventBefore(ev, b[i-1]) {
		b[i] = b[i-1]
		i--
	}
	b[i] = ev
	cq.buckets[idx] = b
}

// setTopFor positions the scan cursor's slice boundary just past at,
// saturating near the end of the timeline (events at ~MaxTime are found by
// the direct-search fallback instead of boundary arithmetic that would
// overflow).
func (cq *calQueue) setTopFor(at Time) {
	chunk := at / cq.width
	if chunk >= MaxTime/cq.width {
		cq.top = MaxTime
		return
	}
	cq.top = (chunk + 1) * cq.width
}

// removeAt deletes and returns the event at position pos of bucket idx.
func (cq *calQueue) removeAt(idx, pos int) *event {
	b := cq.buckets[idx]
	ev := b[pos]
	copy(b[pos:], b[pos+1:])
	b[len(b)-1] = nil
	cq.buckets[idx] = b[:len(b)-1]
	cq.size--
	return ev
}

// locate finds the earliest live event without removing it, returning the
// event and its bucket index ((nil, -1) when none remain). On return the
// event sits at the head of its bucket — tombstones ahead of it have been
// recycled — and the scan cursor covers it, so an immediately following
// locate or popLocated is O(1). This is what makes peek-then-step (the
// RunUntil loop) cost one scan, not two.
func (cq *calQueue) locate() (*event, int) {
	if cq.live == 0 {
		if cq.size > 0 {
			cq.drainTombstones()
		}
		return nil, -1
	}
	nb := len(cq.buckets)
	for i := 0; i < nb; i++ {
		b := cq.buckets[cq.cur]
		for len(b) > 0 && b[0].cancelled {
			cq.cancelled--
			cq.free(cq.removeAt(cq.cur, 0))
			b = cq.buckets[cq.cur]
		}
		if len(b) > 0 && b[0].at < cq.top {
			return b[0], cq.cur
		}
		cq.cur = (cq.cur + 1) & cq.mask
		if cq.top > MaxTime-cq.width {
			break // scanned up to the end of time: fall through
		}
		cq.top += cq.width
	}
	// Nothing inside a whole year's slices: the population is sparse at
	// this scale (or parked at MaxTime). Direct-search the global minimum
	// and land the cursor on it — the standard calendar-queue fallback.
	minIdx := -1
	var min *event
	for bi, b := range cq.buckets {
		for _, ev := range b {
			if ev.cancelled {
				continue
			}
			if min == nil || eventBefore(ev, min) {
				min, minIdx = ev, bi
			}
			break // bucket is sorted: its first live entry is its minimum
		}
	}
	if min == nil {
		return nil, -1 // unreachable while live > 0; keep the API safe
	}
	for cq.buckets[minIdx][0] != min {
		cq.cancelled--
		cq.free(cq.removeAt(minIdx, 0))
	}
	cq.cur = minIdx
	cq.setTopFor(min.at)
	return min, minIdx
}

// popLocated removes the event that locate just returned at the head of
// bucket idx.
func (cq *calQueue) popLocated(idx int) *event {
	ev := cq.removeAt(idx, 0)
	cq.live--
	cq.maybeShrink()
	return ev
}

// pop removes and returns the earliest live event (nil when none remain).
func (cq *calQueue) pop() *event {
	ev, idx := cq.locate()
	if ev == nil {
		return nil
	}
	return cq.popLocated(idx)
}

// cancel marks ev as a tombstone. The caller guarantees ev is still queued
// and not yet cancelled (generation-checked by Env.cancelEvent).
func (cq *calQueue) cancel(ev *event) {
	ev.cancelled = true
	cq.live--
	cq.cancelled++
	if cq.size >= calCompactFloor && cq.cancelled > cq.live {
		cq.compact()
	}
}

// compact rebuilds the buckets without tombstones, recycling them.
// Triggered when tombstones outnumber live events, so the amortized cost
// per cancellation is O(1) while queue length stays within 2× the live
// population.
func (cq *calQueue) compact() {
	dropped := 0
	for bi, b := range cq.buckets {
		out := b[:0]
		for _, ev := range b {
			if ev.cancelled {
				cq.free(ev)
				dropped++
			} else {
				out = append(out, ev)
			}
		}
		for i := len(out); i < len(b); i++ {
			b[i] = nil
		}
		cq.buckets[bi] = out
	}
	cq.size -= dropped
	cq.cancelled = 0
	cq.maybeShrink()
}

// maybeShrink halves the bucket count when the live population has fallen
// well below it, so a drained queue stops paying year-scan costs sized for
// its peak. The 2×-grow / ¼-shrink hysteresis keeps resize off the steady
// state.
func (cq *calQueue) maybeShrink() {
	if len(cq.buckets) > calMinBuckets && cq.live < len(cq.buckets)/4 {
		n := len(cq.buckets) / 2
		if n < calMinBuckets {
			n = calMinBuckets
		}
		cq.resize(n)
	}
}

// resize rebuilds the calendar with n buckets, re-deriving the bucket
// width from the live events' spread so that each bucket holds O(1) of
// them. Determinism is untouched: bucket layout is a pure function of the
// queue contents, and ordering is re-derived from the same (at, seq) total
// order.
func (cq *calQueue) resize(n int) {
	old := cq.buckets
	events := make([]*event, 0, cq.live)
	minAt, maxAt := MaxTime, Time(0)
	for _, b := range old {
		for _, ev := range b {
			if ev.cancelled {
				cq.free(ev) // shed tombstones during the rebuild
				continue
			}
			events = append(events, ev)
			if ev.at < minAt {
				minAt = ev.at
			}
			if ev.at > maxAt && ev.at != MaxTime {
				maxAt = ev.at // ignore end-of-time sentinels for the width
			}
		}
	}
	width := cq.width
	if len(events) > 1 && maxAt > minAt {
		width = (maxAt - minAt) / Time(len(events))
		if width < 1 {
			width = 1
		}
	}
	if width <= 0 {
		width = Time(1e6)
	}
	cq.buckets = make([][]*event, n)
	cq.mask = n - 1
	cq.width = width
	cq.size = len(events)
	cq.live = len(events)
	cq.cancelled = 0
	for _, ev := range events {
		cq.insert(ev)
	}
	if len(events) > 0 {
		cq.cur = cq.bucketOf(minAt)
		cq.setTopFor(minAt)
	} else {
		cq.cur = 0
		cq.top = width
	}
}

// drainTombstones empties a queue that holds only cancelled events,
// recycling them.
func (cq *calQueue) drainTombstones() {
	for bi, b := range cq.buckets {
		for i, ev := range b {
			cq.free(ev)
			b[i] = nil
		}
		cq.buckets[bi] = b[:0]
	}
	cq.size = 0
	cq.cancelled = 0
}
