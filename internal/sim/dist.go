package sim

import (
	"math"
	"math/rand"
	"time"
)

// Exp draws an exponentially distributed duration with the given mean.
// It is the canonical think-time and inter-arrival distribution.
func Exp(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// Normal draws a normally distributed duration, truncated at zero.
func Normal(rng *rand.Rand, mean, stddev time.Duration) time.Duration {
	d := time.Duration(rng.NormFloat64()*float64(stddev)) + mean
	if d < 0 {
		return 0
	}
	return d
}

// LogNormal draws a log-normally distributed duration parameterized by the
// desired median and the σ of the underlying normal. Network jitter tails
// are modeled with this distribution.
func LogNormal(rng *rand.Rand, median time.Duration, sigma float64) time.Duration {
	if median <= 0 {
		return 0
	}
	return time.Duration(float64(median) * math.Exp(rng.NormFloat64()*sigma))
}

// Uniform draws a uniformly distributed duration in [lo, hi).
func Uniform(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(rng.Int63n(int64(hi-lo)))
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f]. f is clamped to
// [0, 1).
func Jitter(rng *rand.Rand, d time.Duration, f float64) time.Duration {
	if f <= 0 {
		return d
	}
	if f >= 1 {
		f = 0.999
	}
	scale := 1 - f + 2*f*rng.Float64()
	return time.Duration(float64(d) * scale)
}

// TruncNormFactor draws a positive multiplicative factor with mean 1 and the
// given coefficient of variation, truncated to [0.3, 3]. Instance CPU speed
// heterogeneity (Schad et al. report CoV ≈ 21% for EC2 small instances) is
// sampled with this helper.
func TruncNormFactor(rng *rand.Rand, cov float64) float64 {
	if cov <= 0 {
		return 1
	}
	for i := 0; i < 64; i++ {
		f := 1 + rng.NormFloat64()*cov
		if f >= 0.3 && f <= 3 {
			return f
		}
	}
	return 1
}
