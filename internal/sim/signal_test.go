package sim

import (
	"testing"
	"time"
)

func TestSignalBroadcastWakesAll(t *testing.T) {
	env := NewEnv(1)
	s := NewSignal(env)
	woken := 0
	for i := 0; i < 5; i++ {
		env.Go("waiter", func(p *Proc) {
			s.Wait(p)
			woken++
		})
	}
	env.Schedule(time.Millisecond, s.Broadcast)
	env.Run()
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
	if s.Waiting() != 0 {
		t.Fatalf("Waiting = %d after broadcast, want 0", s.Waiting())
	}
}

func TestSignalWaitTimeoutFires(t *testing.T) {
	env := NewEnv(1)
	s := NewSignal(env)
	var got bool
	var when Time
	env.Go("waiter", func(p *Proc) {
		got = s.WaitTimeout(p, 10*time.Millisecond)
		when = p.Now()
	})
	env.Run()
	if got {
		t.Fatal("WaitTimeout reported signal, want timeout")
	}
	if when != 10*time.Millisecond {
		t.Fatalf("timed out at %v, want 10ms", when)
	}
}

func TestSignalWaitTimeoutSignaledFirst(t *testing.T) {
	env := NewEnv(1)
	s := NewSignal(env)
	var got bool
	env.Go("waiter", func(p *Proc) {
		got = s.WaitTimeout(p, 10*time.Millisecond)
	})
	env.Schedule(2*time.Millisecond, s.Broadcast)
	env.Run()
	if !got {
		t.Fatal("WaitTimeout reported timeout, want signal")
	}
	// No residual timer should wake anything later.
	if env.Pending() != 0 {
		t.Fatalf("pending = %d after run, want 0", env.Pending())
	}
}

func TestSignalBroadcastOnlyWakesCurrentWaiters(t *testing.T) {
	env := NewEnv(1)
	s := NewSignal(env)
	wakeups := 0
	env.Go("waiter", func(p *Proc) {
		s.Wait(p)
		wakeups++
		s.Wait(p) // waits for a second broadcast that never comes
		wakeups++
	})
	env.Schedule(time.Millisecond, s.Broadcast)
	env.Run()
	if wakeups != 1 {
		t.Fatalf("wakeups = %d, want 1", wakeups)
	}
	env.Shutdown()
}

func TestSignalDoubleBroadcastHarmless(t *testing.T) {
	env := NewEnv(1)
	s := NewSignal(env)
	woken := 0
	env.Go("waiter", func(p *Proc) {
		s.Wait(p)
		woken++
	})
	env.Schedule(time.Millisecond, func() {
		s.Broadcast()
		s.Broadcast()
	})
	env.Run()
	if woken != 1 {
		t.Fatalf("woken = %d, want exactly 1", woken)
	}
}
