package sim

// Queue is an unbounded FIFO mailbox connecting simulation processes.
// Producers never block; consumers block in Get until an item arrives or the
// queue is closed. Network links deliver messages by scheduling a callback
// that Puts into the destination queue.
type Queue[T any] struct {
	env     *Env
	name    string
	items   []T
	waiters []*Proc
	closed  bool

	puts uint64
	gets uint64
	// High-water mark of queue depth, useful for relay-log backlog stats.
	maxDepth int
}

// NewQueue creates an empty open queue.
func NewQueue[T any](env *Env, name string) *Queue[T] {
	return &Queue[T]{env: env, name: name}
}

// Name returns the queue name.
func (q *Queue[T]) Name() string { return q.name }

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// MaxDepth returns the highest buffered depth observed.
func (q *Queue[T]) MaxDepth() int { return q.maxDepth }

// Puts returns the total number of items ever Put.
func (q *Queue[T]) Puts() uint64 { return q.puts }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Put appends an item and wakes one waiting consumer. It may be called from
// any process or callback. Put on a closed queue drops the item silently
// (messages in flight to a crashed server disappear, like packets to a dead
// host).
func (q *Queue[T]) Put(v T) {
	if q.closed {
		return
	}
	q.items = append(q.items, v)
	q.puts++
	if len(q.items) > q.maxDepth {
		q.maxDepth = len(q.items)
	}
	if len(q.waiters) > 0 {
		next := q.waiters[0]
		copy(q.waiters, q.waiters[1:])
		q.waiters = q.waiters[:len(q.waiters)-1]
		q.env.scheduleProc(q.env.now, next)
	}
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. ok is false when the queue has been closed and drained.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			return v, false
		}
		q.waiters = append(q.waiters, p)
		p.wait(ParkQueue, q.name)
	}
	v = q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	q.gets++
	return v, true
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	q.gets++
	return v, true
}

// Peek returns the oldest item without removing it.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	return q.items[0], true
}

// Close marks the queue closed and wakes all waiting consumers; their Get
// calls return ok=false once the buffer drains. Further Puts are dropped.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, p := range q.waiters {
		q.env.scheduleProc(q.env.now, p)
	}
	q.waiters = nil
}
