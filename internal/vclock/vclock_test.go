package vclock

import (
	"math"
	"sort"
	"testing"
	"time"

	"cloudrepl/internal/sim"
)

func TestClockDriftAccumulates(t *testing.T) {
	env := sim.NewEnv(1)
	c := New(env, Config{InitialOffset: 5 * time.Millisecond, DriftPPM: 100}) // 100 µs/s
	env.RunFor(10 * time.Second)
	want := 5*time.Millisecond + 1*time.Millisecond // 10s × 100µs/s = 1ms
	if got := c.Offset(); absDur(got-want) > 10*time.Microsecond {
		t.Fatalf("offset after 10s = %v, want ≈%v", got, want)
	}
}

func TestClockNowIncludesOffset(t *testing.T) {
	env := sim.NewEnv(1)
	c := New(env, Config{InitialOffset: -3 * time.Millisecond})
	env.RunFor(time.Second)
	want := time.Second - 3*time.Millisecond
	if got := c.Now(); got != want {
		t.Fatalf("Now = %v, want %v", got, want)
	}
}

func TestClockNegativeDrift(t *testing.T) {
	env := sim.NewEnv(1)
	c := New(env, Config{DriftPPM: -50})
	env.RunFor(20 * time.Second)
	want := -1 * time.Millisecond // 20s × -50µs/s
	if got := c.Offset(); absDur(got-want) > 10*time.Microsecond {
		t.Fatalf("offset = %v, want ≈%v", got, want)
	}
}

func TestSetOffsetRebasesDrift(t *testing.T) {
	env := sim.NewEnv(1)
	c := New(env, Config{InitialOffset: 40 * time.Millisecond, DriftPPM: 1000})
	env.RunFor(5 * time.Second)
	c.SetOffset(0)
	if got := c.Offset(); got != 0 {
		t.Fatalf("offset right after SetOffset = %v, want 0", got)
	}
	env.RunFor(1 * time.Second)
	want := 1 * time.Millisecond // drift resumes from the new base
	if got := c.Offset(); absDur(got-want) > 10*time.Microsecond {
		t.Fatalf("offset 1s after reset = %v, want ≈%v", got, want)
	}
}

func TestAdjustBy(t *testing.T) {
	env := sim.NewEnv(1)
	c := New(env, Config{InitialOffset: 10 * time.Millisecond})
	c.AdjustBy(-4 * time.Millisecond)
	if got := c.Offset(); got != 6*time.Millisecond {
		t.Fatalf("offset = %v, want 6ms", got)
	}
}

func TestNowMicrosResolution(t *testing.T) {
	env := sim.NewEnv(1)
	c := New(env, Config{})
	env.RunFor(1500 * time.Nanosecond)
	if got := c.NowMicros(); got != 1 {
		t.Fatalf("NowMicros = %d, want 1 (truncated to µs)", got)
	}
}

func TestDiffBetweenClocks(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, Config{InitialOffset: 7 * time.Millisecond})
	b := New(env, Config{InitialOffset: 2 * time.Millisecond})
	if got := Diff(a, b); got != 5*time.Millisecond {
		t.Fatalf("Diff = %v, want 5ms", got)
	}
}

func TestSyncOnceAppliesBias(t *testing.T) {
	env := sim.NewEnv(1)
	c := New(env, Config{InitialOffset: 500 * time.Millisecond})
	SyncOnce(env, c, NTPConfig{Bias: 2 * time.Millisecond})
	if got := c.Offset(); got != 2*time.Millisecond {
		t.Fatalf("offset after SyncOnce = %v, want bias 2ms", got)
	}
}

func TestDaemonPeriodicSync(t *testing.T) {
	env := sim.NewEnv(1)
	c := New(env, Config{InitialOffset: time.Second, DriftPPM: 500})
	d := StartDaemon(env, "ntp", c, NTPConfig{Interval: time.Second, JitterSigma: time.Millisecond, Servers: 4})
	env.RunUntil(10500 * time.Millisecond)
	if d.Syncs() != 11 { // t=0 plus every second through t=10
		t.Fatalf("syncs = %d, want 11", d.Syncs())
	}
	// Offset must be bounded by jitter + 1s of drift, far below the initial 1s.
	if got := absDur(c.Offset()); got > 10*time.Millisecond {
		t.Fatalf("offset with active daemon = %v, want small", got)
	}
	d.Stop()
	env.Run()
	env.Shutdown()
}

func TestDaemonStop(t *testing.T) {
	env := sim.NewEnv(1)
	c := New(env, Config{})
	d := StartDaemon(env, "ntp", c, NTPConfig{Interval: time.Second})
	env.RunUntil(3500 * time.Millisecond)
	d.Stop()
	env.Run() // daemon exits at its next wakeup
	if env.Alive() != 0 {
		t.Fatalf("daemon still alive after Stop, alive=%d", env.Alive())
	}
	if d.Syncs() > 5 {
		t.Fatalf("syncs = %d after stop at 3.5s, want ≤5", d.Syncs())
	}
}

// TestFig4Shapes reproduces the two regimes of the paper's Fig. 4: syncing
// once lets the inter-instance difference ramp from ~7ms to ~50ms over 20
// minutes (median ≈28.23ms, σ ≈12.31), while syncing every second holds it
// in a stable 1–8ms band (median ≈3.30ms, σ ≈1.19).
func TestFig4Shapes(t *testing.T) {
	run := func(everySecond bool) (median, sigma float64, samples []float64) {
		env := sim.NewEnv(99)
		a := New(env, Config{DriftPPM: 17.9})
		b := New(env, Config{DriftPPM: -17.9})
		cfgA := NTPConfig{Bias: 5 * time.Millisecond, JitterSigma: 600 * time.Microsecond, Servers: 4}
		cfgB := NTPConfig{Bias: -2 * time.Millisecond, JitterSigma: 600 * time.Microsecond, Servers: 4}
		if everySecond {
			cfgA.Bias = 1650 * time.Microsecond
			cfgB.Bias = -1650 * time.Microsecond
			cfgA.Interval = time.Second
			cfgB.Interval = time.Second
			StartDaemon(env, "ntpA", a, cfgA)
			StartDaemon(env, "ntpB", b, cfgB)
		} else {
			SyncOnce(env, a, cfgA)
			SyncOnce(env, b, cfgB)
		}
		for i := 0; i < 1200; i++ {
			env.RunUntil(time.Duration(i+1) * time.Second)
			samples = append(samples, float64(Diff(a, b).Microseconds())/1000)
		}
		env.Stop()
		env.Shutdown()
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		median = sorted[len(sorted)/2]
		var sum, sumsq float64
		for _, v := range samples {
			sum += v
			sumsq += v * v
		}
		mean := sum / float64(len(samples))
		sigma = math.Sqrt(sumsq/float64(len(samples)) - mean*mean)
		return median, sigma, samples
	}

	medOnce, sigOnce, once := run(false)
	if medOnce < 20 || medOnce > 40 {
		t.Fatalf("sync-once median = %.2fms, want ≈28ms", medOnce)
	}
	if sigOnce < 8 || sigOnce > 17 {
		t.Fatalf("sync-once σ = %.2fms, want ≈12ms", sigOnce)
	}
	if last := once[len(once)-1]; last < 40 || last > 60 {
		t.Fatalf("sync-once final diff = %.2fms, want ≈50ms", last)
	}

	medSec, sigSec, sec := run(true)
	if medSec < 2 || medSec > 5 {
		t.Fatalf("every-second median = %.2fms, want ≈3.3ms", medSec)
	}
	if sigSec < 0.4 || sigSec > 2.5 {
		t.Fatalf("every-second σ = %.2fms, want ≈1.2ms", sigSec)
	}
	outliers := 0
	for _, v := range sec {
		if v < 0 || v > 9 {
			outliers++
		}
	}
	if frac := float64(outliers) / float64(len(sec)); frac > 0.02 {
		t.Fatalf("%.1f%% of every-second samples outside 0–9ms band", frac*100)
	}
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// Stop() before the daemon process first runs must suppress even the
// initial sync — a regression test for the stopped-daemon queued-sync bug.
func TestDaemonStopBeforeFirstRun(t *testing.T) {
	env := sim.NewEnv(1)
	c := New(env, Config{InitialOffset: 500 * time.Millisecond})
	d := StartDaemon(env, "ntp", c, NTPConfig{Interval: time.Second, Bias: 2 * time.Millisecond})
	d.Stop() // before env ever runs the daemon process
	env.RunUntil(5 * time.Second)
	if d.Syncs() != 0 {
		t.Fatalf("stopped daemon fired %d sync(s)", d.Syncs())
	}
	if got := c.Offset(); got != 500*time.Millisecond {
		t.Fatalf("stopped daemon disciplined the clock: offset = %v", got)
	}
	if env.Alive() != 0 {
		t.Fatalf("daemon still alive after Stop, alive=%d", env.Alive())
	}
	env.Shutdown()
}

// Servers: 0 must fall back to a single server, not divide by zero in the
// 1/√Servers jitter scaling.
func TestZeroServersJitterScaling(t *testing.T) {
	env := sim.NewEnv(1)
	c := New(env, Config{})
	SyncOnce(env, c, NTPConfig{Bias: time.Millisecond, JitterSigma: 600 * time.Microsecond, Servers: 0})
	got := c.Offset()
	if got == 0 || absDur(got) > 100*time.Millisecond {
		t.Fatalf("offset with Servers=0 = %v, want finite bias+jitter", got)
	}
	// The daemon path takes the same guard.
	d := StartDaemon(env, "ntp", c, NTPConfig{Interval: time.Second, JitterSigma: time.Millisecond, Servers: 0})
	env.RunUntil(2500 * time.Millisecond)
	d.Stop()
	env.Run()
	if d.Syncs() != 3 {
		t.Fatalf("syncs = %d, want 3", d.Syncs())
	}
	env.Shutdown()
}
