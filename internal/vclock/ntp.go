package vclock

import (
	"math"
	"time"

	"cloudrepl/internal/sim"
)

// NTPConfig describes the accuracy and cadence of an instance's NTP daemon.
//
// An NTP correction cannot be perfect: the estimate of the server offset is
// polluted by asymmetric network delay (a roughly constant per-path Bias)
// and per-exchange queueing noise (JitterSigma). After a sync, the clock's
// true offset is Bias + N(0, JitterSigma) rather than zero. Synchronizing
// against multiple servers narrows the jitter by averaging.
type NTPConfig struct {
	// Interval between synchronizations. The paper contrasts syncing once
	// at startup (Amazon's relaxed default, every couple of hours) with
	// syncing every second.
	Interval time.Duration
	// Bias is the residual offset caused by asymmetric network paths to the
	// time servers; it persists across syncs.
	Bias time.Duration
	// JitterSigma is the standard deviation of the per-sync measurement
	// error.
	JitterSigma time.Duration
	// Servers is the number of time servers averaged per sync (≥1). The
	// effective jitter scales with 1/√Servers.
	Servers int
}

// Daemon periodically disciplines a Clock per an NTPConfig.
type Daemon struct {
	clock *Clock
	cfg   NTPConfig
	syncs int
	stop  bool
}

// SyncOnce performs a single NTP correction on clock immediately.
func SyncOnce(env *sim.Env, clock *Clock, cfg NTPConfig) {
	d := &Daemon{clock: clock, cfg: cfg}
	d.correct(env)
}

// StartDaemon launches an NTP daemon process that first syncs immediately
// and then re-syncs every cfg.Interval. A non-positive interval yields a
// sync-once daemon.
func StartDaemon(env *sim.Env, name string, clock *Clock, cfg NTPConfig) *Daemon {
	d := &Daemon{clock: clock, cfg: cfg}
	env.Go(name, func(p *sim.Proc) {
		// Stop() may run before the daemon process is first scheduled; the
		// initial sync must not fire on a stopped daemon.
		if d.stop {
			return
		}
		d.correct(env)
		if cfg.Interval <= 0 {
			return
		}
		for !d.stop {
			p.Sleep(cfg.Interval)
			if d.stop {
				return
			}
			d.correct(env)
		}
	})
	return d
}

// Stop halts the daemon after its current sleep.
func (d *Daemon) Stop() { d.stop = true }

// Syncs returns the number of corrections applied.
func (d *Daemon) Syncs() int { return d.syncs }

func (d *Daemon) correct(env *sim.Env) {
	servers := d.cfg.Servers
	if servers < 1 {
		servers = 1
	}
	var jitter time.Duration
	if d.cfg.JitterSigma > 0 {
		sigma := float64(d.cfg.JitterSigma) / math.Sqrt(float64(servers))
		jitter = time.Duration(env.Rand().NormFloat64() * sigma)
	}
	d.clock.SetOffset(d.cfg.Bias + jitter)
	d.syncs++
}
