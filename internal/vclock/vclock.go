// Package vclock models per-instance wall clocks on the virtual timeline:
// an initial offset from true time, a constant drift rate, and an NTP daemon
// that periodically re-synchronizes with bounded accuracy.
//
// The paper measures replication delay by comparing timestamps committed on
// different machines, so clock offset and drift leak directly into the raw
// measurements (its Fig. 4); the heartbeat pipeline removes them by
// reporting *relative* delay. This package reproduces both the problem and
// the fix.
package vclock

import (
	"time"

	"cloudrepl/internal/sim"
)

// Clock is a virtual machine's local wall clock. True time is the simulation
// clock; the local clock reads true time plus an offset that grows linearly
// with a drift rate until an NTP correction rebases it.
type Clock struct {
	env *sim.Env

	baseOffset time.Duration // offset materialized at lastSet
	driftPPM   float64       // microseconds gained per second of true time
	lastSet    sim.Time
}

// Config describes a clock's error model.
type Config struct {
	// InitialOffset is the offset from true time at creation.
	InitialOffset time.Duration
	// DriftPPM is the clock's drift in parts per million (µs per true
	// second). EC2-era commodity clocks drift on the order of tens of PPM.
	DriftPPM float64
}

// New creates a clock bound to env with the given error model.
func New(env *sim.Env, cfg Config) *Clock {
	return &Clock{env: env, baseOffset: cfg.InitialOffset, driftPPM: cfg.DriftPPM, lastSet: env.Now()}
}

// Offset returns the clock's current deviation from true time.
func (c *Clock) Offset() time.Duration {
	elapsed := (c.env.Now() - c.lastSet).Seconds()
	return c.baseOffset + time.Duration(c.driftPPM*elapsed*1e3)*time.Nanosecond
}

// Now returns the local perception of time as a duration since the
// simulation epoch.
func (c *Clock) Now() time.Duration { return c.env.Now() + c.Offset() }

// NowMicros returns Now in whole microseconds — the resolution of the
// paper's user-defined time function (MySQL Bug #8523 workaround).
func (c *Clock) NowMicros() int64 { return c.Now().Microseconds() }

// DriftPPM returns the configured drift rate.
func (c *Clock) DriftPPM() float64 { return c.driftPPM }

// SetOffset rebases the clock's offset to exactly o at the current instant
// (an NTP step correction). Drift continues from here.
func (c *Clock) SetOffset(o time.Duration) {
	c.baseOffset = o
	c.lastSet = c.env.Now()
}

// AdjustBy shifts the clock's current offset by delta.
func (c *Clock) AdjustBy(delta time.Duration) {
	c.SetOffset(c.Offset() + delta)
}

// Diff returns a's local reading minus b's local reading at this instant —
// what an operator comparing two instance clocks would observe.
func Diff(a, b *Clock) time.Duration { return a.Now() - b.Now() }
