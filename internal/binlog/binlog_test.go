package binlog

import (
	"testing"
	"testing/quick"
	"time"

	"cloudrepl/internal/sim"
)

func TestAppendAssignsDenseSequences(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env)
	for i := 1; i <= 5; i++ {
		if seq := l.Append("db", "INSERT ...", int64(i)); seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if l.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d", l.LastSeq())
	}
	e, err := l.At(3)
	if err != nil || e.TimestampMicros != 3 {
		t.Fatalf("At(3) = %+v, %v", e, err)
	}
	if _, err := l.At(6); err == nil {
		t.Fatal("At(6) should fail")
	}
	if _, err := l.At(0); err == nil {
		t.Fatal("At(0) should fail")
	}
}

func TestReaderTailsBlocking(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env)
	r := l.NewReader(0)
	var got []uint64
	env.Go("reader", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			e := r.Next(p)
			got = append(got, e.Seq)
		}
	})
	env.Go("writer", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Second)
			l.Append("db", "X", 0)
		}
	})
	env.Run()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("reader got %v", got)
	}
}

func TestReaderStartsMidLog(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env)
	l.Append("db", "A", 0)
	l.Append("db", "B", 0)
	r := l.NewReader(l.LastSeq())
	if _, ok := r.TryNext(); ok {
		t.Fatal("reader at tail returned an entry")
	}
	l.Append("db", "C", 0)
	e, ok := r.TryNext()
	if !ok || e.SQL != "C" {
		t.Fatalf("got %+v/%v, want C", e, ok)
	}
	if r.Backlog() != 0 {
		t.Fatalf("backlog = %d", r.Backlog())
	}
}

func TestMultipleReadersIndependent(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env)
	l.Append("db", "A", 0)
	l.Append("db", "B", 0)
	r1, r2 := l.NewReader(0), l.NewReader(1)
	e1, _ := r1.TryNext()
	e2, _ := r2.TryNext()
	if e1.SQL != "A" || e2.SQL != "B" {
		t.Fatalf("readers interfered: %q %q", e1.SQL, e2.SQL)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := Entry{Seq: 42, Database: "heartbeats", SQL: "INSERT INTO heartbeat VALUES (1, UTC_MICROS())", TimestampMicros: 1234567890}
	got, err := Decode(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip: %+v != %+v", got, e)
	}
	if len(e.Encode()) != e.WireSize() {
		t.Fatalf("WireSize %d != encoded %d", e.WireSize(), len(e.Encode()))
	}
}

func TestDecodeTruncated(t *testing.T) {
	e := Entry{Seq: 1, Database: "d", SQL: "SELECT 1", TimestampMicros: 5}
	buf := e.Encode()
	for cut := 0; cut < len(buf); cut++ {
		if _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("Decode of %d/%d bytes succeeded", cut, len(buf))
		}
	}
}

// Property: encode/decode round-trips arbitrary printable content.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seq uint64, ts int64, db, sql string) bool {
		e := Entry{Seq: seq, Database: db, SQL: sql, TimestampMicros: ts}
		got, err := Decode(e.Encode())
		return err == nil && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesAccounting(t *testing.T) {
	env := sim.NewEnv(1)
	l := New(env)
	l.Append("db", "AAAA", 0)
	l.Append("db", "BB", 0)
	e1, _ := l.At(1)
	e2, _ := l.At(2)
	if l.Bytes() != int64(e1.WireSize()+e2.WireSize()) {
		t.Fatalf("Bytes = %d", l.Bytes())
	}
}
