package binlog

import (
	"bytes"
	"testing"
	"testing/quick"
)

// FuzzDecode feeds arbitrary bytes through the single-entry decoder. A
// successful decode must be a faithful parse: re-encoding the entry must
// reproduce the input byte-for-byte (no silent truncation), and the entry's
// WireSize must equal the consumed length.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Entry{Seq: 1, Database: "app", SQL: "INSERT INTO t VALUES (1)", TimestampMicros: 99}.Encode())
	f.Add(Entry{Seq: 1 << 40, Database: "", SQL: "", TimestampMicros: -1}.Encode())
	// Oversized length prefixes: a header that claims 4 GiB of database
	// name, and one that claims more SQL than the buffer holds.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add(append(Entry{Database: "d", SQL: "x"}.Encode()[:25], 0xff, 0xff, 0xff, 0xff))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Decode(data) // must not panic on any input
		if err != nil {
			return
		}
		if got := e.Encode(); !bytes.Equal(got, data) {
			t.Fatalf("decode of %d bytes not faithful: re-encoded to %d bytes", len(data), len(got))
		}
		if e.WireSize() != len(data) {
			t.Fatalf("WireSize %d != consumed %d", e.WireSize(), len(data))
		}
	})
}

// FuzzDecodeBatch is FuzzDecode for the batch framing.
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeBatch(nil))
	f.Add(EncodeBatch([]Entry{
		{Seq: 1, Database: "app", SQL: "UPDATE t SET v = 1", TimestampMicros: 7},
		{Seq: 2, Database: "app", SQL: "DELETE FROM u", TimestampMicros: 8},
	}))
	// Count prefix far larger than the payload could hold.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeBatch(data)
		if err != nil {
			return
		}
		if got := EncodeBatch(entries); !bytes.Equal(got, data) {
			t.Fatalf("batch decode of %d bytes not faithful: re-encoded to %d bytes", len(data), len(got))
		}
	})
}

// Property: WireSize and Encode stay in lockstep for arbitrary entries, and
// batches of them round-trip through the batch framing.
func TestWireSizeMatchesEncode(t *testing.T) {
	f := func(seq uint64, ts int64, db, sql string) bool {
		e := Entry{Seq: seq, Database: db, SQL: sql, TimestampMicros: ts}
		if len(e.Encode()) != e.WireSize() {
			return false
		}
		batch := []Entry{e, {Seq: seq + 1, SQL: sql}}
		enc := EncodeBatch(batch)
		if len(enc) != BatchWireSize(batch) {
			return false
		}
		dec, err := DecodeBatch(enc)
		return err == nil && len(dec) == 2 && dec[0] == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// DecodeFrom must consume exactly one entry and report its length, leaving
// the remainder intact — the contract the batch decoder builds on.
func TestDecodeFromStream(t *testing.T) {
	a := Entry{Seq: 1, Database: "d1", SQL: "INSERT INTO a VALUES (1)", TimestampMicros: 10}
	b := Entry{Seq: 2, Database: "d2", SQL: "INSERT INTO b VALUES (2)", TimestampMicros: 20}
	stream := append(a.Encode(), b.Encode()...)

	got, n, err := DecodeFrom(stream)
	if err != nil || got != a || n != a.WireSize() {
		t.Fatalf("first entry: %+v n=%d err=%v", got, n, err)
	}
	got, n, err = DecodeFrom(stream[n:])
	if err != nil || got != b || n != b.WireSize() {
		t.Fatalf("second entry: %+v n=%d err=%v", got, n, err)
	}
	// Decode (exact-length contract) must reject the concatenation.
	if _, err := Decode(stream); err == nil {
		t.Fatal("Decode accepted trailing bytes")
	}
}

// Truncating an encoded batch anywhere must fail cleanly, never panic.
func TestDecodeBatchTruncated(t *testing.T) {
	buf := EncodeBatch([]Entry{
		{Seq: 1, Database: "app", SQL: "UPDATE t SET v = 1"},
		{Seq: 2, Database: "app", SQL: "UPDATE t SET v = 2"},
	})
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeBatch(buf[:cut]); err == nil {
			t.Fatalf("DecodeBatch of %d/%d bytes succeeded", cut, len(buf))
		}
	}
}
