// Package binlog implements a statement-based binary log in the style of
// MySQL 5.x: an append-only sequence of committed write statements, each
// tagged with the master's local commit timestamp, plus blocking readers
// (one per replication dump thread) that tail the log.
package binlog

import (
	"encoding/binary"
	"fmt"

	"cloudrepl/internal/sim"
)

// Entry is one committed statement in the log.
type Entry struct {
	// Seq is the entry's position, 1-based and dense.
	Seq uint64
	// Database is the default database the statement executed under.
	Database string
	// SQL is the replayable statement text with parameters interpolated.
	SQL string
	// TimestampMicros is the master's local clock at commit, in µs.
	TimestampMicros int64
}

// WireSize returns the encoded size in bytes, used for transfer accounting.
func (e Entry) WireSize() int { return 8 + 8 + 4 + len(e.Database) + 4 + len(e.SQL) }

// Encode serializes the entry (length-prefixed strings, little endian).
func (e Entry) Encode() []byte {
	buf := make([]byte, 0, e.WireSize())
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], e.Seq)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(e.TimestampMicros))
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.Database)))
	buf = append(buf, tmp[:4]...)
	buf = append(buf, e.Database...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.SQL)))
	buf = append(buf, tmp[:4]...)
	buf = append(buf, e.SQL...)
	return buf
}

// Decode parses exactly one encoded entry; trailing bytes are an error
// (use DecodeFrom to scan a stream of concatenated entries).
func Decode(buf []byte) (Entry, error) {
	e, n, err := DecodeFrom(buf)
	if err != nil {
		return Entry{}, err
	}
	if n != len(buf) {
		return Entry{}, fmt.Errorf("binlog: %d trailing byte(s) after entry", len(buf)-n)
	}
	return e, nil
}

// DecodeFrom parses one encoded entry from the front of buf and returns the
// number of bytes consumed. Length prefixes are validated against the
// remaining input in uint64 space, so an adversarial 4 GiB prefix can
// neither wrap the offset arithmetic nor index past the buffer.
func DecodeFrom(buf []byte) (Entry, int, error) {
	var e Entry
	if len(buf) < 24 {
		return e, 0, fmt.Errorf("binlog: truncated entry header")
	}
	e.Seq = binary.LittleEndian.Uint64(buf[0:8])
	e.TimestampMicros = int64(binary.LittleEndian.Uint64(buf[8:16]))
	dbLen := binary.LittleEndian.Uint32(buf[16:20])
	if uint64(dbLen)+4 > uint64(len(buf)-20) {
		return Entry{}, 0, fmt.Errorf("binlog: truncated database name")
	}
	off := 20 + int(dbLen)
	e.Database = string(buf[20:off])
	sqlLen := binary.LittleEndian.Uint32(buf[off : off+4])
	off += 4
	if uint64(sqlLen) > uint64(len(buf)-off) {
		return Entry{}, 0, fmt.Errorf("binlog: truncated SQL text")
	}
	e.SQL = string(buf[off : off+int(sqlLen)])
	return e, off + int(sqlLen), nil
}

// BatchWireSize returns the encoded size of a batch: a uint32 entry count
// followed by the concatenated entries.
func BatchWireSize(entries []Entry) int {
	n := 4
	for _, e := range entries {
		n += e.WireSize()
	}
	return n
}

// EncodeBatch serializes a group of entries as one network transit — the
// unit the batched dump thread ships.
func EncodeBatch(entries []Entry) []byte {
	buf := make([]byte, 4, BatchWireSize(entries))
	binary.LittleEndian.PutUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = append(buf, e.Encode()...)
	}
	return buf
}

// DecodeBatch parses an encoded batch, rejecting trailing bytes and count
// prefixes that could not possibly fit the remaining input (each entry is
// at least 24 bytes, which bounds allocation before any parsing happens).
func DecodeBatch(buf []byte) ([]Entry, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("binlog: truncated batch header")
	}
	count := binary.LittleEndian.Uint32(buf)
	rest := buf[4:]
	if uint64(count)*24 > uint64(len(rest)) {
		return nil, fmt.Errorf("binlog: batch count %d exceeds payload", count)
	}
	entries := make([]Entry, 0, count)
	for i := uint32(0); i < count; i++ {
		e, n, err := DecodeFrom(rest)
		if err != nil {
			return nil, fmt.Errorf("binlog: batch entry %d: %w", i, err)
		}
		entries = append(entries, e)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("binlog: %d trailing byte(s) after batch", len(rest))
	}
	return entries, nil
}

// Log is an in-memory append-only binlog with blocking tail readers.
type Log struct {
	env      *sim.Env
	entries  []Entry
	appended *sim.Signal
	bytes    int64
	// committedAt records each entry's commit point on the virtual
	// timeline, parallel to entries. It is measurement-plane state (never
	// serialized): replication-staleness probes use it to age unapplied
	// events without the clock-offset pollution of TimestampMicros.
	committedAt []sim.Time
}

// New creates an empty log bound to env.
func New(env *sim.Env) *Log {
	return &Log{env: env, appended: sim.NewSignal(env).Named("binlog-appended")}
}

// Append adds a statement to the log and wakes tailing readers. It returns
// the assigned sequence number.
func (l *Log) Append(database, sql string, tsMicros int64) uint64 {
	seq := uint64(len(l.entries)) + 1
	e := Entry{Seq: seq, Database: database, SQL: sql, TimestampMicros: tsMicros}
	l.entries = append(l.entries, e)
	l.committedAt = append(l.committedAt, l.env.Now())
	l.bytes += int64(e.WireSize())
	l.appended.Broadcast()
	return seq
}

// CommittedAt returns the virtual time the entry with the given sequence was
// appended (0 for out-of-range sequences). Unlike Entry.TimestampMicros this
// is free of per-instance clock offset, making it the reference point for
// replication-staleness measurements.
func (l *Log) CommittedAt(seq uint64) sim.Time {
	if seq == 0 || seq > uint64(len(l.committedAt)) {
		return 0
	}
	return l.committedAt[seq-1]
}

// LastSeq returns the sequence of the newest entry (0 when empty).
func (l *Log) LastSeq() uint64 { return uint64(len(l.entries)) }

// Bytes returns the total encoded size of the log.
func (l *Log) Bytes() int64 { return l.bytes }

// At returns the entry with the given sequence number.
func (l *Log) At(seq uint64) (Entry, error) {
	if seq == 0 || seq > uint64(len(l.entries)) {
		return Entry{}, fmt.Errorf("binlog: no entry at seq %d (last %d)", seq, l.LastSeq())
	}
	return l.entries[seq-1], nil
}

// Reader tails the log from a position. Each dump thread owns one reader.
type Reader struct {
	log *Log
	pos uint64 // last delivered seq
}

// NewReader creates a reader starting after position pos (pos=0 reads the
// log from the beginning; pos=LastSeq() reads only new entries).
func (l *Log) NewReader(pos uint64) *Reader { return &Reader{log: l, pos: pos} }

// Pos returns the last delivered sequence.
func (r *Reader) Pos() uint64 { return r.pos }

// Next returns the next entry, blocking until one is appended.
func (r *Reader) Next(p *sim.Proc) Entry {
	for r.pos >= r.log.LastSeq() {
		r.log.appended.Wait(p)
	}
	r.pos++
	return r.log.entries[r.pos-1]
}

// TryNext returns the next entry without blocking.
func (r *Reader) TryNext() (Entry, bool) {
	if r.pos >= r.log.LastSeq() {
		return Entry{}, false
	}
	r.pos++
	return r.log.entries[r.pos-1], true
}

// Backlog returns how many entries the reader is behind the tail.
func (r *Reader) Backlog() uint64 { return r.log.LastSeq() - r.pos }
