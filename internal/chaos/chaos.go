// Package chaos is a schedule-driven fault injector for the simulated
// cloud: it crashes and restarts instances, partitions and heals network
// paths, and spikes latency/jitter on chosen links, all at predeclared
// points on the virtual timeline. Experiments attach a Schedule to a run
// and read back the applied-event log and counters afterwards, so a chaos
// run is exactly as deterministic as a fault-free one under the same seed.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/obs"
	"cloudrepl/internal/sim"
)

// Kind enumerates injectable faults.
type Kind uint8

// Fault kinds.
const (
	Crash      Kind = iota // terminate an instance (by name)
	Restart                // bring a terminated instance back up
	Partition              // cut a placement pair both ways
	Heal                   // restore a cut placement pair
	Spike                  // add latency/jitter to a placement pair
	ClearSpike             // remove an injected spike
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	case Partition:
		return "partition"
	case Heal:
		return "heal"
	case Spike:
		return "spike"
	default:
		return "clear-spike"
	}
}

// Event is one scheduled fault.
type Event struct {
	// At is the absolute virtual time the fault fires.
	At time.Duration
	// Kind selects the fault.
	Kind Kind
	// Target names the instance for Crash/Restart (resolved at fire time,
	// so schedules can be built before the cluster launches its VMs).
	Target string
	// A, B are the placement pair for network faults.
	A, B cloud.Placement
	// ExtraLatency and ExtraJitterSigma parameterize a Spike.
	ExtraLatency     time.Duration
	ExtraJitterSigma float64
}

func (e Event) String() string {
	switch e.Kind {
	case Crash, Restart:
		return fmt.Sprintf("%s %s", e.Kind, e.Target)
	case Spike:
		return fmt.Sprintf("spike %s↔%s +%v σ+%.2f", e.A, e.B, e.ExtraLatency, e.ExtraJitterSigma)
	default:
		return fmt.Sprintf("%s %s↔%s", e.Kind, e.A, e.B)
	}
}

// Schedule is an ordered fault plan. The zero value is empty; builder
// methods append and return the schedule for chaining.
type Schedule struct {
	Events []Event
}

// Crash terminates the named instance at time at.
func (s *Schedule) Crash(at time.Duration, target string) *Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: Crash, Target: target})
	return s
}

// Restart restarts the named instance at time at.
func (s *Schedule) Restart(at time.Duration, target string) *Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: Restart, Target: target})
	return s
}

// CrashFor terminates the named instance at time at and restarts it after
// downFor — the crash-and-recover pattern of a rebooted VM.
func (s *Schedule) CrashFor(at, downFor time.Duration, target string) *Schedule {
	return s.Crash(at, target).Restart(at+downFor, target)
}

// Partition cuts the a↔b path at time at.
func (s *Schedule) Partition(at time.Duration, a, b cloud.Placement) *Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: Partition, A: a, B: b})
	return s
}

// Heal restores the a↔b path at time at.
func (s *Schedule) Heal(at time.Duration, a, b cloud.Placement) *Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: Heal, A: a, B: b})
	return s
}

// PartitionFor cuts the a↔b path at time at and heals it after downFor.
func (s *Schedule) PartitionFor(at, downFor time.Duration, a, b cloud.Placement) *Schedule {
	return s.Partition(at, a, b).Heal(at+downFor, a, b)
}

// Spike adds extra latency and jitter on the a↔b path at time at.
func (s *Schedule) Spike(at time.Duration, a, b cloud.Placement, extra time.Duration, extraJitterSigma float64) *Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: Spike, A: a, B: b,
		ExtraLatency: extra, ExtraJitterSigma: extraJitterSigma})
	return s
}

// ClearSpike removes the a↔b spike at time at.
func (s *Schedule) ClearSpike(at time.Duration, a, b cloud.Placement) *Schedule {
	s.Events = append(s.Events, Event{At: at, Kind: ClearSpike, A: a, B: b})
	return s
}

// SpikeFor adds a latency spike at time at and clears it after length.
func (s *Schedule) SpikeFor(at, length time.Duration, a, b cloud.Placement, extra time.Duration, extraJitterSigma float64) *Schedule {
	return s.Spike(at, a, b, extra, extraJitterSigma).ClearSpike(at+length, a, b)
}

// Applied is one log line of a fired (or skipped) fault.
type Applied struct {
	At      time.Duration
	Event   Event
	Skipped bool // the target instance did not exist at fire time
}

func (a Applied) String() string {
	skip := ""
	if a.Skipped {
		skip = " (skipped: no such instance)"
	}
	return fmt.Sprintf("[%v] %s%s", a.At, a.Event, skip)
}

// Counters tallies applied faults by kind.
type Counters struct {
	Crashes    int
	Restarts   int
	Partitions int
	Heals      int
	Spikes     int
	Skipped    int
}

// Injector executes a Schedule against a provider. Create with Start.
type Injector struct {
	env   *sim.Env
	cloud *cloud.Cloud

	log      []Applied
	counters Counters
}

// Start arms every event of the schedule on the environment's timeline.
// Events whose At is already in the past fire immediately. The schedule is
// not mutated and may be shared across runs.
func Start(env *sim.Env, cl *cloud.Cloud, sched *Schedule) *Injector {
	inj := &Injector{env: env, cloud: cl}
	if sched == nil {
		return inj
	}
	events := append([]Event(nil), sched.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	for _, e := range events {
		e := e
		env.Schedule(e.At-env.Now(), func() { inj.apply(e) })
	}
	return inj
}

// Log returns the applied-event log in fire order.
func (inj *Injector) Log() []Applied { return inj.log }

// Counters returns the tally of applied faults.
func (inj *Injector) Counters() Counters { return inj.counters }

// PublishMetrics snapshots the fault tally into reg under the "chaos."
// prefix.
func (inj *Injector) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c := inj.counters
	reg.Counter("chaos.crashes").Set(float64(c.Crashes))
	reg.Counter("chaos.restarts").Set(float64(c.Restarts))
	reg.Counter("chaos.partitions").Set(float64(c.Partitions))
	reg.Counter("chaos.heals").Set(float64(c.Heals))
	reg.Counter("chaos.spikes").Set(float64(c.Spikes))
	reg.Counter("chaos.skipped").Set(float64(c.Skipped))
}

func (inj *Injector) apply(e Event) {
	switch e.Kind {
	case Crash, Restart:
		inst := inj.findInstance(e.Target)
		if inst == nil {
			inj.counters.Skipped++
			inj.log = append(inj.log, Applied{At: inj.env.Now(), Event: e, Skipped: true})
			return
		}
		if e.Kind == Crash {
			inst.Terminate()
			inj.counters.Crashes++
		} else {
			inst.Restart()
			inj.counters.Restarts++
		}
	case Partition:
		inj.cloud.Network().Partition(e.A, e.B)
		inj.counters.Partitions++
	case Heal:
		inj.cloud.Network().Heal(e.A, e.B)
		inj.counters.Heals++
	case Spike:
		inj.cloud.Network().SpikeLatency(e.A, e.B, e.ExtraLatency, e.ExtraJitterSigma)
		inj.counters.Spikes++
	case ClearSpike:
		inj.cloud.Network().ClearSpike(e.A, e.B)
	}
	inj.log = append(inj.log, Applied{At: inj.env.Now(), Event: e})
}

// findInstance resolves a target name to the most recently launched
// instance with that name (a re-provisioned node reuses its role name).
func (inj *Injector) findInstance(name string) *cloud.Instance {
	insts := inj.cloud.Instances()
	for i := len(insts) - 1; i >= 0; i-- {
		if insts[i].Name == name {
			return insts[i]
		}
	}
	return nil
}
