package chaos

import (
	"testing"
	"time"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/cluster"
	"cloudrepl/internal/repl"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

func TestScheduleBuilders(t *testing.T) {
	a := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	b := cloud.Placement{Region: cloud.USWest1, Zone: "b"}
	s := new(Schedule).
		CrashFor(time.Second, 2*time.Second, "node").
		PartitionFor(4*time.Second, time.Second, a, b).
		SpikeFor(6*time.Second, time.Second, a, b, 50*time.Millisecond, 0.1)
	if len(s.Events) != 6 {
		t.Fatalf("events: %d, want 6 (crash+restart, partition+heal, spike+clear)", len(s.Events))
	}
	wantKinds := []Kind{Crash, Restart, Partition, Heal, Spike, ClearSpike}
	for i, e := range s.Events {
		if e.Kind != wantKinds[i] {
			t.Fatalf("event %d kind %v, want %v", i, e.Kind, wantKinds[i])
		}
	}
	if s.Events[1].At != 3*time.Second {
		t.Fatalf("CrashFor restart at %v, want crash+downFor", s.Events[1].At)
	}
}

func TestInjectorAppliesScheduleInOrder(t *testing.T) {
	env := sim.NewEnv(1)
	c := cloud.New(env, cloud.DefaultConfig())
	a := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	b := cloud.Placement{Region: cloud.USWest1, Zone: "b"}
	inst := c.Launch("node", cloud.Small, a)

	sched := new(Schedule).
		CrashFor(2*time.Second, 3*time.Second, "node").
		PartitionFor(time.Second, 5*time.Second, a, b)
	inj := Start(env, c, sched)

	env.RunUntil(1500 * time.Millisecond)
	if c.Network().Reachable(a, b) {
		t.Fatal("path still reachable after the scheduled partition")
	}
	if !inst.Up() {
		t.Fatal("instance crashed before its scheduled time")
	}
	env.RunUntil(3 * time.Second)
	if inst.Up() {
		t.Fatal("instance still up after the scheduled crash")
	}
	env.RunUntil(10 * time.Second)
	if !inst.Up() {
		t.Fatal("instance not restarted")
	}
	if !c.Network().Reachable(a, b) {
		t.Fatal("path not healed")
	}

	got := inj.Counters()
	want := Counters{Crashes: 1, Restarts: 1, Partitions: 1, Heals: 1}
	if got != want {
		t.Fatalf("counters %+v, want %+v", got, want)
	}
	log := inj.Log()
	if len(log) != 4 {
		t.Fatalf("log has %d entries, want 4: %v", len(log), log)
	}
	for i := 1; i < len(log); i++ {
		if log[i].At < log[i-1].At {
			t.Fatalf("log out of fire order: %v", log)
		}
	}
	env.Stop()
	env.Shutdown()
}

func TestInjectorSkipsUnknownTarget(t *testing.T) {
	env := sim.NewEnv(2)
	c := cloud.New(env, cloud.DefaultConfig())
	inj := Start(env, c, new(Schedule).Crash(time.Second, "ghost"))
	env.RunUntil(2 * time.Second)
	if got := inj.Counters(); got.Skipped != 1 || got.Crashes != 0 {
		t.Fatalf("counters %+v, want 1 skip and no crash", got)
	}
	if log := inj.Log(); len(log) != 1 || !log[0].Skipped {
		t.Fatalf("log: %v", inj.Log())
	}
	env.Stop()
	env.Shutdown()
}

func TestNilScheduleIsNoop(t *testing.T) {
	env := sim.NewEnv(3)
	c := cloud.New(env, cloud.DefaultConfig())
	inj := Start(env, c, nil)
	env.Run()
	if len(inj.Log()) != 0 || inj.Counters() != (Counters{}) {
		t.Fatalf("nil schedule did something: %v %+v", inj.Log(), inj.Counters())
	}
	env.Shutdown()
}

// TestSlaveCrashRestartCatchesUp is the chaos smoke test: writes flow while
// a replica reboots; after the restart the replica drains its relay backlog
// and converges to the master's binlog position, and the injector's
// counters reconcile with the schedule.
func TestSlaveCrashRestartCatchesUp(t *testing.T) {
	env := sim.NewEnv(4)
	c := cloud.New(env, cloud.DefaultConfig())
	place := cloud.Placement{Region: cloud.USWest1, Zone: "a"}
	preload := func(srv *server.DBServer) error {
		sess := srv.Session("")
		for _, sql := range []string{
			"CREATE DATABASE app",
			"CREATE TABLE app.t (id BIGINT PRIMARY KEY, v VARCHAR(20))",
		} {
			if _, err := srv.ExecFree(sess, sql); err != nil {
				return err
			}
		}
		return nil
	}
	clu, err := cluster.New(env, c, cluster.Config{
		Mode:    repl.Async,
		Cost:    server.DefaultCostModel(),
		Master:  cluster.NodeSpec{Place: place},
		Slaves:  []cluster.NodeSpec{{Place: place}, {Place: place}},
		Preload: preload,
	})
	if err != nil {
		t.Fatal(err)
	}

	inj := Start(env, c, new(Schedule).CrashFor(5*time.Second, 10*time.Second, "slave1"))

	writes := 0
	env.Go("writer", func(p *sim.Proc) {
		sess := clu.Master().Srv.Session("app")
		for i := 0; p.Now() < 30*time.Second; i++ {
			_, err := clu.Master().Srv.Exec(p, sess, "INSERT INTO t (id, v) VALUES (?, 'x')",
				sqlengine.NewInt(int64(i)))
			if err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			writes++
			p.Sleep(200 * time.Millisecond)
		}
	})

	env.RunUntil(time.Minute)
	env.Stop()
	env.Shutdown()

	if writes == 0 {
		t.Fatal("no writes completed")
	}
	if got := inj.Counters(); got.Crashes != 1 || got.Restarts != 1 || got.Skipped != 0 {
		t.Fatalf("counters %+v do not reconcile with the schedule", got)
	}
	last := clu.Master().Srv.Log.LastSeq()
	for _, sl := range clu.Slaves() {
		if sl.AppliedSeq() != last {
			t.Fatalf("%s applied %d of %d events after its reboot", sl.Srv.Name, sl.AppliedSeq(), last)
		}
	}
}
