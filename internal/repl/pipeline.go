package repl

import (
	"fmt"
	"strings"

	"cloudrepl/internal/binlog"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// This file is the slave half of the replication pipeline: a K-worker SQL
// applier replacing the single SQL thread. A dispatcher reads the relay log
// in commit order and hands each entry to a worker together with the newest
// earlier entry it conflicts with (same table, or a barrier statement).
// Workers apply concurrently but block until their dependency has applied,
// so entries touching disjoint tables overlap — apply CPU no longer drains
// strictly one statement at a time behind client reads — while conflicting
// entries keep exact commit order. AppliedSeq advances as a contiguous
// low-water mark, so read-your-writes routing and lag probes stay
// conservative under out-of-order completion.
//
// Deadlock-freedom: dependencies always point at earlier sequences, the
// dispatcher assigns entries round-robin in sequence order, and each worker
// consumes its own queue FIFO. The earliest unapplied entry's dependency is
// therefore already applied, and every entry ahead of it in its worker's
// queue has a smaller sequence — already applied too — so that worker's
// next item is always runnable.

// applyItem is one relay entry plus its scheduling constraint.
type applyItem struct {
	e binlog.Entry
	// dep is the newest earlier sequence this entry conflicts with; 0
	// means the entry may apply as soon as a worker picks it up.
	dep uint64
}

// applyState is the shared scheduler state of one slave's worker pool.
type applyState struct {
	sl *Slave
	// done holds applied-but-not-yet-contiguous entries awaiting the
	// low-water advance.
	done map[uint64]binlog.Entry
	// doneSig wakes workers whose dependency may have just applied.
	doneSig *sim.Signal
	// byTable maps "db.table" to the newest dispatched sequence writing it.
	byTable map[string]uint64
	// barrier is the newest dispatched barrier sequence (DDL, USE,
	// unparseable): everything after it depends on it.
	barrier uint64
	// lastSeq is the newest dispatched sequence (what a barrier depends on).
	lastSeq uint64
}

// applied reports whether sequence dep has been applied (possibly still
// above the low-water mark).
func (st *applyState) applied(dep uint64) bool {
	if dep == 0 || dep <= st.sl.appliedSeq {
		return true
	}
	_, ok := st.done[dep]
	return ok
}

// complete records an applied entry and advances the contiguous low-water
// mark that AppliedSeq/LastApplied expose.
func (st *applyState) complete(e binlog.Entry, now sim.Time) {
	st.done[e.Seq] = e
	for {
		ne, ok := st.done[st.sl.appliedSeq+1]
		if !ok {
			break
		}
		delete(st.done, st.sl.appliedSeq+1)
		st.sl.appliedSeq = ne.Seq
		st.sl.appliedTs = ne.TimestampMicros
		st.sl.appliedAt = now
	}
	st.doneSig.Broadcast()
}

// startParallelApplier replaces the single SQL thread with a dispatcher and
// `workers` applier threads for sl.
func (m *Master) startParallelApplier(sl *Slave, ackPipe func(ack), workers int) {
	st := &applyState{
		sl:      sl,
		done:    make(map[uint64]binlog.Entry),
		doneSig: sim.NewSignal(m.env).Named(sl.Srv.Name + "/apply-done"),
		byTable: make(map[string]uint64),
	}

	queues := make([]*sim.Queue[applyItem], workers)
	for w := range queues {
		queues[w] = sim.NewQueue[applyItem](m.env, fmt.Sprintf("%s/sql%d", sl.Srv.Name, w))
	}

	m.env.Go(sl.Srv.Name+"/sql-dispatch", func(p *sim.Proc) {
		next := 0
		for {
			e, ok := sl.relay.Get(p)
			if !ok {
				// Relay closed and drained: let the workers finish what
				// they hold, then exit.
				for _, q := range queues {
					q.Close()
				}
				return
			}
			var dep uint64
			tables, exclusive := conflictTables(e.Database, e.SQL)
			if exclusive {
				// DDL and anything we cannot attribute to a table is a
				// full barrier: it runs after everything dispatched so
				// far, and everything after it runs after it.
				dep = st.lastSeq
				st.barrier = e.Seq
			} else {
				dep = st.barrier
				for _, tbl := range tables {
					if s := st.byTable[tbl]; s > dep {
						dep = s
					}
					st.byTable[tbl] = e.Seq
				}
			}
			st.lastSeq = e.Seq
			queues[next].Put(applyItem{e: e, dep: dep})
			next = (next + 1) % workers
		}
	})

	for w := 0; w < workers; w++ {
		q := queues[w]
		sess := sl.Srv.Session("")
		m.env.Go(q.Name(), func(p *sim.Proc) {
			for {
				it, ok := q.Get(p)
				if !ok {
					return
				}
				for !st.applied(it.dep) {
					st.doneSig.Wait(p)
				}
				// Park across a crash, like the single-threaded applier.
				sl.Srv.Inst.AwaitUp(p)
				if sl.stopped {
					return
				}
				asp := m.Tracer.StartLinked(p, "apply", "apply", m.Tracer.SeqRef(it.e.Seq))
				asp.SetAttr("slave", sl.Srv.Name)
				asp.SetAttrInt("seq", int64(it.e.Seq))
				if err := sl.Srv.Apply(p, sess, it.e); err != nil {
					sl.applyErrs++
					asp.SetAttr("error", "apply")
				}
				asp.End(p)
				// AdvanceVersion is a monotone max, so out-of-order worker
				// completion still converges on the master's commit order.
				sl.Srv.Eng.AdvanceVersion(it.e.Seq)
				st.complete(it.e, p.Now())
				if m.Mode == Sync {
					// Ack the low-water mark: it is what "applied" means
					// to WaitCommitted's all-slaves check.
					ackPipe(ack{slave: sl, seq: sl.appliedSeq, applied: true})
				}
			}
		})
	}
}

// conflictTables extracts the tables a replicated statement writes,
// qualified by the entry's default database. Statements whose write set
// cannot be determined (DDL, USE, parse failures) report exclusive=true
// and are scheduled as full barriers.
func conflictTables(db, sql string) (tables []string, exclusive bool) {
	stmt, err := sqlengine.Parse(sql)
	if err != nil {
		return nil, true
	}
	var ref sqlengine.TableRef
	switch s := stmt.(type) {
	case *sqlengine.InsertStmt:
		ref = s.Table
	case *sqlengine.UpdateStmt:
		ref = s.Table
	case *sqlengine.DeleteStmt:
		ref = s.Table
	case *sqlengine.TruncateStmt:
		ref = s.Table
	default:
		return nil, true
	}
	return []string{tableKey(db, ref)}, false
}

// tableKey canonicalizes a table reference to "db.table" (identifiers are
// case-insensitive in the engine).
func tableKey(defaultDB string, ref sqlengine.TableRef) string {
	db := ref.DB
	if db == "" {
		db = defaultDB
	}
	return strings.ToLower(db) + "." + strings.ToLower(ref.Name)
}
