package repl

import (
	"fmt"

	"cloudrepl/internal/cloud"
	"cloudrepl/internal/server"
	"cloudrepl/internal/sim"
	"cloudrepl/internal/sqlengine"
)

// MultiMaster implements the alternative replication architecture of the
// paper's §II: every replica maintains a full copy and serves both reads
// and writes, with the replication middleware resolving write-write
// conflicts by imposing a single total order on all write statements —
// every node executes the same writes in the same sequence (a
// certification/group-communication design in the Galera style, reduced to
// a logical sequencer).
//
// The architecture trades the master bottleneck for global write cost:
// every node spends CPU applying every write, so write-heavy workloads
// scale no better than one node, while reads scale with replicas and every
// node offers read-your-writes for its own clients.
type MultiMaster struct {
	env   *sim.Env
	net   *cloud.Network
	nodes []*MMNode

	// seqAt is where the logical sequencer lives; every write pays the
	// round trip origin → sequencer → all nodes.
	seqAt   cloud.Placement
	nextSeq uint64
}

// mmEvent is one globally-ordered write.
type mmEvent struct {
	Seq      uint64
	Database string
	SQL      string
	Origin   int
}

// MMNode is one multi-master replica.
type MMNode struct {
	Srv   *server.DBServer
	Index int

	mm         *MultiMaster
	applyQ     *sim.Queue[mmEvent]
	pipe       *cloud.Pipe[mmEvent]
	appliedSeq uint64
	applied    *sim.Signal
	applyErrs  int
}

// NewMultiMaster wires the given servers into a multi-master group with
// the sequencer at seqAt. Servers must be preloaded identically.
func NewMultiMaster(env *sim.Env, net *cloud.Network, servers []*server.DBServer, seqAt cloud.Placement) *MultiMaster {
	mm := &MultiMaster{env: env, net: net, seqAt: seqAt}
	for i, srv := range servers {
		n := &MMNode{
			Srv:     srv,
			Index:   i,
			mm:      mm,
			applyQ:  sim.NewQueue[mmEvent](env, fmt.Sprintf("%s/mm-apply", srv.Name)),
			applied: sim.NewSignal(env).Named(srv.Name + "/mm-applied"),
		}
		n.pipe = cloud.NewPipe(net, seqAt, srv.Inst.Place, n.applyQ)
		mm.nodes = append(mm.nodes, n)
		sess := srv.Session("")
		env.Go(fmt.Sprintf("%s/mm-applier", srv.Name), func(p *sim.Proc) {
			for {
				e, ok := n.applyQ.Get(p)
				if !ok {
					return
				}
				// Every node pays the full write cost: the fundamental
				// write-amplification of multi-master replication.
				if err := n.apply(p, sess, e); err != nil {
					n.applyErrs++
				}
				n.appliedSeq = e.Seq
				n.applied.Broadcast()
			}
		})
	}
	return mm
}

func (n *MMNode) apply(p *sim.Proc, sess *sqlengine.Session, e mmEvent) error {
	if e.Database != "" && sess.DB() != e.Database {
		if _, err := sess.Exec("USE " + e.Database); err != nil {
			return err
		}
	}
	res, err := sess.Exec(e.SQL)
	if err != nil {
		return err
	}
	n.Srv.Inst.Work(p, n.Srv.Cost.StatementCost(res.Stats, false))
	return nil
}

// Nodes returns the group members.
func (mm *MultiMaster) Nodes() []*MMNode { return mm.nodes }

// Node returns member i.
func (mm *MultiMaster) Node(i int) *MMNode { return mm.nodes[i] }

// ExecWrite executes a write on this node: the statement is bound locally,
// shipped to the total-order sequencer (one network leg), broadcast to
// every node in sequence order, and the call returns once this node has
// applied it — read-your-writes for local clients, the certification-style
// commit rule.
func (n *MMNode) ExecWrite(p *sim.Proc, db, sql string, args ...sqlengine.Value) error {
	stmt, err := sqlengine.Parse(sql)
	if err != nil {
		return err
	}
	bound := stmt
	if len(args) > 0 {
		if bound, err = sqlengine.Bind(stmt, args); err != nil {
			return err
		}
	}
	mm := n.mm
	var seq uint64
	assigned := sim.NewSignal(mm.env).Named(n.Srv.Name + "/mm-seq-assign")
	mm.env.Schedule(mm.net.OneWay(n.Srv.Inst.Place, mm.seqAt), func() {
		mm.nextSeq++
		seq = mm.nextSeq
		e := mmEvent{Seq: seq, Database: db, SQL: bound.String(), Origin: n.Index}
		for _, node := range mm.nodes {
			node.pipe.Send(e)
		}
		assigned.Broadcast()
	})
	// The callback cannot fire until this process yields, so waiting here
	// is race-free; seq is set by the time the signal arrives.
	assigned.Wait(p)
	for n.appliedSeq < seq {
		n.applied.Wait(p)
	}
	return nil
}

// ExecRead executes a read locally on this node.
func (n *MMNode) ExecRead(p *sim.Proc, db, sql string, args ...sqlengine.Value) (*sqlengine.ResultSet, error) {
	sess := n.Srv.Session(db)
	res, err := n.Srv.Exec(p, sess, sql, args...)
	if err != nil {
		return nil, err
	}
	return res.Set, nil
}

// AppliedSeq returns the newest globally-ordered write applied here.
func (n *MMNode) AppliedSeq() uint64 { return n.appliedSeq }

// ApplyErrors counts failed applies.
func (n *MMNode) ApplyErrors() int { return n.applyErrs }
